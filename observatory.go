// Package observatory is the public API of the African Internet
// Measurements Observatory reproduction: a seeded synthetic Internet
// calibrated to Africa's connectivity structure, a measurement platform
// (controller + probe agents) designed around it, and the experiment
// drivers that regenerate every table and figure of the paper.
//
// The quickest start:
//
//	stack := observatory.NewStack(observatory.Config{Seed: 42, Year: 2025})
//	tr := stack.Net.Traceroute(36924, stack.Net.RouterAddr(15169, 0))
//	for _, hop := range tr.Hops { ... }
//
// A running platform:
//
//	ctrl := observatory.NewController("research-team")
//	srv := httptest.NewServer(ctrl.Handler())
//	cl := observatory.NewClient(srv.URL)
//	... register probes, submit experiments, collect results ...
//
// The paper's experiments:
//
//	res := observatory.Experiments(stack).Fig2aDetours()
//	res.Render(os.Stdout)
package observatory

import (
	"github.com/afrinet/observatory/internal/anycast"
	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/cable"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/dnsload"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/experiments"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/geoloc"
	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
	"github.com/afrinet/observatory/internal/websim"
	"github.com/afrinet/observatory/internal/whatif"
)

// Re-exported core types, so downstream code works entirely through this
// package.
type (
	// ASN is an autonomous system number.
	ASN = topology.ASN
	// Topology is the generated Internet snapshot.
	Topology = topology.Topology
	// AS is one autonomous system.
	AS = topology.AS
	// IXPID identifies an exchange.
	IXPID = topology.IXPID
	// CableID identifies a subsea cable system.
	CableID = topology.CableID
	// Region is a macro-region.
	Region = geo.Region
	// Country is a gazetteer record.
	Country = geo.Country
	// Addr is an IPv4 address.
	Addr = netx.Addr
	// Prefix is an IPv4 CIDR prefix.
	Prefix = netx.Prefix
	// Router computes valley-free interdomain routes.
	Router = bgp.Router
	// Net is the data plane.
	Net = netsim.Net
	// Traceroute is a TTL-limited measurement result.
	Traceroute = netsim.Traceroute
	// DNS is the resolver/authoritative substrate.
	DNS = dnssim.System
	// DNSResolver is one link (or whole chain) of the composable
	// resolver-chain API; DNSQuery/DNSAnswer are its wire types.
	DNSResolver = dnssim.Resolver
	// DNSQuery is one logical DNS question entering a chain.
	DNSQuery = dnssim.Query
	// DNSAnswer is a chain resolution outcome.
	DNSAnswer = dnssim.Answer
	// DNSLoadConfig parameterizes a rate-controlled DNS load run.
	DNSLoadConfig = dnsload.Config
	// DNSLoadReport is the aggregate outcome of one load run.
	DNSLoadReport = dnsload.Report
	// Web is the content/CDN substrate.
	Web = content.System
	// GeoDB is the commercial-grade geolocation database.
	GeoDB = geoloc.DB
	// IXPRecord is a PCH/PeeringDB-style directory entry.
	IXPRecord = registry.IXPRecord
	// Detector finds exchange crossings in traceroutes.
	Detector = ixp.Detector
	// CableInference is the Nautilus-style mapping engine.
	CableInference = cable.Inference
	// AnycastCensus is the MAnycast-style classifier.
	AnycastCensus = anycast.Census
	// AnycastVerdict is one census outcome.
	AnycastVerdict = anycast.Verdict
	// Controller is the platform control plane.
	Controller = core.Controller
	// Client is the probe-side HTTP client.
	Client = core.Client
	// ProbeInfo describes a registered vantage point.
	ProbeInfo = core.ProbeInfo
	// Agent executes measurement tasks.
	Agent = probes.Agent
	// AgentConfig configures an agent.
	AgentConfig = probes.Config
	// Task is one measurement assignment.
	Task = probes.Task
	// Result is one task outcome.
	Result = probes.Result
	// Assignment pairs a task with a probe.
	Assignment = probes.Assignment
	// Budget meters cellular data spending.
	Budget = probes.Budget
	// Scenario is a what-if counterfactual.
	Scenario = whatif.Scenario
	// ScenarioOutcome is a what-if result.
	ScenarioOutcome = whatif.Outcome
	// WhatIfEngine runs scenarios.
	WhatIfEngine = whatif.Engine
)

// Config selects a generated Internet.
type Config struct {
	// Seed drives every random choice; equal seeds give equal worlds.
	Seed int64
	// Year picks the infrastructure snapshot (2015..2025); 0 means 2025.
	Year int
}

// Stack is a fully wired simulated Internet plus the measurement layers.
type Stack struct {
	Topology  *Topology
	Router    *Router
	Net       *Net
	DNS       *DNS
	Web       *Web
	GeoDB     *GeoDB
	Directory []IXPRecord
	Detector  *Detector

	env *experiments.Env
}

// NewStack generates and wires the full stack.
func NewStack(cfg Config) *Stack {
	if cfg.Year == 0 {
		cfg.Year = 2025
	}
	env := experiments.NewEnv(cfg.Seed, cfg.Year)
	return &Stack{
		Topology:  env.Topo,
		Router:    env.Router,
		Net:       env.Net,
		DNS:       env.DNS,
		Web:       env.Web,
		GeoDB:     env.GeoDB,
		Directory: env.Dir,
		Detector:  env.Detector,
		env:       env,
	}
}

// NewController creates a platform control plane with a trusted
// experimenter cohort.
func NewController(trusted ...string) *Controller { return core.NewController(trusted...) }

// NewClient builds a probe-side client for a controller base URL.
func NewClient(base string) *Client { return core.NewClient(base) }

// NewAgent builds a measurement agent bound to this stack's data plane.
func (s *Stack) NewAgent(cfg AgentConfig) *Agent {
	return probes.NewAgent(cfg, s.Net, s.DNS, s.Web)
}

// NewWebsteps builds a step-following web measurement engine over this
// stack's data plane under the seeded default interference policy —
// the same GenerateInterference draw the repro websteps sweep uses, so
// a fleet probe armed with this engine (Agent.EnableWebsteps) reports
// verdict-for-verdict what the offline driver computes for its seed.
func (s *Stack) NewWebsteps(seed int64) *websim.Engine {
	var countries []string
	for _, c := range geo.AfricanCountries() {
		countries = append(countries, c.ISO2)
	}
	pol := outage.GenerateInterference(seed, countries)
	return websim.New(s.Net, s.DNS, s.Web, pol, seed)
}

// DNSLoad runs a rate-controlled DNS load configuration against this
// stack's resolver chains (the §5.2-at-scale measurement engine).
func (s *Stack) DNSLoad(cfg DNSLoadConfig) DNSLoadReport { return dnsload.Run(s.DNS, cfg) }

// NewWhatIf builds a scenario engine over this stack.
func (s *Stack) NewWhatIf() *WhatIfEngine { return whatif.NewEngine(s.Net, s.DNS, s.Web) }

// NewCableInference builds a Nautilus-style inference engine.
func (s *Stack) NewCableInference() *CableInference {
	return cable.NewInference(s.Topology, s.GeoDB)
}

// NewAnycastCensus builds a MAnycast-style census over this stack.
func (s *Stack) NewAnycastCensus() *AnycastCensus { return anycast.New(s.Net) }

// TargetedPlacement returns the observatory's vantage ASNs (set cover of
// exchange memberships plus per-country mobile carriers).
func (s *Stack) TargetedPlacement() []ASN { return core.TargetedPlacement(s.Topology) }

// AtlasPlacement returns the biased baseline deployment.
func (s *Stack) AtlasPlacement(n int) []ASN { return core.AtlasPlacement(s.Topology, n) }

// FindCables resolves cable names (e.g. "WACS") to ids.
func (s *Stack) FindCables(names ...string) []CableID {
	return whatif.FindCables(s.Topology, names...)
}

// AfricanIXPs returns the African slice of the exchange directory.
func (s *Stack) AfricanIXPs() []IXPRecord { return registry.AfricanIXPs(s.Topology) }

// GreedyIXPCover runs footnote 1's set-cover vantage selection.
func GreedyIXPCover(dir []IXPRecord) []ASN {
	return ixp.GreedySetCover(dir).Chosen
}

// Exp exposes the paper's experiment drivers over a stack.
type Exp struct{ env *experiments.Env }

// Experiments returns the driver set bound to the stack.
func Experiments(s *Stack) Exp { return Exp{env: s.env} }

// Fig1Growth reproduces Figure 1 (needs only the seed, not the stack).
func Fig1Growth(seed int64) experiments.GrowthResult { return experiments.Fig1Growth(seed) }

// Fig2aDetours reproduces Figure 2a.
func (e Exp) Fig2aDetours() experiments.DetourResult { return experiments.Fig2aDetours(e.env) }

// Fig2bContentLocality reproduces Figure 2b.
func (e Exp) Fig2bContentLocality() experiments.ContentLocalityResult {
	return experiments.Fig2bContentLocality(e.env)
}

// Fig2cResolverUse reproduces Figure 2c.
func (e Exp) Fig2cResolverUse() experiments.ResolverResult {
	return experiments.Fig2cResolverUse(e.env)
}

// Fig3IXPPrevalence reproduces Figure 3.
func (e Exp) Fig3IXPPrevalence() experiments.IXPPrevalenceResult {
	return experiments.Fig3IXPPrevalence(e.env)
}

// Fig4Outages reproduces Figure 4.
func (e Exp) Fig4Outages() experiments.OutageResult { return experiments.Fig4Outages(e.env) }

// Table1Scan reproduces Table 1.
func (e Exp) Table1Scan() experiments.ScanResult { return experiments.Table1Scan(e.env) }

// NautilusAmbiguity reproduces Section 6.2.
func (e Exp) NautilusAmbiguity() experiments.NautilusResult {
	return experiments.NautilusAmbiguity(e.env)
}

// SetCoverPlacement reproduces footnote 1.
func (e Exp) SetCoverPlacement() experiments.SetCoverResult {
	return experiments.SetCoverPlacement(e.env)
}

// KigaliPilot reproduces Section 7.3.
func (e Exp) KigaliPilot() experiments.PilotResult { return experiments.KigaliPilot(e.env) }

// WhatIfCableCut reproduces the envisioned what-if analysis.
func (e Exp) WhatIfCableCut() experiments.WhatIfResult { return experiments.WhatIfCableCut(e.env) }

// AnycastCensusDemo runs the §7.2 anycast workload demonstration.
func (e Exp) AnycastCensusDemo() experiments.AnycastResult { return experiments.AnycastCensus(e.env) }

// DNSLocalization runs the ECS-vs-non-ECS localization study under
// paced DNS load.
func (e Exp) DNSLocalization() experiments.DNSLocalizationResult {
	return experiments.DNSLocalization(e.env)
}

// AblationPlacement, AblationBudget, and AblationCorrelatedCuts quantify
// the design choices DESIGN.md calls out.
func (e Exp) AblationPlacement() experiments.PlacementAblation {
	return experiments.AblationPlacement(e.env)
}

// AblationBudget compares the cost-aware scheduler with round-robin.
func (e Exp) AblationBudget() experiments.BudgetAblation { return experiments.AblationBudget(e.env) }

// AblationCorrelatedCuts compares corridor-correlated and independent
// cable failures.
func (e Exp) AblationCorrelatedCuts() experiments.CorrelationAblation {
	return experiments.AblationCorrelatedCuts(e.env)
}
