package observatory

// The benchmark harness: one benchmark per table and figure of the
// paper, plus the ablations DESIGN.md calls out. Each benchmark runs the
// full experiment driver end-to-end; reported ns/op is the cost of
// regenerating the artifact. `go test -bench=. -benchmem` regenerates
// everything (numbers recorded in EXPERIMENTS.md).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/afrinet/observatory/internal/dnsload"
	"github.com/afrinet/observatory/internal/experiments"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func benchSetup(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = experiments.NewEnv(42, 2025) })
	return benchEnv
}

// BenchmarkFig1InfrastructureGrowth regenerates Figure 1 (the 2015-2025
// infrastructure timeline per region).
func BenchmarkFig1InfrastructureGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1Growth(42)
		if r.AfricaIXPGrowthPct < 400 {
			b.Fatalf("IXP growth collapsed: %v", r.AfricaIXPGrowthPct)
		}
	}
}

// BenchmarkFig2aDetourPrevalence regenerates Figure 2a.
func BenchmarkFig2aDetourPrevalence(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2aDetours(env)
		if r.OverallPct <= 0 {
			b.Fatal("no detours measured")
		}
	}
}

// BenchmarkFig2bContentLocality regenerates Figure 2b.
func BenchmarkFig2bContentLocality(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2bContentLocality(env)
		if r.OverallPct <= 0 {
			b.Fatal("no locality measured")
		}
	}
}

// BenchmarkFig2cResolverLocality regenerates Figure 2c.
func BenchmarkFig2cResolverLocality(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2cResolverUse(env)
		if len(r.Regions) != 5 {
			b.Fatal("missing regions")
		}
	}
}

// BenchmarkFig3IXPPrevalence regenerates Figure 3.
func BenchmarkFig3IXPPrevalence(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3IXPPrevalence(env)
		if len(r.Regions) != 5 {
			b.Fatal("missing regions")
		}
	}
}

// BenchmarkFig4OutageImpact regenerates Figure 4 (two simulated years of
// outages with impact evaluation).
func BenchmarkFig4OutageImpact(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4Outages(env)
		if r.CountByContinent["Africa"] == 0 {
			b.Fatal("no outages detected")
		}
	}
}

// BenchmarkTable1ScanCoverage regenerates Table 1 (three scanning
// methodologies over the full synthetic address space).
func BenchmarkTable1ScanCoverage(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Table1Scan(env)
		if len(r.Rows) != 3 {
			b.Fatal("missing tools")
		}
	}
}

// BenchmarkNautilusAmbiguity regenerates the Section 6.2 assessment.
func BenchmarkNautilusAmbiguity(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.NautilusAmbiguity(env)
		if r.Summary.PathsWithSubmarine == 0 {
			b.Fatal("no submarine paths")
		}
	}
}

// BenchmarkSetCoverPlacement regenerates footnote 1's greedy cover.
func BenchmarkSetCoverPlacement(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.SetCoverPlacement(env)
		if r.Universe != 77 {
			b.Fatalf("universe = %d, want 77", r.Universe)
		}
	}
}

// BenchmarkKigaliPilot regenerates the Section 7.3 comparison.
func BenchmarkKigaliPilot(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.KigaliPilot(env)
		if r.ObservatoryIXPs == 0 {
			b.Fatal("pilot saw nothing")
		}
	}
}

// BenchmarkWhatIfCableCut regenerates the correlated-cut scenario pair.
func BenchmarkWhatIfCableCut(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.WhatIfCableCut(env)
		if len(r.Baseline.Countries) == 0 {
			b.Fatal("no countries measured")
		}
	}
}

// BenchmarkAblationPlacement sweeps placement strategies.
func BenchmarkAblationPlacement(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPlacement(env)
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationBudget compares schedulers under prepaid pricing.
func BenchmarkAblationBudget(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationBudget(env)
		if r.BudgetAwareDone == 0 {
			b.Fatal("no tasks completed")
		}
	}
}

// BenchmarkAblationCorrelatedCuts compares failure models.
func BenchmarkAblationCorrelatedCuts(b *testing.B) {
	env := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationCorrelatedCuts(env)
		if r.CorrelatedMeanImpact == 0 {
			b.Fatal("no impact measured")
		}
	}
}

// BenchmarkRouteComputation measures the per-destination routing-tree
// computation (DESIGN.md's memoization ablation: the first call per
// destination pays this; subsequent path queries are map reads).
func BenchmarkRouteComputation(b *testing.B) {
	env := benchSetup(b)
	asns := env.Topo.ASNs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dest := asns[i%len(asns)]
		env.Router.Invalidate() // drop cached trees; SetLinkDown(x, false) is now a no-op
		tree := env.Router.Tree(dest)
		if tree.Size() == 0 {
			b.Fatal("empty routing tree")
		}
	}
}

// BenchmarkTreeParallel hammers the routing-tree cache from concurrent
// goroutines: a mix of warm hits and singleflight-coalesced misses, the
// access pattern the experiment drivers produce under internal/par.
func BenchmarkTreeParallel(b *testing.B) {
	env := benchSetup(b)
	asns := env.Topo.ASNs()
	env.Router.Invalidate()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tree := env.Router.Tree(asns[i%len(asns)])
			if tree.Size() == 0 {
				b.Fatal("empty routing tree")
			}
			i++
		}
	})
}

// BenchmarkTracerouteParallel measures concurrent traceroutes on a warm
// routing cache — the netsim read path under worker-pool drivers.
func BenchmarkTracerouteParallel(b *testing.B) {
	env := benchSetup(b)
	dst := env.Net.RouterAddr(15169, 0)
	env.Net.Traceroute(36924, dst) // warm the tree for dst
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr := env.Net.Traceroute(36924, dst)
			if len(tr.Hops) == 0 {
				b.Fatal("no hops")
			}
		}
	})
}

// BenchmarkTraceroute measures one end-to-end traceroute on a warm
// routing cache.
func BenchmarkTraceroute(b *testing.B) {
	env := benchSetup(b)
	dst := env.Net.RouterAddr(15169, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := env.Net.Traceroute(36924, dst)
		if len(tr.Hops) == 0 {
			b.Fatal("no hops")
		}
	}
}

// benchStoreRecords builds a seeded result corpus for the store
// benchmarks: several experiments, countries, and ASNs spread over a
// range of ticks, with realistic OK/loss and RTT mixes.
func benchStoreRecords(n int) []store.Record {
	rng := rand.New(rand.NewSource(7))
	countries := []string{"NG", "KE", "ZA", "RW", "EG"}
	recs := make([]store.Record, n)
	for i := range recs {
		exp := fmt.Sprintf("exp-%04d", 1+i%4)
		ok := rng.Intn(5) != 0
		r := store.Record{
			Experiment: exp,
			TaskID:     fmt.Sprintf("%s-t%06d", exp, i),
			ProbeID:    fmt.Sprintf("pr-%02d", i%8),
			Tick:       int64(1 + i/100),
			Country:    countries[i%len(countries)],
			ASN:        topology.ASN(36900 + i%6),
			Result:     probes.Result{Kind: probes.TaskPing, OK: ok},
		}
		r.Result.TaskID, r.Result.Experiment = r.TaskID, exp
		if ok {
			r.Result.RTTms = 5 + 200*rng.Float64()
		}
		recs[i] = r
	}
	return recs
}

// BenchmarkStoreIngest measures appending 10k results through the
// memtable into sealed on-disk segments (auto-flush at the default
// threshold), ending with an explicit flush so every record is durable.
func BenchmarkStoreIngest(b *testing.B) {
	recs := benchStoreRecords(10000)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 0; j < len(recs); j += 500 {
			if err := s.Append(recs[j : j+500]...); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkQueryAggregate measures a grouped time-window aggregation
// over a compacted on-disk store: segment pruning via the sparse index,
// parallel segment scans, and the percentile fold.
func BenchmarkQueryAggregate(b *testing.B) {
	recs := benchStoreRecords(20000)
	s, err := store.Open(b.TempDir(), store.Options{FlushEvery: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for j := 0; j < len(recs); j += 1000 {
		if err := s.Append(recs[j : j+1000]...); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Compact(0); err != nil {
		b.Fatal(err)
	}
	q := store.AggQuery{
		Filter:  store.Filter{FromTick: 50, ToTick: 150},
		GroupBy: store.GroupCountryASN,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.Aggregate(q)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Matched == 0 {
			b.Fatal("aggregation matched nothing")
		}
	}
}

// BenchmarkWebstepsRun measures the websteps censorship sweep — every
// African country's top sites through the step-following engine under
// the seeded interference policy — serial and with the default worker
// pool, so the recorded numbers expose the fan-out's speedup.
func BenchmarkWebstepsRun(b *testing.B) {
	env := benchSetup(b)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel8", 8}} {
		workers := mode.workers
		b.Run(mode.name, func(b *testing.B) {
			prev := par.SetDefaultWorkers(workers)
			defer par.SetDefaultWorkers(prev)
			for i := 0; i < b.N; i++ {
				r := experiments.WebstepsCensorship(env)
				if len(r.Countries) == 0 || r.Policies == 0 {
					b.Fatal("websteps sweep measured nothing")
				}
			}
		})
	}
}

// BenchmarkDNSLoad is the high-QPS target: one million token-bucket
// paced logical queries per iteration through the composable resolver
// chains, with retries and localization accounting. The reported
// queries/s metric is wall-clock throughput of the simulated engine.
func BenchmarkDNSLoad(b *testing.B) {
	env := benchSetup(b)
	var clients []topology.ASN
	var targets []dnsload.Target
	for _, cc := range []string{"NG", "KE", "ZA", "EG", "GH", "SN", "CI", "TZ", "UG", "RW"} {
		clients = append(clients, env.DNS.ClientNetworks(cc)...)
		for i := 0; i < 6; i++ {
			targets = append(targets, dnsload.Target{
				Domain:        fmt.Sprintf("site%d.%s", i, cc),
				OriginCountry: cc,
			})
		}
	}
	const queries = 1_000_000
	cfg := dnsload.Config{
		Seed:       42,
		Queries:    queries,
		QPS:        25_000, // logical pacing: thousands of queries/sec
		Burst:      256,
		CompareECS: true,
		Clients:    clients,
		Targets:    targets,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := dnsload.Run(env.DNS, cfg)
		if rep.OK == 0 || rep.AchievedQPS <= 0 {
			b.Fatalf("load run measured nothing: %+v", rep)
		}
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
}

// BenchmarkTopologyGenerate measures full-world generation.
func BenchmarkTopologyGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewStack(Config{Seed: int64(42 + i), Year: 2025})
		if len(s.Topology.ASNs()) == 0 {
			b.Fatal("empty topology")
		}
	}
}
