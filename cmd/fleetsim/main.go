// Command fleetsim is the fleet-scale load generator for the batched
// probe hot path (ISSUE: "a 100k-probe fleetsim bench"). It boots a
// controller — or a federated coordinator over -shards local shard
// controllers — registers -probes simulated probes, enqueues a fixed
// workload of -tasks-per-probe tasks each, and then drives the fleet
// through the v1 HTTP surface (in-process handlers, real request
// encode/decode, no sockets) until every result is delivered:
//
//   - mode=batched   each probe round is ONE POST /api/v1/probes/sync
//     carrying the previous round's results plus the next lease ask —
//     one journal fsync covers the whole round.
//   - mode=unbatched each probe round is the pre-sync wire protocol:
//     one heartbeat POST, one lease GET, and one POST per result —
//     every probe does one round-trip (and one fsync) per lease, per
//     result, per heartbeat.
//
// Both modes deliver the identical workload with identical durability
// (every accepted record fsynced before the ack), so ops/sec ratios
// measure the batching, not a durability discount. After the run
// fleetsim asserts exactly-once completion from the controllers' own
// books — accepted == recorded, zero dedups, zero rejects, zero
// requeues, zero outstanding leases — and exits non-zero on any
// violation.
//
// With -bias it instead runs the scheduler experiment: on 3 seeds it
// builds a deliberately skewed fleet (over half the probes in one
// country), serves a lease-constrained workload once with naive FIFO
// and once with bias-aware coverage targets installed, and asserts the
// scheduler's total-variation skew is lower than naive on every seed.
//
// Results land in -out (default none) under the "fleetsim" / "bias"
// keys of the bench JSON file, merged so cmd/benchjson sections in the
// same file survive. Timing deliberately never calls time.Now directly
// (internal/obs owns the clock); scripts/check.sh extends the
// determinism lint over this package.
//
// Usage:
//
//	go run ./cmd/fleetsim -probes 100000 -duration 60s -out BENCH_PR8.json
//	go run ./cmd/fleetsim -probes 1000 -duration 5s              # smoke
//	go run ./cmd/fleetsim -probes 20000 -shards 4 -mode batched
//	go run ./cmd/fleetsim -bias -out BENCH_PR8.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/federation"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

func main() {
	nProbes := flag.Int("probes", 100000, "simulated fleet size")
	shards := flag.Int("shards", 0, "run a federated coordinator over N local shards (0 = single controller)")
	duration := flag.Duration("duration", 60*time.Second, "per-mode time cap (the run ends early once the workload drains)")
	workers := flag.Int("workers", 64, "concurrent client goroutines")
	mode := flag.String("mode", "both", "batched | unbatched | both")
	bias := flag.Bool("bias", false, "run the bias-aware scheduler experiment instead of the load run")
	out := flag.String("out", "", "bench JSON file to merge results into (empty = stdout only)")
	tasksPerProbe := flag.Int("tasks-per-probe", 16, "workload: tasks enqueued per probe")
	syncMax := flag.Int("sync-max", 16, "lease ask (and result batch cap) per round")
	seed := flag.Int64("seed", 42, "fleet layout seed")
	dataDir := flag.String("data-dir", "", "journal root (empty = fresh temp dir, removed on success)")
	flag.Parse()

	if *bias {
		rep, err := runBias(*seed)
		if err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
		if err := writeOut(*out, "bias", rep); err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
		return
	}

	var modes []string
	switch *mode {
	case "both":
		modes = []string{"unbatched", "batched"}
	case "batched", "unbatched":
		modes = []string{*mode}
	default:
		log.Fatalf("fleetsim: -mode must be batched, unbatched, or both, got %q", *mode)
	}

	root := *dataDir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "fleetsim")
		if err != nil {
			log.Fatalf("fleetsim: %v", err)
		}
		defer os.RemoveAll(root)
	}

	cfg := loadConfig{
		probes:        *nProbes,
		shards:        *shards,
		duration:      *duration,
		workers:       *workers,
		tasksPerProbe: *tasksPerProbe,
		syncMax:       *syncMax,
		seed:          *seed,
	}
	reports := map[string]loadReport{}
	for _, m := range modes {
		rep, err := runLoad(m, filepath.Join(root, m), cfg)
		if err != nil {
			log.Fatalf("fleetsim: %s: %v", m, err)
		}
		reports[m] = rep
	}

	outRec := fleetsimRecord{
		Probes:        cfg.probes,
		Shards:        cfg.shards,
		TasksPerProbe: cfg.tasksPerProbe,
		SyncMax:       cfg.syncMax,
		Workers:       cfg.workers,
	}
	if r, ok := reports["batched"]; ok {
		outRec.Batched = &r
	}
	if r, ok := reports["unbatched"]; ok {
		outRec.Unbatched = &r
	}
	if outRec.Batched != nil && outRec.Unbatched != nil && outRec.Unbatched.OpsPerSec > 0 {
		outRec.SpeedupOps = round2(outRec.Batched.OpsPerSec / outRec.Unbatched.OpsPerSec)
		log.Printf("fleetsim: batched/unbatched ops speedup %.2fx", outRec.SpeedupOps)
	}
	if err := writeOut(*out, "fleetsim", outRec); err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
}

// loadConfig is one load run's shape.
type loadConfig struct {
	probes, shards, workers int
	tasksPerProbe, syncMax  int
	duration                time.Duration
	seed                    int64
}

// loadReport is what one mode's run measured.
type loadReport struct {
	Delivered   int64   `json:"delivered"`
	Requests    int64   `json:"requests"`
	Retried     int64   `json:"retried,omitempty"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Fsyncs      int64   `json:"fsyncs"`
	FsyncsPerOp float64 `json:"fsyncs_per_op"`
	LeaseP50ms  float64 `json:"lease_p50_ms"`
	LeaseP99ms  float64 `json:"lease_p99_ms"`
	Drained     bool    `json:"drained"`
}

// fleetsimRecord is the "fleetsim" key of the bench JSON file.
type fleetsimRecord struct {
	Probes        int         `json:"probes"`
	Shards        int         `json:"shards,omitempty"`
	TasksPerProbe int         `json:"tasks_per_probe"`
	SyncMax       int         `json:"sync_max"`
	Workers       int         `json:"workers"`
	Batched       *loadReport `json:"batched,omitempty"`
	Unbatched     *loadReport `json:"unbatched,omitempty"`
	SpeedupOps    float64     `json:"speedup_ops,omitempty"`
}

// fleetCountries is the synthetic fleet's vantage spread; real country
// codes only so reports read naturally.
var fleetCountries = []string{"NG", "KE", "ZA", "GH", "SN", "TZ", "EG", "MA"}

// simProbe is one simulated probe's client-side state: its identity and
// the outbox of executed-but-not-yet-accepted results (the in-memory
// stand-in for the durable spool).
type simProbe struct {
	id     string
	outbox []probes.Result
	done   bool
}

// backend is the server under test: the HTTP handler plus the shard
// controllers behind it (for the exactly-once audit).
type backend struct {
	handler http.Handler
	ctrls   []*core.Controller
	coord   *federation.Coordinator
	close   func()
}

func buildBackend(dir string, cfg loadConfig) (*backend, error) {
	dcfg := core.DurabilityConfig{
		Trusted: []string{"fleet"},
		// The run never ticks, so leases must not expire mid-window.
		LeaseTTL: 1 << 30,
	}
	if cfg.shards <= 0 {
		ctrl, err := core.Recover(dir, dcfg)
		if err != nil {
			return nil, err
		}
		return &backend{
			handler: ctrl.Handler(),
			ctrls:   []*core.Controller{ctrl},
			close:   func() { ctrl.Close() },
		}, nil
	}
	coord, err := federation.New("", federation.Config{
		// Generous per-shard deadline: with every worker funneling into
		// one fsync queue, tail waits are contention, not failure.
		QueryDeadline: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	ctrls := make([]*core.Controller, 0, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		ctrl, err := core.Recover(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), dcfg)
		if err != nil {
			return nil, err
		}
		ctrls = append(ctrls, ctrl)
		if err := coord.AddShard(fmt.Sprintf("shard-%d", i), federation.NewLocalShard(ctrl)); err != nil {
			return nil, err
		}
	}
	return &backend{
		handler: coord.Handler(),
		ctrls:   ctrls,
		coord:   coord,
		close: func() {
			coord.Close()
			for _, c := range ctrls {
				c.Close()
			}
		},
	}, nil
}

// setupFleet registers the fleet and enqueues the workload through the
// in-process Go API (setup is not part of the measured window).
func setupFleet(b *backend, cfg loadConfig) ([]*simProbe, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	fleet := make([]*simProbe, cfg.probes)
	for i := range fleet {
		p := core.ProbeInfo{
			ID:      fmt.Sprintf("p-%06d", i),
			Country: fleetCountries[rng.Intn(len(fleetCountries))],
			ASN:     topology.ASN(36900 + rng.Intn(64)),
			Kind:    "sim",
		}
		var err error
		if b.coord != nil {
			err = b.coord.Register(p)
		} else {
			err = b.ctrls[0].RegisterProbe(p)
		}
		if err != nil {
			return nil, fmt.Errorf("register %s: %w", p.ID, err)
		}
		fleet[i] = &simProbe{id: p.ID}
	}

	// One wave of tasksPerProbe pings per probe, submitted by the
	// trusted "fleet" owner (auto-approved, immediately queued) in
	// bounded chunks so no single journal record balloons.
	const chunk = 20000
	var as []probes.Assignment
	wave := 0
	flush := func() error {
		if len(as) == 0 {
			return nil
		}
		wave++
		var err error
		if b.coord != nil {
			_, err = b.coord.Submit(fmt.Sprintf("fleetsim-wave-%d", wave), "fleet", "fleetsim load", as)
		} else {
			_, err = b.ctrls[0].SubmitExperiment("fleet", "fleetsim load", as)
		}
		as = as[:0]
		return err
	}
	for r := 0; r < cfg.tasksPerProbe; r++ {
		for _, p := range fleet {
			as = append(as, probes.Assignment{
				ProbeID: p.id,
				Task:    probes.Task{Kind: probes.TaskPing, Target: "10.0.0.1"},
			})
			if len(as) == chunk {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return fleet, nil
}

// runLoad drives one mode's full workload and reports throughput,
// latency, and fsync cost.
func runLoad(mode, dir string, cfg loadConfig) (loadReport, error) {
	log.Printf("fleetsim: %s: booting (probes=%d shards=%d tasks/probe=%d)",
		mode, cfg.probes, cfg.shards, cfg.tasksPerProbe)
	b, err := buildBackend(dir, cfg)
	if err != nil {
		return loadReport{}, err
	}
	defer b.close()
	fleet, err := setupFleet(b, cfg)
	if err != nil {
		return loadReport{}, err
	}
	target := int64(cfg.probes) * int64(cfg.tasksPerProbe)
	baseFsyncs := sumDurability(b.ctrls, "journal_records_appended")

	reg := obs.NewRegistry()
	var delivered, requests, retried atomic.Int64
	var timeUp atomic.Bool
	stopTimer := time.NewTimer(cfg.duration)
	defer stopTimer.Stop()
	go func() {
		<-stopTimer.C
		timeUp.Store(true)
	}()

	nw := cfg.workers
	if nw > len(fleet) {
		nw = len(fleet)
	}
	w := &driver{
		handler:   b.handler,
		reg:       reg,
		syncMax:   cfg.syncMax,
		delivered: &delivered,
		requests:  &requests,
		retried:   &retried,
	}
	wall := obs.StartTimer()
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		lo, hi := i*len(fleet)/nw, (i+1)*len(fleet)/nw
		wg.Add(1)
		go func(mine []*simProbe) {
			defer wg.Done()
			for {
				live := 0
				for _, p := range mine {
					if p.done {
						continue
					}
					if timeUp.Load() || delivered.Load() >= target {
						return
					}
					if mode == "batched" {
						w.visitBatched(p)
					} else {
						w.visitUnbatched(p)
					}
					live++
				}
				if live == 0 {
					return
				}
			}
		}(fleet[lo:hi])
	}
	wg.Wait()
	elapsed := wall.Elapsed()

	rep := loadReport{
		Delivered: delivered.Load(),
		Requests:  requests.Load(),
		Retried:   retried.Load(),
		Seconds:   round2(elapsed.Seconds()),
		Fsyncs:    sumDurability(b.ctrls, "journal_records_appended") - baseFsyncs,
		Drained:   delivered.Load() >= target,
	}
	if elapsed > 0 {
		rep.OpsPerSec = round2(float64(rep.Delivered) / elapsed.Seconds())
	}
	if rep.Delivered > 0 {
		rep.FsyncsPerOp = round2(float64(rep.Fsyncs) / float64(rep.Delivered))
	}
	leaseOp := "lease"
	if mode == "batched" {
		leaseOp = "sync"
	}
	if s, ok := reg.Snapshots()[`fleetsim_request_seconds{op="`+leaseOp+`"}`]; ok {
		rep.LeaseP50ms = round2(float64(s.P50) / float64(time.Millisecond))
		rep.LeaseP99ms = round2(float64(s.P99) / float64(time.Millisecond))
	}
	log.Printf("fleetsim: %s: delivered %d/%d in %.2fs — %.0f ops/sec, %.2f fsyncs/op, lease p50=%.2fms p99=%.2fms (requests=%d retried=%d)",
		mode, rep.Delivered, target, rep.Seconds, rep.OpsPerSec, rep.FsyncsPerOp,
		rep.LeaseP50ms, rep.LeaseP99ms, rep.Requests, rep.Retried)

	if err := auditExactlyOnce(b.ctrls, rep.Delivered, rep.Drained); err != nil {
		return rep, err
	}
	if !rep.Drained {
		log.Printf("fleetsim: %s: WARNING: time cap hit with %d/%d delivered (exactly-once still held)",
			mode, rep.Delivered, target)
	}
	return rep, nil
}

// auditExactlyOnce cross-checks the client-side accepted count against
// the controllers' own books: every delivery recorded exactly once,
// nothing deduped, rejected, or requeued, and — when the workload fully
// drained — no lease left open for an executed task. A -duration cap
// that stops the fleet mid-round leaves leases legitimately open, so
// that check only applies to drained runs.
func auditExactlyOnce(ctrls []*core.Controller, delivered int64, drained bool) error {
	var recorded, deduped, rejected, requeued int64
	leases := 0
	for _, c := range ctrls {
		st := c.Stats()
		recorded += st.Counters["results_recorded"]
		deduped += st.Counters["results_deduped"]
		rejected += st.Counters["results_rejected"]
		requeued += st.Counters["tasks_requeued"]
		leases += st.OutstandingLeases
	}
	switch {
	case recorded != delivered:
		return fmt.Errorf("exactly-once violated: client saw %d accepted, controllers recorded %d", delivered, recorded)
	case deduped != 0:
		return fmt.Errorf("exactly-once violated: %d results deduped (duplicate delivery)", deduped)
	case rejected != 0:
		return fmt.Errorf("%d results rejected", rejected)
	case requeued != 0:
		return fmt.Errorf("%d tasks requeued mid-run (lease expiry should be impossible here)", requeued)
	case drained && leases != 0:
		return fmt.Errorf("%d leases still outstanding after the fleet drained", leases)
	}
	log.Printf("fleetsim: exactly-once audit passed (recorded=%d deduped=0 rejected=0 requeued=0 leases=%d)", recorded, leases)
	return nil
}

func sumDurability(ctrls []*core.Controller, key string) int64 {
	var n int64
	for _, c := range ctrls {
		n += c.DurabilityCounters()[key]
	}
	return n
}

// driver issues v1 API requests against the in-process handler,
// recording per-op latency in its registry.
type driver struct {
	handler                      http.Handler
	reg                          *obs.Registry
	syncMax                      int
	delivered, requests, retried *atomic.Int64
}

// do runs one request through the handler and decodes a 200 response
// into out. Non-200s (admission sheds, shard faults) return the status
// for the caller to retry on a later visit.
func (d *driver) do(op, method, path string, body, out any) int {
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			log.Fatalf("fleetsim: marshal %s: %v", op, err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	t := obs.StartTimer()
	d.handler.ServeHTTP(rec, req)
	d.reg.Hist("fleetsim_request_seconds", "op", op).Observe(t.Elapsed())
	d.requests.Add(1)
	if rec.Code != http.StatusOK {
		d.retried.Add(1)
		return rec.Code
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			log.Fatalf("fleetsim: decode %s: %v", op, err)
		}
	}
	return rec.Code
}

// visitBatched runs one probe round on the sync hot path: previous
// results + lease ask in one request. A failed round keeps the outbox
// (the durable-spool contract) and retries on the next visit.
func (d *driver) visitBatched(p *simProbe) {
	n := len(p.outbox)
	if n > d.syncMax {
		n = d.syncMax
	}
	req := core.SyncRequest{ProbeID: p.id, Results: p.outbox[:n], Max: d.syncMax}
	var resp core.SyncResponse
	if d.do("sync", http.MethodPost, "/api/v1/probes/sync", req, &resp) != http.StatusOK {
		return
	}
	d.delivered.Add(int64(resp.Accepted))
	p.outbox = append(p.outbox[:0], p.outbox[n:]...)
	if len(resp.Tasks) == 0 && len(p.outbox) == 0 {
		p.done = true
		return
	}
	for _, t := range resp.Tasks {
		p.outbox = append(p.outbox, execute(t))
	}
}

// visitUnbatched runs the same round on the pre-sync protocol: one
// heartbeat POST, one submit POST per outbox result, one lease GET —
// each its own round-trip and its own journal fsync.
func (d *driver) visitUnbatched(p *simProbe) {
	if d.do("heartbeat", http.MethodPost, "/api/v1/probes/"+p.id+"/heartbeat", nil, nil) != http.StatusOK {
		return
	}
	for len(p.outbox) > 0 {
		var resp struct {
			Accepted int `json:"accepted"`
		}
		if d.do("submit", http.MethodPost, "/api/v1/probes/"+p.id+"/results",
			p.outbox[:1], &resp) != http.StatusOK {
			return // keep the outbox; retry next visit
		}
		d.delivered.Add(int64(resp.Accepted))
		p.outbox = append(p.outbox[:0], p.outbox[1:]...)
	}
	var tasks []probes.Task
	if d.do("lease", http.MethodGet,
		fmt.Sprintf("/api/v1/probes/%s/tasks?max=%d", p.id, d.syncMax), nil, &tasks) != http.StatusOK {
		return
	}
	if len(tasks) == 0 {
		p.done = true
		return
	}
	for _, t := range tasks {
		p.outbox = append(p.outbox, execute(t))
	}
}

// execute fabricates a task's result; fleetsim measures the control
// plane, not the measurement itself.
func execute(t probes.Task) probes.Result {
	return probes.Result{
		TaskID:     t.ID,
		Experiment: t.Experiment,
		Kind:       t.Kind,
		OK:         true,
		RTTms:      42,
	}
}

// --- bias experiment ---------------------------------------------------

// biasSeedReport is one seed's naive-vs-scheduled comparison.
type biasSeedReport struct {
	Seed        int64   `json:"seed"`
	NaiveSkew   float64 `json:"naive_skew"`
	BiasedSkew  float64 `json:"biased_skew"`
	ReductionPc float64 `json:"reduction_pct"`
}

// biasRecord is the "bias" key of the bench JSON file.
type biasRecord struct {
	Probes      int              `json:"probes"`
	SkewedShare float64          `json:"skewed_share"`
	Rounds      int              `json:"rounds"`
	Seeds       []biasSeedReport `json:"seeds"`
}

// runBias quantifies the scheduler's effect: a fleet with most probes
// in one country serves a lease-constrained workload; total-variation
// skew of the served mix vs uniform-country targets is scored for naive
// FIFO and for the bias-aware scheduler. Lower is better; the run fails
// unless the scheduler wins on every seed.
func runBias(seed int64) (biasRecord, error) {
	const (
		nProbes     = 240
		skewedShare = 0.55 // share of the fleet in the overrepresented country
		rounds      = 6
		perLease    = 4
		perWave     = 3 // tasks enqueued per probe per round
	)
	targets := uniformTargets()
	rec := biasRecord{Probes: nProbes, SkewedShare: skewedShare, Rounds: rounds}
	for _, s := range []int64{seed, seed + 1, seed + 2} {
		naive := serveSkewedFleet(s, nProbes, skewedShare, rounds, perLease, perWave, core.CoverageTargets{})
		biased := serveSkewedFleet(s, nProbes, skewedShare, rounds, perLease, perWave, targets)
		nSkew := core.CoverageSkew(naive.Country, naive.ServedTotal, targets.Country)
		bSkew := core.CoverageSkew(biased.Country, biased.ServedTotal, targets.Country)
		sr := biasSeedReport{Seed: s, NaiveSkew: round4(nSkew), BiasedSkew: round4(bSkew)}
		if nSkew > 0 {
			sr.ReductionPc = round2((nSkew - bSkew) / nSkew * 100)
		}
		log.Printf("fleetsim: bias seed=%d naive_skew=%.4f biased_skew=%.4f (%.1f%% lower)",
			s, nSkew, bSkew, sr.ReductionPc)
		if bSkew >= nSkew {
			return rec, fmt.Errorf("bias scheduler did not reduce skew on seed %d (naive %.4f, biased %.4f)", s, nSkew, bSkew)
		}
		rec.Seeds = append(rec.Seeds, sr)
	}
	return rec, nil
}

// uniformTargets is the experiment's target mix: every fleet country
// deserves an equal share of served tasks.
func uniformTargets() core.CoverageTargets {
	t := core.CoverageTargets{Country: make(map[string]float64, len(fleetCountries))}
	for _, c := range fleetCountries {
		t.Country[c] = 1.0 / float64(len(fleetCountries))
	}
	return t
}

// serveSkewedFleet runs the lease-constrained workload on one in-memory
// controller and returns its coverage book. The fleet is skewed: around
// skewedShare of the probes sit in fleetCountries[0]; fresh task waves
// outpace lease capacity so every class always has queued work and the
// served mix is the scheduler's choice, not the queue's.
func serveSkewedFleet(seed int64, nProbes int, skewedShare float64, rounds, perLease, perWave int, targets core.CoverageTargets) core.CoverageReport {
	rng := rand.New(rand.NewSource(seed))
	ctrl := core.NewController("fleet")
	ctrl.LeaseTTL = 1 << 30
	if len(targets.Country) > 0 || len(targets.ASN) > 0 {
		ctrl.ConfigureCoverage(targets)
	}
	ids := make([]string, nProbes)
	for i := range ids {
		country := fleetCountries[0]
		if rng.Float64() >= skewedShare {
			country = fleetCountries[1+rng.Intn(len(fleetCountries)-1)]
		}
		ids[i] = fmt.Sprintf("b-%04d", i)
		if err := ctrl.RegisterProbe(core.ProbeInfo{
			ID: ids[i], Country: country,
			ASN: topology.ASN(36900 + rng.Intn(16)), Kind: "sim",
		}); err != nil {
			log.Fatalf("fleetsim: bias register: %v", err)
		}
	}
	wave := func() {
		as := make([]probes.Assignment, 0, nProbes*perWave)
		for _, id := range ids {
			for j := 0; j < perWave; j++ {
				as = append(as, probes.Assignment{
					ProbeID: id,
					Task:    probes.Task{Kind: probes.TaskPing, Target: "10.0.0.1"},
				})
			}
		}
		if _, err := ctrl.SubmitExperiment("fleet", "bias wave", as); err != nil {
			log.Fatalf("fleetsim: bias wave: %v", err)
		}
	}
	for r := 0; r < rounds; r++ {
		wave()
		// Seeded visiting order: probe arrival order must not encode the
		// country mix.
		order := rng.Perm(nProbes)
		for _, i := range order {
			ctrl.LeaseTasks(ids[i], perLease)
		}
	}
	return ctrl.Coverage()
}

// --- output -------------------------------------------------------------

// writeOut merges one top-level key into the bench JSON file without
// disturbing keys other tools (cmd/benchjson) own, then echoes the
// record to stdout.
func writeOut(path, key string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", key, raw)
	if path == "" {
		return nil
	}
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	doc[key] = raw
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
func round4(f float64) float64 { return float64(int(f*10000+0.5)) / 10000 }
