// benchjson folds `go test -bench` output into a before/after JSON
// record (BENCH_PR3.json). It reads benchmark output on stdin, parses
// every result line, and stores the best (minimum) ns/op per benchmark
// under the given label. When the output file ends up holding both a
// "before" and an "after" section, the tool computes per-benchmark
// speedups (before ns/op divided by after ns/op) so the recorded file is
// self-describing.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 . | \
//	    go run ./cmd/benchjson -label after -out BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated record for one benchmark under one label.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// File is the on-disk layout of BENCH_PR3.json.
type File struct {
	Note    string             `json:"note,omitempty"`
	Before  map[string]Result  `json:"before,omitempty"`
	After   map[string]Result  `json:"after,omitempty"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
	// Fleetsim and Bias are written by cmd/fleetsim into the same file;
	// carried through verbatim so a benchjson rewrite doesn't drop them.
	Fleetsim json.RawMessage `json:"fleetsim,omitempty"`
	Bias     json.RawMessage `json:"bias,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFig4OutageImpact-8   2   1649304469 ns/op   12 B/op   3 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func parse(lines *bufio.Scanner) map[string]Result {
	out := map[string]Result{}
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(lines.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := out[name]
		if r.Runs == 0 || ns < r.NsPerOp {
			r.NsPerOp = ns
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
		}
		r.Runs++
		out[name] = r
	}
	return out
}

func main() {
	label := flag.String("label", "after", `which section to fill: "before" or "after"`)
	out := flag.String("out", "BENCH_PR3.json", "output JSON file (merged in place)")
	note := flag.String("note", "", "free-form note recorded in the file")
	flag.Parse()

	if *label != "before" && *label != "after" {
		fmt.Fprintf(os.Stderr, "benchjson: -label must be before or after, got %q\n", *label)
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := parse(sc)
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *note != "" {
		f.Note = *note
	}
	if *label == "before" {
		f.Before = results
	} else {
		f.After = results
	}

	f.Speedup = nil
	if len(f.Before) > 0 && len(f.After) > 0 {
		f.Speedup = map[string]float64{}
		for name, b := range f.Before {
			a, ok := f.After[name]
			if !ok || a.NsPerOp <= 0 {
				continue
			}
			// Two decimals is plenty of precision for a wall-clock ratio.
			f.Speedup[name] = float64(int(b.NsPerOp/a.NsPerOp*100+0.5)) / 100
		}
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		line := fmt.Sprintf("%-40s %14.0f ns/op  (%d runs, min)", n, results[n].NsPerOp, results[n].Runs)
		if f.Speedup != nil {
			if s, ok := f.Speedup[n]; ok {
				line += fmt.Sprintf("  speedup %.2fx", s)
			}
		}
		fmt.Println(line)
	}
}
