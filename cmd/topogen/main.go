// Command topogen generates the synthetic Internet and writes it as
// JSON for inspection, hand-editing, or loading into external tooling.
// It can also summarize an existing topology file.
//
// Usage:
//
//	topogen [-seed 42] [-year 2025] [-o world.json]
//	topogen -summarize world.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed")
	year := flag.Int("year", 2025, "snapshot year")
	out := flag.String("o", "", "output file (default stdout)")
	summarize := flag.String("summarize", "", "summarize an existing topology JSON file instead of generating")
	flag.Parse()

	if *summarize != "" {
		f, err := os.Open(*summarize)
		if err != nil {
			log.Fatalf("topogen: %v", err)
		}
		defer f.Close()
		t, err := topology.ReadJSON(f)
		if err != nil {
			log.Fatalf("topogen: %v", err)
		}
		printSummary(t)
		return
	}

	t := topology.Generate(topology.Params{Seed: *seed, Year: *year})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("topogen: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := t.WriteJSON(w); err != nil {
		log.Fatalf("topogen: %v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "topogen: wrote %s (seed=%d year=%d)\n", *out, *seed, *year)
	}
}

func printSummary(t *topology.Topology) {
	fmt.Printf("topology seed=%d year=%d\n", t.Seed, t.Year)
	fmt.Printf("  ASes:     %d\n", len(t.ASNs()))
	fmt.Printf("  links:    %d\n", len(t.Links))
	fmt.Printf("  IXPs:     %d\n", len(t.IXPIDs()))
	fmt.Printf("  cables:   %d\n", len(t.CableIDs()))
	fmt.Printf("  conduits: %d\n", len(t.Conduits))
	perRegion := map[geo.Region]int{}
	for _, a := range t.ASNs() {
		perRegion[t.RegionOf(a)]++
	}
	for _, r := range geo.AllRegions() {
		if n := perRegion[r]; n > 0 {
			fmt.Printf("  %-16s %4d ASes\n", r.String()+":", n)
		}
	}
}
