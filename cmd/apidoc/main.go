// Command apidoc prints the observatory's v1 API reference, generated
// from the route table in internal/core. Regenerate the committed copy
// with:
//
//	go run ./cmd/apidoc > API.md
//
// A conformance test (internal/core) fails when API.md drifts from the
// route table, so the reference cannot go stale silently.
package main

import (
	"fmt"

	"github.com/afrinet/observatory/internal/core"
)

func main() {
	fmt.Print(core.APIDocMarkdown())
}
