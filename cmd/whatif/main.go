// Command whatif runs counterfactual scenarios over the synthetic
// Internet: cut cables, optionally mandate in-country resolvers, and
// report page-load success before and after per country.
//
// Usage:
//
//	whatif -cut WACS,MainOne,SAT-3,ACE [-mandate-local-resolvers] \
//	       [-countries NG,GH,CI] [-seed 42] [-sites 12]
//
// Without -cut it lists the available cable systems.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/whatif"

	obs "github.com/afrinet/observatory"
)

func main() {
	cut := flag.String("cut", "", "comma-separated cable names to cut")
	mandate := flag.Bool("mandate-local-resolvers", false, "force all clients onto in-country resolvers")
	countries := flag.String("countries", "", "comma-separated ISO2 codes to measure (default: all African)")
	seed := flag.Int64("seed", 42, "world seed")
	sites := flag.Int("sites", 12, "sites measured per country")
	flag.Parse()

	stack := obs.NewStack(obs.Config{Seed: *seed})

	if *cut == "" {
		fmt.Println("available cable systems:")
		for _, id := range stack.Topology.CableIDs() {
			c := stack.Topology.Cables[id]
			fmt.Printf("  %-14s (%d, corridor %s, %d landings)\n",
				c.Name, c.Born, c.Corridor, len(c.Landings))
		}
		return
	}

	var names []string
	for _, n := range strings.Split(*cut, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	cables := stack.FindCables(names...)
	if len(cables) != len(names) {
		fmt.Fprintf(os.Stderr, "whatif: some cables not found (resolved %d of %d)\n", len(cables), len(names))
		os.Exit(1)
	}

	var isoList []string
	if *countries != "" {
		for _, c := range strings.Split(*countries, ",") {
			if c = strings.TrimSpace(strings.ToUpper(c)); c != "" {
				isoList = append(isoList, c)
			}
		}
	}

	eng := stack.NewWhatIf()
	outcome := eng.Run(whatif.Scenario{
		Name:                  "cli",
		CutCables:             cables,
		MandateLocalResolvers: *mandate,
		Countries:             isoList,
		SitesPerCountry:       *sites,
	})

	tb := report.NewTable(
		fmt.Sprintf("Scenario: cut %s (mandate-local-resolvers=%v)", strings.Join(names, "+"), *mandate),
		"country", "region", "before %", "after %", "local after %", "dns-fail share %")
	for _, c := range outcome.Countries {
		local := "-"
		if c.LocalAfter >= 0 {
			local = fmt.Sprintf("%.0f", 100*c.LocalAfter)
		}
		tb.AddRow(c.Country, c.Region.String(),
			100*c.PageLoadBefore, 100*c.PageLoadAfter, local, 100*c.DNSFailShare)
	}
	tb.Render(os.Stdout)
	if len(outcome.Disconnected) > 0 {
		fmt.Printf("fully disconnected: %v\n", outcome.Disconnected)
	}
}
