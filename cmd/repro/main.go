// Command repro regenerates every table and figure of the paper against
// the synthetic substrate, plus the ablations and system validations
// DESIGN.md records. Output is deterministic for a fixed seed.
//
// Usage:
//
//	repro [-seed N] [-only <id>] [-csv dir]
//
// Experiment ids: fig1 fig2a fig2b fig2c fig3 fig4 table1 nautilus cover
// pilot whatif radar anycast websteps dnsload platform
// ablation-placement ablation-budget ablation-correlated.
//
// With -csv, figure series are also written as CSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/afrinet/observatory/internal/experiments"
	"github.com/afrinet/observatory/internal/report"
)

func main() {
	seed := flag.Int64("seed", 42, "generator seed")
	only := flag.String("only", "", "run a single experiment id")
	csvDir := flag.String("csv", "", "also write figure series as CSV into this directory")
	flag.Parse()

	type renderable interface{ Render(io.Writer) }
	w := os.Stdout

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("repro: %v", err)
		}
	}

	run := func(id, title string, fn func() renderable) {
		if *only != "" && *only != id {
			return
		}
		start := time.Now()
		r := fn()
		fmt.Fprintf(w, "\n################ %s ################\n", title)
		r.Render(w)
		fmt.Fprintf(w, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	// Figure 1 needs only the timeline, not the full stack.
	run("fig1", "FIGURE 1 — infrastructure growth", func() renderable {
		r := experiments.Fig1Growth(*seed)
		if *csvDir != "" {
			writeFig1CSV(*csvDir, r)
		}
		return r
	})

	var env *experiments.Env
	getEnv := func() *experiments.Env {
		if env == nil {
			env = experiments.NewEnv(*seed, 2025)
		}
		return env
	}

	run("fig2a", "FIGURE 2a — detour prevalence", func() renderable { return experiments.Fig2aDetours(getEnv()) })
	run("fig2b", "FIGURE 2b — content locality", func() renderable { return experiments.Fig2bContentLocality(getEnv()) })
	run("fig2c", "FIGURE 2c — resolver locality", func() renderable { return experiments.Fig2cResolverUse(getEnv()) })
	run("fig3", "FIGURE 3 — IXP prevalence", func() renderable { return experiments.Fig3IXPPrevalence(getEnv()) })
	run("fig4", "FIGURE 4 — outage impact", func() renderable { return experiments.Fig4Outages(getEnv()) })
	run("table1", "TABLE 1 — scanning coverage", func() renderable { return experiments.Table1Scan(getEnv()) })
	run("nautilus", "§6.2 — cable identification", func() renderable { return experiments.NautilusAmbiguity(getEnv()) })
	run("cover", "FOOTNOTE 1 — IXP set cover", func() renderable { return experiments.SetCoverPlacement(getEnv()) })
	run("pilot", "§7.3 — Kigali pilot", func() renderable { return experiments.KigaliPilot(getEnv()) })
	run("whatif", "WHAT-IF — correlated cable cut", func() renderable { return experiments.WhatIfCableCut(getEnv()) })
	run("radar", "VALIDATION — Radar-style detection", func() renderable { return experiments.RadarValidation(getEnv()) })
	run("anycast", "§7.2 WORKLOAD — anycast census", func() renderable { return experiments.AnycastCensus(getEnv()) })
	run("websteps", "§7.2 WORKLOAD — websteps censorship sweep", func() renderable {
		return experiments.WebstepsCensorship(getEnv())
	})
	run("dnsload", "§5.2 AT SCALE — ECS localization under paced DNS load", func() renderable {
		return experiments.DNSLocalization(getEnv())
	})
	run("platform", "SYSTEM — measurements through the live platform", func() renderable {
		r, err := experiments.PlatformRun(getEnv(), 24)
		if err != nil {
			log.Fatalf("repro: platform run: %v", err)
		}
		return r
	})
	run("ablation-placement", "ABLATION — probe placement", func() renderable { return experiments.AblationPlacement(getEnv()) })
	run("ablation-budget", "ABLATION — budget scheduling", func() renderable { return experiments.AblationBudget(getEnv()) })
	run("ablation-correlated", "ABLATION — correlated cable failures", func() renderable {
		return experiments.AblationCorrelatedCuts(getEnv())
	})
}

// writeFig1CSV emits one long-format CSV per Figure-1 metric.
func writeFig1CSV(dir string, r experiments.GrowthResult) {
	metrics := []struct {
		name string
		get  func(experiments.GrowthPoint) float64
	}{
		{"fig1_ixps.csv", func(p experiments.GrowthPoint) float64 { return float64(p.IXPs) }},
		{"fig1_cables.csv", func(p experiments.GrowthPoint) float64 { return float64(p.Cables) }},
		{"fig1_ases.csv", func(p experiments.GrowthPoint) float64 { return float64(p.ASes) }},
	}
	for _, m := range metrics {
		var series []report.Series
		for name, pts := range r.Series {
			s := report.Series{Name: name}
			for _, p := range pts {
				s.Points = append(s.Points, [2]float64{float64(p.Year), m.get(p)})
			}
			series = append(series, s)
		}
		f, err := os.Create(filepath.Join(dir, m.name))
		if err != nil {
			log.Fatalf("repro: %v", err)
		}
		if err := report.WriteCSV(f, series...); err != nil {
			log.Fatalf("repro: %v", err)
		}
		f.Close()
	}
}
