// Command obsd runs the observatory controller: the HTTP control plane
// probes register with, experimenters submit vetted experiments to, and
// analysts pull results from.
//
// Usage:
//
//	obsd [-listen 127.0.0.1:8600] [-trusted owner1,owner2]
//
// Probes (cmd/obsprobe) sharing the controller's world seed connect to
// the same simulated Internet, so a controller plus a fleet of probe
// processes forms a working distributed deployment on one machine.
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"

	"github.com/afrinet/observatory/internal/core"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8600", "address to serve the control-plane API on")
	trusted := flag.String("trusted", "upanzi,research-team", "comma-separated trusted experiment owners")
	flag.Parse()

	var cohort []string
	for _, t := range strings.Split(*trusted, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cohort = append(cohort, t)
		}
	}
	ctrl := core.NewController(cohort...)

	log.Printf("obsd: serving control plane on http://%s (trusted cohort: %v)", *listen, cohort)
	if err := http.ListenAndServe(*listen, ctrl.Handler()); err != nil {
		log.Fatalf("obsd: %v", err)
	}
}
