// Command obsd runs the observatory controller: the HTTP control plane
// probes register with, experimenters submit vetted experiments to, and
// analysts pull results from.
//
// Usage:
//
//	obsd [-listen 127.0.0.1:8600] [-trusted owner1,owner2]
//	     [-tick 5s] [-lease-ttl 3] [-suspect-after 2] [-dead-after 5]
//	     [-data-dir /var/lib/obsd] [-snapshot-every 1024]
//	     [-store-dir DIR] [-retention N] [-compact-every N]
//	     [-debug-addr 127.0.0.1:8601]
//	     [-max-inflight N] [-route-rates query=2:8,...] [-retry-after 1]
//
// The controller's at-least-once task pipeline runs on a logical tick
// clock: every -tick interval obsd advances it once, which expires
// stale leases (requeueing their tasks), downgrades silent probes to
// suspect/dead, and reassigns dead probes' queues to live peers. Fleet
// health is logged whenever it changes and is always available at
// GET /api/v1/health and /api/v1/stats.
//
// With -debug-addr obsd opens a second, operator-only listener serving
// net/http/pprof under /debug/pprof/ and the same Prometheus exposition
// the API serves at /metrics. Keep it bound to loopback or a management
// network: unlike the API listener it exposes profiling data.
//
// With -data-dir the controller is crash-safe: every mutation is
// appended to a checksummed write-ahead journal before it is
// acknowledged, a compacted snapshot is taken every -snapshot-every
// records, and a restarted obsd resumes exactly where it left off.
// While recovery replays, the API answers 503 with Retry-After so
// probes retry through the outage. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight HTTP requests drain, a final snapshot is taken,
// and the journal is closed cleanly.
//
// Result payloads live in a log-structured results store beside the
// journal (-store-dir, default <data-dir>/store): the WAL carries only
// dedup bookkeeping, so snapshots and replay stay small no matter how
// many results accumulate. Every -compact-every ticks obsd runs a store
// maintenance sweep that merges small segments and, with -retention N,
// drops results older than N ticks. Analysts query the store through
// GET /api/v1/query (aggregations and filtered scans) and the paginated
// /api/v1/experiments/{id}/results endpoint.
//
// With -shards N obsd runs a federated tier instead of a single
// controller: N shard controllers (each with its own journal and store
// under <data-dir>/shard-i) behind a coordinator that routes probes by
// consistent hashing, fans queries out with per-shard deadlines and
// hedged retries, and — with -shard-failover (default on) — fails a
// dead shard over onto a replacement recovered from a shipped copy of
// its journal. With -coordinator url1,url2 the shards are remote obsd
// processes instead. The API surface is identical either way; analysts
// see `degraded: true` and `shards_missing` on partial query results
// while a shard is down.
//
// Probes (cmd/obsprobe) sharing the controller's world seed connect to
// the same simulated Internet, so a controller plus a fleet of probe
// processes forms a working distributed deployment on one machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/federation"
	"github.com/afrinet/observatory/internal/obs"
)

// parseRouteRates parses "route=perTick:burst[,...]" into rate limits.
func parseRouteRates(spec string) (map[string]core.RateLimit, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]core.RateLimit)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%q is not route=perTick:burst", part)
		}
		per, burst, ok := strings.Cut(val, ":")
		if !ok {
			return nil, fmt.Errorf("%q is not route=perTick:burst", part)
		}
		p, err := strconv.ParseFloat(per, 64)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad perTick in %q", part)
		}
		b, err := strconv.ParseFloat(burst, 64)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("bad burst in %q", part)
		}
		out[strings.TrimSpace(name)] = core.RateLimit{PerTick: p, Burst: b}
	}
	return out, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8600", "address to serve the control-plane API on")
	trusted := flag.String("trusted", "upanzi,research-team", "comma-separated trusted experiment owners")
	tick := flag.Duration("tick", 5*time.Second, "wall-clock interval per controller tick (lease/liveness sweep)")
	leaseTTL := flag.Int64("lease-ttl", 3, "ticks a probe may hold a leased task before it is requeued")
	suspectAfter := flag.Int64("suspect-after", 2, "silent ticks before a probe is suspect")
	deadAfter := flag.Int64("dead-after", 5, "silent ticks before a probe is dead and its queue reassigned")
	dataDir := flag.String("data-dir", "", "journal+snapshot directory for crash-safe state (empty = in-memory only)")
	snapEvery := flag.Int("snapshot-every", 1024, "journal records between automatic compacted snapshots (with -data-dir)")
	storeDir := flag.String("store-dir", "", "results-store segment directory (default <data-dir>/store; with -data-dir)")
	retention := flag.Int64("retention", 0, "drop stored results older than this many ticks at compaction (0 = keep forever)")
	compactEvery := flag.Int64("compact-every", 256, "ticks between results-store compaction sweeps (0 = never)")
	debugAddr := flag.String("debug-addr", "", "optional operator listener serving /debug/pprof/ and /metrics (empty = off)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently-executing requests; low-priority routes shed at half this bound (0 = unbounded)")
	routeRates := flag.String("route-rates", "", "admission control: per-route token buckets as route=perTick:burst[,route=perTick:burst...], e.g. query=2:8 (empty = no rate limits)")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds suggested on shed (429) responses")
	shards := flag.Int("shards", 0, "run a federated tier of N local shard controllers behind a coordinator (0 = single controller)")
	coordinator := flag.String("coordinator", "", "run a coordinator over remote shards at these comma-separated base URLs (mutually exclusive with -shards)")
	shardSuspect := flag.Int64("shard-suspect-after", 3, "silent ticks before a shard is suspect (federated modes)")
	shardDead := flag.Int64("shard-dead-after", 6, "silent ticks before a shard is dead and eligible for failover (federated modes)")
	queryDeadline := flag.Duration("query-deadline", 2*time.Second, "per-shard deadline on federated scatter-gather calls")
	hedgeAfter := flag.Duration("hedge-after", 250*time.Millisecond, "delay before a federated call hedges a second attempt (0 = no hedging)")
	shardFailover := flag.Bool("shard-failover", true, "fail dead local shards over by shipping journal+store to a replacement (with -shards and -data-dir)")
	flag.Parse()

	if *shards > 0 && *coordinator != "" {
		log.Fatalf("obsd: -shards and -coordinator are mutually exclusive")
	}

	var cohort []string
	for _, t := range strings.Split(*trusted, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cohort = append(cohort, t)
		}
	}

	// Bind the listener before recovery so probes reconnecting after a
	// restart get 503 (retried by their client) instead of connection
	// refused.
	gate := core.NewRecoveryGate()
	srv := &http.Server{Handler: gate}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("obsd: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var admission core.AdmissionConfig
	if *maxInflight > 0 || *routeRates != "" {
		rates, err := parseRouteRates(*routeRates)
		if err != nil {
			log.Fatalf("obsd: -route-rates: %v", err)
		}
		admission = core.AdmissionConfig{
			MaxInFlight:       *maxInflight,
			RouteRates:        rates,
			RetryAfterSeconds: *retryAfter,
		}
		log.Printf("obsd: admission control on (max-inflight=%d route-rates=%q)", *maxInflight, *routeRates)
	}
	shardDurability := core.DurabilityConfig{
		Trusted:       cohort,
		LeaseTTL:      *leaseTTL,
		SuspectAfter:  *suspectAfter,
		DeadAfter:     *deadAfter,
		SnapshotEvery: *snapEvery,
		Retention:     *retention,
	}
	fedCfg := federation.Config{
		SuspectAfter:  *shardSuspect,
		DeadAfter:     *shardDead,
		QueryDeadline: *queryDeadline,
		HedgeAfter:    *hedgeAfter,
		AutoFailover:  *shardFailover,
		Admission:     admission,
	}

	var svc service
	switch {
	case *shards > 0:
		svc = buildLocalFederation(*shards, *dataDir, shardDurability, fedCfg, *shardFailover)
	case *coordinator != "":
		svc = buildRemoteFederation(*coordinator, *dataDir, fedCfg)
	default:
		var ctrl *core.Controller
		if *dataDir != "" {
			log.Printf("obsd: recovering state from %s ...", *dataDir)
			start := time.Now()
			cfg := shardDurability
			cfg.StoreDir = *storeDir
			ctrl, err = core.Recover(*dataDir, cfg)
			if err != nil {
				log.Fatalf("obsd: recover: %v", err)
			}
			d := ctrl.DurabilityCounters()
			log.Printf("obsd: recovered in %s (replayed=%d truncated_tail=%d tick=%d)",
				time.Since(start).Round(time.Millisecond),
				d["recovery_replayed"], d["recovery_truncated_tail"], ctrl.Now())
		} else {
			if *storeDir != "" {
				log.Printf("obsd: warning: -store-dir ignored without -data-dir (results stay in memory)")
			}
			ctrl = core.NewController(cohort...)
			ctrl.LeaseTTL = *leaseTTL
			ctrl.SuspectAfter = *suspectAfter
			ctrl.DeadAfter = *deadAfter
		}
		ctrl.ConfigureAdmission(admission)
		svc = &singleService{ctrl: ctrl}
	}
	gate.Ready(svc.Handler())

	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = svc.Observability().WritePrometheus(w)
		})
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("obsd: debug listener: %v", err)
		}
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				log.Printf("obsd: debug listener: %v", err)
			}
		}()
		log.Printf("obsd: debug listener (pprof + metrics) on http://%s", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		last := svc.Health()
		t := time.NewTicker(*tick)
		defer t.Stop()
		var ticks int64
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			svc.Tick(1)
			if ticks++; *compactEvery > 0 && ticks%*compactEvery == 0 {
				svc.Maintain()
			}
			h := svc.Health()
			if h.Status != last.Status || h.ProbesDead != last.ProbesDead || h.ProbesSuspect != last.ProbesSuspect {
				log.Printf("obsd: fleet %s — alive=%d suspect=%d dead=%d queued=%d leased=%d",
					h.Status, h.ProbesAlive, h.ProbesSuspect, h.ProbesDead, h.QueuedTasks, h.OutstandingLeases)
			}
			last = h
		}
	}()

	mode := "single controller"
	if *shards > 0 {
		mode = fmt.Sprintf("%d local shards + coordinator", *shards)
	} else if *coordinator != "" {
		mode = fmt.Sprintf("coordinator over %s", *coordinator)
	}
	log.Printf("obsd: serving control plane on http://%s (%s, trusted cohort: %v, tick=%s lease-ttl=%d data-dir=%q)",
		ln.Addr(), mode, cohort, *tick, *leaseTTL, *dataDir)

	select {
	case err := <-serveErr:
		log.Fatalf("obsd: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting work, drain in-flight requests,
	// then snapshot and close the journal so the next start replays
	// nothing.
	log.Printf("obsd: shutting down (draining in-flight requests)...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("obsd: http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("obsd: closing journal: %v", err)
	} else if *dataDir != "" {
		log.Printf("obsd: final snapshot written to %s", *dataDir)
	}
	log.Printf("obsd: bye")
}

// service is what the serving loop needs from either topology: a single
// controller or a federated coordinator.
type service interface {
	Handler() http.Handler
	Tick(n int)
	Health() core.HealthReport
	Observability() *obs.Registry
	Maintain() // periodic store maintenance sweep
	Close() error
}

type singleService struct{ ctrl *core.Controller }

func (s *singleService) Handler() http.Handler        { return s.ctrl.Handler() }
func (s *singleService) Tick(n int)                   { s.ctrl.Tick(n) }
func (s *singleService) Health() core.HealthReport    { return s.ctrl.Health() }
func (s *singleService) Observability() *obs.Registry { return s.ctrl.Observability() }
func (s *singleService) Close() error                 { return s.ctrl.Close() }

func (s *singleService) Maintain() {
	if err := s.ctrl.CompactStore(); err != nil {
		log.Printf("obsd: store compaction: %v", err)
	}
}

type fedService struct {
	coord  *federation.Coordinator
	locals map[string]*federation.LocalShard // empty in -coordinator mode
}

func (s *fedService) Handler() http.Handler        { return s.coord.Handler() }
func (s *fedService) Tick(n int)                   { s.coord.Tick(n) }
func (s *fedService) Health() core.HealthReport    { return s.coord.Health() }
func (s *fedService) Observability() *obs.Registry { return s.coord.Observability() }

func (s *fedService) Maintain() {
	for id, ls := range s.locals {
		if ctrl := ls.Controller(); ctrl != nil {
			if err := ctrl.CompactStore(); err != nil {
				log.Printf("obsd: %s store compaction: %v", id, err)
			}
		}
	}
}

func (s *fedService) Close() error {
	err := s.coord.Close()
	for id, ls := range s.locals {
		if ctrl := ls.Kill(); ctrl != nil {
			if cerr := ctrl.Close(); cerr != nil {
				log.Printf("obsd: closing %s: %v", id, cerr)
			}
		}
	}
	return err
}

// buildLocalFederation boots N shard controllers (durable under
// <data-dir>/shard-i when -data-dir is set) behind a coordinator whose
// own shard map journals under <data-dir>/coordinator. With failover
// enabled and a data dir, a dead shard's journal and store are shipped
// to <data-dir>/shard-i-epochN and recovered there.
func buildLocalFederation(n int, dataDir string, shardCfg core.DurabilityConfig, fedCfg federation.Config, failover bool) service {
	coordDir := ""
	if dataDir != "" {
		coordDir = filepath.Join(dataDir, "coordinator")
	}
	coord, err := federation.New(coordDir, fedCfg)
	if err != nil {
		log.Fatalf("obsd: coordinator: %v", err)
	}
	locals := make(map[string]*federation.LocalShard, n)
	dirOf := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("shard-%d", i)
		var ctrl *core.Controller
		if dataDir != "" {
			dirOf[id] = filepath.Join(dataDir, id)
			start := time.Now()
			ctrl, err = core.Recover(dirOf[id], shardCfg)
			if err != nil {
				log.Fatalf("obsd: recover %s: %v", id, err)
			}
			d := ctrl.DurabilityCounters()
			log.Printf("obsd: %s recovered in %s (replayed=%d tick=%d)",
				id, time.Since(start).Round(time.Millisecond), d["recovery_replayed"], ctrl.Now())
		} else {
			ctrl = core.NewController(shardCfg.Trusted...)
			ctrl.LeaseTTL = shardCfg.LeaseTTL
			ctrl.SuspectAfter = shardCfg.SuspectAfter
			ctrl.DeadAfter = shardCfg.DeadAfter
		}
		locals[id] = federation.NewLocalShard(ctrl)
		if err := coord.AddShard(id, locals[id]); err != nil {
			log.Fatalf("obsd: add %s: %v", id, err)
		}
	}
	if failover && dataDir != "" {
		coord.Failover = func(id string, epoch int) (federation.Shard, error) {
			ls, ok := locals[id]
			if !ok {
				return nil, fmt.Errorf("unknown shard %s", id)
			}
			dst := filepath.Join(dataDir, fmt.Sprintf("%s-epoch%d", id, epoch))
			log.Printf("obsd: failing %s over: shipping %s -> %s", id, dirOf[id], dst)
			if err := federation.ShipState(dirOf[id], dst, "", ""); err != nil {
				return nil, err
			}
			ctrl, err := core.Recover(dst, shardCfg)
			if err != nil {
				return nil, err
			}
			dirOf[id] = dst
			ls.Revive(ctrl)
			log.Printf("obsd: %s failed over to epoch %d", id, epoch)
			return ls, nil
		}
	} else if failover {
		log.Printf("obsd: warning: -shard-failover needs -data-dir to ship state; dead shards will 503 until restart")
	}
	return &fedService{coord: coord, locals: locals}
}

// buildRemoteFederation runs a coordinator over remote obsd shard
// processes; each base URL is the shard's id, so the shard map is
// stable across coordinator restarts as long as the fleet's addresses
// are.
func buildRemoteFederation(urls, dataDir string, fedCfg federation.Config) service {
	coordDir := ""
	if dataDir != "" {
		coordDir = filepath.Join(dataDir, "coordinator")
	}
	coord, err := federation.New(coordDir, fedCfg)
	if err != nil {
		log.Fatalf("obsd: coordinator: %v", err)
	}
	added := 0
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u == "" {
			continue
		}
		if err := coord.AddShard(u, federation.NewHTTPShard(core.NewClient(u))); err != nil {
			log.Fatalf("obsd: add shard %s: %v", u, err)
		}
		added++
	}
	if added == 0 {
		log.Fatalf("obsd: -coordinator needs at least one shard URL")
	}
	return &fedService{coord: coord, locals: map[string]*federation.LocalShard{}}
}
