// Command obsd runs the observatory controller: the HTTP control plane
// probes register with, experimenters submit vetted experiments to, and
// analysts pull results from.
//
// Usage:
//
//	obsd [-listen 127.0.0.1:8600] [-trusted owner1,owner2]
//	     [-tick 5s] [-lease-ttl 3] [-suspect-after 2] [-dead-after 5]
//
// The controller's at-least-once task pipeline runs on a logical tick
// clock: every -tick interval obsd advances it once, which expires
// stale leases (requeueing their tasks), downgrades silent probes to
// suspect/dead, and reassigns dead probes' queues to live peers. Fleet
// health is logged whenever it changes and is always available at
// GET /api/v1/health and /api/v1/stats.
//
// Probes (cmd/obsprobe) sharing the controller's world seed connect to
// the same simulated Internet, so a controller plus a fleet of probe
// processes forms a working distributed deployment on one machine.
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/afrinet/observatory/internal/core"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8600", "address to serve the control-plane API on")
	trusted := flag.String("trusted", "upanzi,research-team", "comma-separated trusted experiment owners")
	tick := flag.Duration("tick", 5*time.Second, "wall-clock interval per controller tick (lease/liveness sweep)")
	leaseTTL := flag.Int64("lease-ttl", 3, "ticks a probe may hold a leased task before it is requeued")
	suspectAfter := flag.Int64("suspect-after", 2, "silent ticks before a probe is suspect")
	deadAfter := flag.Int64("dead-after", 5, "silent ticks before a probe is dead and its queue reassigned")
	flag.Parse()

	var cohort []string
	for _, t := range strings.Split(*trusted, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cohort = append(cohort, t)
		}
	}
	ctrl := core.NewController(cohort...)
	ctrl.LeaseTTL = *leaseTTL
	ctrl.SuspectAfter = *suspectAfter
	ctrl.DeadAfter = *deadAfter

	go func() {
		last := ctrl.Health()
		for range time.Tick(*tick) {
			ctrl.Tick(1)
			h := ctrl.Health()
			if h.Status != last.Status || h.ProbesDead != last.ProbesDead || h.ProbesSuspect != last.ProbesSuspect {
				log.Printf("obsd: fleet %s — alive=%d suspect=%d dead=%d queued=%d leased=%d",
					h.Status, h.ProbesAlive, h.ProbesSuspect, h.ProbesDead, h.QueuedTasks, h.OutstandingLeases)
			}
			last = h
		}
	}()

	log.Printf("obsd: serving control plane on http://%s (trusted cohort: %v, tick=%s lease-ttl=%d)",
		*listen, cohort, *tick, *leaseTTL)
	if err := http.ListenAndServe(*listen, ctrl.Handler()); err != nil {
		log.Fatalf("obsd: %v", err)
	}
}
