// Command obsd runs the observatory controller: the HTTP control plane
// probes register with, experimenters submit vetted experiments to, and
// analysts pull results from.
//
// Usage:
//
//	obsd [-listen 127.0.0.1:8600] [-trusted owner1,owner2]
//	     [-tick 5s] [-lease-ttl 3] [-suspect-after 2] [-dead-after 5]
//	     [-data-dir /var/lib/obsd] [-snapshot-every 1024]
//	     [-store-dir DIR] [-retention N] [-compact-every N]
//	     [-debug-addr 127.0.0.1:8601]
//	     [-max-inflight N] [-route-rates query=2:8,...] [-retry-after 1]
//
// The controller's at-least-once task pipeline runs on a logical tick
// clock: every -tick interval obsd advances it once, which expires
// stale leases (requeueing their tasks), downgrades silent probes to
// suspect/dead, and reassigns dead probes' queues to live peers. Fleet
// health is logged whenever it changes and is always available at
// GET /api/v1/health and /api/v1/stats.
//
// With -debug-addr obsd opens a second, operator-only listener serving
// net/http/pprof under /debug/pprof/ and the same Prometheus exposition
// the API serves at /metrics. Keep it bound to loopback or a management
// network: unlike the API listener it exposes profiling data.
//
// With -data-dir the controller is crash-safe: every mutation is
// appended to a checksummed write-ahead journal before it is
// acknowledged, a compacted snapshot is taken every -snapshot-every
// records, and a restarted obsd resumes exactly where it left off.
// While recovery replays, the API answers 503 with Retry-After so
// probes retry through the outage. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight HTTP requests drain, a final snapshot is taken,
// and the journal is closed cleanly.
//
// Result payloads live in a log-structured results store beside the
// journal (-store-dir, default <data-dir>/store): the WAL carries only
// dedup bookkeeping, so snapshots and replay stay small no matter how
// many results accumulate. Every -compact-every ticks obsd runs a store
// maintenance sweep that merges small segments and, with -retention N,
// drops results older than N ticks. Analysts query the store through
// GET /api/v1/query (aggregations and filtered scans) and the paginated
// /api/v1/experiments/{id}/results endpoint.
//
// Probes (cmd/obsprobe) sharing the controller's world seed connect to
// the same simulated Internet, so a controller plus a fleet of probe
// processes forms a working distributed deployment on one machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/afrinet/observatory/internal/core"
)

// parseRouteRates parses "route=perTick:burst[,...]" into rate limits.
func parseRouteRates(spec string) (map[string]core.RateLimit, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]core.RateLimit)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%q is not route=perTick:burst", part)
		}
		per, burst, ok := strings.Cut(val, ":")
		if !ok {
			return nil, fmt.Errorf("%q is not route=perTick:burst", part)
		}
		p, err := strconv.ParseFloat(per, 64)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad perTick in %q", part)
		}
		b, err := strconv.ParseFloat(burst, 64)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("bad burst in %q", part)
		}
		out[strings.TrimSpace(name)] = core.RateLimit{PerTick: p, Burst: b}
	}
	return out, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8600", "address to serve the control-plane API on")
	trusted := flag.String("trusted", "upanzi,research-team", "comma-separated trusted experiment owners")
	tick := flag.Duration("tick", 5*time.Second, "wall-clock interval per controller tick (lease/liveness sweep)")
	leaseTTL := flag.Int64("lease-ttl", 3, "ticks a probe may hold a leased task before it is requeued")
	suspectAfter := flag.Int64("suspect-after", 2, "silent ticks before a probe is suspect")
	deadAfter := flag.Int64("dead-after", 5, "silent ticks before a probe is dead and its queue reassigned")
	dataDir := flag.String("data-dir", "", "journal+snapshot directory for crash-safe state (empty = in-memory only)")
	snapEvery := flag.Int("snapshot-every", 1024, "journal records between automatic compacted snapshots (with -data-dir)")
	storeDir := flag.String("store-dir", "", "results-store segment directory (default <data-dir>/store; with -data-dir)")
	retention := flag.Int64("retention", 0, "drop stored results older than this many ticks at compaction (0 = keep forever)")
	compactEvery := flag.Int64("compact-every", 256, "ticks between results-store compaction sweeps (0 = never)")
	debugAddr := flag.String("debug-addr", "", "optional operator listener serving /debug/pprof/ and /metrics (empty = off)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently-executing requests; low-priority routes shed at half this bound (0 = unbounded)")
	routeRates := flag.String("route-rates", "", "admission control: per-route token buckets as route=perTick:burst[,route=perTick:burst...], e.g. query=2:8 (empty = no rate limits)")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds suggested on shed (429) responses")
	flag.Parse()

	var cohort []string
	for _, t := range strings.Split(*trusted, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cohort = append(cohort, t)
		}
	}

	// Bind the listener before recovery so probes reconnecting after a
	// restart get 503 (retried by their client) instead of connection
	// refused.
	gate := core.NewRecoveryGate()
	srv := &http.Server{Handler: gate}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("obsd: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var ctrl *core.Controller
	if *dataDir != "" {
		log.Printf("obsd: recovering state from %s ...", *dataDir)
		start := time.Now()
		ctrl, err = core.Recover(*dataDir, core.DurabilityConfig{
			Trusted:       cohort,
			LeaseTTL:      *leaseTTL,
			SuspectAfter:  *suspectAfter,
			DeadAfter:     *deadAfter,
			SnapshotEvery: *snapEvery,
			StoreDir:      *storeDir,
			Retention:     *retention,
		})
		if err != nil {
			log.Fatalf("obsd: recover: %v", err)
		}
		d := ctrl.DurabilityCounters()
		log.Printf("obsd: recovered in %s (replayed=%d truncated_tail=%d tick=%d)",
			time.Since(start).Round(time.Millisecond),
			d["recovery_replayed"], d["recovery_truncated_tail"], ctrl.Now())
	} else {
		if *storeDir != "" {
			log.Printf("obsd: warning: -store-dir ignored without -data-dir (results stay in memory)")
		}
		ctrl = core.NewController(cohort...)
		ctrl.LeaseTTL = *leaseTTL
		ctrl.SuspectAfter = *suspectAfter
		ctrl.DeadAfter = *deadAfter
	}
	if *maxInflight > 0 || *routeRates != "" {
		rates, err := parseRouteRates(*routeRates)
		if err != nil {
			log.Fatalf("obsd: -route-rates: %v", err)
		}
		ctrl.ConfigureAdmission(core.AdmissionConfig{
			MaxInFlight:       *maxInflight,
			RouteRates:        rates,
			RetryAfterSeconds: *retryAfter,
		})
		log.Printf("obsd: admission control on (max-inflight=%d route-rates=%q)", *maxInflight, *routeRates)
	}
	gate.Ready(ctrl.Handler())

	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = ctrl.Observability().WritePrometheus(w)
		})
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("obsd: debug listener: %v", err)
		}
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				log.Printf("obsd: debug listener: %v", err)
			}
		}()
		log.Printf("obsd: debug listener (pprof + metrics) on http://%s", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		last := ctrl.Health()
		t := time.NewTicker(*tick)
		defer t.Stop()
		var ticks int64
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			ctrl.Tick(1)
			if ticks++; *compactEvery > 0 && ticks%*compactEvery == 0 {
				if err := ctrl.CompactStore(); err != nil {
					log.Printf("obsd: store compaction: %v", err)
				}
			}
			h := ctrl.Health()
			if h.Status != last.Status || h.ProbesDead != last.ProbesDead || h.ProbesSuspect != last.ProbesSuspect {
				log.Printf("obsd: fleet %s — alive=%d suspect=%d dead=%d queued=%d leased=%d",
					h.Status, h.ProbesAlive, h.ProbesSuspect, h.ProbesDead, h.QueuedTasks, h.OutstandingLeases)
			}
			last = h
		}
	}()

	log.Printf("obsd: serving control plane on http://%s (trusted cohort: %v, tick=%s lease-ttl=%d data-dir=%q)",
		ln.Addr(), cohort, *tick, *leaseTTL, *dataDir)

	select {
	case err := <-serveErr:
		log.Fatalf("obsd: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting work, drain in-flight requests,
	// then snapshot and close the journal so the next start replays
	// nothing.
	log.Printf("obsd: shutting down (draining in-flight requests)...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("obsd: http shutdown: %v", err)
	}
	if err := ctrl.Close(); err != nil {
		log.Printf("obsd: closing journal: %v", err)
	} else if *dataDir != "" {
		log.Printf("obsd: final snapshot written to %s", *dataDir)
	}
	log.Printf("obsd: bye")
}
