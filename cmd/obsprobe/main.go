// Command obsprobe runs one observatory probe agent: it registers with a
// controller, leases measurement tasks, executes them against the
// simulated Internet (selected by -seed, which must match the fleet's),
// and uploads results.
//
// Usage:
//
//	obsprobe -controller http://127.0.0.1:8600 -id kgl-01 -asn 36924 \
//	         [-seed 42] [-wired] [-budget 5.0] [-bundle-mb 20] [-poll 1]
//
// Without -wired the probe is cellular-only and meters every task
// against a prepaid bundle budget, failing tasks once the budget is
// exhausted — the Section 7.1 cost-consciousness in practice.
package main

import (
	"flag"
	"log"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"

	obs "github.com/afrinet/observatory"
)

func main() {
	controller := flag.String("controller", "http://127.0.0.1:8600", "controller base URL")
	id := flag.String("id", "", "probe id (required)")
	asn := flag.Uint("asn", 0, "hosting network ASN (required)")
	seed := flag.Int64("seed", 42, "world seed (must match the fleet)")
	year := flag.Int("year", 2025, "world snapshot year")
	wired := flag.Bool("wired", false, "probe site has fixed broadband (unmetered)")
	budget := flag.Float64("budget", 5.0, "cellular money budget")
	bundleMB := flag.Int64("bundle-mb", 20, "prepaid bundle size (MB)")
	bundlePrice := flag.Float64("bundle-price", 1.0, "prepaid bundle price")
	outageProb := flag.Float64("outage-prob", 0.0, "hourly grid-power outage probability")
	poll := flag.Duration("poll", time.Second, "task poll interval")
	once := flag.Bool("once", false, "drain the queue once and exit")
	flag.Parse()

	if *id == "" || *asn == 0 {
		log.Fatal("obsprobe: -id and -asn are required")
	}

	log.Printf("obsprobe %s: generating world (seed=%d year=%d)...", *id, *seed, *year)
	stack := obs.NewStack(obs.Config{Seed: *seed, Year: *year})
	if stack.Topology.ASes[topology.ASN(*asn)] == nil {
		log.Fatalf("obsprobe: AS%d does not exist in this world", *asn)
	}

	cfg := probes.Config{
		ID:       *id,
		ASN:      topology.ASN(*asn),
		HasWired: *wired,
	}
	if !*wired {
		cfg.CellBudget = probes.NewBudget(
			probes.PrepaidBundle{BundleMB: *bundleMB, BundlePrice: *bundlePrice}, *budget)
	}
	if *outageProb > 0 {
		cfg.Power = probes.NewPowerModel(*seed, *outageProb)
	}
	agent := stack.NewAgent(cfg)

	cl := core.NewClient(*controller)
	if err := cl.Register(core.ProbeInfo{
		ID: *id, ASN: topology.ASN(*asn),
		Country:  stack.Topology.ASes[topology.ASN(*asn)].Country,
		HasWired: *wired, Kind: "hardware",
	}); err != nil {
		log.Fatalf("obsprobe: register: %v", err)
	}
	log.Printf("obsprobe %s: registered at %s (AS%d, wired=%v)", *id, *controller, *asn, *wired)

	for {
		n, err := core.RunAgentOnce(cl, agent)
		if err != nil {
			// Transient faults are retried inside the client; anything
			// surfacing here abandons the round. The controller requeues
			// whatever we leased once the lease expires.
			log.Printf("obsprobe %s: %v", *id, err)
		}
		if n > 0 {
			log.Printf("obsprobe %s: completed %d tasks", *id, n)
		}
		if err != nil {
			// Lease/upload calls double as liveness contact; a round
			// that failed outright recorded none, so heartbeat
			// explicitly lest the controller declare us dead and
			// reassign our queue.
			if herr := cl.Heartbeat(*id); herr != nil {
				log.Printf("obsprobe %s: heartbeat: %v", *id, herr)
			}
		}
		if *once {
			return
		}
		agent.Hour++ // advance simulated time-of-day each poll round
		time.Sleep(*poll)
	}
}
