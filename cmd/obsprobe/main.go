// Command obsprobe runs one observatory probe agent: it registers with a
// controller, leases measurement tasks, executes them against the
// simulated Internet (selected by -seed, which must match the fleet's),
// and uploads results.
//
// Usage:
//
//	obsprobe -controller http://127.0.0.1:8600 -id kgl-01 -asn 36924 \
//	         [-seed 42] [-wired] [-budget 5.0] [-bundle-mb 20] [-poll 1]
//	         [-spool-dir /var/lib/obsprobe] [-spool-max 4096]
//	         [-breaker-threshold 0] [-sync] [-wait 5s] [-websteps]
//
// Without -wired the probe is cellular-only and meters every task
// against a prepaid bundle budget, failing tasks once the budget is
// exhausted — the Section 7.1 cost-consciousness in practice.
//
// With -spool-dir every completed result is fsynced to a disk outbox
// (internal/spool) before upload is attempted, so a probe killed by a
// power cut restarts and delivers its backlog instead of re-running
// the measurements; -spool-max bounds the backlog, evicting oldest
// first. -breaker-threshold N trips a circuit breaker after N
// consecutive transport failures so a dead uplink fails fast instead of
// burning the retry budget (0 disables).
//
// With -websteps the agent is armed with the step-following web
// measurement engine (internal/websim) under the seed's default
// interference policy, so it can execute "websteps" tasks; without the
// flag those tasks fail with "agent has no websteps engine".
//
// With -sync (requires -spool-dir) the probe uses the batched
// POST /probes/sync hot path: each round-trip carries the heartbeat,
// the next spooled result frame, and the lease request together, and
// idle rounds long-poll server-side for up to -wait so fresh work is
// delivered the moment it is enqueued instead of on the next -poll.
//
// On SIGINT/SIGTERM the probe shuts down gracefully: it finishes the
// task batch it is executing, attempts one final upload of any results
// that previous rounds failed to deliver, and exits. Anything still
// undelivered waits in the spool for the next start (or, without
// -spool-dir, is recovered by the controller's lease expiry) — a killed
// probe never strands work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/spool"
	"github.com/afrinet/observatory/internal/topology"

	observatory "github.com/afrinet/observatory"
)

func main() {
	controller := flag.String("controller", "http://127.0.0.1:8600", "controller base URL")
	id := flag.String("id", "", "probe id (required)")
	asn := flag.Uint("asn", 0, "hosting network ASN (required)")
	seed := flag.Int64("seed", 42, "world seed (must match the fleet)")
	year := flag.Int("year", 2025, "world snapshot year")
	wired := flag.Bool("wired", false, "probe site has fixed broadband (unmetered)")
	budget := flag.Float64("budget", 5.0, "cellular money budget")
	bundleMB := flag.Int64("bundle-mb", 20, "prepaid bundle size (MB)")
	bundlePrice := flag.Float64("bundle-price", 1.0, "prepaid bundle price")
	outageProb := flag.Float64("outage-prob", 0.0, "hourly grid-power outage probability")
	poll := flag.Duration("poll", time.Second, "task poll interval")
	once := flag.Bool("once", false, "drain the queue once and exit")
	spoolDir := flag.String("spool-dir", "", "durable result outbox directory (empty = hold results in memory only)")
	spoolMax := flag.Int("spool-max", 0, "max undelivered results spooled before oldest are evicted (0 = default 4096, negative = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive transport failures before the uplink circuit breaker trips (0 = disabled)")
	syncMode := flag.Bool("sync", false, "use the batched /probes/sync hot path (requires -spool-dir)")
	wait := flag.Duration("wait", 0, "long-poll duration for idle sync rounds (0 = return immediately; only with -sync)")
	websteps := flag.Bool("websteps", false, "arm the websteps engine (seed's default interference policy) so \"websteps\" tasks execute")
	flag.Parse()

	if *id == "" || *asn == 0 {
		log.Fatal("obsprobe: -id and -asn are required")
	}
	if *syncMode && *spoolDir == "" {
		log.Fatal("obsprobe: -sync requires -spool-dir (the sync path delivers from the durable outbox)")
	}

	log.Printf("obsprobe %s: generating world (seed=%d year=%d)...", *id, *seed, *year)
	stack := observatory.NewStack(observatory.Config{Seed: *seed, Year: *year})
	if stack.Topology.ASes[topology.ASN(*asn)] == nil {
		log.Fatalf("obsprobe: AS%d does not exist in this world", *asn)
	}

	cfg := probes.Config{
		ID:       *id,
		ASN:      topology.ASN(*asn),
		HasWired: *wired,
	}
	if !*wired {
		cfg.CellBudget = probes.NewBudget(
			probes.PrepaidBundle{BundleMB: *bundleMB, BundlePrice: *bundlePrice}, *budget)
	}
	if *outageProb > 0 {
		cfg.Power = probes.NewPowerModel(*seed, *outageProb)
	}
	agent := stack.NewAgent(cfg)
	if *websteps {
		agent.EnableWebsteps(stack.NewWebsteps(*seed))
	}

	cl := core.NewClient(*controller)
	reg := obs.NewRegistry()
	cl.Obs = reg
	cl.BreakerThreshold = *breakerThreshold

	var sp *spool.Spool
	if *spoolDir != "" {
		var err error
		sp, err = spool.Open(*spoolDir, spool.Options{MaxPending: *spoolMax})
		if err != nil {
			log.Fatalf("obsprobe: %v", err)
		}
		defer sp.Close()
		if n := sp.Len(); n > 0 {
			log.Printf("obsprobe %s: spool holds %d undelivered results from a previous run", *id, n)
		}
	}
	// One counter family covers the probe's whole resilience story:
	// spool depth/evictions plus breaker trips and Retry-After honors.
	reg.AddCounters("obs_probe_resilience_total", func() map[string]int64 {
		out := cl.ResilienceCounters()
		if sp != nil {
			for k, v := range sp.Counters() {
				out[k] = v
			}
		}
		return out
	})

	if err := cl.Register(core.ProbeInfo{
		ID: *id, ASN: topology.ASN(*asn),
		Country:  stack.Topology.ASes[topology.ASN(*asn)].Country,
		HasWired: *wired, Kind: "hardware",
	}); err != nil {
		log.Fatalf("obsprobe: register: %v", err)
	}
	log.Printf("obsprobe %s: registered at %s (AS%d, wired=%v)", *id, *controller, *asn, *wired)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Without a spool, pending holds results whose upload failed even
	// after retries; they are flushed on later rounds and in one final
	// attempt at shutdown. With -spool-dir the disk outbox plays this
	// role durably and flush drains it instead. Late delivery is safe
	// either way: the controller dedups by (experiment, task).
	var pending []probes.Result
	flush := func() {
		if sp != nil {
			if n, err := core.FlushSpool(cl, *id, sp, 64); err != nil {
				log.Printf("obsprobe %s: flushing spool (%d still pending): %v", *id, sp.Len(), err)
			} else if n > 0 {
				log.Printf("obsprobe %s: delivered %d spooled results", *id, n)
			}
			return
		}
		if len(pending) == 0 {
			return
		}
		if err := cl.SubmitResults(*id, pending); err != nil {
			log.Printf("obsprobe %s: flushing %d held results: %v", *id, len(pending), err)
			return
		}
		log.Printf("obsprobe %s: delivered %d held results", *id, len(pending))
		pending = nil
	}

	for {
		// A signal mid-batch lets the batch finish: the drain executes
		// and uploads synchronously, and we only check ctx between
		// rounds.
		var n int
		var err error
		if *syncMode {
			// One round-trip per round: heartbeat + spooled results +
			// lease ask travel together, and idle rounds park server-side
			// for up to -wait instead of returning empty.
			n, err = core.DrainWithSync(cl, agent, sp, *wait)
		} else if sp != nil {
			n, err = core.DrainWithSpool(cl, agent, sp)
		} else {
			var leftover []probes.Result
			n, leftover, err = core.DrainOnce(cl, agent)
			pending = append(pending, leftover...)
		}
		if err != nil {
			// Transient faults are retried inside the client; anything
			// surfacing here abandons the round. The controller requeues
			// whatever we leased once the lease expires — except results
			// we already executed, which are held in pending.
			log.Printf("obsprobe %s: %v", *id, err)
		}
		if n > 0 {
			log.Printf("obsprobe %s: completed %d tasks", *id, n)
		}
		flush()
		if err != nil {
			// Lease/upload calls double as liveness contact; a round
			// that failed outright recorded none, so heartbeat
			// explicitly lest the controller declare us dead and
			// reassign our queue.
			if herr := cl.Heartbeat(*id); herr != nil {
				log.Printf("obsprobe %s: heartbeat: %v", *id, herr)
			}
		}
		if *once {
			break
		}
		agent.Hour++ // advance simulated time-of-day each poll round
		select {
		case <-ctx.Done():
			log.Printf("obsprobe %s: signal received, shutting down", *id)
			flush() // one final delivery attempt for held results
			if sp != nil && sp.Len() > 0 {
				log.Printf("obsprobe %s: exiting with %d spooled results (delivered on next start)",
					*id, sp.Len())
			} else if len(pending) > 0 {
				log.Printf("obsprobe %s: exiting with %d undelivered results (lease expiry will requeue them)",
					*id, len(pending))
			}
			logResilience(*id, cl, sp)
			logLatencies(*id, reg)
			log.Printf("obsprobe %s: bye", *id)
			return
		case <-time.After(*poll):
		}
	}
	flush()
	logResilience(*id, cl, sp)
	logLatencies(*id, reg)
}

// logResilience prints the probe's non-zero resilience counters at
// shutdown: spool depth and evictions, breaker trips, Retry-After
// honors — the field-conditions ledger for this run.
func logResilience(id string, cl *core.Client, sp *spool.Spool) {
	vals := cl.ResilienceCounters()
	if sp != nil {
		for k, v := range sp.Counters() {
			vals[k] = v
		}
	}
	names := make([]string, 0, len(vals))
	for name, v := range vals {
		if v != 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%d", name, vals[name])
	}
	log.Printf("obsprobe %s: resilience %s", id, strings.Join(parts, " "))
}

// logLatencies prints the probe's own view of controller latency at
// shutdown: one line per API call (lease polls, result submits, ...)
// with count, mean, p50/p99, and max. The same numbers the controller
// aggregates server-side, but measured from the probe's end of the
// flaky link — the side the paper argues is underobserved.
func logLatencies(id string, reg *obs.Registry) {
	snaps := reg.Snapshots()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := snaps[name]
		if s.Count == 0 {
			continue
		}
		log.Printf("obsprobe %s: latency %s count=%d mean=%s p50=%s p99=%s max=%s",
			id, name, s.Count,
			s.Mean.Round(time.Microsecond), s.P50, s.P99, s.Max.Round(time.Microsecond))
	}
}
