// Radarmon runs the observatory's outage monitor: it simulates four
// months of per-country traffic, detects outages from the traffic
// series alone (Radar-style sustained-drop detection), and prints the
// outage-center view next to the ground truth the detector never saw.
package main

import (
	"fmt"
	"sort"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/topology"
)

func main() {
	topo := topology.Generate(topology.DefaultParams())
	net := netsim.New(topo, bgp.New(topo), 42)
	model := outage.NewModel(net, 42)

	const days = 120
	rep := model.RunRadar(days, 42)

	fmt.Printf("outage monitor — %d days simulated\n", days)
	fmt.Printf("detector recall on sustained outages: %.0f%%  (duration error %.2f days)\n\n",
		100*rep.Recall, rep.MeanDurationError)

	var countries []string
	for c := range rep.Detected {
		countries = append(countries, c)
	}
	sort.Strings(countries)

	fmt.Println("detected country-outages (from traffic only):")
	shown := 0
	for _, c := range countries {
		for _, w := range rep.Detected[c] {
			cause := "?"
			// Look for a ground-truth impact overlapping the window —
			// the validation a real deployment cannot do.
			for _, imp := range rep.Impacts {
				if imp.Country != c {
					continue
				}
				s, e := int(imp.StartDay*24), int((imp.StartDay+imp.Duration)*24)
				if w.StartHour < e && w.EndHour > s {
					cause = imp.Cause.String()
					break
				}
			}
			fmt.Printf("  %s  day %5.1f  %5.1fh long  depth %3.0f%%  (truth: %s)\n",
				c, float64(w.StartHour)/24, float64(w.EndHour-w.StartHour), 100*w.Depth, cause)
			shown++
			if shown >= 20 {
				fmt.Printf("  ... and more (%d countries had detections)\n", len(countries))
				return
			}
		}
	}
}
