// Cablecut replays the March 2024 West-African submarine cable disaster:
// four systems sharing the coastal corridor (WACS, MainOne, SAT-3, ACE)
// fail together, and the example measures what West African users
// experience — then shows how a local-resolver mandate changes the
// outcome for locally hosted services (the paper's Section 5
// resilience argument).
package main

import (
	"fmt"
	"os"

	"github.com/afrinet/observatory/internal/report"

	obs "github.com/afrinet/observatory"
)

func main() {
	stack := obs.NewStack(obs.Config{Seed: 42})
	eng := stack.NewWhatIf()

	cut := stack.FindCables("WACS", "MainOne", "SAT-3", "ACE")
	fmt.Printf("cutting %d cable systems in the west-africa-coastal corridor\n\n", len(cut))

	west := []string{"NG", "GH", "CI", "SN", "BJ", "TG", "LR", "SL", "GN", "GM"}

	for _, mandate := range []bool{false, true} {
		outcome := eng.Run(obs.Scenario{
			Name:                  "march-2024-west",
			CutCables:             cut,
			Countries:             west,
			SitesPerCountry:       15,
			MandateLocalResolvers: mandate,
		})
		title := "baseline (resolvers as deployed today)"
		if mandate {
			title = "with a local-resolver mandate"
		}
		tb := report.NewTable(title,
			"country", "page loads before %", "after %", "local content after %")
		for _, c := range outcome.Countries {
			local := "-"
			if c.LocalAfter >= 0 {
				local = fmt.Sprintf("%.0f", 100*c.LocalAfter)
			}
			tb.AddRow(c.Country, 100*c.PageLoadBefore, 100*c.PageLoadAfter, local)
		}
		tb.Render(os.Stdout)
		if len(outcome.Disconnected) > 0 {
			fmt.Printf("fully disconnected: %v\n", outcome.Disconnected)
		}
		fmt.Println()
	}

	fmt.Println("note how countries served by a single corridor go fully dark, and how the")
	fmt.Println("mandate only helps where the content itself is hosted in-country.")
}
