// Quickstart: generate the synthetic African Internet, run a traceroute
// from the Kigali pilot probe toward a content network, detect the
// exchanges it crosses, and inspect the DNS dependency of a Rwandan
// client — the observatory's basic measurement loop in ~60 lines.
package main

import (
	"fmt"

	obs "github.com/afrinet/observatory"
)

func main() {
	stack := obs.NewStack(obs.Config{Seed: 42, Year: 2025})
	fmt.Printf("world: %d ASes, %d IXPs, %d cables\n",
		len(stack.Topology.ASNs()), len(stack.Topology.IXPIDs()), len(stack.Topology.CableIDs()))

	// Traceroute from the Kigali probe (AS36924) to GlobalCDN-A (AS15169).
	const kigali = obs.ASN(36924)
	dst := stack.Net.RouterAddr(15169, 0)
	tr := stack.Net.Traceroute(kigali, dst)
	fmt.Printf("\ntraceroute AS%d -> %s (reached=%v, rtt=%.1fms):\n", kigali, dst, tr.Reached, tr.RTT)
	for _, h := range tr.Hops {
		if h.Addr == 0 {
			fmt.Printf("  %2d  *\n", h.TTL)
			continue
		}
		fmt.Printf("  %2d  %-15s  %6.1f ms\n", h.TTL, h.Addr, h.RTT)
	}

	// Detect exchange crossings with directory data only.
	origin := func(a obs.Addr) (obs.ASN, bool) {
		owner, ok := stack.Net.OwnerOf(a)
		return owner, ok
	}
	for _, cr := range stack.Detector.Detect(tr, origin) {
		fmt.Printf("crossed exchange: %s (TTL %d, strong=%v)\n", cr.Name, cr.HopTTL, cr.Strong)
	}

	// Where does a Rwandan client's DNS actually run?
	r := stack.DNS.ResolverFor(kigali)
	fmt.Printf("\nAS%d recursive resolver: %s", kigali, r.Kind)
	if r.Country != "" {
		fmt.Printf(" (hosted in %s)", r.Country)
	}
	fmt.Println()

	// And where is Rwandan content served from?
	ls := stack.Web.MeasureLocality("RW")
	fmt.Printf("content served from inside Africa for RW clients: %.0f%% of top sites\n", 100*ls.Local)
}
