// Platform runs the whole observatory as a distributed system on
// localhost: a controller serving the HTTP control plane, three probe
// agents (a wired Kigali probe, a budgeted cellular probe in Dakar, a
// cellular probe in Lagos), an experiment submitted by an untrusted
// owner that needs review, and a vetted DNS-dependency audit whose
// results are collected back through the API.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"

	obs "github.com/afrinet/observatory"
)

func main() {
	stack := obs.NewStack(obs.Config{Seed: 42})

	// --- Controller over a real socket ---
	ctrl := obs.NewController("upanzi")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: ctrl.Handler()}
	go srv.Serve(ln) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Println("controller listening on", base)

	// --- Three probes in different markets ---
	mkProbe := func(id string, asn obs.ASN, wired bool, pricing probes.PricingModel) *obs.Agent {
		cfg := obs.AgentConfig{ID: id, ASN: asn, HasWired: wired}
		if !wired {
			cfg.CellBudget = probes.NewBudget(pricing, 5.0)
		}
		cl := obs.NewClient(base)
		info := obs.ProbeInfo{ID: id, ASN: asn, Country: stack.Topology.ASes[asn].Country, HasWired: wired}
		if err := cl.Register(info); err != nil {
			log.Fatal(err)
		}
		return stack.NewAgent(cfg)
	}
	dakar := firstEyeball(stack, "SN")
	lagos := firstEyeball(stack, "NG")
	agents := map[string]*obs.Agent{
		"kgl-01": mkProbe("kgl-01", 36924, true, nil),
		"dkr-01": mkProbe("dkr-01", dakar, false, probes.PrepaidBundle{BundleMB: 20, BundlePrice: 1.2}),
		"los-01": mkProbe("los-01", lagos, false, probes.PerMB{RatePerMB: 0.02}),
	}

	cl := obs.NewClient(base)
	ps, _ := cl.Probes()
	fmt.Printf("registered probes: %d\n", len(ps))

	// --- An untrusted submission waits for review ---
	pending, err := cl.Submit("someone-new", "exploratory transport tests", []obs.Assignment{
		{ProbeID: "kgl-01", Task: obs.Task{Kind: probes.TaskPing, Target: stack.Net.RouterAddr(15169, 0).String()}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s from untrusted owner: status=%s (vetting required)\n", pending.ID, pending.Status)
	if err := cl.Approve(pending.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s approved by the review cohort\n", pending.ID)

	// --- A trusted DNS-dependency audit across all three probes ---
	var assignments []obs.Assignment
	for id, agent := range agents {
		sites := stack.Web.Catalog().SitesFor(stack.Topology.ASes[agent.ASN()].Country)
		for i := 0; i < 5 && i < len(sites); i++ {
			assignments = append(assignments, obs.Assignment{
				ProbeID: id,
				Task: obs.Task{
					Kind:          probes.TaskDNS,
					Domain:        sites[i].Domain,
					OriginCountry: sites[i].Country,
				},
			})
		}
	}
	audit, err := cl.Submit("upanzi", "resolver locality audit", assignments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s from trusted owner: status=%s\n", audit.ID, audit.Status)

	// --- Agents drain their queues over HTTP ---
	for id, agent := range agents {
		n, err := core.RunAgentOnce(obs.NewClient(base), agent)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("probe %s processed %d tasks\n", id, n)
	}

	// --- Collect and summarize results ---
	results, err := cl.Results(audit.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresolver locality audit — %d results:\n", len(results))
	byKind := map[string]int{}
	for _, r := range results {
		byKind[r.ResolverKind]++
	}
	for kind, n := range byKind {
		fmt.Printf("  %-14s %d lookups\n", kind, n)
	}
	srv.Close()
}

func firstEyeball(stack *obs.Stack, iso2 string) obs.ASN {
	for _, a := range stack.Topology.ASesIn(iso2) {
		as := stack.Topology.ASes[a]
		if as.Type.String() == "mobile" || as.Type.String() == "fixed-isp" {
			return a
		}
	}
	panic("no eyeball in " + iso2)
}
