// Ixpcover plans an observatory deployment: it runs footnote 1's greedy
// set cover over the exchange directory to find the minimal set of host
// networks that puts a probe behind every African IXP, and compares that
// placement's coverage with the Atlas-like baseline at equal budgets.
package main

import (
	"fmt"
	"os"

	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/report"

	obs "github.com/afrinet/observatory"
)

func main() {
	stack := obs.NewStack(obs.Config{Seed: 42})
	dir := stack.AfricanIXPs()

	chosen := obs.GreedyIXPCover(dir)
	fmt.Printf("%d vantage ASNs cover all %d African exchanges:\n", len(chosen), len(dir))
	for i, a := range chosen {
		as := stack.Topology.ASes[a]
		fmt.Printf("  %2d. AS%-6d %-22s (%s)\n", i+1, a, as.Name, as.Country)
	}

	tb := report.NewTable("\nIXP coverage at equal probe budgets",
		"probes", "set-cover placement", "atlas-like placement")
	for _, n := range []int{5, 10, 20, 30, len(chosen)} {
		cut := chosen
		if n < len(cut) {
			cut = cut[:n]
		}
		tb.AddRow(n, ixp.CoverageOf(dir, cut), ixp.CoverageOf(dir, stack.AtlasPlacement(n)))
	}
	tb.Render(os.Stdout)
}
