module github.com/afrinet/observatory

go 1.23
