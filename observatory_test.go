package observatory

import (
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/probes"
)

var (
	stackOnce sync.Once
	stack     *Stack
)

func testStack(t *testing.T) *Stack {
	t.Helper()
	stackOnce.Do(func() { stack = NewStack(Config{Seed: 42, Year: 2025}) })
	return stack
}

func TestStackWiring(t *testing.T) {
	s := testStack(t)
	if s.Topology == nil || s.Router == nil || s.Net == nil || s.DNS == nil ||
		s.Web == nil || s.GeoDB == nil || s.Detector == nil {
		t.Fatal("stack incompletely wired")
	}
	if len(s.Directory) == 0 {
		t.Fatal("empty directory")
	}
	if len(s.AfricanIXPs()) != 77 {
		t.Fatalf("African IXPs = %d", len(s.AfricanIXPs()))
	}
}

func TestStackDefaultYear(t *testing.T) {
	s := NewStack(Config{Seed: 1})
	if s.Topology.Year != 2025 {
		t.Fatalf("default year = %d", s.Topology.Year)
	}
}

func TestQuickstartFlow(t *testing.T) {
	s := testStack(t)
	tr := s.Net.Traceroute(36924, s.Net.RouterAddr(15169, 0))
	if len(tr.Hops) == 0 {
		t.Fatal("empty traceroute")
	}
	origin := func(a Addr) (ASN, bool) { return s.Net.OwnerOf(a) }
	_ = s.Detector.Detect(tr, origin) // must not panic
	r := s.DNS.ResolverFor(36924)
	if r.Kind.String() == "" {
		t.Fatal("no resolver assignment")
	}
}

func TestPlacements(t *testing.T) {
	s := testStack(t)
	targeted := s.TargetedPlacement()
	atlas := s.AtlasPlacement(48)
	if len(targeted) == 0 || len(atlas) == 0 {
		t.Fatal("placements empty")
	}
	cover := GreedyIXPCover(s.AfricanIXPs())
	if len(cover) < 15 || len(cover) > 50 {
		t.Fatalf("cover = %d ASNs", len(cover))
	}
}

func TestWhatIfFacade(t *testing.T) {
	s := testStack(t)
	eng := s.NewWhatIf()
	cut := s.FindCables("SEACOM", "EASSy")
	if len(cut) != 2 {
		t.Fatalf("east cables = %d", len(cut))
	}
	out := eng.Run(Scenario{Name: "east", CutCables: cut, Countries: []string{"KE", "TZ"}, SitesPerCountry: 4})
	if len(out.Countries) != 2 {
		t.Fatalf("countries = %d", len(out.Countries))
	}
	if n := len(s.Net.CutCables()); n != 0 {
		t.Fatalf("%d cables left cut", n)
	}
}

func TestCableInferenceFacade(t *testing.T) {
	s := testStack(t)
	inf := s.NewCableInference()
	tr := s.Net.Traceroute(36924, s.Net.RouterAddr(701, 0))
	pm := inf.MapTraceroute(tr, s.Net)
	_ = pm // mapping may be empty for some paths; the call must work
}

// TestPlatformEndToEnd runs the distributed control loop through a real
// HTTP server with two agents, including a budget-constrained one.
func TestPlatformEndToEnd(t *testing.T) {
	s := testStack(t)
	ctrl := NewController("upanzi")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL)

	wired := s.NewAgent(AgentConfig{ID: "w1", ASN: 36924, HasWired: true})
	cell := s.NewAgent(AgentConfig{
		ID: "c1", ASN: 36924,
		CellBudget: probes.NewBudget(probes.PrepaidBundle{BundleMB: 20, BundlePrice: 1}, 5),
	})
	for _, a := range []*Agent{wired, cell} {
		if err := cl.Register(ProbeInfo{ID: a.ID(), ASN: a.ASN(), Country: "RW"}); err != nil {
			t.Fatal(err)
		}
	}

	target := s.Net.RouterAddr(15169, 0).String()
	var asg []Assignment
	for _, id := range []string{"w1", "c1"} {
		asg = append(asg, Assignment{ProbeID: id, Task: Task{Kind: probes.TaskTraceroute, Target: target}})
	}
	exp, err := cl.Submit("upanzi", "e2e", asg)
	if err != nil {
		t.Fatal(err)
	}

	for _, a := range []*Agent{wired, cell} {
		if _, err := core.RunAgentOnce(cl, a); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := cl.Results(exp.ID)
	if err != nil || len(rs) != 2 {
		t.Fatalf("results: %v, %d", err, len(rs))
	}
	for _, r := range rs {
		if !r.OK {
			t.Fatalf("failed result %+v", r)
		}
	}
	if !ctrl.Done(exp.ID) {
		t.Fatal("experiment not done")
	}
}

func TestFig1Facade(t *testing.T) {
	r := Fig1Growth(42)
	if r.AfricaIXPGrowthPct < 400 {
		t.Fatalf("growth = %v", r.AfricaIXPGrowthPct)
	}
}

func TestExperimentsFacade(t *testing.T) {
	e := Experiments(testStack(t))
	if got := e.SetCoverPlacement(); got.Universe != 77 {
		t.Fatalf("universe = %d", got.Universe)
	}
	if got := e.Fig2cResolverUse(); len(got.Regions) != 5 {
		t.Fatalf("regions = %d", len(got.Regions))
	}
}
