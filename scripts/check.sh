#!/bin/sh
# check.sh — the repo's tier-1 verification gate:
#   gofmt -l (no unformatted files), go vet, build, a determinism lint,
#   and the full test suite under the race detector (uncached).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== determinism lint =="
# The controller, journal, results store, and probe spool must be
# replay-deterministic: wall-clock reads belong in main(), never in
# these packages. Logical time comes in via Tick / journaled ops, and
# the store's retention clock is the controller's tick counter.
if git grep -n 'time\.Now()' -- internal/core internal/journal internal/store internal/spool; then
    echo "determinism lint: time.Now() is forbidden in internal/core, internal/journal, internal/store, and internal/spool" >&2
    exit 1
fi

echo "== envelope lint =="
# All of internal/core's response writing funnels through envelope.go
# (writeJSON / writeAPIError), so every non-2xx body carries the uniform
# {"error": {code, message, request_id}} envelope. A stray http.Error or
# naked WriteHeader elsewhere in the package bypasses it.
if git grep -n 'http\.Error(\|WriteHeader(' -- internal/core ':!internal/core/envelope.go'; then
    echo "envelope lint: http.Error / WriteHeader are forbidden in internal/core outside envelope.go" >&2
    exit 1
fi

echo "== go test -race =="
go test -race -count=1 ./...

echo "== chaos smoke =="
# The test suite above already ran the chaos drill at its default seed;
# this runs a second, fixed timeline so every check exercises two
# schedules. The harness is fully seeded — a failure here reproduces
# with exactly this environment.
OBS_CHAOS_SEED=1337 OBS_CHAOS_ROUNDS=48 \
    go test -count=1 -run '^TestChaosScheduleEndToEnd$' ./internal/core

echo "== bench smoke =="
# Every benchmark must still run (one iteration each); guards against
# bit-rot in the harness scripts/bench.sh relies on.
go test -run '^$' -bench . -benchtime=1x -count=1 . > /dev/null

echo "OK"
