#!/bin/sh
# check.sh — the repo's tier-1 verification gate:
#   gofmt -l (no unformatted files), go vet, build, a determinism lint,
#   and the full test suite under the race detector (uncached).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== determinism lint =="
# The controller, journal, results store, probe spool, and federation
# tier must be replay-deterministic: wall-clock reads belong in main(),
# never in these packages. Logical time comes in via Tick / journaled
# ops, and the store's retention clock is the controller's tick counter.
# (Federation's hedge/deadline timers use time.NewTimer on durations,
# which is allowed: they never read the wall clock into state.)
# cmd/fleetsim is held to the same bar: its load timing goes through
# internal/obs (StartTimer/Elapsed), so the bench harness itself stays
# clock-discipline clean.
if git grep -n 'time\.Now()' -- internal/core internal/journal internal/store internal/spool internal/federation cmd/fleetsim; then
    echo "determinism lint: time.Now() is forbidden in internal/core, internal/journal, internal/store, internal/spool, internal/federation, and cmd/fleetsim" >&2
    exit 1
fi

echo "== envelope lint =="
# All of internal/core's response writing funnels through envelope.go
# (writeJSON / writeAPIError), so every non-2xx body carries the uniform
# {"error": {code, message, request_id}} envelope. A stray http.Error or
# naked WriteHeader elsewhere in the package bypasses it.
if git grep -n 'http\.Error(\|WriteHeader(' -- internal/core internal/federation ':!internal/core/envelope.go'; then
    echo "envelope lint: http.Error / WriteHeader are forbidden in internal/core (outside envelope.go) and internal/federation" >&2
    exit 1
fi

echo "== go test -race =="
# -shuffle=on randomizes test order within each package: tests that
# secretly depend on a sibling's side effects fail here instead of in a
# future refactor. The shuffle seed is printed on failure for replay.
go test -race -count=1 -shuffle=on ./...

echo "== chaos smoke =="
# The test suite above already ran the chaos drills at their default
# seeds; these run second, fixed timelines so every check exercises two
# schedules of each. The harnesses are fully seeded — a failure here
# reproduces with exactly this environment.
OBS_CHAOS_SEED=1337 OBS_CHAOS_ROUNDS=48 \
    go test -count=1 -run '^TestChaosScheduleEndToEnd$' ./internal/core
OBS_FED_CHAOS_SEED=1337 OBS_FED_CHAOS_ROUNDS=40 \
    go test -count=1 -run '^TestShardChaosEndToEnd$' ./internal/federation

echo "== bench smoke =="
# Every benchmark must still run (one iteration each); guards against
# bit-rot in the harness scripts/bench.sh relies on.
go test -run '^$' -bench . -benchtime=1x -count=1 . > /dev/null
go test -run '^$' -bench . -benchtime=1x -count=1 ./internal/core > /dev/null

echo "== fleetsim smoke =="
# A small fleet through both wire protocols under the race detector:
# the run itself asserts exactly-once completion (accepted == recorded,
# no dedups/rejects/requeues, no outstanding leases) and exits non-zero
# on any violation.
go run -race ./cmd/fleetsim -probes 1000 -duration 30s -tasks-per-probe 4 -workers 16

echo "OK"
