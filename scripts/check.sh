#!/bin/sh
# check.sh — the repo's tier-1 verification gate:
#   gofmt -l (no unformatted files), go vet, build, a determinism lint,
#   and the full test suite under the race detector (uncached).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== determinism lint =="
# The controller, journal, results store, probe spool, and federation
# tier must be replay-deterministic: wall-clock reads belong in main(),
# never in these packages. Logical time comes in via Tick / journaled
# ops, and the store's retention clock is the controller's tick counter.
# (Federation's hedge/deadline timers use time.NewTimer on durations,
# which is allowed: they never read the wall clock into state.)
# cmd/fleetsim is held to the same bar: its load timing goes through
# internal/obs (StartTimer/Elapsed), so the bench harness itself stays
# clock-discipline clean. internal/websim and internal/archival join the
# list in PR9: websteps measurements and their archival records must be
# a pure function of (seed, topology, policy) so sweeps replay
# byte-identically — latencies are modeled, never measured.
# internal/dnssim and internal/dnsload join in PR10: resolver chains and
# the paced load driver run in purely logical time (token-bucket send
# times, modeled RTTs), so identical configs aggregate identically at
# any worker count.
if git grep -n 'time\.Now()' -- internal/core internal/journal internal/store internal/spool internal/federation internal/websim internal/archival internal/dnssim internal/dnsload cmd/fleetsim; then
    echo "determinism lint: time.Now() is forbidden in internal/core, internal/journal, internal/store, internal/spool, internal/federation, internal/websim, internal/archival, internal/dnssim, internal/dnsload, and cmd/fleetsim" >&2
    exit 1
fi
# The websteps stack draws all randomness from seeded splitmix64
# streams; math/rand (even seeded) would tie verdicts to call order and
# break the serial-vs-parallel equivalence contract, so the import
# itself is banned in these two packages. (internal/outage's schedule
# generator may use a locally seeded rand.Rand — its draws happen once,
# serially, at generation time.)
if git grep -n '"math/rand"' -- internal/websim internal/archival internal/dnssim internal/dnsload; then
    echo "determinism lint: math/rand is forbidden in internal/websim, internal/archival, internal/dnssim, and internal/dnsload — use seeded splitmix64 streams" >&2
    exit 1
fi

echo "== envelope lint =="
# All of internal/core's response writing funnels through envelope.go
# (writeJSON / writeAPIError), so every non-2xx body carries the uniform
# {"error": {code, message, request_id}} envelope. A stray http.Error or
# naked WriteHeader elsewhere in the package bypasses it.
if git grep -n 'http\.Error(\|WriteHeader(' -- internal/core internal/federation ':!internal/core/envelope.go'; then
    echo "envelope lint: http.Error / WriteHeader are forbidden in internal/core (outside envelope.go) and internal/federation" >&2
    exit 1
fi

echo "== go test -race =="
# -shuffle=on randomizes test order within each package: tests that
# secretly depend on a sibling's side effects fail here instead of in a
# future refactor. The shuffle seed is printed on failure for replay.
go test -race -count=1 -shuffle=on ./...

echo "== chaos smoke =="
# The test suite above already ran the chaos drills at their default
# seeds; these run second, fixed timelines so every check exercises two
# schedules of each. The harnesses are fully seeded — a failure here
# reproduces with exactly this environment.
OBS_CHAOS_SEED=1337 OBS_CHAOS_ROUNDS=48 \
    go test -count=1 -run '^TestChaosScheduleEndToEnd$' ./internal/core
OBS_FED_CHAOS_SEED=1337 OBS_FED_CHAOS_ROUNDS=40 \
    go test -count=1 -run '^TestShardChaosEndToEnd$' ./internal/federation

echo "== bench smoke =="
# Every benchmark must still run (one iteration each); guards against
# bit-rot in the harness scripts/bench.sh relies on.
go test -run '^$' -bench . -benchtime=1x -count=1 . > /dev/null
go test -run '^$' -bench . -benchtime=1x -count=1 ./internal/core > /dev/null
# The dnsload high-QPS engine gets a named smoke: one full 1M-query
# paced run must complete (the root sweep above already includes it;
# this line keeps the target visible and fails loudly if it is renamed).
go test -run '^$' -bench '^BenchmarkDNSLoad$' -benchtime=1x -count=1 . > /dev/null

echo "== fleetsim smoke =="
# A small fleet through both wire protocols under the race detector:
# the run itself asserts exactly-once completion (accepted == recorded,
# no dedups/rejects/requeues, no outstanding leases) and exits non-zero
# on any violation.
go run -race ./cmd/fleetsim -probes 1000 -duration 30s -tasks-per-probe 4 -workers 16

echo "OK"
