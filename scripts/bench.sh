#!/bin/sh
# bench.sh — run the benchmark suites and fold the results into
# BENCH_PR10.json via cmd/benchjson (min ns/op across -count runs), then
# run the fleetsim load + bias experiments into the same file.
# BenchmarkDNSLoad (1M paced queries per iteration) and BenchmarkStoreIngest
# (held at its PR 9 baseline) both ride in the root sweep.
#
# Usage:
#   scripts/bench.sh               # record the "after" section + fleetsim
#   scripts/bench.sh before        # record the "before" section only
#   BENCH_COUNT=5 scripts/bench.sh # more repetitions (default 3)
#   FLEET_PROBES=100000 FLEET_DURATION=300s scripts/bench.sh  # full-scale
#
# When both sections are present the JSON gains a per-benchmark
# "speedup" map (before ns/op / after ns/op). The fleetsim keys
# ("fleetsim", "bias") are merged in place and survive benchjson reruns.
set -eu

cd "$(dirname "$0")/.."

label="${1:-after}"
count="${BENCH_COUNT:-3}"
benchtime="${BENCH_TIME:-1x}"
out="${BENCH_OUT:-BENCH_PR10.json}"
probes="${FLEET_PROBES:-20000}"
duration="${FLEET_DURATION:-120s}"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench (count=$count, benchtime=$benchtime) =="
# Root experiment benchmarks plus the controller hot-path
# microbenchmarks (Lease / SubmitResultsBatch / Sync) into one record.
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count "$count" . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkLease$|BenchmarkSubmitResultsBatch$|BenchmarkSync$' \
    -benchmem -benchtime "$benchtime" -count "$count" ./internal/core | tee -a "$tmp"

echo "== benchjson ($label -> $out) =="
go run ./cmd/benchjson -label "$label" -out "$out" < "$tmp"

if [ "$label" = "before" ]; then
    exit 0
fi

echo "== fleetsim load ($probes probes -> $out) =="
go run ./cmd/fleetsim -probes "$probes" -duration "$duration" -mode both -out "$out"

echo "== fleetsim bias experiment (-> $out) =="
go run ./cmd/fleetsim -bias -out "$out"
