#!/bin/sh
# bench.sh — run the root benchmark suite and fold the results into
# BENCH_PR5.json via cmd/benchjson (min ns/op across -count runs).
#
# Usage:
#   scripts/bench.sh               # record the "after" section
#   scripts/bench.sh before        # record the "before" section
#   BENCH_COUNT=5 scripts/bench.sh # more repetitions (default 3)
#
# When both sections are present the JSON gains a per-benchmark
# "speedup" map (before ns/op / after ns/op).
set -eu

cd "$(dirname "$0")/.."

label="${1:-after}"
count="${BENCH_COUNT:-3}"
benchtime="${BENCH_TIME:-1x}"
out="${BENCH_OUT:-BENCH_PR5.json}"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench (count=$count, benchtime=$benchtime) =="
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count "$count" . | tee "$tmp"

echo "== benchjson ($label -> $out) =="
go run ./cmd/benchjson -label "$label" -out "$out" < "$tmp"
