// Package geoloc models a commercial IP-geolocation service (the
// IPInfo-style databases the paper's Section 6 methodology relies on),
// including the region-dependent error that undermines subsea-cable
// inference in Africa: databases locate African addresses with median
// errors of hundreds of kilometers — often snapping them to the
// registration country's capital or even to the parent allocation's
// country — while European and North American addresses resolve tightly.
package geoloc

import (
	"math"
	"sync"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// Result is one lookup answer.
type Result struct {
	Addr    netx.Addr
	ASN     topology.ASN
	Country string    // claimed country (may be wrong)
	Coord   geo.Coord // claimed coordinates
	ErrorKM float64   // the database's (unknown to clients) true error
}

// DB is a geolocation database bound to a topology snapshot.
type DB struct {
	topo *topology.Topology
	seed uint64
	trie *netx.Trie[topology.ASN]
	ixps *netx.Trie[topology.IXPID]

	// memo caches Lookup answers. A database snapshot never changes, so
	// entries live for the DB's lifetime; concurrent fills are benign
	// (both goroutines compute the same deterministic Result).
	memo sync.Map // netx.Addr -> memoVal
}

// memoVal is one cached Lookup answer.
type memoVal struct {
	res Result
	ok  bool
}

// New builds the database. The seed fixes each address's error draw, so
// lookups are stable — like a real database snapshot.
func New(t *topology.Topology, seed int64) *DB {
	db := &DB{topo: t, seed: uint64(seed), trie: &netx.Trie[topology.ASN]{}, ixps: &netx.Trie[topology.IXPID]{}}
	for _, asn := range t.ASNs() {
		for _, p := range t.ASes[asn].Prefixes {
			db.trie.Insert(p, asn)
		}
	}
	for _, id := range t.IXPIDs() {
		db.ixps.Insert(t.IXPs[id].LAN, id)
	}
	return db
}

// errorProfile returns the median error (km) and mislocation probability
// for a region. African figures follow published geolocation studies;
// the gap is the paper's Section 6.2 argument.
func errorProfile(r geo.Region) (medianKM float64, wrongCountryProb float64) {
	switch r {
	case geo.Europe, geo.NorthAmerica:
		return 25, 0.01
	case geo.AsiaPacific:
		return 80, 0.04
	case geo.SouthAmerica:
		return 120, 0.05
	case geo.AfricaSouthern:
		return 150, 0.08
	default: // the rest of Africa
		return 450, 0.18
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (db *DB) u(vals ...uint64) uint64 {
	h := db.seed
	for _, v := range vals {
		h = splitmix(h ^ v)
	}
	return h
}

func (db *DB) f(vals ...uint64) float64 {
	return float64(db.u(vals...)>>11) / float64(1<<53)
}

// Lookup geolocates an address. IXP LAN addresses geolocate to the
// exchange's country (databases know the big fabrics) but with the
// region's coordinate error. Answers are memoized — snapshots are
// immutable, and traceroute mapping asks about the same router
// interfaces over and over.
func (db *DB) Lookup(a netx.Addr) (Result, bool) {
	if v, ok := db.memo.Load(a); ok {
		m := v.(memoVal)
		return m.res, m.ok
	}
	res, ok := db.lookupUncached(a)
	db.memo.Store(a, memoVal{res: res, ok: ok})
	return res, ok
}

func (db *DB) lookupUncached(a netx.Addr) (Result, bool) {
	var trueCountry string
	var asn topology.ASN
	if x, ok := db.ixps.Lookup(a); ok {
		trueCountry = db.topo.IXPs[x].Country
	} else if owner, ok := db.trie.Lookup(a); ok {
		asn = owner
		trueCountry = db.topo.ASes[owner].Country
	} else {
		return Result{}, false
	}

	c := geo.MustLookup(trueCountry)
	medKM, wrongProb := errorProfile(c.Region)

	claimed := c
	if db.f(uint64(a), 0x11) < wrongProb {
		// Mislocated to another country — usually the regional hub or
		// the delegation's registration country; we model it as a
		// deterministic pick among the region's countries.
		peers := geo.CountriesIn(c.Region)
		claimed = peers[int(db.u(uint64(a), 0x22)%uint64(len(peers)))]
	}

	// Exponential-ish error around the claimed hub: median medKM.
	lambda := math.Ln2 / medKM
	r := -math.Log(1-db.f(uint64(a), 0x33)+1e-12) / lambda
	if r > 2000 {
		r = 2000
	}
	theta := 2 * math.Pi * db.f(uint64(a), 0x44)
	coord := offsetKm(claimed.Hub, r, theta)

	return Result{
		Addr:    a,
		ASN:     asn,
		Country: claimed.ISO2,
		Coord:   coord,
		ErrorKM: geo.DistanceKm(c.Hub, coord),
	}, true
}

// offsetKm displaces a coordinate by dist km along bearing theta.
func offsetKm(c geo.Coord, dist, theta float64) geo.Coord {
	const kmPerDegLat = 111.0
	dLat := dist * math.Cos(theta) / kmPerDegLat
	kmPerDegLng := kmPerDegLat * math.Cos(c.Lat*math.Pi/180)
	if kmPerDegLng < 1 {
		kmPerDegLng = 1
	}
	dLng := dist * math.Sin(theta) / kmPerDegLng
	out := geo.Coord{Lat: c.Lat + dLat, Lng: c.Lng + dLng}
	if out.Lat > 89 {
		out.Lat = 89
	}
	if out.Lat < -89 {
		out.Lat = -89
	}
	if out.Lng > 180 {
		out.Lng -= 360
	}
	if out.Lng < -180 {
		out.Lng += 360
	}
	return out
}
