package geoloc

import (
	"testing"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testDB   = New(testTopo, 42)
)

func TestLookupDeterministic(t *testing.T) {
	addr := testTopo.ASes[36924].Prefixes[0].Nth(77)
	a, ok1 := testDB.Lookup(addr)
	b, ok2 := testDB.Lookup(addr)
	if !ok1 || !ok2 || a != b {
		t.Fatal("lookup not deterministic")
	}
}

func TestLookupUnknownAddr(t *testing.T) {
	if _, ok := testDB.Lookup(1); ok {
		t.Fatal("unknown address should not resolve")
	}
}

func TestErrorProfileGap(t *testing.T) {
	// The Africa-vs-Europe error gap is the paper's Section 6.2 premise.
	collect := func(region geo.Region) []float64 {
		var errs []float64
		for _, asn := range testTopo.ASNs() {
			as := testTopo.ASes[asn]
			if as.Region != region || as.Type == topology.ASIXPRouteServer {
				continue
			}
			for i := uint64(0); i < 8; i++ {
				if res, ok := testDB.Lookup(as.Prefixes[0].Nth(100 + i*37)); ok {
					errs = append(errs, res.ErrorKM)
				}
			}
		}
		return errs
	}
	euMed := metrics.Median(collect(geo.Europe))
	westMed := metrics.Median(collect(geo.AfricaWestern))
	if euMed <= 0 || westMed <= 0 {
		t.Fatal("no samples")
	}
	if westMed < euMed*3 {
		t.Fatalf("West African median error (%.0f km) should dwarf Europe's (%.0f km)", westMed, euMed)
	}
}

func TestMostLookupsKeepCountry(t *testing.T) {
	right, total := 0, 0
	for _, asn := range testTopo.ASNs() {
		as := testTopo.ASes[asn]
		if as.Type == topology.ASIXPRouteServer {
			continue
		}
		res, ok := testDB.Lookup(as.Prefixes[0].Nth(50))
		if !ok {
			continue
		}
		total++
		if res.Country == as.Country {
			right++
		}
	}
	if share := float64(right) / float64(total); share < 0.7 {
		t.Fatalf("country accuracy %.2f too low — the model should be wrong sometimes, not usually", share)
	}
}

func TestIXPLANGeolocates(t *testing.T) {
	x := testTopo.IXPs[testTopo.IXPIDs()[0]]
	res, ok := testDB.Lookup(x.LAN.Nth(2))
	if !ok {
		t.Fatal("LAN address should geolocate")
	}
	if res.Country == "" {
		t.Fatal("no claimed country")
	}
}

func TestCoordinatesInRange(t *testing.T) {
	for _, asn := range testTopo.ASNs() {
		as := testTopo.ASes[asn]
		res, ok := testDB.Lookup(as.Prefixes[0].Nth(9))
		if !ok {
			continue
		}
		if res.Coord.Lat < -90 || res.Coord.Lat > 90 || res.Coord.Lng < -180 || res.Coord.Lng > 180 {
			t.Fatalf("coordinate out of range: %+v", res.Coord)
		}
	}
}
