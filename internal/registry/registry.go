// Package registry derives the public-database views of the topology
// that measurement tools consume: RIR delegated statistics (the AfriNIC
// delegated file the paper uses as its coverage denominator) and the
// PCH/PeeringDB-style IXP directory (names, countries, peering LANs,
// member lists).
//
// Measurement code must depend on these views rather than reaching into
// the topology's ground truth: the views contain exactly the information
// a real measurement study has.
package registry

import (
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// Delegation is one RIR delegated-statistics record for a country.
type Delegation struct {
	Country  string
	Region   geo.Region
	ASNs     []topology.ASN
	Prefixes []netx.Prefix
}

// DelegatedStats builds the per-country delegation file for one RIR
// region set. Passing nil includes every country.
func DelegatedStats(t *topology.Topology, include func(geo.Region) bool) []Delegation {
	byCountry := make(map[string]*Delegation)
	for _, asn := range t.ASNs() {
		as := t.ASes[asn]
		if include != nil && !include(as.Region) {
			continue
		}
		d := byCountry[as.Country]
		if d == nil {
			d = &Delegation{Country: as.Country, Region: as.Region}
			byCountry[as.Country] = d
		}
		d.ASNs = append(d.ASNs, asn)
		d.Prefixes = append(d.Prefixes, as.Prefixes...)
	}
	var out []Delegation
	for _, d := range byCountry {
		sort.Slice(d.ASNs, func(i, j int) bool { return d.ASNs[i] < d.ASNs[j] })
		sort.Slice(d.Prefixes, func(i, j int) bool { return d.Prefixes[i].Base() < d.Prefixes[j].Base() })
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// AfriNIC returns the African delegated statistics.
func AfriNIC(t *topology.Topology) []Delegation {
	return DelegatedStats(t, func(r geo.Region) bool { return r.IsAfrica() })
}

// IXPRecord is one directory entry (PCH / PeeringDB analogue).
type IXPRecord struct {
	ID      topology.IXPID
	Name    string
	Country string
	Region  geo.Region
	LAN     netx.Prefix
	Members []topology.ASN
	RSASN   topology.ASN // the route-server/management ASN
}

// IXPDirectory lists every exchange in the snapshot.
func IXPDirectory(t *topology.Topology) []IXPRecord {
	var out []IXPRecord
	for _, id := range t.IXPIDs() {
		x := t.IXPs[id]
		members := append([]topology.ASN(nil), x.Members...)
		out = append(out, IXPRecord{
			ID: id, Name: x.Name, Country: x.Country,
			Region: geo.MustLookup(x.Country).Region,
			LAN:    x.LAN, Members: members,
			RSASN: RouteServerASN(id),
		})
	}
	return out
}

// AfricanIXPs filters the directory to African exchanges.
func AfricanIXPs(t *topology.Topology) []IXPRecord {
	var out []IXPRecord
	for _, rec := range IXPDirectory(t) {
		if rec.Region.IsAfrica() {
			out = append(out, rec)
		}
	}
	return out
}

// RouteServerASN returns the management ASN delegated to an exchange.
func RouteServerASN(id topology.IXPID) topology.ASN {
	return topology.ASN(327000) + topology.ASN(id)
}

// Classify is the paper's Table 1 ASN classification.
type Classify int

const (
	ClassNonMobile Classify = iota
	ClassMobile
	ClassIXP
)

func (c Classify) String() string {
	switch c {
	case ClassMobile:
		return "mobile"
	case ClassIXP:
		return "ixp"
	default:
		return "non-mobile"
	}
}

// ClassifyASN reproduces the paper's methodology: an ASN is Mobile when
// Radar-style mobile traffic share is >= 65%, IXP when it holds an
// exchange LAN (PCH/PeeringDB), otherwise Non-mobile/Non-IX.
func ClassifyASN(t *topology.Topology, asn topology.ASN) Classify {
	as := t.ASes[asn]
	if as == nil {
		return ClassNonMobile
	}
	if as.Type == topology.ASIXPRouteServer {
		return ClassIXP
	}
	if as.IsMobile() {
		return ClassMobile
	}
	return ClassNonMobile
}
