package registry

import (
	"testing"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/topology"
)

var testTopo = topology.Generate(topology.DefaultParams())

func TestAfriNICDelegations(t *testing.T) {
	dels := AfriNIC(testTopo)
	if len(dels) != 54 {
		t.Fatalf("AfriNIC delegations for %d countries, want 54", len(dels))
	}
	totalASNs := 0
	for _, d := range dels {
		if !d.Region.IsAfrica() {
			t.Fatalf("non-African delegation %s", d.Country)
		}
		if len(d.ASNs) == 0 {
			t.Errorf("%s has no delegated ASNs", d.Country)
		}
		totalASNs += len(d.ASNs)
		// Stable sorted ASN lists.
		for i := 1; i < len(d.ASNs); i++ {
			if d.ASNs[i] < d.ASNs[i-1] {
				t.Fatalf("%s ASN list unsorted", d.Country)
			}
		}
	}
	// Cross-check against the topology.
	want := 0
	for _, asn := range testTopo.ASNs() {
		if testTopo.ASes[asn].Region.IsAfrica() {
			want++
		}
	}
	if totalASNs != want {
		t.Fatalf("delegated %d ASNs, topology has %d African", totalASNs, want)
	}
}

func TestIXPDirectory(t *testing.T) {
	dir := IXPDirectory(testTopo)
	if len(dir) != len(testTopo.IXPIDs()) {
		t.Fatalf("directory has %d entries, topology %d", len(dir), len(testTopo.IXPIDs()))
	}
	lans := map[string]bool{}
	for _, rec := range dir {
		if rec.Name == "" || rec.Country == "" {
			t.Fatalf("incomplete record %+v", rec)
		}
		if lans[rec.LAN.String()] {
			t.Fatalf("duplicate LAN %v", rec.LAN)
		}
		lans[rec.LAN.String()] = true
		if rec.RSASN != RouteServerASN(rec.ID) {
			t.Fatalf("route-server ASN mismatch for %s", rec.Name)
		}
	}
}

func TestAfricanIXPs(t *testing.T) {
	if got := len(AfricanIXPs(testTopo)); got != 77 {
		t.Fatalf("African directory = %d, want 77", got)
	}
}

func TestClassifyASN(t *testing.T) {
	sawMobile, sawNon, sawIXP := false, false, false
	for _, asn := range testTopo.ASNs() {
		as := testTopo.ASes[asn]
		c := ClassifyASN(testTopo, asn)
		switch {
		case as.Type == topology.ASIXPRouteServer:
			if c != ClassIXP {
				t.Fatalf("route server AS%d classified %v", asn, c)
			}
			sawIXP = true
		case as.MobileShare >= 0.65:
			if c != ClassMobile {
				t.Fatalf("mobile AS%d classified %v (share %.2f)", asn, c, as.MobileShare)
			}
			sawMobile = true
		default:
			if c != ClassNonMobile {
				t.Fatalf("AS%d classified %v", asn, c)
			}
			sawNon = true
		}
	}
	if !sawMobile || !sawNon || !sawIXP {
		t.Fatal("classification classes not all exercised")
	}
	if ClassifyASN(testTopo, 999999999) != ClassNonMobile {
		t.Fatal("unknown ASN should default to non-mobile")
	}
}

func TestClassifyStrings(t *testing.T) {
	if ClassMobile.String() != "mobile" || ClassIXP.String() != "ixp" || ClassNonMobile.String() != "non-mobile" {
		t.Fatal("class strings changed")
	}
}

func TestDelegatedStatsFilter(t *testing.T) {
	euOnly := DelegatedStats(testTopo, func(r geo.Region) bool { return r == geo.Europe })
	for _, d := range euOnly {
		if d.Region != geo.Europe {
			t.Fatalf("filter leaked %s", d.Country)
		}
	}
	all := DelegatedStats(testTopo, nil)
	if len(all) <= len(euOnly) {
		t.Fatal("nil filter should include everything")
	}
}
