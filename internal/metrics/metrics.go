// Package metrics provides the small statistical toolkit the experiment
// drivers share: empirical CDFs, quantiles, shares, and bootstrap
// confidence intervals.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0<=q<=1) with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Share returns num/den as a fraction, 0 when den is 0.
func Share(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct formats a fraction as "12.3%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF over the samples.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Points returns n evenly spaced (x, P(X<=x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean at the given confidence level (e.g. 0.95), using the provided
// seed for reproducibility.
func BootstrapCI(xs []float64, level float64, rounds int, seed int64) (lo, hi float64) {
	if len(xs) == 0 || rounds <= 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		var s float64
		for i := 0; i < len(xs); i++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// Histogram counts samples into equal-width bins across [min,max].
func Histogram(xs []float64, min, max float64, bins int) []int {
	out := make([]int, bins)
	if bins <= 0 || max <= min {
		return out
	}
	w := (max - min) / float64(bins)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	return out
}
