package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	s := NewCounterSet()
	if got := s.Get("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
	s.Inc("a")
	s.Add("a", 2)
	s.Add("b", 5)
	if got := s.Get("a"); got != 3 {
		t.Fatalf("a = %d", got)
	}
	snap := s.Snapshot()
	if snap["a"] != 3 || snap["b"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot is a copy, not a view.
	snap["a"] = 99
	if got := s.Get("a"); got != 3 {
		t.Fatalf("snapshot aliased the registry: a = %d", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := s.Get("hits"); got != 8000 {
		t.Fatalf("hits = %d", got)
	}
}
