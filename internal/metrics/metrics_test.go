package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if Median([]float64{9}) != 9 {
		t.Fatal("single-element median")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 {
		t.Fatal("input mutated")
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
		}
		return Quantile(raw, qa) <= Quantile(raw, qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShareAndPct(t *testing.T) {
	if Share(1, 4) != 0.25 || Share(3, 0) != 0 {
		t.Fatal("share math wrong")
	}
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Len() != 4 {
		t.Fatal("len wrong")
	}
	pts := c.Points(5)
	if len(pts) != 5 || pts[0][0] != 1 || pts[4][0] != 4 {
		t.Fatalf("points = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF points not monotone")
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Fatal("empty CDF should be 0 everywhere")
	}
}

func TestCDFMatchesSortProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// At(max) is 1; At(just below min) is 0.
		below := math.Nextafter(sorted[0], math.Inf(-1))
		return c.At(sorted[len(sorted)-1]) == 1 && c.At(below) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	lo, hi := BootstrapCI(xs, 0.95, 200, 1)
	mean := Mean(xs)
	if !(lo <= mean && mean <= hi) {
		t.Fatalf("CI [%v,%v] excludes mean %v", lo, hi, mean)
	}
	if lo2, hi2 := BootstrapCI(xs, 0.95, 200, 1); lo2 != lo || hi2 != hi {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
	if lo, hi := BootstrapCI(nil, 0.95, 10, 1); lo != 0 || hi != 0 {
		t.Fatal("empty bootstrap should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 1, 2, 3, 9, 100, -5}, 0, 10, 5)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 7 {
		t.Fatalf("histogram dropped samples: %v", h)
	}
	if h[0] != 3 { // -5 clamps in, 0 and 1 in first bin [0,2)
		t.Fatalf("first bin = %d: %v", h[0], h)
	}
	if h[4] != 2 { // 9 and the clamped 100
		t.Fatalf("last bin = %d: %v", h[4], h)
	}
	if got := Histogram(nil, 0, 0, 0); len(got) != 0 {
		t.Fatal("degenerate histogram")
	}
}
