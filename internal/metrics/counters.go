package metrics

import (
	"sort"
	"sync"
)

// CounterSet is a registry of named monotonic counters, safe for
// concurrent use. The control plane uses one to expose lease, requeue,
// dedup, and liveness event counts over its stats endpoint.
type CounterSet struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounterSet creates an empty counter registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: make(map[string]int64)}
}

// Add increments the named counter by delta (creating it at zero first).
func (s *CounterSet) Add(name string, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[name] += delta
}

// Inc is Add(name, 1).
func (s *CounterSet) Inc(name string) { s.Add(name, 1) }

// Get returns the counter's value (zero when never incremented).
func (s *CounterSet) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// Snapshot returns a copy of every counter.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Names returns the registered counter names, sorted.
func (s *CounterSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
