package archival

import "sort"

// Observation is one flattened row of a measurement: the tabular form
// stores and spreadsheets ingest. Every row carries the full link key
// (MeasurementID, StepID, EndpointID, record ID) so rows re-join into
// the structured measurement without any side table.
type Observation struct {
	MeasurementID string  `json:"measurement_id"`
	Type          string  `json:"type"` // "dns" | "dial" | "tls" | "http"
	ID            int64   `json:"id"`
	StepID        int64   `json:"step_id"`
	EndpointID    int64   `json:"endpoint_id,omitempty"`
	Origin        Origin  `json:"origin"`
	URL           string  `json:"url,omitempty"`
	Domain        string  `json:"domain,omitempty"`
	Address       string  `json:"address,omitempty"`
	Detail        string  `json:"detail,omitempty"` // resolver class / SNI / body hash
	Failure       string  `json:"failure,omitempty"`
	LatencyMs     float64 `json:"latency_ms,omitempty"`
}

// Flatten renders the measurement as observation rows in a canonical
// order: by step, then record type (dns, dial, tls, http), then record
// ID — so equal measurements flatten identically regardless of the
// order sub-measurement slices were appended in.
func (m *Measurement) Flatten() []Observation {
	var out []Observation
	for _, d := range m.DNS {
		out = append(out, Observation{
			MeasurementID: m.MeasurementID, Type: "dns", ID: d.ID, StepID: d.StepID,
			Origin: d.Origin, Domain: d.Domain, Detail: d.ResolverClass,
			Failure: d.Failure, LatencyMs: d.LatencyMs,
		})
	}
	for _, d := range m.Dials {
		out = append(out, Observation{
			MeasurementID: m.MeasurementID, Type: "dial", ID: d.ID, StepID: d.StepID,
			EndpointID: d.EndpointID, Origin: d.Origin, Address: d.Address,
			Failure: d.Failure, LatencyMs: d.LatencyMs,
		})
	}
	for _, h := range m.TLS {
		out = append(out, Observation{
			MeasurementID: m.MeasurementID, Type: "tls", ID: h.ID, StepID: h.StepID,
			EndpointID: h.EndpointID, Origin: h.Origin, Detail: h.SNI,
			Failure: h.Failure, LatencyMs: h.LatencyMs,
		})
	}
	for _, h := range m.HTTP {
		out = append(out, Observation{
			MeasurementID: m.MeasurementID, Type: "http", ID: h.ID, StepID: h.StepID,
			EndpointID: h.EndpointID, Origin: h.Origin, URL: h.URL, Detail: h.BodyHash,
			Failure: h.Failure, LatencyMs: h.TransferMs,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StepID != b.StepID {
			return a.StepID < b.StepID
		}
		if ta, tb := typeRank(a.Type), typeRank(b.Type); ta != tb {
			return ta < tb
		}
		return a.ID < b.ID
	})
	return out
}

func typeRank(t string) int {
	switch t {
	case "dns":
		return 0
	case "dial":
		return 1
	case "tls":
		return 2
	default:
		return 3
	}
}
