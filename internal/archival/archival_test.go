package archival

import (
	"bytes"
	"strings"
	"testing"
)

// sample builds a small two-step, two-origin measurement with every
// record type, the shape the websim engine emits.
func sample() *Measurement {
	var g IDGen
	m := &Measurement{
		MeasurementID: "ws:site0.RW:36924",
		URL:           "http://site0.RW/",
		Domain:        "site0.RW",
		ProbeCountry:  "RW",
		ProbeASN:      36924,
		ResolverClass: "same-country",
		Steps: []Step{
			{StepID: 1, URL: "http://site0.RW/"},
			{StepID: 2, URL: "https://site0.RW/"},
		},
	}
	m.DNS = append(m.DNS,
		DNSLookup{ID: g.Next(), StepID: 1, Origin: OriginProbe, Domain: "site0.RW", ResolverClass: "same-country", Answers: []string{"41.0.0.10"}},
		DNSLookup{ID: g.Next(), StepID: 1, Origin: OriginControl, Domain: "site0.RW", ResolverClass: "control", Answers: []string{"41.0.0.10"}},
	)
	epProbe, epCtrl := g.Next(), g.Next()
	m.Dials = append(m.Dials,
		EndpointDial{ID: g.Next(), StepID: 1, EndpointID: epProbe, Origin: OriginProbe, Address: "41.0.0.10", Port: 80, LatencyMs: 42},
		EndpointDial{ID: g.Next(), StepID: 1, EndpointID: epCtrl, Origin: OriginControl, Address: "41.0.0.10", Port: 80, LatencyMs: 9},
	)
	m.HTTP = append(m.HTTP,
		HTTPRoundTrip{ID: g.Next(), StepID: 1, EndpointID: epProbe, Origin: OriginProbe, URL: "http://site0.RW/", StatusCode: 301, RedirectTo: "https://site0.RW/"},
		HTTPRoundTrip{ID: g.Next(), StepID: 1, EndpointID: epCtrl, Origin: OriginControl, URL: "http://site0.RW/", StatusCode: 301, RedirectTo: "https://site0.RW/"},
	)
	ep2Probe := g.Next()
	m.Dials = append(m.Dials,
		EndpointDial{ID: g.Next(), StepID: 2, EndpointID: ep2Probe, Origin: OriginProbe, Address: "41.0.0.10", Port: 443, LatencyMs: 42},
	)
	m.TLS = append(m.TLS,
		TLSHandshake{ID: g.Next(), StepID: 2, EndpointID: ep2Probe, Origin: OriginProbe, SNI: "site0.RW", LatencyMs: 84},
	)
	m.HTTP = append(m.HTTP,
		HTTPRoundTrip{ID: g.Next(), StepID: 2, EndpointID: ep2Probe, Origin: OriginProbe, URL: "https://site0.RW/", StatusCode: 200, BodyBytes: 18432, BodyHash: "ab12", TransferMs: 120},
	)
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	if err := m.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	b1, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatalf("decoded invalid: %v", err)
	}
	b2, err := Encode(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encode/decode/encode not stable:\n%s\n%s", b1, b2)
	}
}

func TestFlattenCanonicalOrder(t *testing.T) {
	m := sample()
	obs := m.Flatten()
	want := len(m.DNS) + len(m.Dials) + len(m.TLS) + len(m.HTTP)
	if len(obs) != want {
		t.Fatalf("flatten rows = %d, want %d", len(obs), want)
	}
	// Shuffle the slices: the flattened order must not change.
	m2 := sample()
	m2.HTTP[0], m2.HTTP[2] = m2.HTTP[2], m2.HTTP[0]
	m2.DNS[0], m2.DNS[1] = m2.DNS[1], m2.DNS[0]
	obs2 := m2.Flatten()
	for i := range obs {
		if obs[i] != obs2[i] {
			t.Fatalf("row %d differs after shuffle: %+v vs %+v", i, obs[i], obs2[i])
		}
	}
	for i := 1; i < len(obs); i++ {
		if obs[i].StepID < obs[i-1].StepID {
			t.Fatalf("rows out of step order at %d", i)
		}
	}
}

func TestValidateRejectsOrphans(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Measurement)
		want   string
	}{
		{"empty id", func(m *Measurement) { m.MeasurementID = "" }, "empty measurement_id"},
		{"no steps", func(m *Measurement) { m.Steps = nil }, "no steps"},
		{"dup step", func(m *Measurement) { m.Steps[1].StepID = 1 }, "duplicate step id"},
		{"neg step", func(m *Measurement) { m.Steps[0].StepID = -4 }, "bad step id"},
		{"dns unknown step", func(m *Measurement) { m.DNS[0].StepID = 99 }, "unknown step"},
		{"dial unknown step", func(m *Measurement) { m.Dials[0].StepID = 99 }, "unknown step"},
		{"dial bad endpoint", func(m *Measurement) { m.Dials[0].EndpointID = 0 }, "bad endpoint id"},
		{"tls orphan endpoint", func(m *Measurement) { m.TLS[0].EndpointID = 999 }, "orphan"},
		{"tls wrong origin", func(m *Measurement) { m.TLS[0].Origin = OriginControl }, "orphan"},
		{"http orphan endpoint", func(m *Measurement) { m.HTTP[2].EndpointID = 999 }, "orphan"},
		{"dup record id", func(m *Measurement) { m.DNS[1].ID = m.DNS[0].ID }, "duplicate record id"},
		{"bad record id", func(m *Measurement) { m.HTTP[0].ID = 0 }, "bad http record id"},
	}
	for _, tc := range cases {
		m := sample()
		tc.mutate(m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a broken measurement", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeMalformedNeverPanics(t *testing.T) {
	inputs := []string{
		"", "null", "{", `{"measurement_id": 12}`, `[]`, `{"steps": "x"}`,
		`{"measurement_id":"m","steps":[{"step_id":"one"}]}`,
		string([]byte{0xff, 0xfe, 0x00}),
	}
	for _, in := range inputs {
		m, err := Decode([]byte(in))
		if err != nil {
			continue
		}
		_ = m.Validate()
		_ = m.Flatten()
	}
}
