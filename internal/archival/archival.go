// Package archival defines the flat, ID-linked measurement records the
// websteps experiment family produces — the `flat.go` idiom of
// websteps-illustrated: one record per DNS lookup, endpoint dial, TLS
// handshake, and HTTP round trip, all sharing a MeasurementID and
// linked by StepID/EndpointID, so a whole redirect chain archives as
// one self-describing unit that any store can ingest and any analyst
// can re-join without the producing process in memory.
//
// The types here are pure data: JSON-stable (fixed field order, no
// maps), clock-free (logical latencies only), and validated by link
// integrity — a sub-measurement that references a step or endpoint its
// measurement does not contain is an orphan and the whole record is
// rejected.
package archival

import (
	"encoding/json"
	"fmt"
)

// Origin says which vantage produced an observation: the probe under
// test or the control (test-helper) vantage whose view defines truth.
type Origin string

const (
	OriginProbe   Origin = "probe"
	OriginControl Origin = "control"
)

// Step is one URL of the redirect chain, e.g. http://site/ followed by
// https://site/. StepIDs are positive and unique within a measurement.
type Step struct {
	StepID int64  `json:"step_id"`
	URL    string `json:"url"`
}

// DNSLookup is one resolution attempt: which resolver class answered,
// from where, and with what addresses. Bogon marks answers in
// never-routed space — the classic poisoned-response signature.
type DNSLookup struct {
	ID              int64    `json:"id"`
	StepID          int64    `json:"step_id"`
	Origin          Origin   `json:"origin"`
	Domain          string   `json:"domain"`
	ResolverClass   string   `json:"resolver_class"`
	ResolverCountry string   `json:"resolver_country,omitempty"`
	Answers         []string `json:"answers,omitempty"`
	Bogon           bool     `json:"bogon,omitempty"`
	Failure         string   `json:"failure,omitempty"`
	LatencyMs       float64  `json:"latency_ms,omitempty"`
}

// EndpointDial is one TCP connect to address:port. EndpointID is the
// link target TLS handshakes and HTTP round trips on this connection
// reference; it is positive and unique within the measurement.
type EndpointDial struct {
	ID         int64   `json:"id"`
	StepID     int64   `json:"step_id"`
	EndpointID int64   `json:"endpoint_id"`
	Origin     Origin  `json:"origin"`
	Address    string  `json:"address"`
	Port       int     `json:"port"`
	Failure    string  `json:"failure,omitempty"`
	LatencyMs  float64 `json:"latency_ms,omitempty"`
}

// TLSHandshake is one handshake over an established dial. An injected
// RST on the ClientHello surfaces as Failure="connection_reset" with
// the SNI that triggered it.
type TLSHandshake struct {
	ID         int64   `json:"id"`
	StepID     int64   `json:"step_id"`
	EndpointID int64   `json:"endpoint_id"`
	Origin     Origin  `json:"origin"`
	SNI        string  `json:"sni"`
	Failure    string  `json:"failure,omitempty"`
	LatencyMs  float64 `json:"latency_ms,omitempty"`
}

// HTTPRoundTrip is one request/response over an endpoint. BodyHash
// identifies the content (blockpage substitution shows as a hash that
// differs from the control's); TransferMs is the full body transfer
// time, which token-bucket throttling inflates.
type HTTPRoundTrip struct {
	ID         int64   `json:"id"`
	StepID     int64   `json:"step_id"`
	EndpointID int64   `json:"endpoint_id"`
	Origin     Origin  `json:"origin"`
	URL        string  `json:"url"`
	StatusCode int     `json:"status_code,omitempty"`
	BodyBytes  int64   `json:"body_bytes,omitempty"`
	BodyHash   string  `json:"body_hash,omitempty"`
	RedirectTo string  `json:"redirect_to,omitempty"`
	Failure    string  `json:"failure,omitempty"`
	TransferMs float64 `json:"transfer_ms,omitempty"`
}

// Measurement is one URL followed through its whole redirect chain from
// two vantages. It is the unit of archival: everything inside shares
// MeasurementID, and every sub-measurement links to a Step (and, past
// DNS, to an EndpointDial) defined here.
type Measurement struct {
	MeasurementID string `json:"measurement_id"`
	URL           string `json:"url"`
	Domain        string `json:"domain"`
	ProbeCountry  string `json:"probe_country,omitempty"`
	ProbeASN      uint32 `json:"probe_asn,omitempty"`
	// ResolverClass is the probe-side resolver classification
	// (same-country / other-country / cloud).
	ResolverClass string          `json:"resolver_class,omitempty"`
	Steps         []Step          `json:"steps"`
	DNS           []DNSLookup     `json:"dns,omitempty"`
	Dials         []EndpointDial  `json:"dials,omitempty"`
	TLS           []TLSHandshake  `json:"tls,omitempty"`
	HTTP          []HTTPRoundTrip `json:"http,omitempty"`
}

// IDGen mints the positive, per-measurement-unique record and endpoint
// IDs. A plain counter: determinism comes from call order, which the
// engine fixes.
type IDGen struct{ next int64 }

// Next returns the next ID (starting at 1).
func (g *IDGen) Next() int64 {
	g.next++
	return g.next
}

// Encode marshals the measurement to its stable JSON form. Field order
// is fixed by the struct definitions and there are no maps, so equal
// measurements encode byte-identically.
func Encode(m *Measurement) ([]byte, error) {
	return json.Marshal(m)
}

// Decode parses one measurement from JSON. It never panics on
// malformed input; structural link integrity is Validate's job.
func Decode(data []byte) (*Measurement, error) {
	var m Measurement
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("archival: decode: %w", err)
	}
	return &m, nil
}

// Validate checks link integrity: IDs positive and unique, every
// sub-measurement's StepID resolving to a declared step, and every
// TLS/HTTP record's EndpointID resolving to a dial of the same origin
// and step. A record that fails is an orphan sub-measurement and must
// not be ingested.
func (m *Measurement) Validate() error {
	if m == nil {
		return fmt.Errorf("archival: nil measurement")
	}
	if m.MeasurementID == "" {
		return fmt.Errorf("archival: empty measurement_id")
	}
	if len(m.Steps) == 0 {
		return fmt.Errorf("archival: %s: no steps", m.MeasurementID)
	}
	steps := make(map[int64]bool, len(m.Steps))
	for _, st := range m.Steps {
		if st.StepID <= 0 {
			return fmt.Errorf("archival: %s: bad step id %d", m.MeasurementID, st.StepID)
		}
		if steps[st.StepID] {
			return fmt.Errorf("archival: %s: duplicate step id %d", m.MeasurementID, st.StepID)
		}
		steps[st.StepID] = true
	}
	ids := make(map[int64]bool)
	record := func(id int64, kind string) error {
		if id <= 0 {
			return fmt.Errorf("archival: %s: bad %s record id %d", m.MeasurementID, kind, id)
		}
		if ids[id] {
			return fmt.Errorf("archival: %s: duplicate record id %d", m.MeasurementID, id)
		}
		ids[id] = true
		return nil
	}
	// endpoint key: (step, origin, endpoint) — a TLS handshake may only
	// ride a connection its own vantage opened in its own step.
	type epKey struct {
		step int64
		org  Origin
		ep   int64
	}
	endpoints := make(map[epKey]bool)
	for _, d := range m.DNS {
		if err := record(d.ID, "dns"); err != nil {
			return err
		}
		if !steps[d.StepID] {
			return fmt.Errorf("archival: %s: dns record %d references unknown step %d", m.MeasurementID, d.ID, d.StepID)
		}
	}
	for _, d := range m.Dials {
		if err := record(d.ID, "dial"); err != nil {
			return err
		}
		if !steps[d.StepID] {
			return fmt.Errorf("archival: %s: dial record %d references unknown step %d", m.MeasurementID, d.ID, d.StepID)
		}
		if d.EndpointID <= 0 {
			return fmt.Errorf("archival: %s: dial record %d has bad endpoint id %d", m.MeasurementID, d.ID, d.EndpointID)
		}
		k := epKey{d.StepID, d.Origin, d.EndpointID}
		if endpoints[k] {
			return fmt.Errorf("archival: %s: duplicate endpoint id %d in step %d", m.MeasurementID, d.EndpointID, d.StepID)
		}
		endpoints[k] = true
	}
	for _, h := range m.TLS {
		if err := record(h.ID, "tls"); err != nil {
			return err
		}
		if !steps[h.StepID] {
			return fmt.Errorf("archival: %s: tls record %d references unknown step %d", m.MeasurementID, h.ID, h.StepID)
		}
		if !endpoints[epKey{h.StepID, h.Origin, h.EndpointID}] {
			return fmt.Errorf("archival: %s: tls record %d is an orphan: no %s dial with endpoint %d in step %d",
				m.MeasurementID, h.ID, h.Origin, h.EndpointID, h.StepID)
		}
	}
	for _, h := range m.HTTP {
		if err := record(h.ID, "http"); err != nil {
			return err
		}
		if !steps[h.StepID] {
			return fmt.Errorf("archival: %s: http record %d references unknown step %d", m.MeasurementID, h.ID, h.StepID)
		}
		if !endpoints[epKey{h.StepID, h.Origin, h.EndpointID}] {
			return fmt.Errorf("archival: %s: http record %d is an orphan: no %s dial with endpoint %d in step %d",
				m.MeasurementID, h.ID, h.Origin, h.EndpointID, h.StepID)
		}
	}
	return nil
}
