package archival

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzArchivalDecode hammers the decode → validate → flatten →
// re-encode pipeline with arbitrary bytes: malformed IDs, missing
// links, and truncated records must never panic, and any input that
// decodes and validates must round-trip byte-identically with a stable
// flattening. This is the ingestion boundary — archival records arrive
// from probes over the wire, so hostile bytes are a normal Tuesday.
func FuzzArchivalDecode(f *testing.F) {
	valid, err := Encode(sample())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"measurement_id":"m","steps":[{"step_id":1,"url":"http://x/"}]}`))
	f.Add([]byte(`{"measurement_id":"m","steps":[{"step_id":1}],"tls":[{"id":1,"step_id":1,"endpoint_id":7}]}`))
	if len(valid) > 10 {
		f.Add(valid[:len(valid)/2]) // truncated record
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		obs := m.Flatten() // must not panic even on invalid links
		if err := m.Validate(); err != nil {
			return
		}
		enc, err := Encode(m)
		if err != nil {
			t.Fatalf("valid measurement failed to encode: %v", err)
		}
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded measurement failed: %v", err)
		}
		enc2, err := Encode(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not stable:\n%s\n%s", enc, enc2)
		}
		if !reflect.DeepEqual(obs, m2.Flatten()) {
			t.Fatal("flatten differs across a decode round trip")
		}
	})
}
