package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/scan"
	"github.com/afrinet/observatory/internal/topology"
)

// ScanResult reproduces Table 1: dataset sizes and African coverage of
// the three scanning methodologies, plus the per-region breakdown the
// paper discusses in the text.
type ScanResult struct {
	Rows     []scan.CoverageRow
	Regional map[scan.Tool][]scan.RegionalCoverage
}

// Table1Scan builds each tool's target list and evaluates coverage with
// the paper's methodology: static hitlist analysis for ANT, probing from
// an Ark-like (Africa-sparse) vantage set for CAIDA's topology data, and
// probing from a single Rwandan vantage for YARRP.
func Table1Scan(env *Env) ScanResult {
	b := scan.NewBuilder(env.Net, env.Table, env.Seed)

	ant := b.BuildANT()
	caida := b.BuildCAIDA()
	yarrp := b.BuildYARRP(0.8)

	antObs := b.AnalyzeStatic(ant)

	ark := scan.ArkVantages(env.Topo, 14)
	caidaObs := b.Run(caida, ark, 0, 0.7)

	// YARRP ran in Rwanda on a residential and a campus network.
	rw := rwandaVantages(env.Topo)
	yarrpObs := b.Run(yarrp, rw, 0.2, 0.8)

	res := ScanResult{Regional: map[scan.Tool][]scan.RegionalCoverage{}}
	for _, obs := range []scan.Observation{caidaObs, antObs, yarrpObs} {
		res.Rows = append(res.Rows, scan.Coverage(env.Topo, obs))
		res.Regional[obs.Tool] = scan.CoverageByRegion(env.Topo, obs)
	}
	return res
}

func rwandaVantages(t *topology.Topology) []topology.ASN {
	// The paper's YARRP runs used a residential and a campus network in
	// Rwanda whose upstreams were European — which is exactly why their
	// probes almost never crossed African fabrics (2.9% IXP coverage).
	// We pick Rwandan networks with no in-continent upstream.
	euOnly := func(a topology.ASN) bool {
		for _, lid := range t.LinksOf(a) {
			l := t.Link(lid)
			if l.Kind != topology.CustomerProvider || l.A != a {
				continue
			}
			if t.RegionOf(l.B).IsAfrica() {
				return false
			}
		}
		return true
	}
	var out []topology.ASN
	var edu, isp topology.ASN
	for _, a := range t.ASesIn("RW") {
		as := t.ASes[a]
		if as.Type == topology.ASEducation && edu == 0 && euOnly(a) {
			edu = a
		}
		if (as.Type == topology.ASFixedISP || as.Type == topology.ASMobileCarrier) && isp == 0 && euOnly(a) {
			isp = a
		}
	}
	if isp != 0 {
		out = append(out, isp)
	}
	if edu != 0 {
		out = append(out, edu)
	}
	if len(out) == 0 {
		out = append(out, t.ASesIn("RW")[0])
	}
	return out
}

// Render writes Table 1.
func (r ScanResult) Render(w io.Writer) {
	tb := report.NewTable("Table 1 — Dataset size and coverage (in Africa)",
		"dataset", "entries", "mobile ASN %", "non-mobile ASN %", "IXP %")
	for _, row := range r.Rows {
		tb.AddRow(row.Tool.String(), row.Entries,
			100*row.Mobile, 100*row.NonMobile, 100*row.IXP)
	}
	tb.Render(w)
	fmt.Fprintln(w, "(paper: ANT 96/71.4/23.5, CAIDA 64.4/35.45/7.8, YARRP 56.1/27.2/2.9;")
	fmt.Fprintln(w, " entries scaled ~1/125 — the synthetic routed space is smaller, coverage is scale-free)")
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		tb2 := report.NewTable(fmt.Sprintf("Table 1 (regional) — %s", row.Tool),
			"region", "mobile %", "non-mobile %", "IXP %")
		for _, rc := range r.Regional[row.Tool] {
			tb2.AddRow(rc.Region.String(), 100*rc.Mobile, 100*rc.NonMobile, 100*rc.IXP)
		}
		tb2.Render(w)
		fmt.Fprintln(w)
	}
}
