// Package experiments contains one driver per table and figure of the
// paper's evaluation, shared by cmd/repro (human-readable regeneration)
// and the benchmark harness (bench_test.go). Each driver is a pure
// function of the experiment environment, so results are identical
// run-to-run for a fixed seed.
package experiments

import (
	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/geoloc"
	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// Env bundles the simulated stack the drivers run against.
type Env struct {
	Seed     int64
	Topo     *topology.Topology
	Router   *bgp.Router
	Net      *netsim.Net
	Table    *bgp.RoutedTable
	DNS      *dnssim.System
	Web      *content.System
	GeoDB    *geoloc.DB
	Dir      []registry.IXPRecord
	Detector *ixp.Detector
}

// NewEnv builds the full stack for a seed and snapshot year.
func NewEnv(seed int64, year int) *Env {
	t := topology.Generate(topology.Params{Seed: seed, Year: year})
	r := bgp.New(t)
	n := netsim.New(t, r, seed)
	dir := registry.IXPDirectory(t)
	return &Env{
		Seed:     seed,
		Topo:     t,
		Router:   r,
		Net:      n,
		Table:    bgp.BuildRoutedTable(t),
		DNS:      dnssim.New(n, seed),
		Web:      content.New(n, seed),
		GeoDB:    geoloc.New(t, seed),
		Dir:      dir,
		Detector: ixp.NewDetector(dir),
	}
}

// observe maps a traceroute's responding hops with measurement-grade
// data only: the routed table for origin ASNs, the exchange directory
// for LAN hops, and geolocation for countries. Drivers analyze this
// view, never the simulator's ground-truth annotations.
func observe(env *Env, tr netsim.Traceroute) tracerouteView {
	var tv tracerouteView
	for _, h := range tr.Hops {
		if h.Addr == 0 {
			continue
		}
		var oh observedHop
		if loc, ok := env.GeoDB.Lookup(h.Addr); ok {
			if c, okc := geo.Lookup(loc.Country); okc {
				oh.africa = c.Region.IsAfrica()
			}
		}
		if asn, ok := env.Table.Origin(h.Addr); ok {
			oh.asn = asn
		} else if _, isLAN := env.Net.IXPOf(h.Addr); isLAN {
			oh.viaIXP = true
		}
		tv.hops = append(tv.hops, oh)
	}
	return tv
}

// DefaultEnv is the reference configuration used throughout the
// repository's recorded results.
func DefaultEnv() *Env { return NewEnv(42, 2025) }
