package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/afrinet/observatory/internal/outage"
)

// RadarResult validates the Radar-style series detector against ground
// truth — the methodology check behind Section 3's reliance on the
// Cloudflare Radar outage center.
type RadarResult struct {
	Report outage.RadarReport
}

// RadarValidation runs four simulated months of traffic and detection.
func RadarValidation(env *Env) RadarResult {
	m := outage.NewModel(env.Net, env.Seed)
	return RadarResult{Report: m.RunRadar(120, uint64(env.Seed))}
}

// Render writes the validation summary.
func (r RadarResult) Render(w io.Writer) {
	rep := r.Report
	fmt.Fprintln(w, "== Radar-style outage detection from traffic series ==")
	fmt.Fprintf(w, "horizon: %d days; ground-truth country-impacts: %d\n", rep.Days, len(rep.Impacts))
	fmt.Fprintf(w, "countries with detections: %d\n", len(rep.Detected))
	fmt.Fprintf(w, "recall on sustained outages: %.0f%%\n", 100*rep.Recall)
	fmt.Fprintf(w, "mean duration error: %.2f days\n", rep.MeanDurationError)

	// A few sample windows for the reader.
	var countries []string
	for c := range rep.Detected {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	shown := 0
	for _, c := range countries {
		for _, win := range rep.Detected[c] {
			fmt.Fprintf(w, "  %s: hours [%d,%d) depth %.0f%%\n", c, win.StartHour, win.EndHour, 100*win.Depth)
			shown++
			if shown >= 5 {
				return
			}
		}
	}
}
