package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/report"
)

// OutageResult reproduces Figure 4: the characterization of detected
// outages over a two-year window.
type OutageResult struct {
	Years float64
	// CountByContinent is detected country-outages per continent line.
	CountByContinent map[string]int
	// AfricaVsEUFactor is Africa's count over Europe's (paper: ~4x).
	AfricaVsEUFactor float64
	// MeanDurationByCause in days (paper: cable cuts longest).
	MeanDurationByCause map[outage.Cause]float64
	// CableCutCountries is the distinct African countries hit by cable
	// cuts in the window (paper: ~30 over two years).
	CableCutCountries []string
	// MeanCountriesPerCableCut is the blast radius of one cable event
	// (paper: ~10 countries for the March 2024 cuts).
	MeanCountriesPerCableCut float64
}

// Fig4Outages generates the event history and runs Radar-style
// detection + impact analysis.
func Fig4Outages(env *Env) OutageResult {
	const years = 2.0
	model := outage.NewModel(env.Net, env.Seed)
	events := model.GenerateEvents(years)

	res := OutageResult{
		Years:               years,
		CountByContinent:    map[string]int{},
		MeanDurationByCause: map[outage.Cause]float64{},
	}

	durations := map[outage.Cause][]float64{}
	cableCountries := map[string]bool{}
	var cableEvents, cableCountryTotal int

	for _, ev := range events {
		imp := model.Evaluate(ev)
		for _, ctry := range imp.CountriesAffected {
			res.CountByContinent[continentOf(geo.MustLookup(ctry).Region)]++
			durations[ev.Cause] = append(durations[ev.Cause], ev.Duration)
			if ev.Cause == outage.CauseCableCut && geo.MustLookup(ctry).Region.IsAfrica() &&
				imp.Drop[ctry] >= 0.5 {
				cableCountries[ctry] = true
			}
		}
		if ev.Cause == outage.CauseCableCut && ev.Region.IsAfrica() {
			cableEvents++
			for _, ctry := range imp.CountriesAffected {
				if imp.Drop[ctry] >= 0.5 {
					cableCountryTotal++
				}
			}
		}
	}

	for cause, ds := range durations {
		res.MeanDurationByCause[cause] = metrics.Mean(ds)
	}
	for c := range cableCountries {
		res.CableCutCountries = append(res.CableCutCountries, c)
	}
	sort.Strings(res.CableCutCountries)
	if cableEvents > 0 {
		res.MeanCountriesPerCableCut = float64(cableCountryTotal) / float64(cableEvents)
	}
	if eu := res.CountByContinent["Europe"]; eu > 0 {
		res.AfricaVsEUFactor = float64(res.CountByContinent["Africa"]) / float64(eu)
	}
	return res
}

// Render writes Figure 4.
func (r OutageResult) Render(w io.Writer) {
	tb := report.NewTable(fmt.Sprintf("Fig 4 — Detected country-outages over %.0f years", r.Years),
		"continent", "outages")
	for _, cont := range []string{"Africa", "Europe", "N. America", "S. America", "Asia-Pacific"} {
		tb.AddRow(cont, r.CountByContinent[cont])
	}
	tb.Render(w)
	fmt.Fprintf(w, "Africa/Europe outage factor: %.1fx (paper: ~4x)\n\n", r.AfricaVsEUFactor)

	tb2 := report.NewTable("Fig 4 — Mean outage duration by cause (days)", "cause", "mean days")
	for _, c := range outage.Causes() {
		tb2.AddRow(c.String(), fmt.Sprintf("%.2f", r.MeanDurationByCause[c]))
	}
	tb2.Render(w)
	fmt.Fprintf(w, "African countries hit by cable cuts: %d (paper: ~30 over 2 years)\n", len(r.CableCutCountries))
	fmt.Fprintf(w, "Mean countries affected per cable-cut event: %.1f (paper: ~10)\n", r.MeanCountriesPerCableCut)
}
