package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/cable"
	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/topology"
)

// NautilusResult reproduces Section 6.2's cable-identification
// assessment: ambiguity of Nautilus-style inference on African paths.
type NautilusResult struct {
	Summary cable.Ambiguity
}

// NautilusAmbiguity traceroutes from Atlas-like African probes toward
// cable-spanning targets and maps every sea-crossing link to candidate
// cables.
func NautilusAmbiguity(env *Env) NautilusResult {
	inf := cable.NewInference(env.Topo, env.GeoDB)
	probes := core.AtlasPlacement(env.Topo, 24)
	targets := core.CableSpanTargets(env.Topo, env.Net)

	// Enumerate the thinned mesh first, then map each (probe, target)
	// pair concurrently; index-addressed results keep the mapping order
	// identical to the serial double loop.
	type pair struct {
		src topology.ASN
		tgt netx.Addr
	}
	var pairs []pair
	for i, src := range probes {
		for j, tgt := range targets {
			// Thin the mesh deterministically to keep the run fast while
			// spanning many (probe, landing-country) combinations.
			if (i+j)%3 != 0 {
				continue
			}
			pairs = append(pairs, pair{src: src, tgt: tgt})
		}
	}
	pms := par.Map(0, len(pairs), func(i int) cable.PathMapping {
		tr := env.Net.Traceroute(pairs[i].src, pairs[i].tgt)
		return inf.MapTraceroute(tr, env.Net)
	})
	return NautilusResult{Summary: cable.Summarize(pms)}
}

// Render writes the assessment.
func (r NautilusResult) Render(w io.Writer) {
	s := r.Summary
	fmt.Fprintln(w, "== §6.2 — Nautilus-style submarine cable identification ==")
	fmt.Fprintf(w, "paths analyzed:               %d (%d with submarine links)\n", s.Paths, s.PathsWithSubmarine)
	fmt.Fprintf(w, "paths mapped to >1 cable:     %.1f%% (paper: >40%%)\n", 100*s.MultiCable)
	fmt.Fprintf(w, "max candidate cables on path: %d (paper: up to 40, on a 12x larger cable almanac)\n", s.MaxCandidates)
	fmt.Fprintf(w, "mean candidates per path:     %.1f\n", s.MeanCandidates)
	fmt.Fprintf(w, "exact-set precision:          %.1f%%\n", 100*s.ExactShare)
	fmt.Fprintf(w, "truth-contained recall:       %.1f%%\n", 100*s.ContainsTruthShare)
}

var _ = netsim.Traceroute{} // keep import for doc reference
