package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/report"
)

// ContentLocalityRow is one region's Figure 2b value.
type ContentLocalityRow struct {
	Region    geo.Region
	LocalPct  float64
	Countries int
}

// ContentLocalityResult reproduces Figure 2b.
type ContentLocalityResult struct {
	Regions    []ContentLocalityRow
	OverallPct float64
}

// Fig2bContentLocality runs the ISOC-Pulse-style measurement in every
// African country and aggregates per region.
func Fig2bContentLocality(env *Env) ContentLocalityResult {
	type acc struct {
		sum float64
		n   int
	}
	byRegion := map[geo.Region]*acc{}
	var allSum float64
	var allN int
	for _, c := range geo.AfricanCountries() {
		ls := env.Web.MeasureLocality(c.ISO2)
		if ls.Samples == 0 {
			continue
		}
		a := byRegion[c.Region]
		if a == nil {
			a = &acc{}
			byRegion[c.Region] = a
		}
		a.sum += ls.Local
		a.n++
		allSum += ls.Local
		allN++
	}
	res := ContentLocalityResult{}
	for _, r := range geo.AfricanRegions() {
		if a := byRegion[r]; a != nil && a.n > 0 {
			res.Regions = append(res.Regions, ContentLocalityRow{
				Region: r, LocalPct: 100 * a.sum / float64(a.n), Countries: a.n,
			})
		}
	}
	if allN > 0 {
		res.OverallPct = 100 * allSum / float64(allN)
	}
	return res
}

// Render writes Figure 2b.
func (r ContentLocalityResult) Render(w io.Writer) {
	tb := report.NewTable("Fig 2b — Content served from within Africa (per top-site fetch)",
		"region", "countries", "local %")
	for _, row := range r.Regions {
		tb.AddRow(row.Region.String(), row.Countries, row.LocalPct)
	}
	tb.AddRow("ALL AFRICA", "", r.OverallPct)
	tb.Render(w)
	fmt.Fprintln(w, "(paper: ~30% of content local overall; Southern most local, Western least)")
}

// ResolverRow is one region's Figure 2c breakdown.
type ResolverRow struct {
	Region   geo.Region
	SamePct  float64
	OtherPct float64
	CloudPct float64
	Samples  int
}

// ResolverResult reproduces Figure 2c.
type ResolverResult struct {
	Regions []ResolverRow
}

// Fig2cResolverUse runs the APNIC-style resolver measurement per region.
func Fig2cResolverUse(env *Env) ResolverResult {
	var res ResolverResult
	for _, r := range geo.AfricanRegions() {
		us := env.DNS.MeasureResolverUse(r)
		res.Regions = append(res.Regions, ResolverRow{
			Region:  r,
			SamePct: 100 * us.SameCountry, OtherPct: 100 * us.OtherCountry,
			CloudPct: 100 * us.Cloud, Samples: us.Samples,
		})
	}
	return res
}

// Render writes Figure 2c.
func (r ResolverResult) Render(w io.Writer) {
	tb := report.NewTable("Fig 2c — DNS resolver locality across Africa (APNIC-style sampling)",
		"region", "client networks", "same-country %", "other-country %", "cloud %")
	for _, row := range r.Regions {
		tb.AddRow(row.Region.String(), row.Samples, row.SamePct, row.OtherPct, row.CloudPct)
	}
	tb.Render(w)
	fmt.Fprintln(w, "(paper: heavy reliance on other-country and cloud resolvers; clouds centralized in South Africa)")
}
