package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"sort"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

// PlatformRun demonstrates the observatory end to end AS A SYSTEM: it
// stands up the controller behind a real HTTP listener, registers a
// probe fleet at the targeted placement, submits the intra-African
// traceroute mesh and the per-country DNS audit as vetted experiments,
// executes them through the agents' task loop, and recomputes the
// paper's headline statistics purely from the wire-format results —
// never touching the simulator's internals. The inline drivers
// (Fig2aDetours etc.) are the oracle this run is compared against.
type PlatformRunResult struct {
	Probes   int
	TasksRun int
	// DetourPct recomputed from uploaded traceroutes.
	DetourPct float64
	// IXPsSeen is the count of distinct African fabrics in the results.
	IXPsSeen int
	// ResolverRemotePct is the share of DNS audits answered by an
	// out-of-country resolver.
	ResolverRemotePct float64
	// MedianRTTms across successful traceroutes.
	MedianRTTms float64
}

// PlatformRun executes the end-to-end flow. Probe count is capped to
// keep the HTTP round trips reasonable.
func PlatformRun(env *Env, probeCap int) (PlatformRunResult, error) {
	var res PlatformRunResult

	ctrl := core.NewController("observatory")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	cl := core.NewClient(srv.URL)

	// Fleet: targeted placement, capped, each probe an agent process.
	placement := core.TargetedPlacement(env.Topo)
	if probeCap > 0 && len(placement) > probeCap {
		placement = placement[:probeCap]
	}
	agents := make(map[string]*probes.Agent, len(placement))
	for i, asn := range placement {
		id := fmt.Sprintf("probe-%02d", i)
		as := env.Topo.ASes[asn]
		cfg := probes.Config{ID: id, ASN: asn, HasWired: as.Type != topology.ASMobileCarrier}
		if !cfg.HasWired {
			cfg.CellBudget = probes.NewBudget(probes.PrepaidBundle{BundleMB: 200, BundlePrice: 1}, 50)
		}
		if err := cl.Register(core.ProbeInfo{ID: id, ASN: asn, Country: as.Country, HasWired: cfg.HasWired}); err != nil {
			return res, fmt.Errorf("register %s: %w", id, err)
		}
		agents[id] = probes.NewAgent(cfg, env.Net, env.DNS, env.Web)
	}
	res.Probes = len(agents)

	// Experiment 1: intra-African traceroute mesh (each probe traces a
	// sample of the others).
	var mesh []probes.Assignment
	ids := make([]string, 0, len(agents))
	for id := range agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i, src := range ids {
		for j, dst := range ids {
			if i == j || (i+j)%3 != 0 {
				continue // sample the mesh
			}
			mesh = append(mesh, probes.Assignment{
				ProbeID: src,
				Task: probes.Task{
					Kind:   probes.TaskTraceroute,
					Target: env.Net.RouterAddr(agents[dst].ASN(), 0).String(),
				},
			})
		}
	}
	exp1, err := cl.Submit("observatory", "intra-african mesh", mesh)
	if err != nil {
		return res, err
	}

	// Experiment 2: DNS dependency audit, one domain per probe country.
	var audit []probes.Assignment
	for _, id := range ids {
		ctry := env.Topo.ASes[agents[id].ASN()].Country
		sites := env.Web.Catalog().SitesFor(ctry)
		if len(sites) == 0 {
			continue
		}
		audit = append(audit, probes.Assignment{
			ProbeID: id,
			Task:    probes.Task{Kind: probes.TaskDNS, Domain: sites[0].Domain, OriginCountry: ctry},
		})
	}
	exp2, err := cl.Submit("observatory", "resolver audit", audit)
	if err != nil {
		return res, err
	}

	// Drain every agent through the HTTP loop.
	for _, id := range ids {
		n, err := core.RunAgentOnce(cl, agents[id])
		if err != nil {
			return res, fmt.Errorf("agent %s: %w", id, err)
		}
		res.TasksRun += n
	}

	// Analyze experiment 1 from the wire results only.
	trs, err := cl.Results(exp1.ID)
	if err != nil {
		return res, err
	}
	african := map[topology.IXPID]bool{}
	for _, rec := range env.Dir {
		if rec.Region.IsAfrica() {
			african[rec.ID] = true
		}
	}
	detours, pairs := 0, 0
	var rtts []float64
	seenIXPs := map[topology.IXPID]bool{}
	for _, r := range trs {
		pairs++
		sawOutside := false
		for _, hop := range r.Hops {
			if hop.Addr == "" {
				continue
			}
			addr, perr := netx.ParseAddr(hop.Addr)
			if perr != nil {
				return res, fmt.Errorf("bad hop address %q", hop.Addr)
			}
			if loc, ok := env.GeoDB.Lookup(addr); ok {
				if c, okc := geo.Lookup(loc.Country); okc && !c.Region.IsAfrica() {
					sawOutside = true
				}
			}
			for _, cr := range env.Detector.Detect(hopOnlyTrace(addr, hop.TTL), nil) {
				if cr.Strong && african[cr.IXP] {
					seenIXPs[cr.IXP] = true
				}
			}
		}
		if sawOutside {
			detours++
		}
		if r.OK {
			rtts = append(rtts, r.RTTms)
		}
	}
	if pairs > 0 {
		res.DetourPct = 100 * float64(detours) / float64(pairs)
	}
	res.IXPsSeen = len(seenIXPs)
	res.MedianRTTms = metrics.Median(rtts)

	// Analyze experiment 2.
	drs, err := cl.Results(exp2.ID)
	if err != nil {
		return res, err
	}
	remote, total := 0, 0
	for _, r := range drs {
		if !r.OK {
			continue
		}
		total++
		ctry := env.Topo.ASes[agents[r.ProbeID].ASN()].Country
		if r.ResolverKind != "same-country" || r.ResolverCountry != ctry {
			remote++
		}
	}
	if total > 0 {
		res.ResolverRemotePct = 100 * float64(remote) / float64(total)
	}
	return res, nil
}

// hopOnlyTrace wraps one wire hop as a single-hop traceroute for the
// detector (which only needs addresses).
func hopOnlyTrace(addr netx.Addr, ttl int) netsim.Traceroute {
	return netsim.Traceroute{Hops: []netsim.TraceHop{{TTL: ttl, Addr: addr}}}
}

// Render writes the summary.
func (r PlatformRunResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Platform run — the paper's measurements through the live observatory ==")
	fmt.Fprintf(w, "probes registered:           %d\n", r.Probes)
	fmt.Fprintf(w, "tasks executed over HTTP:    %d\n", r.TasksRun)
	fmt.Fprintf(w, "intra-African detours:       %.1f%%\n", r.DetourPct)
	fmt.Fprintf(w, "African fabrics observed:    %d\n", r.IXPsSeen)
	fmt.Fprintf(w, "remote-resolver share:       %.1f%%\n", r.ResolverRemotePct)
	fmt.Fprintf(w, "median mesh RTT:             %.1f ms\n", r.MedianRTTms)
}
