package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/topology"
)

// The ablations quantify the design choices DESIGN.md calls out.

// PlacementAblationRow compares placement strategies at one budget.
type PlacementAblationRow struct {
	Probes   int
	Targeted int // exchanges covered by membership
	Atlas    int
	Random   int
}

// PlacementAblation measures exchange coverage per probe budget for the
// observatory's set-cover placement vs the Atlas-like and random
// baselines.
type PlacementAblation struct {
	Rows     []PlacementAblationRow
	Universe int
}

// AblationPlacement runs the sweep.
func AblationPlacement(env *Env) PlacementAblation {
	dir := registry.AfricanIXPs(env.Topo)
	cover := ixp.GreedySetCover(dir)
	targetedAll := cover.Chosen

	var africanASNs []topology.ASN
	for _, a := range env.Topo.ASNs() {
		as := env.Topo.ASes[a]
		if as.Region.IsAfrica() && as.Type != topology.ASIXPRouteServer {
			africanASNs = append(africanASNs, a)
		}
	}
	rng := rand.New(rand.NewSource(env.Seed))
	random := append([]topology.ASN(nil), africanASNs...)
	rng.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })

	res := PlacementAblation{Universe: len(dir)}
	for _, n := range []int{5, 10, 20, 30, 40, 50} {
		row := PlacementAblationRow{Probes: n}
		row.Targeted = ixp.CoverageOf(dir, capList(targetedAll, n))
		row.Atlas = ixp.CoverageOf(dir, core.AtlasPlacement(env.Topo, n))
		row.Random = ixp.CoverageOf(dir, capList(random, n))
		res.Rows = append(res.Rows, row)
	}
	return res
}

func capList(xs []topology.ASN, n int) []topology.ASN {
	if n > len(xs) {
		n = len(xs)
	}
	return xs[:n]
}

// Render writes the placement ablation.
func (r PlacementAblation) Render(w io.Writer) {
	tb := report.NewTable(
		fmt.Sprintf("Ablation — IXP coverage by placement strategy (of %d exchanges)", r.Universe),
		"probes", "set-cover", "atlas-like", "random")
	for _, row := range r.Rows {
		tb.AddRow(row.Probes, row.Targeted, row.Atlas, row.Random)
	}
	tb.Render(w)
}

// BudgetAblation compares the cost-aware scheduler with naive
// round-robin under prepaid-bundle pricing.
type BudgetAblation struct {
	TasksOffered       int
	BudgetAwareDone    int
	BudgetAwareSpend   float64
	RoundRobinDone     int
	RoundRobinSpend    float64
	RoundRobinFailures int
}

// AblationBudget runs the comparison: a fleet of cellular-only probes
// with prepaid bundles executes a traceroute campaign scheduled both
// ways.
func AblationBudget(env *Env) BudgetAblation {
	mkAgents := func() []*probes.Agent {
		var agents []*probes.Agent
		i := 0
		for _, asn := range core.TargetedPlacement(env.Topo) {
			if i >= 12 {
				break
			}
			i++
			cfg := probes.Config{
				ID:  fmt.Sprintf("cell-%02d", i),
				ASN: asn,
				// Cellular-only with a prepaid budget; bundle sizes and
				// prices differ per market.
				CellBudget: probes.NewBudget(probes.PrepaidBundle{
					BundleMB:    int64(5 + i%4*5),
					BundlePrice: 1.0 + float64(i%3)*0.5,
				}, 6.0),
			}
			agents = append(agents, probes.NewAgent(cfg, env.Net, env.DNS, env.Web))
		}
		return agents
	}

	var tasks []probes.Task
	targets := core.CableSpanTargets(env.Topo, env.Net)
	for i, tgt := range targets {
		for r := 0; r < 30; r++ {
			tasks = append(tasks, probes.Task{
				ID:     fmt.Sprintf("t-%03d-%02d", i, r),
				Kind:   probes.TaskTraceroute,
				Target: tgt.String(),
				Value:  float64(1 + i%3),
			})
		}
	}

	run := func(agents []*probes.Agent, as []probes.Assignment) (done int, spend float64, failures int) {
		byID := map[string]*probes.Agent{}
		for _, a := range agents {
			byID[a.ID()] = a
		}
		for _, asg := range as {
			agent := byID[asg.ProbeID]
			if agent == nil {
				continue
			}
			res, err := agent.Execute(asg.Task)
			if err != nil {
				failures++
				continue
			}
			done++
			spend += res.CostPaid
		}
		return done, spend, failures
	}

	res := BudgetAblation{TasksOffered: len(tasks)}

	agents := mkAgents()
	aware := probes.ScheduleBudgetAware(agents, tasks, 10, nil)
	res.BudgetAwareDone, res.BudgetAwareSpend, _ = run(agents, aware)

	agents = mkAgents() // fresh budgets
	rr := probes.ScheduleRoundRobin(agents, tasks, nil)
	var rrFail int
	res.RoundRobinDone, res.RoundRobinSpend, rrFail = run(agents, rr)
	res.RoundRobinFailures = rrFail
	return res
}

// Render writes the budget ablation.
func (r BudgetAblation) Render(w io.Writer) {
	tb := report.NewTable("Ablation — budget-aware scheduling vs round-robin (prepaid bundles)",
		"scheduler", "tasks done", "money spent", "failed (budget)")
	tb.AddRow("budget-aware", r.BudgetAwareDone, fmt.Sprintf("%.2f", r.BudgetAwareSpend), 0)
	tb.AddRow("round-robin", r.RoundRobinDone, fmt.Sprintf("%.2f", r.RoundRobinSpend), r.RoundRobinFailures)
	tb.Render(w)
	fmt.Fprintf(w, "offered: %d tasks; budget-aware completes %.1fx the work per unit spend\n",
		r.TasksOffered, perSpend(r.BudgetAwareDone, r.BudgetAwareSpend)/perSpendSafe(r.RoundRobinDone, r.RoundRobinSpend))
}

func perSpend(done int, spend float64) float64 {
	if spend == 0 {
		return float64(done)
	}
	return float64(done) / spend
}

func perSpendSafe(done int, spend float64) float64 {
	v := perSpend(done, spend)
	if v == 0 {
		return 1
	}
	return v
}

// CorrelationAblation compares corridor-correlated cable cuts with the
// independent-failure assumption legislation implicitly makes.
type CorrelationAblation struct {
	Events                int
	CorrelatedMeanImpact  float64 // countries affected per event
	IndependentMeanImpact float64
}

// AblationCorrelatedCuts runs matched event sequences with the corridor
// model on and off.
func AblationCorrelatedCuts(env *Env) CorrelationAblation {
	run := func(correlated bool) float64 {
		model := outage.NewModel(env.Net, env.Seed+99)
		model.CorrelatedCuts = correlated
		events := model.GenerateEvents(2)
		total, n := 0, 0
		for _, ev := range events {
			if ev.Cause != outage.CauseCableCut || !ev.Region.IsAfrica() {
				continue
			}
			imp := model.Evaluate(ev)
			total += len(imp.CountriesAffected)
			n++
		}
		if n == 0 {
			return 0
		}
		return float64(total) / float64(n)
	}
	res := CorrelationAblation{}
	res.CorrelatedMeanImpact = run(true)
	res.IndependentMeanImpact = run(false)
	return res
}

// Render writes the correlation ablation.
func (r CorrelationAblation) Render(w io.Writer) {
	fmt.Fprintln(w, "== Ablation — correlated (corridor) vs independent cable failures ==")
	fmt.Fprintf(w, "mean countries affected per cable-cut event:\n")
	fmt.Fprintf(w, "  corridor-correlated: %.1f\n", r.CorrelatedMeanImpact)
	fmt.Fprintf(w, "  independent single cable: %.1f\n", r.IndependentMeanImpact)
	fmt.Fprintln(w, "(legislating backup cables without corridor diversity leaves the correlated risk)")
}

// sortASNs is a tiny helper for deterministic listings.
func sortASNs(xs []topology.ASN) []topology.ASN {
	out := append([]topology.ASN(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
