package experiments

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"github.com/afrinet/observatory/internal/par"
)

// renderable is what every driver result knows how to do.
type renderable interface{ Render(w io.Writer) }

// parallelDrivers lists every driver that fans out through internal/par.
// Each must produce byte-identical output whether the pool runs one
// worker or many — the contract DESIGN.md states for the substrate.
var parallelDrivers = []struct {
	name string
	run  func(*Env) renderable
}{
	{"Fig2aDetours", func(e *Env) renderable { return Fig2aDetours(e) }},
	{"Fig4Outages", func(e *Env) renderable { return Fig4Outages(e) }},
	{"Table1Scan", func(e *Env) renderable { return Table1Scan(e) }},
	{"NautilusAmbiguity", func(e *Env) renderable { return NautilusAmbiguity(e) }},
	{"WhatIfCableCut", func(e *Env) renderable { return WhatIfCableCut(e) }},
	{"AblationCorrelatedCuts", func(e *Env) renderable { return AblationCorrelatedCuts(e) }},
	{"WebstepsCensorship", func(e *Env) renderable { return WebstepsCensorship(e) }},
	{"DNSLocalization", func(e *Env) renderable { return DNSLocalization(e) }},
}

// TestParallelDriversMatchSerial runs each parallelized driver twice per
// seed — once with the worker pool pinned to a single worker (the serial
// reference) and once with a wide pool — and requires deep-equal results
// and byte-identical rendered reports.
func TestParallelDriversMatchSerial(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		// Fresh environments per mode so warm caches on one side cannot
		// mask (or cause) a divergence on the other.
		serialEnv := NewEnv(seed, 2025)
		parallelEnv := NewEnv(seed, 2025)

		for _, d := range parallelDrivers {
			prev := par.SetDefaultWorkers(1)
			serial := d.run(serialEnv)
			par.SetDefaultWorkers(8)
			parallel := d.run(parallelEnv)
			par.SetDefaultWorkers(prev)

			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("seed %d %s: parallel result differs from serial\nserial:   %#v\nparallel: %#v",
					seed, d.name, serial, parallel)
				continue
			}
			var sb, pb bytes.Buffer
			serial.Render(&sb)
			parallel.Render(&pb)
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Errorf("seed %d %s: rendered output differs\nserial:\n%s\nparallel:\n%s",
					seed, d.name, sb.String(), pb.String())
			}
		}
	}
}
