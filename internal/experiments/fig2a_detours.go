package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/topology"
)

// DetourRegion is one region's row in Figure 2a.
type DetourRegion struct {
	Region    geo.Region
	Pairs     int
	DetourPct float64
	// AttributedT1IXPPct is, of the detouring paths, the share whose
	// out-of-Africa segment is explained by Tier-1 transit or exchange
	// peering in Europe (the paper attributes ~40% this way; the rest
	// reflects the missing African Tier-2 layer).
	AttributedT1IXPPct float64
}

// DetourResult reproduces Figure 2a.
type DetourResult struct {
	Regions              []DetourRegion
	OverallPct           float64
	OverallAttributedPct float64
	Probes               int
}

// Fig2aDetours measures intra-African detours from an Atlas-like probe
// deployment: every probe traceroutes every other probe; a pair detours
// when any responding hop maps outside Africa.
func Fig2aDetours(env *Env) DetourResult {
	probes := core.AtlasPlacement(env.Topo, 48)
	tier1 := tier1Set(env.Topo)

	type acc struct{ pairs, detours, attributed int }

	// One independent worker per source probe; its counters merge by
	// addition, so any merge order yields the serial totals.
	perSrc := par.Map(0, len(probes), func(i int) acc {
		src := probes[i]
		var a acc
		for _, dst := range probes {
			if src == dst {
				continue
			}
			tr := env.Net.Traceroute(src, env.Net.RouterAddr(dst, 0))
			detour, attributed := classifyDetour(observe(env, tr), tier1)
			a.pairs++
			if detour {
				a.detours++
				if attributed {
					a.attributed++
				}
			}
		}
		return a
	})

	byRegion := map[geo.Region]*acc{}
	overall := &acc{}
	for i, sa := range perSrc {
		srcRegion := env.Topo.RegionOf(probes[i])
		a := byRegion[srcRegion]
		if a == nil {
			a = &acc{}
			byRegion[srcRegion] = a
		}
		for _, x := range []*acc{a, overall} {
			x.pairs += sa.pairs
			x.detours += sa.detours
			x.attributed += sa.attributed
		}
	}

	res := DetourResult{Probes: len(probes)}
	for _, r := range geo.AfricanRegions() {
		a := byRegion[r]
		if a == nil || a.pairs == 0 {
			continue
		}
		row := DetourRegion{Region: r, Pairs: a.pairs,
			DetourPct: 100 * metrics.Share(a.detours, a.pairs)}
		if a.detours > 0 {
			row.AttributedT1IXPPct = 100 * metrics.Share(a.attributed, a.detours)
		}
		res.Regions = append(res.Regions, row)
	}
	res.OverallPct = 100 * metrics.Share(overall.detours, overall.pairs)
	if overall.detours > 0 {
		res.OverallAttributedPct = 100 * metrics.Share(overall.attributed, overall.detours)
	}
	return res
}

// observedHop is a responding hop mapped with measurement-grade data.
type observedHop struct {
	asn    topology.ASN
	africa bool
	viaIXP bool
}

// ASPathObserved is defined on a tiny wrapper to keep the measurement
// mapping (routed table + geolocation) in one place.
type tracerouteView struct{ hops []observedHop }

func (tv tracerouteView) hopsOutsideAfrica() []observedHop {
	var out []observedHop
	for _, h := range tv.hops {
		if !h.africa {
			out = append(out, h)
		}
	}
	return out
}

// classifyDetour decides detour and attribution from observed hops.
// A detour is "attributable to EU Tier-1/IXP" when the out-of-Africa
// segment shows Tier-1 transit (the only common provider is a Tier-1) or
// a European exchange crossing (peering abroad); otherwise the detour
// reflects transit bought from European Tier-2s — the missing African
// Tier-2 layer the paper diagnoses.
func classifyDetour(tv tracerouteView, tier1 map[topology.ASN]bool) (detour, attributed bool) {
	outside := tv.hopsOutsideAfrica()
	if len(outside) == 0 {
		return false, false
	}
	for _, h := range outside {
		if h.viaIXP || (h.asn != 0 && tier1[h.asn]) {
			return true, true
		}
	}
	return true, false
}

func tier1Set(t *topology.Topology) map[topology.ASN]bool {
	out := map[topology.ASN]bool{}
	for _, a := range t.ASNs() {
		if t.ASes[a].Tier == topology.Tier1 {
			out[a] = true
		}
	}
	return out
}

// Render writes the figure.
func (r DetourResult) Render(w io.Writer) {
	tb := report.NewTable("Fig 2a — Prevalence of intra-African route detours (Atlas-like probes)",
		"region", "pairs", "detour %", "attributable to EU T1/IXP %")
	for _, row := range r.Regions {
		tb.AddRow(row.Region.String(), row.Pairs, row.DetourPct, row.AttributedT1IXPPct)
	}
	tb.AddRow("ALL AFRICA", "", r.OverallPct, r.OverallAttributedPct)
	tb.Render(w)
	fmt.Fprintf(w, "(%d probes; paper: non-trivial detours persist; ~40%% attributable to EU Tier-1/IXP)\n", r.Probes)
}
