package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/topology"
)

// IXPPrevalenceRow is one region's Figure 3 bar.
type IXPPrevalenceRow struct {
	Region   geo.Region
	Pairs    int
	IXPPct   float64
	Excluded bool // no exchanges showed up in the data (paper: Northern)
}

// IXPPrevalenceResult reproduces Figure 3.
type IXPPrevalenceResult struct {
	Regions    []IXPPrevalenceRow
	OverallPct float64
}

// Fig3IXPPrevalence measures, with traIXroute-style detection over
// Atlas-like probe meshes, the share of intra-regional routes that
// traverse at least one exchange.
func Fig3IXPPrevalence(env *Env) IXPPrevalenceResult {
	probes := core.AtlasPlacement(env.Topo, 48)
	byRegion := map[geo.Region][]topology.ASN{}
	for _, p := range probes {
		r := env.Topo.RegionOf(p)
		byRegion[r] = append(byRegion[r], p)
	}

	origin := func(a netx.Addr) (topology.ASN, bool) { return env.Table.Origin(a) }

	// Intra-African routes that detour through Europe cross the big EU
	// fabrics; the figure asks about *African* exchange usage, so filter
	// crossings by the exchange's country.
	african := map[topology.IXPID]bool{}
	for _, rec := range env.Dir {
		if rec.Region.IsAfrica() {
			african[rec.ID] = true
		}
	}

	var res IXPPrevalenceResult
	totalPairs, totalIXP := 0, 0
	for _, r := range geo.AfricanRegions() {
		ps := byRegion[r]
		row := IXPPrevalenceRow{Region: r}
		for _, src := range ps {
			for _, dst := range ps {
				if src == dst {
					continue
				}
				tr := env.Net.Traceroute(src, env.Net.RouterAddr(dst, 0))
				row.Pairs++
				totalPairs++
				// Count only high-confidence (peering-LAN address)
				// crossings, traIXroute's primary rule; the membership
				// heuristic alone over-infers on dense fabrics.
				for _, cr := range env.Detector.Detect(tr, origin) {
					if cr.Strong && african[cr.IXP] {
						row.IXPPct++ // counting; converted below
						totalIXP++
						break
					}
				}
			}
		}
		if row.Pairs > 0 {
			row.IXPPct = 100 * row.IXPPct / float64(row.Pairs)
		}
		if row.IXPPct == 0 {
			row.Excluded = true
		}
		res.Regions = append(res.Regions, row)
	}
	res.OverallPct = 100 * metrics.Share(totalIXP, totalPairs)
	return res
}

// Render writes Figure 3.
func (r IXPPrevalenceResult) Render(w io.Writer) {
	tb := report.NewTable("Fig 3 — Share of intra-regional routes traversing an IXP",
		"region", "pairs", "via IXP %", "note")
	for _, row := range r.Regions {
		note := ""
		if row.Excluded {
			note = "excluded (no IXPs in data)"
		}
		tb.AddRow(row.Region.String(), row.Pairs, row.IXPPct, note)
	}
	tb.AddRow("ALL AFRICA", "", r.OverallPct, "")
	tb.Render(w)
	fmt.Fprintln(w, "(paper: ~10% overall; best ~55% in Central Africa; Northern excluded)")
}
