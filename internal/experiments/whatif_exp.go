package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/whatif"
)

// WhatIfResult reproduces the paper's envisioned what-if analysis around
// the March 2024 West-African cable disaster:
//
//   - the historical event (WACS, MainOne, SAT-3, ACE cut; the newer
//     Equiano/2Africa systems survive and absorb, congested);
//   - the catastrophic variant (the whole coastal corridor gone —
//     the correlated-failure risk Section 5.1 warns legislation ignores);
//   - the catastrophic variant under full DNS localization (in-country
//     resolvers and in-country authoritatives for domestic domains — the
//     Section 5.2 "legislate critical dependencies" intervention).
type WhatIfResult struct {
	Baseline    whatif.Outcome // March 2024 as it happened
	FullCut     whatif.Outcome // entire corridor severed
	FullCutSafe whatif.Outcome // entire corridor severed + local DNS chain
}

// westAfrica is the measured footprint.
var westAfrica = []string{"NG", "GH", "CI", "SN", "BJ", "TG", "LR", "SL", "GN", "GM", "BF", "ML", "NE"}

// WhatIfCableCut runs the scenario set.
func WhatIfCableCut(env *Env) WhatIfResult {
	eng := whatif.NewEngine(env.Net, env.DNS, env.Web)
	march := whatif.FindCables(env.Topo, "WACS", "MainOne", "SAT-3", "ACE")
	corridor := env.Topo.Corridors()["west-africa-coastal"]

	var res WhatIfResult
	res.Baseline = eng.Run(whatif.Scenario{
		Name: "march-2024 (4 cables)", CutCables: march, Countries: westAfrica, SitesPerCountry: 40,
	})
	res.FullCut = eng.Run(whatif.Scenario{
		Name: "full corridor", CutCables: corridor, Countries: westAfrica, SitesPerCountry: 40,
	})
	res.FullCutSafe = eng.Run(whatif.Scenario{
		Name: "full corridor + local DNS chain", CutCables: corridor, Countries: westAfrica,
		SitesPerCountry: 40, MandateLocalResolvers: true, MandateLocalAuthoritatives: true,
	})
	return res
}

// localShares averages the local-content success over countries that
// have local sites in sample.
func localShares(o whatif.Outcome) (before, after float64) {
	n := 0
	for _, c := range o.Countries {
		if c.LocalBefore < 0 {
			continue
		}
		before += c.LocalBefore
		after += c.LocalAfter
		n++
	}
	if n > 0 {
		before /= float64(n)
		after /= float64(n)
	}
	return before, after
}

// Render writes the scenario comparison.
func (r WhatIfResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== What-if — West-African subsea corridor failures ==")
	tb := report.NewTable("Page-load success across West Africa",
		"scenario", "all before %", "all after %", "local-content after %", "dns share of failures %")
	for _, o := range []whatif.Outcome{r.Baseline, r.FullCut, r.FullCutSafe} {
		var b, a, d float64
		for _, rs := range whatif.ByRegion(o) {
			b, a, d = 100*rs.PageLoadBefore, 100*rs.PageLoadAfter, 100*rs.DNSFailShare
		}
		_, localAfter := localShares(o)
		tb.AddRow(o.Scenario.Name, b, a, 100*localAfter, d)
	}
	tb.Render(w)
	fmt.Fprintf(w, "countries fully disconnected (march 2024): %d %v\n",
		len(r.Baseline.Disconnected), r.Baseline.Disconnected)
	fmt.Fprintf(w, "countries fully disconnected (full corridor): %d %v\n",
		len(r.FullCut.Disconnected), r.FullCut.Disconnected)
	fmt.Fprintln(w, "(with the whole corridor gone, localizing the DNS chain keeps in-country")
	fmt.Fprintln(w, " services loading; content hosted abroad stays dark either way)")
}
