package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/afrinet/observatory/internal/geo"
)

// The experiment tests assert the paper-shape invariants the repository
// claims to reproduce. They share one environment; building it is the
// expensive part.

var (
	envOnce sync.Once
	env     *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { env = NewEnv(42, 2025) })
	return env
}

func TestFig1GrowthBands(t *testing.T) {
	r := Fig1Growth(42)
	if r.AfricaCableGrowthPct < 35 || r.AfricaCableGrowthPct > 60 {
		t.Errorf("cable growth %.0f%%, paper ~45%%", r.AfricaCableGrowthPct)
	}
	if r.AfricaIXPGrowthPct < 450 || r.AfricaIXPGrowthPct > 750 {
		t.Errorf("IXP growth %.0f%%, paper ~600%%", r.AfricaIXPGrowthPct)
	}
	af := r.Series["Africa"]
	eu := r.Series["Europe"]
	// Africa's relative IXP growth exceeds Europe's (mature market).
	afGrow := float64(af[len(af)-1].IXPs) / float64(af[0].IXPs)
	euGrow := float64(eu[len(eu)-1].IXPs) / float64(eu[0].IXPs)
	if afGrow <= euGrow {
		t.Errorf("Africa IXP growth factor %.1f should exceed Europe's %.1f", afGrow, euGrow)
	}
	// Rendering should not panic and should mention the headline.
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "Africa 2015->2025") {
		t.Error("render missing summary")
	}
}

func TestFig2aDetourShape(t *testing.T) {
	r := Fig2aDetours(testEnv(t))
	if r.OverallPct < 30 || r.OverallPct > 95 {
		t.Errorf("overall detours %.1f%% out of band", r.OverallPct)
	}
	byRegion := map[geo.Region]float64{}
	for _, row := range r.Regions {
		byRegion[row.Region] = row.DetourPct
	}
	// Southern Africa detours least (the maturity gradient).
	for _, other := range []geo.Region{geo.AfricaWestern, geo.AfricaCentral, geo.AfricaNorthern} {
		if byRegion[geo.AfricaSouthern] >= byRegion[other] {
			t.Errorf("Southern (%.1f%%) should detour less than %s (%.1f%%)",
				byRegion[geo.AfricaSouthern], other, byRegion[other])
		}
	}
	// Attribution near the paper's ~40%: allow a wide band.
	if r.OverallAttributedPct < 20 || r.OverallAttributedPct > 80 {
		t.Errorf("attribution %.1f%% out of band (paper ~40%%)", r.OverallAttributedPct)
	}
}

func TestFig2bContentLocalityShape(t *testing.T) {
	r := Fig2bContentLocality(testEnv(t))
	if r.OverallPct < 20 || r.OverallPct > 50 {
		t.Errorf("overall locality %.1f%%, paper ~30%%", r.OverallPct)
	}
	vals := map[geo.Region]float64{}
	for _, row := range r.Regions {
		vals[row.Region] = row.LocalPct
	}
	if vals[geo.AfricaSouthern] <= vals[geo.AfricaWestern] {
		t.Errorf("Southern (%.1f) should beat Western (%.1f)", vals[geo.AfricaSouthern], vals[geo.AfricaWestern])
	}
}

func TestFig2cResolverShape(t *testing.T) {
	r := Fig2cResolverUse(testEnv(t))
	if len(r.Regions) != 5 {
		t.Fatalf("regions = %d", len(r.Regions))
	}
	for _, row := range r.Regions {
		sum := row.SamePct + row.OtherPct + row.CloudPct
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s shares sum to %.1f", row.Region, sum)
		}
		// The paper's alarm: substantial non-local resolution everywhere.
		if row.OtherPct+row.CloudPct < 20 {
			t.Errorf("%s remote resolver share %.1f suspiciously low", row.Region, row.OtherPct+row.CloudPct)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3IXPPrevalence(testEnv(t))
	vals := map[geo.Region]IXPPrevalenceRow{}
	for _, row := range r.Regions {
		vals[row.Region] = row
	}
	if !vals[geo.AfricaNorthern].Excluded {
		t.Error("Northern Africa should be excluded (no IXPs in the data)")
	}
	// Central Africa is the best-covered region (the paper's 55%).
	for _, other := range []geo.Region{geo.AfricaWestern, geo.AfricaEastern, geo.AfricaSouthern} {
		if vals[geo.AfricaCentral].IXPPct <= vals[other].IXPPct {
			t.Errorf("Central (%.1f%%) should top %s (%.1f%%)",
				vals[geo.AfricaCentral].IXPPct, other, vals[other].IXPPct)
		}
	}
	if r.OverallPct > 35 {
		t.Errorf("overall IXP prevalence %.1f%% too high (paper ~10%%)", r.OverallPct)
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4Outages(testEnv(t))
	if r.AfricaVsEUFactor < 2.5 || r.AfricaVsEUFactor > 9 {
		t.Errorf("Africa/EU factor %.1f out of band (paper ~4x)", r.AfricaVsEUFactor)
	}
	// Cable cuts are the slowest to resolve.
	cable := r.MeanDurationByCause[1] // CauseCableCut
	for cause, d := range r.MeanDurationByCause {
		if cause != 1 && d >= cable {
			t.Errorf("cause %v duration %.2f >= cable cuts %.2f", cause, d, cable)
		}
	}
	if len(r.CableCutCountries) < 15 {
		t.Errorf("only %d countries hit by cable cuts (paper ~30)", len(r.CableCutCountries))
	}
	if r.MeanCountriesPerCableCut < 4 {
		t.Errorf("blast radius %.1f too small (paper ~10)", r.MeanCountriesPerCableCut)
	}
}

func TestTable1Shape(t *testing.T) {
	r := Table1Scan(testEnv(t))
	var ant, caida, yarrp *struct {
		m, n, x float64
	}
	for _, row := range r.Rows {
		v := &struct{ m, n, x float64 }{row.Mobile, row.NonMobile, row.IXP}
		switch row.Tool.String() {
		case "ANT Hitlist":
			ant = v
		case "CAIDA Hitlist":
			caida = v
		case "YARRP":
			yarrp = v
		}
	}
	if ant == nil || caida == nil || yarrp == nil {
		t.Fatal("missing tools")
	}
	if !(ant.m > caida.m && caida.m > yarrp.m) {
		t.Errorf("mobile ordering broken: ant=%.2f caida=%.2f yarrp=%.2f", ant.m, caida.m, yarrp.m)
	}
	if ant.m < 0.85 {
		t.Errorf("ANT mobile %.2f (paper 96%%)", ant.m)
	}
	if !(ant.x > caida.x && caida.x > yarrp.x) {
		t.Errorf("IXP ordering broken: ant=%.2f caida=%.2f yarrp=%.2f", ant.x, caida.x, yarrp.x)
	}
	if ant.x > 0.45 {
		t.Errorf("ANT IXP coverage %.2f too good (paper 23.5%%)", ant.x)
	}
	if yarrp.x > 0.10 {
		t.Errorf("YARRP IXP coverage %.2f (paper 2.9%%)", yarrp.x)
	}
}

func TestNautilusShape(t *testing.T) {
	r := NautilusAmbiguity(testEnv(t))
	s := r.Summary
	if s.PathsWithSubmarine < 50 {
		t.Fatalf("only %d submarine paths", s.PathsWithSubmarine)
	}
	if s.MultiCable < 0.4 {
		t.Errorf("multi-cable share %.2f (paper >40%%)", s.MultiCable)
	}
	if s.MaxCandidates < 5 {
		t.Errorf("max candidates %d; ambiguity should be severe", s.MaxCandidates)
	}
	if s.ContainsTruthShare <= 0 {
		t.Error("zero recall means the method is broken, not imprecise")
	}
}

func TestSetCoverShape(t *testing.T) {
	r := SetCoverPlacement(testEnv(t))
	if r.Universe != 77 || r.Uncovered != 0 {
		t.Fatalf("cover incomplete: %+v", r)
	}
	if len(r.Chosen) < 15 || len(r.Chosen) > 50 {
		t.Errorf("cover size %d (paper 34)", len(r.Chosen))
	}
}

func TestKigaliPilotShape(t *testing.T) {
	r := KigaliPilot(testEnv(t))
	if r.Additional < 5 {
		t.Errorf("Kigali adds only %d fabrics (paper +14)", r.Additional)
	}
	// A single targeted probe must at least match the whole Atlas-like
	// deployment's fabric coverage.
	if r.ObservatoryIXPs < r.AtlasIXPs {
		t.Errorf("targeted probing (%d) fell below the Atlas mesh (%d)", r.ObservatoryIXPs, r.AtlasIXPs)
	}
}

func TestWhatIfShape(t *testing.T) {
	r := WhatIfCableCut(testEnv(t))
	var before, after float64
	for _, c := range r.Baseline.Countries {
		before += c.PageLoadBefore
		after += c.PageLoadAfter
	}
	if after >= before {
		t.Error("the March-2024 cut did not hurt")
	}
	// The full corridor cut is strictly worse than the historical one.
	var fullAfter float64
	for _, c := range r.FullCut.Countries {
		fullAfter += c.PageLoadAfter
	}
	if fullAfter >= after {
		t.Errorf("full corridor (%.1f) should be worse than March 2024 (%.1f)", fullAfter, after)
	}
	// Localizing the DNS chain protects in-country content (Section 5.2).
	_, safeLocal := localShares(r.FullCutSafe)
	_, cutLocal := localShares(r.FullCut)
	if safeLocal <= cutLocal {
		t.Errorf("local-DNS mandate should rescue local content: %.2f vs %.2f", safeLocal, cutLocal)
	}
}

func TestAblationPlacementShape(t *testing.T) {
	r := AblationPlacement(testEnv(t))
	for _, row := range r.Rows {
		if row.Targeted < row.Atlas {
			t.Errorf("at %d probes targeted (%d) lost to atlas (%d)", row.Probes, row.Targeted, row.Atlas)
		}
		if row.Targeted < row.Random {
			t.Errorf("at %d probes targeted (%d) lost to random (%d)", row.Probes, row.Targeted, row.Random)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Targeted != r.Universe {
		t.Errorf("full budget covers %d of %d", last.Targeted, r.Universe)
	}
}

func TestAblationBudgetShape(t *testing.T) {
	r := AblationBudget(testEnv(t))
	if r.BudgetAwareDone == 0 {
		t.Fatal("budget-aware did nothing")
	}
	awareEff := perSpend(r.BudgetAwareDone, r.BudgetAwareSpend)
	rrEff := perSpend(r.RoundRobinDone, r.RoundRobinSpend)
	if awareEff < rrEff {
		t.Errorf("budget-aware efficiency %.1f under round-robin %.1f", awareEff, rrEff)
	}
}

func TestAblationCorrelationShape(t *testing.T) {
	r := AblationCorrelatedCuts(testEnv(t))
	if r.CorrelatedMeanImpact <= r.IndependentMeanImpact {
		t.Errorf("correlated cuts (%.1f) should out-damage independent (%.1f)",
			r.CorrelatedMeanImpact, r.IndependentMeanImpact)
	}
}

func TestRenderersDoNotPanic(t *testing.T) {
	e := testEnv(t)
	var b strings.Builder
	Fig2aDetours(e).Render(&b)
	Fig2bContentLocality(e).Render(&b)
	Fig2cResolverUse(e).Render(&b)
	Fig3IXPPrevalence(e).Render(&b)
	Table1Scan(e).Render(&b)
	NautilusAmbiguity(e).Render(&b)
	SetCoverPlacement(e).Render(&b)
	KigaliPilot(e).Render(&b)
	AblationPlacement(e).Render(&b)
	AblationCorrelatedCuts(e).Render(&b)
	if b.Len() == 0 {
		t.Fatal("renderers produced nothing")
	}
}

func TestPlatformRunEndToEnd(t *testing.T) {
	r, err := PlatformRun(testEnv(t), 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Probes != 20 {
		t.Fatalf("probes = %d", r.Probes)
	}
	if r.TasksRun == 0 {
		t.Fatal("no tasks executed")
	}
	if r.DetourPct <= 0 {
		t.Fatal("platform saw no detours at all")
	}
	if r.IXPsSeen == 0 {
		t.Fatal("platform saw no fabrics")
	}
	if r.ResolverRemotePct <= 0 {
		t.Fatal("platform saw no remote resolvers")
	}
	if r.MedianRTTms <= 0 {
		t.Fatal("no RTTs collected")
	}
}

func TestAnycastCensusShape(t *testing.T) {
	r := AnycastCensus(testEnv(t))
	if !r.Service.Anycast {
		t.Fatal("three-instance service not classified anycast")
	}
	if r.Control.Anycast {
		t.Fatal("unicast control classified anycast")
	}
	if r.Service.Instances < 2 {
		t.Fatalf("instance lower bound %d", r.Service.Instances)
	}
}
