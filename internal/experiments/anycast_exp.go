package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/anycast"
	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// AnycastResult demonstrates the anycast census workload Section 7.2
// lists among the observatory's research uses: announce a three-instance
// service (US, Germany, South Africa), classify it from the probe fleet,
// and bound its instance count — then verify a unicast control stays
// unclassified.
type AnycastResult struct {
	Service   anycast.Verdict
	Control   anycast.Verdict
	TrueSites int
	// AfricanLocalShare is the share of African vantages served within
	// the local-latency threshold — the "is the anycast actually serving
	// Africa locally" question regulators would ask.
	AfricanLocalShare float64
}

// AnycastCensus runs the demonstration.
func AnycastCensus(env *Env) AnycastResult {
	// Service: CloudOne's home plus European and South African instances.
	origins := []topology.ASN{16509}
	for _, ctry := range []string{"DE", "ZA"} {
		for _, a := range env.Topo.ASesIn(ctry) {
			if env.Topo.ASes[a].Type == topology.ASTransit {
				origins = append(origins, a)
				break
			}
		}
	}
	svcPrefix := netx.MustParsePrefix("198.18.1.0/24")
	env.Net.AnnounceAnycast(svcPrefix, origins)
	target := svcPrefix.Nth(53)

	vantages := core.TargetedPlacement(env.Topo)
	if len(vantages) > 40 {
		vantages = vantages[:40]
	}
	// Non-African spread for the great-circle test.
	for _, ctry := range []string{"DE", "US", "BR", "JP", "AU"} {
		for _, a := range env.Topo.ASesIn(ctry) {
			as := env.Topo.ASes[a]
			if as.Type == topology.ASEducation || as.Type == topology.ASEnterprise {
				vantages = append(vantages, a)
				break
			}
		}
	}

	c := anycast.New(env.Net)
	res := AnycastResult{TrueSites: len(origins)}
	res.Service = c.Measure(vantages, target)

	// Control: a plain German router address.
	for _, a := range env.Topo.ASesIn("DE") {
		if env.Topo.ASes[a].Type == topology.ASTransit {
			res.Control = c.Measure(vantages, env.Net.RouterAddr(a, 0))
			break
		}
	}

	local, afr := 0, 0
	for _, p := range res.Service.Probes {
		if !env.Topo.RegionOf(p.Vantage).IsAfrica() {
			continue
		}
		afr++
		if p.RTTms <= 60 {
			local++
		}
	}
	if afr > 0 {
		res.AfricanLocalShare = float64(local) / float64(afr)
	}
	return res
}

// Render writes the census demonstration.
func (r AnycastResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §7.2 workload — MAnycast-style anycast census ==")
	fmt.Fprintf(w, "service (%d true instances): anycast=%v, violations=%d, instance lower bound=%d\n",
		r.TrueSites, r.Service.Anycast, r.Service.Violations, r.Service.Instances)
	fmt.Fprintf(w, "unicast control:             anycast=%v, violations=%d\n",
		r.Control.Anycast, r.Control.Violations)
	fmt.Fprintf(w, "African vantages served at local latency: %.0f%% (only the ZA instance is on the continent)\n",
		100*r.AfricanLocalShare)
}
