package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/topology"
	"github.com/afrinet/observatory/internal/websim"
)

// VerdictCounts is one bucket's verdict tally, one field per class so
// results compare with reflect.DeepEqual and render in a fixed order.
type VerdictCounts struct {
	OK, DNS, TCP, TLS, HTTP, Throttled int
}

func (v *VerdictCounts) add(verdict string) {
	switch verdict {
	case websim.VerdictDNSBlocked:
		v.DNS++
	case websim.VerdictTCPBlocked:
		v.TCP++
	case websim.VerdictTLSBlocked:
		v.TLS++
	case websim.VerdictHTTPBlocked:
		v.HTTP++
	case websim.VerdictThrottled:
		v.Throttled++
	default:
		v.OK++
	}
}

// Total is the bucket's measurement count.
func (v VerdictCounts) Total() int {
	return v.OK + v.DNS + v.TCP + v.TLS + v.HTTP + v.Throttled
}

// BlockedPct is the share of measurements with a non-ok verdict.
func (v VerdictCounts) BlockedPct() float64 {
	if t := v.Total(); t > 0 {
		return 100 * float64(t-v.OK) / float64(t)
	}
	return 0
}

// WebstepsCountryRow is one country's blocking profile.
type WebstepsCountryRow struct {
	Country    string
	Interferes bool // the generated policy has a rule for this country
	Counts     VerdictCounts
}

// WebstepsResolverRow is one resolver class's blocking profile — the
// cut that shows poisoning riding on-path resolvers while cloud
// resolvers escape it.
type WebstepsResolverRow struct {
	Class  string
	Counts VerdictCounts
}

// WebstepsResult is the websteps experiment family's report: blocking
// rates by probe country and by resolver class under the seeded
// interference policy.
type WebstepsResult struct {
	Countries []WebstepsCountryRow
	Resolvers []WebstepsResolverRow
	Policies  int // countries with an interference rule
}

// WebstepsCensorship sweeps every African country's top sites through
// the websteps engine under a seeded interference policy and aggregates
// the detector's verdicts. The measurement fan-out runs through
// internal/par; the fold is a serial pass over index-addressed results,
// so worker count never changes the report.
func WebstepsCensorship(env *Env) WebstepsResult {
	var countries []string
	for _, c := range geo.AfricanCountries() {
		countries = append(countries, c.ISO2)
	}
	pol := outage.GenerateInterference(env.Seed, countries)
	eng := websim.New(env.Net, env.DNS, env.Web, pol, env.Seed)

	ruled := map[string]bool{}
	for _, r := range pol.Rules() {
		ruled[r.Country] = true
	}

	type unit struct {
		ctry   string
		client topology.ASN
		site   content.Site
	}
	var units []unit
	for _, ctry := range countries {
		client := env.Web.ResidentialClient(ctry)
		if client == 0 {
			continue
		}
		for _, site := range env.Web.Catalog().SitesFor(ctry) {
			units = append(units, unit{ctry: ctry, client: client, site: site})
		}
	}

	type measured struct {
		verdict string
		class   string
	}
	out := par.Map(0, len(units), func(i int) measured {
		m := eng.Measure(units[i].client, units[i].site)
		return measured{verdict: websim.Classify(m), class: m.ResolverClass}
	})

	byCtry := map[string]*VerdictCounts{}
	byClass := map[string]*VerdictCounts{}
	for i, u := range units {
		c := byCtry[u.ctry]
		if c == nil {
			c = &VerdictCounts{}
			byCtry[u.ctry] = c
		}
		c.add(out[i].verdict)
		k := byClass[out[i].class]
		if k == nil {
			k = &VerdictCounts{}
			byClass[out[i].class] = k
		}
		k.add(out[i].verdict)
	}

	var res WebstepsResult
	for _, ctry := range countries {
		if c := byCtry[ctry]; c != nil {
			res.Countries = append(res.Countries, WebstepsCountryRow{
				Country: ctry, Interferes: ruled[ctry], Counts: *c,
			})
		}
		if ruled[ctry] {
			res.Policies++
		}
	}
	var classes []string
	for k := range byClass {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		res.Resolvers = append(res.Resolvers, WebstepsResolverRow{Class: k, Counts: *byClass[k]})
	}
	return res
}

// Render writes the websteps censorship report.
func (r WebstepsResult) Render(w io.Writer) {
	tb := report.NewTable("WEBSTEPS — blocking verdicts by probe country",
		"country", "policy", "sites", "ok", "dns", "tcp", "tls", "http", "throttled", "blocked %")
	for _, row := range r.Countries {
		policy := "-"
		if row.Interferes {
			policy = "yes"
		}
		c := row.Counts
		tb.AddRow(row.Country, policy, c.Total(), c.OK, c.DNS, c.TCP, c.TLS, c.HTTP, c.Throttled, c.BlockedPct())
	}
	tb.Render(w)

	rb := report.NewTable("WEBSTEPS — blocking verdicts by resolver class",
		"resolver class", "sites", "ok", "dns", "tcp", "tls", "http", "throttled", "blocked %")
	for _, row := range r.Resolvers {
		c := row.Counts
		rb.AddRow(row.Class, c.Total(), c.OK, c.DNS, c.TCP, c.TLS, c.HTTP, c.Throttled, c.BlockedPct())
	}
	rb.Render(w)
	fmt.Fprintf(w, "(%d of %d measured countries carry an interference policy; DNS poisoning rides on-path resolvers, cloud resolvers escape it)\n",
		r.Policies, len(r.Countries))
}
