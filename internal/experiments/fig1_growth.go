package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/report"
	"github.com/afrinet/observatory/internal/topology"
)

// GrowthPoint is one (region, year) infrastructure count.
type GrowthPoint struct {
	Year   int
	IXPs   int
	Cables int
	ASes   int
}

// GrowthResult reproduces Figure 1: infrastructure growth per region
// over the last decade, plus the headline Africa growth percentages
// (cables +45%, IXPs +600%).
type GrowthResult struct {
	// Continental series; Africa's five subregions are merged to one
	// "Africa" line, as the figure compares continents.
	Series map[string][]GrowthPoint
	Years  []int

	AfricaCableGrowthPct float64
	AfricaIXPGrowthPct   float64
}

// continentOf maps regions to the figure's line labels.
func continentOf(r geo.Region) string {
	if r.IsAfrica() {
		return "Africa"
	}
	return r.String()
}

// Fig1Growth sweeps the topology timeline and counts infrastructure.
func Fig1Growth(seed int64) GrowthResult {
	res := GrowthResult{Series: make(map[string][]GrowthPoint)}
	for year := 2015; year <= 2025; year++ {
		res.Years = append(res.Years, year)
		t := topology.Generate(topology.Params{Seed: seed, Year: year})

		ixps := map[string]int{}
		for _, id := range t.IXPIDs() {
			ixps[continentOf(geo.MustLookup(t.IXPs[id].Country).Region)]++
		}
		cables := map[string]int{}
		for _, id := range t.CableIDs() {
			seen := map[string]bool{}
			for _, l := range t.Cables[id].Landings {
				cont := continentOf(geo.MustLookup(l.Country).Region)
				if !seen[cont] {
					seen[cont] = true
					cables[cont]++
				}
			}
		}
		ases := map[string]int{}
		for _, a := range t.ASNs() {
			as := t.ASes[a]
			if as.Type == topology.ASIXPRouteServer {
				continue
			}
			ases[continentOf(as.Region)]++
		}

		for _, cont := range []string{"Africa", geo.Europe.String(), geo.NorthAmerica.String(), geo.SouthAmerica.String(), geo.AsiaPacific.String()} {
			res.Series[cont] = append(res.Series[cont], GrowthPoint{
				Year: year, IXPs: ixps[cont], Cables: cables[cont], ASes: ases[cont],
			})
		}
	}

	af := res.Series["Africa"]
	first, last := af[0], af[len(af)-1]
	if first.Cables > 0 {
		res.AfricaCableGrowthPct = 100 * float64(last.Cables-first.Cables) / float64(first.Cables)
	}
	if first.IXPs > 0 {
		res.AfricaIXPGrowthPct = 100 * float64(last.IXPs-first.IXPs) / float64(first.IXPs)
	}
	return res
}

// Render writes the figure as tables.
func (r GrowthResult) Render(w io.Writer) {
	for _, metric := range []string{"IXPs", "Cables", "ASes"} {
		tb := report.NewTable(fmt.Sprintf("Fig 1 — %s by region over time", metric),
			append([]string{"region"}, yearHeaders(r.Years)...)...)
		for _, cont := range []string{"Africa", "Europe", "N. America", "S. America", "Asia-Pacific"} {
			cells := []interface{}{cont}
			for _, p := range r.Series[cont] {
				switch metric {
				case "IXPs":
					cells = append(cells, p.IXPs)
				case "Cables":
					cells = append(cells, p.Cables)
				default:
					cells = append(cells, p.ASes)
				}
			}
			tb.AddRow(cells...)
		}
		tb.Render(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Africa 2015->2025: cables %+.0f%% (paper: ~+45%%), IXPs %+.0f%% (paper: ~+600%%)\n",
		r.AfricaCableGrowthPct, r.AfricaIXPGrowthPct)
}

func yearHeaders(years []int) []string {
	out := make([]string, len(years))
	for i, y := range years {
		out[i] = fmt.Sprintf("%d", y)
	}
	return out
}
