package experiments

import (
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/dnsload"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/report"
)

// DNSLocalizationRow is one country's ECS-vs-non-ECS comparison. The
// raw counts are kept (not just ratios) so rows merge exactly and
// compare with reflect.DeepEqual.
type DNSLocalizationRow struct {
	Country string
	Clients int // client networks sampled
	Queries int // logical queries per variant
	// CloudAuth*/Localized* count successful answers served by
	// cloud-hosted authorities and, of those, ones steered to the
	// client's best replica — per variant.
	CloudAuthNoECS int
	LocalizedNoECS int
	CloudAuthECS   int
	LocalizedECS   int
	// MeanMsNoECS is the mean resolution latency without ECS.
	MeanMsNoECS float64
}

// AccNoECS is the row's localization accuracy without client-subnet.
func (r DNSLocalizationRow) AccNoECS() float64 {
	if r.CloudAuthNoECS == 0 {
		return 0
	}
	return float64(r.LocalizedNoECS) / float64(r.CloudAuthNoECS)
}

// AccECS is the row's localization accuracy with client-subnet.
func (r DNSLocalizationRow) AccECS() float64 {
	if r.CloudAuthECS == 0 {
		return 0
	}
	return float64(r.LocalizedECS) / float64(r.CloudAuthECS)
}

// DeltaPts is the accuracy gain from ECS in percentage points.
func (r DNSLocalizationRow) DeltaPts() float64 { return 100 * (r.AccECS() - r.AccNoECS()) }

// DNSLocalizationResult is the §5.2-at-scale resolver study: per-country
// localization accuracy with and without EDNS Client Subnet, produced by
// rate-controlled dnsload runs over every country's client networks.
type DNSLocalizationResult struct {
	Rows []DNSLocalizationRow
	// Queries is the total logical query volume (both variants).
	Queries int
}

// Overall returns the population-weighted accuracies (no-ECS, ECS).
func (r DNSLocalizationResult) Overall() (noECS, ecs float64) {
	var cn, ln, ce, le int
	for _, row := range r.Rows {
		cn += row.CloudAuthNoECS
		ln += row.LocalizedNoECS
		ce += row.CloudAuthECS
		le += row.LocalizedECS
	}
	if cn > 0 {
		noECS = float64(ln) / float64(cn)
	}
	if ce > 0 {
		ecs = float64(le) / float64(ce)
	}
	return noECS, ecs
}

// dnsLocalizationQueriesPerCountry is the per-variant load each country
// receives. Small enough for the test suite, large enough that every
// client network and target domain is sampled many times.
const dnsLocalizationQueriesPerCountry = 3000

// DNSLocalization runs the ECS localization study: for each African
// country, drive a paced query load from its client networks at
// in-country domains twice — with and without ECS — and compare where
// cloud-hosted authorities steer the answers. Countries fan out through
// internal/par; each country's two runs are serial inside the worker, so
// the report is worker-count independent.
func DNSLocalization(env *Env) DNSLocalizationResult {
	var countries []string
	for _, c := range geo.AfricanCountries() {
		countries = append(countries, c.ISO2)
	}

	type ctryOut struct {
		row dnsLocalizationRaw
		ok  bool
	}
	out := par.Map(0, len(countries), func(i int) ctryOut {
		cc := countries[i]
		clients := env.DNS.ClientNetworks(cc)
		if len(clients) == 0 {
			return ctryOut{}
		}
		var targets []dnsload.Target
		for j := 0; j < 6; j++ {
			targets = append(targets, dnsload.Target{
				Domain:        fmt.Sprintf("site%d.%s", j, cc),
				OriginCountry: cc,
			})
		}
		cfg := dnsload.Config{
			Seed:    uint64(env.Seed) ^ uint64(i)<<32,
			Queries: dnsLocalizationQueriesPerCountry,
			QPS:     5000,
			Workers: 1, // country runs are the parallel unit
			Clients: clients,
			Targets: targets,
		}
		noECS := dnsload.Run(env.DNS, cfg)
		cfg.ECS = true
		withECS := dnsload.Run(env.DNS, cfg)
		return ctryOut{ok: true, row: dnsLocalizationRaw{
			country: cc, clients: len(clients), noECS: noECS, ecs: withECS,
		}}
	})

	var res DNSLocalizationResult
	for i := range countries {
		o := out[i]
		if !o.ok {
			continue
		}
		res.Rows = append(res.Rows, DNSLocalizationRow{
			Country:        o.row.country,
			Clients:        o.row.clients,
			Queries:        dnsLocalizationQueriesPerCountry,
			CloudAuthNoECS: o.row.noECS.CloudAuth,
			LocalizedNoECS: o.row.noECS.Localized,
			CloudAuthECS:   o.row.ecs.CloudAuth,
			LocalizedECS:   o.row.ecs.Localized,
			MeanMsNoECS:    o.row.noECS.MeanMs,
		})
		res.Queries += 2 * dnsLocalizationQueriesPerCountry
	}
	return res
}

type dnsLocalizationRaw struct {
	country string
	clients int
	noECS   dnsload.Report
	ecs     dnsload.Report
}

// Render writes the ECS localization report.
func (r DNSLocalizationResult) Render(w io.Writer) {
	tb := report.NewTable("DNS LOAD — ECS vs non-ECS localization accuracy by country",
		"country", "clients", "queries/variant", "cloud-auth", "acc no-ecs", "acc ecs", "delta pts", "mean ms")
	for _, row := range r.Rows {
		tb.AddRow(row.Country, row.Clients, row.Queries, row.CloudAuthNoECS,
			row.AccNoECS(), row.AccECS(), row.DeltaPts(), row.MeanMsNoECS)
	}
	tb.Render(w)
	no, ecs := r.Overall()
	fmt.Fprintf(w, "(%d logical queries; overall localization %.1f%% without ECS vs %.1f%% with ECS — client-subnet closes the remote-resolver steering gap)\n",
		r.Queries, 100*no, 100*ecs)
}
