package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// SetCoverResult reproduces footnote 1: the minimal ASN set covering all
// African exchanges.
type SetCoverResult struct {
	Universe  int
	Chosen    []topology.ASN
	Uncovered int
}

// SetCoverPlacement runs the greedy cover on the exchange directory.
func SetCoverPlacement(env *Env) SetCoverResult {
	res := ixp.GreedySetCover(registry.AfricanIXPs(env.Topo))
	return SetCoverResult{Universe: res.Universe, Chosen: res.Chosen, Uncovered: len(res.Uncovered)}
}

// Render writes the footnote result.
func (r SetCoverResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== Footnote 1 — Greedy set cover of African IXPs ==")
	fmt.Fprintf(w, "exchanges (universe): %d (paper: 77)\n", r.Universe)
	fmt.Fprintf(w, "vantage ASNs chosen:  %d (paper: 34)\n", len(r.Chosen))
	fmt.Fprintf(w, "uncoverable:          %d\n", r.Uncovered)
}

// PilotResult reproduces Section 7.3: the Kigali vantage point detects
// exchanges the Atlas-like deployment misses.
type PilotResult struct {
	ObservatoryIXPs int
	AtlasIXPs       int
	Additional      int // exchanges seen from Kigali but not by Atlas
	KigaliASN       topology.ASN
}

// KigaliPilot compares targeted probing from the observatory's Kigali
// probe (AS36924, tracerouting toward per-exchange targets) against the
// Atlas-like deployment running its standard mesh.
func KigaliPilot(env *Env) PilotResult {
	const kigali = topology.ASN(36924)
	origin := func(a netx.Addr) (topology.ASN, bool) { return env.Table.Origin(a) }

	// Observatory: purpose-driven targeting — for every African
	// exchange, traceroute toward several of its directory-listed
	// members, so any fabric the probe's upstreams peer at shows its
	// LAN on some path (Section 6.1's implication put into practice).
	obsSeen := map[topology.IXPID]bool{}
	for _, rec := range env.Dir {
		if !rec.Region.IsAfrica() {
			continue
		}
		// Probe the exchange's peering LAN directly: unrouted globally,
		// it answers only when the probe's upstream peers at the fabric
		// — a positive, targeted membership test no hitlist can run.
		lanProbe := env.Net.Traceroute(kigali, rec.LAN.Nth(2))
		for _, cr := range env.Detector.Detect(lanProbe, origin) {
			if cr.Strong && isAfricanIXP(env, cr.IXP) {
				obsSeen[cr.IXP] = true
			}
		}
		targeted := 0
		for _, m := range rec.Members {
			as := env.Topo.ASes[m]
			if as == nil || as.Type == topology.ASIXPRouteServer {
				continue
			}
			tr := env.Net.Traceroute(kigali, env.Net.RouterAddr(m, 0))
			for _, cr := range env.Detector.Detect(tr, origin) {
				if cr.Strong && isAfricanIXP(env, cr.IXP) {
					obsSeen[cr.IXP] = true
				}
			}
			targeted++
			if targeted >= 20 {
				break
			}
		}
	}

	// Atlas-like: the platform's built-in measurements run from every
	// probe toward a small set of anchors — not toward arbitrary
	// exchange members, which is exactly the coverage gap Section 7.3
	// demonstrates.
	atlas := core.AtlasPlacement(env.Topo, 48)
	anchors := atlas
	if len(anchors) > 6 {
		anchors = anchors[:6]
	}
	atlasSeen := map[topology.IXPID]bool{}
	for _, src := range atlas {
		for _, dst := range anchors {
			if src == dst {
				continue
			}
			tr := env.Net.Traceroute(src, env.Net.RouterAddr(dst, 0))
			for _, cr := range env.Detector.Detect(tr, origin) {
				if cr.Strong && isAfricanIXP(env, cr.IXP) {
					atlasSeen[cr.IXP] = true
				}
			}
		}
	}

	add := 0
	for id := range obsSeen {
		if !atlasSeen[id] {
			add++
		}
	}
	return PilotResult{
		ObservatoryIXPs: len(obsSeen),
		AtlasIXPs:       len(atlasSeen),
		Additional:      add,
		KigaliASN:       kigali,
	}
}

func sortedTargets(m map[topology.IXPID]netx.Addr) []netx.Addr {
	var ids []int
	for id := range m {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]netx.Addr, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[topology.IXPID(id)])
	}
	return out
}

func isAfricanIXP(env *Env, id topology.IXPID) bool {
	x := env.Topo.IXPs[id]
	if x == nil {
		return false
	}
	return env.Topo.RegionOf(registry.RouteServerASN(id)).IsAfrica()
}

// Render writes the pilot comparison.
func (r PilotResult) Render(w io.Writer) {
	fmt.Fprintln(w, "== §7.3 — Kigali pilot: targeted probing vs Atlas-like deployment ==")
	fmt.Fprintf(w, "vantage: AS%d (Kigali)\n", r.KigaliASN)
	fmt.Fprintf(w, "African IXPs detected by observatory probe: %d\n", r.ObservatoryIXPs)
	fmt.Fprintf(w, "African IXPs detected by Atlas-like mesh:   %d\n", r.AtlasIXPs)
	fmt.Fprintf(w, "additional IXPs from the Kigali vantage:    %d (paper: 14)\n", r.Additional)
	fmt.Fprintln(w, "(one targeted probe matches a 48-probe mesh and still adds unseen fabrics)")
}
