package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachEachIndexOnce(t *testing.T) {
	counts := make([]atomic.Int64, 500)
	ForEach(8, len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n<=0")
	}
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 8} {
		err := ForEachErr(workers, 50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errors.New("high")
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
	if err := ForEachErr(8, 20, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: no panic propagated", workers)
				}
				if s, ok := v.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: panic value %v", workers, v)
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestPanicAbortsUnclaimedWork(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		ForEach(2, 10_000, func(i int) {
			ran.Add(1)
			panic(fmt.Sprintf("first panic at %d", i))
		})
	}()
	// Both workers can each be mid-claim when the abort lands, but the
	// vast majority of the range must be skipped.
	if n := ran.Load(); n > 100 {
		t.Fatalf("panic did not abort work: %d of 10000 indices ran", n)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(1)
	defer SetDefaultWorkers(prev)
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0)=%d after SetDefaultWorkers(1)", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5)=%d, explicit request must win", w)
	}
	SetDefaultWorkers(0)
	if w := Workers(0); w < 1 {
		t.Fatalf("Workers(0)=%d with GOMAXPROCS default", w)
	}
}
