// Package par is the repo's tiny deterministic worker pool: bounded
// fan-out over an index range with index-addressed results, so a
// parallel run is byte-identical to the serial one.
//
// Determinism contract: callers pass a function of the *index* only.
// Each index is processed exactly once, by exactly one worker, and any
// output must be written to a slot addressed by that index (Map does
// this for you) or merged with an order-independent operation. Under
// that contract the result is a pure function of the inputs — worker
// count and scheduling never change it, only how fast it arrives.
//
// Errors and panics: ForEachErr collects every error and returns the one
// from the lowest index (deterministic regardless of which worker hit it
// first). A panic in any worker aborts the remaining unclaimed work and
// is re-raised on the calling goroutine with the original value.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the fan-out width for calls that pass
// workers <= 0. Zero means "use GOMAXPROCS". Tests use SetDefaultWorkers
// to force serial (1) and wide runs over the same code path.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the pool width used when a call passes
// workers <= 0, returning the previous value. n <= 0 restores the
// GOMAXPROCS default.
func SetDefaultWorkers(n int) int {
	return int(defaultWorkers.Swap(int64(n)))
}

// Workers resolves a requested width: itself if positive, else the
// process-wide default from SetDefaultWorkers, else GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if d := int(defaultWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// capturedPanic wraps a worker panic so the caller can tell a re-raised
// panic apart from a worker returning a panic-typed value.
type capturedPanic struct{ val any }

// run claims indices [0, n) with an atomic counter across w goroutines.
// The first panic aborts unclaimed work and is returned for re-raising.
func run(w, n int, fn func(int)) *capturedPanic {
	if n <= 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		// Serial path: no goroutines, panics propagate natively.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return nil
	}

	var (
		next     atomic.Int64
		panicked atomic.Pointer[capturedPanic]
		wg       sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							panicked.CompareAndSwap(nil, &capturedPanic{val: v})
							next.Store(int64(n)) // abort unclaimed work
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	return panicked.Load()
}

// ForEach calls fn(i) for every i in [0, n) using at most
// Workers(workers) goroutines. Each index runs exactly once; a panic in
// fn aborts unclaimed indices and re-panics on the caller.
func ForEach(workers, n int, fn func(int)) {
	if p := run(Workers(workers), n, fn); p != nil {
		panic(p.val)
	}
}

// ForEachErr is ForEach for fallible work. Every index still runs (an
// error does not cancel siblings, matching a serial loop that collects
// errors); the returned error is the one from the lowest index, so the
// result is independent of worker scheduling.
func ForEachErr(workers, n int, fn func(int) error) error {
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every index in [0, n) and returns the results in
// index order — the parallel equivalent of append-in-a-loop.
func Map[T any](workers, n int, fn func(int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
