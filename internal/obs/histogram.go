package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram: log2-scaled
// bounds from 1µs doubling up to ~33.5s, plus a final overflow bucket.
const NumBuckets = 27

// bucketBound returns the inclusive upper bound of bucket i in
// nanoseconds; the last bucket is unbounded (+Inf).
func bucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 1µs<<i, clamped to the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	q := (uint64(d) + 999) / 1000 // ceil µs
	if q <= 1 {
		return 0
	}
	i := bits.Len64(q - 1)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Histogram is a lock-free latency histogram: observations are three
// atomic adds and one CAS loop, so it is safe on hot paths. The bucket
// layout is fixed (log2 from 1µs); snapshots reconstruct percentiles
// from the bucket counts.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

// BucketCount is one (upper bound, cumulative count) exposition pair.
type BucketCount struct {
	// Bound is the bucket's inclusive upper bound; the last bucket's
	// bound is reported as 0 and means +Inf.
	Bound time.Duration
	// Count is cumulative: observations with d <= Bound.
	Count uint64
}

// HistSnapshot is a point-in-time view of a histogram. Fields are read
// with independent atomic loads, so a snapshot taken concurrently with
// observations may be off by the in-flight ones — fine for telemetry.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Mean    time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Max     time.Duration
	Buckets []BucketCount
}

// Snapshot derives the summary view. Percentiles are upper bounds of
// the bucket containing the rank (the true value is within 2x).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	var cum uint64
	s.Buckets = make([]BucketCount, NumBuckets)
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		b := BucketCount{Bound: bucketBound(i), Count: cum}
		if i == NumBuckets-1 {
			b.Bound = 0 // +Inf
		}
		s.Buckets[i] = b
	}
	total := cum
	s.P50 = h.quantile(s, total, 50)
	s.P90 = h.quantile(s, total, 90)
	s.P99 = h.quantile(s, total, 99)
	return s
}

// quantile returns the upper bound of the bucket holding the p-th
// percentile rank; the overflow bucket reports the observed max.
func (h *Histogram) quantile(s HistSnapshot, total uint64, p int) time.Duration {
	if total == 0 {
		return 0
	}
	rank := (total*uint64(p) + 99) / 100 // ceil(total*p/100)
	if rank == 0 {
		rank = 1
	}
	for i, b := range s.Buckets {
		if b.Count >= rank {
			if i == NumBuckets-1 {
				return s.Max
			}
			return b.Bound
		}
	}
	return s.Max
}
