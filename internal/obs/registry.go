package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry collects named histogram series and counter sources for
// exposition. Series are created once (get-or-create under a mutex) and
// observed lock-free afterwards; callers cache the *Histogram pointer
// on hot paths.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*histSeries
	counters []counterSource
}

// histSeries is one histogram plus its exposition identity: a metric
// family name and rendered label pairs.
type histSeries struct {
	family string
	labels string // rendered `k="v",...`, "" when unlabeled
	h      *Histogram
}

// counterSource is a named group of monotonic counters pulled at
// exposition time (the control plane's existing CounterSets plug in
// here without copying).
type counterSource struct {
	family string
	fn     func() map[string]int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*histSeries)}
}

// Hist returns the histogram for the given metric family and label
// pairs ("k1", "v1", "k2", "v2", ...), creating it on first use. The
// same (family, labels) always yields the same *Histogram.
func (r *Registry) Hist(family string, labelPairs ...string) *Histogram {
	labels := renderLabels(labelPairs)
	key := family + "\x00" + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.hists[key]; ok {
		return s.h
	}
	s := &histSeries{family: family, labels: labels, h: &Histogram{}}
	r.hists[key] = s
	return s.h
}

// AddCounters registers a counter source exposed under the given
// metric family with a `name` label per counter.
func (r *Registry) AddCounters(family string, fn func() map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, counterSource{family: family, fn: fn})
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	return b.String()
}

// series renders a metric line name: family{labels} or family{extra}
// merged with the series labels.
func seriesName(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	default:
		return family + "{" + labels + "," + extra + "}"
	}
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// Snapshots returns every histogram series' snapshot keyed by its
// rendered name (family{labels}), for logging and tests.
func (r *Registry) Snapshots() map[string]HistSnapshot {
	r.mu.Lock()
	series := make([]*histSeries, 0, len(r.hists))
	for _, s := range r.hists {
		series = append(series, s)
	}
	r.mu.Unlock()
	out := make(map[string]HistSnapshot, len(series))
	for _, s := range series {
		out[seriesName(s.family, s.labels, "")] = s.h.Snapshot()
	}
	return out
}

// WritePrometheus renders every registered histogram and counter in
// Prometheus text format. Output ordering is deterministic: families
// sorted by name, series sorted by label string, counters sorted by
// counter name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	series := make([]*histSeries, 0, len(r.hists))
	for _, s := range r.hists {
		series = append(series, s)
	}
	counters := append([]counterSource(nil), r.counters...)
	r.mu.Unlock()

	sort.Slice(series, func(i, j int) bool {
		if series[i].family != series[j].family {
			return series[i].family < series[j].family
		}
		return series[i].labels < series[j].labels
	})
	lastFamily := ""
	for _, s := range series {
		if s.family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", s.family); err != nil {
				return err
			}
			lastFamily = s.family
		}
		snap := s.h.Snapshot()
		for _, b := range snap.Buckets {
			le := "+Inf"
			if b.Bound != 0 {
				le = formatSeconds(b.Bound)
			}
			name := seriesName(s.family+"_bucket", s.labels, `le="`+le+`"`)
			if _, err := fmt.Fprintf(w, "%s %d\n", name, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(s.family+"_sum", s.labels, ""), formatSeconds(snap.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(s.family+"_count", s.labels, ""), snap.Count); err != nil {
			return err
		}
	}

	sort.Slice(counters, func(i, j int) bool { return counters[i].family < counters[j].family })
	for _, c := range counters {
		vals := c.fn()
		names := make([]string, 0, len(vals))
		for k := range vals {
			names = append(names, k)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.family); err != nil {
			return err
		}
		for _, k := range names {
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(c.family, `name=`+strconv.Quote(k), ""), vals[k]); err != nil {
				return err
			}
		}
	}
	return nil
}
