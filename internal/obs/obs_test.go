package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
		// Every duration must respect its bucket's upper bound.
		if i := bucketIndex(c.d); i < NumBuckets-1 && c.d > bucketBound(i) {
			t.Errorf("bucketIndex(%v) = %d but bound %v < d", c.d, i, bucketBound(i))
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(10 * time.Second)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 10*time.Second {
		t.Fatalf("max = %v", s.Max)
	}
	// p50/p90 land in the 1ms bucket; p99 is within 2x below its bound.
	if s.P50 > 2*time.Millisecond || s.P90 > 2*time.Millisecond {
		t.Fatalf("p50=%v p90=%v, want <= 1ms bucket bound", s.P50, s.P90)
	}
	if s.P99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want in the 1ms bucket (99th of 100)", s.P99)
	}
	if s.Mean < 90*time.Millisecond || s.Mean > 110*time.Millisecond {
		t.Fatalf("mean = %v, want ~100ms", s.Mean)
	}
	// A nil histogram is a safe no-op everywhere.
	var nilH *Histogram
	nilH.Observe(time.Second)
	if snap := nilH.Snapshot(); snap.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Max != workers*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
}

func TestRegistryPrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Hist("obs_b_seconds", "op", "z").Observe(time.Millisecond)
	reg.Hist("obs_b_seconds", "op", "a").Observe(time.Millisecond)
	reg.Hist("obs_a_seconds").Observe(time.Second)
	reg.AddCounters("obs_events_total", func() map[string]int64 {
		return map[string]int64{"zz": 2, "aa": 1}
	})

	var first, second strings.Builder
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("exposition not deterministic across renders")
	}
	out := first.String()
	// Families in sorted order, labels sorted within a family.
	aIdx := strings.Index(out, "# TYPE obs_a_seconds histogram")
	bIdx := strings.Index(out, "# TYPE obs_b_seconds histogram")
	if aIdx < 0 || bIdx < 0 || aIdx > bIdx {
		t.Fatalf("family ordering wrong:\n%s", out)
	}
	if za, zz := strings.Index(out, `op="a"`), strings.Index(out, `op="z"`); za < 0 || zz < 0 || za > zz {
		t.Fatalf("label ordering wrong:\n%s", out)
	}
	if ca, cz := strings.Index(out, `obs_events_total{name="aa"} 1`), strings.Index(out, `obs_events_total{name="zz"} 2`); ca < 0 || cz < 0 || ca > cz {
		t.Fatalf("counter rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	// Same (family, labels) returns the same histogram.
	if reg.Hist("obs_b_seconds", "op", "a") != reg.Hist("obs_b_seconds", "op", "a") {
		t.Fatal("Hist not idempotent")
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req-1", "probe_results", "POST")
	sp := tr.Root().Child("mutator:results_accept")
	fsync := sp.Child("journal.fsync")
	fsync.End()
	sp.End()
	v, dur := tr.Finish(200)
	if dur <= 0 {
		t.Fatal("non-positive trace duration")
	}
	if v.RequestID != "req-1" || v.Route != "probe_results" || v.Status != 200 {
		t.Fatalf("trace view = %+v", v)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "handler" {
		t.Fatalf("root span = %+v", v.Spans)
	}
	root := v.Spans[0]
	if len(root.Children) != 1 || root.Children[0].Name != "mutator:results_accept" {
		t.Fatalf("mutator span = %+v", root.Children)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Name != "journal.fsync" {
		t.Fatalf("fsync span = %+v", root.Children[0].Children)
	}

	// Nil spans (no trace in context) no-op safely.
	none := SpanFrom(context.Background())
	child := none.Child("x")
	child.End()
	none.End()
	if got := SpanFrom(WithSpan(context.Background(), tr.Root())); got != tr.Root() {
		t.Fatal("context round trip lost the span")
	}
}

// TestTraceRingBound hammers the ring from many goroutines and asserts
// it never exceeds its capacity (run under -race in tier-1).
func TestTraceRingBound(t *testing.T) {
	ring := NewTraceRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace("req", "route", "GET")
				v, _ := tr.Finish(200)
				v.DurationMS = float64(w*1000 + i)
				ring.Add(v)
				ring.Slowest(5)
			}
		}(w)
	}
	wg.Wait()
	if ring.Len() != 32 || ring.Cap() != 32 {
		t.Fatalf("ring len=%d cap=%d, want 32/32", ring.Len(), ring.Cap())
	}
	slow := ring.Slowest(5)
	if len(slow) != 5 {
		t.Fatalf("slowest(5) returned %d", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].DurationMS > slow[i-1].DurationMS {
			t.Fatal("slowest not sorted descending")
		}
	}
	if got := ring.Slowest(0); len(got) != 32 {
		t.Fatalf("slowest(0) = %d, want all 32", len(got))
	}
}
