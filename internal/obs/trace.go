package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of a request. A span tree is built and
// finished by a single goroutine (the request handler and the code it
// calls synchronously); the immutable TraceView published at the end is
// what crosses goroutines. All methods are nil-receiver safe so
// un-traced code paths cost a pointer check.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	children []*Span
}

// Child starts a sub-span. End it before ending the parent.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End records the span's duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// Trace is one request's span tree under construction.
type Trace struct {
	requestID string
	route     string
	method    string
	root      *Span
}

// NewTrace starts a trace whose root span covers the whole request.
func NewTrace(requestID, route, method string) *Trace {
	return &Trace{
		requestID: requestID,
		route:     route,
		method:    method,
		root:      &Span{name: "handler", start: time.Now()},
	}
}

// Root returns the root (handler) span for context propagation.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span and returns the immutable view plus the
// total duration.
func (t *Trace) Finish(status int) (TraceView, time.Duration) {
	t.root.End()
	v := TraceView{
		RequestID:  t.requestID,
		Route:      t.route,
		Method:     t.method,
		Status:     status,
		DurationMS: durMS(t.root.dur),
		Spans:      []SpanView{t.root.view(t.root.start)},
	}
	return v, t.root.dur
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s *Span) view(origin time.Time) SpanView {
	v := SpanView{
		Name:       s.name,
		OffsetMS:   durMS(s.start.Sub(origin)),
		DurationMS: durMS(s.dur),
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.view(origin))
	}
	return v
}

// SpanView is one finished span in a TraceView. Offsets are relative to
// the request start.
type SpanView struct {
	Name       string     `json:"name"`
	OffsetMS   float64    `json:"offset_ms"`
	DurationMS float64    `json:"duration_ms"`
	Children   []SpanView `json:"children,omitempty"`
}

// TraceView is one finished request trace as served by
// GET /api/v1/debug/traces.
type TraceView struct {
	RequestID  string     `json:"request_id"`
	Route      string     `json:"route"`
	Method     string     `json:"method"`
	Status     int        `json:"status"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []SpanView `json:"spans"`
}

// TraceRing is a bounded ring of finished traces: the newest N requests
// are queryable, older ones are overwritten. Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceView
	next int
	full bool
}

// NewTraceRing creates a ring holding up to capacity traces
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceView, capacity)}
}

// Add publishes a finished trace, evicting the oldest when full.
func (r *TraceRing) Add(v TraceView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *TraceRing) lenLocked() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap reports the ring's capacity.
func (r *TraceRing) Cap() int { return len(r.buf) }

// Slowest returns up to n held traces sorted by duration descending
// (ties broken by request id for determinism).
func (r *TraceRing) Slowest(n int) []TraceView {
	r.mu.Lock()
	held := r.lenLocked()
	out := make([]TraceView, held)
	copy(out, r.buf[:held])
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurationMS != out[j].DurationMS {
			return out[i].DurationMS > out[j].DurationMS
		}
		return out[i].RequestID < out[j].RequestID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// spanKey is the context key for the active span.
type spanKey struct{}

// WithSpan returns a context carrying the span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
