// Package obs is the observatory's stdlib-only observability layer:
// lock-free log-scaled latency histograms, per-request span traces held
// in a bounded ring, and Prometheus text exposition with deterministic
// ordering.
//
// The package exists so the rest of the system can stay
// replay-deterministic: internal/core, internal/journal, and
// internal/store are forbidden from reading the wall clock (see
// scripts/check.sh), so every time.Now lives here. Instrumented code
// starts a Timer (or a Span) and hands the elapsed duration to a
// Histogram; none of the instrumentation feeds back into control-plane
// decisions.
//
// # Histograms
//
// Histogram is a fixed-shape log2-bucketed latency histogram recorded
// with atomic adds only — no locks on the observe path — so it is safe
// (and cheap) on hot paths like store ingest. Snapshots derive
// mean/p50/p90/p99/max from the bucket counts.
//
// # Traces
//
// A Trace is one request's span tree (handler → mutator → journal
// fsync / store append). Spans are built by a single goroutine; the
// finished, immutable TraceView is published to a TraceRing, a bounded
// ring buffer queryable for the N slowest requests
// (GET /api/v1/debug/traces?slowest=N in the control plane).
//
// # Exposition
//
// Registry collects named histogram series (with optional label pairs)
// and counter sources, and renders them in Prometheus text format with
// stable ordering, served at GET /metrics.
package obs

import "time"

// Timer marks a start instant. It exists so packages banned from
// calling time.Now directly (core, journal, store) can still measure
// durations: the wall-clock reads happen here.
type Timer struct {
	start time.Time
}

// StartTimer captures the current instant.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
