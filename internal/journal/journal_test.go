package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, n int, offset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := l.Append("op", map[string]int{"i": offset + i})
		if err != nil {
			t.Fatal(err)
		}
		if seq == 0 {
			t.Fatal("Append returned seq 0")
		}
	}
}

func TestAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Snap != nil || len(l.Records) != 0 || l.TornTail {
		t.Fatalf("fresh dir not empty: %+v", l)
	}
	appendN(t, l, 5, 0)
	if l.Seq() != 5 {
		t.Fatalf("seq = %d", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(l2.Records) != 5 || l2.TornTail {
		t.Fatalf("reopen: %d records, torn=%v", len(l2.Records), l2.TornTail)
	}
	for i, rec := range l2.Records {
		if rec.Seq != uint64(i+1) || rec.Kind != "op" {
			t.Fatalf("record %d = %+v", i, rec)
		}
		var m map[string]int
		if err := json.Unmarshal(rec.Data, &m); err != nil || m["i"] != i {
			t.Fatalf("record %d data = %s", i, rec.Data)
		}
	}
	// Appends continue the sequence.
	appendN(t, l2, 1, 5)
	if l2.Seq() != 6 {
		t.Fatalf("seq after reopen append = %d", l2.Seq())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	l.Close()

	path := filepath.Join(dir, "journal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last frame: a torn write of a record that was never
	// acknowledged.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Records) != 2 || !l2.TornTail {
		t.Fatalf("records=%d torn=%v", len(l2.Records), l2.TornTail)
	}
	// The torn tail was truncated in place, and appends resume cleanly.
	appendN(t, l2, 1, 9)
	if l2.Seq() != 3 {
		t.Fatalf("seq = %d, want 3 (torn record's number reused)", l2.Seq())
	}
	l2.Close()

	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(l3.Records) != 3 || l3.TornTail {
		t.Fatalf("after repair: records=%d torn=%v", len(l3.Records), l3.TornTail)
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 0)
	l.Close()

	path := filepath.Join(dir, "journal.log")
	raw, _ := os.ReadFile(path)
	// Flip one bit mid-file (inside some frame's payload).
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, good, torn := ReadAll(bytes.NewReader(raw))
	if !torn {
		t.Fatal("bit flip not detected")
	}
	if len(recs) >= 4 {
		t.Fatalf("replay did not stop at the flipped frame: %d records", len(recs))
	}
	if good > int64(len(raw)) {
		t.Fatalf("goodBytes %d beyond input", good)
	}
	// Open repairs by truncating at the flip point.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(l2.Records) != len(recs) || !l2.TornTail {
		t.Fatalf("open after flip: records=%d torn=%v", len(l2.Records), l2.TornTail)
	}
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 7, 0)
	state := map[string]string{"hello": "world"}
	if err := l.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	// Compaction emptied the journal.
	if fi, err := os.Stat(filepath.Join(dir, "journal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not compacted: %v %d", err, fi.Size())
	}
	appendN(t, l, 2, 7)
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Snap == nil || l2.Snap.Seq != 7 {
		t.Fatalf("snapshot = %+v", l2.Snap)
	}
	var got map[string]string
	if err := json.Unmarshal(l2.Snap.State, &got); err != nil || got["hello"] != "world" {
		t.Fatalf("snapshot state = %s", l2.Snap.State)
	}
	if len(l2.Records) != 2 || l2.Records[0].Seq != 8 || l2.Records[1].Seq != 9 {
		t.Fatalf("post-snapshot records = %+v", l2.Records)
	}
	if l2.Seq() != 9 {
		t.Fatalf("seq = %d", l2.Seq())
	}
}

func TestStaleJournalRecordsSkippableAfterSnapshotCrash(t *testing.T) {
	// Simulate a crash between snapshot rename and journal truncate: the
	// journal still holds records the snapshot covers. Replayers filter
	// on Seq <= Snap.Seq; verify the open view exposes what they need.
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	raw, _ := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err := l.WriteSnapshot(map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Resurrect the pre-compaction journal bytes.
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Snap == nil || l2.Snap.Seq != 3 {
		t.Fatalf("snap = %+v", l2.Snap)
	}
	stale := 0
	for _, rec := range l2.Records {
		if rec.Seq <= l2.Snap.Seq {
			stale++
		}
	}
	if stale != 3 {
		t.Fatalf("stale records = %d, want 3", stale)
	}
	// New appends must not collide with covered sequence numbers.
	seq, err := l2.Append("op", nil)
	if err != nil || seq != 4 {
		t.Fatalf("append after crash window: seq=%d err=%v", seq, err)
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, "snapshot.json")
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestReadAllGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // oversized length prefix
		bytes.Repeat([]byte{0x00}, 64),
		[]byte("not a journal at all, just prose"),
	}
	for i, in := range cases {
		recs, good, _ := ReadAll(bytes.NewReader(in))
		if len(recs) != 0 {
			t.Fatalf("case %d: decoded %d records from garbage", i, len(recs))
		}
		if good != 0 && in != nil {
			t.Fatalf("case %d: goodBytes = %d", i, good)
		}
	}
}
