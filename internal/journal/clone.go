package journal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Clone copies a journal directory's durable state — snapshot.json and
// journal.log, whichever exist — into dstDir, fsyncing each file and
// the destination directory. This is the "snapshot ship" half of a
// federation shard failover: the coordinator clones a dead shard's
// journal dir to the peer's dir, then Recover replays it there. The
// source must be quiescent (the dead shard's writer is gone); a torn
// tail in the source is fine — Recover truncates it like any crash.
func Clone(srcDir, dstDir string) error {
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return fmt.Errorf("journal: clone: %w", err)
	}
	for _, name := range []string{snapName, logName} {
		if err := copyFileSync(filepath.Join(srcDir, name), filepath.Join(dstDir, name)); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("journal: clone %s: %w", name, err)
		}
	}
	syncDir(dstDir)
	return nil
}

// copyFileSync copies src to dst and fsyncs dst. A missing src returns
// the raw os.IsNotExist error for the caller to skip.
func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
