// Package journal is the controller's durability layer: an append-only,
// length-prefixed, checksummed write-ahead log of control-plane
// mutations plus periodic compacted snapshots of full controller state.
// Pure stdlib.
//
// # On-disk layout
//
// A journal directory holds at most two live files:
//
//	journal.log    frame stream: one frame per appended record
//	snapshot.json  the latest full-state snapshot (atomic via tmp+rename)
//
// Each frame is
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// where the payload is the JSON encoding of a Record. Records carry a
// strictly increasing sequence number; a snapshot stores the sequence
// number it covers, so records with Seq <= Snapshot.Seq are skipped at
// replay (they are the window between "snapshot renamed" and "journal
// truncated" that a crash can leave behind).
//
// # Torn tails
//
// A crash mid-append can leave a torn frame at the end of journal.log.
// Readers stop at the first frame that is short, fails its checksum,
// does not decode, or breaks sequence monotonicity; Open then truncates
// the file back to the last good frame so new appends extend a valid
// stream. Because Append syncs before returning, a torn tail can only
// ever be a record that was never acknowledged.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record is one journaled controller mutation.
type Record struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// MaxRecordBytes bounds a single frame payload. A length prefix larger
// than this is treated as corruption rather than honored with a giant
// allocation.
const MaxRecordBytes = 1 << 26 // 64 MiB

const (
	logName      = "journal.log"
	snapName     = "snapshot.json"
	snapTempName = "snapshot.json.tmp"
	frameHeader  = 8 // 4-byte length + 4-byte CRC
)

// Snapshot is a durable full-state capture. Seq is the last journal
// sequence number the state includes; State is opaque to this package.
type Snapshot struct {
	Seq   uint64          `json:"seq"`
	CRC   uint32          `json:"crc"`
	State json.RawMessage `json:"state"`
}

// ReadAll decodes frames from r until EOF or the first bad frame. It
// never fails: it returns the records decoded before the stream went
// bad, how many bytes of r they span, and whether the stream ended with
// a torn or corrupt tail (true) rather than a clean EOF (false). A bad
// frame is one with a short header, a short payload, an oversized
// length prefix, a checksum mismatch, an undecodable payload, an empty
// Kind, or a sequence number that does not strictly increase.
func ReadAll(r io.Reader) (recs []Record, goodBytes int64, torn bool) {
	var prevSeq uint64
	br := newByteCounter(r)
	for {
		start := br.n
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// io.EOF at a frame boundary is the clean end of the stream.
			return recs, start, err != io.EOF
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordBytes {
			return recs, start, true
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, start, true
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, start, true
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Kind == "" {
			return recs, start, true
		}
		if len(recs) > 0 && rec.Seq <= prevSeq {
			return recs, start, true
		}
		prevSeq = rec.Seq
		recs = append(recs, rec)
	}
}

// byteCounter counts bytes consumed from the underlying reader.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// EncodeFrame renders one record as a wire frame (length | CRC | JSON).
func EncodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// Log is an open journal directory, ready for appends. It is not safe
// for concurrent use; the controller serializes access under its own
// lock.
type Log struct {
	dir string
	f   *os.File
	seq uint64 // last sequence number assigned (snapshot or record)

	// WrapSync, when set, is invoked by Append in place of calling the
	// file sync directly; the wrapper must call sync exactly once and
	// return its error. The controller uses it to time and trace fsync
	// latency without this package reading the clock. Like every other
	// Log method it runs under the caller's serialization.
	WrapSync func(sync func() error) error

	// Recovery view, filled by Open:

	// Snap is the latest durable snapshot, nil when none exists.
	Snap *Snapshot
	// Records are the valid journal records found at Open, in order.
	// Records with Seq <= Snap.Seq are already part of the snapshot.
	Records []Record
	// TornTail reports whether Open found (and truncated away) a torn
	// or corrupt tail after the last valid record.
	TornTail bool
}

// Open opens (creating if needed) a journal directory, loads the latest
// snapshot and all valid journal records, truncates any torn tail in
// place, and positions the log for appending.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	l := &Log{dir: dir}

	snap, err := loadSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	l.Snap = snap
	if snap != nil {
		l.seq = snap.Seq
	}

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	recs, good, torn := ReadAll(bytes.NewReader(raw))
	l.Records = recs
	l.TornTail = torn
	if len(recs) > 0 {
		if last := recs[len(recs)-1].Seq; last > l.seq {
			l.seq = last
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	l.f = f
	return l, nil
}

// Seq returns the last sequence number assigned.
func (l *Log) Seq() uint64 { return l.seq }

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// Append journals one mutation: it assigns the next sequence number,
// writes the frame, and syncs to stable storage before returning, so a
// successful Append may be acknowledged to clients.
func (l *Log) Append(kind string, data any) (uint64, error) {
	if l.f == nil {
		return 0, fmt.Errorf("journal: log is closed")
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	frame, err := EncodeFrame(Record{Seq: l.seq + 1, Kind: kind, Data: raw})
	if err != nil {
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	sync := l.f.Sync
	if l.WrapSync != nil {
		err = l.WrapSync(sync)
	} else {
		err = sync()
	}
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	l.seq++
	return l.seq, nil
}

// WriteSnapshot durably captures full state covering every record
// appended so far, then compacts the journal. Ordering makes each step
// crash-safe: the snapshot is written to a temp file, synced, and
// renamed over the previous one before journal.log is truncated; a
// crash in between leaves records with Seq <= Snapshot.Seq in the log,
// which replay skips.
func (l *Log) WriteSnapshot(state any) error {
	if l.f == nil {
		return fmt.Errorf("journal: log is closed")
	}
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	snap := Snapshot{Seq: l.seq, CRC: crc32.ChecksumIEEE(raw), State: raw}
	buf, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := filepath.Join(l.dir, snapTempName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(l.dir)
	// Snapshot is durable; the journal records it covers can go.
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.Snap = &snap
	return nil
}

// Close closes the journal file. It does not snapshot; callers that
// want a final compacted state call WriteSnapshot first.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// loadSnapshot reads and verifies the snapshot file; a missing file is
// (nil, nil). A snapshot that does not decode or fails its checksum is
// an error: unlike a torn journal tail it cannot be safely skipped.
func loadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("journal: corrupt snapshot %s: %w", path, err)
	}
	if crc32.ChecksumIEEE(snap.State) != snap.CRC {
		return nil, fmt.Errorf("journal: snapshot %s failed checksum", path)
	}
	return &snap, nil
}

// syncDir fsyncs a directory so a rename survives power loss. Errors
// are ignored: not every filesystem supports directory fsync, and the
// rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
