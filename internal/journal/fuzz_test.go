package journal

import (
	"bytes"
	"reflect"
	"testing"
)

// frames builds a valid frame stream of n records starting at seq.
func frames(t testing.TB, start uint64, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		frame, err := EncodeFrame(Record{Seq: start + uint64(i), Kind: "op", Data: []byte(`{"i":1}`)})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

// FuzzJournalReplay feeds arbitrary byte streams to the replay reader.
// Whatever the input — truncations, bit flips, random garbage — ReadAll
// must never panic, must stop at the first bad checksum, and must be
// self-consistent: re-reading exactly the bytes it called good yields
// the same records with no torn tail.
func FuzzJournalReplay(f *testing.F) {
	valid := frames(f, 1, 4)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20 // bit flip mid-frame
	f.Add(flipped)
	f.Add(frames(f, 900, 3))                           // arbitrary start seq
	f.Add(append(frames(f, 1, 2), frames(f, 1, 2)...)) // seq regression
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})  // huge length prefix
	f.Add(bytes.Repeat([]byte{0}, 256))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, torn := ReadAll(bytes.NewReader(data))
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("goodBytes %d out of range [0,%d]", good, len(data))
		}
		if !torn && good != int64(len(data)) {
			t.Fatalf("clean stream but only %d/%d bytes consumed", good, len(data))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Seq <= recs[i-1].Seq {
				t.Fatalf("non-monotonic seq survived replay: %d then %d", recs[i-1].Seq, recs[i].Seq)
			}
		}
		for _, rec := range recs {
			if rec.Kind == "" {
				t.Fatal("record with empty kind survived replay")
			}
		}
		// Replay is prefix-stable: the good prefix re-reads identically.
		recs2, good2, torn2 := ReadAll(bytes.NewReader(data[:good]))
		if good2 != good || torn2 || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("good prefix not stable: %d/%v vs %d/%v", good, torn, good2, torn2)
		}
	})
}
