// Package probes implements the observatory's measurement agents: the
// Raspberry-Pi-class devices with cellular and wired uplinks that
// Section 7 describes, including the constraints that distinguish them
// from RIPE Atlas probes — metered mobile data under country-specific
// pricing models, prepaid bundles, and intermittent grid power.
package probes

import (
	"fmt"
	"sync"
)

// PricingModel prices cellular data the way a local operator does.
// Different countries use different models (Section 7.1), so the model
// is an interface.
type PricingModel interface {
	// Name identifies the model for reports.
	Name() string
	// Cost returns the price of sending/receiving extra bytes at the
	// given hour-of-day, assuming alreadyUsed bytes were consumed in
	// the billing period.
	Cost(alreadyUsed, extra int64, hourOfDay int) float64
}

// PerMB is simple metered pricing.
type PerMB struct {
	// RatePerMB is the price of one megabyte.
	RatePerMB float64
}

// Name implements PricingModel.
func (p PerMB) Name() string { return fmt.Sprintf("per-mb(%.3f)", p.RatePerMB) }

// Cost implements PricingModel.
func (p PerMB) Cost(_, extra int64, _ int) float64 {
	return float64(extra) / (1 << 20) * p.RatePerMB
}

// PrepaidBundle prices data in fixed bundles: usage crossing a bundle
// boundary buys the next whole bundle — the dominant model in African
// mobile markets.
type PrepaidBundle struct {
	BundleMB    int64
	BundlePrice float64
}

// Name implements PricingModel.
func (p PrepaidBundle) Name() string {
	return fmt.Sprintf("prepaid(%dMB@%.2f)", p.BundleMB, p.BundlePrice)
}

// Cost implements PricingModel.
func (p PrepaidBundle) Cost(alreadyUsed, extra int64, _ int) float64 {
	if p.BundleMB <= 0 {
		return 0
	}
	bundleBytes := p.BundleMB << 20
	before := (alreadyUsed + bundleBytes - 1) / bundleBytes
	after := (alreadyUsed + extra + bundleBytes - 1) / bundleBytes
	if after < before {
		after = before
	}
	return float64(after-before) * p.BundlePrice
}

// TimeOfDay discounts off-peak hours (night bundles are common where
// backhaul is constrained).
type TimeOfDay struct {
	PeakPerMB    float64
	OffPeakPerMB float64
	OffPeakFrom  int // inclusive hour, e.g. 22
	OffPeakTo    int // exclusive hour, e.g. 6
}

// Name implements PricingModel.
func (p TimeOfDay) Name() string {
	return fmt.Sprintf("tod(peak=%.3f,off=%.3f)", p.PeakPerMB, p.OffPeakPerMB)
}

// offPeak reports whether the hour falls in the discount window, which
// may wrap midnight.
func (p TimeOfDay) offPeak(hour int) bool {
	if p.OffPeakFrom <= p.OffPeakTo {
		return hour >= p.OffPeakFrom && hour < p.OffPeakTo
	}
	return hour >= p.OffPeakFrom || hour < p.OffPeakTo
}

// Cost implements PricingModel.
func (p TimeOfDay) Cost(_, extra int64, hourOfDay int) float64 {
	rate := p.PeakPerMB
	if p.offPeak(hourOfDay) {
		rate = p.OffPeakPerMB
	}
	return float64(extra) / (1 << 20) * rate
}

// Budget tracks metered spending against a money cap.
type Budget struct {
	mu        sync.Mutex
	model     PricingModel
	capMoney  float64
	spent     float64
	usedBytes int64
}

// NewBudget creates a budget with the given money cap.
func NewBudget(model PricingModel, capMoney float64) *Budget {
	return &Budget{model: model, capMoney: capMoney}
}

// ErrBudgetExhausted is returned when a charge would exceed the cap.
var ErrBudgetExhausted = fmt.Errorf("probes: data budget exhausted")

// CostOf prices a prospective transfer without charging.
func (b *Budget) CostOf(bytes int64, hourOfDay int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.model.Cost(b.usedBytes, bytes, hourOfDay)
}

// Charge books a transfer, failing without side effects if it would
// exceed the cap.
func (b *Budget) Charge(bytes int64, hourOfDay int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.model.Cost(b.usedBytes, bytes, hourOfDay)
	if b.spent+c > b.capMoney+1e-9 {
		return ErrBudgetExhausted
	}
	b.spent += c
	b.usedBytes += bytes
	return nil
}

// Spent returns money spent so far.
func (b *Budget) Spent() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// UsedBytes returns bytes consumed so far.
func (b *Budget) UsedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.usedBytes
}

// Remaining returns money left under the cap.
func (b *Budget) Remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capMoney - b.spent
}
