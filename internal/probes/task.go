package probes

import (
	"fmt"

	"github.com/afrinet/observatory/internal/archival"
	"github.com/afrinet/observatory/internal/netx"
)

// TaskKind is a measurement primitive the agent can run.
type TaskKind string

const (
	TaskPing       TaskKind = "ping"
	TaskTraceroute TaskKind = "traceroute"
	TaskDNS        TaskKind = "dns"
	TaskHTTPFetch  TaskKind = "http"
	// TaskWebsteps follows Domain through DNS → TCP → TLS → HTTP
	// redirect steps from probe and control views and reports a
	// blocking verdict plus the flat archival measurement.
	TaskWebsteps TaskKind = "websteps"
	// TaskDNSLoad drives a paced burst of Queries logical lookups of
	// Domain through the probe's resolver chain (optionally with ECS)
	// and reports chain shape plus localization counts.
	TaskDNSLoad TaskKind = "dnsload"
)

// Task is one measurement assignment. Tasks travel between controller
// and agents as JSON.
type Task struct {
	ID         string   `json:"id"`
	Experiment string   `json:"experiment"`
	Kind       TaskKind `json:"kind"`
	// Target is the probe destination (dotted quad) for ping/traceroute.
	Target string `json:"target,omitempty"`
	// Domain is the name to resolve / site to fetch.
	Domain string `json:"domain,omitempty"`
	// OriginCountry hints the domain's audience country (DNS tasks).
	OriginCountry string `json:"origin_country,omitempty"`
	// Repeat is how many times to run the primitive (default 1).
	Repeat int `json:"repeat,omitempty"`
	// Queries is the dnsload burst size (default 64).
	Queries int `json:"queries,omitempty"`
	// ECS attaches client-subnet information to dnsload lookups.
	ECS bool `json:"ecs,omitempty"`
	// Value is the scheduler's priority weight.
	Value float64 `json:"value,omitempty"`
}

// TargetAddr parses the task's target address.
func (t Task) TargetAddr() (netx.Addr, error) {
	if t.Target == "" {
		return 0, fmt.Errorf("probes: task %s has no target", t.ID)
	}
	return netx.ParseAddr(t.Target)
}

// EstimatedBytes models the task's low-level network usage, including
// L3/L4 overheads — the paper notes budgeting must use network-level
// bytes, not application payloads, because that is what billing meters.
func (t Task) EstimatedBytes() int64 {
	reps := int64(t.Repeat)
	if reps <= 0 {
		reps = 1
	}
	switch t.Kind {
	case TaskPing:
		// 64B echo + reply, a few tries.
		return reps * 3 * 2 * 64
	case TaskTraceroute:
		// ~30 TTL-limited probes + ICMP errors, with IP/UDP overhead.
		return reps * 30 * (60 + 56)
	case TaskDNS:
		// Query + response + the resolver's upstream chatter billed to
		// us only on the access leg: ~2 packets of ~120B.
		return reps * 2 * 120
	case TaskHTTPFetch:
		// Handshake + headers + a capped body sample (the tool fetches
		// headers and the first KBs only, as FindCDN-style detection
		// needs, not full pages).
		return reps * (3*60 + 2*800 + 16*1024)
	case TaskWebsteps:
		// Two resolver views, dials on both steps, two handshakes, and
		// a throttling-sized body sample (websteps fetches up to 512KB
		// so rate shaping is measurable) plus redirect headers.
		return reps * (4*2*120 + 2*(3*60+2*800) + 128*1024)
	case TaskDNSLoad:
		// Queries × (query + response) at ~130B each; the chain's
		// upstream chatter is billed to the resolver, not the access leg.
		q := int64(t.Queries)
		if q <= 0 {
			q = 64
		}
		return reps * q * 2 * 130
	default:
		return reps * 256
	}
}

// Result is one task's outcome as the agent reports it.
type Result struct {
	TaskID     string   `json:"task_id"`
	Experiment string   `json:"experiment"`
	ProbeID    string   `json:"probe_id"`
	Kind       TaskKind `json:"kind"`
	OK         bool     `json:"ok"`
	Error      string   `json:"error,omitempty"`

	// RTTms carries ping/dns/http latency.
	RTTms float64 `json:"rtt_ms,omitempty"`

	// Hops carries traceroute output.
	Hops []HopRecord `json:"hops,omitempty"`

	// Resolver/auth fields for DNS tasks.
	ResolverKind    string `json:"resolver_kind,omitempty"`
	ResolverCountry string `json:"resolver_country,omitempty"`
	AuthCountry     string `json:"auth_country,omitempty"`

	// DNS-load fields: the resolver chain shape the burst ran through
	// (e.g. "stub>cache>cloud>authority"), whether ECS was attached,
	// and the burst's success/localization counts.
	ResolverChain string `json:"resolver_chain,omitempty"`
	ECS           bool   `json:"ecs,omitempty"`
	QueriesOK     int    `json:"queries_ok,omitempty"`
	CloudAuth     int    `json:"cloud_auth,omitempty"`
	Localized     int    `json:"localized,omitempty"`

	// Served fields for HTTP tasks.
	ServedCountry string `json:"served_country,omitempty"`
	ServedLocal   bool   `json:"served_local,omitempty"`

	// Websteps fields: the detector's blocking verdict (ok, dns_blocked,
	// tcp_blocked, tls_blocked, http_blocked, throttled) and the flat
	// archival measurement backing it. ResolverKind doubles as the
	// probe's resolver class for websteps aggregation.
	Verdict  string                `json:"verdict,omitempty"`
	Websteps *archival.Measurement `json:"websteps,omitempty"`

	// Interface the agent used (wired/cellular) and what it paid.
	Interface string  `json:"interface,omitempty"`
	CostPaid  float64 `json:"cost_paid,omitempty"`
	Bytes     int64   `json:"bytes,omitempty"`
}

// HopRecord is one traceroute hop on the wire.
type HopRecord struct {
	TTL  int     `json:"ttl"`
	Addr string  `json:"addr,omitempty"` // empty for silent hops
	RTT  float64 `json:"rtt_ms,omitempty"`
}
