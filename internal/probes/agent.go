package probes

import (
	"fmt"

	"github.com/afrinet/observatory/internal/archival"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnsload"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
	"github.com/afrinet/observatory/internal/websim"
)

// Interface names the agent's uplinks.
type Interface string

const (
	IfaceWired    Interface = "wired"
	IfaceCellular Interface = "cellular"
)

// PowerModel simulates intermittent grid power: the probe is off during
// outage slots. Deterministic per (seed, probe, hour).
type PowerModel struct {
	seed uint64
	// OutageProb is the chance any given hour has no grid power and no
	// battery left.
	OutageProb float64
}

// NewPowerModel builds a model with the given hourly outage probability.
func NewPowerModel(seed int64, outageProb float64) *PowerModel {
	return &PowerModel{seed: uint64(seed), OutageProb: outageProb}
}

func pmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Up reports whether the probe has power in the given absolute hour.
func (p *PowerModel) Up(probeID string, hour int) bool {
	if p == nil {
		return true
	}
	h := p.seed
	for _, c := range probeID {
		h = pmix(h ^ uint64(c))
	}
	h = pmix(h ^ uint64(hour))
	return float64(h>>11)/float64(1<<53) >= p.OutageProb
}

// Config describes one agent.
type Config struct {
	ID  string
	ASN topology.ASN // hosting network
	// HasWired is true when the site has fixed broadband; the cellular
	// dongle is always present (mobile focus).
	HasWired bool
	// CellBudget meters the cellular interface; nil means unmetered.
	CellBudget *Budget
	// Power models grid reliability; nil means always up.
	Power *PowerModel
}

// Agent executes measurement tasks against the simulated data plane.
// It is the in-process equivalent of the observatory's probe binary;
// cmd/obsprobe wraps it behind the HTTP task protocol.
type Agent struct {
	cfg Config
	net *netsim.Net
	dns *dnssim.System
	web *content.System
	// websteps is the step-following measurement engine; nil until
	// EnableWebsteps, since most fleets run only the classic primitives.
	websteps *websim.Engine

	// Hour is the agent's notion of time-of-day (advanced by the
	// harness; no wall-clock dependence so runs are reproducible).
	Hour int
}

// NewAgent builds an agent bound to the simulated plane. dns and web may
// be nil when the agent only runs ping/traceroute work.
func NewAgent(cfg Config, n *netsim.Net, dns *dnssim.System, web *content.System) *Agent {
	return &Agent{cfg: cfg, net: n, dns: dns, web: web}
}

// EnableWebsteps arms the agent with a step-following web measurement
// engine so it can execute TaskWebsteps assignments. Kept out of
// NewAgent: only censorship-capable deployments carry the engine, and
// existing call sites stay source-compatible.
func (a *Agent) EnableWebsteps(e *websim.Engine) { a.websteps = e }

// ID returns the agent id.
func (a *Agent) ID() string { return a.cfg.ID }

// ASN returns the hosting network.
func (a *Agent) ASN() topology.ASN { return a.cfg.ASN }

// ErrPowerOut reports a probe offline due to a power outage.
var ErrPowerOut = fmt.Errorf("probes: probe is down (power outage)")

// Execute runs one task and returns its result. Interface selection is
// cost-aware: wired when available (unmetered), else cellular within
// budget; budget exhaustion fails the task rather than overspending.
func (a *Agent) Execute(t Task) (Result, error) {
	res := Result{TaskID: t.ID, Experiment: t.Experiment, ProbeID: a.cfg.ID, Kind: t.Kind}

	if a.cfg.Power != nil && !a.cfg.Power.Up(a.cfg.ID, a.Hour) {
		return res, ErrPowerOut
	}

	bytes := t.EstimatedBytes()
	iface := IfaceWired
	if !a.cfg.HasWired {
		iface = IfaceCellular
	}
	if iface == IfaceCellular && a.cfg.CellBudget != nil {
		cost := a.cfg.CellBudget.CostOf(bytes, a.Hour%24)
		if err := a.cfg.CellBudget.Charge(bytes, a.Hour%24); err != nil {
			res.Error = err.Error()
			return res, err
		}
		res.CostPaid = cost
	}
	res.Interface = string(iface)
	res.Bytes = bytes

	switch t.Kind {
	case TaskPing:
		addr, err := t.TargetAddr()
		if err != nil {
			res.Error = err.Error()
			return res, err
		}
		rtt, ok := a.net.Ping(a.cfg.ASN, addr)
		res.OK = ok
		res.RTTms = rtt
	case TaskTraceroute:
		addr, err := t.TargetAddr()
		if err != nil {
			res.Error = err.Error()
			return res, err
		}
		tr := a.net.Traceroute(a.cfg.ASN, addr)
		res.OK = tr.Reached
		res.RTTms = tr.RTT
		for _, h := range tr.Hops {
			hr := HopRecord{TTL: h.TTL, RTT: h.RTT}
			if h.Addr != 0 {
				hr.Addr = h.Addr.String()
			}
			res.Hops = append(res.Hops, hr)
		}
	case TaskDNS:
		if a.dns == nil {
			res.Error = "agent has no dns engine"
			return res, fmt.Errorf("probes: %s", res.Error)
		}
		r := a.dns.Resolve(a.cfg.ASN, t.Domain, t.OriginCountry)
		res.OK = r.OK
		res.RTTms = r.LatencyMs
		res.ResolverKind = r.Resolver.Kind.String()
		res.ResolverCountry = r.Resolver.Country
		res.AuthCountry = r.Auth.Country
		if !r.OK {
			res.Error = r.FailReason
		}
	case TaskDNSLoad:
		if a.dns == nil {
			res.Error = "agent has no dns engine"
			return res, fmt.Errorf("probes: %s", res.Error)
		}
		// Burst seed derives from (probe, task) so re-execution of the
		// same task replays identically while distinct tasks decorrelate.
		h := uint64(0x646e736c6f6164)
		for _, c := range a.cfg.ID + "\x00" + t.ID {
			h = pmix(h ^ uint64(c))
		}
		sum := dnsload.TaskRun(a.dns, a.cfg.ASN, t.Domain, t.OriginCountry, t.Queries, t.ECS, h)
		res.OK = sum.OK
		res.RTTms = sum.MeanMs
		res.ResolverKind = sum.Kind
		res.ResolverCountry = sum.Country
		res.ResolverChain = sum.Chain
		res.ECS = sum.ECS
		res.QueriesOK = sum.Succeeded
		res.CloudAuth = sum.CloudAuth
		res.Localized = sum.Localized
		if !sum.OK {
			res.Error = "dnsload: no query succeeded"
		}
	case TaskHTTPFetch:
		if a.web == nil {
			res.Error = "agent has no web engine"
			return res, fmt.Errorf("probes: %s", res.Error)
		}
		site, ok := a.findSite(t.Domain, t.OriginCountry)
		if !ok {
			res.Error = "unknown site"
			return res, fmt.Errorf("probes: unknown site %s", t.Domain)
		}
		f := a.web.Fetch(a.cfg.ASN, site)
		res.OK = f.OK
		res.RTTms = f.RTTms
		res.ServedCountry = f.ServedCountry
		res.ServedLocal = f.LocalToAfrica
	case TaskWebsteps:
		if a.websteps == nil {
			res.Error = "agent has no websteps engine"
			return res, fmt.Errorf("probes: %s", res.Error)
		}
		site, ok := a.findSite(t.Domain, t.OriginCountry)
		if !ok {
			res.Error = "unknown site"
			return res, fmt.Errorf("probes: unknown site %s", t.Domain)
		}
		m := a.websteps.Measure(a.cfg.ASN, site)
		// A blocked page is still a successful measurement: OK says the
		// websteps run completed, the verdict says what it found.
		res.OK = true
		res.Verdict = websim.Classify(m)
		res.Websteps = m
		res.ResolverKind = m.ResolverClass
		for _, d := range m.DNS {
			res.RTTms += d.LatencyMs
			if d.Origin == archival.OriginProbe && res.ResolverCountry == "" {
				res.ResolverCountry = d.ResolverCountry
			}
		}
	default:
		res.Error = "unknown task kind"
		return res, fmt.Errorf("probes: unknown task kind %q", t.Kind)
	}
	return res, nil
}

// ResultSink receives each executed result before the next task runs.
// The durable implementation is internal/spool, which persists results
// to disk before any upload is attempted; tests use in-memory sinks.
// (The interface lives here, not in spool, so the dependency points
// outward: spool imports probes for Result, never the reverse.)
type ResultSink interface {
	Append(Result) error
}

// RunTasks executes tasks in order, handing each result to sink before
// moving on, so a probe killed mid-batch loses at most the task it was
// executing — never a completed-but-unpersisted result.
//
// A power outage aborts the run immediately with ErrPowerOut and sinks
// nothing for the remaining tasks: an off probe runs nothing, and the
// controller's lease expiry requeues the work. Budget exhaustion and
// other task-level failures are field conditions, not aborts — the
// failed result (Error set) is sunk like any other so the controller
// learns the task was attempted. A sink failure stops the run: when the
// durability layer cannot accept a result, executing more tasks would
// strand their results.
func (a *Agent) RunTasks(tasks []Task, sink ResultSink) (int, error) {
	done := 0
	for _, t := range tasks {
		res, err := a.Execute(t)
		if err == ErrPowerOut {
			return done, ErrPowerOut
		}
		if err != nil && res.Error == "" {
			res.Error = err.Error()
		}
		if err := sink.Append(res); err != nil {
			return done, fmt.Errorf("probes: sinking result for task %s: %w", t.ID, err)
		}
		done++
	}
	return done, nil
}

func (a *Agent) findSite(domain, ctry string) (content.Site, bool) {
	if ctry != "" {
		for _, s := range a.web.Catalog().SitesFor(ctry) {
			if s.Domain == domain {
				return s, true
			}
		}
	}
	for _, c := range a.web.Catalog().Countries() {
		for _, s := range a.web.Catalog().SitesFor(c) {
			if s.Domain == domain {
				return s, true
			}
		}
	}
	return content.Site{}, false
}
