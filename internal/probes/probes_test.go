package probes

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testDNS  = dnssim.New(testNet, 42)
	testWeb  = content.New(testNet, 42)
)

const kigali = topology.ASN(36924)

func TestPerMB(t *testing.T) {
	p := PerMB{RatePerMB: 0.5}
	if got := p.Cost(0, 2<<20, 12); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("2 MB at 0.5 = %v", got)
	}
	if p.Cost(1<<30, 0, 0) != 0 {
		t.Fatal("zero bytes should be free")
	}
}

func TestPrepaidBundleBoundaries(t *testing.T) {
	p := PrepaidBundle{BundleMB: 10, BundlePrice: 2}
	mb := int64(1 << 20)
	cases := []struct {
		used, extra int64
		want        float64
	}{
		{0, 1, 2},           // first byte buys the first bundle
		{1, 9*mb - 1, 0},    // still inside bundle one
		{9 * mb, 1 * mb, 0}, // exactly fills bundle one
		{10 * mb, 1, 2},     // next byte buys bundle two
		{0, 25 * mb, 6},     // three bundles at once
		{5 * mb, 0, 0},      // nothing new
	}
	for _, c := range cases {
		if got := p.Cost(c.used, c.extra, 0); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Cost(%d,%d) = %v, want %v", c.used, c.extra, got, c.want)
		}
	}
}

func TestPrepaidBundleMonotonic(t *testing.T) {
	p := PrepaidBundle{BundleMB: 5, BundlePrice: 1}
	f := func(used, extraA, extraB uint32) bool {
		a, b := int64(extraA%(100<<20)), int64(extraB%(100<<20))
		if a > b {
			a, b = b, a
		}
		u := int64(used % (100 << 20))
		return p.Cost(u, a, 0) <= p.Cost(u, b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimeOfDay(t *testing.T) {
	p := TimeOfDay{PeakPerMB: 1.0, OffPeakPerMB: 0.1, OffPeakFrom: 22, OffPeakTo: 6}
	mb := int64(1 << 20)
	if got := p.Cost(0, mb, 12); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("noon cost = %v", got)
	}
	if got := p.Cost(0, mb, 23); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("night cost = %v", got)
	}
	if got := p.Cost(0, mb, 3); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("early-morning cost = %v (window wraps midnight)", got)
	}
	if got := p.Cost(0, mb, 6); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("hour 6 should be peak again, got %v", got)
	}
}

func TestBudgetChargeAndExhaustion(t *testing.T) {
	b := NewBudget(PerMB{RatePerMB: 1}, 2.0)
	if err := b.Charge(1<<20, 0); err != nil {
		t.Fatal(err)
	}
	if b.Spent() != 1 || b.Remaining() != 1 {
		t.Fatalf("spent=%v remaining=%v", b.Spent(), b.Remaining())
	}
	if err := b.Charge(2<<20, 0); err != ErrBudgetExhausted {
		t.Fatalf("over-budget charge err = %v", err)
	}
	// Failed charge leaves no side effects.
	if b.Spent() != 1 || b.UsedBytes() != 1<<20 {
		t.Fatal("failed charge mutated the budget")
	}
	if err := b.Charge(1<<20, 0); err != nil {
		t.Fatal("exact-fit charge should succeed")
	}
}

func TestTaskEstimatedBytes(t *testing.T) {
	for _, k := range []TaskKind{TaskPing, TaskTraceroute, TaskDNS, TaskHTTPFetch} {
		if (Task{Kind: k}).EstimatedBytes() <= 0 {
			t.Fatalf("%s estimate not positive", k)
		}
	}
	one := (Task{Kind: TaskPing, Repeat: 1}).EstimatedBytes()
	three := (Task{Kind: TaskPing, Repeat: 3}).EstimatedBytes()
	if three != 3*one {
		t.Fatalf("repeat scaling wrong: %d vs %d", three, one)
	}
	if (Task{Kind: TaskHTTPFetch}).EstimatedBytes() <= (Task{Kind: TaskPing}).EstimatedBytes() {
		t.Fatal("a fetch must cost more than a ping")
	}
}

func newTestAgent(id string, wired bool, budget *Budget) *Agent {
	return NewAgent(Config{ID: id, ASN: kigali, HasWired: wired, CellBudget: budget},
		testNet, testDNS, testWeb)
}

func TestAgentExecutesEveryKind(t *testing.T) {
	a := newTestAgent("p1", true, nil)
	target := testNet.RouterAddr(15169, 0).String()
	tasks := []Task{
		{ID: "1", Kind: TaskPing, Target: target},
		{ID: "2", Kind: TaskTraceroute, Target: target},
		{ID: "3", Kind: TaskDNS, Domain: "site0.RW", OriginCountry: "RW"},
		{ID: "4", Kind: TaskHTTPFetch, Domain: "site0.RW", OriginCountry: "RW"},
	}
	for _, task := range tasks {
		res, err := a.Execute(task)
		if err != nil {
			t.Fatalf("%s: %v", task.Kind, err)
		}
		if res.Kind != task.Kind || res.Interface != string(IfaceWired) {
			t.Fatalf("%s: malformed result %+v", task.Kind, res)
		}
	}
}

func TestAgentTracerouteHops(t *testing.T) {
	a := newTestAgent("p2", true, nil)
	res, err := a.Execute(Task{ID: "t", Kind: TaskTraceroute, Target: testNet.RouterAddr(15169, 0).String()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hops) == 0 {
		t.Fatal("no hops in result")
	}
}

func TestAgentBudgetEnforced(t *testing.T) {
	// A budget that affords exactly one bundle of one traceroute-ish size.
	b := NewBudget(PrepaidBundle{BundleMB: 1, BundlePrice: 1}, 1.0)
	a := newTestAgent("p3", false, b)
	target := testNet.RouterAddr(15169, 0).String()
	if _, err := a.Execute(Task{ID: "1", Kind: TaskTraceroute, Target: target}); err != nil {
		t.Fatalf("first task should fit: %v", err)
	}
	// Burn through the rest of the bundle.
	for i := 0; i < 1000; i++ {
		if _, err := a.Execute(Task{ID: "x", Kind: TaskTraceroute, Target: target}); err == ErrBudgetExhausted {
			return // enforced
		}
	}
	t.Fatal("budget never exhausted")
}

func TestAgentCellularCostReported(t *testing.T) {
	b := NewBudget(PerMB{RatePerMB: 100}, 50.0)
	a := newTestAgent("p4", false, b)
	res, err := a.Execute(Task{ID: "1", Kind: TaskPing, Target: testNet.RouterAddr(15169, 0).String()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interface != string(IfaceCellular) || res.CostPaid <= 0 {
		t.Fatalf("cellular accounting missing: %+v", res)
	}
}

func TestPowerOutage(t *testing.T) {
	pm := NewPowerModel(1, 1.0) // always out
	a := NewAgent(Config{ID: "p5", ASN: kigali, HasWired: true, Power: pm}, testNet, testDNS, testWeb)
	if _, err := a.Execute(Task{ID: "1", Kind: TaskPing, Target: "1.2.3.4"}); err != ErrPowerOut {
		t.Fatalf("err = %v, want ErrPowerOut", err)
	}
	pm2 := NewPowerModel(1, 0.0) // never out
	if !pm2.Up("x", 5) {
		t.Fatal("zero outage probability should always be up")
	}
}

func TestPowerModelDeterministic(t *testing.T) {
	pm := NewPowerModel(9, 0.5)
	for h := 0; h < 50; h++ {
		if pm.Up("probe", h) != pm.Up("probe", h) {
			t.Fatal("power model not deterministic")
		}
	}
}

func TestScheduleBudgetAwareRespectsBudgets(t *testing.T) {
	// One wired (free) agent and one broke cellular agent: everything
	// must land on the wired one.
	wired := newTestAgent("wired", true, nil)
	broke := newTestAgent("broke", false, NewBudget(PerMB{RatePerMB: 1000}, 0.001))
	var tasks []Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, Task{ID: string(rune('a' + i)), Kind: TaskPing, Target: "80.0.0.1", Value: 1})
	}
	out := ScheduleBudgetAware([]*Agent{wired, broke}, tasks, 12, nil)
	if len(out) != 10 {
		t.Fatalf("scheduled %d of 10", len(out))
	}
	for _, a := range out {
		if a.ProbeID != "wired" {
			t.Fatalf("task landed on the broke probe: %+v", a)
		}
	}
}

func TestScheduleBudgetAwareDropsUnaffordable(t *testing.T) {
	broke := newTestAgent("broke", false, NewBudget(PerMB{RatePerMB: 1000}, 0.0001))
	tasks := []Task{{ID: "t", Kind: TaskHTTPFetch, Domain: "site0.RW", Value: 1}}
	if out := ScheduleBudgetAware([]*Agent{broke}, tasks, 0, nil); len(out) != 0 {
		t.Fatalf("unaffordable task scheduled: %+v", out)
	}
}

func TestScheduleValueOrdering(t *testing.T) {
	// The scheduler must run high-value tasks first when capacity is
	// constrained.
	b := NewBudget(PrepaidBundle{BundleMB: 1, BundlePrice: 1}, 1.0) // one bundle only
	agent := newTestAgent("cell", false, b)
	tasks := []Task{
		{ID: "low", Kind: TaskHTTPFetch, Domain: "d", Value: 1},
		{ID: "high", Kind: TaskHTTPFetch, Domain: "d", Value: 10},
	}
	out := ScheduleBudgetAware([]*Agent{agent}, tasks, 0, nil)
	if len(out) == 0 || out[0].Task.ID != "high" {
		t.Fatalf("high-value task not first: %+v", out)
	}
}

func TestScheduleRoundRobinDealsEvenly(t *testing.T) {
	a1 := newTestAgent("a1", true, nil)
	a2 := newTestAgent("a2", true, nil)
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{ID: string(rune('a' + i)), Kind: TaskPing, Target: "80.0.0.1"})
	}
	out := ScheduleRoundRobin([]*Agent{a1, a2}, tasks, nil)
	counts := map[string]int{}
	for _, asg := range out {
		counts[asg.ProbeID]++
	}
	if counts["a1"] != 3 || counts["a2"] != 3 {
		t.Fatalf("uneven deal: %+v", counts)
	}
}

func TestScheduleEligibility(t *testing.T) {
	a1 := newTestAgent("a1", true, nil)
	a2 := newTestAgent("a2", true, nil)
	tasks := []Task{{ID: "t", Kind: TaskPing, Target: "80.0.0.1", Value: 1}}
	only2 := func(_ Task, a *Agent) bool { return a.ID() == "a2" }
	out := ScheduleBudgetAware([]*Agent{a1, a2}, tasks, 0, only2)
	if len(out) != 1 || out[0].ProbeID != "a2" {
		t.Fatalf("eligibility ignored: %+v", out)
	}
}

// memSink collects sunk results; failAfter > 0 makes Append fail once
// that many results have been accepted.
type memSink struct {
	results   []Result
	failAfter int
}

func (m *memSink) Append(r Result) error {
	if m.failAfter > 0 && len(m.results) >= m.failAfter {
		return errSinkFull
	}
	m.results = append(m.results, r)
	return nil
}

var errSinkFull = fmt.Errorf("sink full")

func TestRunTasksSinksEveryResult(t *testing.T) {
	a := newTestAgent("r1", true, nil)
	target := testNet.RouterAddr(15169, 0).String()
	tasks := []Task{
		{ID: "1", Kind: TaskPing, Target: target},
		{ID: "2", Kind: TaskTraceroute, Target: target},
	}
	sink := &memSink{}
	n, err := a.RunTasks(tasks, sink)
	if err != nil || n != 2 {
		t.Fatalf("RunTasks = (%d, %v), want (2, nil)", n, err)
	}
	if len(sink.results) != 2 || sink.results[0].TaskID != "1" || sink.results[1].TaskID != "2" {
		t.Fatalf("sunk results wrong: %+v", sink.results)
	}
}

func TestRunTasksBudgetExhaustionRecordsFailures(t *testing.T) {
	// One bundle only: after it is spent, ErrBudgetExhausted fires and
	// every subsequent task must still be sunk as a failed result (the
	// controller learns the task was attempted) rather than dropped.
	b := NewBudget(PrepaidBundle{BundleMB: 1, BundlePrice: 1}, 1.0)
	a := newTestAgent("r2", false, b)
	target := testNet.RouterAddr(15169, 0).String()
	var tasks []Task
	for i := 0; i < 400; i++ {
		tasks = append(tasks, Task{ID: fmt.Sprintf("t%d", i), Kind: TaskTraceroute, Target: target})
	}
	sink := &memSink{}
	n, err := a.RunTasks(tasks, sink)
	if err != nil {
		t.Fatalf("budget exhaustion must not abort the run: %v", err)
	}
	if n != len(tasks) || len(sink.results) != len(tasks) {
		t.Fatalf("ran %d, sunk %d, want %d both", n, len(sink.results), len(tasks))
	}
	exhausted := 0
	for _, r := range sink.results {
		if r.Error == ErrBudgetExhausted.Error() {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Fatal("no task recorded as budget-exhausted")
	}
	if last := sink.results[len(sink.results)-1]; last.Error != ErrBudgetExhausted.Error() {
		t.Fatalf("final task should have failed on budget, got %+v", last)
	}
}

func TestRunTasksPowerOutageAbortsWithoutExecuting(t *testing.T) {
	pm := NewPowerModel(1, 1.0) // always out
	a := NewAgent(Config{ID: "r3", ASN: kigali, HasWired: true, Power: pm}, testNet, testDNS, testWeb)
	sink := &memSink{}
	n, err := a.RunTasks([]Task{
		{ID: "1", Kind: TaskPing, Target: "1.2.3.4"},
		{ID: "2", Kind: TaskPing, Target: "1.2.3.4"},
	}, sink)
	if err != ErrPowerOut {
		t.Fatalf("err = %v, want ErrPowerOut", err)
	}
	if n != 0 || len(sink.results) != 0 {
		t.Fatalf("an off probe executed work: n=%d sunk=%d", n, len(sink.results))
	}
}

func TestRunTasksSinkFailureStopsRun(t *testing.T) {
	a := newTestAgent("r4", true, nil)
	target := testNet.RouterAddr(15169, 0).String()
	tasks := []Task{
		{ID: "1", Kind: TaskPing, Target: target},
		{ID: "2", Kind: TaskPing, Target: target},
		{ID: "3", Kind: TaskPing, Target: target},
	}
	sink := &memSink{failAfter: 1}
	n, err := a.RunTasks(tasks, sink)
	if err == nil {
		t.Fatal("sink failure must surface")
	}
	if n != 1 {
		t.Fatalf("executed %d past a dead sink, want 1", n)
	}
}

func TestTargetAddrErrors(t *testing.T) {
	if _, err := (Task{ID: "x", Kind: TaskPing}).TargetAddr(); err == nil {
		t.Fatal("missing target should error")
	}
	if _, err := (Task{ID: "x", Target: "bogus"}).TargetAddr(); err == nil {
		t.Fatal("bad target should error")
	}
}

func TestAgentUnknownKind(t *testing.T) {
	a := newTestAgent("p9", true, nil)
	if _, err := a.Execute(Task{ID: "1", Kind: "nonsense"}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestAgentExecutesDNSLoad(t *testing.T) {
	a := newTestAgent("p10", true, nil)
	task := Task{ID: "dl1", Experiment: "exp", Kind: TaskDNSLoad,
		Domain: "site0.RW", OriginCountry: "RW", Queries: 128, ECS: true}
	res, err := a.Execute(task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("dnsload burst failed: %+v", res)
	}
	if res.ResolverChain == "" || res.ResolverKind == "" {
		t.Fatalf("missing chain metadata: %+v", res)
	}
	if !res.ECS || res.QueriesOK == 0 || res.RTTms <= 0 {
		t.Fatalf("burst stats malformed: %+v", res)
	}
	if res.Bytes != task.EstimatedBytes() || res.Bytes != 128*2*130 {
		t.Fatalf("estimated bytes = %d", res.Bytes)
	}
	// Re-executing the same task on the same probe replays identically.
	again, err := a.Execute(task)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("dnsload re-execution diverged:\n first  %+v\n second %+v", res, again)
	}
}
