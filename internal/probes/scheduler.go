package probes

import (
	"sort"
)

// Assignment pairs a task with the agent that should run it.
type Assignment struct {
	ProbeID string
	Task    Task
}

// QuoteAt prices a hypothetical transfer given a hypothetical prior
// usage — what the scheduler needs to plan without charging.
func (b *Budget) QuoteAt(used, extra int64, hourOfDay int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.model.Cost(used, extra, hourOfDay)
}

// planState tracks a scheduler's tentative view of one agent.
type planState struct {
	agent        *Agent
	plannedUsed  int64
	plannedSpend float64
}

func (p *planState) quote(t Task, hour int) (float64, bool) {
	bytes := t.EstimatedBytes()
	if p.agent.cfg.HasWired {
		return 0, true // unmetered interface
	}
	b := p.agent.cfg.CellBudget
	if b == nil {
		return 0, true
	}
	c := b.QuoteAt(b.UsedBytes()+p.plannedUsed, bytes, hour%24)
	if p.plannedSpend+c > b.Remaining()+1e-9 {
		return c, false
	}
	return c, true
}

func (p *planState) commit(t Task, cost float64) {
	if !p.agent.cfg.HasWired && p.agent.cfg.CellBudget != nil {
		p.plannedUsed += t.EstimatedBytes()
		p.plannedSpend += cost
	}
}

// ScheduleBudgetAware assigns tasks to agents so that high-value tasks
// run first and each lands on the cheapest agent that can afford it
// (wired sites are free; cellular sites pay their country's tariff).
// Tasks nobody can afford are dropped — the budget is a hard constraint,
// exactly as prepaid data is.
//
// eligible restricts which agents may run a task (nil = any).
func ScheduleBudgetAware(agents []*Agent, tasks []Task, hour int, eligible func(Task, *Agent) bool) []Assignment {
	states := make([]*planState, len(agents))
	for i, a := range agents {
		states[i] = &planState{agent: a}
	}
	sorted := append([]Task(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool {
		vi, vj := sorted[i].Value, sorted[j].Value
		if vi != vj {
			return vi > vj
		}
		return sorted[i].ID < sorted[j].ID
	})

	var out []Assignment
	for _, t := range sorted {
		var best *planState
		bestCost := 0.0
		for _, st := range states {
			if eligible != nil && !eligible(t, st.agent) {
				continue
			}
			c, ok := st.quote(t, hour)
			if !ok {
				continue
			}
			if best == nil || c < bestCost ||
				(c == bestCost && st.agent.ID() < best.agent.ID()) {
				best, bestCost = st, c
			}
		}
		if best == nil {
			continue // unaffordable everywhere
		}
		best.commit(t, bestCost)
		out = append(out, Assignment{ProbeID: best.agent.ID(), Task: t})
	}
	return out
}

// ScheduleRoundRobin is the naive baseline for the budget ablation: it
// deals tasks to agents in order, ignoring tariffs and budgets (tasks
// later fail at execution time when prepaid data runs out).
func ScheduleRoundRobin(agents []*Agent, tasks []Task, eligible func(Task, *Agent) bool) []Assignment {
	var out []Assignment
	if len(agents) == 0 {
		return out
	}
	i := 0
	for _, t := range tasks {
		for tries := 0; tries < len(agents); tries++ {
			a := agents[(i+tries)%len(agents)]
			if eligible == nil || eligible(t, a) {
				out = append(out, Assignment{ProbeID: a.ID(), Task: t})
				i = (i + tries + 1) % len(agents)
				break
			}
		}
	}
	return out
}
