package core

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// admissionRig builds a controller with one registered probe so
// heartbeats succeed, plus its handler.
func admissionRig(t *testing.T) (*Controller, http.Handler) {
	t.Helper()
	c := NewController("owner")
	if err := c.RegisterProbe(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	return c, c.Handler()
}

func TestAdmissionRateLimitShedsLowPriorityRoute(t *testing.T) {
	c, h := admissionRig(t)
	c.ConfigureAdmission(AdmissionConfig{
		RouteRates:        map[string]RateLimit{"query": {PerTick: 1, Burst: 2}},
		RetryAfterSeconds: 7,
	})

	// The burst admits two queries; the third is shed with the full
	// envelope treatment: 429, rate_limited code, Retry-After header.
	for i := 0; i < 2; i++ {
		if w := doReq(h, http.MethodGet, "/api/v1/query", "", nil); w.Code != http.StatusOK {
			t.Fatalf("query %d within burst: status %d (%s)", i, w.Code, w.Body.String())
		}
	}
	w := doReq(h, http.MethodGet, "/api/v1/query", "", map[string]string{RequestIDHeader: "conf-shed"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("query beyond burst: status %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want configured 7", got)
	}
	env := decodeEnvelope(t, w)
	if env.Error.Code != ErrCodeRateLimited {
		t.Fatalf("code = %q, want %q", env.Error.Code, ErrCodeRateLimited)
	}
	if env.Error.RequestID != "conf-shed" {
		t.Fatalf("envelope request_id %q does not echo the header", env.Error.RequestID)
	}

	// Heartbeats are not rate-limited: the fleet keeps landing while
	// analyst queries shed.
	if w := doReq(h, http.MethodPost, "/api/v1/probes/p1/heartbeat", "{}", nil); w.Code != http.StatusOK {
		t.Fatalf("heartbeat during query shed: status %d", w.Code)
	}

	// The bucket refills from the logical clock: one tick, one token.
	c.Tick(1)
	if w := doReq(h, http.MethodGet, "/api/v1/query", "", nil); w.Code != http.StatusOK {
		t.Fatalf("query after refill tick: status %d", w.Code)
	}
	if w := doReq(h, http.MethodGet, "/api/v1/query", "", nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("second query after one-token refill: status %d, want 429", w.Code)
	}

	if got := c.Stats().Admission["requests_shed"]; got != 2 {
		t.Fatalf("requests_shed = %d, want 2", got)
	}
}

func TestAdmissionInFlightGateShedsByPriority(t *testing.T) {
	c, h := admissionRig(t)
	c.ConfigureAdmission(AdmissionConfig{MaxInFlight: 4})

	setInflight := func(n int) {
		c.adm.mu.Lock()
		c.adm.inflight = n
		c.adm.mu.Unlock()
	}

	// At half the bound, low-priority analyst traffic sheds while
	// high-priority fleet traffic still lands.
	setInflight(2)
	if w := doReq(h, http.MethodGet, "/api/v1/query", "", nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("low-priority at half bound: status %d, want 429", w.Code)
	}
	if w := doReq(h, http.MethodPost, "/api/v1/probes/p1/heartbeat", "{}", nil); w.Code != http.StatusOK {
		t.Fatalf("heartbeat at half bound: status %d, want 200", w.Code)
	}
	if w := doReq(h, http.MethodGet, "/api/v1/probes/p1/tasks", "", nil); w.Code != http.StatusOK {
		t.Fatalf("lease at half bound: status %d, want 200", w.Code)
	}

	// At the full bound everything sheds.
	setInflight(4)
	if w := doReq(h, http.MethodPost, "/api/v1/probes/p1/heartbeat", "{}", nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("heartbeat at full bound: status %d, want 429", w.Code)
	}
	setInflight(0)

	ad := c.Stats().Admission
	if ad["requests_shed_inflight"] != 2 {
		t.Fatalf("requests_shed_inflight = %d, want 2 (%v)", ad["requests_shed_inflight"], ad)
	}
	if ad["requests_shed_priority_low"] != 1 || ad["requests_shed_priority_high"] != 1 {
		t.Fatalf("priority breakdown wrong: %v", ad)
	}
}

func TestAdmissionInFlightReleases(t *testing.T) {
	c, h := admissionRig(t)
	c.ConfigureAdmission(AdmissionConfig{MaxInFlight: 1})
	// Sequential requests each release their slot: none of these shed
	// even at MaxInFlight=1.
	for i := 0; i < 5; i++ {
		if w := doReq(h, http.MethodPost, "/api/v1/probes/p1/heartbeat", "{}", nil); w.Code != http.StatusOK {
			t.Fatalf("sequential heartbeat %d: status %d (in-flight slot leaked)", i, w.Code)
		}
	}
	c.adm.mu.Lock()
	inflight := c.adm.inflight
	c.adm.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("inflight = %d after all requests finished, want 0", inflight)
	}
}

func TestAdmissionCountersInMetricsWalk(t *testing.T) {
	c, h := admissionRig(t)
	c.ConfigureAdmission(AdmissionConfig{
		RouteRates: map[string]RateLimit{"query": {PerTick: 0, Burst: 1}},
	})
	doReq(h, http.MethodGet, "/api/v1/query", "", nil) // consumes the only token
	doReq(h, http.MethodGet, "/api/v1/query", "", nil) // shed

	w := doReq(h, http.MethodGet, "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", w.Code)
	}
	text := w.Body.String()
	for _, series := range []string{
		`obs_admission_events_total{name="requests_shed"} 1`,
		`obs_admission_events_total{name="requests_shed_rate_limit"} 1`,
		`obs_admission_events_total{name="requests_shed_route_query"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing %s in /metrics:\n%s", series, grepFamily(text, "obs_admission"))
		}
	}
}

// TestAdmissionOffByDefault pins the zero config: no limits, nothing
// shed, no admission counters.
func TestAdmissionOffByDefault(t *testing.T) {
	c, h := admissionRig(t)
	for i := 0; i < 50; i++ {
		if w := doReq(h, http.MethodGet, "/api/v1/query", "", nil); w.Code != http.StatusOK {
			t.Fatalf("unlimited controller shed request %d: status %d", i, w.Code)
		}
	}
	if ad := c.Stats().Admission; len(ad) != 0 {
		t.Fatalf("admission counters on an unlimited controller: %v", ad)
	}
}

// grepFamily extracts the exposition lines of one metric family for
// error messages.
func grepFamily(text, prefix string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) || strings.HasPrefix(line, "# TYPE "+prefix) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return fmt.Sprintf("(no %s* lines)", prefix)
	}
	return strings.Join(out, "\n")
}
