package core

// api_conformance_test.go walks the route table (APIRoutes) rather than
// hand-listing endpoints, so a route added to the table is conformance-
// checked automatically: method rejection, error-envelope shape,
// request-id echo, metrics registration, page shapes, and the trace
// ring's bound and span nesting.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/afrinet/observatory/internal/obs"
)

// fillPattern substitutes every {param} in a route pattern with a
// concrete segment.
func fillPattern(pattern string) string {
	segs := strings.Split(pattern, "/")
	for i, s := range segs {
		if strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}") {
			segs[i] = "conf-" + s[1:len(s)-1]
		}
	}
	return strings.Join(segs, "/")
}

// doReq drives one request through the handler and returns the
// recorder.
func doReq(h http.Handler, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// decodeEnvelope asserts the body is the uniform error envelope and
// returns it.
func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) errorEnvelope {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("response is not an error envelope: %v (body=%q)", err, w.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" || env.Error.RequestID == "" {
		t.Fatalf("envelope missing fields: %+v", env.Error)
	}
	return env
}

// TestRouteTableMethodRejection sends the wrong method to every route
// in the table and requires a 405 envelope with a correct Allow header.
func TestRouteTableMethodRejection(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()
	for _, rt := range APIRoutes() {
		wrong := http.MethodPost
		if rt.Method == http.MethodPost {
			wrong = http.MethodGet
		}
		path := fillPattern(rt.Pattern)
		w := doReq(h, wrong, path, "", map[string]string{RequestIDHeader: "conf-" + rt.Name})
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s %s: status %d, want 405", rt.Name, wrong, path, w.Code)
			continue
		}
		if allow := w.Header().Get("Allow"); !strings.Contains(allow, rt.Method) {
			t.Errorf("%s: Allow %q does not include %s", rt.Name, allow, rt.Method)
		}
		env := decodeEnvelope(t, w)
		if env.Error.Code != ErrCodeMethodNotAllowed {
			t.Errorf("%s: code %q, want %q", rt.Name, env.Error.Code, ErrCodeMethodNotAllowed)
		}
		if env.Error.RequestID != "conf-"+rt.Name {
			t.Errorf("%s: envelope request_id %q does not echo the header", rt.Name, env.Error.RequestID)
		}
	}
}

// TestRequestIDEcho covers the three request-id cases: client-supplied
// ids echo, absent ids mint, and oversized ids are replaced.
func TestRequestIDEcho(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()

	w := doReq(h, http.MethodGet, "/api/v1/health", "", map[string]string{RequestIDHeader: "probe-77-call-3"})
	if got := w.Header().Get(RequestIDHeader); got != "probe-77-call-3" {
		t.Fatalf("client id not echoed: %q", got)
	}

	w = doReq(h, http.MethodGet, "/api/v1/health", "", nil)
	if got := w.Header().Get(RequestIDHeader); !strings.HasPrefix(got, "srv-") {
		t.Fatalf("no id supplied: got %q, want minted srv- id", got)
	}

	w = doReq(h, http.MethodGet, "/api/v1/health", "", map[string]string{RequestIDHeader: strings.Repeat("x", 200)})
	if got := w.Header().Get(RequestIDHeader); !strings.HasPrefix(got, "srv-") {
		t.Fatalf("oversized id accepted verbatim: %q", got)
	}
}

// TestErrorEnvelopeOnEveryErrorPath samples the distinct error paths
// (404 unknown path, 404 missing resource, 400 bad query, 405) and
// requires the envelope on each.
func TestErrorEnvelopeOnEveryErrorPath(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()
	cases := []struct {
		method, path string
		status       int
		code         string
	}{
		{http.MethodGet, "/api/v2/nope", http.StatusNotFound, ErrCodeNotFound},
		{http.MethodGet, "/api/v1/experiments/ghost", http.StatusNotFound, ErrCodeNotFound},
		{http.MethodGet, "/api/v1/probes/p1/tasks?max=bogus", http.StatusBadRequest, ErrCodeBadRequest},
		{http.MethodGet, "/api/v1/debug/traces?slowest=-2", http.StatusBadRequest, ErrCodeBadRequest},
		{http.MethodDelete, "/api/v1/probes", http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed},
	}
	for _, tc := range cases {
		w := doReq(h, tc.method, tc.path, "", nil)
		if w.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d (body=%q)", tc.method, tc.path, w.Code, tc.status, w.Body.String())
			continue
		}
		if env := decodeEnvelope(t, w); env.Error.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, env.Error.Code, tc.code)
		}
	}
}

// TestEveryRouteInMetrics hits each table route once with its own
// method, then requires a histogram series tagged with every route name
// in the /metrics exposition.
func TestEveryRouteInMetrics(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()
	for _, rt := range APIRoutes() {
		body := ""
		if rt.Method == http.MethodPost {
			body = "{}"
		}
		doReq(h, rt.Method, fillPattern(rt.Pattern), body, nil) // status irrelevant: latency is observed either way
	}
	w := doReq(h, http.MethodGet, "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text := w.Body.String()
	for _, rt := range APIRoutes() {
		series := fmt.Sprintf(`obs_http_request_seconds_count{route=%q}`, rt.Name)
		if !strings.Contains(text, series) {
			t.Errorf("route %s missing from /metrics (want %s)", rt.Name, series)
		}
	}
	// The mutator and store instrumentation must surface too.
	for _, family := range []string{"obs_mutator_seconds", "obs_store_seconds", "obs_pipeline_events_total"} {
		if !strings.Contains(text, family) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
}

// TestMetricsDeterministicOrder requires two scrapes to list series in
// the same order (the exposition is sorted, not map-ordered).
func TestMetricsDeterministicOrder(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()
	names := func(text string) []string {
		var out []string
		for _, line := range strings.Split(text, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, strings.SplitN(line, " ", 2)[0])
		}
		return out
	}
	a := names(doReq(h, http.MethodGet, "/metrics", "", nil).Body.String())
	b := names(doReq(h, http.MethodGet, "/metrics", "", nil).Body.String())
	if len(a) == 0 {
		t.Fatal("empty exposition")
	}
	// The second scrape may add the metrics route's own series values but
	// never reorder; compare the shared prefix of series names.
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			t.Fatalf("series order changed between scrapes: %q vs %q at %d", a[i], b[i], i)
		}
	}
}

// TestListEndpointsPageShape requires the {items, next_cursor} shape on
// list endpoints, with items present (not null) even when empty.
func TestListEndpointsPageShape(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()

	w := doReq(h, http.MethodGet, "/api/v1/probes", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("probes list: status %d", w.Code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatalf("probes list: %v", err)
	}
	if items, ok := raw["items"]; !ok || string(items) == "null" {
		t.Fatalf("probes list: items missing or null: %s", w.Body.String())
	}

	if err := c.RegisterProbe(ProbeInfo{ID: "p1", ASN: 1, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	var pg struct {
		Items      []ProbeInfo `json:"items"`
		NextCursor string      `json:"next_cursor"`
	}
	w = doReq(h, http.MethodGet, "/api/v1/probes", "", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &pg); err != nil {
		t.Fatal(err)
	}
	if len(pg.Items) != 1 || pg.Items[0].ID != "p1" {
		t.Fatalf("probes page: %+v", pg)
	}

	w = doReq(h, http.MethodGet, "/api/v1/debug/traces?slowest=3", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("debug traces: status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatalf("debug traces: %v", err)
	}
	if _, ok := raw["items"]; !ok {
		t.Fatalf("debug traces: no items key: %s", w.Body.String())
	}
}

// TestTraceSpanNesting drives a durable controller and requires the
// full span chain handler → mutator → journal.append in the published
// trace.
func TestTraceSpanNesting(t *testing.T) {
	c, err := Recover(t.TempDir(), DurabilityConfig{Trusted: []string{"owner"}, SnapshotEvery: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := c.Handler()

	w := doReq(h, http.MethodPost, "/api/v1/probes/register",
		`{"id": "p1", "asn": 1, "country": "RW"}`,
		map[string]string{RequestIDHeader: "trace-me"})
	if w.Code != http.StatusOK {
		t.Fatalf("register: status %d body=%s", w.Code, w.Body.String())
	}

	w = doReq(h, http.MethodGet, "/api/v1/debug/traces?slowest=50", "", nil)
	var pg struct {
		Items []obs.TraceView `json:"items"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &pg); err != nil {
		t.Fatal(err)
	}
	var tr *obs.TraceView
	for i := range pg.Items {
		if pg.Items[i].RequestID == "trace-me" {
			tr = &pg.Items[i]
		}
	}
	if tr == nil {
		t.Fatalf("register trace not in ring: %+v", pg.Items)
	}
	if tr.Route != "probe_register" || tr.Status != http.StatusOK {
		t.Fatalf("trace mislabeled: %+v", tr)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "handler" {
		t.Fatalf("root span: %+v", tr.Spans)
	}
	var mutator *obs.SpanView
	for i := range tr.Spans[0].Children {
		if tr.Spans[0].Children[i].Name == "mutator:probe_register" {
			mutator = &tr.Spans[0].Children[i]
		}
	}
	if mutator == nil {
		t.Fatalf("no mutator span under handler: %+v", tr.Spans[0].Children)
	}
	found := false
	for _, ch := range mutator.Children {
		if ch.Name == "journal.append" {
			found = true
			for _, g := range ch.Children {
				if g.Name != "journal.fsync" {
					t.Fatalf("unexpected span under journal.append: %+v", g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no journal.append span under mutator: %+v", mutator.Children)
	}
}

// TestTraceRingBounded hammers the handler from many goroutines and
// requires the ring to stay at its bound. Run under -race this also
// exercises the ring's synchronization.
func TestTraceRingBounded(t *testing.T) {
	c := NewController("owner")
	h := c.Handler()
	var wg sync.WaitGroup
	const workers, per = 8, 2 * DefaultTraceRing / 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				doReq(h, http.MethodGet, "/api/v1/health", "", nil)
			}
		}()
	}
	wg.Wait()
	if got := c.Traces().Len(); got != DefaultTraceRing {
		t.Fatalf("ring length %d, want bound %d", got, DefaultTraceRing)
	}
	if got := len(c.Traces().Slowest(10)); got != 10 {
		t.Fatalf("Slowest(10) returned %d", got)
	}
}

// TestAPIDocInSync fails when the committed API.md drifts from the
// route table it is generated from.
func TestAPIDocInSync(t *testing.T) {
	disk, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatalf("API.md unreadable: %v", err)
	}
	if string(disk) != APIDocMarkdown() {
		t.Fatal("API.md is stale: regenerate with `go run ./cmd/apidoc > API.md`")
	}
}
