package core

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"github.com/afrinet/observatory/internal/journal"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// The controller journals operations, not state deltas: every mutating
// entry point appends one of these records (with its validated inputs)
// before acknowledging, and recovery replays them through the same
// locked apply functions the live path uses. Controller logic is
// deterministic given operation order — logical ticks, sorted sweeps,
// seeded everything — so snapshot + replay reconstructs the exact
// pre-crash state.
const (
	opRegister  = "probe_register"
	opHeartbeat = "heartbeat"
	opSubmit    = "experiment_submit"
	opApprove   = "experiment_approve"
	opReject    = "experiment_reject"
	opLease     = "lease_grant"
	opResults   = "results_accept"
	opSync      = "probe_sync"
	opTick      = "tick"
)

type probeOp struct {
	ProbeID string `json:"probe_id"`
}

type submitOp struct {
	RequestID   string              `json:"request_id,omitempty"`
	Owner       string              `json:"owner"`
	Description string              `json:"description"`
	Assignments []probes.Assignment `json:"assignments"`
	// ExpID pins the experiment id instead of minting exp-%04d. The
	// federation coordinator uses it to create the same federated
	// experiment id on every shard that owns a slice of the
	// assignments. Empty (every pre-federation journal) keeps the
	// minting path, so old WALs replay unchanged.
	ExpID string `json:"exp_id,omitempty"`
}

type expOp struct {
	ExpID string `json:"exp_id"`
}

type leaseOp struct {
	ProbeID string `json:"probe_id"`
	Max     int    `json:"max"`
}

// resultRef is the journaled bookkeeping for one submitted result: just
// enough to replay dedup and lease clearing. The payload itself lives
// in the results store (internal/store), not the WAL. Every ref in a
// batch is journaled — including ones that dedup as duplicates — so
// replay reproduces the live run's counters exactly.
type resultRef struct {
	Experiment string `json:"exp"`
	TaskID     string `json:"task"`
}

type resultsOp struct {
	ProbeID string      `json:"probe_id"`
	Refs    []resultRef `json:"refs"`
}

// syncOp is one batched probe round-trip: heartbeat + accepted result
// refs + a lease ask, journaled as a single record so one append and
// one fsync cover the whole batch. Max is the resolved lease cap (the
// server default is substituted before journaling), so replay grants
// the same slice regardless of config defaults at recovery time.
type syncOp struct {
	ProbeID string      `json:"probe_id"`
	Refs    []resultRef `json:"refs,omitempty"`
	Max     int         `json:"max"`
}

type tickOp struct {
	N int `json:"n"`
}

// persistState is the snapshot payload: the controller's full book,
// JSON-encodable. Set-valued maps are stored as sorted slices. Result
// payloads are deliberately absent — they live in the results store,
// which is why snapshot size no longer grows with result volume.
type persistState struct {
	Now         int64                    `json:"now"`
	NextExpID   int                      `json:"next_exp_id"`
	Probes      map[string]persistProbe  `json:"probes,omitempty"`
	Experiments map[string]*Experiment   `json:"experiments,omitempty"`
	Queues      map[string][]probes.Task `json:"queues,omitempty"`
	TaskIDs     map[string][]string      `json:"task_ids,omitempty"`
	Recorded    map[string][]string      `json:"recorded,omitempty"`
	Leases      map[string]persistLease  `json:"leases,omitempty"`
	SubmitIDs   map[string]string        `json:"submit_ids,omitempty"`
	Counters    map[string]int64         `json:"counters,omitempty"`
	Trusted     []string                 `json:"trusted,omitempty"`
	// Served-grant tallies feed the bias-aware scheduler (scheduler.go).
	// They are part of apply-path state — grants update them inside the
	// journaled apply — so snapshots must carry them for replay
	// equivalence. omitempty keeps pre-scheduler snapshots decodable.
	ServedTotal   int64            `json:"served_total,omitempty"`
	ServedCountry map[string]int64 `json:"served_country,omitempty"`
	ServedASN     map[string]int64 `json:"served_asn,omitempty"`
}

type persistProbe struct {
	Info     ProbeInfo   `json:"info"`
	LastSeen int64       `json:"last_seen"`
	Health   ProbeHealth `json:"health"`
}

type persistLease struct {
	Task     probes.Task `json:"task"`
	ProbeID  string      `json:"probe_id"`
	Deadline int64       `json:"deadline"`
}

// DurabilityConfig parameterizes Recover. Zero-valued tick knobs keep
// the NewController defaults.
type DurabilityConfig struct {
	// Trusted is the auto-approve cohort (unioned with any cohort the
	// snapshot recorded).
	Trusted []string
	// LeaseTTL / SuspectAfter / DeadAfter override the controller's
	// tick knobs when > 0.
	LeaseTTL     int64
	SuspectAfter int64
	DeadAfter    int64
	// SnapshotEvery takes an automatic compacted snapshot after that
	// many journal records. 0 disables automatic snapshots (explicit
	// Snapshot/Close still work).
	SnapshotEvery int
	// StoreDir is where the results store keeps its segments. Empty
	// defaults to <dir>/store.
	StoreDir string
	// StoreFlushEvery / StoreTargetFrames override the results store's
	// memtable flush threshold and compaction target when > 0.
	StoreFlushEvery   int
	StoreTargetFrames int
	// Retention drops stored results older than this many ticks during
	// compaction sweeps. 0 keeps everything.
	Retention int64
	// Coverage installs bias-aware lease scheduling targets
	// (scheduler.go). Like the tick knobs this is config, not journaled
	// state: recover with the same targets to replay the same grants.
	Coverage CoverageTargets
}

// Recover rebuilds a controller from a journal directory — latest
// snapshot plus replay of every journaled operation after it — and
// attaches the journal so the controller keeps appending. An empty or
// missing directory yields a fresh controller, so Recover is also the
// way to start a durable deployment. Torn or corrupt tail records are
// detected by checksum, counted (recovery_truncated_tail), and
// discarded rather than crashing recovery; because appends sync before
// acknowledging, a discarded tail record was never acked to a client.
//
// Recover also reopens the results store (StoreDir, default
// <dir>/store) and reconciles it against the replayed dedup book: a
// result whose ref was journaled but whose payload died with the
// memtable is un-recorded and its task requeued to the original
// assignee (counted as recovery_results_requeued), so a crash loses at
// most the unflushed memtable and the pipeline re-runs exactly those
// tasks.
func Recover(dir string, cfg DurabilityConfig) (*Controller, error) {
	l, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	// The controller is built first so the disk-backed store can share
	// its metric registry (the in-memory store NewController installed
	// is simply replaced).
	c := NewController(cfg.Trusted...)
	storeDir := cfg.StoreDir
	if storeDir == "" {
		storeDir = filepath.Join(dir, "store")
	}
	st, err := store.Open(storeDir, store.Options{
		FlushEvery:   cfg.StoreFlushEvery,
		TargetFrames: cfg.StoreTargetFrames,
		Retention:    cfg.Retention,
		Obs:          c.reg,
	})
	if err != nil {
		l.Close()
		return nil, err
	}
	if cfg.LeaseTTL > 0 {
		c.LeaseTTL = cfg.LeaseTTL
	}
	if cfg.SuspectAfter > 0 {
		c.SuspectAfter = cfg.SuspectAfter
	}
	if cfg.DeadAfter > 0 {
		c.DeadAfter = cfg.DeadAfter
	}
	c.coverage = cfg.Coverage

	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	var snapSeq uint64
	if l.Snap != nil {
		var st persistState
		if err := json.Unmarshal(l.Snap.State, &st); err != nil {
			l.Close()
			return nil, fmt.Errorf("core: decoding snapshot: %w", err)
		}
		c.restoreLocked(st)
		snapSeq = l.Snap.Seq
	}
	for _, rec := range l.Records {
		if rec.Seq <= snapSeq {
			continue // covered by the snapshot (crash between rename and compaction)
		}
		if err := c.applyRecordLocked(rec); err != nil {
			l.Close()
			return nil, err
		}
		c.dur.Inc("recovery_replayed")
	}
	if l.TornTail {
		c.dur.Inc("recovery_truncated_tail")
	}
	if err := c.reconcileStoreLocked(); err != nil {
		l.Close()
		c.store.Close()
		return nil, err
	}
	// Journal fsync timing: the hook runs inside Append, which only the
	// mutation path (under c.mu) calls, so reading c.span here is as
	// guarded as every other span access.
	l.WrapSync = func(sync func() error) error {
		sp := c.span.Child("journal.fsync")
		t := obs.StartTimer()
		err := sync()
		sp.End()
		c.hFsync.Observe(t.Elapsed())
		return err
	}
	c.log = l
	c.snapEvery = cfg.SnapshotEvery
	return c, nil
}

// reconcileStoreLocked squares the replayed dedup book against what the
// results store actually holds. A ref journaled in the crash window may
// point at a payload that only ever lived in the memtable; treating it
// as recorded would silently drop that measurement. Such tasks are
// un-recorded and requeued to their original assignee, restoring the
// at-least-once invariant: the probe re-runs the task and the pipeline
// converges exactly-once again. Runs before the journal is attached, so
// none of this is (or needs to be) journaled — it is a deterministic
// function of journal plus store contents.
func (c *Controller) reconcileStoreLocked() error {
	expIDs := make([]string, 0, len(c.recorded))
	for id := range c.recorded {
		expIDs = append(expIDs, id)
	}
	sort.Strings(expIDs)
	for _, expID := range expIDs {
		rec := c.recorded[expID]
		if len(rec) == 0 {
			continue
		}
		have, err := c.store.KeySet(expID)
		if err != nil {
			return fmt.Errorf("core: reconciling store for %s: %w", expID, err)
		}
		var missing []string
		for taskID := range rec {
			if !have[taskID] {
				missing = append(missing, taskID)
			}
		}
		sort.Strings(missing)
		exp := c.experiments[expID]
		for _, taskID := range missing {
			delete(rec, taskID)
			c.stats.Add("results_recorded", -1)
			c.dur.Inc("recovery_results_requeued")
			if exp == nil {
				continue
			}
			for _, a := range exp.Assignments {
				if a.Task.ID == taskID {
					c.queues[a.ProbeID] = append(c.queues[a.ProbeID], a.Task)
					break
				}
			}
		}
	}
	return nil
}

// applyRecordLocked replays one journaled operation through the same
// apply path the live mutation used.
func (c *Controller) applyRecordLocked(rec journal.Record) error {
	fail := func(err error) error {
		return fmt.Errorf("core: replaying %s record seq %d: %w", rec.Kind, rec.Seq, err)
	}
	switch rec.Kind {
	case opRegister:
		var p ProbeInfo
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return fail(err)
		}
		c.applyRegisterLocked(p)
	case opHeartbeat:
		var op probeOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applyHeartbeatLocked(op.ProbeID)
	case opSubmit:
		var op submitOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applySubmitLocked(op)
	case opApprove:
		var op expOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applyApproveLocked(op.ExpID)
	case opReject:
		var op expOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applyRejectLocked(op.ExpID)
	case opLease:
		var op leaseOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applyLeaseLocked(op.ProbeID, op.Max)
	case opResults:
		var op resultsOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applyResultsLocked(op.ProbeID, op.Refs)
	case opSync:
		var op syncOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applySyncLocked(op)
	case opTick:
		var op tickOp
		if err := json.Unmarshal(rec.Data, &op); err != nil {
			return fail(err)
		}
		c.applyTickLocked(op.N)
	default:
		return fmt.Errorf("core: unknown journal record kind %q (seq %d)", rec.Kind, rec.Seq)
	}
	return nil
}

// mutateLocked is the write path every mutating entry point goes
// through: journal the validated operation, apply it, then consider an
// automatic snapshot. The order matters twice over — the journal append
// must precede apply (a mutation the journal did not accept must not be
// acknowledged, so a failed append aborts the operation), and the
// snapshot must follow apply (a snapshot taken between journal and
// apply would claim to cover a record whose effects it lacks). With no
// journal attached (in-memory controller, or replay in progress) only
// the apply runs.
func (c *Controller) mutateLocked(kind string, v any, apply func()) error {
	sp := c.span.Child("mutator:" + kind)
	t := obs.StartTimer()
	defer func() {
		sp.End()
		c.mutHist[kind].Observe(t.Elapsed())
	}()
	defer c.setSpanLocked(sp)()
	if err := c.appendLocked(kind, v); err != nil {
		return err
	}
	apply()
	if c.log != nil && c.snapEvery > 0 && c.sinceSnap >= c.snapEvery {
		c.snapshotLocked()
	}
	return nil
}

// appendLocked journals one validated operation before it is applied.
// The append runs under its own span so the fsync hook (wired in
// Recover) nests the sync time beneath it.
func (c *Controller) appendLocked(kind string, v any) error {
	if c.log == nil {
		return nil
	}
	sp := c.span.Child("journal.append")
	t := obs.StartTimer()
	restore := c.setSpanLocked(sp)
	_, err := c.log.Append(kind, v)
	restore()
	sp.End()
	c.hAppend.Observe(t.Elapsed())
	if err != nil {
		c.dur.Inc("journal_append_errors")
		return fmt.Errorf("core: journal append: %w", err)
	}
	c.dur.Inc("journal_records_appended")
	c.sinceSnap++
	return nil
}

// snapshotLocked writes a compacted snapshot, swallowing (but counting)
// failures: the journal remains authoritative when a snapshot cannot be
// taken.
func (c *Controller) snapshotLocked() {
	if c.log == nil {
		return
	}
	sp := c.span.Child("journal.snapshot")
	t := obs.StartTimer()
	err := c.log.WriteSnapshot(c.persistLocked())
	sp.End()
	c.hSnapshot.Observe(t.Elapsed())
	if err != nil {
		c.dur.Inc("snapshot_errors")
		return
	}
	c.dur.Inc("snapshots_written")
	c.sinceSnap = 0
}

// Snapshot durably captures full controller state and compacts the
// journal. No-op without an attached journal.
func (c *Controller) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	if err := c.log.WriteSnapshot(c.persistLocked()); err != nil {
		c.dur.Inc("snapshot_errors")
		return err
	}
	c.dur.Inc("snapshots_written")
	c.sinceSnap = 0
	return nil
}

// Close flushes the results store, takes a final snapshot, and closes
// the journal; part of obsd's graceful shutdown. Safe on in-memory
// controllers.
func (c *Controller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	storeErr := c.store.Close()
	if c.log == nil {
		return storeErr
	}
	snapErr := c.log.WriteSnapshot(c.persistLocked())
	if snapErr == nil {
		c.dur.Inc("snapshots_written")
	} else {
		c.dur.Inc("snapshot_errors")
	}
	closeErr := c.log.Close()
	c.log = nil
	if storeErr != nil {
		return storeErr
	}
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// persistLocked captures the controller's full state for a snapshot.
func (c *Controller) persistLocked() persistState {
	st := persistState{
		Now:         c.now,
		NextExpID:   c.nextExpID,
		Probes:      make(map[string]persistProbe, len(c.probes)),
		Experiments: make(map[string]*Experiment, len(c.experiments)),
		Queues:      make(map[string][]probes.Task),
		TaskIDs:     make(map[string][]string, len(c.taskIDs)),
		Recorded:    make(map[string][]string, len(c.recorded)),
		Leases:      make(map[string]persistLease, len(c.leases)),
		SubmitIDs:   make(map[string]string, len(c.submitIDs)),
		Counters:    c.stats.Snapshot(),
	}
	for id, ps := range c.probes {
		st.Probes[id] = persistProbe{Info: ps.info, LastSeen: ps.lastSeen, Health: ps.health}
	}
	for id, exp := range c.experiments {
		st.Experiments[id] = cloneExp(exp)
	}
	for id, q := range c.queues {
		if len(q) > 0 {
			st.Queues[id] = append([]probes.Task(nil), q...)
		}
	}
	for id, set := range c.taskIDs {
		st.TaskIDs[id] = sortedKeys(set)
	}
	for id, set := range c.recorded {
		st.Recorded[id] = sortedKeys(set)
	}
	for k, l := range c.leases {
		st.Leases[k] = persistLease{Task: l.task, ProbeID: l.probeID, Deadline: l.deadline}
	}
	for k, v := range c.submitIDs {
		st.SubmitIDs[k] = v
	}
	st.Trusted = sortedKeys(c.trusted)
	st.ServedTotal = c.servedTotal
	if len(c.servedCountry) > 0 {
		st.ServedCountry = make(map[string]int64, len(c.servedCountry))
		for k, v := range c.servedCountry {
			st.ServedCountry[k] = v
		}
	}
	if len(c.servedASN) > 0 {
		st.ServedASN = make(map[string]int64, len(c.servedASN))
		for k, v := range c.servedASN {
			st.ServedASN[k] = v
		}
	}
	return st
}

// restoreLocked loads a snapshot into a freshly constructed controller.
func (c *Controller) restoreLocked(st persistState) {
	c.now = st.Now
	c.nextExpID = st.NextExpID
	for id, pp := range st.Probes {
		c.probes[id] = &probeState{info: pp.Info, lastSeen: pp.LastSeen, health: pp.Health}
	}
	for id, exp := range st.Experiments {
		c.experiments[id] = exp
	}
	for id, q := range st.Queues {
		c.queues[id] = q
	}
	for id, ids := range st.TaskIDs {
		c.taskIDs[id] = toSet(ids)
	}
	for id, ids := range st.Recorded {
		c.recorded[id] = toSet(ids)
	}
	for k, pl := range st.Leases {
		c.leases[k] = &leaseRec{task: pl.Task, probeID: pl.ProbeID, deadline: pl.Deadline}
	}
	for k, v := range st.SubmitIDs {
		c.submitIDs[k] = v
	}
	for _, t := range st.Trusted {
		c.trusted[t] = true
	}
	for k, v := range st.Counters {
		c.stats.Add(k, v)
	}
	c.servedTotal = st.ServedTotal
	for k, v := range st.ServedCountry {
		c.servedCountry[k] = v
	}
	for k, v := range st.ServedASN {
		c.servedASN[k] = v
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func toSet(ids []string) map[string]bool {
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// LeaseInfo is one outstanding lease as exposed for equivalence checks
// and operational inspection.
type LeaseInfo struct {
	Task     probes.Task `json:"task"`
	ProbeID  string      `json:"probe_id"`
	Deadline int64       `json:"deadline"`
}

// Leases snapshots the outstanding lease table, keyed by
// experiment+"/"+task.
func (c *Controller) Leases() map[string]LeaseInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LeaseInfo, len(c.leases))
	for k, l := range c.leases {
		out[k] = LeaseInfo{Task: l.task, ProbeID: l.probeID, Deadline: l.deadline}
	}
	return out
}

// Queues snapshots every non-empty per-probe pending queue.
func (c *Controller) Queues() map[string][]probes.Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]probes.Task)
	for id, q := range c.queues {
		if len(q) > 0 {
			out[id] = append([]probes.Task(nil), q...)
		}
	}
	return out
}

// DurabilityCounters snapshots the journal-layer counters
// (journal_records_appended, snapshots_written, recovery_replayed,
// recovery_truncated_tail, ...). Unlike the pipeline counters these are
// scoped to the current process run — they are not journaled, so replay
// does not reconstruct them.
func (c *Controller) DurabilityCounters() map[string]int64 {
	return c.dur.Snapshot()
}
