package core

// http.go holds the route handlers behind the v1 route table in
// routes.go. Method enforcement, body caps, request ids, tracing, and
// latency histograms all live in the router; handlers only parse,
// call the controller, and render through envelope.go.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

// RecoveryGate fronts the controller's handler while recovery runs:
// until Ready is called every request is answered 503 Service
// Unavailable (code "unavailable") with a Retry-After header, which the
// probe client treats as transient and retries through. cmd/obsd binds
// its listener immediately and flips the gate once Recover returns, so
// probes reconnecting after a controller restart see a brief 503 window
// rather than connection refusals.
type RecoveryGate struct {
	mu sync.RWMutex
	h  http.Handler
}

// NewRecoveryGate returns a gate in the not-ready (503) state.
func NewRecoveryGate() *RecoveryGate { return &RecoveryGate{} }

// Ready installs the recovered controller's handler and opens the gate.
func (g *RecoveryGate) Ready(h http.Handler) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.h = h
}

// NotReady closes the gate again (a restart in progress).
func (g *RecoveryGate) NotReady() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.h = nil
}

func (g *RecoveryGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	h := g.h
	g.mu.RUnlock()
	if h == nil {
		ensureRequestID(w, r)
		w.Header().Set("Retry-After", "1")
		writeAPIError(w, http.StatusServiceUnavailable, ErrCodeUnavailable,
			fmt.Errorf("controller recovering, retry shortly"))
		return
	}
	h.ServeHTTP(w, r)
}

var errNotFound = errors.New("not found")

func errMethod(allowed []string) error {
	return fmt.Errorf("method not allowed (allowed: %s)", strings.Join(allowed, ", "))
}

// MaxBodyBytes bounds every JSON request body; anything larger is
// rejected with 413 before it can balloon controller memory. The router
// applies the cap; decodeBody translates the overflow.
const MaxBodyBytes = 8 << 20 // 8 MiB

// decodeBody decodes the (router-bounded) JSON request body into v,
// writing the error envelope (413 for oversized bodies, 400 otherwise)
// itself. Returns false when the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeAPIError(w, http.StatusRequestEntityTooLarge, ErrCodeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return false
	}
	return true
}

// parseLimit parses a ?limit= value ("" means no limit). Writes the 400
// itself; the second return is false when the handler should stop.
func parseLimit(w http.ResponseWriter, s string) (int, bool) {
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("limit must be a non-negative integer, got %q", s))
		return 0, false
	}
	return n, true
}

// parseFilter builds a store.Filter from query parameters (experiment,
// country, asn, kind, verdict, resolver_chain, ecs, from_tick,
// to_tick). Writes the 400 itself.
func parseFilter(w http.ResponseWriter, q map[string][]string) (store.Filter, bool) {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	f := store.Filter{
		Experiment:    get("experiment"),
		Country:       get("country"),
		Kind:          get("kind"),
		Verdict:       get("verdict"),
		ResolverChain: get("resolver_chain"),
	}
	if s := get("ecs"); s != "" {
		if s != "true" && s != "false" {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Errorf("ecs must be true or false, got %q", s))
			return f, false
		}
		f.ECS = s
	}
	if s := get("asn"); s != "" {
		n, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Errorf("asn must be an integer, got %q", s))
			return f, false
		}
		f.ASN = topology.ASN(n)
	}
	for _, tk := range []struct {
		name string
		dst  *int64
	}{{"from_tick", &f.FromTick}, {"to_tick", &f.ToTick}} {
		if s := get(tk.name); s != "" {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
					fmt.Errorf("%s must be an integer, got %q", tk.name, s))
				return f, false
			}
			*tk.dst = n
		}
	}
	return f, true
}

func (c *Controller) handleRegister(w http.ResponseWriter, r *http.Request, _ pathParams) {
	var p ProbeInfo
	if !decodeBody(w, r, &p) {
		return
	}
	if err := c.registerProbeCtx(r.Context(), p); err != nil {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": p.ID})
}

func (c *Controller) handleProbes(w http.ResponseWriter, r *http.Request, _ pathParams) {
	items := c.Probes()
	if items == nil {
		items = []ProbeInfo{}
	}
	writeJSON(w, http.StatusOK, page{Items: items})
}

func (c *Controller) handleProbeTasks(w http.ResponseWriter, r *http.Request, p pathParams) {
	max := DefaultLeaseMax
	if s := r.URL.Query().Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Errorf("max must be a non-negative integer, got %q", s))
			return
		}
		if n > 0 {
			max = n
		}
	}
	writeJSON(w, http.StatusOK, c.leaseTasksCtx(r.Context(), p["id"], max))
}

func (c *Controller) handleProbeResults(w http.ResponseWriter, r *http.Request, p pathParams) {
	var rs []probes.Result
	if !decodeBody(w, r, &rs) {
		return
	}
	accepted, err := c.submitResultsCtx(r.Context(), p["id"], rs)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "received": len(rs)})
}

func (c *Controller) handleProbeHeartbeat(w http.ResponseWriter, r *http.Request, p pathParams) {
	if err := c.heartbeatCtx(r.Context(), p["id"]); err != nil {
		writeAPIError(w, http.StatusNotFound, ErrCodeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// submitRequest is the experiment submission body. RequestID, when set,
// makes the submission idempotent: the controller remembers which
// experiment each request id created and returns it again on redelivery,
// so clients retry submissions as freely as uploads.
type submitRequest struct {
	RequestID   string              `json:"request_id,omitempty"`
	Owner       string              `json:"owner"`
	Description string              `json:"description"`
	Assignments []probes.Assignment `json:"assignments"`
	// ID optionally pins the experiment id (federation coordinators
	// submitting per-shard slices of one federated experiment); empty
	// mints the usual exp-%04d id.
	ID string `json:"id,omitempty"`
}

func (c *Controller) handleSubmit(w http.ResponseWriter, r *http.Request, _ pathParams) {
	var req submitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.ID) > 128 {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("experiment id longer than 128 bytes"))
		return
	}
	exp, err := c.submitExperimentIdemCtx(r.Context(), req.RequestID, req.ID, req.Owner, req.Description, req.Assignments)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

func (c *Controller) handleExperimentGet(w http.ResponseWriter, r *http.Request, p pathParams) {
	exp, ok := c.Experiment(p["id"])
	if !ok {
		writeAPIError(w, http.StatusNotFound, ErrCodeNotFound,
			fmt.Errorf("unknown experiment %s", p["id"]))
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

func (c *Controller) handleExperimentApprove(w http.ResponseWriter, r *http.Request, p pathParams) {
	if err := c.approveCtx(r.Context(), p["id"]); err != nil {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": string(StatusApproved)})
}

func (c *Controller) handleExperimentResults(w http.ResponseWriter, r *http.Request, p pathParams) {
	q := r.URL.Query()
	limit, ok := parseLimit(w, q.Get("limit"))
	if !ok {
		return
	}
	rs, next, err := c.ResultsPage(p["id"], limit, q.Get("cursor"))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	if rs == nil {
		rs = []probes.Result{}
	}
	writeJSON(w, http.StatusOK, page{Items: rs, NextCursor: next})
}

// handleQuery serves GET /api/v1/query: filtered scans and time-window
// aggregations over the results store.
func (c *Controller) handleQuery(w http.ResponseWriter, r *http.Request, _ pathParams) {
	q := r.URL.Query()
	f, ok := parseFilter(w, q)
	if !ok {
		return
	}
	switch op := q.Get("op"); op {
	case "", "aggregate":
		rep, err := c.AggregateResults(store.AggQuery{Filter: f, GroupBy: q.Get("group_by")})
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	case "scan":
		limit, ok := parseLimit(w, q.Get("limit"))
		if !ok {
			return
		}
		recs, next, err := c.ScanResults(f, limit, q.Get("cursor"))
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
			return
		}
		if recs == nil {
			recs = []store.Record{}
		}
		writeJSON(w, http.StatusOK, page{Items: recs, NextCursor: next})
	default:
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("unknown op %q (want aggregate or scan)", op))
	}
}

func (c *Controller) handleHealth(w http.ResponseWriter, r *http.Request, _ pathParams) {
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Controller) handleStats(w http.ResponseWriter, r *http.Request, _ pathParams) {
	writeJSON(w, http.StatusOK, c.Stats())
}

// handleDebugTraces serves the slowest recent request traces from the
// controller's trace ring.
func (c *Controller) handleDebugTraces(w http.ResponseWriter, r *http.Request, _ pathParams) {
	n := 10
	if s := r.URL.Query().Get("slowest"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Errorf("slowest must be a non-negative integer, got %q", s))
			return
		}
		n = v
	}
	views := c.ring.Slowest(n)
	writeJSON(w, http.StatusOK, page{Items: views})
}

// handleMetrics serves the Prometheus text exposition. It writes text
// (not JSON) with an implicit 200; it is the one non-envelope response
// in the API.
func (c *Controller) handleMetrics(w http.ResponseWriter, r *http.Request, _ pathParams) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.reg.WritePrometheus(w)
}
