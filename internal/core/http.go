package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

// RecoveryGate fronts the controller's handler while recovery runs:
// until Ready is called every request is answered 503 Service
// Unavailable with a Retry-After header, which the probe client treats
// as transient and retries through. cmd/obsd binds its listener
// immediately and flips the gate once Recover returns, so probes
// reconnecting after a controller restart see a brief 503 window rather
// than connection refusals.
type RecoveryGate struct {
	mu sync.RWMutex
	h  http.Handler
}

// NewRecoveryGate returns a gate in the not-ready (503) state.
func NewRecoveryGate() *RecoveryGate { return &RecoveryGate{} }

// Ready installs the recovered controller's handler and opens the gate.
func (g *RecoveryGate) Ready(h http.Handler) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.h = h
}

// NotReady closes the gate again (a restart in progress).
func (g *RecoveryGate) NotReady() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.h = nil
}

func (g *RecoveryGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	h := g.h
	g.mu.RUnlock()
	if h == nil {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("controller recovering, retry shortly"))
		return
	}
	h.ServeHTTP(w, r)
}

// Handler exposes the controller over HTTP/JSON:
//
//	POST /api/v1/probes/register           body ProbeInfo
//	GET  /api/v1/probes                    -> []ProbeInfo
//	GET  /api/v1/probes/{id}/tasks?max=N   -> []probes.Task (lease)
//	POST /api/v1/probes/{id}/results       body []probes.Result
//	POST /api/v1/probes/{id}/heartbeat
//	POST /api/v1/experiments               body submitRequest -> Experiment
//	GET  /api/v1/experiments/{id}          -> Experiment
//	POST /api/v1/experiments/{id}/approve
//	GET  /api/v1/experiments/{id}/results  -> []probes.Result
//	     (?limit=N&cursor=C -> {results, next_cursor} paginated)
//	GET  /api/v1/query                     -> AggReport or {records, next_cursor}
//	     (op=aggregate|scan; filters: experiment, country, asn, kind,
//	     from_tick, to_tick; group_by for aggregate, limit/cursor for scan)
//	GET  /api/v1/health                    -> HealthReport
//	GET  /api/v1/stats                     -> StatsReport
//
// The probe-facing routes implement the at-least-once protocol
// described in the package comment: tasks fetched via /tasks are held
// under a lease of LeaseTTL controller ticks and are requeued if no
// result arrives in time; /results is idempotent (duplicates are
// deduplicated by experiment and task ID, so clients retry uploads
// freely) and rejects batches naming unknown experiments, unknown
// tasks, or an unregistered probe with 400. Every probe call counts as
// a heartbeat; /heartbeat exists for probes with nothing to lease or
// upload. /health and /stats report fleet liveness and the pipeline
// counters (tasks_leased, leases_expired, tasks_requeued,
// results_recorded, results_deduped, ...) for cmd/obsd. Request bodies
// are bounded at MaxBodyBytes; oversized payloads get 413.
//
// ?max=N on /tasks caps the lease size: N must be a positive integer
// (400 otherwise); omitting it (or N=0) means the server default of 32.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/probes/register", c.handleRegister)
	mux.HandleFunc("/api/v1/probes", c.handleProbes)
	mux.HandleFunc("/api/v1/probes/", c.handleProbeSub)
	mux.HandleFunc("/api/v1/experiments", c.handleSubmit)
	mux.HandleFunc("/api/v1/experiments/", c.handleExperimentSub)
	mux.HandleFunc("/api/v1/query", c.handleQuery)
	mux.HandleFunc("/api/v1/health", c.handleHealth)
	mux.HandleFunc("/api/v1/stats", c.handleStats)
	return mux
}

// resultsPage is the paginated /experiments/{id}/results response.
type resultsPage struct {
	Results    []probes.Result `json:"results"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// scanPage is the paginated /query?op=scan response.
type scanPage struct {
	Records    []store.Record `json:"records"`
	NextCursor string         `json:"next_cursor,omitempty"`
}

// parseLimit parses a ?limit= value ("" means no limit). Writes the 400
// itself; the second return is false when the handler should stop.
func parseLimit(w http.ResponseWriter, s string) (int, bool) {
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("limit must be a non-negative integer, got %q", s))
		return 0, false
	}
	return n, true
}

// parseFilter builds a store.Filter from query parameters (experiment,
// country, asn, kind, from_tick, to_tick). Writes the 400 itself.
func parseFilter(w http.ResponseWriter, q map[string][]string) (store.Filter, bool) {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	f := store.Filter{
		Experiment: get("experiment"),
		Country:    get("country"),
		Kind:       get("kind"),
	}
	if s := get("asn"); s != "" {
		n, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("asn must be an integer, got %q", s))
			return f, false
		}
		f.ASN = topology.ASN(n)
	}
	for _, tk := range []struct {
		name string
		dst  *int64
	}{{"from_tick", &f.FromTick}, {"to_tick", &f.ToTick}} {
		if s := get(tk.name); s != "" {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("%s must be an integer, got %q", tk.name, s))
				return f, false
			}
			*tk.dst = n
		}
	}
	return f, true
}

// handleQuery serves GET /api/v1/query: filtered scans and time-window
// aggregations over the results store.
//
//	op=aggregate (default)  -> AggReport; group_by=none|country|asn|country_asn
//	op=scan                 -> {records, next_cursor}; limit/cursor paginate
//
// Filter parameters (all optional): experiment, country, asn, kind,
// from_tick, to_tick (inclusive tick bounds).
func (c *Controller) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	q := r.URL.Query()
	f, ok := parseFilter(w, q)
	if !ok {
		return
	}
	switch op := q.Get("op"); op {
	case "", "aggregate":
		rep, err := c.AggregateResults(store.AggQuery{Filter: f, GroupBy: q.Get("group_by")})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	case "scan":
		limit, ok := parseLimit(w, q.Get("limit"))
		if !ok {
			return
		}
		recs, next, err := c.ScanResults(f, limit, q.Get("cursor"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if recs == nil {
			recs = []store.Record{}
		}
		writeJSON(w, http.StatusOK, scanPage{Records: recs, NextCursor: next})
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown op %q (want aggregate or scan)", op))
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// MaxBodyBytes bounds every JSON request body; anything larger is
// rejected with 413 before it can balloon controller memory.
const MaxBodyBytes = 8 << 20 // 8 MiB

// decodeBody decodes a bounded JSON request body into v, writing the
// error response (413 for oversized bodies, 400 otherwise) itself.
// Returns false when the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (c *Controller) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var p ProbeInfo
	if !decodeBody(w, r, &p) {
		return
	}
	if err := c.RegisterProbe(p); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": p.ID})
}

func (c *Controller) handleProbes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, c.Probes())
}

func (c *Controller) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Controller) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, c.Stats())
}

// handleProbeSub routes /api/v1/probes/{id}/(tasks|results|heartbeat).
func (c *Controller) handleProbeSub(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/probes/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("not found"))
		return
	}
	id, action := parts[0], parts[1]
	switch action {
	case "tasks":
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		max := 32
		if s := r.URL.Query().Get("max"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("max must be a non-negative integer, got %q", s))
				return
			}
			if n > 0 {
				max = n
			}
		}
		writeJSON(w, http.StatusOK, c.LeaseTasks(id, max))
	case "results":
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		var rs []probes.Result
		if !decodeBody(w, r, &rs) {
			return
		}
		accepted, err := c.SubmitResults(id, rs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "received": len(rs)})
	case "heartbeat":
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		if err := c.Heartbeat(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("not found"))
	}
}

// submitRequest is the experiment submission body. RequestID, when set,
// makes the submission idempotent: the controller remembers which
// experiment each request id created and returns it again on redelivery,
// so clients retry submissions as freely as uploads.
type submitRequest struct {
	RequestID   string              `json:"request_id,omitempty"`
	Owner       string              `json:"owner"`
	Description string              `json:"description"`
	Assignments []probes.Assignment `json:"assignments"`
}

func (c *Controller) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req submitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	exp, err := c.SubmitExperimentIdem(req.RequestID, req.Owner, req.Description, req.Assignments)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

// handleExperimentSub routes /api/v1/experiments/{id}[/approve|/results].
func (c *Controller) handleExperimentSub(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/experiments/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	if id == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("experiment id required"))
		return
	}
	switch {
	case len(parts) == 1:
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		exp, ok := c.Experiment(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown experiment %s", id))
			return
		}
		writeJSON(w, http.StatusOK, exp)
	case len(parts) == 2 && parts[1] == "approve":
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		if err := c.Approve(id); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": string(StatusApproved)})
	case len(parts) == 2 && parts[1] == "results":
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		q := r.URL.Query()
		if q.Get("limit") == "" && q.Get("cursor") == "" {
			// Legacy shape: the whole result set as a bare array.
			writeJSON(w, http.StatusOK, c.Results(id))
			return
		}
		limit, ok := parseLimit(w, q.Get("limit"))
		if !ok {
			return
		}
		rs, next, err := c.ResultsPage(id, limit, q.Get("cursor"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if rs == nil {
			rs = []probes.Result{}
		}
		writeJSON(w, http.StatusOK, resultsPage{Results: rs, NextCursor: next})
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("not found"))
	}
}
