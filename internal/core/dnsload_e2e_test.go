package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

const (
	chainCloud = "stub>cache>cloud>authority"
	chainLocal = "stub>cache>forwarder>authority"
)

// TestDNSLoadDimensionsEndToEnd drives dnsload results through the
// platform (submit → store → /api/v1/query) and reads them back through
// the client on the PR 10 dimensions: resolver_chain and ecs as both
// filters and group-bys.
func TestDNSLoadDimensionsEndToEnd(t *testing.T) {
	ctrl := NewController("o")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL)

	if err := cl.Register(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	var asg []probes.Assignment
	for i := 0; i < 12; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: "p1",
			Task:    probes.Task{Kind: probes.TaskDNSLoad, Domain: "site0.RW", OriginCountry: "RW", Queries: 64, ECS: i%2 == 0},
		})
	}
	exp, err := ctrl.SubmitExperiment("o", "dnsload drill", asg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.LeaseTasks("p1", 12)
	// Fabricated burst outcomes: even tasks ran with ECS through the
	// cloud chain, odd ones without ECS through the forwarder chain.
	var rs []probes.Result
	for i := 0; i < 12; i++ {
		chain := chainLocal
		if i%2 == 0 {
			chain = chainCloud
		}
		rs = append(rs, probes.Result{
			TaskID:        fmt.Sprintf("%s-t%04d", exp.ID, i),
			Experiment:    exp.ID,
			Kind:          probes.TaskDNSLoad,
			OK:            true,
			RTTms:         float64(30 + i),
			ResolverChain: chain,
			ECS:           i%2 == 0,
			QueriesOK:     64,
			CloudAuth:     32,
			Localized:     16 + 16*(i%2), // ECS bursts fully localized
		})
	}
	if _, err := ctrl.SubmitResults("p1", rs); err != nil {
		t.Fatal(err)
	}

	// group_by=resolver_chain: two buckets, keyed and sorted by shape.
	rep, err := cl.QueryAggregate(store.Filter{Experiment: exp.ID}, store.GroupResolverChain)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 12 || len(rep.Groups) != 2 {
		t.Fatalf("resolver_chain aggregate: matched=%d groups=%d", rep.Matched, len(rep.Groups))
	}
	if rep.Groups[0].ResolverChain != chainCloud || rep.Groups[1].ResolverChain != chainLocal {
		t.Fatalf("chain buckets out of order: %+v", rep.Groups)
	}
	for _, g := range rep.Groups {
		if g.Count != 6 || g.OK != 6 {
			t.Fatalf("chain bucket %q count=%d ok=%d, want 6/6", g.ResolverChain, g.Count, g.OK)
		}
	}

	// group_by=ecs: "false" sorts before "true".
	rep, err = cl.QueryAggregate(store.Filter{Experiment: exp.ID}, store.GroupECS)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 2 || rep.Groups[0].ECS != "false" || rep.Groups[1].ECS != "true" {
		t.Fatalf("ecs buckets malformed: %+v", rep.Groups)
	}

	// Both dimensions as filters, composed.
	rep, err = cl.QueryAggregate(store.Filter{Experiment: exp.ID, ResolverChain: chainCloud}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 6 {
		t.Fatalf("resolver_chain filter matched %d, want 6", rep.Matched)
	}
	rep, err = cl.QueryAggregate(store.Filter{Experiment: exp.ID, ECS: "false"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 6 {
		t.Fatalf("ecs filter matched %d, want 6", rep.Matched)
	}
	rep, err = cl.QueryAggregate(store.Filter{Experiment: exp.ID, ResolverChain: chainCloud, ECS: "false"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 0 {
		t.Fatalf("composed filter matched %d, want 0 (cloud bursts all ran with ECS)", rep.Matched)
	}

	// Scan path honors the new filters too.
	recs, _, err := cl.QueryScan(store.Filter{Experiment: exp.ID, ECS: "true"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("scan ecs=true returned %d records, want 6", len(recs))
	}
	for _, r := range recs {
		if !r.Result.ECS || r.Result.ResolverChain != chainCloud {
			t.Fatalf("scan leaked a non-matching record: %+v", r.Result)
		}
	}

	// Malformed ecs is a 400 with the uniform envelope, not a silent any.
	resp, err := http.Get(srv.URL + "/api/v1/query?ecs=maybe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ecs=maybe status = %d, want 400", resp.StatusCode)
	}
}
