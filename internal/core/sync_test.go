package core

// sync_test.go covers the batched hot path: one journal append per
// batch, retry dedup, unknown-probe rejection, long-poll parking and
// its wakeup sites, and crash/recover equivalence of the synced state
// (including the scheduler's served tallies).

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/probes"
)

// syncTestController boots a durable controller with one registered
// probe and n queued tasks.
func syncTestController(t *testing.T, n int) (*Controller, []probes.Task) {
	t.Helper()
	c, err := Recover(t.TempDir(), DurabilityConfig{Trusted: []string{"owner"}, LeaseTTL: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	mustRegister(t, c, "sy-01", 36924, "RW")
	var tasks []probes.Task
	if n > 0 {
		exp, err := c.SubmitExperiment("owner", "sync test", pingAssignments("sy-01", n))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range exp.Assignments {
			tasks = append(tasks, a.Task)
		}
	}
	return c, tasks
}

// TestSyncBatchSingleJournalAppend is the tentpole's durability claim:
// a full round — heartbeat + result batch + lease — costs exactly one
// journal append (and therefore one fsync), where the unbatched
// protocol costs one per call.
func TestSyncBatchSingleJournalAppend(t *testing.T) {
	c, tasks := syncTestController(t, 8)
	resp, err := c.SyncProbe("sy-01", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tasks) != 4 {
		t.Fatalf("leased %d tasks, want 4", len(resp.Tasks))
	}
	rs := make([]probes.Result, 0, 4)
	for _, task := range resp.Tasks {
		rs = append(rs, okResult(task))
	}

	before := c.DurabilityCounters()["journal_records_appended"]
	resp, err = c.SyncProbe("sy-01", rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	appends := c.DurabilityCounters()["journal_records_appended"] - before
	if appends != 1 {
		t.Fatalf("batched round cost %d journal appends, want exactly 1", appends)
	}
	if resp.Accepted != 4 || resp.Received != 4 {
		t.Fatalf("accepted/received = %d/%d, want 4/4", resp.Accepted, resp.Received)
	}
	if len(resp.Tasks) != 4 {
		t.Fatalf("second round leased %d tasks, want 4", len(resp.Tasks))
	}
	if got := c.Stats().Counters["results_recorded"]; got != 4 {
		t.Fatalf("results_recorded = %d, want 4", got)
	}
	_ = tasks
}

// TestSyncRetryDedups re-sends the same batch (a probe whose ack was
// lost): everything dedups, nothing double-records, and the response
// says so via Accepted < Received.
func TestSyncRetryDedups(t *testing.T) {
	c, _ := syncTestController(t, 4)
	first, err := c.SyncProbe("sy-01", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]probes.Result, 0, len(first.Tasks))
	for _, task := range first.Tasks {
		rs = append(rs, okResult(task))
	}
	if resp, err := c.SyncProbe("sy-01", rs, -1); err != nil || resp.Accepted != 4 {
		t.Fatalf("first delivery: accepted=%d err=%v, want 4/nil", resp.Accepted, err)
	}
	resp, err := c.SyncProbe("sy-01", rs, -1) // retry of the same frame
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Received != 4 {
		t.Fatalf("retry: accepted/received = %d/%d, want 0/4", resp.Accepted, resp.Received)
	}
	st := c.Stats()
	if st.Counters["results_recorded"] != 4 || st.Counters["results_deduped"] != 4 {
		t.Fatalf("recorded/deduped = %d/%d, want 4/4",
			st.Counters["results_recorded"], st.Counters["results_deduped"])
	}
	if st.OutstandingLeases != 0 {
		t.Fatalf("%d leases outstanding after delivery", st.OutstandingLeases)
	}
}

// TestSyncUnknownProbe rejects the whole batch for an unregistered
// probe — 404 over HTTP so a wiped controller tells probes to
// re-register rather than silently absorbing their results.
func TestSyncUnknownProbe(t *testing.T) {
	c, _ := syncTestController(t, 0)
	if _, err := c.SyncProbe("ghost", nil, 1); err == nil {
		t.Fatal("sync from unknown probe succeeded")
	}
	w := doReq(c.Handler(), http.MethodPost, "/api/v1/probes/sync",
		`{"probe_id":"ghost"}`, nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (body %s)", w.Code, w.Body.String())
	}
	decodeEnvelope(t, w)
}

// TestSyncEmptyProbeID is a 400, not a route miss.
func TestSyncEmptyProbeID(t *testing.T) {
	c, _ := syncTestController(t, 0)
	w := doReq(c.Handler(), http.MethodPost, "/api/v1/probes/sync", `{}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
}

// TestSyncLongPollDeadline parks a sync on an empty queue and requires
// a clean empty 200 once the wait elapses — the probe's cue to re-park.
func TestSyncLongPollDeadline(t *testing.T) {
	c, _ := syncTestController(t, 0)
	w := doReq(c.Handler(), http.MethodPost, "/api/v1/probes/sync?wait=30ms",
		`{"probe_id":"sy-01"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	var resp SyncResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tasks) != 0 {
		t.Fatalf("empty fleet leased %d tasks", len(resp.Tasks))
	}
	c.mu.Lock()
	parked := len(c.waiters["sy-01"])
	c.mu.Unlock()
	if parked != 0 {
		t.Fatalf("%d waiters leaked after the deadline", parked)
	}
}

// TestSyncLongPollWakesOnApprove parks a sync, then approves an
// experiment assigning the probe work: the park must end with the fresh
// lease, well before the wait deadline.
func TestSyncLongPollWakesOnApprove(t *testing.T) {
	c, _ := syncTestController(t, 0)
	exp, err := c.SubmitExperiment("stranger", "pending until approved", pingAssignments("sy-01", 3))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan SyncResponse, 1)
	go func() {
		w := doReq(c.Handler(), http.MethodPost, "/api/v1/probes/sync?wait=20s",
			`{"probe_id":"sy-01","max":3}`, nil)
		var resp SyncResponse
		_ = json.Unmarshal(w.Body.Bytes(), &resp)
		done <- resp
	}()
	// Wait for the park to register, then approve.
	for i := 0; i < 200; i++ {
		c.mu.Lock()
		parked := len(c.waiters["sy-01"])
		c.mu.Unlock()
		if parked > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Approve(exp.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-done:
		if len(resp.Tasks) != 3 {
			t.Fatalf("woken sync leased %d tasks, want 3", len(resp.Tasks))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync stayed parked after approval enqueued its tasks")
	}
}

// TestSyncLongPollWakesOnExpiryRequeue parks a sync after the probe's
// queue drained into a lease, then ticks the lease dead: the requeue is
// an enqueue site and must wake the parked round.
func TestSyncLongPollWakesOnExpiryRequeue(t *testing.T) {
	c, _ := syncTestController(t, 2)
	if got := c.LeaseTasks("sy-01", 2); len(got) != 2 {
		t.Fatalf("leased %d, want 2", len(got))
	}
	done := make(chan SyncResponse, 1)
	go func() {
		w := doReq(c.Handler(), http.MethodPost, "/api/v1/probes/sync?wait=20s",
			`{"probe_id":"sy-01"}`, nil)
		var resp SyncResponse
		_ = json.Unmarshal(w.Body.Bytes(), &resp)
		done <- resp
	}()
	for i := 0; i < 200; i++ {
		c.mu.Lock()
		parked := len(c.waiters["sy-01"])
		c.mu.Unlock()
		if parked > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Tick(int(c.LeaseTTL) + 1) // expire the leases; requeue to the same probe
	select {
	case resp := <-done:
		if len(resp.Tasks) == 0 {
			t.Fatal("woken sync leased nothing after expiry requeued its tasks")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync stayed parked after lease-expiry requeue")
	}
}

// TestSyncConcurrentRetriesExactlyOnce hammers the same result frame
// from many goroutines (a probe whose network retried aggressively):
// exactly one copy records, under -race.
func TestSyncConcurrentRetriesExactlyOnce(t *testing.T) {
	c, _ := syncTestController(t, 8)
	first, err := c.SyncProbe("sy-01", nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]probes.Result, 0, len(first.Tasks))
	for _, task := range first.Tasks {
		rs = append(rs, okResult(task))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.SyncProbe("sy-01", rs, -1)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			accepted += resp.Accepted
			mu.Unlock()
		}()
	}
	wg.Wait()
	if accepted != 8 {
		t.Fatalf("concurrent retries accepted %d total, want exactly 8", accepted)
	}
	if got := c.Stats().Counters["results_recorded"]; got != 8 {
		t.Fatalf("results_recorded = %d, want 8", got)
	}
}

// TestSyncCrashRecoverEquivalence replays a history containing sync
// batches and checks the recovered controller matches the live one —
// including the scheduler's served tallies, which ride the journaled
// lease/sync applies.
func TestSyncCrashRecoverEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := DurabilityConfig{Trusted: []string{"owner"}, LeaseTTL: 10}
	live, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, live, "sy-01", 36924, "RW")
	mustRegister(t, live, "sy-02", 37282, "KE")
	if _, err := live.SubmitExperiment("owner", "wave", append(
		pingAssignments("sy-01", 6), pingAssignments("sy-02", 6)...)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, id := range []string{"sy-01", "sy-02"} {
			resp, err := live.SyncProbe(id, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			rs := make([]probes.Result, 0, len(resp.Tasks))
			for _, task := range resp.Tasks {
				rs = append(rs, okResult(task))
			}
			if _, err := live.SyncProbe(id, rs, -1); err != nil {
				t.Fatal(err)
			}
		}
		live.Tick(1)
	}
	want := viewOf(live)
	wantCov := live.Coverage()
	if wantCov.ServedTotal == 0 {
		t.Fatal("history served nothing; test is vacuous")
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := viewOf(rec)
	gotCov := rec.Coverage()
	assertEqualJSON(t, "controller state", want, got)
	assertEqualJSON(t, "coverage book", wantCov, gotCov)
}

// assertEqualJSON compares two values by canonical JSON (maps order-
// insensitively).
func assertEqualJSON(t *testing.T, what string, want, got any) {
	t.Helper()
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(w) != string(g) {
		t.Fatalf("%s diverged after recovery:\n live: %s\n rec:  %s", what, w, g)
	}
}

// TestProbeSyncRoutePriority pins the sync route to the high admission
// class: under shed, fleet hot-path traffic must be the last thing
// dropped, exactly like the unbatched probe routes it replaces.
func TestProbeSyncRoutePriority(t *testing.T) {
	for _, rt := range APIRoutes() {
		if rt.Name == "probe_sync" {
			if rt.Priority != PriorityHigh.String() {
				t.Fatalf("probe_sync priority = %q, want high", rt.Priority)
			}
			if rt.Method != http.MethodPost || rt.Pattern != "/api/v1/probes/sync" {
				t.Fatalf("probe_sync is %s %s", rt.Method, rt.Pattern)
			}
			return
		}
	}
	t.Fatal("probe_sync route missing from APIRoutes")
}
