package core

import (
	"fmt"

	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// Target selection — the "intentional, context-aware targeting" of the
// abstract. Instead of spraying the address space, each task aims at a
// component the platform wants visibility into.

// IXPTraceTargets returns one traceroute target per exchange: an address
// inside a member network chosen so a probe whose upstream peers at the
// fabric will cross the peering LAN (the paper's Section 6.1
// implication: measurements must target customers of the IX). Content
// off-nets are preferred targets when present.
func IXPTraceTargets(t *topology.Topology, n *netsim.Net) map[topology.IXPID]netx.Addr {
	out := make(map[topology.IXPID]netx.Addr)
	for _, rec := range registry.AfricanIXPs(t) {
		var pick topology.ASN
		// Prefer a content/cloud member (an off-net cache: stable,
		// responsive, and reached across the fabric by every peer).
		for _, m := range rec.Members {
			as := t.ASes[m]
			if as != nil && (as.Type == topology.ASContent || as.Type == topology.ASCloud) {
				pick = m
				break
			}
		}
		if pick == 0 {
			for _, m := range rec.Members {
				as := t.ASes[m]
				if as != nil && as.Type != topology.ASIXPRouteServer {
					pick = m
					break
				}
			}
		}
		if pick == 0 {
			continue
		}
		out[rec.ID] = n.RouterAddr(pick, 0)
	}
	return out
}

// ResolverAuditTasks builds the DNS tasks of the hidden-dependency audit
// (Section 5.2): resolve each country's most popular local domains so
// the platform observes which resolver (and which country) serves them.
func ResolverAuditTasks(cat *content.Catalog, perCountry int) []probes.Task {
	var tasks []probes.Task
	for _, c := range geo.AfricanCountries() {
		sites := cat.SitesFor(c.ISO2)
		for i := 0; i < perCountry && i < len(sites); i++ {
			tasks = append(tasks, probes.Task{
				ID:            fmt.Sprintf("dns-%s-%d", c.ISO2, i),
				Kind:          probes.TaskDNS,
				Domain:        sites[i].Domain,
				OriginCountry: c.ISO2,
				Value:         1,
			})
		}
	}
	return tasks
}

// ContentLocalityTasks builds the HTTP-fetch tasks of the Figure 2b
// measurement for one country's top sites.
func ContentLocalityTasks(cat *content.Catalog, iso2 string, limit int) []probes.Task {
	var tasks []probes.Task
	sites := cat.SitesFor(iso2)
	if limit <= 0 || limit > len(sites) {
		limit = len(sites)
	}
	for i := 0; i < limit; i++ {
		tasks = append(tasks, probes.Task{
			ID:            fmt.Sprintf("http-%s-%d", iso2, i),
			Kind:          probes.TaskHTTPFetch,
			Domain:        sites[i].Domain,
			OriginCountry: iso2,
			Value:         1,
		})
	}
	return tasks
}

// CableSpanTargets returns traceroute targets whose paths from African
// probes must ride subsea cables: one well-connected network per
// coastal landing country plus the European transit hubs, giving the
// cable-inference pipeline sea-crossing links to classify.
func CableSpanTargets(t *topology.Topology, n *netsim.Net) []netx.Addr {
	var out []netx.Addr
	seen := map[string]bool{}
	for _, id := range t.CableIDs() {
		for _, l := range t.Cables[id].Landings {
			if seen[l.Country] {
				continue
			}
			seen[l.Country] = true
			for _, a := range t.ASesIn(l.Country) {
				as := t.ASes[a]
				if as.Type == topology.ASFixedISP || as.Type == topology.ASTransit {
					out = append(out, n.RouterAddr(a, 0))
					break
				}
			}
		}
	}
	return out
}

// TracerouteAssignments fans a target list out across probes: every
// probe traces every target (the full mesh the detour/IXP analyses
// need) — callers with budgets should schedule the result.
func TracerouteAssignments(probeIDs []string, targets []netx.Addr, prefix string) []probes.Assignment {
	var out []probes.Assignment
	for _, pid := range probeIDs {
		for i, tg := range targets {
			out = append(out, probes.Assignment{
				ProbeID: pid,
				Task: probes.Task{
					ID:     fmt.Sprintf("%s-%s-%d", prefix, pid, i),
					Kind:   probes.TaskTraceroute,
					Target: tg.String(),
					Value:  1,
				},
			})
		}
	}
	return out
}
