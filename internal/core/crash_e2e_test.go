package core

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/faultinject"
	"github.com/afrinet/observatory/internal/probes"
)

// TestCrashRestartRecoveryEndToEnd kills the controller at a random
// point mid-experiment — no graceful shutdown, no final snapshot, plus
// a torn partial record appended to the journal as a crash mid-write
// would leave — and restarts it from the data dir. The probe fleet,
// behind fault-injecting transports, retries through the 503 outage
// window via the client's backoff; the drill must still converge to
// exactly-once completion.
func TestCrashRestartRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := DurabilityConfig{
		Trusted:       []string{"obs"},
		LeaseTTL:      2,
		SuspectAfter:  3,
		DeadAfter:     6,
		SnapshotEvery: 48,
	}
	ctrl, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := NewRecoveryGate()
	gate.Ready(ctrl.Handler())
	srv := httptest.NewServer(gate)
	defer srv.Close()

	admin := NewClientSeeded(srv.URL, 99)
	admin.MaxAttempts = 8
	admin.Sleep = func(time.Duration) {}

	type rig struct {
		agent *probes.Agent
		cl    *Client
		ft    *faultinject.Transport
	}
	var rigs []*rig
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("live-%02d", i)
		ft := faultinject.New(int64(200 + i))
		ft.DropRequestProb = 0.08
		ft.DropResponseProb = 0.12
		ft.DupProb = 0.20
		ft.ErrProb = 0.08
		cl := NewClientSeeded(srv.URL, int64(i+1))
		cl.HTTP = &http.Client{Timeout: 5 * time.Second, Transport: ft}
		cl.MaxAttempts = 6
		cl.Sleep = func(time.Duration) {}
		if err := cl.Register(ProbeInfo{ID: id, ASN: 36924, Country: "RW", HasWired: true}); err != nil {
			t.Fatal(err)
		}
		rigs = append(rigs, &rig{
			agent: probes.NewAgent(probes.Config{ID: id, ASN: 36924, HasWired: true}, testNet, testDNS, testWeb),
			cl:    cl,
			ft:    ft,
		})
	}

	target := testNet.RouterAddr(15169, 0).String()
	var asg []probes.Assignment
	for i := 0; i < 24; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: fmt.Sprintf("live-%02d", i%3),
			Task:    probes.Task{Kind: probes.TaskPing, Target: target},
		})
	}
	exp, err := admin.Submit("obs", "crash drill", asg)
	if err != nil {
		t.Fatal(err)
	}

	// step is one probe poll round, throttled to small leases so the
	// drill takes many rounds and the kill lands mid-experiment.
	step := func(r *rig) {
		tasks, err := r.cl.LeaseTasks(r.agent.ID(), 2)
		if err != nil || len(tasks) == 0 {
			_ = r.cl.Heartbeat(r.agent.ID())
			return
		}
		results := make([]probes.Result, 0, len(tasks))
		for _, task := range tasks {
			res, err := r.agent.Execute(task)
			if err != nil && res.Error == "" {
				res.Error = err.Error()
			}
			results = append(results, res)
		}
		_ = r.cl.SubmitResults(r.agent.ID(), results)
	}

	// The kill lands at a random early round, guaranteed mid-experiment:
	// some results are in, some tasks queued, and a couple freshly
	// leased with their results stranded on the crashed probe's side.
	rng := rand.New(rand.NewSource(7))
	killRound := 2 + rng.Intn(3)
	restartRound := killRound + 2
	restarted := false

	for rounds := 0; rounds < 120 && !(restarted && ctrl.Done(exp.ID)); rounds++ {
		if rounds == killRound {
			if ctrl.Done(exp.ID) {
				t.Fatal("drill converged before the kill round; raise the task count")
			}
			// In-flight work at the instant of the crash: a lease whose
			// results will never be submitted. Recovery must restore the
			// lease and expire it back into a queue.
			_, _ = rigs[0].cl.LeaseTasks("live-00", 2)
			// kill -9: the process vanishes. No snapshot, no Close — and
			// a torn partial append (never acknowledged to anyone) left
			// on the journal tail.
			gate.NotReady()
			f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x13, 0x37, 0xde}); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// The 503-during-recovery contract, observed from outside.
			resp, err := http.Get(srv.URL + "/api/v1/health")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
				t.Fatalf("outage window: status=%d retry-after=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
			}
			if _, err := admin.Stats(); err == nil || !strings.Contains(err.Error(), "503") {
				t.Fatalf("admin call during outage: err=%v, want exhausted 503 retries", err)
			}
		}
		if rounds == restartRound {
			ctrl2, err := Recover(dir, cfg)
			if err != nil {
				t.Fatalf("restart recovery: %v", err)
			}
			d := ctrl2.DurabilityCounters()
			if d["recovery_truncated_tail"] != 1 {
				t.Fatalf("torn tail not detected on restart: %v", d)
			}
			if d["recovery_replayed"] == 0 && ctrl2.Now() == 0 {
				t.Fatalf("restart recovered nothing: %v", d)
			}
			ctrl = ctrl2
			gate.Ready(ctrl.Handler())
			restarted = true
		}

		inOutage := rounds >= killRound && rounds < restartRound
		for _, r := range rigs {
			// During the outage these fail after exhausting retries;
			// that is the probes' problem to survive, not the test's.
			step(r)
		}
		if !inOutage {
			ctrl.Tick(1) // a dead controller's clock does not tick
		}
	}

	if !restarted {
		t.Fatal("drill converged before the kill round; raise the task count")
	}
	if !ctrl.Done(exp.ID) {
		t.Fatalf("pipeline did not converge after crash-restart; stats=%+v durability=%+v",
			ctrl.Stats().Counters, ctrl.DurabilityCounters())
	}

	// Exactly-once completion across the crash: every task has exactly
	// one recorded result, none lost, none duplicated.
	rs := ctrl.Results(exp.ID)
	if len(rs) != len(asg) {
		t.Fatalf("results = %d, want %d", len(rs), len(asg))
	}
	perTask := map[string]int{}
	for _, r := range rs {
		perTask[r.TaskID]++
	}
	if len(perTask) != len(asg) {
		t.Fatalf("distinct tasks = %d, want %d", len(perTask), len(asg))
	}
	for id, n := range perTask {
		if n != 1 {
			t.Fatalf("task %s recorded %d times", id, n)
		}
	}

	// Recovery is visible through the public stats endpoint.
	stats, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["results_recorded"] != int64(len(asg)) {
		t.Fatalf("results_recorded = %d, want %d", stats.Counters["results_recorded"], len(asg))
	}
	if stats.Durability["recovery_truncated_tail"] != 1 {
		t.Fatalf("durability counters not exposed over HTTP: %v", stats.Durability)
	}
	if stats.Durability["journal_records_appended"] == 0 {
		t.Fatalf("post-restart appends missing: %v", stats.Durability)
	}

	// A third start — this time after a graceful Close — replays nothing:
	// the final snapshot covered everything.
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	ctrl3, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl3.Close()
	if got := ctrl3.DurabilityCounters()["recovery_replayed"]; got != 0 {
		t.Fatalf("replayed %d records after graceful shutdown, want 0", got)
	}
	if !ctrl3.Done(exp.ID) {
		t.Fatal("experiment state lost across graceful restart")
	}
}
