package core

// scheduler.go is the bias-aware lease scheduler. "Bias in Internet
// Measurement Platforms" (PAPERS.md) shows that raw fleet size without
// coverage-aware scheduling produces badly skewed vantage points: the
// handful of countries and networks where probes are easy to host end
// up contributing most measurements. The controller counters that at
// the lease grant — the one choke point every task passes through — by
// tallying how many tasks each country and ASN has been served and
// trimming the per-grant allowance of overrepresented vantage points,
// so underrepresented ones catch up whenever they have queued work.
//
// The scoring function is total-variation distance between the served
// share distribution and the target share distribution:
//
//	skew = 1/2 * Σ_k |served_k/total − target_k|
//
// 0 means the fleet serves exactly the target mix; 1 means the mass is
// entirely misplaced. The allowance for a probe whose class is over
// target scales the ask by target/share (floored at 1 so no class is
// ever starved outright); classes at or under target always get their
// full ask. Targets are config (DurabilityConfig.Coverage), not
// journaled state — like LeaseTTL, recover with the same targets to
// replay the same grants. The served tallies, by contrast, are updated
// inside the journaled lease apply and ride snapshots.

import (
	"strconv"

	"github.com/afrinet/observatory/internal/topology"
)

// CoverageTargets is the target share of served tasks per country and
// per ASN (decimal-string keys). Shares need not sum to 1; they are
// compared against served shares dimension by dimension. An empty map
// disables that dimension; the zero value disables the scheduler (every
// grant gets its full ask — naive FIFO).
type CoverageTargets struct {
	Country map[string]float64 `json:"country,omitempty"`
	ASN     map[string]float64 `json:"asn,omitempty"`
}

// enabled reports whether any dimension has targets.
func (t CoverageTargets) enabled() bool {
	return len(t.Country) > 0 || len(t.ASN) > 0
}

// CoverageFromTopology derives uniform targets from a topology: each AS
// gets an equal share, and a country's share is its share of the
// topology's ASes — the paper's "representative of the region's
// networks, not of where probes are easy to host" reading.
func CoverageFromTopology(t *topology.Topology) CoverageTargets {
	asns := t.ASNs()
	if len(asns) == 0 {
		return CoverageTargets{}
	}
	ct := CoverageTargets{
		Country: make(map[string]float64),
		ASN:     make(map[string]float64, len(asns)),
	}
	per := 1.0 / float64(len(asns))
	for _, a := range asns {
		ct.ASN[asnKey(a)] = per
		if as := t.ASes[a]; as != nil {
			ct.Country[as.Country] += per
		}
	}
	return ct
}

func asnKey(a topology.ASN) string {
	return strconv.FormatUint(uint64(a), 10)
}

// ConfigureCoverage installs (or, with the zero value, removes) the
// scheduler's targets. Config, not journaled: a durable deployment must
// recover with the same targets (DurabilityConfig.Coverage) for replay
// to grant the same leases.
func (c *Controller) ConfigureCoverage(t CoverageTargets) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.coverage = t
}

// allowanceLocked trims a grant's ask for an overrepresented vantage
// point: the combined allowance is the stricter of the country and ASN
// dimensions. With no targets installed the ask passes through
// untouched (naive FIFO).
func (c *Controller) allowanceLocked(p ProbeInfo, max int) int {
	if !c.coverage.enabled() || max <= 1 {
		return max
	}
	a := coverageAllowance(c.servedCountry, c.servedTotal, c.coverage.Country, p.Country, max)
	if b := coverageAllowance(c.servedASN, c.servedTotal, c.coverage.ASN, asnKey(p.ASN), max); b < a {
		a = b
	}
	return a
}

// coverageAllowance scales one dimension's ask by target/share when the
// class is over target. A class the targets give no weight at all is
// throttled hardest — to 1 per grant, never 0, so its queue still
// drains and requeued work cannot strand.
func coverageAllowance(served map[string]int64, total int64, targets map[string]float64, key string, max int) int {
	if len(targets) == 0 || total <= 0 || max <= 1 {
		return max
	}
	target := targets[key]
	if target <= 0 {
		return 1
	}
	share := float64(served[key]) / float64(total)
	if share <= target {
		return max
	}
	allowed := int(float64(max) * target / share)
	if allowed < 1 {
		allowed = 1
	}
	if allowed > max {
		allowed = max
	}
	return allowed
}

// recordServedLocked tallies a grant into the coverage book. Runs
// inside the journaled lease apply regardless of whether targets are
// installed, so turning the scheduler on later starts from an honest
// history and replay equivalence never depends on config.
func (c *Controller) recordServedLocked(p ProbeInfo, n int) {
	c.servedTotal += int64(n)
	c.servedCountry[p.Country] += int64(n)
	c.servedASN[asnKey(p.ASN)] += int64(n)
}

// CoverageSkew scores one dimension: total-variation distance between
// the served share distribution and the targets, in [0, 1]. Keys are
// the union of both maps; iteration is sorted so the float sum is
// deterministic.
func CoverageSkew(served map[string]int64, total int64, targets map[string]float64) float64 {
	if total <= 0 || len(targets) == 0 {
		return 0
	}
	keys := make(map[string]bool, len(served)+len(targets))
	for k := range served {
		keys[k] = true
	}
	for k := range targets {
		keys[k] = true
	}
	sum := 0.0
	for _, k := range sortedKeys(keys) {
		d := float64(served[k])/float64(total) - targets[k]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 2
}

// CoverageReport is the scheduler's self-assessment: served tallies per
// dimension plus the skew score against the installed targets (0 when
// no targets are installed).
type CoverageReport struct {
	ServedTotal int64            `json:"served_total"`
	Country     map[string]int64 `json:"country,omitempty"`
	ASN         map[string]int64 `json:"asn,omitempty"`
	Targets     CoverageTargets  `json:"targets,omitempty"`
	CountrySkew float64          `json:"country_skew"`
	ASNSkew     float64          `json:"asn_skew"`
}

// Coverage snapshots the scheduler's served tallies and skew scores.
func (c *Controller) Coverage() CoverageReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := CoverageReport{
		ServedTotal: c.servedTotal,
		Country:     make(map[string]int64, len(c.servedCountry)),
		ASN:         make(map[string]int64, len(c.servedASN)),
		Targets:     c.coverage,
	}
	for k, v := range c.servedCountry {
		rep.Country[k] = v
	}
	for k, v := range c.servedASN {
		rep.ASN[k] = v
	}
	rep.CountrySkew = CoverageSkew(rep.Country, rep.ServedTotal, c.coverage.Country)
	rep.ASNSkew = CoverageSkew(rep.ASN, rep.ServedTotal, c.coverage.ASN)
	return rep
}
