package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/faultinject"
	"github.com/afrinet/observatory/internal/probes"
)

// TestFaultInjectedPipelineEndToEnd runs the controller and a probe
// fleet through seeded drops, duplicate deliveries, injected 503s, a
// probe that crashes mid-lease, a probe that registers and is never
// heard from again, and a temporary partition of one live probe — and
// asserts every task completes exactly once, with the recovery paths
// observably exercised through the stats counters.
func TestFaultInjectedPipelineEndToEnd(t *testing.T) {
	ctrl := NewController("obs")
	ctrl.LeaseTTL = 2
	ctrl.SuspectAfter = 3
	ctrl.DeadAfter = 5
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	// The experimenter sits on a clean link; the probes do not.
	admin := NewClientSeeded(srv.URL, 99)

	type rig struct {
		agent *probes.Agent
		cl    *Client
		ft    *faultinject.Transport
	}
	var rigs []*rig
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("live-%02d", i)
		ft := faultinject.New(int64(100 + i))
		ft.DropRequestProb = 0.10
		ft.DropResponseProb = 0.15
		ft.DupProb = 0.25
		ft.ErrProb = 0.10
		ft.DelayProb = 0.10
		ft.Delay = time.Millisecond
		cl := NewClientSeeded(srv.URL, int64(i+1))
		cl.HTTP = &http.Client{Timeout: 5 * time.Second, Transport: ft}
		cl.MaxAttempts = 6
		cl.Sleep = func(time.Duration) {}
		if err := cl.Register(ProbeInfo{ID: id, ASN: 36924, Country: "RW", HasWired: true}); err != nil {
			t.Fatal(err)
		}
		rigs = append(rigs, &rig{
			agent: probes.NewAgent(probes.Config{ID: id, ASN: 36924, HasWired: true}, testNet, testDNS, testWeb),
			cl:    cl,
			ft:    ft,
		})
	}
	// crash-01 will lease tasks and die mid-lease; dead-01 registers and
	// is never heard from again. Both sit in the live probes' ASN so
	// their work can be reassigned.
	crashCl := NewClientSeeded(srv.URL, 50)
	crashCl.Sleep = func(time.Duration) {}
	for _, id := range []string{"crash-01", "dead-01"} {
		if err := admin.Register(ProbeInfo{ID: id, ASN: 36924, Country: "RW", HasWired: true}); err != nil {
			t.Fatal(err)
		}
	}

	target := testNet.RouterAddr(15169, 0).String()
	ids := []string{"live-00", "live-01", "live-02", "crash-01", "dead-01"}
	var asg []probes.Assignment
	for i := 0; i < 30; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: ids[i%len(ids)],
			Task:    probes.Task{Kind: probes.TaskPing, Target: target},
		})
	}
	exp, err := admin.Submit("obs", "fault drill", asg)
	if err != nil {
		t.Fatal(err)
	}

	// crash-01 leases its whole queue, then the process "dies" with the
	// results stranded on disk; it reboots only after the drill.
	crashTasks, err := crashCl.LeaseTasks("crash-01", 0)
	if err != nil || len(crashTasks) != 6 {
		t.Fatalf("crash lease: %d tasks, err=%v", len(crashTasks), err)
	}

	rounds := 0
	for ; rounds < 60 && !ctrl.Done(exp.ID); rounds++ {
		// Partition live-00 for a few rounds mid-run.
		if rounds == 5 {
			rigs[0].ft.SetPartitioned(true)
		}
		if rounds == 9 {
			rigs[0].ft.SetPartitioned(false)
		}
		for _, r := range rigs {
			// Fault-induced errors are the point; abandoned work is
			// recovered by lease expiry.
			_, _ = RunAgentOnce(r.cl, r.agent)
			_ = r.cl.Heartbeat(r.agent.ID())
		}
		ctrl.Tick(1)
	}
	if !ctrl.Done(exp.ID) {
		t.Fatalf("pipeline did not converge in %d rounds; stats=%+v", rounds, ctrl.Stats().Counters)
	}

	// crash-01 reboots and uploads its stranded results. Peers finished
	// those tasks long ago (the leases expired and were reassigned), so
	// every one of them must be absorbed by dedup, not double-counted.
	var stale []probes.Result
	for _, task := range crashTasks {
		stale = append(stale, probes.Result{TaskID: task.ID, Experiment: task.Experiment, OK: true})
	}
	if err := crashCl.SubmitResults("crash-01", stale); err != nil {
		t.Fatalf("stale upload rejected: %v", err)
	}

	// Exactly-once completion: every task has exactly one result.
	rs := ctrl.Results(exp.ID)
	if len(rs) != len(asg) {
		t.Fatalf("results = %d, want %d", len(rs), len(asg))
	}
	perTask := map[string]int{}
	for _, r := range rs {
		perTask[r.TaskID]++
	}
	if len(perTask) != len(asg) {
		t.Fatalf("distinct tasks with results = %d, want %d", len(perTask), len(asg))
	}
	for id, n := range perTask {
		if n != 1 {
			t.Fatalf("task %s recorded %d times", id, n)
		}
	}

	// The recovery machinery must have actually fired, and it must be
	// visible through the public stats endpoint.
	stats, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"leases_expired", "tasks_requeued", "tasks_reassigned"} {
		if stats.Counters[counter] == 0 {
			t.Fatalf("counter %s never fired; counters=%v", counter, stats.Counters)
		}
	}
	if got := stats.Counters["results_deduped"]; got < int64(len(crashTasks)) {
		t.Fatalf("results_deduped = %d, want >= %d (the stale upload)", got, len(crashTasks))
	}
	if got := stats.Counters["probes_revived"]; got < 1 {
		t.Fatalf("probes_revived = %d; the reboot went unnoticed", got)
	}
	if stats.Counters["results_recorded"] != int64(len(asg)) {
		t.Fatalf("results_recorded = %d, want %d", stats.Counters["results_recorded"], len(asg))
	}

	// Fleet health: dead-01 is still gone (degraded), crash-01 revived.
	hr, err := admin.Health()
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || hr.ProbesDead != 1 {
		t.Fatalf("health = %+v", hr)
	}
	// The faulty transports really did inject faults.
	injected := int64(0)
	for _, r := range rigs {
		for k, v := range r.ft.Stats() {
			if k != "passed" {
				injected += v
			}
		}
	}
	if injected == 0 {
		t.Fatal("no faults were injected; the drill tested nothing")
	}
}
