package core

// scheduler_test.go exercises the bias-aware lease scheduler: the
// per-dimension allowance rule, the TVD skew score, topology-derived
// targets, and the headline experiment — a skewed fleet served with
// coverage targets ends up measurably less biased than naive FIFO, on
// every seed.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

func TestCoverageAllowance(t *testing.T) {
	served := map[string]int64{"NG": 60, "KE": 10}
	targets := map[string]float64{"NG": 0.25, "KE": 0.25, "ZA": 0.25}
	cases := []struct {
		key  string
		max  int
		want int
	}{
		{"NG", 8, 3}, // share 0.6 vs target 0.25 → 8*0.25/0.6 = 3.33 → 3
		{"KE", 8, 8}, // share 0.1 under target → full ask
		{"ZA", 8, 8}, // never served → share 0 → full ask
		{"GH", 8, 1}, // no target weight → throttled to 1, never 0
		{"NG", 1, 1}, // max<=1 passes through (nothing to trim)
		{"NG", 0, 0}, // no-lease ask untouched
		{"NG", 100, 41},
	}
	for _, tc := range cases {
		if got := coverageAllowance(served, 100, targets, tc.key, tc.max); got != tc.want {
			t.Errorf("coverageAllowance(%q, max=%d) = %d, want %d", tc.key, tc.max, got, tc.want)
		}
	}
	// Disabled dimensions pass the ask through.
	if got := coverageAllowance(served, 100, nil, "NG", 8); got != 8 {
		t.Errorf("no targets: got %d, want 8", got)
	}
	if got := coverageAllowance(served, 0, targets, "NG", 8); got != 8 {
		t.Errorf("no history: got %d, want 8", got)
	}
}

// TestAllowanceCombinesDimensions: the grant takes the stricter of the
// country and ASN allowances.
func TestAllowanceCombinesDimensions(t *testing.T) {
	c := NewController()
	c.ConfigureCoverage(CoverageTargets{
		Country: map[string]float64{"NG": 0.5, "KE": 0.5},
		ASN:     map[string]float64{"100": 0.1, "200": 0.9},
	})
	c.mu.Lock()
	c.servedTotal = 100
	c.servedCountry = map[string]int64{"NG": 50} // exactly at target → full ask
	c.servedASN = map[string]int64{"100": 50}    // 5x over target → trimmed
	got := c.allowanceLocked(ProbeInfo{ID: "p", ASN: 100, Country: "NG"}, 10)
	c.mu.Unlock()
	if got != 2 { // 10 * 0.1/0.5
		t.Fatalf("combined allowance = %d, want 2 (ASN dimension is stricter)", got)
	}
}

func TestCoverageSkew(t *testing.T) {
	targets := map[string]float64{"NG": 0.5, "KE": 0.5}
	if got := CoverageSkew(map[string]int64{"NG": 5, "KE": 5}, 10, targets); got != 0 {
		t.Fatalf("balanced fleet skew = %v, want 0", got)
	}
	// All mass on NG: |1-0.5| + |0-0.5| = 1 → TVD 0.5.
	if got := CoverageSkew(map[string]int64{"NG": 10}, 10, targets); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("one-sided fleet skew = %v, want 0.5", got)
	}
	// Served mass entirely outside the target support → TVD 1.
	if got := CoverageSkew(map[string]int64{"ZA": 10}, 10, targets); math.Abs(got-1) > 1e-12 {
		t.Fatalf("misplaced fleet skew = %v, want 1", got)
	}
	if got := CoverageSkew(nil, 0, targets); got != 0 {
		t.Fatalf("empty history skew = %v, want 0", got)
	}
}

func TestCoverageFromTopology(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	ct := CoverageFromTopology(topo)
	if len(ct.ASN) != len(topo.ASNs()) {
		t.Fatalf("ASN targets cover %d of %d ASes", len(ct.ASN), len(topo.ASNs()))
	}
	var sumA, sumC float64
	for _, v := range ct.ASN {
		sumA += v
	}
	for _, v := range ct.Country {
		sumC += v
	}
	if math.Abs(sumA-1) > 1e-9 || math.Abs(sumC-1) > 1e-9 {
		t.Fatalf("target shares sum to %v (ASN) / %v (country), want 1", sumA, sumC)
	}
}

// TestBiasSchedulingReducesSkew is the satellite experiment in unit
// form (cmd/fleetsim -bias runs the same shape at scale): a fleet with
// 55% of probes crowded into one country, drained twice — naive FIFO vs
// uniform coverage targets. The scheduler must cut country skew on
// every seed.
func TestBiasSchedulingReducesSkew(t *testing.T) {
	countries := []string{"NG", "KE", "ZA", "GH", "SN", "TZ", "EG", "MA"}
	uniform := map[string]float64{}
	for _, cc := range countries {
		uniform[cc] = 1.0 / float64(len(countries))
	}
	for _, seed := range []int64{1, 2, 3} {
		naive := biasTrialSkew(t, seed, countries, CoverageTargets{})
		biased := biasTrialSkew(t, seed, countries, CoverageTargets{Country: uniform})
		t.Logf("seed %d: naive skew %.3f, biased skew %.3f", seed, naive, biased)
		if biased >= naive {
			t.Errorf("seed %d: coverage targets did not reduce skew (naive %.3f, biased %.3f)",
				seed, naive, biased)
		}
	}
}

// biasTrialSkew builds a skewed fleet (55% in countries[0]), feeds it
// rounds of work, drains with 4-task lease asks in seeded random visit
// order, and returns the final country skew against uniform shares.
func biasTrialSkew(t *testing.T, seed int64, countries []string, targets CoverageTargets) float64 {
	t.Helper()
	const nProbes, rounds, perWave, perLease = 120, 6, 3, 4
	rng := rand.New(rand.NewSource(seed))
	c := NewController("fleet")
	c.ConfigureCoverage(targets)
	ids := make([]string, nProbes)
	for i := range ids {
		cc := countries[0]
		if float64(i) >= 0.55*nProbes {
			cc = countries[1+rng.Intn(len(countries)-1)]
		}
		ids[i] = fmt.Sprintf("bp-%03d", i)
		if err := c.RegisterProbe(ProbeInfo{ID: ids[i], ASN: topology.ASN(36900 + i), Country: cc}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < rounds; round++ {
		var as []probes.Assignment
		for _, id := range ids {
			as = append(as, pingAssignments(id, perWave)...)
		}
		if _, err := c.SubmitExperiment("fleet", "bias wave", as); err != nil {
			t.Fatal(err)
		}
		for _, i := range rng.Perm(nProbes) {
			for _, task := range c.LeaseTasks(ids[i], perLease) {
				if _, err := c.SubmitResults(ids[i], []probes.Result{okResult(task)}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	uniform := map[string]float64{}
	for _, cc := range countries {
		uniform[cc] = 1.0 / float64(len(countries))
	}
	rep := c.Coverage()
	if rep.ServedTotal == 0 {
		t.Fatal("trial served nothing")
	}
	return CoverageSkew(rep.Country, rep.ServedTotal, uniform)
}
