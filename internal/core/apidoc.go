package core

// apidoc.go renders the v1 API reference from the route table's
// self-description. cmd/apidoc writes it to API.md; a conformance test
// fails when the committed file drifts from the table.

import (
	"fmt"
	"strings"
)

// APIDocMarkdown renders the full API.md content from the route table.
func APIDocMarkdown() string {
	var b strings.Builder
	b.WriteString(`# Observatory v1 API

<!-- Generated from the route table in internal/core/routes.go by
     go run ./cmd/apidoc > API.md — edit the table, not this file. -->

The controller (cmd/obsd) serves this API. Conventions shared by every
endpoint:

- **Request ids.** Send ` + "`X-Request-ID`" + ` to tag a request; the server
  echoes it (or mints one) on the response and in every error body, and
  request traces at ` + "`/api/v1/debug/traces`" + ` carry it, so client logs
  join against server traces offline.
- **Errors.** Every non-2xx response is the envelope
  ` + "`" + `{"error": {"code": "<machine_code>", "message": "...", "request_id": "..."}}` + "`" + `.
  Universal codes: ` + "`not_found`" + ` (no such route or resource),
  ` + "`method_not_allowed`" + ` (405, with an ` + "`Allow`" + ` header),
  ` + "`unavailable`" + ` (503 while the controller replays its journal after a
  restart — retry after the ` + "`Retry-After`" + ` delay), and ` + "`rate_limited`" + `
  (429 when admission control sheds the request under load, also with a
  ` + "`Retry-After`" + ` delay; low-priority routes shed first). Behind a
  federation coordinator (obsd ` + "`-shards`/`-coordinator`" + `) one more code
  appears: ` + "`shard_unavailable`" + ` (503 when the single shard owning the
  request's keyspace is down and not yet failed over — honor
  ` + "`Retry-After`" + `; every other shard keeps serving). Per-route codes
  are listed below.
- **Pagination.** List responses are ` + "`" + `{"items": [...], "next_cursor": "..."}` + "`" + `;
  ` + "`next_cursor`" + ` is omitted on the last page and is otherwise passed back
  as ` + "`?cursor=`" + `. (Clients still accept the pre-v1 bare-array shape for
  one release; see README.)
- **Body cap.** Request bodies over 8 MiB are rejected with 413
  (` + "`body_too_large`" + `).

`)
	for _, rt := range APIRoutes() {
		fmt.Fprintf(&b, "## %s %s\n\n", rt.Method, rt.Pattern)
		fmt.Fprintf(&b, "%s\n\n", rt.Summary)
		fmt.Fprintf(&b, "- Route name (metrics/traces tag): `%s`\n", rt.Name)
		fmt.Fprintf(&b, "- Admission priority: %s\n", rt.Priority)
		if rt.Request != "" {
			fmt.Fprintf(&b, "- Request body: %s\n", rt.Request)
		}
		fmt.Fprintf(&b, "- Response: %s\n", rt.Response)
		for _, q := range rt.Query {
			fmt.Fprintf(&b, "- Query `%s`: %s\n", q[0], q[1])
		}
		if len(rt.Errors) > 0 {
			codes := make([]string, len(rt.Errors))
			for i, c := range rt.Errors {
				codes[i] = "`" + c + "`"
			}
			fmt.Fprintf(&b, "- Error codes: %s\n", strings.Join(codes, ", "))
		}
		b.WriteString("\n")
	}
	return b.String()
}
