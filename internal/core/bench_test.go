package core

// Microbenchmarks for the probe hot path, run against a fully durable
// controller (journal + fsync per mutation) so the numbers include the
// cost the batched sync endpoint exists to amortize. scripts/bench.sh
// folds them into the bench JSON next to the fleetsim load numbers.

import (
	"fmt"
	"testing"

	"github.com/afrinet/observatory/internal/probes"
)

func benchController(b *testing.B) *Controller {
	b.Helper()
	c, err := Recover(b.TempDir(), DurabilityConfig{
		Trusted:  []string{"bench"},
		LeaseTTL: 1 << 30, // never expire mid-benchmark
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.RegisterProbe(ProbeInfo{ID: "bench-probe", ASN: 36924, Country: "RW"}); err != nil {
		b.Fatal(err)
	}
	return c
}

// benchEnqueue queues n tasks on the probe through a trusted
// (auto-approved) submission and returns them.
func benchEnqueue(b *testing.B, c *Controller, n int) []probes.Task {
	b.Helper()
	as := make([]probes.Assignment, n)
	for i := range as {
		as[i] = probes.Assignment{
			ProbeID: "bench-probe",
			Task:    probes.Task{Kind: probes.TaskPing, Target: "10.0.0.1"},
		}
	}
	exp, err := c.SubmitExperiment("bench", "bench workload", as)
	if err != nil {
		b.Fatal(err)
	}
	ts := make([]probes.Task, len(exp.Assignments))
	for i, a := range exp.Assignments {
		ts[i] = a.Task
	}
	return ts
}

func benchResults(ts []probes.Task) []probes.Result {
	rs := make([]probes.Result, len(ts))
	for i, t := range ts {
		rs[i] = probes.Result{TaskID: t.ID, Experiment: t.Experiment, Kind: t.Kind, OK: true, RTTms: 42}
	}
	return rs
}

// BenchmarkLease is one journaled single-task lease grant per op — the
// unbatched path's per-poll cost.
func BenchmarkLease(b *testing.B) {
	c := benchController(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			b.StopTimer()
			benchEnqueue(b, c, 1024)
			b.StartTimer()
		}
		if got := c.LeaseTasks("bench-probe", 1); len(got) != 1 {
			b.Fatalf("leased %d tasks, want 1", len(got))
		}
	}
}

// BenchmarkSubmitResultsBatch is one journaled 64-result upload per op
// — the unbatched path's delivery cost, already amortized over a batch
// body but still a round-trip separate from lease and heartbeat.
func BenchmarkSubmitResultsBatch(b *testing.B) {
	const batch = 64
	c := benchController(b)
	var tasks []probes.Task
	next := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next+batch > len(tasks) {
			b.StopTimer()
			tasks = append(tasks[next:], benchEnqueue(b, c, batch*128)...)
			next = 0
			b.StartTimer()
		}
		rs := benchResults(tasks[next : next+batch])
		next += batch
		accepted, err := c.SubmitResults("bench-probe", rs)
		if err != nil {
			b.Fatal(err)
		}
		if accepted != batch {
			b.Fatalf("accepted %d, want %d", accepted, batch)
		}
	}
}

// BenchmarkSync is one full batched round per op: the previous round's
// 16 results plus a 16-task lease ask, one journal append and one fsync
// for the lot.
func BenchmarkSync(b *testing.B) {
	const round = 16
	c := benchController(b)
	benchEnqueue(b, c, 4096)
	resp, err := c.SyncProbe("bench-probe", nil, round)
	if err != nil {
		b.Fatal(err)
	}
	outbox := benchResults(resp.Tasks)
	queued := 4096 - len(resp.Tasks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if queued < round {
			b.StopTimer()
			benchEnqueue(b, c, 4096)
			queued += 4096
			b.StartTimer()
		}
		resp, err := c.SyncProbe("bench-probe", outbox, round)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Accepted != len(outbox) {
			b.Fatal(fmt.Errorf("accepted %d of %d", resp.Accepted, len(outbox)))
		}
		queued -= len(resp.Tasks)
		outbox = benchResults(resp.Tasks)
	}
}
