// Package core is the observatory's control plane — the paper's primary
// contribution (Section 7). The controller registers probes, vets and
// schedules experiments, and collects results; probe placement is
// purpose-driven (greedy IXP set cover plus mobile-carrier coverage)
// and measurement targets are chosen to surface the components global
// platforms miss: exchange fabrics, DNS resolvers, content off-nets, and
// subsea-cable crossings.
//
// The controller speaks an HTTP/JSON protocol (see http.go) so probes
// can run as separate processes; it is equally usable in-process.
//
// # At-least-once task pipeline
//
// Probes run behind intermittent grid power and flaky metered links
// (Section 7.1), so the task pipeline assumes every RPC can be lost,
// delayed, or delivered twice:
//
//   - LeaseTasks hands out tasks under a lease that expires after
//     LeaseTTL controller ticks. Time is a logical tick counter
//     advanced by Tick (cmd/obsd drives it from a wall-clock timer;
//     tests drive it directly), keeping every run deterministic.
//   - Tick reaps expired leases: a task whose lease lapsed without a
//     recorded result is requeued for redelivery.
//   - SubmitResults is idempotent: results are deduplicated by
//     (experiment, task) so redelivered or duplicated uploads can
//     never double-count toward Done.
//   - Every probe RPC doubles as a heartbeat; Heartbeat is the
//     explicit no-work variant. A probe that stays silent transitions
//     alive → suspect → dead on the tick clock, and a dead probe's
//     queue is reassigned to an alive peer in the same ASN (failing
//     that, the same country) when one exists.
//
// Pipeline events are counted in a metrics.CounterSet exposed via
// Stats and the /api/v1/stats endpoint.
//
// # Durability
//
// With a data directory the controller is crash-safe: every mutating
// operation is appended to a checksummed write-ahead journal
// (internal/journal) and fsynced before it is applied or acknowledged,
// periodic snapshots compact the journal, and Recover rebuilds exact
// state by replaying journaled op inputs through the same apply
// functions the live path uses. See durability.go and the Durability
// section of DESIGN.md.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/afrinet/observatory/internal/journal"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/topology"
)

// ProbeInfo is a registered vantage point.
type ProbeInfo struct {
	ID       string       `json:"id"`
	ASN      topology.ASN `json:"asn"`
	Country  string       `json:"country"`
	HasWired bool         `json:"has_wired"`
	// Kind distinguishes hardware probes from proxy/VPN vantages.
	Kind string `json:"kind,omitempty"`
}

// ProbeHealth is the controller's liveness verdict for a probe.
type ProbeHealth string

const (
	ProbeAlive   ProbeHealth = "alive"
	ProbeSuspect ProbeHealth = "suspect"
	ProbeDead    ProbeHealth = "dead"
)

// ProbeStatus is a probe's registration plus its liveness state, as
// reported by /api/v1/stats.
type ProbeStatus struct {
	ProbeInfo
	Health   ProbeHealth `json:"health"`
	LastSeen int64       `json:"last_seen_tick"`
	Queued   int         `json:"queued"`
	Leased   int         `json:"leased"`
}

// ExperimentStatus is the vetting/progress state.
type ExperimentStatus string

const (
	StatusPending  ExperimentStatus = "pending-review"
	StatusApproved ExperimentStatus = "approved"
	StatusRejected ExperimentStatus = "rejected"
)

// Experiment is a vetted batch of measurement assignments. Flexible
// measurements require review (Section 7.1): experiments from the
// trusted cohort are auto-approved; everything else waits.
type Experiment struct {
	ID          string              `json:"id"`
	Owner       string              `json:"owner"`
	Description string              `json:"description"`
	Status      ExperimentStatus    `json:"status"`
	Assignments []probes.Assignment `json:"assignments"`
}

// probeState is the controller's book on one registered probe.
type probeState struct {
	info     ProbeInfo
	lastSeen int64
	health   ProbeHealth
}

// leaseRec is one outstanding task lease.
type leaseRec struct {
	task     probes.Task
	probeID  string
	deadline int64 // tick at which the lease expires
}

// HealthReport is the /api/v1/health summary.
type HealthReport struct {
	Status            string `json:"status"` // "ok" or "degraded"
	Tick              int64  `json:"tick"`
	ProbesAlive       int    `json:"probes_alive"`
	ProbesSuspect     int    `json:"probes_suspect"`
	ProbesDead        int    `json:"probes_dead"`
	QueuedTasks       int    `json:"queued_tasks"`
	OutstandingLeases int    `json:"outstanding_leases"`
}

// StatsReport is the /api/v1/stats payload: pipeline counters plus
// per-probe liveness. Durability carries the journal-layer counters
// (journal_records_appended, snapshots_written, recovery_replayed,
// recovery_truncated_tail, ...) and Store the results-store counters
// (store_frames_appended, segments_flushed, segments_compacted,
// frames_expired, queries_served, ...); Admission the load-shedding
// counters (requests_shed and its breakdowns). All three are scoped to
// the current process run rather than journaled, so recovery
// equivalence is defined over everything except these fields.
type StatsReport struct {
	Tick              int64            `json:"tick"`
	Counters          map[string]int64 `json:"counters"`
	Durability        map[string]int64 `json:"durability,omitempty"`
	Store             map[string]int64 `json:"store,omitempty"`
	Admission         map[string]int64 `json:"admission,omitempty"`
	Experiments       int              `json:"experiments"`
	QueuedTasks       int              `json:"queued_tasks"`
	OutstandingLeases int              `json:"outstanding_leases"`
	Probes            []ProbeStatus    `json:"probes"`
}

// Controller is the observatory control plane.
//
// The lease/liveness knobs (LeaseTTL, SuspectAfter, DeadAfter) are in
// controller ticks and must be set before traffic is served; the
// NewController defaults suit cmd/obsd's one-tick-per-sweep cadence.
type Controller struct {
	mu          sync.Mutex
	probes      map[string]*probeState
	experiments map[string]*Experiment
	queues      map[string][]probes.Task // per-probe pending tasks
	// taskIDs indexes each experiment's valid task IDs; recorded marks
	// the ones that already have a result (the dedup set).
	taskIDs   map[string]map[string]bool
	recorded  map[string]map[string]bool
	leases    map[string]*leaseRec // keyed by experiment+"/"+task id
	trusted   map[string]bool
	stats     *metrics.CounterSet
	now       int64
	nextExpID int
	// submitIDs dedups experiment submissions by client request id, so
	// a retried Submit whose first delivery landed returns the existing
	// experiment instead of creating a duplicate.
	submitIDs map[string]string

	// waiters holds the long-poll parking lot (sync.go): per-probe
	// channels closed when tasks land on that probe's queue. Run-scoped
	// request state — never journaled, always empty during replay.
	waiters map[string][]chan struct{}

	// Bias-aware scheduler state (scheduler.go): coverage is the target
	// share per country/ASN (config, like LeaseTTL), the served* tallies
	// count granted tasks per dimension. The tallies are updated inside
	// the journaled lease apply, so they are snapshot state.
	coverage      CoverageTargets
	servedCountry map[string]int64
	servedASN     map[string]int64
	servedTotal   int64

	// Durability (see durability.go): log is the attached write-ahead
	// journal (nil for in-memory controllers and during replay), dur
	// counts journal-layer events, and snapEvery/sinceSnap drive
	// automatic compacted snapshots.
	log       *journal.Log
	dur       *metrics.CounterSet
	snapEvery int
	sinceSnap int

	// Observability (see observability.go): reg collects the latency
	// histograms and counter sources served by /metrics; ring retains
	// finished request traces for /api/v1/debug/traces; span is the
	// active request's span (guarded by mu — the ctx mutator variants
	// set it, mutateLocked and the journal sync hook nest under it);
	// mutHist/hAppend/hFsync/hSnapshot cache hot-path histogram
	// pointers so observing a latency is lock-free.
	reg       *obs.Registry
	ring      *obs.TraceRing
	span      *obs.Span
	mutHist   map[string]*obs.Histogram
	hAppend   *obs.Histogram
	hFsync    *obs.Histogram
	hSnapshot *obs.Histogram

	// adm is the admission-control layer (see admission.go): per-route
	// token buckets plus the bounded in-flight gate, evaluated by the
	// router before each handler. Run-scoped like dur and the store
	// counters — never journaled, never part of recovery equivalence.
	adm *admission

	// store holds result payloads (internal/store). The WAL keeps only
	// the dedup/lease bookkeeping for results; the payloads live here,
	// so journal replay and snapshots stay small no matter how many
	// results accumulate. In-memory controllers get a memory-backed
	// store; Recover attaches a disk-backed one.
	store *store.Store

	// LeaseTTL is how many ticks a probe has to return a leased task's
	// result before the task is requeued.
	LeaseTTL int64
	// SuspectAfter / DeadAfter are how many silent ticks move a probe
	// to suspect / dead.
	SuspectAfter int64
	DeadAfter    int64
	// SlowRequest is the request-duration threshold above which the
	// HTTP router emits one structured slow-request log line; <= 0
	// disables the logging. Set before Handler is called.
	SlowRequest time.Duration
}

// NewController creates an empty control plane with the given trusted
// experimenter cohort.
func NewController(trusted ...string) *Controller {
	c := &Controller{
		probes:        make(map[string]*probeState),
		experiments:   make(map[string]*Experiment),
		queues:        make(map[string][]probes.Task),
		taskIDs:       make(map[string]map[string]bool),
		recorded:      make(map[string]map[string]bool),
		leases:        make(map[string]*leaseRec),
		trusted:       make(map[string]bool),
		stats:         metrics.NewCounterSet(),
		submitIDs:     make(map[string]string),
		waiters:       make(map[string][]chan struct{}),
		servedCountry: make(map[string]int64),
		servedASN:     make(map[string]int64),
		dur:           metrics.NewCounterSet(),
		adm:           newAdmission(),
		LeaseTTL:      3,
		SuspectAfter:  2,
		DeadAfter:     5,
	}
	c.initObs()
	c.store = store.NewMemory(store.Options{Obs: c.reg})
	for _, t := range trusted {
		c.trusted[t] = true
	}
	return c
}

// RegisterProbe adds or updates a vantage point. Registration counts as
// probe contact.
func (c *Controller) RegisterProbe(p ProbeInfo) error {
	return c.registerProbeCtx(context.Background(), p)
}

// registerProbeCtx is RegisterProbe carrying the request span (if any)
// into the mutation for tracing.
func (c *Controller) registerProbeCtx(ctx context.Context, p ProbeInfo) error {
	if p.ID == "" {
		return fmt.Errorf("core: probe id required")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	return c.mutateLocked(opRegister, p, func() { c.applyRegisterLocked(p) })
}

func (c *Controller) applyRegisterLocked(p ProbeInfo) {
	st, ok := c.probes[p.ID]
	if !ok {
		st = &probeState{}
		c.probes[p.ID] = st
	}
	st.info = p
	c.touchLocked(st)
}

// touchLocked records probe contact at the current tick, reviving dead
// probes.
func (c *Controller) touchLocked(st *probeState) {
	st.lastSeen = c.now
	if st.health == ProbeDead {
		c.stats.Inc("probes_revived")
	}
	st.health = ProbeAlive
}

// Probes lists registered probes sorted by id.
func (c *Controller) Probes() []ProbeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ProbeInfo, 0, len(c.probes))
	for _, st := range c.probes {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Heartbeat records contact from a probe that has no lease or result
// traffic to piggyback on. Unknown probes are rejected so the fleet
// view stays authoritative.
func (c *Controller) Heartbeat(probeID string) error {
	return c.heartbeatCtx(context.Background(), probeID)
}

func (c *Controller) heartbeatCtx(ctx context.Context, probeID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.probes[probeID]; !ok {
		return fmt.Errorf("core: unknown probe %s", probeID)
	}
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	return c.mutateLocked(opHeartbeat, probeOp{ProbeID: probeID}, func() { c.applyHeartbeatLocked(probeID) })
}

func (c *Controller) applyHeartbeatLocked(probeID string) {
	if st, ok := c.probes[probeID]; ok {
		c.touchLocked(st)
		c.stats.Inc("heartbeats")
	}
}

// ProbeHealthOf reports the controller's liveness verdict for a probe.
func (c *Controller) ProbeHealthOf(probeID string) (ProbeHealth, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.probes[probeID]
	if !ok {
		return "", false
	}
	return st.health, true
}

// Tick advances the controller's logical clock by n ticks, sweeping
// liveness and reaping expired leases after each. cmd/obsd calls it
// from a timer; tests call it directly, so runs stay deterministic.
func (c *Controller) Tick(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	// An unjournaled tick must not advance the clock; the error is
	// dropped (Tick has no error path) but counted in the durability
	// counters by the append.
	_ = c.mutateLocked(opTick, tickOp{N: n}, func() { c.applyTickLocked(n) })
	c.mu.Unlock()
	// Token buckets ride the logical clock but outside the journaled
	// apply: admission is run-scoped, and replaying ticks at recovery
	// must not grant tokens.
	c.adm.refill(n)
}

func (c *Controller) applyTickLocked(n int) {
	for i := 0; i < n; i++ {
		c.now++
		c.sweepLivenessLocked()
		c.reapLocked()
	}
}

// Now returns the controller's current tick.
func (c *Controller) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// sweepLivenessLocked updates probe health from ticks-since-contact and
// reassigns the queues of probes that just died.
func (c *Controller) sweepLivenessLocked() {
	ids := make([]string, 0, len(c.probes))
	for id := range c.probes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := c.probes[id]
		idle := c.now - st.lastSeen
		switch {
		case idle >= c.DeadAfter:
			if st.health != ProbeDead {
				st.health = ProbeDead
				c.stats.Inc("probes_dead")
			}
			// Reassign on every sweep, not just on the dead
			// transition: tasks can be enqueued to a probe that is
			// already dead (experiment approved after the probe
			// stopped reporting), and a queue left in place for
			// lack of an eligible peer should move as soon as one
			// appears.
			c.reassignQueueLocked(id)
		case idle >= c.SuspectAfter:
			if st.health == ProbeAlive {
				st.health = ProbeSuspect
				c.stats.Inc("probes_suspect")
			}
		}
	}
}

// reassignQueueLocked moves a dead probe's pending queue onto an alive
// peer: same ASN preferred, then same country. With no eligible peer
// the queue stays put in case the probe revives.
func (c *Controller) reassignQueueLocked(deadID string) {
	q := c.queues[deadID]
	if len(q) == 0 {
		return
	}
	dead := c.probes[deadID]
	peer := c.pickPeerLocked(deadID, func(p ProbeInfo) bool { return p.ASN == dead.info.ASN })
	if peer == "" {
		peer = c.pickPeerLocked(deadID, func(p ProbeInfo) bool { return p.Country == dead.info.Country })
	}
	if peer == "" {
		return
	}
	c.queues[peer] = append(c.queues[peer], q...)
	c.queues[deadID] = nil
	c.stats.Add("tasks_reassigned", int64(len(q)))
	c.notifyWaitersLocked(peer)
}

// pickPeerLocked returns the best reassignment target (other than
// exclude) matching the predicate: alive probes beat suspect ones
// (dead ones are ineligible), ties broken by id for determinism.
func (c *Controller) pickPeerLocked(exclude string, match func(ProbeInfo) bool) string {
	var alive, suspect []string
	for id, st := range c.probes {
		if id == exclude || st.health == ProbeDead || !match(st.info) {
			continue
		}
		if st.health == ProbeAlive {
			alive = append(alive, id)
		} else {
			suspect = append(suspect, id)
		}
	}
	if len(alive) > 0 {
		sort.Strings(alive)
		return alive[0]
	}
	if len(suspect) > 0 {
		sort.Strings(suspect)
		return suspect[0]
	}
	return ""
}

// reapLocked requeues tasks whose lease expired without a result.
func (c *Controller) reapLocked() {
	keys := make([]string, 0, len(c.leases))
	for k, l := range c.leases {
		if l.deadline <= c.now {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := c.leases[k]
		delete(c.leases, k)
		c.stats.Inc("leases_expired")
		if c.recorded[l.task.Experiment][l.task.ID] {
			continue // completed while the lease record lingered
		}
		target := l.probeID
		if st, ok := c.probes[target]; ok && st.health == ProbeDead {
			// The holder is gone; requeueing onto it would stall until
			// revival, so route through the reassignment policy.
			if peer := c.pickPeerLocked(target, func(p ProbeInfo) bool { return p.ASN == st.info.ASN }); peer != "" {
				target = peer
			} else if peer := c.pickPeerLocked(target, func(p ProbeInfo) bool { return p.Country == st.info.Country }); peer != "" {
				target = peer
			}
		}
		c.queues[target] = append(c.queues[target], l.task)
		c.stats.Inc("tasks_requeued")
		c.notifyWaitersLocked(target)
	}
}

// SubmitExperiment queues an experiment for vetting. Trusted owners are
// approved (and scheduled) immediately.
func (c *Controller) SubmitExperiment(owner, description string, assignments []probes.Assignment) (*Experiment, error) {
	return c.SubmitExperimentIdem("", owner, description, assignments)
}

// SubmitExperimentIdem is SubmitExperiment with submission-level
// idempotency: when requestID is non-empty and has been seen before,
// the previously created experiment is returned instead of a new one.
// This is what makes the HTTP client's Submit retryable — a duplicated
// delivery cannot double the workload.
func (c *Controller) SubmitExperimentIdem(requestID, owner, description string, assignments []probes.Assignment) (*Experiment, error) {
	return c.submitExperimentIdemCtx(context.Background(), requestID, "", owner, description, assignments)
}

// SubmitExperimentWithID is SubmitExperimentIdem with a caller-chosen
// experiment id instead of a minted exp-%04d one. The federation
// coordinator uses it to create the same federated experiment id on
// every shard owning a slice of the assignments, so cross-shard results
// merge under one id. Resubmitting an existing id with a fresh request
// id is rejected; the idempotent path is the request id, as for Submit.
func (c *Controller) SubmitExperimentWithID(requestID, expID, owner, description string, assignments []probes.Assignment) (*Experiment, error) {
	return c.submitExperimentIdemCtx(context.Background(), requestID, expID, owner, description, assignments)
}

func (c *Controller) submitExperimentIdemCtx(ctx context.Context, requestID, expID, owner, description string, assignments []probes.Assignment) (*Experiment, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("core: experiment has no assignments")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	if requestID != "" {
		if prevID, ok := c.submitIDs[requestID]; ok {
			c.dur.Inc("submits_deduped")
			return cloneExp(c.experiments[prevID]), nil
		}
	}
	if expID != "" {
		if _, exists := c.experiments[expID]; exists {
			return nil, fmt.Errorf("core: experiment id %s already exists", expID)
		}
	}
	op := submitOp{RequestID: requestID, Owner: owner, Description: description, Assignments: assignments, ExpID: expID}
	var exp *Experiment
	if err := c.mutateLocked(opSubmit, op, func() { exp = c.applySubmitLocked(op) }); err != nil {
		return nil, err
	}
	return cloneExp(exp), nil
}

func (c *Controller) applySubmitLocked(op submitOp) *Experiment {
	id := op.ExpID
	if id == "" {
		c.nextExpID++
		id = fmt.Sprintf("exp-%04d", c.nextExpID)
	}
	exp := &Experiment{
		ID:          id,
		Owner:       op.Owner,
		Description: op.Description,
		Status:      StatusPending,
		Assignments: op.Assignments,
	}
	ids := make(map[string]bool, len(exp.Assignments))
	for i := range exp.Assignments {
		exp.Assignments[i].Task.Experiment = exp.ID
		if exp.Assignments[i].Task.ID == "" {
			exp.Assignments[i].Task.ID = fmt.Sprintf("%s-t%04d", exp.ID, i)
		}
		ids[exp.Assignments[i].Task.ID] = true
	}
	c.experiments[exp.ID] = exp
	c.taskIDs[exp.ID] = ids
	c.recorded[exp.ID] = make(map[string]bool)
	if op.RequestID != "" {
		c.submitIDs[op.RequestID] = exp.ID
	}
	if c.trusted[op.Owner] {
		c.approveLocked(exp)
	}
	return exp
}

// Approve moves a pending experiment to approved and schedules its tasks.
func (c *Controller) Approve(expID string) error {
	return c.approveCtx(context.Background(), expID)
}

func (c *Controller) approveCtx(ctx context.Context, expID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	exp, ok := c.experiments[expID]
	if !ok {
		return fmt.Errorf("core: unknown experiment %s", expID)
	}
	if exp.Status == StatusApproved {
		return nil
	}
	if exp.Status == StatusRejected {
		return fmt.Errorf("core: experiment %s was rejected", expID)
	}
	return c.mutateLocked(opApprove, expOp{ExpID: expID}, func() { c.applyApproveLocked(expID) })
}

func (c *Controller) applyApproveLocked(expID string) {
	if exp, ok := c.experiments[expID]; ok && exp.Status == StatusPending {
		c.approveLocked(exp)
	}
}

// Reject marks a pending experiment rejected.
func (c *Controller) Reject(expID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[expID]
	if !ok {
		return fmt.Errorf("core: unknown experiment %s", expID)
	}
	if exp.Status == StatusApproved {
		return fmt.Errorf("core: experiment %s already approved", expID)
	}
	if exp.Status == StatusRejected {
		return nil // idempotent, nothing to journal
	}
	return c.mutateLocked(opReject, expOp{ExpID: expID}, func() { c.applyRejectLocked(expID) })
}

func (c *Controller) applyRejectLocked(expID string) {
	if exp, ok := c.experiments[expID]; ok && exp.Status != StatusApproved {
		exp.Status = StatusRejected
	}
}

func (c *Controller) approveLocked(exp *Experiment) {
	exp.Status = StatusApproved
	for _, a := range exp.Assignments {
		c.queues[a.ProbeID] = append(c.queues[a.ProbeID], a.Task)
		c.notifyWaitersLocked(a.ProbeID)
	}
}

// Experiment returns a copy of the experiment's state.
func (c *Controller) Experiment(id string) (*Experiment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[id]
	if !ok {
		return nil, false
	}
	return cloneExp(exp), true
}

func cloneExp(e *Experiment) *Experiment {
	cp := *e
	cp.Assignments = append([]probes.Assignment(nil), e.Assignments...)
	return &cp
}

// LeaseTasks pops up to max tasks from a probe's queue under a lease of
// LeaseTTL ticks. Tasks that already completed elsewhere (a requeued
// copy racing its original delivery) are dropped instead of re-leased.
// The call counts as probe contact. A lease the journal refuses to
// record is not granted (nil): an unjournaled lease would be invisible
// after a crash and its tasks stuck until a replayed expiry that never
// comes.
func (c *Controller) LeaseTasks(probeID string, max int) []probes.Task {
	return c.leaseTasksCtx(context.Background(), probeID, max)
}

func (c *Controller) leaseTasksCtx(ctx context.Context, probeID string, max int) []probes.Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	var lease []probes.Task
	if err := c.mutateLocked(opLease, leaseOp{ProbeID: probeID, Max: max}, func() {
		lease = c.applyLeaseLocked(probeID, max)
	}); err != nil {
		return nil
	}
	return lease
}

func (c *Controller) applyLeaseLocked(probeID string, max int) []probes.Task {
	if st, ok := c.probes[probeID]; ok {
		c.touchLocked(st)
	}
	return c.grantLocked(probeID, max)
}

// grantLocked is the queue-pop half of a lease, shared by the plain
// lease apply and the batched sync apply: pop up to max tasks (after
// the coverage allowance in scheduler.go trims the ask for
// overrepresented vantage points), drop copies that completed
// elsewhere, and record the grant in the lease table and the
// served-coverage tallies.
func (c *Controller) grantLocked(probeID string, max int) []probes.Task {
	q := c.queues[probeID]
	if max <= 0 || max > len(q) {
		max = len(q)
	}
	if st, ok := c.probes[probeID]; ok {
		max = c.allowanceLocked(st.info, max)
	}
	lease := make([]probes.Task, 0, max)
	taken := 0
	for _, t := range q {
		if taken == max {
			break
		}
		taken++
		if c.recorded[t.Experiment][t.ID] {
			c.stats.Inc("tasks_dropped_completed")
			continue
		}
		lease = append(lease, t)
		c.leases[leaseKey(t)] = &leaseRec{task: t, probeID: probeID, deadline: c.now + c.LeaseTTL}
	}
	c.queues[probeID] = q[taken:]
	c.stats.Add("tasks_leased", int64(len(lease)))
	if len(lease) > 0 {
		if st, ok := c.probes[probeID]; ok {
			c.recordServedLocked(st.info, len(lease))
		}
	}
	return lease
}

func leaseKey(t probes.Task) string { return t.Experiment + "/" + t.ID }

// PendingFor reports how many tasks a probe still has queued.
func (c *Controller) PendingFor(probeID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queues[probeID])
}

// OutstandingLeases reports how many leased tasks await results.
func (c *Controller) OutstandingLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// SubmitResults records a batch of task results idempotently. The whole
// batch is validated first — an unregistered probe, unknown experiment,
// or unknown task ID rejects it without recording anything — then each
// result is recorded at most once per (experiment, task): redelivered
// duplicates are counted and dropped, so retrying an upload is always
// safe. It returns how many results were newly recorded.
//
// Payloads go to the results store (stamped with the submitting probe's
// country/ASN and the current tick) before the dedup refs are
// journaled; the WAL carries only (experiment, task) bookkeeping. A
// crash between the two leaves an unacknowledged payload in the store,
// which read-time dedup collapses when the retry lands.
func (c *Controller) SubmitResults(probeID string, rs []probes.Result) (int, error) {
	return c.submitResultsCtx(context.Background(), probeID, rs)
}

func (c *Controller) submitResultsCtx(ctx context.Context, probeID string, rs []probes.Result) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	st, ok := c.probes[probeID]
	if !ok {
		c.stats.Inc("results_rejected")
		return 0, fmt.Errorf("core: unknown probe %s", probeID)
	}
	for _, r := range rs {
		ids, ok := c.taskIDs[r.Experiment]
		if !ok {
			c.stats.Inc("results_rejected")
			return 0, fmt.Errorf("core: unknown experiment %q in result for task %q", r.Experiment, r.TaskID)
		}
		if !ids[r.TaskID] {
			c.stats.Inc("results_rejected")
			return 0, fmt.Errorf("core: unknown task %q in experiment %s", r.TaskID, r.Experiment)
		}
	}
	refs := make([]resultRef, 0, len(rs))
	var fresh []store.Record
	batch := make(map[string]bool, len(rs))
	for _, r := range rs {
		refs = append(refs, resultRef{Experiment: r.Experiment, TaskID: r.TaskID})
		key := r.Experiment + "/" + r.TaskID
		if c.recorded[r.Experiment][r.TaskID] || batch[key] {
			continue // a replayed duplicate; nothing new to store
		}
		batch[key] = true
		r.ProbeID = probeID
		fresh = append(fresh, store.Record{
			Experiment: r.Experiment,
			TaskID:     r.TaskID,
			ProbeID:    probeID,
			Tick:       c.now,
			Country:    st.info.Country,
			ASN:        st.info.ASN,
			Result:     r,
		})
	}
	storeSpan := c.span.Child("store.append")
	err := c.store.Append(fresh...)
	storeSpan.End()
	if err != nil {
		c.dur.Inc("store_append_errors")
		return 0, fmt.Errorf("core: results store: %w", err)
	}
	accepted := 0
	if err := c.mutateLocked(opResults, resultsOp{ProbeID: probeID, Refs: refs}, func() {
		accepted = c.applyResultsLocked(probeID, refs)
	}); err != nil {
		return 0, err
	}
	return accepted, nil
}

// applyResultsLocked applies the journaled bookkeeping half of a result
// batch: dedup, lease clearing, and counters. Payloads are not touched —
// the live path stored them before journaling, and replay finds them
// already in the store.
func (c *Controller) applyResultsLocked(probeID string, refs []resultRef) int {
	if st, ok := c.probes[probeID]; ok {
		c.touchLocked(st)
	}
	return c.recordRefsLocked(refs)
}

// recordRefsLocked is the dedup/lease-clearing half of a result batch,
// shared by the plain results apply and the batched sync apply.
func (c *Controller) recordRefsLocked(refs []resultRef) int {
	accepted := 0
	for _, ref := range refs {
		if c.recorded[ref.Experiment] == nil || c.recorded[ref.Experiment][ref.TaskID] {
			c.stats.Inc("results_deduped")
			continue
		}
		c.recorded[ref.Experiment][ref.TaskID] = true
		delete(c.leases, ref.Experiment+"/"+ref.TaskID)
		c.stats.Inc("results_recorded")
		accepted++
	}
	return accepted
}

// Results returns the collected results of one experiment, served from
// the results store without touching the controller lock — result reads
// scale independently of the control plane's write path.
func (c *Controller) Results(expID string) []probes.Result {
	rs, _, err := c.ResultsPage(expID, 0, "")
	if err != nil {
		return nil
	}
	return rs
}

// ResultsPage returns up to limit results of one experiment starting
// after cursor (both from a previous page; "" starts over, limit <= 0
// means everything). Cursors are store sequence positions: stable across
// flushes, compaction, and restarts.
func (c *Controller) ResultsPage(expID string, limit int, cursor string) ([]probes.Result, string, error) {
	recs, next, err := c.store.ScanPage(store.Filter{Experiment: expID}, limit, cursor)
	if err != nil {
		return nil, "", err
	}
	var out []probes.Result
	for _, r := range recs {
		out = append(out, r.Result)
	}
	return out, next, nil
}

// ScanResults pages through stored result records matching a filter.
func (c *Controller) ScanResults(f store.Filter, limit int, cursor string) ([]store.Record, string, error) {
	return c.store.ScanPage(f, limit, cursor)
}

// AggregateResults computes time-window aggregations (counts, loss
// rate, RTT percentiles) over stored results, optionally grouped by
// country and/or ASN. Served straight from the store.
func (c *Controller) AggregateResults(q store.AggQuery) (store.AggReport, error) {
	return c.store.Aggregate(q)
}

// CompactStore runs one results-store maintenance sweep: merging small
// segments and enforcing the retention policy against the controller's
// current tick. cmd/obsd calls it on a -compact-every cadence.
func (c *Controller) CompactStore() error {
	return c.store.Compact(c.Now())
}

// ResultStore exposes the underlying results store (tests and
// diagnostics).
func (c *Controller) ResultStore() *store.Store { return c.store }

// Done reports whether every one of an experiment's tasks has exactly
// one recorded result.
func (c *Controller) Done(expID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[expID]
	if !ok {
		return false
	}
	return exp.Status == StatusApproved && len(c.recorded[expID]) >= len(exp.Assignments)
}

// Stats snapshots the pipeline counters and per-probe liveness.
func (c *Controller) Stats() StatsReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := StatsReport{
		Tick:              c.now,
		Counters:          c.stats.Snapshot(),
		Experiments:       len(c.experiments),
		OutstandingLeases: len(c.leases),
	}
	if d := c.dur.Snapshot(); len(d) > 0 {
		rep.Durability = d
	}
	if sc := c.store.Counters(); len(sc) > 0 {
		rep.Store = sc
	}
	if ad := c.adm.snapshot(); len(ad) > 0 {
		rep.Admission = ad
	}
	for _, q := range c.queues {
		rep.QueuedTasks += len(q)
	}
	leasedBy := make(map[string]int, len(c.probes))
	for _, l := range c.leases {
		leasedBy[l.probeID]++
	}
	for id, st := range c.probes {
		rep.Probes = append(rep.Probes, ProbeStatus{
			ProbeInfo: st.info,
			Health:    st.health,
			LastSeen:  st.lastSeen,
			Queued:    len(c.queues[id]),
			Leased:    leasedBy[id],
		})
	}
	sort.Slice(rep.Probes, func(i, j int) bool { return rep.Probes[i].ID < rep.Probes[j].ID })
	return rep
}

// Health summarizes fleet liveness: "ok" while no probe is dead,
// "degraded" otherwise.
func (c *Controller) Health() HealthReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := HealthReport{Status: "ok", Tick: c.now, OutstandingLeases: len(c.leases)}
	for _, st := range c.probes {
		switch st.health {
		case ProbeDead:
			rep.ProbesDead++
		case ProbeSuspect:
			rep.ProbesSuspect++
		default:
			rep.ProbesAlive++
		}
	}
	for _, q := range c.queues {
		rep.QueuedTasks += len(q)
	}
	if rep.ProbesDead > 0 {
		rep.Status = "degraded"
	}
	return rep
}
