// Package core is the observatory's control plane — the paper's primary
// contribution (Section 7). The controller registers probes, vets and
// schedules experiments, and collects results; probe placement is
// purpose-driven (greedy IXP set cover plus mobile-carrier coverage)
// and measurement targets are chosen to surface the components global
// platforms miss: exchange fabrics, DNS resolvers, content off-nets, and
// subsea-cable crossings.
//
// The controller speaks an HTTP/JSON protocol (see http.go) so probes
// can run as separate processes; it is equally usable in-process.
package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

// ProbeInfo is a registered vantage point.
type ProbeInfo struct {
	ID       string       `json:"id"`
	ASN      topology.ASN `json:"asn"`
	Country  string       `json:"country"`
	HasWired bool         `json:"has_wired"`
	// Kind distinguishes hardware probes from proxy/VPN vantages.
	Kind string `json:"kind,omitempty"`
}

// ExperimentStatus is the vetting/progress state.
type ExperimentStatus string

const (
	StatusPending  ExperimentStatus = "pending-review"
	StatusApproved ExperimentStatus = "approved"
	StatusRejected ExperimentStatus = "rejected"
)

// Experiment is a vetted batch of measurement assignments. Flexible
// measurements require review (Section 7.1): experiments from the
// trusted cohort are auto-approved; everything else waits.
type Experiment struct {
	ID          string              `json:"id"`
	Owner       string              `json:"owner"`
	Description string              `json:"description"`
	Status      ExperimentStatus    `json:"status"`
	Assignments []probes.Assignment `json:"assignments"`
}

// Controller is the observatory control plane.
type Controller struct {
	mu          sync.Mutex
	probes      map[string]*ProbeInfo
	experiments map[string]*Experiment
	queues      map[string][]probes.Task // per-probe pending tasks
	results     map[string][]probes.Result
	trusted     map[string]bool
	nextExpID   int
}

// NewController creates an empty control plane with the given trusted
// experimenter cohort.
func NewController(trusted ...string) *Controller {
	c := &Controller{
		probes:      make(map[string]*ProbeInfo),
		experiments: make(map[string]*Experiment),
		queues:      make(map[string][]probes.Task),
		results:     make(map[string][]probes.Result),
		trusted:     make(map[string]bool),
	}
	for _, t := range trusted {
		c.trusted[t] = true
	}
	return c
}

// RegisterProbe adds or updates a vantage point.
func (c *Controller) RegisterProbe(p ProbeInfo) error {
	if p.ID == "" {
		return fmt.Errorf("core: probe id required")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := p
	c.probes[p.ID] = &cp
	return nil
}

// Probes lists registered probes sorted by id.
func (c *Controller) Probes() []ProbeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ProbeInfo, 0, len(c.probes))
	for _, p := range c.probes {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SubmitExperiment queues an experiment for vetting. Trusted owners are
// approved (and scheduled) immediately.
func (c *Controller) SubmitExperiment(owner, description string, assignments []probes.Assignment) (*Experiment, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("core: experiment has no assignments")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextExpID++
	exp := &Experiment{
		ID:          fmt.Sprintf("exp-%04d", c.nextExpID),
		Owner:       owner,
		Description: description,
		Status:      StatusPending,
		Assignments: assignments,
	}
	for i := range exp.Assignments {
		exp.Assignments[i].Task.Experiment = exp.ID
		if exp.Assignments[i].Task.ID == "" {
			exp.Assignments[i].Task.ID = fmt.Sprintf("%s-t%04d", exp.ID, i)
		}
	}
	c.experiments[exp.ID] = exp
	if c.trusted[owner] {
		c.approveLocked(exp)
	}
	return cloneExp(exp), nil
}

// Approve moves a pending experiment to approved and schedules its tasks.
func (c *Controller) Approve(expID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[expID]
	if !ok {
		return fmt.Errorf("core: unknown experiment %s", expID)
	}
	if exp.Status == StatusApproved {
		return nil
	}
	if exp.Status == StatusRejected {
		return fmt.Errorf("core: experiment %s was rejected", expID)
	}
	c.approveLocked(exp)
	return nil
}

// Reject marks a pending experiment rejected.
func (c *Controller) Reject(expID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[expID]
	if !ok {
		return fmt.Errorf("core: unknown experiment %s", expID)
	}
	if exp.Status == StatusApproved {
		return fmt.Errorf("core: experiment %s already approved", expID)
	}
	exp.Status = StatusRejected
	return nil
}

func (c *Controller) approveLocked(exp *Experiment) {
	exp.Status = StatusApproved
	for _, a := range exp.Assignments {
		c.queues[a.ProbeID] = append(c.queues[a.ProbeID], a.Task)
	}
}

// Experiment returns a copy of the experiment's state.
func (c *Controller) Experiment(id string) (*Experiment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[id]
	if !ok {
		return nil, false
	}
	return cloneExp(exp), true
}

func cloneExp(e *Experiment) *Experiment {
	cp := *e
	cp.Assignments = append([]probes.Assignment(nil), e.Assignments...)
	return &cp
}

// LeaseTasks pops up to max tasks from a probe's queue.
func (c *Controller) LeaseTasks(probeID string, max int) []probes.Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queues[probeID]
	if max <= 0 || max > len(q) {
		max = len(q)
	}
	lease := append([]probes.Task(nil), q[:max]...)
	c.queues[probeID] = q[max:]
	return lease
}

// PendingFor reports how many tasks a probe still has queued.
func (c *Controller) PendingFor(probeID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queues[probeID])
}

// SubmitResults records a batch of task results.
func (c *Controller) SubmitResults(probeID string, rs []probes.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range rs {
		r.ProbeID = probeID
		c.results[r.Experiment] = append(c.results[r.Experiment], r)
	}
}

// Results returns the collected results of one experiment.
func (c *Controller) Results(expID string) []probes.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]probes.Result(nil), c.results[expID]...)
}

// Done reports whether all of an experiment's tasks have results.
func (c *Controller) Done(expID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.experiments[expID]
	if !ok {
		return false
	}
	return exp.Status == StatusApproved && len(c.results[expID]) >= len(exp.Assignments)
}
