package core

import (
	"net/http/httptest"
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testDNS  = dnssim.New(testNet, 42)
	testWeb  = content.New(testNet, 42)
)

func TestControllerRegisterAndList(t *testing.T) {
	c := NewController()
	if err := c.RegisterProbe(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterProbe(ProbeInfo{}); err == nil {
		t.Fatal("empty probe id accepted")
	}
	ps := c.Probes()
	if len(ps) != 1 || ps[0].ID != "p1" {
		t.Fatalf("probes = %+v", ps)
	}
}

func TestVettingWorkflow(t *testing.T) {
	c := NewController("trusted-owner")
	asg := []probes.Assignment{{ProbeID: "p1", Task: probes.Task{Kind: probes.TaskPing, Target: "1.2.3.4"}}}

	// Trusted: auto-approved and scheduled.
	exp, err := c.SubmitExperiment("trusted-owner", "x", asg)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Status != StatusApproved {
		t.Fatalf("trusted status = %s", exp.Status)
	}
	if got := c.PendingFor("p1"); got != 1 {
		t.Fatalf("queued tasks = %d", got)
	}

	// Untrusted: pending, nothing queued until approval.
	exp2, err := c.SubmitExperiment("rando", "y", asg)
	if err != nil {
		t.Fatal(err)
	}
	if exp2.Status != StatusPending {
		t.Fatalf("untrusted status = %s", exp2.Status)
	}
	if got := c.PendingFor("p1"); got != 1 {
		t.Fatal("pending experiment leaked tasks")
	}
	if err := c.Approve(exp2.ID); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingFor("p1"); got != 2 {
		t.Fatal("approval did not schedule")
	}
	// Double-approve is idempotent.
	if err := c.Approve(exp2.ID); err != nil {
		t.Fatal(err)
	}

	// Rejection.
	exp3, _ := c.SubmitExperiment("rando", "z", asg)
	if err := c.Reject(exp3.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Approve(exp3.ID); err == nil {
		t.Fatal("approved a rejected experiment")
	}
	if err := c.Reject(exp2.ID); err == nil {
		t.Fatal("rejected an approved experiment")
	}
}

func TestSubmitValidation(t *testing.T) {
	c := NewController()
	if _, err := c.SubmitExperiment("o", "d", nil); err == nil {
		t.Fatal("empty experiment accepted")
	}
	if err := c.Approve("exp-nope"); err == nil {
		t.Fatal("approved unknown experiment")
	}
}

func TestLeaseAndResults(t *testing.T) {
	c := NewController("o")
	if err := c.RegisterProbe(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	var asg []probes.Assignment
	for i := 0; i < 5; i++ {
		asg = append(asg, probes.Assignment{ProbeID: "p1", Task: probes.Task{Kind: probes.TaskPing, Target: "1.2.3.4"}})
	}
	exp, _ := c.SubmitExperiment("o", "d", asg)

	lease := c.LeaseTasks("p1", 2)
	if len(lease) != 2 {
		t.Fatalf("leased %d", len(lease))
	}
	if lease[0].Experiment != exp.ID || lease[0].ID == "" {
		t.Fatalf("task ids not stamped: %+v", lease[0])
	}
	rest := c.LeaseTasks("p1", 100)
	if len(rest) != 3 {
		t.Fatalf("second lease = %d", len(rest))
	}
	if c.Done(exp.ID) {
		t.Fatal("done without results")
	}
	var rs []probes.Result
	for _, task := range append(lease, rest...) {
		rs = append(rs, probes.Result{TaskID: task.ID, Experiment: exp.ID, OK: true})
	}
	if n, err := c.SubmitResults("p1", rs); err != nil || n != 5 {
		t.Fatalf("submit: n=%d err=%v", n, err)
	}
	if !c.Done(exp.ID) {
		t.Fatal("not done after all results")
	}
	if got := len(c.Results(exp.ID)); got != 5 {
		t.Fatalf("results = %d", got)
	}
}

// TestHTTPEndToEnd drives the full platform through the HTTP API: probes
// register over the wire, an experiment runs, results come back.
func TestHTTPEndToEnd(t *testing.T) {
	ctrl := NewController("upanzi")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL)

	agent := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true},
		testNet, testDNS, testWeb)
	if err := cl.Register(ProbeInfo{ID: "kgl-01", ASN: 36924, Country: "RW", HasWired: true}); err != nil {
		t.Fatal(err)
	}
	ps, err := cl.Probes()
	if err != nil || len(ps) != 1 {
		t.Fatalf("probes over HTTP: %v %d", err, len(ps))
	}

	var asg []probes.Assignment
	target := testNet.RouterAddr(15169, 0).String()
	asg = append(asg,
		probes.Assignment{ProbeID: "kgl-01", Task: probes.Task{Kind: probes.TaskTraceroute, Target: target}},
		probes.Assignment{ProbeID: "kgl-01", Task: probes.Task{Kind: probes.TaskDNS, Domain: "site0.RW", OriginCountry: "RW"}},
	)
	exp, err := cl.Submit("upanzi", "integration", asg)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Status != StatusApproved {
		t.Fatalf("status = %s", exp.Status)
	}

	n, err := RunAgentOnce(cl, agent)
	if err != nil || n != 2 {
		t.Fatalf("agent ran %d tasks, err=%v", n, err)
	}

	rs, err := cl.Results(exp.ID)
	if err != nil || len(rs) != 2 {
		t.Fatalf("results: %v %d", err, len(rs))
	}
	for _, r := range rs {
		if !r.OK {
			t.Fatalf("task failed: %+v", r)
		}
		if r.ProbeID != "kgl-01" {
			t.Fatalf("probe id not stamped: %+v", r)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	ctrl := NewController()
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL)

	if _, err := cl.Results("exp-0042"); err != nil {
		// unknown experiment returns empty results, not an error
		t.Fatalf("results for unknown experiment should be empty, got %v", err)
	}
	if err := cl.Approve("exp-0042"); err == nil {
		t.Fatal("approving unknown experiment should fail over HTTP")
	}
	if _, err := cl.Submit("o", "d", nil); err == nil {
		t.Fatal("empty submission should fail over HTTP")
	}
}

func TestTargetedPlacementCoversAllIXPs(t *testing.T) {
	placement := TargetedPlacement(testTopo)
	dir := registry.AfricanIXPs(testTopo)
	if got := ixp.CoverageOf(dir, placement); got != len(dir) {
		t.Fatalf("targeted placement covers %d/%d fabrics", got, len(dir))
	}
	// Mobile focus: it includes mobile carriers.
	mobile := 0
	for _, a := range placement {
		if testTopo.ASes[a].Type == topology.ASMobileCarrier {
			mobile++
		}
	}
	if mobile < 20 {
		t.Fatalf("only %d mobile carriers in placement", mobile)
	}
}

func TestAtlasPlacementBias(t *testing.T) {
	atlas := AtlasPlacement(testTopo, 48)
	if len(atlas) == 0 {
		t.Fatal("empty placement")
	}
	perRegion := map[geo.Region]int{}
	for _, a := range atlas {
		as := testTopo.ASes[a]
		if as.Type == topology.ASMobileCarrier {
			t.Fatal("Atlas placement must avoid mobile carriers (the bias)")
		}
		perRegion[as.Region]++
	}
	if perRegion[geo.AfricaSouthern] <= perRegion[geo.AfricaCentral] {
		t.Fatalf("placement should favor mature markets: %+v", perRegion)
	}
	for _, r := range geo.AfricanRegions() {
		if perRegion[r] == 0 {
			t.Fatalf("region %s has no probes at all", r)
		}
	}
}

func TestIXPTraceTargets(t *testing.T) {
	targets := IXPTraceTargets(testTopo, testNet)
	if len(targets) < 70 {
		t.Fatalf("targets for %d fabrics, want nearly all 77", len(targets))
	}
	for id, addr := range targets {
		owner, ok := testNet.OwnerOf(addr)
		if !ok {
			t.Fatalf("target for fabric %d unrouted", id)
		}
		// The target must be a member of that fabric.
		found := false
		for _, m := range testTopo.IXPs[id].Members {
			if m == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("target AS%d is not a member of fabric %d", owner, id)
		}
	}
}

func TestResolverAuditTasks(t *testing.T) {
	tasks := ResolverAuditTasks(testWeb.Catalog(), 3)
	if len(tasks) != 54*3 {
		t.Fatalf("tasks = %d, want 162", len(tasks))
	}
	for _, task := range tasks {
		if task.Kind != probes.TaskDNS || task.Domain == "" || task.OriginCountry == "" {
			t.Fatalf("malformed task %+v", task)
		}
	}
}

func TestContentLocalityTasks(t *testing.T) {
	tasks := ContentLocalityTasks(testWeb.Catalog(), "KE", 5)
	if len(tasks) != 5 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	all := ContentLocalityTasks(testWeb.Catalog(), "KE", 0)
	if len(all) != len(testWeb.Catalog().SitesFor("KE")) {
		t.Fatal("zero limit should mean all sites")
	}
}

func TestCableSpanTargets(t *testing.T) {
	targets := CableSpanTargets(testTopo, testNet)
	if len(targets) < 20 {
		t.Fatalf("only %d cable-span targets", len(targets))
	}
}

func TestTracerouteAssignments(t *testing.T) {
	targets := CableSpanTargets(testTopo, testNet)[:3]
	asg := TracerouteAssignments([]string{"p1", "p2"}, targets, "test")
	if len(asg) != 6 {
		t.Fatalf("assignments = %d", len(asg))
	}
	ids := map[string]bool{}
	for _, a := range asg {
		if ids[a.Task.ID] {
			t.Fatalf("duplicate task id %s", a.Task.ID)
		}
		ids[a.Task.ID] = true
	}
}
