package core

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/faultinject"
	"github.com/afrinet/observatory/internal/probes"
)

// ctrlView is everything recovery equivalence is defined over: the full
// stats report (minus the run-scoped durability and store counters), the
// lease table, and the per-probe queues.
type ctrlView struct {
	Stats  StatsReport
	Leases map[string]LeaseInfo
	Queues map[string][]probes.Task
}

func viewOf(c *Controller) ctrlView {
	stats := c.Stats()
	stats.Durability = nil
	stats.Store = nil
	stats.Admission = nil
	return ctrlView{Stats: stats, Leases: c.Leases(), Queues: c.Queues()}
}

// ctrlOp is one valid controller mutation, replayable onto any
// controller. The generator only emits operations that journal (no
// no-op approvals), so "the last journal record" and "the last
// generated op" coincide for the truncation test.
type ctrlOp func(c *Controller)

// genOps builds a deterministic randomized operation sequence: probe
// registrations, trusted and untrusted submissions, approvals, leases,
// idempotent result uploads (including deliberate duplicates),
// heartbeats, and ticks that expire leases and kill silent probes.
func genOps(seed int64, n int) []ctrlOp {
	rng := rand.New(rand.NewSource(seed))
	probeIDs := []string{"pr-00", "pr-01", "pr-02", "pr-03"}
	var ops []ctrlOp
	for i, id := range probeIDs {
		p := ProbeInfo{ID: id, ASN: 36924, Country: "RW", HasWired: i%2 == 0}
		ops = append(ops, func(c *Controller) { _ = c.RegisterProbe(p) })
	}
	type expMeta struct {
		id      string
		tasks   int
		pending bool
	}
	var exps []expMeta
	nextExp := 0
	for len(ops) < n {
		switch k := rng.Intn(10); {
		case k < 2: // submit
			owner := "o"
			pending := false
			if rng.Intn(3) == 0 {
				owner, pending = "rando", true
			}
			tasks := 1 + rng.Intn(5)
			var asg []probes.Assignment
			for i := 0; i < tasks; i++ {
				asg = append(asg, probes.Assignment{
					ProbeID: probeIDs[rng.Intn(len(probeIDs))],
					Task:    probes.Task{Kind: probes.TaskPing, Target: "1.2.3.4"},
				})
			}
			nextExp++
			exps = append(exps, expMeta{id: fmt.Sprintf("exp-%04d", nextExp), tasks: tasks, pending: pending})
			ops = append(ops, func(c *Controller) { _, _ = c.SubmitExperiment(owner, "drill", asg) })
		case k < 3: // approve or reject a pending experiment
			pendIdx := -1
			for i := range exps {
				if exps[i].pending {
					pendIdx = i
					break
				}
			}
			if pendIdx < 0 {
				continue
			}
			exps[pendIdx].pending = false
			id := exps[pendIdx].id
			if rng.Intn(4) == 0 {
				ops = append(ops, func(c *Controller) { _ = c.Reject(id) })
			} else {
				ops = append(ops, func(c *Controller) { _ = c.Approve(id) })
			}
		case k < 6: // lease
			id := probeIDs[rng.Intn(len(probeIDs))]
			max := rng.Intn(4) // 0 means "all"
			ops = append(ops, func(c *Controller) { _ = c.LeaseTasks(id, max) })
		case k < 8: // results (valid task ids; duplicates on purpose)
			if len(exps) == 0 {
				continue
			}
			em := exps[rng.Intn(len(exps))]
			var rs []probes.Result
			for i := 0; i < 1+rng.Intn(3); i++ {
				rs = append(rs, probes.Result{
					TaskID:     fmt.Sprintf("%s-t%04d", em.id, rng.Intn(em.tasks)),
					Experiment: em.id,
					OK:         true,
				})
			}
			id := probeIDs[rng.Intn(len(probeIDs))]
			ops = append(ops, func(c *Controller) { _, _ = c.SubmitResults(id, rs) })
		case k < 9: // heartbeat
			id := probeIDs[rng.Intn(len(probeIDs))]
			ops = append(ops, func(c *Controller) { _ = c.Heartbeat(id) })
		default: // tick
			ticks := 1 + rng.Intn(2)
			ops = append(ops, func(c *Controller) { c.Tick(ticks) })
		}
	}
	return ops[:n]
}

var testDurCfg = DurabilityConfig{
	Trusted:      []string{"o"},
	LeaseTTL:     2,
	SuspectAfter: 2,
	DeadAfter:    4,
	// Flush the results store on every append so these equivalence
	// tests never lose a memtable: recovery reconciliation then has
	// nothing to requeue and recovered state must match the live
	// controller exactly. Memtable-loss behavior is covered separately.
	StoreFlushEvery: 1,
}

// TestRecoveryEquivalenceProperty drives a journaled controller through
// randomized operation sequences (with automatic snapshot compaction in
// the loop) and asserts Recover rebuilds state identical to the live
// controller: same stats, same lease table, same queues.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			cfg := testDurCfg
			cfg.SnapshotEvery = 17 // small, so compaction happens many times
			live, err := Recover(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ops := genOps(seed, 300)
			for _, op := range ops {
				op(live)
			}
			dl := live.DurabilityCounters()
			if dl["snapshots_written"] == 0 {
				t.Fatalf("no snapshots written; durability=%v", dl)
			}
			if dl["journal_append_errors"] != 0 || dl["snapshot_errors"] != 0 {
				t.Fatalf("journal errors during drive: %v", dl)
			}

			rec, err := Recover(dir, testDurCfg) // note: SnapshotEvery irrelevant for replay
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			dr := rec.DurabilityCounters()
			if dr["recovery_truncated_tail"] != 0 {
				t.Fatalf("clean journal reported a torn tail: %v", dr)
			}
			// Compaction worked: replay far fewer records than were appended.
			if dr["recovery_replayed"] >= dl["journal_records_appended"] {
				t.Fatalf("replayed %d of %d records; snapshots did not compact",
					dr["recovery_replayed"], dl["journal_records_appended"])
			}
			if lv, rv := viewOf(live), viewOf(rec); !reflect.DeepEqual(lv, rv) {
				t.Fatalf("recovered state diverged\nlive: %+v\nrec:  %+v", lv, rv)
			}
			// The recovered controller keeps working and journaling.
			rec.Tick(1)
			if rec.Now() != live.Now()+1 {
				t.Fatalf("recovered controller clock wedged: %d vs %d", rec.Now(), live.Now())
			}
			live.Close()
		})
	}
}

// TestRecoveryTruncatedTail kills the journal mid-record: the torn tail
// must be detected by checksum and discarded, and recovery must land on
// exactly the state produced by every operation before the torn one.
func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testDurCfg // no automatic snapshots: the whole run lives in the journal tail
	live, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(11, 120)
	for _, op := range ops {
		op(live)
	}
	// kill -9: no Close, no snapshot. Then tear the last record: chop a
	// few bytes off the journal, as a crash mid-write would.
	path := filepath.Join(dir, "journal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	d := rec.DurabilityCounters()
	if d["recovery_truncated_tail"] != 1 {
		t.Fatalf("torn tail not surfaced: %v", d)
	}
	if d["recovery_replayed"] != int64(len(ops)-1) {
		t.Fatalf("replayed %d records, want %d (all but the torn one)", d["recovery_replayed"], len(ops)-1)
	}

	// Expected state: the same op sequence minus the torn final record,
	// applied to a plain in-memory controller.
	expected := NewController(cfg.Trusted...)
	expected.LeaseTTL = cfg.LeaseTTL
	expected.SuspectAfter = cfg.SuspectAfter
	expected.DeadAfter = cfg.DeadAfter
	for _, op := range ops[:len(ops)-1] {
		op(expected)
	}
	if ev, rv := viewOf(expected), viewOf(rec); !reflect.DeepEqual(ev, rv) {
		t.Fatalf("truncated-tail recovery diverged\nwant: %+v\ngot:  %+v", ev, rv)
	}
}

// TestSnapshotCrashWindowRecovery simulates a crash between "snapshot
// renamed" and "journal compacted": the journal still holds records the
// snapshot covers, and replay must skip them instead of double-applying.
func TestSnapshotCrashWindowRecovery(t *testing.T) {
	dir := t.TempDir()
	live, err := Recover(dir, testDurCfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(23, 80)
	for _, op := range ops {
		op(live)
	}
	// Preserve the journal bytes, snapshot (which compacts), then put
	// the stale journal back — the exact on-disk shape of that crash.
	path := filepath.Join(dir, "journal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir, testDurCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.DurabilityCounters()["recovery_replayed"]; got != 0 {
		t.Fatalf("replayed %d snapshot-covered records; want 0", got)
	}
	if lv, rv := viewOf(live), viewOf(rec); !reflect.DeepEqual(lv, rv) {
		t.Fatalf("snapshot-crash-window recovery diverged\nlive: %+v\nrec:  %+v", lv, rv)
	}
}

// TestSubmitRetrySafeUnderDuplication covers the un-stale-d comment:
// Submit is retryable now because submissions are deduplicated by
// request id. A transport that duplicates every delivery must still
// yield exactly one experiment.
func TestSubmitRetrySafeUnderDuplication(t *testing.T) {
	ctrl := NewController("o")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	ft := faultinject.New(5)
	ft.DupProb = 1.0 // every request delivered twice
	cl := NewClientSeeded(srv.URL, 3)
	cl.HTTP = &http.Client{Transport: ft}
	cl.Sleep = func(time.Duration) {}

	exp, err := cl.Submit("o", "dup drill", pingAssignments("p1", 4))
	if err != nil {
		t.Fatal(err)
	}
	exp2, err := cl.Submit("o", "dup drill", pingAssignments("p1", 4))
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID == exp2.ID {
		t.Fatal("distinct Submit calls collapsed into one experiment")
	}
	if got := ctrl.Stats().Experiments; got != 2 {
		t.Fatalf("experiments = %d, want 2 (duplicated deliveries deduped)", got)
	}
	if got := ctrl.DurabilityCounters()["submits_deduped"]; got < 2 {
		t.Fatalf("submits_deduped = %d, want >= 2", got)
	}
}

// TestRecoveryGate503 verifies the during-recovery contract: 503 with a
// Retry-After header while the gate is closed, normal service after.
func TestRecoveryGate503(t *testing.T) {
	gate := NewRecoveryGate()
	srv := httptest.NewServer(gate)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// The probe client treats the 503 window as transient: with enough
	// attempts it rides through a gate that opens mid-retry.
	ctrl := NewController()
	cl := NewClient(srv.URL)
	cl.MaxAttempts = 5
	tries := 0
	cl.Sleep = func(time.Duration) {
		if tries++; tries == 2 {
			gate.Ready(ctrl.Handler())
		}
	}
	if _, err := cl.Health(); err != nil {
		t.Fatalf("client did not retry through the recovery window: %v", err)
	}
}
