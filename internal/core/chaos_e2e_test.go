package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/faultinject"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/spool"
	"github.com/afrinet/observatory/internal/store"
	"github.com/afrinet/observatory/internal/websim"
)

// TestChaosScheduleEndToEnd drives the whole resilience stack through a
// seeded chaos schedule: link flaps and partitions on the probes'
// transports, probe power cycles (spool closed, process state thrown
// away, spool reopened), at least one controller hard-crash/recover,
// and a rate-limited analyst hammering the query route throughout. The
// run must converge to exactly-once completion with zero lost results,
// every spool drained empty, load shedding observable in /metrics, and
// trace-ring/memtable memory bounded.
//
// The schedule is deterministic: OBS_CHAOS_SEED and OBS_CHAOS_ROUNDS
// select it (defaults 42/36; `make chaos` runs a longer timeline).
func TestChaosScheduleEndToEnd(t *testing.T) {
	seed := int64(42)
	if v := os.Getenv("OBS_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("OBS_CHAOS_SEED: %v", err)
		}
		seed = n
	}
	rounds := 36
	if v := os.Getenv("OBS_CHAOS_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 10 {
			t.Fatalf("OBS_CHAOS_ROUNDS: want an int >= 10, got %q", v)
		}
		rounds = n
	}
	crashes := 1
	if rounds >= 80 {
		crashes = 2
	}

	probeIDs := []string{"live-00", "live-01", "live-02"}
	sched := faultinject.GenerateSchedule(seed, faultinject.ScheduleConfig{
		Rounds:                rounds,
		Probes:                probeIDs,
		FlapProb:              0.10,
		PartitionProb:         0.08,
		CycleProb:             0.08,
		MaxWindow:             3,
		ControllerCrashes:     crashes,
		InterferenceCountries: []string{"RW"},
		InterferenceWindows:   2,
	})
	t.Logf("%s", sched)

	// Censorship weather rides the same timeline: Rwanda gets a
	// full-mechanism policy that applies only while the schedule's
	// interference windows are open. Exactly-once must hold with DNS
	// poisoning, SNI resets, blockpages, and throttling active.
	pol := outage.NewInterference(seed)
	pol.SetRule(outage.InterferenceRule{
		Country: "RW", DNSPoison: true, PoisonBogon: true,
		SNIReset: true, Blockpage: true,
		ThrottleBytesPerMs: 10, DomainFraction: 1.0,
		ResolverClasses: []string{"same-country", "other-country", "cloud"},
	})
	pol.SetWindowed(true)
	websteps := websim.New(testNet, testDNS, testWeb, pol, seed)

	const flushEvery = 16
	dataDir := t.TempDir()
	cfg := DurabilityConfig{
		Trusted:         []string{"obs"},
		LeaseTTL:        3,
		SuspectAfter:    4,
		DeadAfter:       8,
		SnapshotEvery:   64,
		StoreFlushEvery: flushEvery,
	}
	admission := AdmissionConfig{
		RouteRates:        map[string]RateLimit{"query": {PerTick: 1, Burst: 2}},
		RetryAfterSeconds: 1,
	}
	ctrl, err := Recover(dataDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.ConfigureAdmission(admission)
	gate := NewRecoveryGate()
	gate.Ready(ctrl.Handler())
	srv := httptest.NewServer(gate)
	defer srv.Close()

	admin := NewClientSeeded(srv.URL, 99)
	admin.MaxAttempts = 8
	admin.Sleep = func(time.Duration) {}
	// The analyst deliberately outruns the query route's token bucket;
	// no retries, so every shed is a clean 429 observation.
	analyst := NewClientSeeded(srv.URL, 98)
	analyst.MaxAttempts = 1
	analyst.Sleep = func(time.Duration) {}

	// rig is one probe "process": the transport and spool survive power
	// cycles (they are the network and the disk); client and agent are
	// process state and are rebuilt on every cycle.
	type rig struct {
		id       string
		ft       *faultinject.Transport
		spoolDir string
		sp       *spool.Spool
		cl       *Client
		agent    *probes.Agent
		cycles   int
	}
	boot := func(r *rig) {
		cl := NewClientSeeded(srv.URL, int64(len(r.id))+int64(r.cycles))
		cl.HTTP = &http.Client{Timeout: 5 * time.Second, Transport: r.ft}
		cl.MaxAttempts = 4
		cl.Sleep = func(time.Duration) {}
		cl.BreakerThreshold = 5
		r.cl = cl
		r.agent = probes.NewAgent(probes.Config{ID: r.id, ASN: 36924, HasWired: true}, testNet, testDNS, testWeb)
		r.agent.EnableWebsteps(websteps)
	}
	var rigs []*rig
	for i, id := range probeIDs {
		r := &rig{id: id, ft: faultinject.New(seed + int64(300+i)), spoolDir: t.TempDir()}
		r.ft.DupProb = 0.10
		sp, err := spool.Open(r.spoolDir, spool.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r.sp = sp
		boot(r)
		if err := r.cl.Register(ProbeInfo{ID: id, ASN: 36924, Country: "RW", HasWired: true}); err != nil {
			t.Fatal(err)
		}
		rigs = append(rigs, r)
	}
	defer func() {
		for _, r := range rigs {
			r.sp.Close()
		}
	}()

	target := testNet.RouterAddr(15169, 0).String()
	var asg []probes.Assignment
	for i := 0; i < 30; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: probeIDs[i%len(probeIDs)],
			Task:    probes.Task{Kind: probes.TaskPing, Target: target},
		})
	}
	// Websteps work interleaves with the classic primitives, so spooled
	// archival measurements ride the same crash/redelivery machinery.
	rwSites := testWeb.Catalog().SitesFor("RW")
	if len(rwSites) < 9 {
		t.Fatalf("only %d RW sites; the websteps mix needs 9", len(rwSites))
	}
	for i := 0; i < 9; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: probeIDs[i%len(probeIDs)],
			Task:    probes.Task{Kind: probes.TaskWebsteps, Domain: rwSites[i].Domain, OriginCountry: "RW"},
		})
	}
	exp, err := admin.Submit("obs", "chaos drill", asg)
	if err != nil {
		t.Fatal(err)
	}

	crash := func() {
		// kill -9 with a torn partial append on the journal tail.
		gate.NotReady()
		f, err := os.OpenFile(filepath.Join(dataDir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xba, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	recover := func() {
		ctrl2, err := Recover(dataDir, cfg)
		if err != nil {
			t.Fatalf("chaos recovery: %v", err)
		}
		if ctrl2.DurabilityCounters()["recovery_truncated_tail"] != 1 {
			t.Fatalf("torn tail not detected: %v", ctrl2.DurabilityCounters())
		}
		ctrl = ctrl2
		ctrl.ConfigureAdmission(admission)
		gate.Ready(ctrl.Handler())
	}

	down := false
	crashed := 0
	// The chaos window is sched.Rounds; after it the weather clears and
	// the fleet gets quiet rounds to converge.
	for round := 0; round < sched.Rounds+80 && !(crashed == crashes && !down && ctrl.Done(exp.ID)); round++ {
		if down {
			recover()
			down = false
		}
		if len(sched.StartingAt(round, faultinject.EventControllerCrash)) > 0 {
			crash()
			down = true
			crashed++
		}
		// Open or close this round's censorship windows.
		open := map[string]bool{}
		for _, e := range sched.ActiveAt(round, faultinject.EventInterference) {
			open[e.Target] = true
		}
		pol.SetActive("RW", open["RW"])
		for _, r := range rigs {
			// Apply this round's weather to the probe's transport.
			parted := false
			for _, e := range sched.ActiveAt(round, faultinject.EventPartition) {
				if e.Target == r.id {
					parted = true
				}
			}
			r.ft.SetPartitioned(parted)
			flapping := false
			for _, e := range sched.ActiveAt(round, faultinject.EventLinkFlap) {
				if e.Target == r.id {
					flapping = true
				}
			}
			if flapping {
				r.ft.DropRequestProb, r.ft.DropResponseProb = 0.5, 0.5
			} else {
				r.ft.DropRequestProb, r.ft.DropResponseProb = 0.05, 0.05
			}
			for _, e := range sched.StartingAt(round, faultinject.EventProbeCycle) {
				if e.Target == r.id {
					// Power cut: process dies, disk survives, reboot.
					if err := r.sp.Close(); err != nil {
						t.Fatal(err)
					}
					sp, err := spool.Open(r.spoolDir, spool.Options{})
					if err != nil {
						t.Fatal(err)
					}
					r.sp = sp
					r.cycles++
					boot(r)
				}
			}
			// Chaos-induced failures are the point; the spool holds
			// whatever could not be delivered this round.
			if _, err := DrainWithSpool(r.cl, r.agent, r.sp); err != nil {
				_ = r.cl.Heartbeat(r.id)
			}
		}
		// The analyst fires more queries than the bucket refills.
		for i := 0; i < 3; i++ {
			_, _ = analyst.QueryAggregate(store.Filter{}, "")
		}
		if !down {
			ctrl.Tick(1)
		}
	}
	if down {
		recover()
	}
	if crashed != crashes {
		t.Fatalf("schedule fired %d controller crashes, want %d", crashed, crashes)
	}
	if !ctrl.Done(exp.ID) {
		t.Fatalf("chaos run did not converge; stats=%+v", ctrl.Stats().Counters)
	}

	// Clear weather: every spool must flush down to empty.
	for _, r := range rigs {
		r.ft.SetPartitioned(false)
		r.ft.DropRequestProb, r.ft.DropResponseProb = 0, 0
		if _, err := FlushSpool(r.cl, r.id, r.sp, 64); err != nil {
			t.Fatalf("%s: final flush: %v", r.id, err)
		}
		if n := r.sp.Len(); n != 0 {
			t.Fatalf("%s: spool still holds %d results after the run", r.id, n)
		}
	}

	// Exactly-once completion: every task has exactly one recorded
	// result — nothing lost to a power cut, nothing double-counted from
	// redelivery.
	rs := ctrl.Results(exp.ID)
	if len(rs) != len(asg) {
		t.Fatalf("results = %d, want %d", len(rs), len(asg))
	}
	perTask := map[string]int{}
	for _, r := range rs {
		perTask[r.TaskID]++
	}
	if len(perTask) != len(asg) {
		t.Fatalf("distinct tasks = %d, want %d", len(perTask), len(asg))
	}
	for id, n := range perTask {
		if n != 1 {
			t.Fatalf("task %s recorded %d times", id, n)
		}
	}

	// Every websteps result that made it through the chaos carries a
	// verdict from the taxonomy and a link-coherent archival measurement
	// — power cycles and redelivery must not corrupt either.
	webstepsSeen := 0
	for _, r := range rs {
		if r.Kind != probes.TaskWebsteps {
			continue
		}
		webstepsSeen++
		if !websim.ValidVerdict(r.Verdict) {
			t.Fatalf("websteps result %s has verdict %q outside the taxonomy", r.TaskID, r.Verdict)
		}
		if r.Websteps == nil {
			t.Fatalf("websteps result %s lost its archival measurement", r.TaskID)
		}
		if err := r.Websteps.Validate(); err != nil {
			t.Fatalf("websteps result %s fails link-integrity: %v", r.TaskID, err)
		}
	}
	if webstepsSeen != 9 {
		t.Fatalf("recorded %d websteps results, want 9", webstepsSeen)
	}

	// Load shedding happened on the current controller instance and is
	// observable from outside through /metrics. (Admission counters are
	// run-scoped, so force a shed post-recovery before reading.)
	for i := 0; i < 4; i++ {
		_, _ = analyst.QueryAggregate(store.Filter{}, "")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	shed := int64(-1)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, `obs_admission_events_total{name="requests_shed"} `); ok {
			shed, _ = strconv.ParseInt(rest, 10, 64)
		}
	}
	if shed <= 0 {
		t.Fatalf("requests_shed = %d in /metrics, want > 0", shed)
	}

	// Memory stays bounded no matter how long the chaos ran: the trace
	// ring at its fixed capacity, the store memtable under its flush
	// threshold.
	if got := ctrl.Traces().Len(); got > DefaultTraceRing {
		t.Fatalf("trace ring grew to %d, bound is %d", got, DefaultTraceRing)
	}
	if got := ctrl.ResultStore().MemtableLen(); got >= flushEvery {
		t.Fatalf("memtable holds %d records, flush threshold is %d", got, flushEvery)
	}

	// The schedule really injected chaos.
	if len(sched.Events) == 0 {
		t.Fatal("empty chaos schedule; the drill tested nothing")
	}
	injected := int64(0)
	for _, r := range rigs {
		for k, v := range r.ft.Stats() {
			if k != "passed" {
				injected += v
			}
		}
	}
	if injected == 0 {
		t.Fatal("no transport faults injected; the drill tested nothing")
	}
}
