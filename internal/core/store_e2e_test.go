package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// submitPingBatch uploads OK ping results for a contiguous range of an
// experiment's auto-named tasks.
func submitPingBatch(t *testing.T, c *Controller, probeID, expID string, from, to int) {
	t.Helper()
	var rs []probes.Result
	for i := from; i < to; i++ {
		rs = append(rs, probes.Result{
			TaskID:     fmt.Sprintf("%s-t%04d", expID, i),
			Experiment: expID,
			Kind:       probes.TaskPing,
			OK:         true,
			RTTms:      float64(20 + i%50),
		})
	}
	if _, err := c.SubmitResults(probeID, rs); err != nil {
		t.Fatal(err)
	}
}

func pingAssignmentsFor(probeID string, n int) []probes.Assignment {
	var asg []probes.Assignment
	for i := 0; i < n; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: probeID,
			Task:    probes.Task{Kind: probes.TaskPing, Target: "1.2.3.4"},
		})
	}
	return asg
}

// TestMemtableLossRequeuesTasks is the crash-during-flush e2e at the
// controller level: results whose payloads only ever reached the store
// memtable are un-recorded at recovery and their tasks requeued, so the
// pipeline re-runs exactly what the crash lost and still converges to
// exactly-once.
func TestMemtableLossRequeuesTasks(t *testing.T) {
	dir := t.TempDir()
	cfg := DurabilityConfig{
		Trusted:         []string{"o"},
		LeaseTTL:        2,
		StoreFlushEvery: 8, // results 0..7 seal into a segment; 8..11 die in the memtable
	}
	live, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.RegisterProbe(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	exp, err := live.SubmitExperiment("o", "memtable drill", pingAssignmentsFor("p1", 12))
	if err != nil {
		t.Fatal(err)
	}
	live.LeaseTasks("p1", 12)
	// Two batches: the first fills the memtable to FlushEvery and seals
	// a segment; the second's 4 records stay memtable-only.
	submitPingBatch(t, live, "p1", exp.ID, 0, 8)
	submitPingBatch(t, live, "p1", exp.ID, 8, 12)
	if !live.Done(exp.ID) {
		t.Fatal("drill not complete pre-crash")
	}
	if got := live.ResultStore().MemtableLen(); got != 4 {
		t.Fatalf("memtable holds %d records pre-crash, want 4", got)
	}
	// kill -9: no Close, no flush. The 4 memtable records are gone.
	rec, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	d := rec.DurabilityCounters()
	if d["recovery_results_requeued"] != 4 {
		t.Fatalf("recovery_results_requeued = %d, want 4", d["recovery_results_requeued"])
	}
	if rec.Done(exp.ID) {
		t.Fatal("experiment still Done despite lost payloads")
	}
	if got := rec.PendingFor("p1"); got != 4 {
		t.Fatalf("requeued tasks = %d, want 4", got)
	}
	if got := rec.Stats().Counters["results_recorded"]; got != 8 {
		t.Fatalf("results_recorded after reconcile = %d, want 8", got)
	}
	// The probe re-runs the requeued tasks; the pipeline converges.
	rec.LeaseTasks("p1", 12)
	submitPingBatch(t, rec, "p1", exp.ID, 0, 12) // full redelivery: 8 dedup, 4 record
	if !rec.Done(exp.ID) {
		t.Fatal("pipeline did not converge after memtable loss")
	}
	rs := rec.Results(exp.ID)
	if len(rs) != 12 {
		t.Fatalf("results = %d, want 12", len(rs))
	}
	perTask := map[string]int{}
	for _, r := range rs {
		perTask[r.TaskID]++
	}
	for id, n := range perTask {
		if n != 1 {
			t.Fatalf("task %s served %d times", id, n)
		}
	}
}

// TestQueryStableAcrossRestartAndCompaction is the acceptance check:
// /api/v1/query returns identical aggregates before and after both a
// graceful restart and a compaction that reduces the segment count.
func TestQueryStableAcrossRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := DurabilityConfig{
		Trusted:           []string{"o"},
		StoreFlushEvery:   4,
		StoreTargetFrames: 64,
	}
	ctrl, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterProbe(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterProbe(ProbeInfo{ID: "p2", ASN: 37100, Country: "NG"}); err != nil {
		t.Fatal(err)
	}
	exp, err := ctrl.SubmitExperiment("o", "query drill", pingAssignmentsFor("p1", 20))
	if err != nil {
		t.Fatal(err)
	}
	// Spread submissions over ticks and probes so groups and tick
	// filters have structure.
	for i := 0; i < 20; i += 2 {
		probe := "p1"
		if i%4 == 0 {
			probe = "p2"
		}
		submitPingBatch(t, ctrl, probe, exp.ID, i, i+2)
		ctrl.Tick(1)
	}
	srv := httptest.NewServer(ctrl.Handler())
	cl := NewClient(srv.URL)

	queries := []struct {
		f  store.Filter
		by string
	}{
		{store.Filter{Experiment: exp.ID}, store.GroupCountry},
		{store.Filter{Experiment: exp.ID}, store.GroupASN},
		{store.Filter{FromTick: 3, ToTick: 7}, store.GroupCountryASN},
		{store.Filter{Country: "NG"}, ""},
	}
	var before []store.AggReport
	for _, q := range queries {
		rep, err := cl.QueryAggregate(q.f, q.by)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, rep)
	}
	if before[0].Matched != 20 {
		t.Fatalf("baseline query matched %d, want 20", before[0].Matched)
	}

	// Compaction must reduce the segment count and change no answer.
	segsBefore := ctrl.ResultStore().SegmentCount()
	if err := ctrl.CompactStore(); err != nil {
		t.Fatal(err)
	}
	if segsAfter := ctrl.ResultStore().SegmentCount(); segsAfter >= segsBefore {
		t.Fatalf("compaction did not reduce segments: %d -> %d", segsBefore, segsAfter)
	}
	for i, q := range queries {
		rep, err := cl.QueryAggregate(q.f, q.by)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, before[i]) {
			t.Fatalf("aggregate %d changed across compaction\nwant: %+v\ngot:  %+v", i, before[i], rep)
		}
	}
	if got := ctrl.Stats().Store["segments_compacted"]; got == 0 {
		t.Fatalf("segments_compacted not surfaced in stats: %v", ctrl.Stats().Store)
	}
	srv.Close()

	// Graceful restart: same answers from the reopened store.
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	srv2 := httptest.NewServer(rec.Handler())
	defer srv2.Close()
	cl2 := NewClient(srv2.URL)
	for i, q := range queries {
		rep, err := cl2.QueryAggregate(q.f, q.by)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, before[i]) {
			t.Fatalf("aggregate %d changed across restart\nwant: %+v\ngot:  %+v", i, before[i], rep)
		}
	}
}

// TestLargeIngestKeepsMemtableBounded ingests 100k results through
// SubmitResults against a durable controller and asserts the store's
// memtable stays bounded (heap does not grow with result volume) while
// the WAL carries only slim refs.
func TestLargeIngestKeepsMemtableBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-result ingest")
	}
	dir := t.TempDir()
	cfg := DurabilityConfig{Trusted: []string{"o"}}
	ctrl, err := Recover(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.RegisterProbe(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	const total, batch = 100_000, 2_000
	exp, err := ctrl.SubmitExperiment("o", "ingest drill", pingAssignmentsFor("p1", total))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i += batch {
		submitPingBatch(t, ctrl, "p1", exp.ID, i, i+batch)
	}
	st := ctrl.ResultStore()
	if got := st.MemtableLen(); got >= 1024 {
		t.Fatalf("memtable holds %d records after 100k ingest; flushes are not bounding it", got)
	}
	if got := st.Counters()["store_frames_appended"]; got != total {
		t.Fatalf("store_frames_appended = %d, want %d", got, total)
	}
	// Every batch crossing FlushEvery seals the memtable, so at least
	// one segment per batch exists.
	if st.SegmentCount() < total/batch {
		t.Fatalf("segments = %d after 100k ingest, want >= %d", st.SegmentCount(), total/batch)
	}
	if !ctrl.Done(exp.ID) {
		t.Fatal("ingest drill not complete")
	}
	// Compaction still reduces the segment count at this scale.
	before := st.SegmentCount()
	if err := ctrl.CompactStore(); err != nil {
		t.Fatal(err)
	}
	if after := st.SegmentCount(); after >= before {
		t.Fatalf("compaction did not reduce segments: %d -> %d", before, after)
	}
}

// TestOversizedBody413 covers the request-body bound: a submit payload
// over MaxBodyBytes is rejected with 413 and a JSON error, not read to
// completion.
func TestOversizedBody413(t *testing.T) {
	ctrl := NewController("o")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	// A syntactically plausible JSON value whose single string token
	// exceeds the bound — the decoder must hit the limit while still
	// scanning, exercising the MaxBytesReader path rather than a plain
	// syntax error.
	huge := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), MaxBodyBytes+1)...)
	huge = append(huge, []byte(`"}`)...)
	for _, path := range []string{
		"/api/v1/probes/register",
		"/api/v1/probes/p1/results",
		"/api/v1/experiments",
	} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status = %d, want 413", path, resp.StatusCode)
		}
		var body errorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body.Error.Code != ErrCodeBodyTooLarge || body.Error.Message == "" {
			t.Fatalf("%s: 413 without envelope error body (err=%v body=%+v)", path, err, body)
		}
	}
	// A reasonable body still works.
	if err := NewClient(srv.URL).Register(ProbeInfo{ID: "p1", ASN: 1, Country: "NG"}); err != nil {
		t.Fatal(err)
	}
}

// TestResultsPaginationHTTP drives the paginated results endpoint and
// the scan op end to end through the client.
func TestResultsPaginationHTTP(t *testing.T) {
	ctrl := NewController("o")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()
	cl := NewClient(srv.URL)

	if err := cl.Register(ProbeInfo{ID: "p1", ASN: 36924, Country: "RW"}); err != nil {
		t.Fatal(err)
	}
	exp, err := ctrl.SubmitExperiment("o", "page drill", pingAssignmentsFor("p1", 23))
	if err != nil {
		t.Fatal(err)
	}
	submitPingBatch(t, ctrl, "p1", exp.ID, 0, 23)

	// Legacy shape still serves the whole array.
	whole, err := cl.Results(exp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != 23 {
		t.Fatalf("legacy results = %d, want 23", len(whole))
	}

	var paged []probes.Result
	cursor, pages := "", 0
	for {
		rs, next, err := cl.ResultsPage(exp.ID, 10, cursor)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, rs...)
		pages++
		if next == "" {
			break
		}
		cursor = next
	}
	if pages != 3 || !reflect.DeepEqual(paged, whole) {
		t.Fatalf("pagination: %d pages, %d results (want 3 pages matching the legacy array)", pages, len(paged))
	}

	var scanned []store.Record
	cursor = ""
	for {
		recs, next, err := cl.QueryScan(store.Filter{Experiment: exp.ID}, 7, cursor)
		if err != nil {
			t.Fatal(err)
		}
		scanned = append(scanned, recs...)
		if next == "" {
			break
		}
		cursor = next
	}
	if len(scanned) != 23 {
		t.Fatalf("scanned records = %d, want 23", len(scanned))
	}
	for i, rec := range scanned {
		if !reflect.DeepEqual(rec.Result, whole[i]) {
			t.Fatalf("scan record %d diverges from results payload", i)
		}
	}

	// Bad parameters are 400s, not panics.
	for _, url := range []string{
		srv.URL + "/api/v1/query?op=sum",
		srv.URL + "/api/v1/query?asn=not-a-number",
		srv.URL + "/api/v1/query?op=scan&limit=-2",
		srv.URL + fmt.Sprintf("/api/v1/experiments/%s/results?limit=x", exp.ID),
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", url, resp.StatusCode)
		}
	}
}
