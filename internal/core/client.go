package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/afrinet/observatory/internal/probes"
)

// Client is the probe-side HTTP client for the controller API —
// what cmd/obsprobe uses to participate in the observatory.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8600"
	HTTP *http.Client
}

// NewClient builds a client for the given controller base URL.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{}}
}

func (c *Client) post(path string, body, out interface{}) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) get(path string, out interface{}) error {
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out interface{}) error {
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("core: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register announces a probe to the controller.
func (c *Client) Register(p ProbeInfo) error {
	return c.post("/api/v1/probes/register", p, nil)
}

// LeaseTasks fetches up to max queued tasks for the probe.
func (c *Client) LeaseTasks(probeID string, max int) ([]probes.Task, error) {
	var out []probes.Task
	err := c.get(fmt.Sprintf("/api/v1/probes/%s/tasks?max=%d", probeID, max), &out)
	return out, err
}

// SubmitResults uploads a batch of results.
func (c *Client) SubmitResults(probeID string, rs []probes.Result) error {
	return c.post(fmt.Sprintf("/api/v1/probes/%s/results", probeID), rs, nil)
}

// Submit posts an experiment.
func (c *Client) Submit(owner, description string, as []probes.Assignment) (*Experiment, error) {
	var out Experiment
	err := c.post("/api/v1/experiments", submitRequest{Owner: owner, Description: description, Assignments: as}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Approve approves a pending experiment.
func (c *Client) Approve(expID string) error {
	return c.post(fmt.Sprintf("/api/v1/experiments/%s/approve", expID), struct{}{}, nil)
}

// Results fetches an experiment's collected results.
func (c *Client) Results(expID string) ([]probes.Result, error) {
	var out []probes.Result
	err := c.get(fmt.Sprintf("/api/v1/experiments/%s/results", expID), &out)
	return out, err
}

// Probes lists the registered probes.
func (c *Client) Probes() ([]ProbeInfo, error) {
	var out []ProbeInfo
	err := c.get("/api/v1/probes", &out)
	return out, err
}

// RunAgentOnce drains the probe's queue through the agent: it leases
// tasks, executes them, and uploads results, returning the number of
// tasks processed. Power or budget failures are reported as failed
// results rather than dropped.
func RunAgentOnce(cl *Client, agent *probes.Agent) (int, error) {
	total := 0
	for {
		tasks, err := cl.LeaseTasks(agent.ID(), 64)
		if err != nil {
			return total, err
		}
		if len(tasks) == 0 {
			return total, nil
		}
		results := make([]probes.Result, 0, len(tasks))
		for _, t := range tasks {
			res, err := agent.Execute(t)
			if err != nil && res.Error == "" {
				res.Error = err.Error()
			}
			results = append(results, res)
		}
		if err := cl.SubmitResults(agent.ID(), results); err != nil {
			return total, err
		}
		total += len(tasks)
	}
}
