package core

import (
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// APIError is a non-2xx controller response decoded from the v1 error
// envelope. Errors returned by Client calls wrap it, so callers can
// branch on the machine code and log the request id the controller
// traced the failure under:
//
//	var apiErr *core.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == core.ErrCodeNotFound { ... }
type APIError struct {
	Status    int    // HTTP status code
	Code      string // machine code (ErrCode* constants)
	Message   string
	RequestID string
	// RetryAfter is the server's Retry-After delay in seconds (0 when
	// the header was absent): set on 429s from admission control and on
	// 503s from the recovery gate or a federation coordinator whose
	// owning shard is down.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("core: api error %d %s: %s (request_id=%s)", e.Status, e.Code, e.Message, e.RequestID)
}

// decodeAPIError turns a non-2xx response body into an *APIError. A
// body that is not a v1 envelope (a pre-envelope controller) becomes an
// APIError with an empty Code carrying the raw body text.
func decodeAPIError(status int, body []byte) *APIError {
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{
			Status:    status,
			Code:      env.Error.Code,
			Message:   env.Error.Message,
			RequestID: env.Error.RequestID,
		}
	}
	return &APIError{Status: status, Message: string(bytes.TrimSpace(body))}
}

// DefaultHTTPTimeout bounds every controller round trip so a hung
// connection on a flaky cellular link cannot wedge the probe loop.
const DefaultHTTPTimeout = 10 * time.Second

// Client is the probe-side HTTP client for the controller API —
// what cmd/obsprobe uses to participate in the observatory.
//
// Every call is retried on transient failures — transport errors, 429s,
// and 5xx responses (including the controller's 503-while-recovering) —
// with bounded exponential backoff and jitter drawn from a seeded RNG,
// so retry schedules are reproducible. Retrying is safe across the
// board: the controller deduplicates result uploads by (experiment,
// task) and experiment submissions by client request id.
type Client struct {
	Base string // e.g. "http://127.0.0.1:8600"
	HTTP *http.Client

	// MaxAttempts caps tries per idempotent call (default 4).
	MaxAttempts int
	// BackoffBase is the delay before the first retry (default 50ms);
	// it doubles per attempt up to BackoffCap (default 2s), then a
	// seeded jitter in [1/2, 1) of the step is applied.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Sleep is the wait hook (nil means time.Sleep); tests replace it
	// to retry without wall-clock delays.
	Sleep func(time.Duration)
	// RequestID, when set, overrides how Submit mints its idempotency
	// keys (tests pin it for reproducible dedup).
	RequestID func() string
	// Obs, when set, records one latency histogram series per API call
	// (obs_client_seconds, call=<name>). cmd/obsprobe wires one in and
	// logs the snapshot at shutdown.
	Obs *obs.Registry

	// BreakerThreshold enables the circuit breaker: after this many
	// consecutive transport failures (connection errors — a received
	// response of any status is proof the uplink works) the breaker
	// opens and calls fail fast with ErrCircuitOpen instead of burning
	// the cellular budget on a dead link. 0 disables the breaker.
	BreakerThreshold int
	// BreakerProbeEvery lets every Nth call through a tripped breaker
	// as a half-open probe (default 4); a probe that gets any response
	// closes the breaker.
	BreakerProbeEvery int

	mu       sync.Mutex
	rng      *rand.Rand
	reqSeq   int
	brkFails int  // consecutive transport failures
	brkOpen  bool // breaker tripped
	brkCalls int  // calls arriving while open (for half-open probes)
	res      *metrics.CounterSet
}

// ErrCircuitOpen is returned (wrapped) when the circuit breaker is open
// and the call was not selected as a half-open probe. The uplink is
// considered down; callers should back off at their own cadence (the
// probe's poll loop) rather than retry immediately.
var ErrCircuitOpen = fmt.Errorf("core: circuit breaker open (uplink considered down)")

// NewClient builds a client for the given controller base URL with the
// default timeout and retry policy (jitter seed 1).
func NewClient(base string) *Client { return NewClientSeeded(base, 1) }

// NewClientSeeded is NewClient with an explicit jitter seed, for
// deterministic multi-client tests.
func NewClientSeeded(base string, seed int64) *Client {
	return &Client{
		Base:        base,
		HTTP:        &http.Client{Timeout: DefaultHTTPTimeout},
		MaxAttempts: 4,
		BackoffBase: 50 * time.Millisecond,
		BackoffCap:  2 * time.Second,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// backoff returns the jittered delay before retry number attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.BackoffBase
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if c.BackoffCap > 0 && d > c.BackoffCap {
			d = c.BackoffCap
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// counters returns the lazily-created resilience counter set.
func (c *Client) counters() *metrics.CounterSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.res == nil {
		c.res = metrics.NewCounterSet()
	}
	return c.res
}

// ResilienceCounters snapshots the client's resilience events:
// breaker_open_total, breaker_fastfail, retry_after_honored.
// cmd/obsprobe registers them (with the spool's) in its obs registry.
func (c *Client) ResilienceCounters() map[string]int64 {
	return c.counters().Snapshot()
}

// breakerAdmit decides whether a call may proceed. With the breaker
// open, only every BreakerProbeEvery-th arrival passes as a half-open
// probe; the rest fail fast.
func (c *Client) breakerAdmit() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.BreakerThreshold <= 0 || !c.brkOpen {
		return true
	}
	c.brkCalls++
	every := c.BreakerProbeEvery
	if every <= 0 {
		every = 4
	}
	return c.brkCalls%every == 0
}

// breakerFail records a transport failure; enough in a row trip the
// breaker.
func (c *Client) breakerFail() {
	if c.BreakerThreshold <= 0 {
		return
	}
	c.mu.Lock()
	c.brkFails++
	trip := !c.brkOpen && c.brkFails >= c.BreakerThreshold
	if trip {
		c.brkOpen = true
		c.brkCalls = 0
	}
	c.mu.Unlock()
	if trip {
		c.counters().Inc("breaker_open_total")
	}
}

// breakerOK records a received response (any status): the uplink works,
// so the breaker closes and the failure streak resets.
func (c *Client) breakerOK() {
	if c.BreakerThreshold <= 0 {
		return
	}
	c.mu.Lock()
	c.brkFails = 0
	c.brkOpen = false
	c.mu.Unlock()
}

// transientStatus reports whether a response status is worth retrying.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retryAfter parses a Retry-After header as delay seconds, the form the
// controller's admission layer and recovery gate emit. Absent or
// unparseable headers (including the HTTP-date form) return (0, false).
func retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// do issues one request per attempt, retrying transient failures when
// retryable is set. body is re-sent verbatim on each attempt. Every call
// carries one X-Request-ID, stable across its retries, so a client log
// line joins against the controller's traces and slow-request log; name
// tags the per-call latency series when Obs is set.
func (c *Client) do(name, method, path string, body []byte, out interface{}, retryable bool) error {
	if c.Obs != nil {
		t := obs.StartTimer()
		defer func() { c.Obs.Hist("obs_client_seconds", "call", name).Observe(t.Elapsed()) }()
	}
	if !c.breakerAdmit() {
		c.counters().Inc("breaker_fastfail")
		return fmt.Errorf("core: %s %s: %w", method, path, ErrCircuitOpen)
	}
	reqID := mintRequestID()
	attempts := c.MaxAttempts
	if attempts <= 0 || !retryable {
		attempts = 1
	}
	var lastErr error
	var serverDelay time.Duration
	var haveServerDelay bool
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// The server's Retry-After beats the client's own jittered
			// backoff: the controller knows when it will have capacity
			// (or be recovered) better than our exponential guess.
			if haveServerDelay {
				c.counters().Inc("retry_after_honored")
				c.sleep(serverDelay)
				haveServerDelay = false
			} else {
				c.sleep(c.backoff(attempt - 1))
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.Base+path, rd)
		if err != nil {
			return err
		}
		req.Header.Set(RequestIDHeader, reqID)
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			c.breakerFail()
			lastErr = err
			continue
		}
		c.breakerOK()
		if transientStatus(resp.StatusCode) {
			serverDelay, haveServerDelay = retryAfter(resp.Header)
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			apiErr := decodeAPIError(resp.StatusCode, b)
			if haveServerDelay {
				apiErr.RetryAfter = int(serverDelay / time.Second)
			}
			lastErr = apiErr
			continue
		}
		err = decodeResponse(resp, out)
		resp.Body.Close()
		return err
	}
	return fmt.Errorf("core: %s %s failed after %d attempts: %w", method, path, attempts, lastErr)
}

func (c *Client) post(name, path string, body, out interface{}, retryable bool) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(name, http.MethodPost, path, buf, out, retryable)
}

func (c *Client) get(name, path string, out interface{}) error {
	return c.do(name, http.MethodGet, path, nil, out, true)
}

func decodeResponse(resp *http.Response, out interface{}) error {
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		apiErr := decodeAPIError(resp.StatusCode, b)
		if d, ok := retryAfter(resp.Header); ok {
			apiErr.RetryAfter = int(d / time.Second)
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getPage fetches a list endpoint and decodes the {items, next_cursor}
// page shape into items. Pre-page controllers returned bare arrays;
// those are still accepted for one release (see README's deprecation
// note) by decoding the body straight into items.
func (c *Client) getPage(name, path string, items interface{}) (string, error) {
	var raw json.RawMessage
	if err := c.get(name, path, &raw); err != nil {
		return "", err
	}
	return decodePage(raw, items)
}

func decodePage(raw []byte, items interface{}) (string, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		// Legacy bare-array shape.
		return "", json.Unmarshal(trimmed, items)
	}
	var pg struct {
		Items      json.RawMessage `json:"items"`
		NextCursor string          `json:"next_cursor"`
	}
	if err := json.Unmarshal(trimmed, &pg); err != nil {
		return "", err
	}
	if len(pg.Items) > 0 {
		if err := json.Unmarshal(pg.Items, items); err != nil {
			return "", err
		}
	}
	return pg.NextCursor, nil
}

// Register announces a probe to the controller (idempotent: retried).
func (c *Client) Register(p ProbeInfo) error {
	return c.post("probe_register", "/api/v1/probes/register", p, nil, true)
}

// LeaseTasks fetches up to max queued tasks for the probe; max <= 0
// asks for the server default (the max parameter is omitted — sending
// a literal max=0 used to reach servers that read it as "default"
// only by accident of their parsing, and older ones as "zero tasks").
// A lost response simply leaves the tasks leased; the controller
// requeues them when the lease expires, so retrying is safe.
func (c *Client) LeaseTasks(probeID string, max int) ([]probes.Task, error) {
	path := fmt.Sprintf("/api/v1/probes/%s/tasks", probeID)
	if max > 0 {
		path += fmt.Sprintf("?max=%d", max)
	}
	var out []probes.Task
	err := c.get("probe_tasks", path, &out)
	return out, err
}

// Sync performs one batched probe round-trip: heartbeat + spooled
// results + task-lease ask in a single POST (see SyncRequest for the
// max semantics). wait > 0 long-polls the controller for up to that
// duration when it has no tasks to grant; keep it comfortably below
// the HTTP client timeout (DefaultHTTPTimeout) or the transport will
// cut the park short. Retrying is safe end to end: results dedup by
// (experiment, task) and a lost lease response expires back into the
// queue like any abandoned lease.
func (c *Client) Sync(req SyncRequest, wait time.Duration) (SyncResponse, error) {
	path := "/api/v1/probes/sync"
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var out SyncResponse
	err := c.post("probe_sync", path, req, &out, true)
	return out, err
}

// SubmitResults uploads a batch of results. Safe to retry: the
// controller deduplicates by (experiment, task).
func (c *Client) SubmitResults(probeID string, rs []probes.Result) error {
	return c.post("probe_results", fmt.Sprintf("/api/v1/probes/%s/results", probeID), rs, nil, true)
}

// Heartbeat tells the controller the probe is alive when there is no
// lease or result traffic to piggyback on.
func (c *Client) Heartbeat(probeID string) error {
	return c.post("probe_heartbeat", fmt.Sprintf("/api/v1/probes/%s/heartbeat", probeID), struct{}{}, nil, true)
}

// Submit posts an experiment, retrying transient failures like every
// other call: each submission carries a unique request id and the
// controller dedups submissions by it, so a redelivered Submit returns
// the already-created experiment instead of doubling the workload.
func (c *Client) Submit(owner, description string, as []probes.Assignment) (*Experiment, error) {
	var out Experiment
	req := submitRequest{RequestID: c.newRequestID(), Owner: owner, Description: description, Assignments: as}
	err := c.post("experiment_submit", "/api/v1/experiments", req, &out, true)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitWithID posts an experiment under a caller-chosen experiment id
// and idempotency key. The federation coordinator uses it to create the
// same federated experiment id on every owning shard: the per-shard
// requestID makes a re-pushed partition a dedup hit instead of a
// duplicate workload.
func (c *Client) SubmitWithID(requestID, expID, owner, description string, as []probes.Assignment) (*Experiment, error) {
	var out Experiment
	req := submitRequest{RequestID: requestID, ID: expID, Owner: owner, Description: description, Assignments: as}
	if err := c.post("experiment_submit", "/api/v1/experiments", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// newRequestID mints a submission idempotency key: unique per call, and
// stable across the retries of that call. IDs are drawn from crypto/rand
// (they are opaque dedup keys — uniqueness matters, reproducibility does
// not); tests pin Client.RequestID for deterministic dedup scenarios.
func (c *Client) newRequestID() string {
	if c.RequestID != nil {
		return c.RequestID()
	}
	var buf [12]byte
	if _, err := crand.Read(buf[:]); err != nil {
		// Fall back to the jitter RNG rather than failing a submission
		// over an entropy error.
		c.mu.Lock()
		if c.rng == nil {
			c.rng = rand.New(rand.NewSource(1))
		}
		c.rng.Read(buf[:]) //nolint:errcheck // never fails
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.reqSeq++
	seq := c.reqSeq
	c.mu.Unlock()
	return fmt.Sprintf("req-%s-%04d", hex.EncodeToString(buf[:]), seq)
}

// Experiment fetches one experiment's vetting status and assignments.
func (c *Client) Experiment(expID string) (*Experiment, error) {
	var out Experiment
	if err := c.get("experiment_get", fmt.Sprintf("/api/v1/experiments/%s", expID), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Approve approves a pending experiment (idempotent: retried).
func (c *Client) Approve(expID string) error {
	return c.post("experiment_approve", fmt.Sprintf("/api/v1/experiments/%s/approve", expID), struct{}{}, nil, true)
}

// Results fetches an experiment's collected results.
func (c *Client) Results(expID string) ([]probes.Result, error) {
	var out []probes.Result
	_, err := c.getPage("experiment_results", fmt.Sprintf("/api/v1/experiments/%s/results", expID), &out)
	return out, err
}

// ResultsPage fetches one page of an experiment's results: up to limit
// results after cursor ("" starts over). The returned cursor is "" on
// the last page.
func (c *Client) ResultsPage(expID string, limit int, cursor string) ([]probes.Result, string, error) {
	var out []probes.Result
	q := url.Values{}
	q.Set("limit", strconv.Itoa(limit))
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	next, err := c.getPage("experiment_results", fmt.Sprintf("/api/v1/experiments/%s/results?%s", expID, q.Encode()), &out)
	return out, next, err
}

// queryParams renders a store filter as /api/v1/query parameters.
func queryParams(f store.Filter) url.Values {
	q := url.Values{}
	if f.Experiment != "" {
		q.Set("experiment", f.Experiment)
	}
	if f.Country != "" {
		q.Set("country", f.Country)
	}
	if f.ASN != 0 {
		q.Set("asn", strconv.FormatUint(uint64(f.ASN), 10))
	}
	if f.Kind != "" {
		q.Set("kind", f.Kind)
	}
	if f.Verdict != "" {
		q.Set("verdict", f.Verdict)
	}
	if f.ResolverChain != "" {
		q.Set("resolver_chain", f.ResolverChain)
	}
	if f.ECS != "" {
		q.Set("ecs", f.ECS)
	}
	if f.FromTick > 0 {
		q.Set("from_tick", strconv.FormatInt(f.FromTick, 10))
	}
	if f.ToTick > 0 {
		q.Set("to_tick", strconv.FormatInt(f.ToTick, 10))
	}
	return q
}

// QueryAggregate runs a time-window aggregation (counts, loss rate, RTT
// percentiles, optionally grouped) over the controller's results store.
func (c *Client) QueryAggregate(f store.Filter, groupBy string) (store.AggReport, error) {
	q := queryParams(f)
	q.Set("op", "aggregate")
	if groupBy != "" {
		q.Set("group_by", groupBy)
	}
	var out store.AggReport
	err := c.get("query", "/api/v1/query?"+q.Encode(), &out)
	return out, err
}

// QueryScan fetches one page of stored result records matching a filter.
func (c *Client) QueryScan(f store.Filter, limit int, cursor string) ([]store.Record, string, error) {
	q := queryParams(f)
	q.Set("op", "scan")
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	var out []store.Record
	next, err := c.getPage("query", "/api/v1/query?"+q.Encode(), &out)
	return out, next, err
}

// QueryMeta is the federation degradation annotation on query
// responses: Degraded true means the shards in ShardsMissing did not
// answer before their deadline and the data is correct but partial. A
// single (non-federated) controller never sets it.
type QueryMeta struct {
	Degraded      bool     `json:"degraded,omitempty"`
	ShardsMissing []string `json:"shards_missing,omitempty"`
}

// QueryAggregateMeta is QueryAggregate surfacing the federation
// degradation annotation, for analysts who must distinguish "complete
// answer" from "partial answer while a shard is down".
func (c *Client) QueryAggregateMeta(f store.Filter, groupBy string) (store.AggReport, QueryMeta, error) {
	q := queryParams(f)
	q.Set("op", "aggregate")
	if groupBy != "" {
		q.Set("group_by", groupBy)
	}
	var out struct {
		store.AggReport
		QueryMeta
	}
	err := c.get("query", "/api/v1/query?"+q.Encode(), &out)
	return out.AggReport, out.QueryMeta, err
}

// QueryScanMeta is QueryScan surfacing the federation degradation
// annotation carried on the page envelope.
func (c *Client) QueryScanMeta(f store.Filter, limit int, cursor string) ([]store.Record, string, QueryMeta, error) {
	q := queryParams(f)
	q.Set("op", "scan")
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	var pg struct {
		Items      []store.Record `json:"items"`
		NextCursor string         `json:"next_cursor"`
		QueryMeta
	}
	err := c.get("query", "/api/v1/query?"+q.Encode(), &pg)
	return pg.Items, pg.NextCursor, pg.QueryMeta, err
}

// ShardInfo is one entry of a federation coordinator's shard map
// (GET /api/v1/shards): the shard id, its failover epoch (bumped every
// time the keyspace moves to a replacement backend), and its health as
// seen by the coordinator's tick-driven detector.
type ShardInfo struct {
	ID     string `json:"id"`
	Epoch  int    `json:"epoch"`
	Health string `json:"health"`
}

// ShardMap fetches a federation coordinator's shard map. A plain
// single-node controller answers 404 (not_found) — callers treat that
// as "not federated". Clients use the map to size retry patience: a
// suspect/dead owning shard means 503s are expected until failover.
func (c *Client) ShardMap() ([]ShardInfo, error) {
	var out []ShardInfo
	_, err := c.getPage("shards", "/api/v1/shards", &out)
	return out, err
}

// Probes lists the registered probes.
func (c *Client) Probes() ([]ProbeInfo, error) {
	var out []ProbeInfo
	_, err := c.getPage("probes_list", "/api/v1/probes", &out)
	return out, err
}

// Health fetches the controller's fleet-health summary.
func (c *Client) Health() (HealthReport, error) {
	var out HealthReport
	err := c.get("health", "/api/v1/health", &out)
	return out, err
}

// Stats fetches the controller's pipeline counters and probe statuses.
func (c *Client) Stats() (StatsReport, error) {
	var out StatsReport
	err := c.get("stats", "/api/v1/stats", &out)
	return out, err
}

// RunAgentOnce drains the probe's queue through the agent: it leases
// tasks, executes them, and uploads results, returning the number of
// tasks processed. Power or budget failures are reported as failed
// results rather than dropped. Uploads ride the client's retry policy;
// because the controller deduplicates by task ID, a retried upload
// whose first delivery actually landed cannot double-count. If an
// upload still fails after retries the leased tasks are simply
// abandoned — the controller requeues them at lease expiry.
func RunAgentOnce(cl *Client, agent *probes.Agent) (int, error) {
	n, _, err := DrainOnce(cl, agent)
	return n, err
}

// DrainOnce is RunAgentOnce for callers that cannot afford to abandon
// work: when an upload fails even after retries, the executed-but-
// unsubmitted results are returned so the caller can hold them and try
// again later (cmd/obsprobe flushes them on its next round and makes
// one final attempt during graceful shutdown). Resubmitting them late
// is always safe — the controller dedups by (experiment, task).
func DrainOnce(cl *Client, agent *probes.Agent) (int, []probes.Result, error) {
	total := 0
	for {
		tasks, err := cl.LeaseTasks(agent.ID(), 64)
		if err != nil {
			return total, nil, err
		}
		if len(tasks) == 0 {
			return total, nil, nil
		}
		results := make([]probes.Result, 0, len(tasks))
		for _, t := range tasks {
			res, err := agent.Execute(t)
			if err != nil && res.Error == "" {
				res.Error = err.Error()
			}
			results = append(results, res)
		}
		if err := cl.SubmitResults(agent.ID(), results); err != nil {
			return total, results, err
		}
		total += len(tasks)
	}
}

// ResultSpool is the durable-outbox contract DrainWithSpool,
// FlushSpool, and DrainWithSync need, implemented by
// internal/spool.Spool: results are persisted (Append) before any
// upload is attempted, offered back oldest-first in frames
// (DrainBatch; Peek is its single-frame legacy alias), and durably
// retired in bulk once delivered (AckBatch / Ack).
type ResultSpool interface {
	probes.ResultSink
	Peek(max int) ([]probes.Result, uint64)
	Ack(upTo uint64) error
	DrainBatch(max int) ([]probes.Result, uint64)
	AckBatch(upTo uint64) error
	Len() int
}

// FlushSpool uploads the spool's undelivered backlog in batches of up
// to batch results (batch <= 0 means 64), durably acking each batch
// only after the controller accepted it. It returns the number of
// results delivered; on upload failure everything unacked simply stays
// spooled for the next flush — even across a probe restart. A batch
// that was delivered but whose response was lost is re-sent next
// flush; the controller dedups by (experiment, task), so the cost is
// bandwidth, never duplicated data.
func FlushSpool(cl *Client, probeID string, sp ResultSpool, batch int) (int, error) {
	if batch <= 0 {
		batch = 64
	}
	total := 0
	for {
		rs, upTo := sp.Peek(batch)
		if len(rs) == 0 {
			return total, nil
		}
		if err := cl.SubmitResults(probeID, rs); err != nil {
			return total, err
		}
		if err := sp.Ack(upTo); err != nil {
			return total, err
		}
		total += len(rs)
	}
}

// DrainWithSpool is DrainOnce with a durable outbox: leased tasks are
// executed with every result persisted to the spool *before* upload is
// attempted, then the whole backlog (including anything left over from
// previous runs of this probe) is flushed. A probe killed at any point
// — mid-execution, mid-upload, before upload — restarts, reopens its
// spool, and delivers exactly what it had completed, without re-running
// the measurements or waiting for lease expiry. Returns the number of
// tasks executed this call.
func DrainWithSpool(cl *Client, agent *probes.Agent, sp ResultSpool) (int, error) {
	total := 0
	for {
		// Flush first so a backlog from a previous life is delivered
		// even when the lease call fails (e.g. breaker open, link down
		// at lease time but back by flush... or vice versa — either way
		// nothing is lost, only deferred).
		if _, err := FlushSpool(cl, agent.ID(), sp, 64); err != nil {
			return total, err
		}
		tasks, err := cl.LeaseTasks(agent.ID(), 64)
		if err != nil {
			return total, err
		}
		if len(tasks) == 0 {
			return total, nil
		}
		n, err := agent.RunTasks(tasks, sp)
		total += n
		if err != nil {
			// ErrPowerOut or a spool write failure: whatever was sunk is
			// safe on disk; flush it before reporting the fault.
			_, ferr := FlushSpool(cl, agent.ID(), sp, 64)
			if ferr != nil {
				return total, fmt.Errorf("%v (and flushing spool: %w)", err, ferr)
			}
			return total, err
		}
	}
}

// DrainWithSync is the batched successor to DrainWithSpool: each
// controller round-trip is one Sync call carrying the spool's next
// backlog frame, doubling as the heartbeat, and asking for the next
// lease — so a full execute/deliver/lease round costs one request and,
// controller-side, one journal fsync instead of three. Durability is
// unchanged: results are spooled before upload and acked only after
// the controller accepted the batch, so a crash or failed round leaves
// everything undelivered safely on disk. wait > 0 long-polls on the
// final (empty-queue, empty-spool) round so new work is delivered the
// moment it is enqueued; while a backlog remains, rounds don't park.
// Returns the number of tasks executed this call.
func DrainWithSync(cl *Client, agent *probes.Agent, sp ResultSpool, wait time.Duration) (int, error) {
	total := 0
	for {
		rs, upTo := sp.DrainBatch(64)
		w := wait
		if len(rs) > 0 || sp.Len() > len(rs) {
			w = 0 // backlog to deliver: don't park
		}
		resp, err := cl.Sync(SyncRequest{ProbeID: agent.ID(), Results: rs, Max: 64}, w)
		if err != nil {
			return total, err
		}
		if len(rs) > 0 {
			if err := sp.AckBatch(upTo); err != nil {
				return total, err
			}
		}
		if len(resp.Tasks) == 0 {
			if sp.Len() == 0 {
				return total, nil
			}
			continue // more spooled frames to deliver
		}
		n, err := agent.RunTasks(resp.Tasks, sp)
		total += n
		if err != nil {
			// ErrPowerOut or a spool write failure: whatever was sunk is
			// safe on disk; deliver it (no lease ask) before reporting
			// the fault.
			if rs, upTo := sp.DrainBatch(64); len(rs) > 0 {
				if _, serr := cl.Sync(SyncRequest{ProbeID: agent.ID(), Results: rs, Max: -1}, 0); serr != nil {
					return total, fmt.Errorf("%v (and flushing spool: %w)", err, serr)
				}
				if aerr := sp.AckBatch(upTo); aerr != nil {
					return total, fmt.Errorf("%v (and acking spool: %w)", err, aerr)
				}
			}
			return total, err
		}
	}
}
