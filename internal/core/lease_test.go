package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

func mustRegister(t *testing.T, c *Controller, id string, asn topology.ASN, country string) {
	t.Helper()
	if err := c.RegisterProbe(ProbeInfo{ID: id, ASN: asn, Country: country}); err != nil {
		t.Fatal(err)
	}
}

func pingAssignments(probeID string, n int) []probes.Assignment {
	var asg []probes.Assignment
	for i := 0; i < n; i++ {
		asg = append(asg, probes.Assignment{ProbeID: probeID, Task: probes.Task{Kind: probes.TaskPing, Target: "1.2.3.4"}})
	}
	return asg
}

func okResult(task probes.Task) probes.Result {
	return probes.Result{TaskID: task.ID, Experiment: task.Experiment, OK: true}
}

// TestLeaseExpiryRequeueRedeliverDedup walks the full lifecycle:
// lease → expire → requeue → redeliver → dedup.
func TestLeaseExpiryRequeueRedeliverDedup(t *testing.T) {
	c := NewController("o")
	c.LeaseTTL = 2
	mustRegister(t, c, "p1", 36924, "RW")
	exp, err := c.SubmitExperiment("o", "lifecycle", pingAssignments("p1", 3))
	if err != nil {
		t.Fatal(err)
	}

	lease := c.LeaseTasks("p1", 0)
	if len(lease) != 3 || c.PendingFor("p1") != 0 || c.OutstandingLeases() != 3 {
		t.Fatalf("lease=%d pending=%d outstanding=%d", len(lease), c.PendingFor("p1"), c.OutstandingLeases())
	}

	// One result lands before the deadline.
	if n, err := c.SubmitResults("p1", []probes.Result{okResult(lease[0])}); err != nil || n != 1 {
		t.Fatalf("submit: n=%d err=%v", n, err)
	}
	c.Tick(1) // now=1: nothing expires yet
	if got := c.PendingFor("p1"); got != 0 {
		t.Fatalf("requeued too early: pending=%d", got)
	}
	c.Tick(1) // now=2: the two unfinished leases lapse
	if got := c.PendingFor("p1"); got != 2 {
		t.Fatalf("expired leases not requeued: pending=%d", got)
	}
	if c.OutstandingLeases() != 0 {
		t.Fatalf("outstanding=%d after reap", c.OutstandingLeases())
	}
	stats := c.Stats()
	if stats.Counters["leases_expired"] != 2 || stats.Counters["tasks_requeued"] != 2 {
		t.Fatalf("counters = %v", stats.Counters)
	}

	// Redelivery completes the experiment.
	release := c.LeaseTasks("p1", 0)
	if len(release) != 2 {
		t.Fatalf("redelivered %d tasks", len(release))
	}
	var rs []probes.Result
	for _, task := range release {
		rs = append(rs, okResult(task))
	}
	if n, err := c.SubmitResults("p1", rs); err != nil || n != 2 {
		t.Fatalf("submit: n=%d err=%v", n, err)
	}
	if !c.Done(exp.ID) {
		t.Fatal("not done after redelivery")
	}

	// A redelivered (duplicate) upload is absorbed, not double-counted.
	if n, err := c.SubmitResults("p1", rs); err != nil || n != 0 {
		t.Fatalf("duplicate submit: n=%d err=%v", n, err)
	}
	if got := len(c.Results(exp.ID)); got != 3 {
		t.Fatalf("results = %d, want 3", got)
	}
	if got := c.Stats().Counters["results_deduped"]; got != 2 {
		t.Fatalf("results_deduped = %d", got)
	}
}

// TestLeaseSkipsCompletedTasks: a requeued copy whose original delivery
// completed late is dropped at the next lease instead of re-executed.
func TestLeaseSkipsCompletedTasks(t *testing.T) {
	c := NewController("o")
	c.LeaseTTL = 1
	mustRegister(t, c, "p1", 36924, "RW")
	exp, err := c.SubmitExperiment("o", "race", pingAssignments("p1", 1))
	if err != nil {
		t.Fatal(err)
	}
	lease := c.LeaseTasks("p1", 0)
	c.Tick(1) // lease expires, task requeued
	if c.PendingFor("p1") != 1 {
		t.Fatal("task not requeued")
	}
	// The original (slow) delivery lands after the requeue.
	if n, err := c.SubmitResults("p1", []probes.Result{okResult(lease[0])}); err != nil || n != 1 {
		t.Fatalf("late submit: n=%d err=%v", n, err)
	}
	// The stale queued copy is dropped, not re-leased.
	if again := c.LeaseTasks("p1", 0); len(again) != 0 {
		t.Fatalf("re-leased a completed task: %v", again)
	}
	if got := c.Stats().Counters["tasks_dropped_completed"]; got != 1 {
		t.Fatalf("tasks_dropped_completed = %d", got)
	}
	if !c.Done(exp.ID) || len(c.Results(exp.ID)) != 1 {
		t.Fatalf("done=%v results=%d", c.Done(exp.ID), len(c.Results(exp.ID)))
	}
}

func TestSubmitResultsValidation(t *testing.T) {
	c := NewController("o")
	mustRegister(t, c, "p1", 36924, "RW")
	exp, err := c.SubmitExperiment("o", "v", pingAssignments("p1", 1))
	if err != nil {
		t.Fatal(err)
	}
	task := c.LeaseTasks("p1", 0)[0]

	if _, err := c.SubmitResults("ghost", []probes.Result{okResult(task)}); err == nil {
		t.Fatal("unregistered probe accepted")
	}
	if _, err := c.SubmitResults("p1", []probes.Result{{TaskID: "t1", Experiment: "exp-9999", OK: true}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := c.SubmitResults("p1", []probes.Result{{TaskID: "not-a-task", Experiment: exp.ID, OK: true}}); err == nil {
		t.Fatal("unknown task id accepted")
	}
	// A batch mixing a valid and an invalid result records nothing.
	bad := []probes.Result{okResult(task), {TaskID: "nope", Experiment: exp.ID}}
	if n, err := c.SubmitResults("p1", bad); err == nil || n != 0 {
		t.Fatalf("mixed batch: n=%d err=%v", n, err)
	}
	if len(c.Results(exp.ID)) != 0 {
		t.Fatal("rejected batch left residue")
	}
	if got := c.Stats().Counters["results_rejected"]; got != 4 {
		t.Fatalf("results_rejected = %d", got)
	}
}

// TestProbeLivenessTransitions drives alive → suspect → dead → revived
// and checks a dead probe's queue lands on a same-ASN peer.
func TestProbeLivenessTransitions(t *testing.T) {
	c := NewController("o")
	c.SuspectAfter = 2
	c.DeadAfter = 4
	mustRegister(t, c, "silent", 36924, "RW")
	mustRegister(t, c, "peer", 36924, "RW")
	if _, err := c.SubmitExperiment("o", "l", pingAssignments("silent", 3)); err != nil {
		t.Fatal(err)
	}

	step := func(ticks int) {
		for i := 0; i < ticks; i++ {
			if err := c.Heartbeat("peer"); err != nil {
				t.Fatal(err)
			}
			c.Tick(1)
		}
	}

	step(1)
	if h, _ := c.ProbeHealthOf("silent"); h != ProbeAlive {
		t.Fatalf("health after 1 tick = %s", h)
	}
	step(1)
	if h, _ := c.ProbeHealthOf("silent"); h != ProbeSuspect {
		t.Fatalf("health after 2 ticks = %s", h)
	}
	if c.PendingFor("silent") != 3 {
		t.Fatal("suspect probe lost its queue prematurely")
	}
	step(2)
	if h, _ := c.ProbeHealthOf("silent"); h != ProbeDead {
		t.Fatalf("health after 4 ticks = %s", h)
	}
	// Death hands the whole queue to the same-ASN peer.
	if got := c.PendingFor("peer"); got != 3 {
		t.Fatalf("peer inherited %d tasks", got)
	}
	if c.PendingFor("silent") != 0 {
		t.Fatal("dead probe kept its queue")
	}
	stats := c.Stats()
	if stats.Counters["tasks_reassigned"] != 3 || stats.Counters["probes_dead"] != 1 {
		t.Fatalf("counters = %v", stats.Counters)
	}

	// Contact revives.
	if err := c.Heartbeat("silent"); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.ProbeHealthOf("silent"); h != ProbeAlive {
		t.Fatalf("health after heartbeat = %s", h)
	}
	if got := c.Stats().Counters["probes_revived"]; got != 1 {
		t.Fatalf("probes_revived = %d", got)
	}

	hr := c.Health()
	if hr.Status != "ok" || hr.ProbesAlive != 2 {
		t.Fatalf("health report = %+v", hr)
	}
}

// TestDeadProbeLeaseReassignment: leases held by a probe that dies are
// requeued onto a live peer, not back onto the corpse.
func TestDeadProbeLeaseReassignment(t *testing.T) {
	c := NewController("o")
	c.LeaseTTL = 10 // longer than death, so death is what matters
	c.SuspectAfter = 1
	c.DeadAfter = 2
	mustRegister(t, c, "crash", 36924, "RW")
	mustRegister(t, c, "peer", 36924, "RW")
	if _, err := c.SubmitExperiment("o", "c", pingAssignments("crash", 2)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.LeaseTasks("crash", 0)); got != 2 {
		t.Fatalf("leased %d", got)
	}
	// crash goes silent; peer keeps in touch. The lease outlives the
	// probe, so the reaper must reroute at expiry.
	for i := 0; i < 10; i++ {
		if err := c.Heartbeat("peer"); err != nil {
			t.Fatal(err)
		}
		c.Tick(1)
	}
	if h, _ := c.ProbeHealthOf("crash"); h != ProbeDead {
		t.Fatalf("crash health = %s", h)
	}
	if got := c.PendingFor("peer"); got != 2 {
		t.Fatalf("peer queue = %d, want the reaped leases", got)
	}
	if c.PendingFor("crash") != 0 {
		t.Fatal("reaped leases went back to the dead probe")
	}
}

// TestTasksMaxParamValidation: non-numeric or negative ?max is a 400.
func TestTasksMaxParamValidation(t *testing.T) {
	c := NewController()
	mustRegister(t, c, "p1", 36924, "RW")
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	for _, bad := range []string{"abc", "-1", "1.5", "9e9x"} {
		resp, err := http.Get(srv.URL + "/api/v1/probes/p1/tasks?max=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("max=%q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// max=0 and omitted max both mean the server default.
	for _, path := range []string{"/api/v1/probes/p1/tasks?max=0", "/api/v1/probes/p1/tasks"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestExperimentRouteValidation covers the routing fixes: empty id is a
// 404, and /results only answers GET.
func TestExperimentRouteValidation(t *testing.T) {
	c := NewController("o")
	mustRegister(t, c, "p1", 36924, "RW")
	exp, err := c.SubmitExperiment("o", "r", pingAssignments("p1", 1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/experiments/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty id: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/api/v1/experiments/"+exp.ID+"/results", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST results: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/api/v1/experiments/" + exp.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results: status %d", resp.StatusCode)
	}
}

// dropFirstResultsResponse delivers the first /results POST to the
// server but loses the response — the canonical at-least-once hazard.
type dropFirstResultsResponse struct {
	inner   http.RoundTripper
	tripped bool
}

func (d *dropFirstResultsResponse) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.inner.RoundTrip(req)
	if err == nil && !d.tripped && strings.HasSuffix(req.URL.Path, "/results") {
		d.tripped = true
		resp.Body.Close()
		return nil, fmt.Errorf("injected: response lost")
	}
	return resp, err
}

// TestRunAgentOnceRetriesSubmitResults: the upload's first delivery is
// processed but its response is lost; the client retries and the
// controller records each task's result exactly once.
func TestRunAgentOnceRetriesSubmitResults(t *testing.T) {
	ctrl := NewController("o")
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	cl := NewClientSeeded(srv.URL, 7)
	cl.HTTP.Transport = &dropFirstResultsResponse{inner: http.DefaultTransport}
	cl.Sleep = func(time.Duration) {}

	agent := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true}, testNet, testDNS, testWeb)
	if err := cl.Register(ProbeInfo{ID: "kgl-01", ASN: 36924, Country: "RW", HasWired: true}); err != nil {
		t.Fatal(err)
	}
	target := testNet.RouterAddr(15169, 0).String()
	exp, err := cl.Submit("o", "retry", []probes.Assignment{
		{ProbeID: "kgl-01", Task: probes.Task{Kind: probes.TaskPing, Target: target}},
		{ProbeID: "kgl-01", Task: probes.Task{Kind: probes.TaskPing, Target: target}},
	})
	if err != nil {
		t.Fatal(err)
	}

	n, err := RunAgentOnce(cl, agent)
	if err != nil || n != 2 {
		t.Fatalf("ran %d tasks, err=%v", n, err)
	}
	if !ctrl.Done(exp.ID) {
		t.Fatal("experiment not done")
	}
	rs := ctrl.Results(exp.ID)
	if len(rs) != 2 {
		t.Fatalf("results = %d, want exactly 2 (no duplicates)", len(rs))
	}
	counts := map[string]int{}
	for _, r := range rs {
		counts[r.TaskID]++
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("task %s recorded %d times", id, n)
		}
	}
	stats := ctrl.Stats()
	if stats.Counters["results_deduped"] != 2 || stats.Counters["results_recorded"] != 2 {
		t.Fatalf("counters = %v", stats.Counters)
	}
}

// TestEnqueueToAlreadyDeadProbe covers tasks that are approved only
// after their target probe has been declared dead. The dead transition
// already happened, so transition-time reassignment never sees the
// queue; the sweep must keep draining dead probes' queues on every
// tick so late arrivals still move to a peer.
func TestEnqueueToAlreadyDeadProbe(t *testing.T) {
	c := NewController("o")
	c.SuspectAfter = 1
	c.DeadAfter = 2
	mustRegister(t, c, "gone-01", 36924, "RW")
	mustRegister(t, c, "peer-01", 36924, "RW")

	// peer-01 stays in touch; gone-01 never reports again.
	for i := 0; i < 2; i++ {
		c.Tick(1)
		if err := c.Heartbeat("peer-01"); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := c.ProbeHealthOf("gone-01"); got != ProbeDead {
		t.Fatalf("gone-01 health = %v, want %v", got, ProbeDead)
	}

	// The experiment lands while gone-01 is already dead.
	if _, err := c.SubmitExperiment("o", "late", pingAssignments("gone-01", 2)); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingFor("gone-01"); got != 2 {
		t.Fatalf("pending on dead probe = %d, want 2", got)
	}

	// Next sweep moves the queue onto the surviving same-ASN peer.
	c.Tick(1)
	if got := c.PendingFor("gone-01"); got != 0 {
		t.Fatalf("dead probe still holds %d tasks", got)
	}
	if got := c.PendingFor("peer-01"); got != 2 {
		t.Fatalf("peer queue = %d, want 2", got)
	}
	if got := c.Stats().Counters["tasks_reassigned"]; got != 2 {
		t.Fatalf("tasks_reassigned = %d, want 2", got)
	}
}
