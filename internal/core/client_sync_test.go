package core

// client_sync_test.go pins the client side of the batched hot path:
// the wire encoding of lease and sync calls (including the max=0
// regression from the original LeaseTasks) and the DrainWithSync round
// loop — one request per round, spool acked only after acceptance,
// long-poll only when idle.

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/spool"
)

// queryRecorder wraps a handler and keeps each request's op-relevant
// URL parts in arrival order.
type queryRecorder struct {
	http.Handler
	mu   sync.Mutex
	seen []url.URL
}

func (q *queryRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q.mu.Lock()
	q.seen = append(q.seen, *r.URL)
	q.mu.Unlock()
	q.Handler.ServeHTTP(w, r)
}

func (q *queryRecorder) urls() []url.URL {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]url.URL(nil), q.seen...)
}

// TestClientLeaseTasksMaxEncoding: max <= 0 means "server default" and
// must not appear on the wire. The original client sent a literal
// max=0, which the server clamps to zero tasks — every default-ask
// poll came back empty.
func TestClientLeaseTasksMaxEncoding(t *testing.T) {
	c := NewController()
	mustRegister(t, c, "cl-01", 36924, "RW")
	rec := &queryRecorder{Handler: c.Handler()}
	srv := httptest.NewServer(rec)
	defer srv.Close()
	cl := NewClient(srv.URL)

	if _, err := cl.LeaseTasks("cl-01", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.LeaseTasks("cl-01", 7); err != nil {
		t.Fatal(err)
	}
	urls := rec.urls()
	if len(urls) != 2 {
		t.Fatalf("%d requests, want 2", len(urls))
	}
	if _, has := urls[0].Query()["max"]; has {
		t.Fatalf("max=0 leaked onto the wire: %s", urls[0].RequestURI())
	}
	if got := urls[1].Query().Get("max"); got != "7" {
		t.Fatalf("explicit ask encoded as max=%q, want 7", got)
	}
}

// TestClientSyncWaitEncoding: wait=0 sends no query; a positive wait
// rides as a Go duration string.
func TestClientSyncWaitEncoding(t *testing.T) {
	c := NewController()
	mustRegister(t, c, "cl-01", 36924, "RW")
	rec := &queryRecorder{Handler: c.Handler()}
	srv := httptest.NewServer(rec)
	defer srv.Close()
	cl := NewClient(srv.URL)

	if _, err := cl.Sync(SyncRequest{ProbeID: "cl-01"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Sync(SyncRequest{ProbeID: "cl-01"}, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	urls := rec.urls()
	if len(urls) != 2 {
		t.Fatalf("%d requests, want 2", len(urls))
	}
	if urls[0].RawQuery != "" {
		t.Fatalf("wait=0 sent query %q, want none", urls[0].RawQuery)
	}
	if got := urls[1].Query().Get("wait"); got != "1.5s" {
		t.Fatalf("wait encoded as %q, want 1.5s", got)
	}
}

// TestDrainWithSyncRoundTrips runs a full probe drain over the batched
// path and counts requests: 5 queued tasks cost exactly two sync
// round-trips (lease round + deliver round), every result lands
// recorded, and the spool ends empty — nothing stranded, nothing
// double-delivered.
func TestDrainWithSyncRoundTrips(t *testing.T) {
	ctrl := NewController("owner")
	mustRegister(t, ctrl, "kgl-01", 36924, "RW")
	if _, err := ctrl.SubmitExperiment("owner", "drain", pingAssignments("kgl-01", 5)); err != nil {
		t.Fatal(err)
	}
	rec := &queryRecorder{Handler: ctrl.Handler()}
	srv := httptest.NewServer(rec)
	defer srv.Close()
	cl := NewClient(srv.URL)
	sp, err := spool.Open(t.TempDir(), spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	agent := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true},
		testNet, testDNS, testWeb)

	n, err := DrainWithSync(cl, agent, sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("executed %d tasks, want 5", n)
	}
	if got := len(rec.urls()); got != 2 {
		t.Fatalf("drain cost %d round-trips, want 2 (lease, then deliver+empty-lease)", got)
	}
	if sp.Len() != 0 {
		t.Fatalf("%d results stranded in the spool", sp.Len())
	}
	st := ctrl.Stats()
	if st.Counters["results_recorded"] != 5 || st.OutstandingLeases != 0 {
		t.Fatalf("recorded=%d outstanding=%d, want 5/0",
			st.Counters["results_recorded"], st.OutstandingLeases)
	}
	// Heartbeat rode along: the probe was touched without a single
	// heartbeat call.
	if st.Counters["syncs"] != 2 || st.Counters["heartbeats"] != 0 {
		t.Fatalf("syncs=%d heartbeats=%d, want 2/0",
			st.Counters["syncs"], st.Counters["heartbeats"])
	}
}

// TestDrainWithSyncParksOnlyWhenIdle: rounds with an empty spool offer
// the long-poll wait (the server answers immediately when work is
// queued), while delivery rounds — results in hand — must not park.
func TestDrainWithSyncParksOnlyWhenIdle(t *testing.T) {
	ctrl := NewController("owner")
	mustRegister(t, ctrl, "kgl-01", 36924, "RW")
	if _, err := ctrl.SubmitExperiment("owner", "drain", pingAssignments("kgl-01", 3)); err != nil {
		t.Fatal(err)
	}
	rec := &queryRecorder{Handler: ctrl.Handler()}
	srv := httptest.NewServer(rec)
	defer srv.Close()
	cl := NewClient(srv.URL)
	sp, err := spool.Open(t.TempDir(), spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	agent := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true},
		testNet, testDNS, testWeb)

	if _, err := DrainWithSync(cl, agent, sp, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	urls := rec.urls()
	if len(urls) != 2 {
		t.Fatalf("%d requests, want 2", len(urls))
	}
	// Round 1: spool empty, so the wait rides along (the queued tasks
	// make the server answer at once).
	if got := urls[0].Query().Get("wait"); got != "30ms" {
		t.Fatalf("idle round sent wait=%q, want 30ms", got)
	}
	// Round 2: three results in hand — delivering must not park.
	if got := urls[1].Query().Get("wait"); got != "" {
		t.Fatalf("delivery round parked: wait=%q, want none", got)
	}
}
