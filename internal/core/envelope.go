package core

// envelope.go is the single place in internal/core that writes HTTP
// response bodies and status codes. scripts/check.sh lints the rest of
// the package against http.Error / naked WriteHeader calls, so every
// handler goes through writeJSON / writeAPIError and every non-2xx
// response carries the same machine-readable envelope:
//
//	{"error": {"code": "<machine_code>", "message": "...", "request_id": "..."}}

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
)

// Stable machine-readable error codes of the v1 API.
const (
	ErrCodeBadRequest       = "bad_request"
	ErrCodeNotFound         = "not_found"
	ErrCodeMethodNotAllowed = "method_not_allowed"
	ErrCodeBodyTooLarge     = "body_too_large"
	ErrCodeUnavailable      = "unavailable"
	ErrCodeRateLimited      = "rate_limited"
	// ErrCodeShardUnavailable is returned by the federation coordinator
	// when the single shard that owns a request's keyspace is down and
	// has not yet failed over: unlike "unavailable" (whole controller
	// replaying), only one shard's keys are affected and the client
	// should honor Retry-After, not trip its breaker.
	ErrCodeShardUnavailable = "shard_unavailable"
)

// RequestIDHeader carries the request id: clients may send one (any
// non-empty value) and the server echoes it; otherwise the server mints
// one. Either way the response carries the header and every error
// envelope repeats it, so a probe log line and a controller trace can
// be joined offline.
const RequestIDHeader = "X-Request-ID"

// apiErrorBody is the inner error object of the envelope.
type apiErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// errorEnvelope is the uniform non-2xx response body.
type errorEnvelope struct {
	Error apiErrorBody `json:"error"`
}

// writeJSON writes a JSON response. The only success-path writer in the
// package.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeAPIError writes the uniform error envelope. The request id is
// read back from the response header, which ensureRequestID set before
// any handler ran.
func writeAPIError(w http.ResponseWriter, status int, code string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	writeJSON(w, status, errorEnvelope{Error: apiErrorBody{
		Code:      code,
		Message:   msg,
		RequestID: w.Header().Get(RequestIDHeader),
	}})
}

// ensureRequestID echoes the client's request id (or mints one) into
// the response header and returns it.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" || len(id) > 128 {
		id = mintRequestID()
	}
	w.Header().Set(RequestIDHeader, id)
	return id
}

// WriteJSON, WriteAPIError, and EnsureRequestID expose the envelope
// writers to sibling front ends — the federation coordinator in
// internal/federation serves the same v1 surface and must speak
// byte-identical envelopes. internal/core itself keeps using the
// unexported forms so the envelope lint stays meaningful.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) { writeJSON(w, code, v) }

// WriteAPIError writes the uniform error envelope (see writeAPIError).
func WriteAPIError(w http.ResponseWriter, status int, code string, err error) {
	writeAPIError(w, status, code, err)
}

// EnsureRequestID echoes or mints the request id (see ensureRequestID).
func EnsureRequestID(w http.ResponseWriter, r *http.Request) string {
	return ensureRequestID(w, r)
}

// mintRequestID generates an opaque server-side request id.
func mintRequestID() string {
	var buf [8]byte
	_, _ = crand.Read(buf[:]) // opaque id; zero bytes on entropy failure are acceptable
	return "srv-" + hex.EncodeToString(buf[:])
}

// statusRecorder captures the status code a handler wrote so the
// router can tag histograms, traces, and slow-request logs with it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}
