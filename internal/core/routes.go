package core

// routes.go is the v1 API surface: a declarative, method-aware route
// table that replaces the per-handler method checks and manual path
// splitting earlier revisions accumulated. The router is the one place
// that enforces methods (405 + Allow), applies the request body cap
// (413), assigns request ids, and tags each request with the route name
// used by latency histograms and traces. The same table self-describes
// the API: API.md is generated from it (cmd/apidoc), and the
// conformance test walks it.

import (
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/afrinet/observatory/internal/obs"
)

// pathParams are the captured {name} segments of a matched route.
type pathParams map[string]string

// paramDoc documents one path or query parameter for API.md.
type paramDoc struct {
	Name string
	Doc  string
}

// routeDef is one endpoint: routing metadata, self-description for the
// generated API reference, and the handler.
type routeDef struct {
	Name     string // histogram/trace tag, e.g. "probe_tasks"
	Method   string
	Pattern  string // "/api/v1/probes/{id}/tasks"
	Summary  string
	Query    []paramDoc // query parameters
	Request  string     // request body schema, "" = none
	Response string     // response body schema
	Errors   []string   // error codes beyond the universal ones
	// Priority classes the route for admission control: high-priority
	// field traffic is shed last, low-priority analyst traffic first
	// (see admission.go).
	Priority RoutePriority
	handle   func(*Controller, http.ResponseWriter, *http.Request, pathParams)
}

// page is the uniform list-response shape of the v1 API: every list
// endpoint returns {"items": [...], "next_cursor": "..."} (next_cursor
// omitted on the last page). The legacy bare-array shape is gone from
// the server; the client still accepts it for one release when talking
// to older controllers.
type page struct {
	Items      interface{} `json:"items"`
	NextCursor string      `json:"next_cursor,omitempty"`
}

// apiRoutes is the v1 route table. Order is the order API.md documents
// them in.
var apiRoutes = []routeDef{
	{
		Name: "probe_register", Method: http.MethodPost, Pattern: "/api/v1/probes/register",
		Summary:  "Register (or update) a vantage point. Registration counts as probe contact.",
		Request:  "ProbeInfo {id, asn, country, has_wired, kind}",
		Response: `{"id": "<probe id>"}`,
		Errors:   []string{ErrCodeBadRequest, ErrCodeBodyTooLarge},
		Priority: PriorityHigh,
		handle:   (*Controller).handleRegister,
	},
	{
		Name: "probes_list", Method: http.MethodGet, Pattern: "/api/v1/probes",
		Summary:  "List registered probes sorted by id.",
		Response: "page of ProbeInfo",
		Priority: PriorityLow,
		handle:   (*Controller).handleProbes,
	},
	{
		Name: "probe_tasks", Method: http.MethodGet, Pattern: "/api/v1/probes/{id}/tasks",
		Summary: "Lease up to max queued tasks for the probe under the at-least-once lease protocol.",
		Query: []paramDoc{
			{Name: "max", Doc: "lease size cap; positive integer, 0 or omitted means the server default of 32"},
		},
		Response: "[]Task (bare array: the lease protocol payload, not a paginated list)",
		Errors:   []string{ErrCodeBadRequest, ErrCodeUnavailable},
		Priority: PriorityHigh,
		handle:   (*Controller).handleProbeTasks,
	},
	{
		Name: "probe_results", Method: http.MethodPost, Pattern: "/api/v1/probes/{id}/results",
		Summary:  "Upload a result batch. Idempotent: duplicates are deduplicated by (experiment, task).",
		Request:  "[]Result",
		Response: `{"accepted": n, "received": m}`,
		Errors:   []string{ErrCodeBadRequest, ErrCodeBodyTooLarge},
		Priority: PriorityHigh,
		handle:   (*Controller).handleProbeResults,
	},
	{
		Name: "probe_heartbeat", Method: http.MethodPost, Pattern: "/api/v1/probes/{id}/heartbeat",
		Summary:  "Record liveness contact from a probe with no lease or result traffic to piggyback on.",
		Response: `{"status": "ok"}`,
		Errors:   []string{ErrCodeNotFound},
		Priority: PriorityHigh,
		handle:   (*Controller).handleProbeHeartbeat,
	},
	{
		Name: "probe_sync", Method: http.MethodPost, Pattern: "/api/v1/probes/sync",
		Summary: "Batched probe round-trip: heartbeat + spooled result upload + task-lease ask in one request, covered by a single journal append/fsync. The fleet-scale replacement for separate heartbeat/tasks/results calls.",
		Query: []paramDoc{
			{Name: "wait", Doc: "long-poll duration (e.g. 5s, capped at 30s): with no tasks to grant, the call parks until tasks are enqueued for the probe or the deadline passes. Omitted or 0 answers immediately. Federation coordinators answer immediately regardless — parking belongs to the shard owning the probe's queue"},
		},
		Request:  `SyncRequest {probe_id, results?: [Result], max?: 0 = server default of 32, < 0 = no lease}`,
		Response: `SyncResponse {"accepted": n, "received": m, "tasks": [Task]} — accepted < received on retried uploads is dedup, not an error`,
		Errors:   []string{ErrCodeBadRequest, ErrCodeNotFound, ErrCodeBodyTooLarge},
		Priority: PriorityHigh,
		handle:   (*Controller).handleProbeSync,
	},
	{
		Name: "experiment_submit", Method: http.MethodPost, Pattern: "/api/v1/experiments",
		Summary:  "Submit an experiment for vetting. Idempotent per request_id; trusted owners are auto-approved.",
		Request:  `{"request_id"?, "id"?, "owner", "description", "assignments": [Assignment]} — id pins the experiment id (federation coordinators); omitted mints exp-NNNN`,
		Response: "Experiment",
		Errors:   []string{ErrCodeBadRequest, ErrCodeBodyTooLarge},
		Priority: PriorityHigh,
		handle:   (*Controller).handleSubmit,
	},
	{
		Name: "experiment_get", Method: http.MethodGet, Pattern: "/api/v1/experiments/{id}",
		Summary:  "Fetch one experiment's vetting status and assignments.",
		Response: "Experiment",
		Errors:   []string{ErrCodeNotFound},
		Priority: PriorityLow,
		handle:   (*Controller).handleExperimentGet,
	},
	{
		Name: "experiment_approve", Method: http.MethodPost, Pattern: "/api/v1/experiments/{id}/approve",
		Summary:  "Approve a pending experiment and schedule its tasks. Idempotent.",
		Response: `{"status": "approved"}`,
		Errors:   []string{ErrCodeBadRequest},
		Priority: PriorityHigh,
		handle:   (*Controller).handleExperimentApprove,
	},
	{
		Name: "experiment_results", Method: http.MethodGet, Pattern: "/api/v1/experiments/{id}/results",
		Summary: "Page through one experiment's collected results.",
		Query: []paramDoc{
			{Name: "limit", Doc: "page size; 0 or omitted returns everything"},
			{Name: "cursor", Doc: "opaque position from the previous page's next_cursor"},
		},
		Response: "page of Result",
		Errors:   []string{ErrCodeBadRequest},
		Priority: PriorityLow,
		handle:   (*Controller).handleExperimentResults,
	},
	{
		Name: "query", Method: http.MethodGet, Pattern: "/api/v1/query",
		Summary: "Query the results store: filtered scans and time-window aggregations.",
		Query: []paramDoc{
			{Name: "op", Doc: "aggregate (default) or scan"},
			{Name: "experiment / country / asn / kind / verdict / resolver_chain / ecs / from_tick / to_tick", Doc: "record filters; ecs is true/false; tick bounds inclusive"},
			{Name: "group_by", Doc: "aggregate only: none, country, asn, country_asn, verdict, resolver, country_resolver, resolver_chain, ecs"},
			{Name: "limit / cursor", Doc: "scan only: pagination"},
		},
		Response: `op=aggregate: AggReport; op=scan: page of Record. Served by a federation coordinator, both carry "degraded": true plus "shards_missing": [shard ids] when shards timed out or were down — the data is correct but partial, never silently wrong`,
		Errors:   []string{ErrCodeBadRequest},
		Priority: PriorityLow,
		handle:   (*Controller).handleQuery,
	},
	{
		Name: "health", Method: http.MethodGet, Pattern: "/api/v1/health",
		Summary:  "Fleet-health summary: probe liveness counts, queue and lease depth.",
		Response: "HealthReport",
		Priority: PriorityHigh,
		handle:   (*Controller).handleHealth,
	},
	{
		Name: "stats", Method: http.MethodGet, Pattern: "/api/v1/stats",
		Summary:  "Pipeline, durability, and store counters plus per-probe status.",
		Response: "StatsReport",
		Priority: PriorityLow,
		handle:   (*Controller).handleStats,
	},
	{
		Name: "debug_traces", Method: http.MethodGet, Pattern: "/api/v1/debug/traces",
		Summary: "The slowest recent requests as span trees (handler → mutator → journal fsync / store append).",
		Query: []paramDoc{
			{Name: "slowest", Doc: "how many traces to return, default 10"},
		},
		Response: "page of TraceView",
		Errors:   []string{ErrCodeBadRequest},
		Priority: PriorityLow,
		handle:   (*Controller).handleDebugTraces,
	},
	{
		Name: "metrics", Method: http.MethodGet, Pattern: "/metrics",
		Summary:  "Prometheus text exposition: route/mutator/store latency histograms and event counters, deterministically ordered.",
		Response: "Prometheus text format 0.0.4",
		Priority: PriorityHigh,
		handle:   (*Controller).handleMetrics,
	},
}

// RouteInfo is the exported self-description of one route, consumed by
// the API.md generator and the conformance test.
type RouteInfo struct {
	Name     string
	Method   string
	Pattern  string
	Summary  string
	Query    [][2]string // name, doc
	Request  string
	Response string
	Errors   []string
	Priority string // admission class: "high" or "low"
}

// APIRoutes returns the self-description of the full v1 route table in
// documentation order.
func APIRoutes() []RouteInfo {
	out := make([]RouteInfo, 0, len(apiRoutes))
	for _, rt := range apiRoutes {
		info := RouteInfo{
			Name:     rt.Name,
			Method:   rt.Method,
			Pattern:  rt.Pattern,
			Summary:  rt.Summary,
			Request:  rt.Request,
			Response: rt.Response,
			Errors:   append([]string(nil), rt.Errors...),
			Priority: rt.Priority.String(),
		}
		for _, q := range rt.Query {
			info.Query = append(info.Query, [2]string{q.Name, q.Doc})
		}
		out = append(out, info)
	}
	return out
}

// compiledRoute is a table entry plus its pre-split pattern and the
// pre-created latency histogram series.
type compiledRoute struct {
	def  routeDef
	segs []string
	hist *obs.Histogram
}

// router matches requests against the route table and wraps every
// handler with the observability middleware: request ids, body caps,
// per-route latency histograms, span traces, and slow-request logging.
type router struct {
	c      *Controller
	routes []*compiledRoute
	ring   *obs.TraceRing
	slow   time.Duration
}

// DefaultSlowRequest is the threshold above which a request emits one
// structured slow-request log line.
const DefaultSlowRequest = 500 * time.Millisecond

// DefaultTraceRing is how many finished request traces the controller
// retains for /api/v1/debug/traces.
const DefaultTraceRing = 256

// Handler exposes the controller's v1 API (see API.md, generated from
// this route table). Every response carries X-Request-ID; non-2xx
// responses share the {"error": {code, message, request_id}} envelope;
// list responses share the {items, next_cursor} page shape; request
// bodies are bounded at MaxBodyBytes (413 beyond). Per-route latency
// lands in the obs_http_request_seconds histogram (GET /metrics) and
// every request leaves a span tree in the trace ring
// (GET /api/v1/debug/traces).
func (c *Controller) Handler() http.Handler {
	rt := &router{c: c, ring: c.ring, slow: c.SlowRequest}
	for i := range apiRoutes {
		def := apiRoutes[i]
		rt.routes = append(rt.routes, &compiledRoute{
			def:  def,
			segs: strings.Split(strings.TrimPrefix(def.Pattern, "/"), "/"),
			hist: c.reg.Hist("obs_http_request_seconds", "route", def.Name),
		})
	}
	return rt
}

// match finds the route for (method, path). When only the method
// mismatches it returns the set of allowed methods for the 405.
func (rt *router) match(method, path string) (*compiledRoute, pathParams, []string) {
	// Only the leading slash is trimmed: a trailing slash is a real
	// (empty) segment, so "/api/v1/experiments/" falls through to 404
	// rather than matching the collection route.
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	var allowed []string
	for _, cr := range rt.routes {
		params, ok := matchSegs(cr.segs, segs)
		if !ok {
			continue
		}
		if cr.def.Method == method {
			return cr, params, nil
		}
		allowed = append(allowed, cr.def.Method)
	}
	sort.Strings(allowed)
	return nil, nil, allowed
}

// matchSegs matches concrete path segments against a pattern; {name}
// captures any non-empty segment.
func matchSegs(pattern, segs []string) (pathParams, bool) {
	if len(pattern) != len(segs) {
		return nil, false
	}
	var params pathParams
	for i, p := range pattern {
		if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
			if segs[i] == "" {
				return nil, false
			}
			if params == nil {
				params = make(pathParams, 2)
			}
			params[p[1:len(p)-1]] = segs[i]
			continue
		}
		if p != segs[i] {
			return nil, false
		}
	}
	return params, true
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := ensureRequestID(w, r)
	cr, params, allowed := rt.match(r.Method, r.URL.Path)
	if cr == nil {
		if len(allowed) > 0 {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			writeAPIError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed,
				errMethod(allowed))
			return
		}
		writeAPIError(w, http.StatusNotFound, ErrCodeNotFound, errNotFound)
		return
	}
	// Admission runs after the route is known (shedding is per-route and
	// per-priority) but before any trace or body work is spent on a
	// request the controller will refuse.
	release, ok := rt.c.adm.admit(cr.def.Name, cr.def.Priority)
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(rt.c.adm.retryAfterSeconds()))
		writeAPIError(w, http.StatusTooManyRequests, ErrCodeRateLimited, errRateLimited(cr.def.Name))
		return
	}
	defer release()
	if r.Method == http.MethodPost {
		r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	}
	tr := obs.NewTrace(reqID, cr.def.Name, r.Method)
	r = r.WithContext(obs.WithSpan(r.Context(), tr.Root()))
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

	cr.def.handle(rt.c, rec, r, params)

	view, dur := tr.Finish(rec.status)
	cr.hist.Observe(dur)
	if rt.ring != nil {
		rt.ring.Add(view)
	}
	if rt.slow > 0 && dur >= rt.slow {
		log.Printf("obs: slow request route=%s method=%s status=%d dur=%s request_id=%s",
			cr.def.Name, r.Method, rec.status, dur.Round(time.Microsecond), reqID)
	}
}
