package core

import (
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/ixp"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// Placement strategies. The observatory's is purpose-driven (cover every
// exchange, stay mobile-representative); the RIPE-Atlas-like baseline
// reflects the geographic and access-technology bias the paper measures
// in Section 6.2.

// TargetedPlacement selects the observatory's vantage networks:
//   - the greedy set cover of exchange memberships, so every African IXP
//     has a probe inside a member AS (footnote 1's 34-ASN cover);
//   - each African country's dominant mobile carrier, for last-mile
//     representativeness (Section 7.1's mobile focus).
func TargetedPlacement(t *topology.Topology) []topology.ASN {
	dir := registry.AfricanIXPs(t)
	cover := ixp.GreedySetCover(dir)
	chosen := map[topology.ASN]bool{}
	for _, a := range cover.Chosen {
		chosen[a] = true
	}
	for _, c := range geo.AfricanCountries() {
		if m := dominantMobile(t, c.ISO2); m != 0 {
			chosen[m] = true
		}
	}
	out := make([]topology.ASN, 0, len(chosen))
	for a := range chosen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dominantMobile picks a country's oldest mobile carrier.
func dominantMobile(t *topology.Topology, iso2 string) topology.ASN {
	var best topology.ASN
	bestBorn := 1 << 30
	for _, a := range t.ASesIn(iso2) {
		as := t.ASes[a]
		if as.Type != topology.ASMobileCarrier {
			continue
		}
		if as.Born < bestBorn || (as.Born == bestBorn && a < best) {
			best, bestBorn = a, as.Born
		}
	}
	return best
}

// AtlasPlacement models the existing global platform's African
// footprint: probes sit overwhelmingly in fixed-line academic,
// enterprise, and incumbent networks, concentrated in the mature
// markets — under-representing mobile carriers and entire subregions
// (the bias of Section 6.2). n caps the probe count (Atlas's African
// deployment is small); countries are visited in a maturity-weighted
// order so the cap bites the under-served regions first.
func AtlasPlacement(t *topology.Topology, n int) []topology.ASN {
	if n <= 0 {
		n = 48
	}
	// Region quotas as fractions of the deployment: mature markets hold
	// most probes, Central and Northern a handful.
	quota := map[geo.Region]int{
		geo.AfricaSouthern: n * 26 / 100,
		geo.AfricaEastern:  n * 30 / 100,
		geo.AfricaNorthern: n * 12 / 100,
		geo.AfricaWestern:  n * 20 / 100,
		geo.AfricaCentral:  n * 12 / 100,
	}
	var out []topology.ASN
	for _, r := range geo.AfricanRegions() {
		want := quota[r]
		if want < 2 {
			want = 2
		}
		got := 0
		// Round-robin over the region's countries so several probes can
		// land in the same country (as Atlas's do in anchors' metros).
		for round := 0; round < 4 && got < want; round++ {
			for _, c := range geo.CountriesIn(r) {
				if got >= want {
					break
				}
				count := 0
				for _, a := range t.ASesIn(c.ISO2) {
					as := t.ASes[a]
					// Fixed-line and academic bias; no mobile carriers.
					if as.Type != topology.ASEducation && as.Type != topology.ASFixedISP &&
						as.Type != topology.ASEnterprise {
						continue
					}
					if count == round {
						out = append(out, a)
						got++
						break
					}
					count++
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
