package core

// sync.go is the fleet-scale hot path: POST /api/v1/probes/sync folds a
// probe's whole round into one request — the heartbeat, every spooled
// result it has to deliver, and the ask for its next task lease — and
// the controller folds the whole batch into ONE journal record (opSync),
// so one append and one fsync cover work that previously cost a fsync
// per heartbeat, per lease, and per upload. With ?wait=<duration> the
// call long-polls: a probe with an empty queue parks on a per-probe
// channel until tasks are enqueued for it (experiment approval, queue
// reassignment, lease-expiry requeue) or the deadline passes. Wakeups
// are driven by the enqueue sites themselves — which the tick sweep
// calls — so parked probes cost no busy polling and nothing here reads
// the wall clock into journaled state (the deadline timer is a plain
// duration timer, invisible to replay).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/store"
)

// ErrUnknownProbe rejects sync (and heartbeat) traffic from a probe the
// fleet book has never seen; handlers map it to 404.
var ErrUnknownProbe = errors.New("core: unknown probe")

// DefaultLeaseMax is the lease size used when a client asks for the
// server default (max = 0 on the tasks and sync endpoints).
const DefaultLeaseMax = 32

// MaxSyncWait caps ?wait= so a misconfigured probe cannot park a
// request slot indefinitely.
const MaxSyncWait = 30 * time.Second

// SyncRequest is the batched probe round-trip body. Max semantics: 0
// asks for the server default lease (DefaultLeaseMax), > 0 caps the
// lease, < 0 delivers results/heartbeat only, no lease.
type SyncRequest struct {
	ProbeID string          `json:"probe_id"`
	Results []probes.Result `json:"results,omitempty"`
	Max     int             `json:"max,omitempty"`
}

// SyncResponse acknowledges the batch and carries the granted lease.
// Accepted counts results newly recorded (duplicates dedup to zero);
// Received echoes the batch size, so Accepted < Received on retries is
// expected, not an error.
type SyncResponse struct {
	Accepted int           `json:"accepted"`
	Received int           `json:"received"`
	Tasks    []probes.Task `json:"tasks"`
}

// resolveSyncMax maps the wire Max to the journaled lease cap.
func resolveSyncMax(max int) int {
	if max == 0 {
		return DefaultLeaseMax
	}
	return max
}

// SyncProbe executes one batched round: validate and store the result
// payloads, then journal heartbeat + result refs + lease grant as a
// single opSync record. Errors mirror SubmitResults — an unknown probe,
// experiment, or task rejects the whole batch without recording
// anything, so the probe keeps its spool and retries intact.
func (c *Controller) SyncProbe(probeID string, rs []probes.Result, max int) (SyncResponse, error) {
	return c.syncCtx(context.Background(), probeID, rs, max)
}

func (c *Controller) syncCtx(ctx context.Context, probeID string, rs []probes.Result, max int) (SyncResponse, error) {
	max = resolveSyncMax(max)
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	st, ok := c.probes[probeID]
	if !ok {
		if len(rs) > 0 {
			c.stats.Inc("results_rejected")
		}
		return SyncResponse{}, fmt.Errorf("%w %s", ErrUnknownProbe, probeID)
	}
	for _, r := range rs {
		ids, ok := c.taskIDs[r.Experiment]
		if !ok {
			c.stats.Inc("results_rejected")
			return SyncResponse{}, fmt.Errorf("core: unknown experiment %q in result for task %q", r.Experiment, r.TaskID)
		}
		if !ids[r.TaskID] {
			c.stats.Inc("results_rejected")
			return SyncResponse{}, fmt.Errorf("core: unknown task %q in experiment %s", r.TaskID, r.Experiment)
		}
	}
	// Payloads go to the results store before the refs are journaled,
	// exactly as on the plain results path: a crash between the two
	// leaves an unacknowledged payload that read-time dedup collapses
	// when the probe's retry lands.
	refs := make([]resultRef, 0, len(rs))
	var fresh []store.Record
	batch := make(map[string]bool, len(rs))
	for _, r := range rs {
		refs = append(refs, resultRef{Experiment: r.Experiment, TaskID: r.TaskID})
		key := r.Experiment + "/" + r.TaskID
		if c.recorded[r.Experiment][r.TaskID] || batch[key] {
			continue // a replayed duplicate; nothing new to store
		}
		batch[key] = true
		r.ProbeID = probeID
		fresh = append(fresh, store.Record{
			Experiment: r.Experiment,
			TaskID:     r.TaskID,
			ProbeID:    probeID,
			Tick:       c.now,
			Country:    st.info.Country,
			ASN:        st.info.ASN,
			Result:     r,
		})
	}
	storeSpan := c.span.Child("store.append")
	err := c.store.Append(fresh...)
	storeSpan.End()
	if err != nil {
		c.dur.Inc("store_append_errors")
		return SyncResponse{}, fmt.Errorf("core: results store: %w", err)
	}
	op := syncOp{ProbeID: probeID, Refs: refs, Max: max}
	resp := SyncResponse{Received: len(rs)}
	if err := c.mutateLocked(opSync, op, func() {
		resp.Accepted, resp.Tasks = c.applySyncLocked(op)
	}); err != nil {
		return SyncResponse{}, err
	}
	return resp, nil
}

// applySyncLocked is the journaled apply of one batched round: probe
// contact, then result bookkeeping, then the lease grant — results
// first so a task this very batch completed is dropped rather than
// re-leased if a requeued copy sits in the queue.
func (c *Controller) applySyncLocked(op syncOp) (int, []probes.Task) {
	if st, ok := c.probes[op.ProbeID]; ok {
		c.touchLocked(st)
	}
	c.stats.Inc("syncs")
	accepted := c.recordRefsLocked(op.Refs)
	var tasks []probes.Task
	if op.Max > 0 {
		tasks = c.grantLocked(op.ProbeID, op.Max)
	}
	return accepted, tasks
}

// notifyWaitersLocked wakes every sync call parked on probeID's queue.
// Called from the enqueue sites (approve, reassignment, lease-expiry
// requeue); during replay the parking lot is empty and this is a no-op,
// so the apply path stays deterministic.
func (c *Controller) notifyWaitersLocked(probeID string) {
	ws := c.waiters[probeID]
	if len(ws) == 0 {
		return
	}
	for _, ch := range ws {
		close(ch)
	}
	delete(c.waiters, probeID)
}

// syncWait registers a long-poll waiter for probeID. The queue check
// and the registration share one critical section, so an enqueue can
// never slip between "queue is empty" and "channel parked" — the
// classic missed-wakeup race. ready == true means tasks are already
// queued and the caller should lease instead of parking.
func (c *Controller) syncWait(probeID string) (ch chan struct{}, ready bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queues[probeID]) > 0 {
		return nil, true
	}
	ch = make(chan struct{})
	c.waiters[probeID] = append(c.waiters[probeID], ch)
	return ch, false
}

// dropWaiter removes a parked channel after a deadline or client
// disconnect (identity match; the channel may already have been closed
// and removed by a racing notify, which is fine).
func (c *Controller) dropWaiter(probeID string, target chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.waiters[probeID]
	for i, ch := range ws {
		if ch == target {
			c.waiters[probeID] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(c.waiters[probeID]) == 0 {
		delete(c.waiters, probeID)
	}
}

// leaseIfAvailableCtx grants a lease only when the probe's queue is
// non-empty, journaling nothing otherwise — a parked probe that wakes
// to a queue already drained by a competing request must not burn a
// journal record on an empty grant.
func (c *Controller) leaseIfAvailableCtx(ctx context.Context, probeID string, max int) []probes.Task {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queues[probeID]) == 0 {
		return nil
	}
	defer c.setSpanLocked(obs.SpanFrom(ctx))()
	var lease []probes.Task
	if err := c.mutateLocked(opLease, leaseOp{ProbeID: probeID, Max: max}, func() {
		lease = c.applyLeaseLocked(probeID, max)
	}); err != nil {
		return nil
	}
	return lease
}

// waitForTasks parks until tasks are granted, the wait elapses, or the
// client goes away. The deadline is a plain duration timer: it never
// reads the wall clock into controller state, so the journaled history
// is identical whether or not anyone long-polled.
func (c *Controller) waitForTasks(ctx context.Context, probeID string, max int, wait time.Duration) []probes.Task {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		ch, ready := c.syncWait(probeID)
		if !ready {
			select {
			case <-ch:
			case <-deadline.C:
				c.dropWaiter(probeID, ch)
				return nil
			case <-ctx.Done():
				c.dropWaiter(probeID, ch)
				return nil
			}
		}
		if tasks := c.leaseIfAvailableCtx(ctx, probeID, max); len(tasks) > 0 {
			return tasks
		}
		// Woken but granted nothing (the queued copies had completed
		// elsewhere, or a competing request drained the queue first):
		// keep waiting out the deadline.
		select {
		case <-deadline.C:
			return nil
		case <-ctx.Done():
			return nil
		default:
		}
	}
}

// handleProbeSync serves POST /api/v1/probes/sync.
func (c *Controller) handleProbeSync(w http.ResponseWriter, r *http.Request, _ pathParams) {
	var req SyncRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ProbeID == "" {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("probe_id required"))
		return
	}
	var wait time.Duration
	if s := r.URL.Query().Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Errorf("wait must be a non-negative duration, got %q", s))
			return
		}
		if d > MaxSyncWait {
			d = MaxSyncWait
		}
		wait = d
	}
	resp, err := c.syncCtx(r.Context(), req.ProbeID, req.Results, req.Max)
	if err != nil {
		if errors.Is(err, ErrUnknownProbe) {
			writeAPIError(w, http.StatusNotFound, ErrCodeNotFound, err)
			return
		}
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	if wait > 0 && req.Max >= 0 && len(resp.Tasks) == 0 {
		resp.Tasks = c.waitForTasks(r.Context(), req.ProbeID, resolveSyncMax(req.Max), wait)
	}
	if resp.Tasks == nil {
		resp.Tasks = []probes.Task{}
	}
	writeJSON(w, http.StatusOK, resp)
}
