package core

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/afrinet/observatory/internal/faultinject"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/spool"
)

// TestSpoolBacklogSurvivesProbeRestart is the durable-outbox contract
// end to end: a probe executes its whole queue behind a partition (every
// upload fails), is killed, restarts as a fresh process sharing only the
// spool directory, and delivers the backlog — with the controller's
// lease TTL set so high that lease expiry could never have recovered the
// work, and with zero server-side duplicates.
func TestSpoolBacklogSurvivesProbeRestart(t *testing.T) {
	ctrl := NewController("obs")
	ctrl.LeaseTTL = 1_000_000 // lease expiry must play no part
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	admin := NewClientSeeded(srv.URL, 99)
	if err := admin.Register(ProbeInfo{ID: "kgl-01", ASN: 36924, Country: "RW", HasWired: true}); err != nil {
		t.Fatal(err)
	}

	target := testNet.RouterAddr(15169, 0).String()
	var asg []probes.Assignment
	for i := 0; i < 12; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: "kgl-01",
			Task:    probes.Task{Kind: probes.TaskPing, Target: target},
		})
	}
	exp, err := admin.Submit("obs", "spool drill", asg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// ---- First life: lease, execute into the spool, die partitioned.
	ft := faultinject.New(7)
	cl := NewClientSeeded(srv.URL, 1)
	cl.HTTP = &http.Client{Timeout: 5 * time.Second, Transport: ft}
	cl.MaxAttempts = 2
	cl.Sleep = func(time.Duration) {}
	agent := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true}, testNet, testDNS, testWeb)

	sp, err := spool.Open(dir, spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := cl.LeaseTasks("kgl-01", 0)
	if err != nil || len(tasks) != len(asg) {
		t.Fatalf("lease: %d tasks, err=%v", len(tasks), err)
	}
	ft.SetPartitioned(true) // uplink dies after the lease landed
	n, err := agent.RunTasks(tasks, sp)
	if err != nil || n != len(tasks) {
		t.Fatalf("RunTasks = %d, %v", n, err)
	}
	if _, err := FlushSpool(cl, "kgl-01", sp, 64); err == nil {
		t.Fatal("flush through a partition succeeded; the drill tested nothing")
	}
	if sp.Len() != len(tasks) {
		t.Fatalf("spool holds %d results behind the partition, want %d", sp.Len(), len(tasks))
	}
	if err := sp.Close(); err != nil { // the power cut
		t.Fatal(err)
	}

	if got := ctrl.Results(exp.ID); len(got) != 0 {
		t.Fatalf("controller already has %d results; partition leaked", len(got))
	}

	// ---- Second life: fresh client and agent, same spool dir, link up.
	sp2, err := spool.Open(dir, spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if sp2.Len() != len(tasks) {
		t.Fatalf("reopened spool holds %d results, want %d", sp2.Len(), len(tasks))
	}
	if sp2.Counters()["spool_replayed"] == 0 {
		t.Fatal("reopen replayed nothing; the backlog came from memory, not disk")
	}
	cl2 := NewClientSeeded(srv.URL, 2)
	cl2.Sleep = func(time.Duration) {}
	agent2 := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true}, testNet, testDNS, testWeb)

	executed, err := DrainWithSpool(cl2, agent2, sp2)
	if err != nil {
		t.Fatalf("drain after restart: %v", err)
	}
	if executed != 0 {
		t.Fatalf("restart re-executed %d tasks; delivery should need no re-work", executed)
	}
	if sp2.Len() != 0 {
		t.Fatalf("spool still holds %d results after drain", sp2.Len())
	}

	// Exactly-once on the wire: every task completed, nothing deduped,
	// no lease ever expired — the spool alone carried the work across
	// the restart.
	if !ctrl.Done(exp.ID) {
		t.Fatalf("experiment not complete; stats=%+v", ctrl.Stats().Counters)
	}
	rs := ctrl.Results(exp.ID)
	if len(rs) != len(asg) {
		t.Fatalf("results = %d, want %d", len(rs), len(asg))
	}
	stats := ctrl.Stats()
	if got := stats.Counters["results_deduped"]; got != 0 {
		t.Fatalf("results_deduped = %d, want 0 (no duplicate deliveries)", got)
	}
	if got := stats.Counters["leases_expired"]; got != 0 {
		t.Fatalf("leases_expired = %d, want 0 (recovery must not lean on lease expiry)", got)
	}
	if got := stats.Counters["results_recorded"]; got != int64(len(asg)) {
		t.Fatalf("results_recorded = %d, want %d", got, len(asg))
	}
}

// TestSpoolRedeliveryAfterLostAckIsDeduped covers the other crash
// window: the upload lands but the probe dies before the ack is
// written. The restarted probe re-sends the batch; the controller
// absorbs it by dedup and the data is never double-counted.
func TestSpoolRedeliveryAfterLostAckIsDeduped(t *testing.T) {
	ctrl := NewController("obs")
	ctrl.LeaseTTL = 1_000_000
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	admin := NewClientSeeded(srv.URL, 99)
	if err := admin.Register(ProbeInfo{ID: "kgl-01", ASN: 36924, Country: "RW", HasWired: true}); err != nil {
		t.Fatal(err)
	}
	target := testNet.RouterAddr(15169, 0).String()
	var asg []probes.Assignment
	for i := 0; i < 4; i++ {
		asg = append(asg, probes.Assignment{
			ProbeID: "kgl-01",
			Task:    probes.Task{Kind: probes.TaskPing, Target: target},
		})
	}
	exp, err := admin.Submit("obs", "lost-ack drill", asg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cl := NewClientSeeded(srv.URL, 1)
	cl.Sleep = func(time.Duration) {}
	agent := probes.NewAgent(probes.Config{ID: "kgl-01", ASN: 36924, HasWired: true}, testNet, testDNS, testWeb)

	sp, err := spool.Open(dir, spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := cl.LeaseTasks("kgl-01", 0)
	if err != nil || len(tasks) != len(asg) {
		t.Fatalf("lease: %d tasks, err=%v", len(tasks), err)
	}
	if _, err := agent.RunTasks(tasks, sp); err != nil {
		t.Fatal(err)
	}
	// The upload succeeds but the probe dies before Ack hits the spool.
	rs, _ := sp.Peek(0)
	if err := cl.SubmitResults("kgl-01", rs); err != nil {
		t.Fatal(err)
	}
	sp.Close()

	sp2, err := spool.Open(dir, spool.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if sp2.Len() != len(tasks) {
		t.Fatalf("reopened spool holds %d, want %d (ack was never written)", sp2.Len(), len(tasks))
	}
	if _, err := FlushSpool(cl, "kgl-01", sp2, 64); err != nil {
		t.Fatal(err)
	}
	if sp2.Len() != 0 {
		t.Fatalf("spool still holds %d after redelivery", sp2.Len())
	}

	if !ctrl.Done(exp.ID) {
		t.Fatal("experiment not complete")
	}
	if got := ctrl.Results(exp.ID); len(got) != len(asg) {
		t.Fatalf("results = %d, want %d (redelivery double-counted?)", len(got), len(asg))
	}
	if got := ctrl.Stats().Counters["results_deduped"]; got != int64(len(asg)) {
		t.Fatalf("results_deduped = %d, want %d (the redelivered batch)", got, len(asg))
	}
}

// TestProbeResilienceCountersInMetricsExposition wires a client and a
// spool into an obs.Registry exactly as cmd/obsprobe does and walks the
// Prometheus exposition for the probe-side resilience counters: spool
// depth and evictions, breaker trips, Retry-After honors.
func TestProbeResilienceCountersInMetricsExposition(t *testing.T) {
	// A breaker trip: three consecutive transport failures.
	connRefused := fmt.Errorf("dial tcp: connection refused")
	cl, _, _ := scriptedClient([]scriptStep{{err: connRefused}, {err: connRefused}, {err: connRefused}})
	cl.MaxAttempts = 1
	cl.BreakerThreshold = 3
	for i := 0; i < 3; i++ {
		_ = cl.Heartbeat("p1")
	}
	// A Retry-After honored on retry.
	cl2, _, _ := scriptedClient([]scriptStep{{status: 429, retryAfter: "1"}})
	cl2.MaxAttempts = 2
	_ = cl2.Heartbeat("p1")

	// A spool with evictions and a pending backlog.
	sp, err := spool.Open(t.TempDir(), spool.Options{MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for i := 0; i < 4; i++ {
		if err := sp.Append(probes.Result{TaskID: "t", Experiment: "e", ProbeID: "p1", OK: true}); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	reg.AddCounters("obs_probe_resilience_total", func() map[string]int64 {
		out := cl.ResilienceCounters()
		for k, v := range cl2.ResilienceCounters() {
			out[k] += v
		}
		for k, v := range sp.Counters() {
			out[k] = v
		}
		return out
	})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`obs_probe_resilience_total{name="spool_frames_pending"} 2`,
		`obs_probe_resilience_total{name="spool_evicted"} 2`,
		`obs_probe_resilience_total{name="breaker_open_total"} 1`,
		`obs_probe_resilience_total{name="retry_after_honored"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing %s in exposition:\n%s", series, text)
		}
	}
}
