package core

// observability.go wires internal/obs into the control plane: the
// metric registry behind GET /metrics, the trace ring behind
// GET /api/v1/debug/traces, and the span plumbing that lets a request
// trace descend from the HTTP handler through the mutator into the
// journal append/fsync and the results-store append. The controller's
// own packages never read the wall clock (scripts/check.sh enforces
// it); every timing measurement here goes through obs.Timer / obs.Span.

import (
	"github.com/afrinet/observatory/internal/obs"
)

// Metric families exposed on /metrics. Histogram buckets are log-scaled
// seconds (1µs .. ~67s, then +Inf).
const (
	// MetricHTTP has one series per route (label route=<route name>).
	MetricHTTP = "obs_http_request_seconds"
	// MetricMutator has one series per journaled mutator kind
	// (label op=<journal op>), covering append+apply+snapshot.
	MetricMutator = "obs_mutator_seconds"
	// MetricJournal times the journal sub-steps
	// (op=append|fsync|snapshot).
	MetricJournal = "obs_journal_seconds"
	// MetricStore times results-store operations
	// (op=ingest|flush|compact|scan|aggregate); see internal/store.
	MetricStore = "obs_store_seconds"
)

// initObs builds the controller's registry, trace ring, and cached
// histogram pointers. Called once from NewController before any store
// or journal is attached.
func (c *Controller) initObs() {
	c.reg = obs.NewRegistry()
	c.ring = obs.NewTraceRing(DefaultTraceRing)
	c.SlowRequest = DefaultSlowRequest
	c.mutHist = make(map[string]*obs.Histogram)
	for _, kind := range []string{
		opRegister, opHeartbeat, opSubmit, opApprove, opReject, opLease, opResults, opSync, opTick,
	} {
		c.mutHist[kind] = c.reg.Hist(MetricMutator, "op", kind)
	}
	c.hAppend = c.reg.Hist(MetricJournal, "op", "append")
	c.hFsync = c.reg.Hist(MetricJournal, "op", "fsync")
	c.hSnapshot = c.reg.Hist(MetricJournal, "op", "snapshot")
	c.reg.AddCounters("obs_pipeline_events_total", func() map[string]int64 {
		return c.stats.Snapshot()
	})
	c.reg.AddCounters("obs_durability_events_total", func() map[string]int64 {
		return c.dur.Snapshot()
	})
	c.reg.AddCounters("obs_admission_events_total", func() map[string]int64 {
		return c.adm.snapshot()
	})
	c.reg.AddCounters("obs_store_events_total", func() map[string]int64 {
		c.mu.Lock()
		st := c.store
		c.mu.Unlock()
		return st.Counters()
	})
}

// setSpanLocked installs the active request span (nil when untraced)
// and returns the restore function; callers defer it so nested
// mutations on the same goroutine unwind correctly. Guarded by c.mu
// like every other span access.
func (c *Controller) setSpanLocked(s *obs.Span) func() {
	prev := c.span
	c.span = s
	return func() { c.span = prev }
}

// Observability exposes the controller's metric registry (cmd/obsd
// mounts it on the debug listener; tests inspect snapshots).
func (c *Controller) Observability() *obs.Registry { return c.reg }

// Traces exposes the controller's trace ring.
func (c *Controller) Traces() *obs.TraceRing { return c.ring }
