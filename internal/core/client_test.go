package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// scriptStep is one scripted transport outcome: a transport error, or a
// synthetic response with a status and optional Retry-After.
type scriptStep struct {
	err        error
	status     int
	retryAfter string
}

// scriptedTransport replays steps in order; past the script's end every
// round trip succeeds with 200. No real server, no WriteHeader — the
// envelope lint greps this package for naked status writes.
type scriptedTransport struct {
	steps []scriptStep
	calls int
}

func (s *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		req.Body.Close()
	}
	i := s.calls
	s.calls++
	if i >= len(s.steps) {
		return synthResponse(req, http.StatusOK, ""), nil
	}
	st := s.steps[i]
	if st.err != nil {
		return nil, st.err
	}
	return synthResponse(req, st.status, st.retryAfter), nil
}

func synthResponse(req *http.Request, status int, retryAfter string) *http.Response {
	h := http.Header{"Content-Type": []string{"application/json"}}
	body := "{}"
	if status != http.StatusOK {
		body = fmt.Sprintf(`{"error":{"code":"%s","message":"scripted","request_id":"r1"}}`, ErrCodeRateLimited)
	}
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	return &http.Response{
		Status:     fmt.Sprintf("%d scripted", status),
		StatusCode: status,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
		Request:    req,
	}
}

// scriptedClient builds a client whose transport replays steps and
// whose Sleep hook records every wait instead of sleeping.
func scriptedClient(steps []scriptStep) (*Client, *scriptedTransport, *[]time.Duration) {
	st := &scriptedTransport{steps: steps}
	cl := NewClientSeeded("http://controller", 1)
	cl.HTTP = &http.Client{Transport: st}
	sleeps := &[]time.Duration{}
	cl.Sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	return cl, st, sleeps
}

func TestClientHonorsRetryAfter(t *testing.T) {
	// A 429 carrying Retry-After: 3 must make the client wait the
	// server's 3s, not its own jittered backoff (which starts at 50ms).
	cl, _, sleeps := scriptedClient([]scriptStep{
		{status: http.StatusTooManyRequests, retryAfter: "3"},
	})
	if err := cl.Heartbeat("p1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want exactly [3s] (server-suggested delay wins)", *sleeps)
	}
	if got := cl.ResilienceCounters()["retry_after_honored"]; got != 1 {
		t.Fatalf("retry_after_honored = %d, want 1", got)
	}
}

func TestClientHonorsRetryAfterOn503(t *testing.T) {
	// The recovery gate's 503 + Retry-After gets the same treatment.
	cl, _, sleeps := scriptedClient([]scriptStep{
		{status: http.StatusServiceUnavailable, retryAfter: "2"},
	})
	if err := cl.Heartbeat("p1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 2*time.Second {
		t.Fatalf("sleeps = %v, want [2s]", *sleeps)
	}
}

func TestClientRetryAfterUnparseableFallsBack(t *testing.T) {
	cl, _, sleeps := scriptedClient([]scriptStep{
		{status: http.StatusTooManyRequests, retryAfter: "soon"},
		{status: http.StatusTooManyRequests}, // no header at all
	})
	if err := cl.Heartbeat("p1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("sleeps = %v, want two backoff waits", *sleeps)
	}
	for _, d := range *sleeps {
		if d >= time.Second {
			t.Fatalf("fallback backoff %v looks like a honored header", d)
		}
	}
	if got := cl.ResilienceCounters()["retry_after_honored"]; got != 0 {
		t.Fatalf("retry_after_honored = %d, want 0", got)
	}
}

func TestClientBreakerTripsFastFailsAndRecovers(t *testing.T) {
	connRefused := fmt.Errorf("dial tcp: connection refused")
	cl, st, _ := scriptedClient([]scriptStep{
		{err: connRefused}, {err: connRefused}, {err: connRefused},
	})
	cl.MaxAttempts = 1 // one attempt per call: calls map 1:1 to round trips
	cl.BreakerThreshold = 3
	cl.BreakerProbeEvery = 4

	// Three consecutive transport failures trip the breaker.
	for i := 0; i < 3; i++ {
		if err := cl.Heartbeat("p1"); err == nil {
			t.Fatal("scripted transport failure did not surface")
		}
	}
	if got := cl.ResilienceCounters()["breaker_open_total"]; got != 1 {
		t.Fatalf("breaker_open_total = %d, want 1", got)
	}

	// While open, calls fail fast without touching the wire...
	wire := st.calls
	for i := 0; i < 3; i++ {
		err := cl.Heartbeat("p1")
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d while open: err = %v, want ErrCircuitOpen", i, err)
		}
	}
	if st.calls != wire {
		t.Fatalf("open breaker still issued %d round trips", st.calls-wire)
	}
	if got := cl.ResilienceCounters()["breaker_fastfail"]; got != 3 {
		t.Fatalf("breaker_fastfail = %d, want 3", got)
	}

	// ...until the 4th arrival goes through as a half-open probe; the
	// script is exhausted so it succeeds, closing the breaker.
	if err := cl.Heartbeat("p1"); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st.calls != wire+1 {
		t.Fatalf("half-open probe issued %d round trips, want 1", st.calls-wire)
	}
	if err := cl.Heartbeat("p1"); err != nil {
		t.Fatalf("call after breaker closed: %v", err)
	}
}

func TestClientBreakerResetByAnyResponse(t *testing.T) {
	connRefused := fmt.Errorf("dial tcp: connection refused")
	// Two failures, then a 429 response, then two more failures: the
	// response proves the uplink works, so the streak resets and the
	// breaker (threshold 3) never trips.
	cl, _, _ := scriptedClient([]scriptStep{
		{err: connRefused}, {err: connRefused},
		{status: http.StatusTooManyRequests},
		{err: connRefused}, {err: connRefused},
	})
	cl.MaxAttempts = 1
	cl.BreakerThreshold = 3
	for i := 0; i < 5; i++ {
		cl.Heartbeat("p1") //nolint:errcheck
	}
	if got := cl.ResilienceCounters()["breaker_open_total"]; got != 0 {
		t.Fatalf("breaker tripped across a received response: %v", cl.ResilienceCounters())
	}
}

func TestClient503StormDoesNotFeedBreaker(t *testing.T) {
	// A federation coordinator answering every call 503 shard_unavailable
	// + Retry-After (one shard dead, failover pending) must never open
	// the breaker, even on a hair trigger: the uplink is fine, the
	// service is telling us when to come back. Each retry honors the
	// server's delay.
	steps := make([]scriptStep, 12)
	for i := range steps {
		steps[i] = scriptStep{status: http.StatusServiceUnavailable, retryAfter: "2"}
	}
	cl, st, sleeps := scriptedClient(steps)
	cl.MaxAttempts = 3
	cl.BreakerThreshold = 1
	for i := 0; i < 4; i++ {
		if err := cl.Heartbeat("p1"); err == nil && st.calls <= len(steps) {
			t.Fatalf("call %d: scripted 503 did not surface", i)
		}
	}
	ctrs := cl.ResilienceCounters()
	if ctrs["breaker_open_total"] != 0 || ctrs["breaker_fastfail"] != 0 {
		t.Fatalf("503 storm fed the breaker: %v", ctrs)
	}
	if ctrs["retry_after_honored"] == 0 {
		t.Fatalf("no Retry-After honored during the storm: %v", ctrs)
	}
	for _, d := range *sleeps {
		if d != 2*time.Second {
			t.Fatalf("sleep %v, want the server's 2s on every retry", d)
		}
	}
}

func TestClientSurfacesRetryAfterOnFinalError(t *testing.T) {
	// When attempts run out, the APIError handed to the caller carries
	// the last Retry-After so outer layers (spool drain, coordinator
	// fan-out) can schedule their own retry.
	cl, _, _ := scriptedClient([]scriptStep{
		{status: http.StatusServiceUnavailable, retryAfter: "7"},
	})
	cl.MaxAttempts = 1
	err := cl.Heartbeat("p1")
	if err == nil {
		t.Fatal("exhausted attempts did not surface an error")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("final error %v is not an APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.RetryAfter != 7 {
		t.Fatalf("final APIError = status %d retryAfter %d, want 503/7", apiErr.Status, apiErr.RetryAfter)
	}
}

func TestClientBreakerDisabledByDefault(t *testing.T) {
	connRefused := fmt.Errorf("dial tcp: connection refused")
	steps := make([]scriptStep, 20)
	for i := range steps {
		steps[i] = scriptStep{err: connRefused}
	}
	cl, st, _ := scriptedClient(steps)
	cl.MaxAttempts = 1
	for i := 0; i < 20; i++ {
		if err := cl.Heartbeat("p1"); errors.Is(err, ErrCircuitOpen) {
			t.Fatal("breaker tripped with BreakerThreshold unset")
		}
	}
	if st.calls != 20 {
		t.Fatalf("round trips = %d, want 20 (no fast-fails)", st.calls)
	}
}
