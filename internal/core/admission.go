package core

// admission.go — controller-side admission control: per-route token
// buckets plus a bounded in-flight gate with priority shedding. The
// paper's controller serves two very different clienteles: field probes
// (heartbeats, leases, result uploads — small, frequent, and the whole
// point of the platform) and analysts (queries and results scans —
// large, bursty, and deferrable). Under overload the analyst traffic is
// shed first, as 429 + Retry-After through the uniform error envelope,
// so heartbeats and leases keep landing and the fleet stays alive.
//
// Like everything else in this package the layer is clock-free: token
// buckets refill from Controller.Tick (the logical clock), never from
// wall time, so admission behavior is deterministic in tests. The
// refill rides the tick but is NOT journaled — admission is run-scoped
// operational state, like the durability and store counters, and replay
// must not consume or grant tokens.

import (
	"fmt"
	"sync"

	"github.com/afrinet/observatory/internal/metrics"
)

// RoutePriority classes a route for load shedding.
type RoutePriority int

const (
	// PriorityHigh marks field traffic (probe register/lease/results/
	// heartbeat, experiment submit/approve) and operational reads
	// (health, metrics): shed only at the full in-flight bound.
	PriorityHigh RoutePriority = iota
	// PriorityLow marks deferrable analyst traffic (listings, queries,
	// results scans, traces): shed early, at half the in-flight bound,
	// so capacity is reserved for the fleet.
	PriorityLow
)

func (p RoutePriority) String() string {
	if p == PriorityLow {
		return "low"
	}
	return "high"
}

// RateLimit is one route's token bucket: Burst tokens capacity,
// refilled at PerTick tokens per controller tick. A request consumes
// one token; an empty bucket sheds the request.
type RateLimit struct {
	PerTick float64
	Burst   float64
}

// AdmissionConfig bounds the controller's concurrent load. The zero
// value admits everything (no limits) — the pre-admission behavior.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently-executing requests. High-priority
	// routes are admitted until the full bound; low-priority routes only
	// until half of it, so a flood of analyst queries cannot starve
	// probe heartbeats. 0 means unbounded.
	MaxInFlight int
	// RouteRates attaches token buckets to route names (the Name field
	// of the route table, e.g. "query"). Routes without an entry are not
	// rate-limited.
	RouteRates map[string]RateLimit
	// RetryAfterSeconds is the Retry-After delay suggested on shed
	// responses (default 1).
	RetryAfterSeconds int
}

// tokenBucket is one route's refillable budget.
type tokenBucket struct {
	tokens float64
	limit  RateLimit
}

// admission evaluates every matched request before its handler runs.
type admission struct {
	mu       sync.Mutex
	cfg      AdmissionConfig
	buckets  map[string]*tokenBucket
	inflight int
	stats    *metrics.CounterSet
}

func newAdmission() *admission {
	return &admission{
		buckets: make(map[string]*tokenBucket),
		stats:   metrics.NewCounterSet(),
	}
}

// configure replaces the limits; buckets start full.
func (a *admission) configure(cfg AdmissionConfig) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg = cfg
	a.buckets = make(map[string]*tokenBucket, len(cfg.RouteRates))
	for name, rl := range cfg.RouteRates {
		a.buckets[name] = &tokenBucket{tokens: rl.Burst, limit: rl}
	}
}

// refill adds n ticks' worth of tokens to every bucket, capped at each
// bucket's burst. Driven by Controller.Tick outside the journaled apply.
func (a *admission) refill(n int) {
	if n <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, b := range a.buckets {
		b.tokens += float64(n) * b.limit.PerTick
		if b.tokens > b.limit.Burst {
			b.tokens = b.limit.Burst
		}
	}
}

// retryAfterSeconds is the delay suggested to shed clients.
func (a *admission) retryAfterSeconds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.RetryAfterSeconds > 0 {
		return a.cfg.RetryAfterSeconds
	}
	return 1
}

// admit evaluates one request. ok means the request may run and release
// must be called when it finishes; !ok means shed (the caller responds
// 429 + Retry-After). The in-flight gate is checked before the token
// bucket so a shed request never consumes a token.
func (a *admission) admit(route string, pri RoutePriority) (release func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if max := a.cfg.MaxInFlight; max > 0 {
		limit := max
		if pri == PriorityLow {
			limit = max / 2
			if limit < 1 {
				limit = 1
			}
		}
		if a.inflight >= limit {
			a.shedLocked(route, pri, "inflight")
			return nil, false
		}
	}
	if b := a.buckets[route]; b != nil {
		if b.tokens < 1 {
			a.shedLocked(route, pri, "rate_limit")
			return nil, false
		}
		b.tokens--
	}
	a.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight--
			a.mu.Unlock()
		})
	}, true
}

// shedLocked counts one rejected request.
func (a *admission) shedLocked(route string, pri RoutePriority, why string) {
	a.stats.Inc("requests_shed")
	a.stats.Inc("requests_shed_" + why)
	a.stats.Inc("requests_shed_priority_" + pri.String())
	a.stats.Inc("requests_shed_route_" + route)
}

// snapshot returns the shed counters for StatsReport and /metrics.
func (a *admission) snapshot() map[string]int64 {
	return a.stats.Snapshot()
}

// ConfigureAdmission installs admission limits on the controller.
// cmd/obsd wires its -max-inflight / -rate-* flags through here; the
// zero config removes all limits. Call before or after Handler — the
// router reads the shared admission state per request.
func (c *Controller) ConfigureAdmission(cfg AdmissionConfig) {
	c.adm.configure(cfg)
}

// AdmissionGate is a standalone admission controller for front ends
// that sit outside a core.Controller — the federation coordinator in
// internal/federation runs one in front of its scatter-gather router.
// Same semantics as the controller's built-in gate: priority-aware
// in-flight bound plus per-route token buckets refilled from a logical
// tick, never from wall time.
type AdmissionGate struct {
	a *admission
}

// NewAdmissionGate builds a gate with the given limits; the zero config
// admits everything.
func NewAdmissionGate(cfg AdmissionConfig) *AdmissionGate {
	g := &AdmissionGate{a: newAdmission()}
	g.a.configure(cfg)
	return g
}

// Admit evaluates one request: ok means run it and call release when
// done; !ok means shed it with 429 + Retry-After.
func (g *AdmissionGate) Admit(route string, pri RoutePriority) (release func(), ok bool) {
	return g.a.admit(route, pri)
}

// Refill adds n logical ticks' worth of tokens to every bucket.
func (g *AdmissionGate) Refill(n int) { g.a.refill(n) }

// RetryAfterSeconds is the delay to suggest on shed responses.
func (g *AdmissionGate) RetryAfterSeconds() int { return g.a.retryAfterSeconds() }

// Snapshot returns the gate's shed counters.
func (g *AdmissionGate) Snapshot() map[string]int64 { return g.a.snapshot() }

// ErrRateLimited is the envelope message for shed requests, shared with
// sibling front ends.
func ErrRateLimited(route string) error { return errRateLimited(route) }

// errRateLimited is the envelope message for shed requests.
func errRateLimited(route string) error {
	return fmt.Errorf("core: controller over capacity, %s request shed; honor Retry-After", route)
}
