package dnsload

import (
	"strings"

	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/topology"
)

// TaskSummary is the probe-sized view of a load run: what one
// TaskDNSLoad execution reports back through the platform.
type TaskSummary struct {
	OK        bool
	Queries   int
	Succeeded int
	MeanMs    float64
	// Chain is the canonical chain shape the client resolved through
	// (e.g. "stub>cache>forwarder>authority").
	Chain string
	// Kind/Country describe the client's resolver assignment.
	Kind    string
	Country string
	// CloudAuth/Localized feed the per-probe localization accuracy.
	CloudAuth int
	Localized int
	ECS       bool
}

// TaskRun executes a single-vantage, single-target load burst — the
// unit of work a TaskDNSLoad probe task performs. Serial (Workers: 1):
// probes parallelize across tasks, not within them.
func TaskRun(sys *dnssim.System, client topology.ASN, domain, origin string, queries int, ecs bool, seed uint64) TaskSummary {
	if queries <= 0 {
		queries = 64
	}
	rep := Run(sys, Config{
		Seed:    seed,
		Queries: queries,
		Workers: 1,
		ECS:     ecs,
		Clients: []topology.ASN{client},
		Targets: []Target{{Domain: domain, OriginCountry: origin}},
	})
	asg := sys.AssignmentFor(client)
	return TaskSummary{
		OK:        rep.OK > 0,
		Queries:   queries,
		Succeeded: rep.OK,
		MeanMs:    rep.MeanMs,
		Chain:     strings.Join(dnssim.ChainSpec(asg.Kind), ">"),
		Kind:      asg.Kind.String(),
		Country:   asg.Country,
		CloudAuth: rep.CloudAuth,
		Localized: rep.Localized,
		ECS:       ecs,
	}
}
