package dnsload

import (
	"math"
	"reflect"
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testDNS  = dnssim.New(testNet, 42)
)

func loadConfig(seed uint64, queries int) Config {
	var clients []topology.ASN
	var targets []Target
	for _, c := range []string{"NG", "KE", "ZA", "EG", "GH", "SN"} {
		clients = append(clients, testDNS.ClientNetworks(c)...)
		for i := 0; i < 4; i++ {
			targets = append(targets, Target{Domain: domainName(c, i), OriginCountry: c})
		}
	}
	return Config{Seed: seed, Queries: queries, Clients: clients, Targets: targets, CompareECS: true}
}

func domainName(cc string, i int) string {
	return "site" + string(rune('0'+i)) + "." + cc
}

func TestBucketPacing(t *testing.T) {
	b := Bucket{QPS: 1000, Burst: 8}
	for i := 0; i < 8; i++ {
		if got := b.SendAtMs(i); got != 0 {
			t.Fatalf("query %d inside the burst should depart at 0, got %v", i, got)
		}
	}
	if got := b.SendAtMs(8); got != 1 {
		t.Fatalf("first post-burst query at %v ms, want 1", got)
	}
	// 10k queries at 1k QPS take ~10s of logical time.
	if got := b.SendAtMs(10007); math.Abs(got-10000) > 1 {
		t.Fatalf("SendAtMs(10007) = %v, want ~10000", got)
	}
}

func TestRunAggregates(t *testing.T) {
	rep := Run(testDNS, loadConfig(1, 20000))
	if rep.Queries != 20000 {
		t.Fatalf("Queries = %d", rep.Queries)
	}
	if rep.OK+rep.Failed+rep.TimedOut != rep.Queries {
		t.Fatalf("outcome counts don't partition: ok=%d failed=%d timedout=%d of %d",
			rep.OK, rep.Failed, rep.TimedOut, rep.Queries)
	}
	if rep.OK == 0 {
		t.Fatal("healthy plane should resolve most queries")
	}
	if rep.Attempts < rep.Queries {
		t.Fatalf("attempts %d < queries %d", rep.Attempts, rep.Queries)
	}
	if rep.AchievedQPS <= 0 || rep.MakespanMs <= 0 {
		t.Fatalf("pacing stats missing: qps=%v makespan=%v", rep.AchievedQPS, rep.MakespanMs)
	}
	// Offered load is the cap on logical throughput (timeouts can push
	// the makespan past the send schedule, never below it).
	if rep.AchievedQPS > rep.OfferedQPS*1.01 {
		t.Fatalf("achieved %v QPS exceeds offered %v", rep.AchievedQPS, rep.OfferedQPS)
	}
	if rep.MeanMs <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("histogram stats malformed: mean=%v p50=%v p99=%v", rep.MeanMs, rep.P50Ms, rep.P99Ms)
	}
	if len(rep.ByChain) == 0 || len(rep.ByCountry) == 0 {
		t.Fatal("chain/country breakdowns empty")
	}
	var sum int
	for _, c := range rep.ByCountry {
		sum += c.Queries
	}
	if sum != rep.Queries {
		t.Fatalf("country breakdown sums to %d of %d", sum, rep.Queries)
	}
	if rep.CloudAuth == 0 {
		t.Fatal("expected some cloud-hosted authorities in the mix")
	}
	if rep.Localized > rep.CloudAuth {
		t.Fatalf("localized %d > cloud-auth %d", rep.Localized, rep.CloudAuth)
	}
}

// TestRunDeterministicAcrossWorkers pins the driver's core contract:
// the report is a pure function of (substrate, Config) regardless of
// worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		cfg := loadConfig(seed, 8000)
		cfg.Workers = 1
		serial := Run(testDNS, cfg)
		cfg.Workers = 8
		parallel := Run(testDNS, cfg)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: serial and 8-worker reports differ:\n serial   %+v\n parallel %+v", seed, serial, parallel)
		}
	}
}

func TestECSImprovesOrMatchesLocalization(t *testing.T) {
	cfg := loadConfig(3, 12000)
	cfg.CompareECS = false
	noECS := Run(testDNS, cfg)
	cfg.ECS = true
	withECS := Run(testDNS, cfg)
	if withECS.LocalizationAccuracy() < noECS.LocalizationAccuracy() {
		t.Fatalf("ECS should never hurt localization: with=%.3f without=%.3f",
			withECS.LocalizationAccuracy(), noECS.LocalizationAccuracy())
	}
	if withECS.LocalizationAccuracy() != 1.0 {
		t.Fatalf("ECS answers are steered by the client subnet, accuracy should be 1.0, got %.3f",
			withECS.LocalizationAccuracy())
	}
}

func TestRetryScheduleBounded(t *testing.T) {
	cfg := loadConfig(5, 4000)
	// A 1ms timeout forces every reachable query through the full retry
	// schedule and into TimedOut.
	cfg.TimeoutMs = 0.0001
	cfg.Retries = 2
	rep := Run(testDNS, cfg)
	if rep.OK != 0 {
		t.Fatalf("nothing should beat a ~0 timeout, ok=%d", rep.OK)
	}
	if rep.TimedOut == 0 {
		t.Fatal("expected timeouts")
	}
	if rep.Attempts != rep.Queries*3 {
		t.Fatalf("attempts = %d, want exactly 3 per query (%d)", rep.Attempts, rep.Queries*3)
	}
	if rep.Retried != rep.TimedOut {
		t.Fatalf("every timed-out query retried: retried=%d timedout=%d", rep.Retried, rep.TimedOut)
	}
}

func TestRunFailsClosedUnderIsolation(t *testing.T) {
	topo := topology.Generate(topology.DefaultParams())
	n := netsim.New(topo, bgp.New(topo), 42)
	s := dnssim.New(n, 42)
	defer n.RestoreAll()
	for _, id := range topo.CableIDs() {
		n.CutCable(id)
	}
	var clients []topology.ASN
	for _, c := range []string{"NG", "GH", "CI"} {
		clients = append(clients, s.ClientNetworks(c)...)
	}
	rep := Run(s, Config{Seed: 9, Queries: 2000, Clients: clients,
		Targets: []Target{{Domain: "site0.NG", OriginCountry: "NG"}}})
	if rep.Failed == 0 {
		t.Fatal("total cable isolation should produce unreachable failures")
	}
}

func TestTaskRun(t *testing.T) {
	var client topology.ASN
	for _, c := range geo.AfricanCountries() {
		if nets := testDNS.ClientNetworks(c.ISO2); len(nets) > 0 {
			client = nets[0]
			break
		}
	}
	sum := TaskRun(testDNS, client, "site0.KE", "KE", 256, false, 99)
	if !sum.OK || sum.Succeeded == 0 || sum.Queries != 256 {
		t.Fatalf("task summary %+v", sum)
	}
	if sum.Chain == "" || sum.Kind == "" {
		t.Fatalf("missing chain/kind: %+v", sum)
	}
	again := TaskRun(testDNS, client, "site0.KE", "KE", 256, false, 99)
	if sum != again {
		t.Fatalf("TaskRun not deterministic:\n first  %+v\n second %+v", sum, again)
	}
}
