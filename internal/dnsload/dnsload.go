// Package dnsload is the high-QPS DNS measurement engine: a
// rate-controlled load driver in the dns-client-subnet-ext shape that
// turns the dnssim resolver-chain substrate into a
// millions-of-queries-per-run workload. A token bucket paces logical
// queries per second, a bounded internal/par worker pool executes them,
// timeouts retry with bounded seeded backoff, and the run aggregates
// per-chain, per-country, and latency-histogram statistics — including
// the ECS-vs-non-ECS localization comparison the Section 5.2 resolver
// study scales up on.
//
// Everything is simulated logical time: query latencies come from
// netsim RTTs jittered by a seeded hash, send times come from the
// token bucket, and no wall clock or global randomness is consulted
// anywhere. A run is a pure function of (substrate seed, Config), so
// identical configs aggregate identically at any worker count — the
// property TestRunDeterministicAcrossWorkers pins.
package dnsload

import (
	"sort"
	"time"

	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/topology"
)

// shards is the fixed aggregation fan-out. Queries are striped over
// shards by index and shard aggregates merge in shard order, so results
// are independent of how many workers the pool actually runs.
const shards = 64

// Target is one domain under load.
type Target struct {
	Domain        string
	OriginCountry string
}

// Config parameterizes one load run.
type Config struct {
	// Seed drives jitter and client/target sampling.
	Seed uint64
	// Queries is the number of logical queries to issue.
	Queries int
	// QPS is the token-bucket rate in logical queries per second
	// (default 2000); Burst is the bucket depth (default 64).
	QPS   float64
	Burst int
	// Workers bounds the worker pool (0: the par default).
	Workers int
	// TimeoutMs is the per-attempt timeout (default 300); Retries is
	// the number of re-sends after the first attempt (default 2);
	// BackoffMs is the base retry backoff, doubled per attempt and
	// jittered (default 50).
	TimeoutMs float64
	Retries   int
	BackoffMs float64
	// ECS attaches client-subnet information to every query.
	ECS bool
	// CompareECS additionally resolves every query with ECS flipped and
	// counts answer mismatches (served-replica disagreement).
	CompareECS bool
	// Clients are the vantage networks to sample from; Targets the
	// domains. Both must be non-empty.
	Clients []topology.ASN
	Targets []Target
}

func (c Config) withDefaults() Config {
	if c.QPS <= 0 {
		c.QPS = 2000
	}
	if c.Burst <= 0 {
		c.Burst = 64
	}
	if c.TimeoutMs <= 0 {
		c.TimeoutMs = 300
	}
	if c.Retries < 0 {
		c.Retries = 2
	}
	if c.BackoffMs <= 0 {
		c.BackoffMs = 50
	}
	return c
}

// Bucket is the fluid-model token bucket that paces the run: tokens
// accrue at QPS per second into a bucket of depth Burst, and query i
// departs the moment its token exists. In simulated time that has a
// closed form, which keeps pacing exact at millions of queries per
// second with zero clock reads.
type Bucket struct {
	QPS   float64
	Burst int
}

// SendAtMs returns the departure time of the i-th query (0-based) in
// logical milliseconds from run start.
func (b Bucket) SendAtMs(i int) float64 {
	if i < b.Burst {
		return 0
	}
	return float64(i-b.Burst+1) * 1000 / b.QPS
}

// imix is the package's splitmix64 hash (same constants as the rest of
// the repo's seeded streams).
func imix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 folds hash words into [0,1).
func u01(vals ...uint64) float64 {
	h := uint64(0x6c657473676f3130)
	for _, v := range vals {
		h = imix(h ^ v)
	}
	return float64(h>>11) / float64(1<<53)
}

// ChainCount is one chain-shape bucket of a report.
type ChainCount struct {
	Chain   string
	Queries int
}

// CountryAgg is one client-country bucket of a report.
type CountryAgg struct {
	Country   string
	Queries   int
	OK        int
	CloudAuth int
	Localized int
}

// Accuracy is the country's localization accuracy over cloud-hosted
// authorities (NaN-free: 0 when no cloud-auth samples).
func (c CountryAgg) Accuracy() float64 {
	if c.CloudAuth == 0 {
		return 0
	}
	return float64(c.Localized) / float64(c.CloudAuth)
}

// Report is the aggregate outcome of one run.
type Report struct {
	Queries  int
	OK       int
	Failed   int // unreachable / placement failures (no amount of retrying helps)
	TimedOut int // every attempt exceeded the timeout
	Retried  int // queries that needed at least one re-send
	Attempts int // total sends, retries included

	CloudAuth  int // successful queries answered by cloud-hosted authorities
	Localized  int // ... whose served replica was the client's best one
	Mismatches int // CompareECS only: served replica changed when ECS flipped

	OfferedQPS  float64 // token-bucket rate
	AchievedQPS float64 // queries / makespan (logical)
	MakespanMs  float64 // last completion in logical time

	MeanMs, P50Ms, P90Ms, P99Ms, MaxMs float64

	ByChain   []ChainCount // sorted by chain string
	ByCountry []CountryAgg // sorted by country
}

// LocalizationAccuracy is the run-wide share of cloud-authority answers
// that were localized to the client.
func (r Report) LocalizationAccuracy() float64 {
	if r.CloudAuth == 0 {
		return 0
	}
	return float64(r.Localized) / float64(r.CloudAuth)
}

// shardAgg accumulates one stripe's counters; merged in shard order.
type shardAgg struct {
	ok, failed, timedOut, retried, attempts int
	cloudAuth, localized, mismatches        int
	maxDoneMs                               float64
	byChain                                 map[string]int
	byCountry                               map[string]*CountryAgg
}

// Run executes the load configuration against a resolver-chain system
// and aggregates the outcome. Pure, clock-free, and worker-count
// independent.
func Run(sys *dnssim.System, cfg Config) Report {
	cfg = cfg.withDefaults()
	rep := Report{Queries: cfg.Queries, OfferedQPS: cfg.QPS}
	if cfg.Queries <= 0 || len(cfg.Clients) == 0 || len(cfg.Targets) == 0 {
		return rep
	}
	bucket := Bucket{QPS: cfg.QPS, Burst: cfg.Burst}
	var hist obs.Histogram

	aggs := par.Map(cfg.Workers, shards, func(sh int) *shardAgg {
		a := &shardAgg{byChain: map[string]int{}, byCountry: map[string]*CountryAgg{}}
		for i := sh; i < cfg.Queries; i += shards {
			runOne(sys, cfg, bucket, &hist, a, i)
		}
		return a
	})

	byChain := map[string]int{}
	byCountry := map[string]*CountryAgg{}
	for _, a := range aggs {
		rep.OK += a.ok
		rep.Failed += a.failed
		rep.TimedOut += a.timedOut
		rep.Retried += a.retried
		rep.Attempts += a.attempts
		rep.CloudAuth += a.cloudAuth
		rep.Localized += a.localized
		rep.Mismatches += a.mismatches
		if a.maxDoneMs > rep.MakespanMs {
			rep.MakespanMs = a.maxDoneMs
		}
		for k, v := range a.byChain {
			byChain[k] += v
		}
		for k, v := range a.byCountry {
			c := byCountry[k]
			if c == nil {
				c = &CountryAgg{Country: k}
				byCountry[k] = c
			}
			c.Queries += v.Queries
			c.OK += v.OK
			c.CloudAuth += v.CloudAuth
			c.Localized += v.Localized
		}
	}
	for k, v := range byChain {
		rep.ByChain = append(rep.ByChain, ChainCount{Chain: k, Queries: v})
	}
	sort.Slice(rep.ByChain, func(i, j int) bool { return rep.ByChain[i].Chain < rep.ByChain[j].Chain })
	for _, v := range byCountry {
		rep.ByCountry = append(rep.ByCountry, *v)
	}
	sort.Slice(rep.ByCountry, func(i, j int) bool { return rep.ByCountry[i].Country < rep.ByCountry[j].Country })

	if rep.MakespanMs > 0 {
		rep.AchievedQPS = float64(cfg.Queries) / (rep.MakespanMs / 1000)
	}
	s := hist.Snapshot()
	rep.MeanMs = float64(s.Mean) / float64(time.Millisecond)
	rep.P50Ms = float64(s.P50) / float64(time.Millisecond)
	rep.P90Ms = float64(s.P90) / float64(time.Millisecond)
	rep.P99Ms = float64(s.P99) / float64(time.Millisecond)
	rep.MaxMs = float64(s.Max) / float64(time.Millisecond)
	return rep
}

// runOne plays out query i: pick vantage and target, resolve through
// the chain once (the answer is latency truth for every attempt), then
// walk the retry schedule in logical time.
func runOne(sys *dnssim.System, cfg Config, bucket Bucket, hist *obs.Histogram, a *shardAgg, i int) {
	h := imix(cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15)
	client := cfg.Clients[int(h%uint64(len(cfg.Clients)))]
	target := cfg.Targets[int(imix(h)%uint64(len(cfg.Targets)))]

	country := sys.CountryOf(client)
	ca := a.byCountry[country]
	if ca == nil {
		ca = &CountryAgg{Country: country}
		a.byCountry[country] = ca
	}
	ca.Queries++

	q := dnssim.Query{Client: client, Domain: target.Domain, OriginCountry: target.OriginCountry, ECS: cfg.ECS}
	ans, err := sys.ChainFor(client).Resolve(q, dnssim.DefaultDepth)
	if err != nil || !ans.OK {
		// Unreachable resolver or authority: retries cannot help in a
		// static failure state, the query burns its full schedule.
		a.failed++
		a.attempts += 1 + cfg.Retries
		a.byChain[ans.Chain]++
		return
	}
	a.byChain[ans.Chain]++

	// Retry-on-timeout in logical time: each attempt sees the chain
	// latency under independent seeded jitter; an attempt past the
	// timeout burns TimeoutMs plus a doubling jittered backoff.
	elapsed := 0.0
	attempts := 0
	success := false
	for try := 0; try <= cfg.Retries; try++ {
		attempts++
		jitter := 0.85 + 0.5*u01(cfg.Seed, uint64(i), uint64(try), 0x7472)
		attemptMs := ans.LatencyMs * jitter
		if attemptMs <= cfg.TimeoutMs {
			elapsed += attemptMs
			success = true
			break
		}
		elapsed += cfg.TimeoutMs
		if try < cfg.Retries {
			backoff := cfg.BackoffMs * float64(uint64(1)<<uint(try)) * (0.75 + 0.5*u01(cfg.Seed, uint64(i), uint64(try), 0x626f))
			elapsed += backoff
		}
	}
	a.attempts += attempts
	if attempts > 1 {
		a.retried++
	}
	doneMs := bucket.SendAtMs(i) + elapsed
	if doneMs > a.maxDoneMs {
		a.maxDoneMs = doneMs
	}
	if !success {
		a.timedOut++
		return
	}
	a.ok++
	ca.OK++
	hist.Observe(time.Duration(elapsed * float64(time.Millisecond)))
	if ans.Auth.Cloud {
		a.cloudAuth++
		ca.CloudAuth++
		if ans.Localized {
			a.localized++
			ca.Localized++
		}
	}
	if cfg.CompareECS {
		q.ECS = !cfg.ECS
		if flip, err2 := sys.ChainFor(client).Resolve(q, dnssim.DefaultDepth); err2 == nil && flip.OK {
			if flip.ServedASN != ans.ServedASN {
				a.mismatches++
			}
		}
	}
}
