// Package content models where web content for African users actually
// lives — the substrate behind the paper's Figure 2b (content locality,
// ISOC Pulse methodology): per-country top-site catalogs, sites hosted
// locally / in clouds / behind global CDNs, CDN request mapping to
// off-net caches at exchanges, and the fetch path a residential client
// experiences.
package content

import (
	"fmt"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

// HostKind is how a site is served.
type HostKind int

const (
	HostLocal     HostKind = iota // origin in the audience country
	HostCloud                     // hosted in a public cloud region
	HostCDN                       // fronted by a global CDN
	HostEUHosting                 // plain hosting in Europe
)

func (k HostKind) String() string {
	switch k {
	case HostLocal:
		return "local-origin"
	case HostCloud:
		return "cloud"
	case HostCDN:
		return "cdn"
	default:
		return "eu-hosting"
	}
}

// Site is one entry of a country's top-site list.
type Site struct {
	Domain   string
	Country  string // audience country
	Kind     HostKind
	Provider topology.ASN // serving organization (CDN/cloud/hosting AS)
}

// Catalog holds the per-country top-site lists (CrUX-style).
type Catalog struct {
	byCountry map[string][]Site
}

// SitesFor returns the top sites of one country.
func (c *Catalog) SitesFor(iso2 string) []Site { return c.byCountry[iso2] }

// Countries returns the catalog's countries, sorted.
func (c *Catalog) Countries() []string {
	out := make([]string, 0, len(c.byCountry))
	for k := range c.byCountry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// hostMix is the per-region site-hosting mix.
type hostMix struct {
	cdn, cloud, local float64 // remainder is EU hosting
}

var hostMixes = map[geo.Region]hostMix{
	geo.AfricaNorthern: {cdn: 0.50, cloud: 0.22, local: 0.09},
	geo.AfricaWestern:  {cdn: 0.52, cloud: 0.25, local: 0.05},
	geo.AfricaCentral:  {cdn: 0.48, cloud: 0.25, local: 0.04},
	geo.AfricaEastern:  {cdn: 0.52, cloud: 0.22, local: 0.10},
	geo.AfricaSouthern: {cdn: 0.55, cloud: 0.20, local: 0.22},
	geo.Europe:         {cdn: 0.55, cloud: 0.25, local: 0.18},
	geo.NorthAmerica:   {cdn: 0.58, cloud: 0.27, local: 0.14},
	geo.SouthAmerica:   {cdn: 0.55, cloud: 0.25, local: 0.12},
	geo.AsiaPacific:    {cdn: 0.55, cloud: 0.25, local: 0.14},
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pick maps a hash onto [0,n) without the sign pitfalls of int casts.
func pick(h uint64, n int) int { return int(h % uint64(n)) }

// System binds the content layer to a data plane.
type System struct {
	net     *netsim.Net
	topo    *topology.Topology
	seed    uint64
	catalog *Catalog

	cdns   []topology.ASN
	clouds []topology.ASN
}

// New builds the content layer and its site catalogs.
func New(n *netsim.Net, seed int64) *System {
	s := &System{
		net:  n,
		topo: n.Topology(),
		seed: uint64(seed),
	}
	for _, asn := range s.topo.ASNs() {
		as := s.topo.ASes[asn]
		switch as.Type {
		case topology.ASContent:
			s.cdns = append(s.cdns, asn)
		case topology.ASCloud:
			if as.Tier == topology.TierStub && len(as.OffNetAt) > 0 || isGlobalCloud(as.Name) {
				s.clouds = append(s.clouds, asn)
			}
		}
	}
	sort.Slice(s.cdns, func(i, j int) bool { return s.cdns[i] < s.cdns[j] })
	sort.Slice(s.clouds, func(i, j int) bool { return s.clouds[i] < s.clouds[j] })
	s.buildCatalog()
	return s
}

func isGlobalCloud(name string) bool {
	switch name {
	case "CloudOne", "CloudTwo", "CloudThree":
		return true
	}
	return false
}

// Catalog returns the generated site catalogs.
func (s *System) Catalog() *Catalog { return s.catalog }

func (s *System) f(vals ...uint64) float64 {
	h := s.seed
	for _, v := range vals {
		h = splitmix(h ^ v)
	}
	return float64(h>>11) / float64(1<<53)
}

// siteCount returns the top-list size for a country (population-scaled
// stand-in for the paper's top-1000).
func siteCount(c *geo.Country) int {
	n := 20 + c.Population/2
	if n > 80 {
		n = 80
	}
	return n
}

func (s *System) buildCatalog() {
	s.catalog = &Catalog{byCountry: make(map[string][]Site)}
	for _, c := range geo.Countries() {
		mix := hostMixes[c.Region]
		n := siteCount(c)
		sites := make([]Site, 0, n)
		for i := 0; i < n; i++ {
			domain := fmt.Sprintf("site%d.%s", i, c.ISO2)
			h := uint64(0)
			for _, ch := range domain {
				h = splitmix(h ^ uint64(ch))
			}
			st := Site{Domain: domain, Country: c.ISO2}
			draw := s.f(h, 0x71)
			switch {
			case draw < mix.cdn:
				st.Kind = HostCDN
				st.Provider = s.cdns[pick(splitmix(h^0x72), len(s.cdns))]
			case draw < mix.cdn+mix.cloud:
				st.Kind = HostCloud
				st.Provider = s.clouds[pick(splitmix(h^0x73), len(s.clouds))]
			case draw < mix.cdn+mix.cloud+mix.local:
				st.Kind = HostLocal
				st.Provider = s.localHost(c.ISO2, h)
				if st.Provider == 0 {
					st.Kind = HostEUHosting
					st.Provider = s.euHost(h)
				}
			default:
				st.Kind = HostEUHosting
				st.Provider = s.euHost(h)
			}
			sites = append(sites, st)
		}
		s.catalog.byCountry[c.ISO2] = sites
	}
}

// localHost picks an in-country hosting AS: a local cloud/education/
// enterprise network when the market has one, else the incumbent ISP —
// in small markets the incumbent's data center hosts what little local
// content exists. Returns 0 only for countries with no networks at all.
func (s *System) localHost(ctry string, salt uint64) topology.ASN {
	var pool, isps []topology.ASN
	for _, a := range s.topo.ASesIn(ctry) {
		as := s.topo.ASes[a]
		switch as.Type {
		case topology.ASCloud, topology.ASEducation, topology.ASEnterprise:
			pool = append(pool, a)
		case topology.ASFixedISP, topology.ASMobileCarrier:
			isps = append(isps, a)
		}
	}
	if len(pool) == 0 {
		pool = isps
	}
	if len(pool) == 0 {
		return 0
	}
	return pool[pick(splitmix(salt^0x74), len(pool))]
}

func (s *System) euHost(salt uint64) topology.ASN {
	countries := []string{"DE", "FR", "NL", "GB"}
	ctry := countries[pick(splitmix(salt^0x75), len(countries))]
	var pool []topology.ASN
	for _, a := range s.topo.ASesIn(ctry) {
		as := s.topo.ASes[a]
		if as.Type == topology.ASEnterprise || as.Type == topology.ASCloud {
			pool = append(pool, a)
		}
	}
	if len(pool) == 0 {
		return s.topo.ASesIn(ctry)[0]
	}
	return pool[pick(splitmix(salt^0x76), len(pool))]
}

// FetchResult describes where one fetch was served from.
type FetchResult struct {
	OK            bool
	Site          Site
	ServedASN     topology.ASN
	ServedCountry string
	ServedIXP     topology.IXPID // nonzero when served from an off-net at an exchange
	RTTms         float64
	LocalToAfrica bool
}

// Fetch simulates a client in clientASN loading the site and reports the
// serving location. CDN mapping follows the real mechanics: if the
// client's forwarding path reaches the CDN over an exchange peering
// where the CDN parks an off-net, the cache at that exchange serves it;
// otherwise the nearest regional PoP (Europe, or South Africa for
// operators with a ZA region) does.
func (s *System) Fetch(clientASN topology.ASN, site Site) FetchResult {
	res := FetchResult{Site: site}
	switch site.Kind {
	case HostCDN:
		return s.fetchCDN(clientASN, site)
	default:
		host := site.Provider
		if site.Kind == HostCloud {
			// Cloud-hosted: served from the operator's nearest region.
			pop, ctry, rtt, ok := s.nearestPoP(clientASN, site.Provider)
			if !ok {
				return res
			}
			res.OK = true
			res.ServedASN = pop
			res.ServedCountry = ctry
			res.RTTms = rtt
			res.LocalToAfrica = isAfrica(ctry)
			return res
		}
		rtt, ok := s.net.RTTBetween(clientASN, host)
		if !ok {
			return res
		}
		res.OK = true
		res.ServedASN = host
		res.ServedCountry = s.topo.ASes[host].Country
		res.RTTms = rtt
		res.LocalToAfrica = isAfrica(res.ServedCountry)
		return res
	}
}

func (s *System) fetchCDN(clientASN topology.ASN, site Site) FetchResult {
	res := FetchResult{Site: site}
	cdn := site.Provider
	path, ok := s.net.Router().Path(clientASN, cdn)
	if !ok {
		return res
	}
	// Off-net serving: last link of the path is an exchange peering into
	// the CDN at a fabric where it parks caches.
	last := path.Hops[len(path.Hops)-1]
	if last.ASN == cdn && len(path.Hops) >= 2 {
		l := s.topo.Link(last.Link)
		if l.Via != 0 && cdnHasOffnet(s.topo.ASes[cdn], l.Via) {
			x := s.topo.IXPs[l.Via]
			rtt, okRTT := s.net.RTTBetween(clientASN, cdn)
			if okRTT {
				res.OK = true
				res.ServedASN = cdn
				res.ServedCountry = x.Country
				res.ServedIXP = l.Via
				res.RTTms = rtt
				res.LocalToAfrica = isAfrica(x.Country)
				return res
			}
		}
	}
	// Otherwise the nearest regional PoP serves.
	pop, ctry, rtt, okPoP := s.nearestPoP(clientASN, cdn)
	if !okPoP {
		return res
	}
	res.OK = true
	res.ServedASN = pop
	res.ServedCountry = ctry
	res.RTTms = rtt
	res.LocalToAfrica = isAfrica(ctry)
	return res
}

// nearestPoP returns the operator's best serving region for a client:
// home country, Europe, or (for ZA-region operators) South Africa —
// whichever representative is reachable with the lowest RTT. The
// representative of a region is that country's first transit AS.
func (s *System) nearestPoP(client, operator topology.ASN) (rep topology.ASN, country string, rtt float64, ok bool) {
	op := s.topo.ASes[operator]
	type cand struct {
		asn  topology.ASN
		ctry string
	}
	var cands []cand
	cands = append(cands, cand{operator, op.Country})
	if t2 := firstTransit(s.topo, "DE"); t2 != 0 {
		cands = append(cands, cand{t2, "DE"})
	}
	if hasZARegionName(op.Name) {
		if t2 := firstTransit(s.topo, "ZA"); t2 != 0 {
			cands = append(cands, cand{t2, "ZA"})
		}
	}
	for _, c := range cands {
		r, okR := s.net.RTTBetween(client, c.asn)
		if !okR {
			continue
		}
		if !ok || r < rtt {
			rep, country, rtt, ok = c.asn, c.ctry, r, true
		}
	}
	return rep, country, rtt, ok
}

func hasZARegionName(name string) bool {
	switch name {
	case "GlobalCDN-A", "GlobalCDN-B", "GlobalCDN-C", "SocialCDN", "CloudOne", "CloudTwo":
		return true
	}
	return false
}

func firstTransit(t *topology.Topology, ctry string) topology.ASN {
	for _, a := range t.ASesIn(ctry) {
		if t.ASes[a].Type == topology.ASTransit {
			return a
		}
	}
	return 0
}

func cdnHasOffnet(as *topology.AS, x topology.IXPID) bool {
	for _, id := range as.OffNetAt {
		if id == x {
			return true
		}
	}
	return false
}

func isAfrica(iso2 string) bool {
	c, ok := geo.Lookup(iso2)
	return ok && c.Region.IsAfrica()
}

// LocalityShare measures, ISOC-Pulse-style, the share of a country's top
// sites served from inside Africa for a residential client in that
// country. The client is the country's incumbent eyeball network.
type LocalityShare struct {
	Country string
	Region  geo.Region
	Local   float64
	Samples int
	Failed  int
}

// MeasureLocality runs the Figure 2b measurement for one country.
func (s *System) MeasureLocality(iso2 string) LocalityShare {
	out := LocalityShare{Country: iso2, Region: geo.MustLookup(iso2).Region}
	client := s.residentialClient(iso2)
	if client == 0 {
		return out
	}
	local := 0
	for _, site := range s.catalog.SitesFor(iso2) {
		r := s.Fetch(client, site)
		if !r.OK {
			out.Failed++
			continue
		}
		out.Samples++
		if r.LocalToAfrica {
			local++
		}
	}
	if out.Samples > 0 {
		out.Local = float64(local) / float64(out.Samples)
	}
	return out
}

// ResidentialClient exposes the per-country eyeball vantage: the
// incumbent eyeball AS, the network a websteps probe in that country
// measures from. Returns 0 for countries with no eyeball networks.
func (s *System) ResidentialClient(iso2 string) topology.ASN { return s.residentialClient(iso2) }

// residentialClient picks the country's incumbent eyeball AS (what a
// residential VPN exit looks like).
func (s *System) residentialClient(iso2 string) topology.ASN {
	var best topology.ASN
	bestBorn := 9999
	for _, a := range s.topo.ASesIn(iso2) {
		as := s.topo.ASes[a]
		if as.Type != topology.ASFixedISP && as.Type != topology.ASMobileCarrier {
			continue
		}
		if as.Born < bestBorn || (as.Born == bestBorn && a < best) {
			best, bestBorn = a, as.Born
		}
	}
	return best
}
