package content

// body.go models page content identity and size — what a websteps-style
// fetch actually compares across vantages. A site's body is identified
// by a deterministic hash (two vantages fetching the untampered site
// see the same hash, wherever the CDN served it from) and sized from a
// seeded per-domain draw; the censor's blockpage has its own hash and a
// small fixed size, so substitution is visible as a (hash, size) delta.

import "fmt"

// BlockpageBytes is the size of the injected blockpage: a static
// notice, tiny next to real pages.
const BlockpageBytes = 2048

// BodyBytes returns the site's page weight in bytes: a deterministic
// per-domain draw over 16KB..512KB, biased low — most top sites are a
// few tens of KB of HTML, a few are heavyweight.
func (s *System) BodyBytes(site Site) int64 {
	h := uint64(0)
	for _, ch := range site.Domain {
		h = splitmix(h ^ uint64(ch))
	}
	draw := s.f(h, 0x81)
	kb := 16 + int64(draw*draw*496) // quadratic bias toward small pages
	return kb * 1024
}

// BodyHash returns the content identity of the site's genuine page.
func (s *System) BodyHash(site Site) string {
	h := s.seed
	for _, ch := range site.Domain {
		h = splitmix(h ^ uint64(ch))
	}
	return fmt.Sprintf("%016x", splitmix(h^0x82))
}

// BlockpageHash returns the content identity of a country's injected
// blockpage — one page per censor, shared across every blocked domain,
// which is exactly how real blockpage fingerprinting works.
func BlockpageHash(country string) string {
	h := uint64(0x6b)
	for _, ch := range country {
		h = splitmix(h ^ uint64(ch))
	}
	return fmt.Sprintf("blockpage-%012x", splitmix(h)&0xffffffffffff)
}
