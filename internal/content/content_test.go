package content

import (
	"strings"
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testWeb  = New(testNet, 42)
)

func TestCatalogCoversEveryCountry(t *testing.T) {
	cat := testWeb.Catalog()
	if len(cat.Countries()) != len(geo.Countries()) {
		t.Fatalf("catalog covers %d countries, want %d", len(cat.Countries()), len(geo.Countries()))
	}
	for _, c := range geo.Countries() {
		sites := cat.SitesFor(c.ISO2)
		if len(sites) < 20 {
			t.Errorf("%s has %d sites, want >= 20", c.ISO2, len(sites))
		}
		for _, s := range sites {
			if s.Country != c.ISO2 || !strings.HasSuffix(s.Domain, "."+c.ISO2) {
				t.Fatalf("bad site %+v for %s", s, c.ISO2)
			}
			if s.Provider == 0 {
				t.Fatalf("site %s has no provider", s.Domain)
			}
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	other := New(testNet, 42)
	a := testWeb.Catalog().SitesFor("KE")
	b := other.Catalog().SitesFor("KE")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHostMixRoughlyRealized(t *testing.T) {
	counts := map[HostKind]int{}
	total := 0
	for _, c := range geo.AfricanCountries() {
		for _, s := range testWeb.Catalog().SitesFor(c.ISO2) {
			counts[s.Kind]++
			total++
		}
	}
	cdnShare := float64(counts[HostCDN]) / float64(total)
	if cdnShare < 0.35 || cdnShare > 0.7 {
		t.Fatalf("CDN share %.2f outside band", cdnShare)
	}
	if counts[HostLocal] == 0 || counts[HostEUHosting] == 0 {
		t.Fatal("hosting kinds not all represented")
	}
}

func TestFetchBaselineSucceeds(t *testing.T) {
	var client topology.ASN
	for _, a := range testTopo.ASesIn("KE") {
		if testTopo.ASes[a].Type == topology.ASMobileCarrier {
			client = a
			break
		}
	}
	ok := 0
	sites := testWeb.Catalog().SitesFor("KE")
	for _, s := range sites {
		r := testWeb.Fetch(client, s)
		if r.OK {
			ok++
			if r.RTTms <= 0 || r.ServedCountry == "" {
				t.Fatalf("malformed result %+v", r)
			}
		}
	}
	if float64(ok)/float64(len(sites)) < 0.95 {
		t.Fatalf("baseline fetch success %d/%d", ok, len(sites))
	}
}

func TestLocalityRegionalGradient(t *testing.T) {
	mean := func(region geo.Region) float64 {
		var sum float64
		n := 0
		for _, c := range geo.CountriesIn(region) {
			ls := testWeb.MeasureLocality(c.ISO2)
			if ls.Samples > 0 {
				sum += ls.Local
				n++
			}
		}
		return sum / float64(n)
	}
	south := mean(geo.AfricaSouthern)
	west := mean(geo.AfricaWestern)
	if south <= west {
		t.Fatalf("Southern locality (%.2f) should beat Western (%.2f) — the paper's maturity gradient", south, west)
	}
}

func TestOffnetServesLocally(t *testing.T) {
	// A South African client fetching CDN content should usually be
	// served from inside Africa (the off-net machinery).
	var client topology.ASN
	for _, a := range testTopo.ASesIn("ZA") {
		if testTopo.ASes[a].Type == topology.ASFixedISP {
			client = a
			break
		}
	}
	local, total := 0, 0
	for _, s := range testWeb.Catalog().SitesFor("ZA") {
		if s.Kind != HostCDN {
			continue
		}
		r := testWeb.Fetch(client, s)
		if !r.OK {
			continue
		}
		total++
		if r.LocalToAfrica {
			local++
		}
	}
	if total == 0 {
		t.Fatal("no CDN fetches")
	}
	if float64(local)/float64(total) < 0.5 {
		t.Fatalf("ZA CDN locality %d/%d; off-nets should dominate", local, total)
	}
}

func TestFetchDegradesUnderTotalCut(t *testing.T) {
	defer testNet.RestoreAll()
	var client topology.ASN
	for _, a := range testTopo.ASesIn("SL") { // single-corridor country
		if testTopo.ASes[a].Type == topology.ASMobileCarrier {
			client = a
			break
		}
	}
	okBefore := 0
	sites := testWeb.Catalog().SitesFor("SL")
	for _, s := range sites {
		if testWeb.Fetch(client, s).OK {
			okBefore++
		}
	}
	for _, id := range testTopo.Corridors()["west-africa-coastal"] {
		testNet.CutCable(id)
	}
	okAfter := 0
	for _, s := range sites {
		if testWeb.Fetch(client, s).OK {
			okAfter++
		}
	}
	if okAfter >= okBefore {
		t.Fatalf("corridor cut did not hurt Sierra Leone: %d -> %d", okBefore, okAfter)
	}
}

func TestHostKindStrings(t *testing.T) {
	for _, k := range []HostKind{HostLocal, HostCloud, HostCDN, HostEUHosting} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestMeasureLocalityUnknownCountry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown country should panic via MustLookup")
		}
	}()
	testWeb.MeasureLocality("XX")
}
