package topology

import (
	"github.com/afrinet/observatory/internal/geo"
)

// The cable catalog models the real subsea systems serving each region,
// with in-service years and shared corridors. Corridors capture the
// paper's key resilience observation: cables are laid along the same
// physical paths (e.g. four West-African systems pass the same stretch
// near Abidjan; the Red Sea funnels most Europe-East-Africa systems), so
// one seabed event cuts several systems at once, as in March 2024.

// landingSpec describes one landing station of a cable in the catalog.
type landingSpec struct {
	iso2 string
	city string
	lat  float64 // 0,0 means "use the country hub"
	lng  float64
}

type cableSpec struct {
	name     string
	born     int
	corridor string
	capacity float64
	landings []landingSpec
}

// Named landing sites that differ from country hubs.
var (
	mombasa    = landingSpec{"KE", "Mombasa", -4.04, 39.66}
	alexandria = landingSpec{"EG", "Alexandria", 31.20, 29.92}
	melkbos    = landingSpec{"ZA", "Melkbosstrand", -33.72, 18.44}
	mtunzini   = landingSpec{"ZA", "Mtunzini", -28.95, 31.75}
	lagos      = landingSpec{"NG", "Lagos", 6.42, 3.40}
	abidjan    = landingSpec{"CI", "Abidjan", 5.30, -4.02}
	accra      = landingSpec{"GH", "Accra", 5.55, -0.20}
	dakar      = landingSpec{"SN", "Dakar", 14.69, -17.45}
	djibouti   = landingSpec{"DJ", "Djibouti City", 11.60, 43.15}
	marseille  = landingSpec{"FR", "Marseille", 43.30, 5.37}
	lisbon     = landingSpec{"PT", "Lisbon", 38.72, -9.14}
	sesimbra   = landingSpec{"PT", "Sesimbra", 38.44, -9.10}
	london     = landingSpec{"GB", "Bude", 50.83, -4.55}
	fortaleza  = landingSpec{"BR", "Fortaleza", -3.73, -38.52}
	luanda     = landingSpec{"AO", "Luanda", -8.84, 13.23}
)

func hub(iso2 string) landingSpec { return landingSpec{iso2: iso2} }

// cableCatalog lists every cable system in the model. African systems are
// chosen so that the 2015->2025 count grows by ~44% (18 -> 26),
// matching Section 2's reported growth.
var cableCatalog = []cableSpec{
	// --- Africa, west coast corridor ---
	{"SAT-3", 2002, "west-africa-coastal", 40, []landingSpec{sesimbra, dakar, abidjan, accra, hub("BJ"), lagos, hub("GA"), luanda, melkbos}},
	{"WACS", 2012, "west-africa-coastal", 80, []landingSpec{london, lisbon, hub("CV"), abidjan, accra, hub("TG"), lagos, hub("CM"), hub("CD"), luanda, hub("NA"), melkbos}},
	{"ACE", 2012, "west-africa-coastal", 60, []landingSpec{marseille, lisbon, hub("MR"), dakar, hub("GM"), hub("GW"), hub("GN"), hub("SL"), hub("LR"), abidjan, accra, hub("BJ"), lagos, hub("ST"), hub("GQ"), hub("GA")}},
	{"MainOne", 2010, "west-africa-coastal", 50, []landingSpec{sesimbra, accra, lagos}},
	{"Glo-1", 2010, "west-africa-coastal", 40, []landingSpec{london, accra, lagos}},
	{"Equiano", 2022, "west-africa-coastal", 240, []landingSpec{lisbon, hub("TG"), lagos, hub("NA"), melkbos}},
	{"2Africa-West", 2023, "west-africa-coastal", 300, []landingSpec{london, lisbon, dakar, abidjan, accra, lagos, hub("CG"), luanda, hub("NA"), melkbos}},

	// --- Africa, east coast corridor ---
	{"EASSy", 2010, "east-africa-coastal", 60, []landingSpec{mtunzini, hub("MZ"), hub("KM"), hub("TZ"), mombasa, hub("SO"), djibouti, hub("SD")}},
	{"LION", 2009, "east-africa-coastal", 30, []landingSpec{hub("MU"), hub("MG")}},
	{"LION2", 2012, "east-africa-coastal", 40, []landingSpec{hub("MU"), hub("MG"), mombasa}},
	{"DARE1", 2020, "east-africa-coastal", 60, []landingSpec{djibouti, hub("SO"), mombasa}},
	{"2Africa-East", 2023, "red-sea", 300, []landingSpec{alexandria, djibouti, mombasa, hub("TZ"), hub("MZ"), mtunzini}},
	{"SAFE", 2002, "south-indian", 30, []landingSpec{melkbos, hub("MU"), hub("IN"), hub("MY")}},
	{"SEAS", 2012, "east-africa-coastal", 20, []landingSpec{hub("TZ"), hub("SC")}},

	// --- Red Sea / Mediterranean trunk (Europe <-> Egypt <-> East Africa/Asia) ---
	{"FLAG-FEA", 1997, "red-sea", 30, []landingSpec{london, alexandria, hub("AE"), hub("IN"), hub("JP")}},
	{"SEA-ME-WE-4", 2005, "red-sea", 50, []landingSpec{marseille, alexandria, hub("AE"), hub("IN"), hub("SG")}},
	{"SEA-ME-WE-5", 2016, "red-sea", 120, []landingSpec{marseille, alexandria, djibouti, hub("AE"), hub("IN"), hub("SG")}},
	{"AAE-1", 2017, "red-sea", 120, []landingSpec{marseille, alexandria, djibouti, hub("AE"), hub("IN"), hub("SG")}},
	{"EIG", 2011, "red-sea", 60, []landingSpec{london, lisbon, alexandria, djibouti, hub("AE"), hub("IN")}},
	{"SEACOM", 2009, "red-sea", 60, []landingSpec{alexandria, djibouti, mombasa, hub("TZ"), hub("MZ"), mtunzini}},
	{"PEACE", 2022, "red-sea", 180, []landingSpec{marseille, alexandria, djibouti, mombasa}},
	{"TEAMS", 2009, "east-africa-coastal", 40, []landingSpec{mombasa, hub("AE")}},

	// --- Mediterranean short-haul ---
	{"Atlas-Offshore", 2000, "mediterranean", 30, []landingSpec{marseille, hub("MA")}},
	{"Hannibal", 2009, "mediterranean", 30, []landingSpec{hub("IT"), hub("TN")}},
	{"Didon", 2009, "mediterranean", 30, []landingSpec{hub("IT"), hub("TN")}},

	// --- South Atlantic ---
	{"SACS", 2018, "south-atlantic", 80, []landingSpec{luanda, fortaleza}},
	{"EllaLink", 2021, "south-atlantic", 100, []landingSpec{sesimbra, fortaleza}},

	// --- North Atlantic (mature; slow growth) ---
	{"TAT-14", 2001, "north-atlantic", 60, []landingSpec{london, hub("US")}},
	{"Apollo", 2003, "north-atlantic", 60, []landingSpec{london, hub("FR"), hub("US")}},
	{"Dunant", 2020, "north-atlantic", 250, []landingSpec{marseille, hub("US")}},
	{"Amitie", 2023, "north-atlantic", 300, []landingSpec{london, hub("FR"), hub("US")}},

	// --- Americas ---
	{"GlobeNet", 2001, "americas", 40, []landingSpec{hub("US"), fortaleza, hub("AR")}},
	{"SAm-1", 2001, "americas", 40, []landingSpec{hub("US"), hub("CO"), hub("PE"), hub("CL"), hub("AR"), fortaleza}},
	{"Monet", 2017, "americas", 120, []landingSpec{hub("US"), fortaleza}},
	{"Seabras-1", 2017, "americas", 120, []landingSpec{hub("US"), fortaleza}},
	{"Tannat", 2018, "americas", 120, []landingSpec{fortaleza, hub("AR")}},
	{"Curie", 2020, "americas", 150, []landingSpec{hub("US"), hub("PA"), hub("CL")}},
	{"Firmina", 2024, "americas", 300, []landingSpec{hub("US"), fortaleza, hub("AR")}},

	// --- Asia-Pacific ---
	{"PC-1", 2001, "asia-pacific", 40, []landingSpec{hub("US"), hub("JP")}},
	{"i2i", 2002, "asia-pacific", 30, []landingSpec{hub("IN"), hub("SG")}},
	{"APG", 2016, "asia-pacific", 120, []landingSpec{hub("SG"), hub("MY"), hub("PH"), hub("JP")}},
	{"FASTER", 2016, "asia-pacific", 120, []landingSpec{hub("US"), hub("JP")}},
	{"ASC", 2018, "asia-pacific", 120, []landingSpec{hub("AU"), hub("ID"), hub("SG")}},
	{"INDIGO", 2019, "asia-pacific", 120, []landingSpec{hub("AU"), hub("ID"), hub("SG")}},
	{"JGA", 2020, "asia-pacific", 150, []landingSpec{hub("AU"), hub("JP")}},
	{"SJC2", 2021, "asia-pacific", 150, []landingSpec{hub("SG"), hub("PH"), hub("JP")}},
	{"Echo", 2023, "asia-pacific", 250, []landingSpec{hub("US"), hub("ID"), hub("SG")}},
	{"Apricot", 2024, "asia-pacific", 250, []landingSpec{hub("SG"), hub("ID"), hub("PH"), hub("JP")}},
}

// terrestrialSpec declares a cross-border terrestrial conduit. African
// terrestrial capacity is deliberately thin — the paper's Section 2 notes
// that poor terrestrial connectivity pushes intra-African traffic onto
// subsea paths — while Europe and North America get dense, fat meshes.
type terrestrialSpec struct {
	a, b     string
	capacity float64
	born     int
}

var terrestrialCatalog = []terrestrialSpec{
	// Africa: a sparse set of operational cross-border fiber routes.
	{"ZA", "BW", 20, 2000}, {"ZA", "NA", 20, 2000}, {"ZA", "MZ", 20, 2000},
	{"ZA", "ZW", 15, 2000}, {"ZA", "LS", 10, 2000}, {"ZA", "SZ", 10, 2000},
	{"BW", "ZM", 8, 2010}, {"ZW", "ZM", 10, 2005}, {"MZ", "MW", 8, 2010},
	{"MZ", "ZW", 8, 2008}, {"ZM", "TZ", 8, 2012}, {"ZM", "MW", 6, 2012},
	{"KE", "UG", 15, 2005}, {"KE", "TZ", 12, 2005}, {"KE", "ET", 8, 2016},
	{"UG", "RW", 10, 2009}, {"RW", "BI", 6, 2012}, {"RW", "CD", 4, 2014},
	{"TZ", "RW", 8, 2012}, {"TZ", "BI", 4, 2014}, {"TZ", "MW", 6, 2014},
	{"ET", "DJ", 15, 2006}, {"SD", "EG", 8, 2010}, {"SD", "ET", 4, 2014},
	{"SS", "UG", 4, 2016}, {"SS", "SD", 3, 2014}, {"SO", "KE", 3, 2018}, {"ER", "SD", 2, 2013}, {"ER", "ET", 2, 2016},
	{"NG", "BJ", 10, 2005}, {"BJ", "TG", 8, 2005}, {"TG", "GH", 8, 2005},
	{"GH", "CI", 8, 2006}, {"CI", "BF", 6, 2008}, {"BF", "GH", 6, 2008},
	{"BF", "ML", 5, 2010}, {"ML", "SN", 6, 2008}, {"SN", "GM", 5, 2010},
	{"SN", "MR", 4, 2012}, {"NE", "NG", 5, 2010}, {"NE", "BF", 4, 2012},
	{"GN", "SN", 3, 2014}, {"SL", "GN", 3, 2016}, {"LR", "SL", 3, 2016},
	{"CM", "TD", 4, 2012}, {"CM", "GA", 4, 2012}, {"CM", "NG", 5, 2014},
	{"CM", "CF", 2, 2016}, {"GA", "CG", 3, 2014}, {"CG", "CD", 4, 2012},
	{"CD", "AO", 3, 2016}, {"AO", "NA", 5, 2014}, {"TD", "SD", 2, 2018},
	{"DZ", "TN", 8, 2000}, {"DZ", "MA", 6, 2005}, {"LY", "TN", 4, 2008},
	{"LY", "EG", 4, 2008}, {"DZ", "NE", 2, 2018}, {"ML", "DZ", 2, 2018},

	// Europe: dense, fat mesh (only the hubs we model).
	{"GB", "FR", 400, 1995}, {"GB", "NL", 400, 1995}, {"FR", "DE", 400, 1995},
	{"NL", "DE", 400, 1995}, {"FR", "ES", 300, 1995}, {"ES", "PT", 300, 1995},
	{"FR", "IT", 300, 1995}, {"DE", "PL", 300, 1998}, {"DE", "SE", 200, 1998},
	{"IT", "GR", 200, 2000}, {"DE", "IT", 300, 1995}, {"FR", "GB", 400, 1995},

	// North America.
	{"US", "CA", 400, 1995}, {"US", "MX", 200, 1998}, {"MX", "PA", 60, 2005},

	// South America.
	{"BR", "AR", 80, 2000}, {"AR", "CL", 60, 2002}, {"BR", "CO", 40, 2008},
	{"CO", "EC", 40, 2008}, {"EC", "PE", 40, 2008}, {"PE", "CL", 40, 2008},

	// Asia-Pacific land/short-sea routes.
	{"SG", "MY", 120, 1998}, {"MY", "ID", 60, 2005}, {"IN", "AE", 60, 2005},
}

// buildCables instantiates the catalog for a given year: cables born
// after the year are excluded. It returns the cables and the conduit
// list (subsea segments plus terrestrial conduits).
func buildCables(year int) (map[CableID]*Cable, []Conduit) {
	cables := make(map[CableID]*Cable)
	var conduits []Conduit
	nextConduit := ConduitID(1)

	resolve := func(ls landingSpec) Landing {
		c := geo.MustLookup(ls.iso2)
		site := c.Hub
		city := ls.city
		if ls.lat != 0 || ls.lng != 0 {
			site = geo.Coord{Lat: ls.lat, Lng: ls.lng}
		}
		if city == "" {
			city = c.Name
		}
		return Landing{Country: ls.iso2, City: city, Site: site}
	}

	id := CableID(1)
	for _, spec := range cableCatalog {
		if spec.born > year {
			continue
		}
		c := &Cable{
			ID:       id,
			Name:     spec.name,
			Born:     spec.born,
			Corridor: spec.corridor,
			Capacity: spec.capacity,
		}
		for _, ls := range spec.landings {
			c.Landings = append(c.Landings, resolve(ls))
		}
		cables[id] = c

		// Each consecutive landing pair is one conduit segment. Subsea
		// paths are longer than great-circle; 1.3x is a standard stretch.
		for i := 0; i+1 < len(c.Landings); i++ {
			from, to := c.Landings[i], c.Landings[i+1]
			if from.Country == to.Country {
				continue
			}
			conduits = append(conduits, Conduit{
				ID:          nextConduit,
				FromCountry: from.Country,
				ToCountry:   to.Country,
				Cable:       id,
				KM:          geo.DistanceKm(from.Site, to.Site) * 1.3,
				Capacity:    spec.capacity,
				Born:        spec.born,
			})
			nextConduit++
		}
		id++
	}

	for _, ts := range terrestrialCatalog {
		if ts.born > year {
			continue
		}
		a, b := geo.MustLookup(ts.a), geo.MustLookup(ts.b)
		conduits = append(conduits, Conduit{
			ID:          nextConduit,
			FromCountry: ts.a,
			ToCountry:   ts.b,
			KM:          geo.DistanceKm(a.Hub, b.Hub) * 1.4, // terrestrial routes wander more
			Capacity:    ts.capacity,
			Born:        ts.born,
		})
		nextConduit++
	}

	return cables, conduits
}
