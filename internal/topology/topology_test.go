package topology

import (
	"testing"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
)

// testTopo caches the reference world across tests in this package.
var testTopo = Generate(DefaultParams())

func TestDeterminism(t *testing.T) {
	a := Generate(Params{Seed: 7, Year: 2025})
	b := Generate(Params{Seed: 7, Year: 2025})
	if len(a.ASNs()) != len(b.ASNs()) || len(a.Links) != len(b.Links) {
		t.Fatalf("same seed, different sizes: %d/%d ASes, %d/%d links",
			len(a.ASNs()), len(b.ASNs()), len(a.Links), len(b.Links))
	}
	for i, asn := range a.ASNs() {
		if b.ASNs()[i] != asn {
			t.Fatalf("ASN lists diverge at %d", i)
		}
	}
	for i := range a.Links {
		la, lb := a.Links[i], b.Links[i]
		if la.A != lb.A || la.B != lb.B || la.Kind != lb.Kind || la.Via != lb.Via {
			t.Fatalf("links diverge at %d: %+v vs %+v", i, la, lb)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Params{Seed: 1, Year: 2025})
	b := Generate(Params{Seed: 2, Year: 2025})
	if len(a.Links) == len(b.Links) {
		// Same size is possible, but then memberships should differ.
		same := true
		for _, id := range a.IXPIDs() {
			if len(a.IXPs[id].Members) != len(b.IXPs[id].Members) {
				same = false
				break
			}
		}
		if same {
			t.Log("warning: seeds 1 and 2 produced suspiciously similar worlds")
		}
	}
}

func TestAfricanIXPCalibration(t *testing.T) {
	count := func(topo *Topology) int {
		n := 0
		for _, id := range topo.IXPIDs() {
			if geo.MustLookup(topo.IXPs[id].Country).Region.IsAfrica() {
				n++
			}
		}
		return n
	}
	if got := count(testTopo); got != 77 {
		t.Errorf("2025 African IXPs = %d, want 77", got)
	}
	old := Generate(Params{Seed: 42, Year: 2015})
	if got := count(old); got != 11 {
		t.Errorf("2015 African IXPs = %d, want 11", got)
	}
}

func TestCableGrowthCalibration(t *testing.T) {
	countAfrican := func(topo *Topology) int {
		n := 0
		for _, id := range topo.CableIDs() {
			for _, l := range topo.Cables[id].Landings {
				if geo.MustLookup(l.Country).Region.IsAfrica() {
					n++
					break
				}
			}
		}
		return n
	}
	now := countAfrican(testTopo)
	old := countAfrican(Generate(Params{Seed: 42, Year: 2015}))
	growth := float64(now-old) / float64(old)
	if growth < 0.35 || growth > 0.60 {
		t.Errorf("African cable growth = %.0f%%, want ~45%%", growth*100)
	}
}

func TestNoAfricanTier1(t *testing.T) {
	for _, asn := range testTopo.ASNs() {
		as := testTopo.ASes[asn]
		if as.Tier == Tier1 && as.Region.IsAfrica() {
			t.Errorf("AS%d is an African Tier-1; the paper's premise forbids this", asn)
		}
	}
}

func TestAfricanTier2Scarcity(t *testing.T) {
	n := 0
	for _, asn := range testTopo.ASNs() {
		as := testTopo.ASes[asn]
		if as.Tier == Tier2 && as.Region.IsAfrica() {
			n++
		}
	}
	if n == 0 || n > 8 {
		t.Errorf("African Tier-2 count = %d, want a small positive number", n)
	}
}

func TestKigaliProbeASN(t *testing.T) {
	as := testTopo.ASes[36924]
	if as == nil {
		t.Fatal("AS36924 missing")
	}
	if as.Country != "RW" {
		t.Fatalf("AS36924 in %s, want RW", as.Country)
	}
	providers := 0
	continental := 0
	for _, lid := range testTopo.LinksOf(36924) {
		l := testTopo.Link(lid)
		if l.Kind == CustomerProvider && l.A == 36924 {
			providers++
			if testTopo.RegionOf(l.B).IsAfrica() {
				continental++
			}
		}
	}
	if providers < 2 || continental < 1 {
		t.Fatalf("AS36924 has %d providers (%d continental); the pilot needs broad upstreams", providers, continental)
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	var all []netx.Prefix
	for _, asn := range testTopo.ASNs() {
		all = append(all, testTopo.ASes[asn].Prefixes...)
	}
	var trie netx.Trie[int]
	for i, p := range all {
		if prev, ok := trie.LookupPrefix(p); ok {
			t.Fatalf("prefix %v allocated twice (first at %d, again at %d)", p, prev, i)
		}
		trie.Insert(p, i)
	}
	// No AS prefix may overlap another's (all are /20 or /24 from
	// disjoint pools).
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Fatalf("overlapping prefixes %v and %v", all[i], all[j])
			}
		}
	}
}

func TestIXPLANsInsidePool(t *testing.T) {
	pool := netx.MustParsePrefix(ixpLANPool)
	seen := map[netx.Addr]bool{}
	for _, id := range testTopo.IXPIDs() {
		lan := testTopo.IXPs[id].LAN
		if !pool.Contains(lan.Base()) {
			t.Errorf("IXP %d LAN %v outside pool", id, lan)
		}
		if lan.Bits() != 24 {
			t.Errorf("IXP %d LAN %v is not a /24", id, lan)
		}
		if seen[lan.Base()] {
			t.Errorf("duplicate LAN %v", lan)
		}
		seen[lan.Base()] = true
	}
}

func TestEveryIXPHasMembers(t *testing.T) {
	for _, id := range testTopo.IXPIDs() {
		if len(testTopo.IXPs[id].Members) == 0 {
			t.Errorf("IXP %s has no members", testTopo.IXPs[id].Name)
		}
	}
}

func TestLinkInvariants(t *testing.T) {
	seen := map[[2]ASN]bool{}
	for i := range testTopo.Links {
		l := &testTopo.Links[i]
		if l.A == l.B {
			t.Fatalf("self link at %d", i)
		}
		key := [2]ASN{l.A, l.B}
		if l.B < l.A {
			key = [2]ASN{l.B, l.A}
		}
		if seen[key] {
			t.Fatalf("duplicate link %d-%d", l.A, l.B)
		}
		seen[key] = true
		if testTopo.ASes[l.A] == nil || testTopo.ASes[l.B] == nil {
			t.Fatalf("link %d references missing AS", i)
		}
		if l.Via != 0 && testTopo.IXPs[l.Via] == nil {
			t.Fatalf("link %d references missing IXP %d", i, l.Via)
		}
	}
}

func TestRealizationComplete(t *testing.T) {
	for i := range testTopo.Links {
		l := &testTopo.Links[i]
		ca := testTopo.ASes[l.A].Country
		cb := testTopo.ASes[l.B].Country
		if ca == cb || l.Via != 0 {
			continue
		}
		if len(l.Path) == 0 {
			t.Errorf("inter-country link %d (%s-%s) has no physical path", i, ca, cb)
		}
		// Path must be contiguous from ca to cb.
		at := ca
		for _, s := range l.Path {
			if s.FromCountry != at {
				t.Fatalf("link %d path discontinuous at %s", i, at)
			}
			at = s.ToCountry
		}
		if at != cb {
			t.Fatalf("link %d path ends at %s, want %s", i, at, cb)
		}
	}
}

func TestCapacityCoversSteadyState(t *testing.T) {
	loads := map[ConduitID]int{}
	for i := range testTopo.Links {
		for _, s := range testTopo.Links[i].Path {
			loads[s.Conduit]++
		}
	}
	for i := range testTopo.Conduits {
		c := &testTopo.Conduits[i]
		if float64(loads[c.ID]) > c.Capacity {
			t.Errorf("conduit %d (%s-%s) overloaded in steady state: %d > %.0f",
				c.ID, c.FromCountry, c.ToCountry, loads[c.ID], c.Capacity)
		}
	}
}

func TestCorridorsPopulated(t *testing.T) {
	corr := testTopo.Corridors()
	west := corr["west-africa-coastal"]
	if len(west) < 4 {
		t.Fatalf("west-africa-coastal has %d cables, want >= 4 (March 2024 needs them)", len(west))
	}
	names := map[string]bool{}
	for _, id := range west {
		names[testTopo.Cables[id].Name] = true
	}
	for _, want := range []string{"WACS", "MainOne", "SAT-3", "ACE"} {
		if !names[want] {
			t.Errorf("%s missing from west corridor", want)
		}
	}
}

func TestMobileClassificationShare(t *testing.T) {
	mobile, total := 0, 0
	for _, asn := range testTopo.ASNs() {
		as := testTopo.ASes[asn]
		if !as.Region.IsAfrica() || as.Type == ASIXPRouteServer {
			continue
		}
		total++
		if as.IsMobile() {
			mobile++
		}
	}
	share := float64(mobile) / float64(total)
	if share < 0.2 || share > 0.7 {
		t.Errorf("African mobile ASN share = %.2f, want mobile-heavy but not universal", share)
	}
}

func TestYearFilterMonotonic(t *testing.T) {
	prev := 0
	for year := 2015; year <= 2025; year++ {
		topo := Generate(Params{Seed: 42, Year: year})
		n := len(topo.ASNs())
		if n < prev {
			t.Fatalf("AS count shrank from %d to %d at year %d", prev, n, year)
		}
		prev = n
	}
}

func TestRealizePathFilter(t *testing.T) {
	// With everything up, NG reaches DE; with all subsea conduits down,
	// it cannot (Africa-Europe has no terrestrial path).
	if _, ok := testTopo.RealizePath("NG", "DE", nil); !ok {
		t.Fatal("NG-DE should be reachable")
	}
	noSubsea := func(id ConduitID) bool {
		return !testTopo.ConduitByID(id).IsSubsea()
	}
	if _, ok := testTopo.RealizePath("NG", "DE", noSubsea); ok {
		t.Fatal("NG-DE should need subsea conduits")
	}
	// Domestic trivially works.
	if segs, ok := testTopo.RealizePath("NG", "NG", nil); !ok || len(segs) != 0 {
		t.Fatal("domestic realization should be empty and ok")
	}
}

func TestPathKMPositive(t *testing.T) {
	for i := range testTopo.Links {
		if km := testTopo.PathKM(&testTopo.Links[i]); km <= 0 {
			t.Fatalf("link %d has non-positive path length %v", i, km)
		}
	}
}

func TestASTypeAndTierStrings(t *testing.T) {
	if ASMobileCarrier.String() != "mobile" || Tier1.String() != "tier1" {
		t.Fatal("string forms changed")
	}
	if ASType(99).String() == "" || RelKind(0).String() == "" {
		t.Fatal("unknown values must stringify")
	}
}
