package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
)

func lookupCountry(iso2 string) (geo.Region, bool) {
	c, ok := geo.Lookup(iso2)
	if !ok {
		return geo.RegionUnknown, false
	}
	return c.Region, true
}

func coord(lat, lng float64) geo.Coord { return geo.Coord{Lat: lat, Lng: lng} }

// JSON interchange. The wire schema is explicit and versioned so
// externally produced topologies (hand-edited scenarios, other
// generators) can be loaded, and generated worlds can be inspected with
// standard tooling. Derived indexes and physical realizations are
// rebuilt on load, so files stay small and edits stay consistent.

// wireSchemaVersion guards against silent format drift.
const wireSchemaVersion = 1

type wireTopology struct {
	Version int         `json:"version"`
	Seed    int64       `json:"seed"`
	Year    int         `json:"year"`
	ASes    []wireAS    `json:"ases"`
	Links   []wireLink  `json:"links"`
	IXPs    []wireIXP   `json:"ixps"`
	Cables  []wireCable `json:"cables"`
	// Conduits are regenerated from the cable catalog year on load when
	// absent; explicit conduits override.
	Conduits []wireConduit `json:"conduits,omitempty"`
}

type wireAS struct {
	ASN         uint32   `json:"asn"`
	Name        string   `json:"name"`
	Country     string   `json:"country"`
	Type        string   `json:"type"`
	Tier        string   `json:"tier"`
	Born        int      `json:"born"`
	Prefixes    []string `json:"prefixes"`
	MobileShare float64  `json:"mobile_share,omitempty"`
	OffNetAt    []int    `json:"offnet_at,omitempty"`
	Responsive  float64  `json:"responsive,omitempty"`
}

type wireLink struct {
	A    uint32 `json:"a"`
	B    uint32 `json:"b"`
	Kind string `json:"kind"`
	Via  int    `json:"via,omitempty"`
	Born int    `json:"born,omitempty"`
}

type wireIXP struct {
	ID      int      `json:"id"`
	Name    string   `json:"name"`
	Country string   `json:"country"`
	Born    int      `json:"born"`
	LAN     string   `json:"lan"`
	Members []uint32 `json:"members"`
}

type wireCable struct {
	ID       int           `json:"id"`
	Name     string        `json:"name"`
	Born     int           `json:"born"`
	Corridor string        `json:"corridor"`
	Capacity float64       `json:"capacity"`
	Landings []wireLanding `json:"landings"`
}

type wireLanding struct {
	Country string  `json:"country"`
	City    string  `json:"city"`
	Lat     float64 `json:"lat"`
	Lng     float64 `json:"lng"`
}

type wireConduit struct {
	ID       int     `json:"id"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	Cable    int     `json:"cable,omitempty"`
	KM       float64 `json:"km"`
	Capacity float64 `json:"capacity"`
	Born     int     `json:"born"`
}

var tierNames = map[Tier]string{TierStub: "stub", Tier2: "tier2", Tier1: "tier1"}

func tierFromName(s string) (Tier, error) {
	for t, n := range tierNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown tier %q", s)
}

func typeFromName(s string) (ASType, error) {
	for t, n := range asTypeNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown AS type %q", s)
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	wt := wireTopology{Version: wireSchemaVersion, Seed: t.Seed, Year: t.Year}
	for _, asn := range t.ASNs() {
		as := t.ASes[asn]
		wa := wireAS{
			ASN: uint32(as.ASN), Name: as.Name, Country: as.Country,
			Type: as.Type.String(), Tier: tierNames[as.Tier], Born: as.Born,
			MobileShare: as.MobileShare, Responsive: as.Responsive,
		}
		for _, p := range as.Prefixes {
			wa.Prefixes = append(wa.Prefixes, p.String())
		}
		for _, x := range as.OffNetAt {
			wa.OffNetAt = append(wa.OffNetAt, int(x))
		}
		wt.ASes = append(wt.ASes, wa)
	}
	for i := range t.Links {
		l := &t.Links[i]
		wt.Links = append(wt.Links, wireLink{
			A: uint32(l.A), B: uint32(l.B), Kind: l.Kind.String(),
			Via: int(l.Via), Born: l.Born,
		})
	}
	for _, id := range t.IXPIDs() {
		x := t.IXPs[id]
		wx := wireIXP{ID: int(x.ID), Name: x.Name, Country: x.Country, Born: x.Born, LAN: x.LAN.String()}
		for _, m := range x.Members {
			wx.Members = append(wx.Members, uint32(m))
		}
		wt.IXPs = append(wt.IXPs, wx)
	}
	for _, id := range t.CableIDs() {
		c := t.Cables[id]
		wc := wireCable{ID: int(c.ID), Name: c.Name, Born: c.Born, Corridor: c.Corridor, Capacity: c.Capacity}
		for _, l := range c.Landings {
			wc.Landings = append(wc.Landings, wireLanding{Country: l.Country, City: l.City, Lat: l.Site.Lat, Lng: l.Site.Lng})
		}
		wt.Cables = append(wt.Cables, wc)
	}
	for i := range t.Conduits {
		c := &t.Conduits[i]
		wt.Conduits = append(wt.Conduits, wireConduit{
			ID: int(c.ID), From: c.FromCountry, To: c.ToCountry,
			Cable: int(c.Cable), KM: c.KM, Capacity: c.Capacity, Born: c.Born,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wt)
}

// ReadJSON loads a topology from its JSON form, rebuilding indexes and
// link realizations.
func ReadJSON(r io.Reader) (*Topology, error) {
	var wt wireTopology
	if err := json.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	if wt.Version != wireSchemaVersion {
		return nil, fmt.Errorf("topology: schema version %d, want %d", wt.Version, wireSchemaVersion)
	}
	t := &Topology{
		Seed:   wt.Seed,
		Year:   wt.Year,
		ASes:   make(map[ASN]*AS, len(wt.ASes)),
		IXPs:   make(map[IXPID]*IXP, len(wt.IXPs)),
		Cables: make(map[CableID]*Cable, len(wt.Cables)),
	}
	for _, wa := range wt.ASes {
		typ, err := typeFromName(wa.Type)
		if err != nil {
			return nil, err
		}
		tier, err := tierFromName(wa.Tier)
		if err != nil {
			return nil, err
		}
		as := &AS{
			ASN: ASN(wa.ASN), Name: wa.Name, Country: wa.Country,
			Type: typ, Tier: tier, Born: wa.Born,
			MobileShare: wa.MobileShare, Responsive: wa.Responsive,
		}
		if c, ok := lookupCountry(wa.Country); ok {
			as.Region = c
		} else {
			return nil, fmt.Errorf("topology: AS%d has unknown country %q", wa.ASN, wa.Country)
		}
		for _, ps := range wa.Prefixes {
			p, err := netx.ParsePrefix(ps)
			if err != nil {
				return nil, fmt.Errorf("topology: AS%d: %w", wa.ASN, err)
			}
			as.Prefixes = append(as.Prefixes, p)
		}
		for _, x := range wa.OffNetAt {
			as.OffNetAt = append(as.OffNetAt, IXPID(x))
		}
		if _, dup := t.ASes[as.ASN]; dup {
			return nil, fmt.Errorf("topology: duplicate AS%d", as.ASN)
		}
		t.ASes[as.ASN] = as
	}
	for i, wl := range wt.Links {
		var kind RelKind
		switch wl.Kind {
		case "c2p":
			kind = CustomerProvider
		case "p2p":
			kind = PeerPeer
		default:
			return nil, fmt.Errorf("topology: link %d has unknown kind %q", i, wl.Kind)
		}
		if t.ASes[ASN(wl.A)] == nil || t.ASes[ASN(wl.B)] == nil {
			return nil, fmt.Errorf("topology: link %d references missing AS", i)
		}
		t.Links = append(t.Links, Link{
			ID: LinkID(i), A: ASN(wl.A), B: ASN(wl.B), Kind: kind,
			Via: IXPID(wl.Via), Born: wl.Born,
		})
	}
	for _, wx := range wt.IXPs {
		lan, err := netx.ParsePrefix(wx.LAN)
		if err != nil {
			return nil, fmt.Errorf("topology: IXP %s: %w", wx.Name, err)
		}
		x := &IXP{ID: IXPID(wx.ID), Name: wx.Name, Country: wx.Country, Born: wx.Born, LAN: lan}
		for _, m := range wx.Members {
			x.Members = append(x.Members, ASN(m))
		}
		t.IXPs[x.ID] = x
	}
	for _, wc := range wt.Cables {
		c := &Cable{ID: CableID(wc.ID), Name: wc.Name, Born: wc.Born, Corridor: wc.Corridor, Capacity: wc.Capacity}
		for _, l := range wc.Landings {
			c.Landings = append(c.Landings, Landing{Country: l.Country, City: l.City,
				Site: coord(l.Lat, l.Lng)})
		}
		t.Cables[c.ID] = c
	}
	for _, wc := range wt.Conduits {
		t.Conduits = append(t.Conduits, Conduit{
			ID: ConduitID(wc.ID), FromCountry: wc.From, ToCountry: wc.To,
			Cable: CableID(wc.Cable), KM: wc.KM, Capacity: wc.Capacity, Born: wc.Born,
		})
	}
	t.buildIndexes()
	realizeLinks(t)
	return t, nil
}
