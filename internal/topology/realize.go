package topology

import (
	"container/heap"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
)

// Physical realization maps AS-level links onto the country-level conduit
// graph (subsea cable segments plus terrestrial routes). Every
// inter-country AS adjacency is carried by a concrete sequence of
// conduits, so a cable cut maps to a precise set of broken adjacencies —
// the mechanism behind the paper's outage analysis (Section 5).

// ConduitFilter reports whether a conduit is usable. The nil filter means
// "everything up".
type ConduitFilter func(ConduitID) bool

// countryEdge is one usable physical edge out of a country.
type countryEdge struct {
	to      string
	conduit int // index into Topology.Conduits
	km      float64
}

// physGraph is the country-level adjacency built from the conduit list.
type physGraph struct {
	adj map[string][]countryEdge
}

func buildPhysGraph(t *Topology, up ConduitFilter) *physGraph {
	g := &physGraph{adj: make(map[string][]countryEdge)}
	for i := range t.Conduits {
		c := &t.Conduits[i]
		if up != nil && !up(c.ID) {
			continue
		}
		g.adj[c.FromCountry] = append(g.adj[c.FromCountry], countryEdge{c.ToCountry, i, c.KM})
		g.adj[c.ToCountry] = append(g.adj[c.ToCountry], countryEdge{c.FromCountry, i, c.KM})
	}
	// Deterministic neighbor order: by distance, then conduit index.
	for k := range g.adj {
		edges := g.adj[k]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].km != edges[j].km {
				return edges[i].km < edges[j].km
			}
			return edges[i].conduit < edges[j].conduit
		})
	}
	return g
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	country string
	dist    float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].country < q[j].country
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// shortest returns the conduit indexes of the minimum-distance path
// between two countries, or ok=false when they are physically
// disconnected.
func (g *physGraph) shortest(from, to string) (path []int, km float64, ok bool) {
	if from == to {
		return nil, 0, true
	}
	dist := map[string]float64{from: 0}
	prevEdge := map[string]int{}
	prevNode := map[string]string{}
	done := map[string]bool{}
	q := &pq{{from, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.country] {
			continue
		}
		done[it.country] = true
		if it.country == to {
			break
		}
		for _, e := range g.adj[it.country] {
			nd := it.dist + e.km
			if d, seen := dist[e.to]; !seen || nd < d-1e-9 {
				dist[e.to] = nd
				prevEdge[e.to] = e.conduit
				prevNode[e.to] = it.country
				heap.Push(q, pqItem{e.to, nd})
			}
		}
	}
	if !done[to] {
		return nil, 0, false
	}
	for at := to; at != from; at = prevNode[at] {
		path = append(path, prevEdge[at])
	}
	// Reverse into from->to order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[to], true
}

// Realizer maps country pairs to concrete conduit sequences under a
// fixed availability filter. Different links between the same country
// pair are spread across parallel conduits (capacity-weighted, salted by
// link id), the way operators buy capacity on different cable systems —
// which is what makes a single cable cut hit a *subset* of a country's
// adjacencies and overload the survivors.
type Realizer struct {
	t *Topology
	g *physGraph
	// nodePath caches the country waypoint sequence per pair.
	nodePaths map[[2]string][]string
	// parallel caches, per country hop, the candidate conduit indexes.
	parallel map[[2]string][]int
}

// NewRealizer builds a realizer for the given availability (nil = all up).
func NewRealizer(t *Topology, up ConduitFilter) *Realizer {
	return &Realizer{
		t:         t,
		g:         buildPhysGraph(t, up),
		nodePaths: make(map[[2]string][]string),
		parallel:  make(map[[2]string][]int),
	}
}

// nodePath returns the waypoint countries of the shortest path
// (inclusive of endpoints), or nil when disconnected.
func (r *Realizer) nodePath(from, to string) []string {
	key := [2]string{from, to}
	if p, ok := r.nodePaths[key]; ok {
		return p
	}
	idxs, _, ok := r.g.shortest(from, to)
	var path []string
	if ok {
		path = append(path, from)
		at := from
		for _, ci := range idxs {
			c := &r.t.Conduits[ci]
			next := c.ToCountry
			if next == at {
				next = c.FromCountry
			}
			path = append(path, next)
			at = next
		}
	}
	r.nodePaths[key] = path
	return path
}

// candidates returns usable conduits between two adjacent countries
// whose length is within 35% of the best one (parallel systems).
func (r *Realizer) candidates(a, b string) []int {
	key := [2]string{a, b}
	if b < a {
		key = [2]string{b, a}
	}
	if c, ok := r.parallel[key]; ok {
		return c
	}
	var out []int
	best := -1.0
	for _, e := range r.g.adj[a] {
		if e.to != b {
			continue
		}
		if best < 0 || e.km < best {
			best = e.km
		}
	}
	for _, e := range r.g.adj[a] {
		if e.to == b && e.km <= best*1.35 {
			out = append(out, e.conduit)
		}
	}
	sort.Ints(out)
	r.parallel[key] = out
	return out
}

// PathFor realizes one link over the physical graph. The salt (the link
// id) deterministically selects among parallel conduits on each hop,
// weighted by conduit capacity.
func (r *Realizer) PathFor(from, to string, salt uint64) ([]Segment, bool) {
	if from == to {
		return nil, true
	}
	nodes := r.nodePath(from, to)
	if nodes == nil {
		return nil, false
	}
	segs := make([]Segment, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		a, b := nodes[i], nodes[i+1]
		cands := r.candidates(a, b)
		if len(cands) == 0 {
			return nil, false
		}
		ci := cands[weightedPick(r.t, cands, salt, uint64(i))]
		c := &r.t.Conduits[ci]
		segs = append(segs, Segment{FromCountry: a, ToCountry: b, Conduit: c.ID, KM: c.KM})
	}
	return segs, true
}

// weightedPick selects an index into cands proportionally to conduit
// capacity, deterministically from the salt.
func weightedPick(t *Topology, cands []int, salt, hop uint64) int {
	if len(cands) == 1 {
		return 0
	}
	var total float64
	for _, ci := range cands {
		total += t.Conduits[ci].Capacity
	}
	h := salt*0x9e3779b97f4a7c15 + hop
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	x := float64(h>>11) / float64(1<<53) * total
	for i, ci := range cands {
		x -= t.Conduits[ci].Capacity
		if x <= 0 {
			return i
		}
	}
	return len(cands) - 1
}

// RealizeLink computes one link's physical path. Ordinary links run
// between the endpoints' countries. Exchange-fabric links are different:
// both ports sit at the exchange, so the physical path is each member's
// backhaul from its home country to the exchange city — and zero for a
// member colocated there or for a content off-net cache parked at the
// fabric. ok is false when a required backhaul leg is physically down.
func RealizeLink(r *Realizer, t *Topology, l *Link) ([]Segment, bool) {
	ca := t.ASes[l.A].Country
	cb := t.ASes[l.B].Country
	if l.Via == 0 {
		if ca == cb {
			return nil, true
		}
		return r.PathFor(ca, cb, uint64(l.ID))
	}
	x := t.IXPs[l.Via]
	if x == nil {
		return nil, true
	}
	var segs []Segment
	for _, end := range []struct {
		asn  ASN
		ctry string
	}{{l.A, ca}, {l.B, cb}} {
		if end.ctry == x.Country || hasOffNet(t.ASes[end.asn], l.Via) {
			continue // port-side presence: no backhaul
		}
		leg, ok := r.PathFor(end.ctry, x.Country, uint64(l.ID)^uint64(end.asn))
		if !ok {
			return nil, false
		}
		segs = append(segs, leg...)
	}
	return segs, true
}

func hasOffNet(as *AS, x IXPID) bool {
	if as == nil {
		return false
	}
	for _, id := range as.OffNetAt {
		if id == x {
			return true
		}
	}
	return false
}

// realizeLinks assigns the default (all-conduits-up) physical path to
// every link, then calibrates conduit capacities to the resulting
// demand.
func realizeLinks(t *Topology) {
	r := NewRealizer(t, nil)
	for i := range t.Links {
		l := &t.Links[i]
		segs, _ := RealizeLink(r, t, l)
		l.Path = segs
	}
	calibrateCapacities(t)
}

// calibrateCapacities sets each conduit's capacity to its steady-state
// load times a vintage-dependent headroom: legacy cables run hot (they
// were sized for yesterday's demand), new systems are over-provisioned.
// This is what turns a corridor cut into congestion on the survivors —
// the paper's "backups are often over-subscribed" dynamic.
func calibrateCapacities(t *Topology) {
	loads := make(map[ConduitID]int)
	for i := range t.Links {
		for _, s := range t.Links[i].Path {
			loads[s.Conduit]++
		}
	}
	for i := range t.Conduits {
		c := &t.Conduits[i]
		headroom := 1.45 // legacy subsea
		switch {
		case !c.IsSubsea():
			headroom = 1.7
		case c.Born >= 2015:
			headroom = 2.6
		}
		load := float64(loads[c.ID])
		cap := load * headroom
		if cap < 4 {
			cap = 4 // idle conduits keep a floor
		}
		c.Capacity = cap
	}
}

// RealizePath computes the physical path between two countries under a
// conduit filter (nil means all conduits usable). It reports ok=false if
// the countries are physically disconnected under the filter.
func (t *Topology) RealizePath(from, to string, up ConduitFilter) ([]Segment, bool) {
	r := NewRealizer(t, up)
	return r.PathFor(from, to, 0)
}

// ConduitByID returns the conduit with the given id.
func (t *Topology) ConduitByID(id ConduitID) *Conduit {
	i := int(id) - 1
	if i < 0 || i >= len(t.Conduits) {
		return nil
	}
	return &t.Conduits[i]
}

// PathKM sums the physical length of a link's realization, adding the
// in-country distance between the two AS hubs when the link is domestic.
func (t *Topology) PathKM(l *Link) float64 {
	if len(l.Path) == 0 {
		a, b := t.Country(l.A), t.Country(l.B)
		if a == nil || b == nil || a.ISO2 == b.ISO2 {
			// Domestic: metro-to-metro distance inside one country is
			// modeled as a small constant haul.
			return 150
		}
		return geo.DistanceKm(a.Hub, b.Hub) * 1.4
	}
	var km float64
	for _, s := range l.Path {
		km += s.KM
	}
	return km
}

// CablesOn returns the distinct cables carrying a link's default path.
func (t *Topology) CablesOn(l *Link) []CableID {
	seen := map[CableID]bool{}
	var out []CableID
	for _, s := range l.Path {
		c := t.ConduitByID(s.Conduit)
		if c != nil && c.IsSubsea() && !seen[c.Cable] {
			seen[c.Cable] = true
			out = append(out, c.Cable)
		}
	}
	return out
}
