// Package topology generates and represents the synthetic Internet the
// observatory measures: autonomous systems with business relationships,
// Internet exchange points, subsea cables with landing stations and
// correlated corridors, and the physical realization of inter-AS links
// over cables and terrestrial routes.
//
// The generator is seeded and parameterized by year, so the same seed
// reproduces the same Internet, and a 2015..2025 sweep yields the
// infrastructure-growth timeline of the paper's Figure 1. The topology is
// calibrated to the structural facts the paper reports: Africa has no
// Tier-1 ASes and few Tier-2s, transit is EU-centric, last-mile is
// mobile-dominated, IXPs grew ~600% in a decade to 77 exchanges, and
// subsea cables grew ~45% along a small number of shared corridors.
package topology

import (
	"fmt"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
)

// ASN is an autonomous system number.
type ASN uint32

// ASType classifies what an AS is in the ecosystem.
type ASType int

const (
	ASUnknown ASType = iota
	ASMobileCarrier
	ASFixedISP
	ASEnterprise
	ASEducation
	ASGovernment
	ASContent // CDN / content provider with off-net caches
	ASCloud   // public cloud / hosting
	ASTransit // wholesale transit carrier
	// ASIXPRouteServer is an IXP's management/route-server AS: it is
	// delegated the exchange's peering-LAN prefix by the RIR but never
	// advertises it in BGP.
	ASIXPRouteServer
)

var asTypeNames = map[ASType]string{
	ASUnknown:        "unknown",
	ASMobileCarrier:  "mobile",
	ASFixedISP:       "fixed-isp",
	ASEnterprise:     "enterprise",
	ASEducation:      "education",
	ASGovernment:     "government",
	ASContent:        "content",
	ASCloud:          "cloud",
	ASTransit:        "transit",
	ASIXPRouteServer: "ixp-rs",
}

func (t ASType) String() string {
	if s, ok := asTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("ASType(%d)", int(t))
}

// Tier is the transit hierarchy position of an AS.
type Tier int

const (
	TierStub Tier = iota
	Tier2
	Tier1
)

func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	default:
		return "stub"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN     ASN
	Name    string
	Country string // ISO2 of registration; content/cloud ASes use HQ country
	Region  geo.Region
	Type    ASType
	Tier    Tier
	Born    int // first year the AS exists

	// Prefixes allocated to the AS (advertised in BGP).
	Prefixes []netx.Prefix

	// MobileShare is the Radar-style fraction of the AS's traffic that
	// originates on mobile devices; the paper classifies an ASN as
	// Mobile when this is >= 0.65.
	MobileShare float64

	// OffNetAt lists IXPs where a content/cloud AS hosts off-net caches.
	OffNetAt []IXPID

	// Responsive is the fraction of the AS's address space that answers
	// probes (mobile CGNAT space answers rarely; servers answer often).
	Responsive float64
}

// IsMobile reports the paper's Radar-based mobile classification.
func (a *AS) IsMobile() bool { return a.MobileShare >= 0.65 }

// RelKind is the business relationship on a link.
type RelKind int

const (
	// CustomerProvider: A pays B for transit (A customer, B provider).
	CustomerProvider RelKind = iota
	// PeerPeer: settlement-free peering, possibly over an IXP fabric.
	PeerPeer
)

func (k RelKind) String() string {
	if k == CustomerProvider {
		return "c2p"
	}
	return "p2p"
}

// LinkID indexes into Topology.Links.
type LinkID int

// Link is one inter-AS adjacency.
type Link struct {
	ID   LinkID
	A, B ASN // for CustomerProvider, A is the customer
	Kind RelKind
	Via  IXPID // nonzero when the peering happens over an IXP fabric
	Born int

	// Path is the physical realization: the country-level waypoints and
	// the conduits carrying each segment. Populated by realizeLinks.
	Path []Segment
}

// Segment is one physical hop of a link's realization.
type Segment struct {
	FromCountry string
	ToCountry   string
	Conduit     ConduitID // terrestrial conduit or subsea cable segment
	KM          float64
}

// IXPID identifies an Internet exchange point.
type IXPID int

// IXP is one Internet exchange point.
type IXP struct {
	ID      IXPID
	Name    string
	Country string
	Born    int

	// LAN is the exchange's peering-LAN prefix. Faithful to operational
	// practice (and to why Table 1's scanners miss IXPs), LAN prefixes
	// are NOT advertised in the global BGP table.
	LAN netx.Prefix

	Members []ASN
}

// CableID identifies a subsea cable system.
type CableID int

// Cable is one subsea cable system: an ordered chain of landing stations.
type Cable struct {
	ID       CableID
	Name     string
	Born     int
	Corridor string  // corridor label; cables in one corridor fail together
	Capacity float64 // normalized units of carried AS-link load
	Landings []Landing
}

// Landing is one landing station on a cable.
type Landing struct {
	Country string
	City    string
	Site    geo.Coord
}

// ConduitID identifies a physical conduit: either a segment of a subsea
// cable (between two consecutive landings) or a terrestrial path between
// neighboring countries.
type ConduitID int

// Conduit is an edge of the physical country-level graph.
type Conduit struct {
	ID          ConduitID
	FromCountry string
	ToCountry   string
	Cable       CableID // 0 for terrestrial conduits
	KM          float64
	Capacity    float64
	Born        int
}

// IsSubsea reports whether the conduit is a subsea cable segment.
func (c *Conduit) IsSubsea() bool { return c.Cable != 0 }

// Topology is a generated Internet snapshot for one year.
type Topology struct {
	Seed int64
	Year int

	ASes     map[ASN]*AS
	Links    []Link
	IXPs     map[IXPID]*IXP
	Cables   map[CableID]*Cable
	Conduits []Conduit

	// Derived indexes (built by buildIndexes).
	asnList   []ASN                // sorted
	ixpList   []IXPID              // sorted
	cableList []CableID            // sorted
	neighbors map[ASN][]LinkID     // links touching each AS
	byCountry map[string][]ASN     // ASes registered per country
	ixpByCtry map[string][]IXPID   // IXPs per country
	memberOf  map[ASN][]IXPID      // IXP memberships per AS
	conduitBy map[string][]int     // conduit indexes per country
	corridors map[string][]CableID // cables per corridor
}

// ASNs returns all ASNs sorted ascending.
func (t *Topology) ASNs() []ASN { return t.asnList }

// IXPIDs returns all IXP ids sorted ascending.
func (t *Topology) IXPIDs() []IXPID { return t.ixpList }

// CableIDs returns all cable ids sorted ascending.
func (t *Topology) CableIDs() []CableID { return t.cableList }

// LinksOf returns the ids of all links touching the AS.
func (t *Topology) LinksOf(a ASN) []LinkID { return t.neighbors[a] }

// ASesIn returns the ASNs registered in the country, sorted.
func (t *Topology) ASesIn(iso2 string) []ASN { return t.byCountry[iso2] }

// IXPsIn returns the IXPs located in the country, sorted.
func (t *Topology) IXPsIn(iso2 string) []IXPID { return t.ixpByCtry[iso2] }

// MemberOf returns the IXPs the AS is a member of, sorted.
func (t *Topology) MemberOf(a ASN) []IXPID { return t.memberOf[a] }

// Corridors returns cable ids grouped by corridor label.
func (t *Topology) Corridors() map[string][]CableID {
	out := make(map[string][]CableID, len(t.corridors))
	for k, v := range t.corridors {
		cp := make([]CableID, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// Country returns the gazetteer record for an AS's country.
func (t *Topology) Country(a ASN) *geo.Country {
	as := t.ASes[a]
	if as == nil {
		return nil
	}
	c, _ := geo.Lookup(as.Country)
	return c
}

// RegionOf returns the region of an AS, or geo.RegionUnknown.
func (t *Topology) RegionOf(a ASN) geo.Region {
	if as := t.ASes[a]; as != nil {
		return as.Region
	}
	return geo.RegionUnknown
}

// NewManual assembles a topology from explicit parts — for tests, small
// worked examples, and loading externally-specified graphs. Link IDs are
// renumbered to match slice positions; indexes are built; links are NOT
// physically realized (Path stays as given).
func NewManual(ases []*AS, links []Link, ixps []*IXP) *Topology {
	t := &Topology{
		ASes:   make(map[ASN]*AS, len(ases)),
		IXPs:   make(map[IXPID]*IXP, len(ixps)),
		Cables: make(map[CableID]*Cable),
	}
	for _, as := range ases {
		t.ASes[as.ASN] = as
	}
	for _, x := range ixps {
		t.IXPs[x.ID] = x
	}
	t.Links = append(t.Links, links...)
	for i := range t.Links {
		t.Links[i].ID = LinkID(i)
	}
	t.buildIndexes()
	return t
}

// buildIndexes fills all derived lookup structures. It must be called
// after any structural mutation (the generator calls it once).
func (t *Topology) buildIndexes() {
	t.asnList = t.asnList[:0]
	for a := range t.ASes {
		t.asnList = append(t.asnList, a)
	}
	sort.Slice(t.asnList, func(i, j int) bool { return t.asnList[i] < t.asnList[j] })

	t.ixpList = t.ixpList[:0]
	for id := range t.IXPs {
		t.ixpList = append(t.ixpList, id)
	}
	sort.Slice(t.ixpList, func(i, j int) bool { return t.ixpList[i] < t.ixpList[j] })

	t.cableList = t.cableList[:0]
	for id := range t.Cables {
		t.cableList = append(t.cableList, id)
	}
	sort.Slice(t.cableList, func(i, j int) bool { return t.cableList[i] < t.cableList[j] })

	t.neighbors = make(map[ASN][]LinkID, len(t.ASes))
	for i := range t.Links {
		l := &t.Links[i]
		t.neighbors[l.A] = append(t.neighbors[l.A], l.ID)
		t.neighbors[l.B] = append(t.neighbors[l.B], l.ID)
	}

	t.byCountry = make(map[string][]ASN)
	for _, a := range t.asnList {
		as := t.ASes[a]
		t.byCountry[as.Country] = append(t.byCountry[as.Country], a)
	}

	t.ixpByCtry = make(map[string][]IXPID)
	t.memberOf = make(map[ASN][]IXPID)
	for _, id := range t.ixpList {
		x := t.IXPs[id]
		t.ixpByCtry[x.Country] = append(t.ixpByCtry[x.Country], id)
		for _, m := range x.Members {
			t.memberOf[m] = append(t.memberOf[m], id)
		}
	}

	t.conduitBy = make(map[string][]int)
	for i := range t.Conduits {
		c := &t.Conduits[i]
		t.conduitBy[c.FromCountry] = append(t.conduitBy[c.FromCountry], i)
		t.conduitBy[c.ToCountry] = append(t.conduitBy[c.ToCountry], i)
	}

	t.corridors = make(map[string][]CableID)
	for _, id := range t.cableList {
		c := t.Cables[id]
		if c.Corridor != "" {
			t.corridors[c.Corridor] = append(t.corridors[c.Corridor], id)
		}
	}
}

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) *Link { return &t.Links[id] }

// Other returns the far end of a link from the given AS.
func (l *Link) Other(a ASN) ASN {
	if l.A == a {
		return l.B
	}
	return l.A
}
