package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netx"
)

// Generate builds the Internet snapshot for p.Year with seed p.Seed.
// Generation is fully deterministic for a given Params. The full 2025 AS
// population (with birth years and address allocations) is generated
// first and then filtered by year, so an AS keeps its ASN and prefixes
// across year sweeps (as real networks do); links and IXP memberships
// are derived for the filtered population.
func Generate(p Params) *Topology {
	if p.Year == 0 {
		p.Year = 2025
	}
	g := &generator{
		rng:  rand.New(rand.NewSource(p.Seed)),
		year: p.Year,
		topo: &Topology{
			Seed:   p.Seed,
			Year:   p.Year,
			ASes:   make(map[ASN]*AS),
			IXPs:   make(map[IXPID]*IXP),
			Cables: make(map[CableID]*Cable),
		},
		alloc:    newAddrAllocator(),
		linkSeen: make(map[[2]ASN]bool),
	}
	g.topo.Cables, g.topo.Conduits = buildCables(p.Year)

	g.makeTier1s()
	g.makeTier2s()
	g.makeContentASes()
	g.makeCountryASes()
	g.filterByYear()
	g.makeIXPs()

	g.linkTier1Mesh()
	g.linkTier2s()
	g.linkContent()
	g.linkStubs()
	g.linkIXPPeering()

	g.topo.buildIndexes()
	realizeLinks(g.topo)
	return g.topo
}

type generator struct {
	rng  *rand.Rand
	year int
	topo *Topology

	alloc *addrAllocator

	// full 2025 population before the year filter
	all []*AS

	tier1s   []ASN
	tier2s   map[geo.Region][]ASN // by region
	t2ByCtry map[string][]ASN
	content  []ASN

	linkSeen map[[2]ASN]bool
}

// addrAllocator hands out /20 blocks from each RIR's /8 pools in a
// stable order. All five African subregions draw from the single
// AfriNIC pool (one shared cursor), mirroring how the RIR actually
// allocates; other regions each have their own pool.
type addrAllocator struct {
	pools   map[string][]netx.Prefix
	cursor  map[string]int // index of next /20 within the pool list
	perPool int            // /20s per /8
}

// rirKey collapses the African subregions onto one allocation domain.
func rirKey(r geo.Region) string {
	if r.IsAfrica() {
		return "afrinic"
	}
	return r.String()
}

func newAddrAllocator() *addrAllocator {
	a := &addrAllocator{
		pools:   make(map[string][]netx.Prefix),
		cursor:  make(map[string]int),
		perPool: 1 << 12, // 4096 /20s per /8
	}
	for r, specs := range regionPools {
		key := rirKey(r)
		if _, done := a.pools[key]; done {
			continue
		}
		for _, s := range specs {
			a.pools[key] = append(a.pools[key], netx.MustParsePrefix(s))
		}
	}
	return a
}

// next returns the region's next free /20.
func (a *addrAllocator) next(r geo.Region) netx.Prefix {
	key := rirKey(r)
	i := a.cursor[key]
	a.cursor[key] = i + 1
	pool := a.pools[key]
	if i >= a.perPool*len(pool) {
		panic("topology: address pool exhausted for " + key)
	}
	p8 := pool[i/a.perPool]
	within := i % a.perPool
	return netx.MakePrefix(p8.Nth(uint64(within)<<12), 20)
}

func (g *generator) addAS(as *AS) *AS {
	if _, dup := g.topo.ASes[as.ASN]; dup {
		panic(fmt.Sprintf("topology: duplicate ASN %d", as.ASN))
	}
	for i := 0; i < prefixCountFor(as.Type); i++ {
		as.Prefixes = append(as.Prefixes, g.alloc.next(as.Region))
	}
	as.Responsive = responsiveFor(as.Type)
	// A fraction of networks are "dark": they drop every unsolicited
	// probe and emit no ICMP. Dark networks are what keeps hitlist and
	// scanning coverage below 100% in Table 1.
	if g.rng.Float64() < darkProbFor(as.Type) {
		as.Responsive = 0
	}
	g.topo.ASes[as.ASN] = as
	g.all = append(g.all, as)
	return as
}

func (g *generator) makeTier1s() {
	for _, spec := range tier1Specs {
		c := geo.MustLookup(spec.country)
		g.tier1s = append(g.tier1s, spec.asn)
		g.addAS(&AS{
			ASN: spec.asn, Name: spec.name, Country: spec.country,
			Region: c.Region, Type: ASTransit, Tier: Tier1, Born: 1995,
			MobileShare: 0,
		})
	}
}

func (g *generator) makeTier2s() {
	g.tier2s = make(map[geo.Region][]ASN)
	g.t2ByCtry = make(map[string][]ASN)
	// Iterate countries in gazetteer order for determinism.
	for _, c := range geo.Countries() {
		n := tier2Seats[c.ISO2]
		for i := 0; i < n; i++ {
			// African Tier-2s share the continental base; offset them
			// into a distinct band to avoid stub collisions.
			var asn ASN
			if c.Region.IsAfrica() {
				asn = 37700 + ASN(len(g.tier2s[geo.AfricaNorthern])+
					len(g.tier2s[geo.AfricaWestern])+len(g.tier2s[geo.AfricaCentral])+
					len(g.tier2s[geo.AfricaEastern])+len(g.tier2s[geo.AfricaSouthern]))
			} else {
				asn = regionASNBase[c.Region] + ASN(900) + ASN(len(g.tier2s[c.Region]))
			}
			as := g.addAS(&AS{
				ASN: asn, Name: fmt.Sprintf("%s-Transit-%d", c.ISO2, i+1),
				Country: c.ISO2, Region: c.Region, Type: ASTransit, Tier: Tier2,
				Born: 2000 + i*3,
			})
			g.tier2s[c.Region] = append(g.tier2s[c.Region], as.ASN)
			g.t2ByCtry[c.ISO2] = append(g.t2ByCtry[c.ISO2], as.ASN)
		}
	}
}

func (g *generator) makeContentASes() {
	for _, spec := range contentSpecs {
		c := geo.MustLookup(spec.country)
		g.content = append(g.content, spec.asn)
		g.addAS(&AS{
			ASN: spec.asn, Name: spec.name, Country: spec.country,
			Region: c.Region, Type: spec.typ, Tier: TierStub, Born: spec.born,
		})
	}
}

// asCountFor returns the 2025 AS count for a country.
func asCountFor(c *geo.Country) int {
	if n, ok := asCountOverrides[c.ISO2]; ok {
		return n
	}
	prof := regionProfiles[c.Region]
	n := int(float64(c.Population) * prof.asFactor)
	if n < prof.minAS {
		n = prof.minAS
	}
	if n > prof.maxAS {
		n = prof.maxAS
	}
	return n
}

// hostingCountries are markets with local hosting/cloud providers, which
// the content substrate uses for in-country origin hosting.
var hostingCountries = map[string]bool{
	"ZA": true, "KE": true, "NG": true, "EG": true, "MU": true,
	"DE": true, "FR": true, "GB": true, "NL": true, "US": true,
	"BR": true, "SG": true, "JP": true, "IN": true, "AU": true,
}

func (g *generator) makeCountryASes() {
	nextAfricanASN := ASN(36800)
	nextByRegion := map[geo.Region]ASN{}
	takeASN := func(r geo.Region) ASN {
		if r.IsAfrica() {
			a := nextAfricanASN
			nextAfricanASN++
			if nextAfricanASN == kigaliProbeASN {
				nextAfricanASN++ // reserved for Rwanda's incumbent
			}
			return a
		}
		if _, ok := nextByRegion[r]; !ok {
			nextByRegion[r] = regionASNBase[r]
		}
		a := nextByRegion[r]
		nextByRegion[r]++
		return a
	}

	for _, c := range geo.Countries() {
		prof := regionProfiles[c.Region]
		total := asCountFor(c)

		// Type plan: incumbent fixed ISP first, then mobile carriers,
		// then a mix of smaller ISPs, enterprises, education,
		// government, and (in hosting markets) local hosting providers.
		var plan []ASType
		plan = append(plan, ASFixedISP)
		for i := 0; i < prof.mobileCarriers && len(plan) < total; i++ {
			plan = append(plan, ASMobileCarrier)
		}
		if hostingCountries[c.ISO2] && len(plan) < total {
			plan = append(plan, ASCloud)
		}
		mix := []ASType{ASEnterprise, ASFixedISP, ASEnterprise, ASEducation,
			ASGovernment, ASEnterprise, ASMobileCarrier, ASFixedISP}
		for i := 0; len(plan) < total; i++ {
			plan = append(plan, mix[i%len(mix)])
		}

		pre := (len(plan)*int(prof.preShare*100) + 99) / 100 // ceil
		typeCount := map[ASType]int{}
		for idx, typ := range plan {
			asn := takeASN(c.Region)
			if c.ISO2 == "RW" && typ == ASFixedISP && typeCount[ASFixedISP] == 0 {
				asn = kigaliProbeASN
			}
			typeCount[typ]++
			born := 2000 + (idx*7)%15 // 2000..2014
			if idx >= pre {
				born = 2016 + (idx*5)%10 // 2016..2025
			}
			mobileShare := 0.05 + g.rng.Float64()*0.15
			switch typ {
			case ASMobileCarrier:
				mobileShare = prof.mobileShareEyeball + g.rng.Float64()*(0.98-prof.mobileShareEyeball)
			case ASFixedISP:
				// In mobile-first markets even "fixed" ISPs resell LTE.
				mobileShare = 0.15 + g.rng.Float64()*0.35
			}
			g.addAS(&AS{
				ASN:     asn,
				Name:    fmt.Sprintf("%s-%s-%d", c.ISO2, typ, typeCount[typ]),
				Country: c.ISO2, Region: c.Region, Type: typ, Tier: TierStub,
				Born: born, MobileShare: mobileShare,
			})
		}
	}
}

// filterByYear removes ASes born after the snapshot year.
func (g *generator) filterByYear() {
	kept := g.all[:0]
	for _, as := range g.all {
		if as.Born <= g.year {
			kept = append(kept, as)
		} else {
			delete(g.topo.ASes, as.ASN)
		}
	}
	g.all = kept
}

func (g *generator) makeIXPs() {
	lanPool := netx.MustParsePrefix(ixpLANPool)
	lans := lanPool.Subnets(24, 0)

	id := IXPID(1)
	for _, spec := range ixpCatalog {
		if spec.born > g.year {
			// Consume the LAN slot anyway so LANs are stable across years.
			id++
			continue
		}
		c := geo.MustLookup(spec.country)
		x := &IXP{
			ID: id, Name: spec.name, Country: spec.country,
			Born: spec.born, LAN: lans[int(id)-1],
		}
		g.topo.IXPs[id] = x

		// The route-server/management AS holds the LAN prefix; it is
		// delegated by the RIR but never advertised in BGP — which is
		// exactly why Table 1's prefix- and BGP-driven scanners miss it.
		g.addAS(&AS{
			ASN: ixpASNBase + ASN(id), Name: spec.name + "-RS",
			Country: spec.country, Region: c.Region,
			Type: ASIXPRouteServer, Tier: TierStub, Born: spec.born,
			Prefixes: []netx.Prefix{x.LAN},
		})
		id++
	}

	// Membership. Local eyeballs/enterprises join with the regional
	// probability; Tier-2s always join their country's exchanges; large
	// exchanges attract remote members from the same region.
	for _, xid := range sortedIXPIDs(g.topo.IXPs) {
		x := g.topo.IXPs[xid]
		spec := ixpCatalog[int(xid)-1]
		prof := regionProfiles[geo.MustLookup(x.Country).Region]
		seen := map[ASN]bool{}
		join := func(a ASN) {
			if !seen[a] {
				seen[a] = true
				x.Members = append(x.Members, a)
			}
		}
		for _, as := range g.all {
			if as.Country != x.Country || as.Born > g.year {
				continue
			}
			switch as.Type {
			case ASTransit:
				join(as.ASN)
			case ASMobileCarrier, ASFixedISP, ASCloud:
				if g.rng.Float64() < prof.ixpJoinProb {
					join(as.ASN)
				}
			case ASEnterprise, ASEducation:
				if g.rng.Float64() < prof.ixpJoinProb*0.25 {
					join(as.ASN)
				}
			case ASGovernment:
				if g.rng.Float64() < prof.ixpJoinProb*0.1 {
					join(as.ASN)
				}
			}
		}
		region := geo.MustLookup(x.Country).Region
		if spec.large {
			// Remote peering from the same region (and, for the biggest
			// European fabrics, from Africa — the paper's detour sinks).
			for _, as := range g.all {
				if as.Born > g.year || as.Country == x.Country || as.Tier == Tier1 {
					continue
				}
				p := 0.0
				if as.Region == region && (as.Type == ASFixedISP || as.Type == ASMobileCarrier || as.Type == ASTransit) {
					p = 0.12
					// Central Africa's hub exchanges aggregate the whole
					// subregion: with barely any terrestrial alternatives,
					// ISPs remote-peer at the regional fabric, which is why
					// the region's intra-regional routes cross IXPs more
					// than anywhere else (Figure 3's Central spike).
					if region == geo.AfricaCentral {
						p = 0.78
					}
				}
				if region == geo.Europe && as.Region.IsAfrica() && as.Type == ASTransit {
					p = 0.8 // African Tier-2s peer remotely in Europe
				}
				if p > 0 && g.rng.Float64() < p {
					join(as.ASN)
				}
			}
		}
		// Pan-African carriers (the continental Tier-2s) buy ports at
		// exchanges across the continent, the way WIOCC, Angola Cables,
		// and Liquid do — which is what makes a ~34-ASN set cover of all
		// 77 exchanges possible (the paper's footnote 1).
		if region.IsAfrica() {
			for _, t2 := range g.africanTier2s() {
				as := g.topo.ASes[t2]
				if as.Country == x.Country || as.Born > g.year {
					continue
				}
				p := 0.12
				if ixpCatalog[int(xid)-1].large {
					p = 0.6 // the big regional fabrics attract every carrier
				}
				if g.rng.Float64() < p {
					join(t2)
				}
			}
			// Every exchange has at least its country's oldest ISPs on
			// the fabric (an exchange with no members would not be in
			// the PCH directory at all). Northern Africa's nascent
			// exchanges list a single member — which is why they never
			// show up in traceroutes (Figure 3 excludes the region).
			var eyeballs []*AS
			for _, as := range g.all {
				if as.Country == x.Country && as.Born <= g.year &&
					(as.Type == ASFixedISP || as.Type == ASMobileCarrier) {
					eyeballs = append(eyeballs, as)
				}
			}
			sort.Slice(eyeballs, func(i, j int) bool {
				if eyeballs[i].Born != eyeballs[j].Born {
					return eyeballs[i].Born < eyeballs[j].Born
				}
				return eyeballs[i].ASN < eyeballs[j].ASN
			})
			forced := 2
			if region == geo.AfricaNorthern {
				forced = 1
			}
			for i := 0; i < len(eyeballs) && i < forced; i++ {
				join(eyeballs[i].ASN)
			}
		}
		sort.Slice(x.Members, func(i, j int) bool { return x.Members[i] < x.Members[j] })
	}
}

func sortedIXPIDs(m map[IXPID]*IXP) []IXPID {
	out := make([]IXPID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// addLink appends a link unless the pair is already connected (first
// relationship wins; providers are wired before IXP peering, so a
// customer link is never shadowed by later peering).
func (g *generator) addLink(a, b ASN, kind RelKind, via IXPID, born int) {
	if a == b {
		return
	}
	key := [2]ASN{a, b}
	if b < a {
		key = [2]ASN{b, a}
	}
	if g.linkSeen[key] {
		return
	}
	g.linkSeen[key] = true
	id := LinkID(len(g.topo.Links))
	g.topo.Links = append(g.topo.Links, Link{
		ID: id, A: a, B: b, Kind: kind, Via: via, Born: born,
	})
}

func (g *generator) linkTier1Mesh() {
	for i, a := range g.tier1s {
		for _, b := range g.tier1s[i+1:] {
			g.addLink(a, b, PeerPeer, 0, 1995)
		}
	}
}

// euTier2s returns the European wholesale market in a stable order.
func (g *generator) euTier2s() []ASN { return g.tier2s[geo.Europe] }

func (g *generator) linkTier2s() {
	for _, region := range geo.AllRegions() {
		t2s := g.tier2s[region]
		for i, t2 := range t2s {
			as := g.topo.ASes[t2]
			if region.IsAfrica() {
				// African Tier-2s buy all transit in Europe (the paper's
				// "only common provider is in Europe").
				eu := g.euTier2s()
				g.addLink(t2, g.tier1s[2+(i%3)], CustomerProvider, 0, as.Born) // an EU Tier-1
				g.addLink(t2, eu[i%len(eu)], CustomerProvider, 0, as.Born)
			} else {
				g.addLink(t2, g.tier1s[i%len(g.tier1s)], CustomerProvider, 0, as.Born)
				g.addLink(t2, g.tier1s[(i+1)%len(g.tier1s)], CustomerProvider, 0, as.Born)
			}
			// Same-region Tier-2s peer with each other; about half of
			// that peering runs over the region's big public fabrics
			// (Frankfurt/Amsterdam-style), the rest is private.
			for _, other := range t2s[i+1:] {
				via := IXPID(0)
				if x := g.largeIXPIn(region); x != 0 && g.rng.Float64() < 0.5 {
					via = x
				}
				g.addLink(t2, other, PeerPeer, via, maxInt(as.Born, g.topo.ASes[other].Born))
			}
		}
	}
	// African Tier-2s from different subregions interconnect only
	// partially (Southern/Eastern peer; Western/Northern mostly do not).
	afT2 := g.africanTier2s()
	for i, a := range afT2 {
		for _, b := range afT2[i+1:] {
			ra, rb := g.topo.RegionOf(a), g.topo.RegionOf(b)
			p := 0.15
			if (ra == geo.AfricaSouthern || ra == geo.AfricaEastern) &&
				(rb == geo.AfricaSouthern || rb == geo.AfricaEastern) {
				p = 0.9
			}
			if g.rng.Float64() < p {
				g.addLink(a, b, PeerPeer, 0, 2016)
			}
		}
	}
}

// largeIXPIn returns one large exchange of the region (lowest id), or 0.
func (g *generator) largeIXPIn(r geo.Region) IXPID {
	for _, id := range sortedIXPIDs(g.topo.IXPs) {
		x := g.topo.IXPs[id]
		if geo.MustLookup(x.Country).Region == r && ixpCatalog[int(id)-1].large {
			return id
		}
	}
	return 0
}

func (g *generator) africanTier2s() []ASN {
	var out []ASN
	for _, r := range geo.AfricanRegions() {
		out = append(out, g.tier2s[r]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *generator) linkContent() {
	for i, cn := range g.content {
		as := g.topo.ASes[cn]
		spec := contentSpecs[i]
		// Global reach through two Tier-1s.
		g.addLink(cn, g.tier1s[i%len(g.tier1s)], CustomerProvider, 0, as.Born)
		g.addLink(cn, g.tier1s[(i+2)%len(g.tier1s)], CustomerProvider, 0, as.Born)

		// Off-net caches: decide per IXP, then peer with the fabric's
		// members openly (that is what off-nets are for).
		for _, xid := range sortedIXPIDs(g.topo.IXPs) {
			x := g.topo.IXPs[xid]
			ctry := geo.MustLookup(x.Country)
			prof := regionProfiles[ctry.Region]
			ixSpec := ixpCatalog[int(xid)-1]
			p := prof.contentOffnetProb
			if ixSpec.large {
				p = 0.95
			}
			if ctry.ISO2 == "ZA" && spec.zaRegion {
				p = 0.95
			}
			if !ctry.Region.IsAfrica() && !ixSpec.large {
				p = 0.6
			}
			if as.Born > ixSpec.born {
				// Cache deployment lags the AS's existence, not the IXP's.
				if g.year < as.Born+2 {
					p = 0
				}
			}
			if g.rng.Float64() >= p {
				continue
			}
			as.OffNetAt = append(as.OffNetAt, xid)
			for _, m := range x.Members {
				if m == cn {
					continue
				}
				if g.rng.Float64() < 0.9 {
					g.addLink(cn, m, PeerPeer, xid, maxInt(as.Born, x.Born))
				}
			}
		}
	}
}

// continentalHubFor maps each African subregion to the Tier-2 market its
// ISPs reach for when buying in-continent transit.
func (g *generator) continentalHubFor(r geo.Region) []ASN {
	switch r {
	case geo.AfricaSouthern:
		return g.t2ByCtry["ZA"]
	case geo.AfricaEastern:
		return append(append([]ASN{}, g.t2ByCtry["KE"]...), g.t2ByCtry["ZA"]...)
	case geo.AfricaWestern:
		return g.t2ByCtry["NG"]
	case geo.AfricaNorthern:
		return g.t2ByCtry["EG"]
	case geo.AfricaCentral:
		return append(append([]ASN{}, g.t2ByCtry["ZA"]...), g.t2ByCtry["NG"]...)
	}
	return nil
}

func (g *generator) linkStubs() {
	for _, as := range g.all {
		if as.Tier != TierStub || as.Type == ASIXPRouteServer {
			continue
		}
		if isContentASN(as.ASN) {
			continue
		}
		if as.ASN == kigaliProbeASN {
			// The pilot probe's host ISP (Section 7.3) multihomes to the
			// continental carriers plus a European upstream — the broad
			// upstream peering that let the Kigali vantage see exchanges
			// the Atlas deployment missed.
			if ke := g.t2ByCtry["KE"]; len(ke) > 0 {
				g.addLink(as.ASN, ke[0], CustomerProvider, 0, as.Born)
			}
			if za := g.t2ByCtry["ZA"]; len(za) > 0 {
				g.addLink(as.ASN, za[0], CustomerProvider, 0, as.Born)
			}
			if ng := g.t2ByCtry["NG"]; len(ng) > 0 {
				g.addLink(as.ASN, ng[0], CustomerProvider, 0, as.Born)
			}
			if eu := g.euTier2s(); len(eu) > 0 {
				g.addLink(as.ASN, eu[0], CustomerProvider, 0, as.Born)
			}
			continue
		}
		prof := regionProfiles[as.Region]

		// Non-ISP organizations usually buy from a domestic ISP.
		if as.Type == ASEnterprise || as.Type == ASEducation || as.Type == ASGovernment || as.Type == ASCloud {
			if isp := g.domesticISPFor(as); isp != 0 && g.rng.Float64() < 0.75 {
				g.addLink(as.ASN, isp, CustomerProvider, 0, as.Born)
				// Some also multihome to transit below.
				if g.rng.Float64() < 0.7 {
					continue
				}
			}
		}

		providers := 0
		// In-country Tier-2.
		if local := g.t2ByCtry[as.Country]; len(local) > 0 && g.rng.Float64() < prof.localProviderProb {
			g.addLink(as.ASN, local[g.rng.Intn(len(local))], CustomerProvider, 0, as.Born)
			providers++
		}
		// Continental hub Tier-2 (Africa only).
		if as.Region.IsAfrica() && providers == 0 {
			if hubs := g.continentalHubFor(as.Region); len(hubs) > 0 && g.rng.Float64() < prof.localProviderProb*0.7 {
				g.addLink(as.ASN, hubs[g.rng.Intn(len(hubs))], CustomerProvider, 0, as.Born)
				providers++
			}
		}
		// European transit (the dependence the paper documents).
		if g.rng.Float64() < prof.euTransitProb || providers == 0 {
			var pool []ASN
			if as.Region.IsAfrica() {
				pool = g.euTier2s()
			} else {
				pool = g.tier2s[as.Region]
				if len(pool) == 0 {
					pool = g.euTier2s()
				}
			}
			g.addLink(as.ASN, pool[g.rng.Intn(len(pool))], CustomerProvider, 0, as.Born)
			providers++
		}
		// Occasional second upstream for resilience.
		if providers == 1 && g.rng.Float64() < 0.25 {
			pool := g.tier2s[as.Region]
			if as.Region.IsAfrica() {
				pool = g.africanTier2s()
			}
			if len(pool) > 0 {
				g.addLink(as.ASN, pool[g.rng.Intn(len(pool))], CustomerProvider, 0, as.Born)
			}
		}
	}
}

// domesticISPFor picks the incumbent (first-born ISP) of the AS's country.
func (g *generator) domesticISPFor(as *AS) ASN {
	var best *AS
	for _, cand := range g.all {
		if cand.Country != as.Country || cand.ASN == as.ASN {
			continue
		}
		if cand.Type != ASFixedISP && cand.Type != ASMobileCarrier {
			continue
		}
		if best == nil || cand.Born < best.Born || (cand.Born == best.Born && cand.ASN < best.ASN) {
			best = cand
		}
	}
	if best == nil {
		return 0
	}
	return best.ASN
}

// linkIXPPeering wires settlement-free peering over each exchange fabric.
// Membership does not imply full-mesh peering — the paper's "peering
// complexity" — so pairs peer with the regional probability, and very
// large fabrics cap each member's peer count the way selective route-
// server policies do in practice.
func (g *generator) linkIXPPeering() {
	const maxPeersAtLargeIXP = 25
	for _, xid := range sortedIXPIDs(g.topo.IXPs) {
		x := g.topo.IXPs[xid]
		prof := regionProfiles[geo.MustLookup(x.Country).Region]
		large := ixpCatalog[int(xid)-1].large
		degree := make(map[ASN]int)
		for i, a := range x.Members {
			for _, b := range x.Members[i+1:] {
				if large && (degree[a] >= maxPeersAtLargeIXP || degree[b] >= maxPeersAtLargeIXP) {
					continue
				}
				if g.rng.Float64() < prof.ixpPeerProb {
					g.addLink(a, b, PeerPeer, xid, x.Born)
					degree[a]++
					degree[b]++
				}
			}
		}
	}
}

func isContentASN(a ASN) bool {
	for _, s := range contentSpecs {
		if s.asn == a {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
