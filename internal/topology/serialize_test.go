package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := testTopo.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ASNs()) != len(testTopo.ASNs()) {
		t.Fatalf("AS count %d != %d", len(back.ASNs()), len(testTopo.ASNs()))
	}
	if len(back.Links) != len(testTopo.Links) {
		t.Fatalf("link count %d != %d", len(back.Links), len(testTopo.Links))
	}
	if len(back.IXPs) != len(testTopo.IXPs) || len(back.Cables) != len(testTopo.Cables) {
		t.Fatal("IXP/cable counts differ")
	}
	// Spot-check a known AS survives with fields intact.
	a, b := testTopo.ASes[36924], back.ASes[36924]
	if b == nil || a.Name != b.Name || a.Country != b.Country || a.Type != b.Type ||
		a.Tier != b.Tier || len(a.Prefixes) != len(b.Prefixes) || a.Region != b.Region {
		t.Fatalf("AS36924 mangled: %+v vs %+v", a, b)
	}
	// Links keep relationships and fabrics.
	for i := range testTopo.Links {
		la, lb := &testTopo.Links[i], &back.Links[i]
		if la.A != lb.A || la.B != lb.B || la.Kind != lb.Kind || la.Via != lb.Via {
			t.Fatalf("link %d mangled", i)
		}
	}
	// Realization was rebuilt.
	realized := 0
	for i := range back.Links {
		if len(back.Links[i].Path) > 0 {
			realized++
		}
	}
	if realized == 0 {
		t.Fatal("no links realized after load")
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{",
		"wrong version": `{"version": 99}`,
		"unknown type":  `{"version":1,"ases":[{"asn":1,"country":"DE","type":"alien","tier":"stub"}]}`,
		"unknown tier":  `{"version":1,"ases":[{"asn":1,"country":"DE","type":"mobile","tier":"tier9"}]}`,
		"bad country":   `{"version":1,"ases":[{"asn":1,"country":"XX","type":"mobile","tier":"stub"}]}`,
		"bad prefix":    `{"version":1,"ases":[{"asn":1,"country":"DE","type":"mobile","tier":"stub","prefixes":["nope"]}]}`,
		"duplicate asn": `{"version":1,"ases":[{"asn":1,"country":"DE","type":"mobile","tier":"stub"},{"asn":1,"country":"DE","type":"mobile","tier":"stub"}]}`,
		"dangling link": `{"version":1,"ases":[],"links":[{"a":1,"b":2,"kind":"c2p"}]}`,
		"bad link kind": `{"version":1,"ases":[{"asn":1,"country":"DE","type":"mobile","tier":"stub"},{"asn":2,"country":"DE","type":"mobile","tier":"stub"}],"links":[{"a":1,"b":2,"kind":"sideways"}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := testTopo.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := testTopo.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not byte-stable")
	}
}
