package topology

// The IXP catalog. African exchanges are calibrated so the 2015 snapshot
// has 11 exchanges and the 2025 snapshot has 77 — the ~600% growth the
// paper reports — with per-country counts mirroring the PCH/PeeringDB
// directories (South Africa and Nigeria lead; most countries have exactly
// one young exchange; Northern Africa's exchanges are recent and tiny).
// Non-African exchanges model the mature fabrics intra-African traffic
// detours through (Frankfurt/Amsterdam/London/Marseille) plus comparison
// regions for Figure 1.

type ixpSpec struct {
	country string
	name    string
	born    int
	// large exchanges attract remote members and content off-nets.
	large bool
}

var ixpCatalog = []ixpSpec{
	// --- Southern Africa (11 by 2025; 4 in the 2015 snapshot) ---
	{"ZA", "JINX", 1996, true},
	{"ZA", "CINX", 2009, false},
	{"ZA", "NAPAfrica-JB", 2012, true},
	{"ZA", "NAPAfrica-CT", 2016, true},
	{"ZA", "DINX", 2018, false},
	{"ZW", "ZINX", 2012, false},
	{"ZW", "HINX", 2021, false},
	{"BW", "BINX", 2016, false},
	{"NA", "WHK-IX", 2016, false},
	{"LS", "LIX", 2020, false},
	{"SZ", "SZIX", 2021, false},

	// --- Eastern Africa (26 by 2025; 5 in the 2015 snapshot) ---
	{"KE", "KIXP-NBO", 2002, true},
	{"KE", "KIXP-MBA", 2016, false},
	{"KE", "EANIX", 2020, false},
	{"UG", "UIXP", 2009, false},
	{"UG", "UIXP-2", 2018, false},
	{"TZ", "TIX", 2010, false},
	{"TZ", "AIXP", 2017, false},
	{"RW", "RINEX", 2014, false},
	{"RW", "RINEX-2", 2020, false},
	{"MZ", "MOZIX", 2002, false},
	{"MZ", "MOZIX-2", 2019, false},
	{"ET", "ETIX", 2016, false},
	{"ET", "ETIX-2", 2021, false},
	{"DJ", "DJIX", 2016, true}, // regional interconnection hub
	{"SO", "SOIX", 2019, false},
	{"SS", "SSIX", 2022, false},
	{"BI", "BDIX", 2016, false},
	{"MW", "MIX", 2016, false},
	{"MW", "MIX-2", 2021, false},
	{"ZM", "LUSIX", 2016, false},
	{"ZM", "ZIXP", 2020, false},
	{"MG", "MGIX", 2016, false},
	{"MU", "MIXP", 2016, false},
	{"MU", "MIXP-2", 2021, false},
	{"SC", "SIXP", 2018, false},
	{"KM", "KMIX", 2021, false},

	// --- Western Africa (21 by 2025; 2 in the 2015 snapshot) ---
	{"NG", "IXPN-LOS", 2007, true},
	{"NG", "IXPN-ABJ", 2016, false},
	{"NG", "IXPN-PHC", 2019, false},
	{"GH", "GIX", 2008, false},
	{"GH", "GIX-2", 2020, false},
	{"CI", "CIVIX", 2016, false},
	{"CI", "CIVIX-2", 2020, false},
	{"SN", "SENIX", 2016, false},
	{"SN", "DKR-IX", 2021, false},
	{"BJ", "BENIX", 2016, false},
	{"TG", "TGIX", 2019, false},
	{"BF", "BFIX", 2016, false},
	{"ML", "MLIX", 2017, false},
	{"NE", "NIGIX", 2019, false},
	{"GM", "SIXP-GM", 2016, false},
	{"GN", "GNIX", 2018, false},
	{"LR", "LIBIX", 2017, false},
	{"SL", "SLIX", 2018, false},
	{"MR", "MRIX", 2020, false},
	{"CV", "CVIX", 2019, false},
	{"GW", "GWIX", 2023, false},

	// --- Central Africa (12 by 2025; 0 in the 2015 snapshot) ---
	{"AO", "ANGONIX", 2016, true},
	{"AO", "ANG-IX2", 2019, false},
	{"CD", "KINIX", 2016, false},
	{"CD", "LUBIX", 2021, false},
	{"CM", "CAMIX", 2016, false},
	{"CM", "CAMIX-DLA", 2020, false},
	{"CG", "CGIX", 2019, false},
	{"GA", "GABIX", 2017, false},
	{"TD", "TDIX", 2022, false},
	{"CF", "RCAIX", 2023, false},
	{"GQ", "GQIX", 2021, false},
	{"ST", "STIX", 2022, false},

	// --- Northern Africa (7 by 2025; 0 in the 2015 snapshot) ---
	{"EG", "CAIX", 2018, false},
	{"EG", "EG-IX", 2022, false},
	{"MA", "CASIX", 2019, false},
	{"TN", "TUNIX", 2016, false},
	{"DZ", "ALGIX", 2020, false},
	{"LY", "LYIX", 2023, false},
	{"SD", "SDIX", 2021, false},

	// --- Comparison regions (not counted in the African 77) ---
	{"DE", "DE-IX-FRA", 1995, true},
	{"NL", "AMS-IX", 1997, true},
	{"GB", "LON-IX", 1994, true},
	{"FR", "FR-IX-MRS", 2010, true},
	{"IT", "MIL-IX", 2000, false},
	{"ES", "ES-IX", 2003, false},
	{"US", "NA-IX-ASH", 1998, true},
	{"US", "NA-IX-SJC", 2000, true},
	{"CA", "TOR-IX", 1998, false},
	{"BR", "BR-IX-SP", 2004, true},
	{"BR", "BR-IX-FOR", 2012, false},
	{"AR", "AR-IX", 2008, false},
	{"CL", "CL-IX", 2010, false},
	{"CO", "CO-IX", 2012, false},
	{"PE", "PE-IX", 2016, false},
	{"EC", "EC-IX", 2018, false},
	{"SG", "SG-IX", 1996, true},
	{"JP", "JP-IX", 1997, true},
	{"IN", "IN-IX", 2003, true},
	{"AU", "AU-IX", 2002, false},
	{"ID", "ID-IX", 2005, false},
	{"MY", "MY-IX", 2006, false},
	{"PH", "PH-IX", 2009, false},
	{"AE", "UAE-IX", 2012, true},
}
