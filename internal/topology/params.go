package topology

import "github.com/afrinet/observatory/internal/geo"

// Params configures topology generation. The zero value is not useful;
// use DefaultParams.
type Params struct {
	Seed int64
	Year int
}

// DefaultParams returns the configuration used across the paper's
// experiments: the 2025 snapshot with the repository's reference seed.
func DefaultParams() Params { return Params{Seed: 42, Year: 2025} }

// regionProfile captures the per-region structural parameters that the
// generator uses. The African values encode the paper's Section 2
// findings (EU transit dependence, thin local peering, mobile-dominated
// access) with the per-region maturity gradient of Section 4.3
// (Southern most mature, then Eastern, Western least).
type regionProfile struct {
	// asFactor is ASes per million population; minAS/maxAS clamp the
	// per-country count.
	asFactor float64
	minAS    int
	maxAS    int

	// preShare is the fraction of the 2025 AS population already
	// present in 2015 (mature regions grew earlier).
	preShare float64

	// mobileCarriers is the typical number of mobile carriers per
	// country; in Africa these dominate last-mile access.
	mobileCarriers int

	// mobileShareEyeball is the Radar-style mobile traffic share given
	// to mobile-carrier ASes (others get low shares).
	mobileShareEyeball float64

	// localProviderProb is the probability a stub AS buys transit from
	// an in-continent Tier-2 when one is reachable; otherwise (and with
	// euTransitProb for a second upstream) it buys from Europe.
	localProviderProb float64
	euTransitProb     float64

	// ixpJoinProb is the probability an eyeball/enterprise AS joins its
	// country's IXP; ixpPeerProb the probability two members actually
	// exchange routes (the paper's "peering complexity").
	ixpJoinProb float64
	ixpPeerProb float64

	// contentOffnetProb is the probability a global content/cloud AS
	// places an off-net cache at a given (non-large) IXP in the region.
	contentOffnetProb float64
}

var regionProfiles = map[geo.Region]regionProfile{
	geo.AfricaNorthern: {
		asFactor: 0.10, minAS: 3, maxAS: 18, preShare: 0.60, mobileCarriers: 2,
		mobileShareEyeball: 0.82, localProviderProb: 0.45, euTransitProb: 0.95,
		ixpJoinProb: 0.10, ixpPeerProb: 0.0, contentOffnetProb: 0.10,
	},
	geo.AfricaWestern: {
		asFactor: 0.16, minAS: 3, maxAS: 35, preShare: 0.45, mobileCarriers: 3,
		mobileShareEyeball: 0.90, localProviderProb: 0.35, euTransitProb: 0.90,
		ixpJoinProb: 0.32, ixpPeerProb: 0.35, contentOffnetProb: 0.22,
	},
	geo.AfricaCentral: {
		asFactor: 0.10, minAS: 3, maxAS: 12, preShare: 0.40, mobileCarriers: 2,
		mobileShareEyeball: 0.92, localProviderProb: 0.30, euTransitProb: 0.95,
		ixpJoinProb: 0.70, ixpPeerProb: 0.85, contentOffnetProb: 0.10,
	},
	geo.AfricaEastern: {
		asFactor: 0.18, minAS: 3, maxAS: 25, preShare: 0.50, mobileCarriers: 3,
		mobileShareEyeball: 0.88, localProviderProb: 0.72, euTransitProb: 0.55,
		ixpJoinProb: 0.55, ixpPeerProb: 0.45, contentOffnetProb: 0.20,
	},
	geo.AfricaSouthern: {
		asFactor: 0.75, minAS: 3, maxAS: 45, preShare: 0.55, mobileCarriers: 3,
		mobileShareEyeball: 0.72, localProviderProb: 0.92, euTransitProb: 0.30,
		ixpJoinProb: 0.72, ixpPeerProb: 0.32, contentOffnetProb: 0.38,
	},
	geo.Europe: {
		asFactor: 0.28, minAS: 6, maxAS: 26, preShare: 0.80, mobileCarriers: 3,
		mobileShareEyeball: 0.55, localProviderProb: 0.98, euTransitProb: 0.0,
		ixpJoinProb: 0.75, ixpPeerProb: 0.75, contentOffnetProb: 0.95,
	},
	geo.NorthAmerica: {
		asFactor: 0.18, minAS: 4, maxAS: 60, preShare: 0.82, mobileCarriers: 3,
		mobileShareEyeball: 0.55, localProviderProb: 0.98, euTransitProb: 0.0,
		ixpJoinProb: 0.55, ixpPeerProb: 0.65, contentOffnetProb: 0.95,
	},
	geo.SouthAmerica: {
		asFactor: 0.17, minAS: 5, maxAS: 35, preShare: 0.60, mobileCarriers: 3,
		mobileShareEyeball: 0.68, localProviderProb: 0.85, euTransitProb: 0.10,
		ixpJoinProb: 0.65, ixpPeerProb: 0.70, contentOffnetProb: 0.60,
	},
	geo.AsiaPacific: {
		asFactor: 0.06, minAS: 6, maxAS: 30, preShare: 0.62, mobileCarriers: 3,
		mobileShareEyeball: 0.70, localProviderProb: 0.90, euTransitProb: 0.05,
		ixpJoinProb: 0.60, ixpPeerProb: 0.65, contentOffnetProb: 0.70,
	},
}

// asCountOverrides pins per-country AS counts where population is a bad
// proxy for ecosystem size (state monopolies, unusually liberalized
// markets, regional hubs).
var asCountOverrides = map[string]int{
	"ET": 4, // monopoly incumbent
	"DZ": 6, // state-dominated
	"ER": 3, // monopoly
	"DJ": 5, // tiny but a regional transit hub
	"EG": 18,
	"MA": 10,
	"ZA": 45,
	"KE": 22,
	"NG": 35,
	"MU": 7, // offshore hosting niche
	"RW": 8, // liberalized, well-connected market
	"SC": 3,
	"US": 60, "CA": 15, "MX": 12, "PA": 4,
	"BR": 35, "AR": 15, "CL": 10, "CO": 10, "PE": 8, "EC": 6,
	"SG": 12, "IN": 30, "JP": 25, "AU": 15, "ID": 15, "MY": 10, "PH": 10, "AE": 8,
	"DE": 25, "FR": 22, "GB": 25, "NL": 15, "ES": 12, "IT": 14, "PT": 8,
	"SE": 8, "PL": 10, "GR": 6,
}

// tier2Seats lists where in-continent wholesale transit providers sit and
// how many each hosts. The African set is deliberately tiny — the paper's
// core structural claim is the lack of Tier-2 depth in Africa.
var tier2Seats = map[string]int{
	// Africa: 5 Tier-2s total.
	"ZA": 2, "KE": 1, "EG": 1, "NG": 1,
	// Europe: a deep transit market.
	"DE": 3, "FR": 2, "GB": 3, "NL": 2, "IT": 1, "ES": 1,
	// North America.
	"US": 5, "CA": 1,
	// South America.
	"BR": 2, "AR": 1, "CL": 1,
	// Asia-Pacific.
	"SG": 2, "JP": 2, "IN": 2, "AU": 1, "AE": 1,
}

// tier1Specs are the global transit-free carriers; none is African.
var tier1Specs = []struct {
	asn     ASN
	name    string
	country string
}{
	{701, "TransGlobal-NA1", "US"},
	{3356, "TransGlobal-NA2", "US"},
	{1299, "EuroBackbone-1", "SE"},
	{3257, "EuroBackbone-2", "DE"},
	{5511, "EuroBackbone-3", "FR"},
	{4637, "PacificBackbone", "SG"},
}

// contentSpecs are the global content and cloud providers. Cloud regions
// on African soil exist only in South Africa, matching Section 5.2's
// observation that public clouds in Africa are centralized there.
var contentSpecs = []struct {
	asn      ASN
	name     string
	country  string
	typ      ASType
	born     int
	zaRegion bool // operates an in-Africa (South Africa) region/PoP
}{
	{15169, "GlobalCDN-A", "US", ASContent, 2000, true},
	{20940, "GlobalCDN-B", "US", ASContent, 2000, true},
	{13335, "GlobalCDN-C", "US", ASContent, 2010, true},
	{32934, "SocialCDN", "US", ASContent, 2008, true},
	{2906, "StreamCDN", "US", ASContent, 2012, false},
	{16509, "CloudOne", "US", ASCloud, 2006, true},
	{8075, "CloudTwo", "US", ASCloud, 2010, true},
	{396982, "CloudThree", "US", ASCloud, 2014, false},
}

// regionASNBase gives each region a recognizable ASN numbering range
// (Africa's mirrors AfriNIC's 36864+ block).
var regionASNBase = map[geo.Region]ASN{
	geo.AfricaNorthern: 36800,
	geo.AfricaWestern:  36800,
	geo.AfricaCentral:  36800,
	geo.AfricaEastern:  36800,
	geo.AfricaSouthern: 36800,
	geo.Europe:         12000,
	geo.NorthAmerica:   7000,
	geo.SouthAmerica:   27000,
	geo.AsiaPacific:    9500,
}

// kigaliProbeASN is the Rwandan broadband provider hosting the paper's
// pilot vantage point (Section 7.3).
const kigaliProbeASN ASN = 36924

// ixpASNBase numbers IXP route-server/management ASNs (they hold the
// peering-LAN prefix but never appear in the BGP table).
const ixpASNBase ASN = 327000

// Address pools per region: each region draws prefixes from recognizable
// /8 blocks (Africa's are AfriNIC's actual blocks).
var regionPools = map[geo.Region][]string{
	geo.AfricaNorthern: {"102.0.0.0/8", "105.0.0.0/8", "154.0.0.0/8", "196.0.0.0/8", "197.0.0.0/8"},
	geo.AfricaWestern:  {"102.0.0.0/8", "105.0.0.0/8", "154.0.0.0/8", "196.0.0.0/8", "197.0.0.0/8"},
	geo.AfricaCentral:  {"102.0.0.0/8", "105.0.0.0/8", "154.0.0.0/8", "196.0.0.0/8", "197.0.0.0/8"},
	geo.AfricaEastern:  {"102.0.0.0/8", "105.0.0.0/8", "154.0.0.0/8", "196.0.0.0/8", "197.0.0.0/8"},
	geo.AfricaSouthern: {"102.0.0.0/8", "105.0.0.0/8", "154.0.0.0/8", "196.0.0.0/8", "197.0.0.0/8"},
	geo.Europe:         {"80.0.0.0/8", "85.0.0.0/8", "90.0.0.0/8"},
	geo.NorthAmerica:   {"23.0.0.0/8", "63.0.0.0/8", "66.0.0.0/8"},
	geo.SouthAmerica:   {"177.0.0.0/8", "181.0.0.0/8", "186.0.0.0/8"},
	geo.AsiaPacific:    {"101.0.0.0/8", "103.0.0.0/8", "110.0.0.0/8"},
}

// ixpLANPool is where IXP peering LANs are carved from (one /24 each);
// 196.60.0.0/14 sits inside AfriNIC space, as real African IXP LANs do.
const ixpLANPool = "196.60.0.0/14"

// prefixCountFor returns how many /20 blocks an AS of the given type is
// allocated. Mobile carriers hold the most address space.
func prefixCountFor(t ASType) int {
	switch t {
	case ASMobileCarrier:
		return 3
	case ASFixedISP:
		return 2
	case ASTransit:
		return 2
	case ASCloud, ASContent:
		return 2
	default:
		return 1
	}
}

// darkProbFor returns the probability an AS is fully firewalled (drops
// all probes and ICMP). Enterprises and governments are often dark;
// carriers almost never are.
func darkProbFor(t ASType) float64 {
	switch t {
	case ASEnterprise:
		return 0.30
	case ASGovernment:
		return 0.35
	case ASEducation:
		return 0.12
	case ASFixedISP:
		return 0.10
	case ASMobileCarrier:
		return 0.03
	default:
		return 0.02
	}
}

// responsiveFor returns the fraction of an AS's address space that
// answers active probes. Mobile space sits behind CGNAT and answers
// rarely — a key reason Table 1's scanners still "cover" mobile ASNs
// only via hitlists that remember historically responsive addresses.
func responsiveFor(t ASType) float64 {
	switch t {
	case ASMobileCarrier:
		return 0.03
	case ASFixedISP:
		return 0.15
	case ASEnterprise:
		return 0.25
	case ASEducation:
		return 0.40
	case ASGovernment:
		return 0.30
	case ASContent:
		return 0.70
	case ASCloud:
		return 0.60
	case ASTransit:
		return 0.45
	default:
		return 0.10
	}
}
