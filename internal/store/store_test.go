package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

// mkRec builds a deterministic test record. i drives every field so
// records are distinguishable and duplicates detectable.
func mkRec(exp string, i int, tick int64) Record {
	countries := []string{"NG", "KE", "ZA"}
	return Record{
		Experiment: exp,
		TaskID:     fmt.Sprintf("%s-t%04d", exp, i),
		ProbeID:    fmt.Sprintf("pr-%02d", i%4),
		Tick:       tick,
		Country:    countries[i%len(countries)],
		ASN:        topology.ASN(36900 + i%3),
		Result: probes.Result{
			TaskID:     fmt.Sprintf("%s-t%04d", exp, i),
			Experiment: exp,
			Kind:       probes.TaskPing,
			OK:         i%5 != 0,
			RTTms:      float64(10 + i%70),
		},
	}
}

func appendN(t *testing.T, s *Store, exp string, n int, tick int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(mkRec(exp, i, tick)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFlushReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, "exp-0001", 25, 3)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want, _, err := s.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 25 {
		t.Fatalf("scan = %d records, want 25", len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{FlushEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := re.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened scan diverged\nwant: %+v\ngot:  %+v", want, got)
	}
	// Sequence numbering continues where the previous incarnation left off.
	if err := re.Append(mkRec("exp-0002", 0, 4)); err != nil {
		t.Fatal(err)
	}
	recs, _, err := re.ScanPage(Filter{Experiment: "exp-0002"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq <= want[len(want)-1].Seq {
		t.Fatalf("seq did not continue after reopen: %+v", recs)
	}
}

func TestAutoFlushBoundsMemtable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, "exp-0001", 10_000, 1)
	if n := s.MemtableLen(); n >= 64 {
		t.Fatalf("memtable holds %d records; auto-flush should cap it under 64", n)
	}
	ctr := s.Counters()
	if ctr["store_frames_appended"] != 10_000 {
		t.Fatalf("store_frames_appended = %d, want 10000", ctr["store_frames_appended"])
	}
	if ctr["segments_flushed"] < 10_000/64 {
		t.Fatalf("segments_flushed = %d, want >= %d", ctr["segments_flushed"], 10_000/64)
	}
}

func TestCompactionMergesAndCounts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 8, TargetFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, "exp-0001", 64, 5)
	before := s.SegmentCount()
	if before < 8 {
		t.Fatalf("segments before compaction = %d, want >= 8", before)
	}
	want, _, err := s.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(10); err != nil {
		t.Fatal(err)
	}
	after := s.SegmentCount()
	if after >= before {
		t.Fatalf("compaction did not reduce segments: %d -> %d", before, after)
	}
	got, _, err := s.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compaction changed scan results")
	}
	ctr := s.Counters()
	if ctr["segments_compacted"] < int64(before-after) {
		t.Fatalf("segments_compacted = %d, want >= %d", ctr["segments_compacted"], before-after)
	}
}

func TestRetentionExpiresOldRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 4, Retention: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, "exp-old", 8, 1)    // ticks far in the past
	appendN(t, s, "exp-new", 8, 99)   // recent
	if err := s.Flush(); err != nil { // seal any partial memtable
		t.Fatal(err)
	}
	if err := s.Compact(100); err != nil { // cutoff = 90
		t.Fatal(err)
	}
	old, _, err := s.ScanPage(Filter{Experiment: "exp-old"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 0 {
		t.Fatalf("retention left %d expired records", len(old))
	}
	recent, _, err := s.ScanPage(Filter{Experiment: "exp-new"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recent) != 8 {
		t.Fatalf("retention dropped recent records: %d left, want 8", len(recent))
	}
	if got := s.Counters()["frames_expired"]; got != 8 {
		t.Fatalf("frames_expired = %d, want 8", got)
	}
}

// TestCrashDuringFlush simulates dying between the tmp write and the
// rename: the stray tmp must be removed at Open and its records (the
// memtable) lost cleanly — sealed segments stay intact.
func TestCrashDuringFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, "exp-0001", 10, 1)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fake an interrupted second flush: a tmp file that never got renamed.
	stray := filepath.Join(dir, segName(99)+".tmp")
	if err := os.WriteFile(stray, []byte("half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	// No Close — the "crash".
	re, err := Open(dir, Options{FlushEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray tmp survived Open")
	}
	if got := re.Counters()["segments_tmp_removed"]; got != 1 {
		t.Fatalf("segments_tmp_removed = %d, want 1", got)
	}
	recs, _, err := re.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("sealed records lost: %d, want 10", len(recs))
	}
}

// TestCrashDuringCompaction simulates dying after the merged segment is
// renamed into place but before the inputs are deleted: Open must prune
// the subsumed inputs and serve each record exactly once.
func TestCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 4, TargetFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, "exp-0001", 16, 1)
	want, _, err := s.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the pre-compaction segment files, compact, then restore
	// them alongside the merged output — the on-disk shape of a crash
	// between the merge rename and the input deletions.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	for _, e := range ents {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		saved[e.Name()] = raw
	}
	if err := s.Compact(5); err != nil {
		t.Fatal(err)
	}
	if s.SegmentCount() != 1 {
		t.Fatalf("segments after compaction = %d, want 1", s.SegmentCount())
	}
	for name, raw := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(dir, Options{FlushEvery: 4, TargetFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Counters()["segments_subsumed"]; got == 0 {
		t.Fatal("Open did not prune the restored compaction inputs")
	}
	got, _, err := re.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-crash scan diverged (%d records, want %d)", len(got), len(want))
	}
}

func TestScanPagePagination(t *testing.T) {
	s := NewMemory(Options{FlushEvery: 7})
	appendN(t, s, "exp-0001", 23, 1)
	var all []Record
	cursor := ""
	pages := 0
	for {
		recs, next, err := s.ScanPage(Filter{Experiment: "exp-0001"}, 5, cursor)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, recs...)
		pages++
		if next == "" {
			break
		}
		if len(recs) != 5 {
			t.Fatalf("non-final page holds %d records, want 5", len(recs))
		}
		cursor = next
	}
	if len(all) != 23 || pages != 5 {
		t.Fatalf("paginated scan: %d records over %d pages, want 23 over 5", len(all), pages)
	}
	whole, _, err := s.ScanPage(Filter{Experiment: "exp-0001"}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, whole) {
		t.Fatal("paginated scan differs from whole scan")
	}
	if _, _, err := s.ScanPage(Filter{}, 5, "not-a-cursor"); err == nil {
		t.Fatal("bad cursor accepted")
	}
}

// TestReadDedupFirstWins covers the crash-window duplicate: two stored
// records for the same (experiment, task) collapse to the lowest-seq
// copy on every read path.
func TestReadDedupFirstWins(t *testing.T) {
	s := NewMemory(Options{FlushEvery: 2})
	r1 := mkRec("exp-0001", 0, 1)
	r1.Result.RTTms = 11
	r2 := mkRec("exp-0001", 0, 2) // same key, later duplicate
	r2.Result.RTTms = 99
	if err := s.Append(r1, mkRec("exp-0001", 1, 1), r2); err != nil {
		t.Fatal(err)
	}
	recs, _, err := s.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("scan = %d records, want 2 after dedup", len(recs))
	}
	if recs[0].Result.RTTms != 11 {
		t.Fatalf("dedup kept the later copy (rtt=%v)", recs[0].Result.RTTms)
	}
	if got := s.Counters()["records_deduped_read"]; got == 0 {
		t.Fatal("records_deduped_read not counted")
	}
	rep, err := s.Aggregate(AggQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 2 {
		t.Fatalf("aggregate matched %d, want 2", rep.Matched)
	}
}

func TestCloseDurableAndReadable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, "exp-0001", 5, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkRec("exp-0001", 9, 1)); err == nil {
		t.Fatal("append after Close succeeded")
	}
	recs, _, err := s.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("reads after Close = %d records, want 5", len(recs))
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err = re.ScanPage(Filter{}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("Close did not seal the memtable: %d records on reopen", len(recs))
	}
}
