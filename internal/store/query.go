package store

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/topology"
)

// Filter selects records. Zero values mean "any"; tick bounds are
// inclusive and a bound of 0 (or less) is open.
type Filter struct {
	Experiment string
	Country    string
	ASN        topology.ASN
	Kind       string
	// Verdict selects websteps results by blocking verdict
	// (dns_blocked, throttled, ...).
	Verdict string
	// ResolverChain selects dnsload results by chain shape
	// (e.g. "stub>cache>cloud>authority").
	ResolverChain string
	// ECS tri-states on the dnsload client-subnet flag: "" any,
	// "true"/"false" exact.
	ECS      string
	FromTick int64
	ToTick   int64
}

func (f Filter) match(r Record) bool {
	if f.Experiment != "" && r.Experiment != f.Experiment {
		return false
	}
	if f.Country != "" && r.Country != f.Country {
		return false
	}
	if f.ASN != 0 && r.ASN != f.ASN {
		return false
	}
	if f.Kind != "" && string(r.Result.Kind) != f.Kind {
		return false
	}
	if f.Verdict != "" && r.Result.Verdict != f.Verdict {
		return false
	}
	if f.ResolverChain != "" && r.Result.ResolverChain != f.ResolverChain {
		return false
	}
	if f.ECS != "" && strconv.FormatBool(r.Result.ECS) != f.ECS {
		return false
	}
	if f.FromTick > 0 && r.Tick < f.FromTick {
		return false
	}
	if f.ToTick > 0 && r.Tick > f.ToTick {
		return false
	}
	return true
}

// collect gathers every record matching the filter, in sequence order,
// with at most one record per (experiment, task) — the lowest-seq copy
// wins, collapsing the duplicates a crash window can leave. Sealed
// segments are pruned on their sparse index and the survivors scanned in
// parallel; because each segment's matches land in its own slot and
// segment seq ranges are disjoint, the merged output is identical no
// matter how many workers ran (the internal/par contract).
func (s *Store) collect(f Filter) ([]Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var scan []*segment
	for _, sg := range s.segs {
		if sg.meta.mayMatch(f) {
			scan = append(scan, sg)
		}
	}
	type part struct {
		recs []Record
		err  error
	}
	parts := par.Map(0, len(scan), func(i int) part {
		recs, torn, err := scan[i].load()
		if err != nil {
			return part{err: err}
		}
		if torn {
			s.ctr.Inc("segments_truncated_read")
		}
		var m []Record
		for _, r := range recs {
			if f.match(r) {
				m = append(m, r)
			}
		}
		return part{recs: m}
	})
	seen := make(map[string]bool)
	var out []Record
	emit := func(r Record) {
		k := r.Key()
		if seen[k] {
			s.ctr.Inc("records_deduped_read")
			return
		}
		seen[k] = true
		out = append(out, r)
	}
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		for _, r := range p.recs {
			emit(r)
		}
	}
	for _, r := range s.mem {
		if f.match(r) {
			emit(r)
		}
	}
	return out, nil
}

// ScanPage returns matching records in stable sequence order, limit at a
// time. cursor is the opaque position returned by the previous page (""
// starts from the beginning); the returned cursor is "" once the scan is
// exhausted. Cursors stay valid across flushes, compactions, and
// restarts because they are sequence numbers, which all three preserve.
// limit <= 0 returns everything.
func (s *Store) ScanPage(f Filter, limit int, cursor string) ([]Record, string, error) {
	t := obs.StartTimer()
	defer func() { s.hScan.Observe(t.Elapsed()) }()
	after, err := parseCursor(cursor)
	if err != nil {
		return nil, "", err
	}
	recs, err := s.collect(f)
	if err != nil {
		return nil, "", err
	}
	s.ctr.Inc("queries_served")
	start := sort.Search(len(recs), func(i int) bool { return recs[i].Seq > after })
	recs = recs[start:]
	if limit > 0 && len(recs) > limit {
		next := strconv.FormatUint(recs[limit-1].Seq, 10)
		return recs[:limit], next, nil
	}
	return recs, "", nil
}

func parseCursor(cursor string) (uint64, error) {
	if cursor == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(cursor, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad cursor %q", cursor)
	}
	return n, nil
}

// Aggregation group-by modes.
const (
	GroupNone       = "none"
	GroupCountry    = "country"
	GroupASN        = "asn"
	GroupCountryASN = "country_asn"
	// GroupVerdict buckets by websteps blocking verdict; GroupResolver
	// by the probe's resolver class; GroupCountryResolver by both keys
	// — the censorship-report cuts.
	GroupVerdict         = "verdict"
	GroupResolver        = "resolver"
	GroupCountryResolver = "country_resolver"
	// GroupResolverChain buckets by the dnsload resolver chain shape;
	// GroupECS by whether client-subnet was attached — the cuts the ECS
	// localization study reads back out of the platform.
	GroupResolverChain = "resolver_chain"
	GroupECS           = "ecs"
)

// AggQuery is one aggregation request: a record filter plus how to
// bucket the matches.
type AggQuery struct {
	Filter  Filter
	GroupBy string // "", GroupNone, GroupCountry, GroupASN, GroupCountryASN, GroupVerdict, GroupResolver, GroupCountryResolver
}

// AggGroup is one aggregation bucket: result counts, loss rate, and RTT
// statistics (computed over successful results that reported an RTT).
type AggGroup struct {
	Country string       `json:"country,omitempty"`
	ASN     topology.ASN `json:"asn,omitempty"`
	// Resolver is the bucket's resolver class (resolver /
	// country_resolver modes); Verdict its blocking verdict (verdict
	// mode).
	Resolver string `json:"resolver,omitempty"`
	Verdict  string `json:"verdict,omitempty"`
	// ResolverChain is the bucket's chain shape (resolver_chain mode);
	// ECS its client-subnet flag as "true"/"false" (ecs mode).
	ResolverChain string  `json:"resolver_chain,omitempty"`
	ECS           string  `json:"ecs,omitempty"`
	Count         int64   `json:"count"`
	OK            int64   `json:"ok"`
	LossRate      float64 `json:"loss_rate"`
	// Verdicts counts the websteps blocking verdicts inside the bucket
	// (populated whenever the bucket holds verdict-carrying results;
	// map keys marshal sorted, so the JSON stays deterministic).
	Verdicts map[string]int64 `json:"verdicts,omitempty"`
	RTTCount int64            `json:"rtt_count,omitempty"`
	RTTMean  float64          `json:"rtt_mean_ms,omitempty"`
	RTTP50   float64          `json:"rtt_p50_ms,omitempty"`
	RTTP90   float64          `json:"rtt_p90_ms,omitempty"`
	RTTP99   float64          `json:"rtt_p99_ms,omitempty"`
}

// AggReport is an aggregation response: the buckets (sorted by key for
// determinism) plus how many distinct records matched.
type AggReport struct {
	Matched int64      `json:"matched"`
	Groups  []AggGroup `json:"groups"`
}

// Aggregate computes time-window aggregations — counts, loss rate, and
// RTT mean/percentiles — over the filtered records, bucketed per the
// query's GroupBy. Scans run in parallel across segments; the
// aggregation itself is a serial fold in sequence order, so results are
// independent of worker count.
func (s *Store) Aggregate(q AggQuery) (AggReport, error) {
	t := obs.StartTimer()
	defer func() { s.hAggregate.Observe(t.Elapsed()) }()
	if err := ValidGroupBy(q.GroupBy); err != nil {
		return AggReport{}, err
	}
	recs, err := s.collect(q.Filter)
	if err != nil {
		return AggReport{}, err
	}
	s.ctr.Inc("queries_served")
	return AggregateRecords(recs, q.GroupBy)
}

// ValidGroupBy rejects unknown aggregation group-by modes.
func ValidGroupBy(groupBy string) error {
	switch groupBy {
	case "", GroupNone, GroupCountry, GroupASN, GroupCountryASN,
		GroupVerdict, GroupResolver, GroupCountryResolver,
		GroupResolverChain, GroupECS:
		return nil
	default:
		return fmt.Errorf("store: unknown group_by %q", groupBy)
	}
}

// AggregateRecords folds an already-collected, deduplicated record set
// into an AggReport. Split out of Store.Aggregate so a federation
// coordinator can merge matching records from every shard and fold them
// centrally — percentiles do not compose across shards, but the fold
// over the merged set is exactly what a single store would compute.
func AggregateRecords(recs []Record, groupBy string) (AggReport, error) {
	if err := ValidGroupBy(groupBy); err != nil {
		return AggReport{}, err
	}
	type bucket struct {
		g    AggGroup
		rtts []float64
	}
	buckets := make(map[string]*bucket)
	var order []string
	for _, r := range recs {
		var key string
		g := AggGroup{}
		switch groupBy {
		case GroupCountry:
			key, g.Country = r.Country, r.Country
		case GroupASN:
			key, g.ASN = fmt.Sprintf("%d", r.ASN), r.ASN
		case GroupCountryASN:
			key = fmt.Sprintf("%s/%d", r.Country, r.ASN)
			g.Country, g.ASN = r.Country, r.ASN
		case GroupVerdict:
			key, g.Verdict = r.Result.Verdict, r.Result.Verdict
		case GroupResolver:
			key, g.Resolver = r.Result.ResolverKind, r.Result.ResolverKind
		case GroupCountryResolver:
			key = r.Country + "/" + r.Result.ResolverKind
			g.Country, g.Resolver = r.Country, r.Result.ResolverKind
		case GroupResolverChain:
			key, g.ResolverChain = r.Result.ResolverChain, r.Result.ResolverChain
		case GroupECS:
			key = strconv.FormatBool(r.Result.ECS)
			g.ECS = key
		}
		b, ok := buckets[key]
		if !ok {
			b = &bucket{g: g}
			buckets[key] = b
			order = append(order, key)
		}
		b.g.Count++
		if r.Result.Verdict != "" {
			if b.g.Verdicts == nil {
				b.g.Verdicts = make(map[string]int64)
			}
			b.g.Verdicts[r.Result.Verdict]++
		}
		if r.Result.OK {
			b.g.OK++
			if r.Result.RTTms > 0 {
				b.rtts = append(b.rtts, r.Result.RTTms)
			}
		}
	}
	sort.Strings(order)
	rep := AggReport{Matched: int64(len(recs))}
	for _, key := range order {
		b := buckets[key]
		if b.g.Count > 0 {
			b.g.LossRate = 1 - float64(b.g.OK)/float64(b.g.Count)
		}
		if len(b.rtts) > 0 {
			sort.Float64s(b.rtts)
			sum := 0.0
			for _, v := range b.rtts {
				sum += v
			}
			b.g.RTTCount = int64(len(b.rtts))
			b.g.RTTMean = sum / float64(len(b.rtts))
			b.g.RTTP50 = percentile(b.rtts, 50)
			b.g.RTTP90 = percentile(b.rtts, 90)
			b.g.RTTP99 = percentile(b.rtts, 99)
		}
		rep.Groups = append(rep.Groups, b.g)
	}
	return rep, nil
}

// percentile is the nearest-rank percentile of an ascending-sorted
// sample set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// KeySet returns the set of task IDs the store holds for one experiment.
// Recovery uses it to reconcile the controller's dedup bookkeeping
// against what actually survived a crash.
func (s *Store) KeySet(experiment string) (map[string]bool, error) {
	recs, err := s.collect(Filter{Experiment: experiment})
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(recs))
	for _, r := range recs {
		out[r.TaskID] = true
	}
	return out, nil
}
