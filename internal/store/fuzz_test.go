package store

import (
	"bytes"
	"testing"
)

// FuzzSegmentReplay hammers ParseSegment with corrupted, truncated, and
// arbitrary byte streams: it must never panic, must return records in
// strictly increasing seq order, and — for any prefix truncation of a
// valid segment — must return a prefix of the original records with
// torn=true (or the whole set at a clean boundary).
func FuzzSegmentReplay(f *testing.F) {
	var recs []Record
	for i := 0; i < 8; i++ {
		r := mkRec("exp-0001", i, int64(i))
		r.Seq = uint64(i + 1)
		recs = append(recs, r)
	}
	valid, err := EncodeSegment(buildMeta(recs), recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])  // torn tail
	f.Add(valid[:frameHeader-2]) // short header
	f.Add([]byte{})              // empty
	f.Add([]byte("not a segment"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // corrupt last frame's payload
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, got, torn := ParseSegment(data)
		for i := 1; i < len(got); i++ {
			if got[i].Seq <= got[i-1].Seq {
				t.Fatalf("records out of seq order at %d", i)
			}
		}
		if len(got) > meta.Frames && meta.Frames > 0 {
			// More records than the index claims is possible only for
			// adversarial metas; tolerated, never fatal. (Real segments
			// write Frames == len(recs).)
			_ = torn
		}
		// Truncations of the known-valid segment return a prefix.
		if len(data) < len(valid) && bytes.Equal(data, valid[:len(data)]) {
			if len(got) > len(recs) {
				t.Fatalf("truncated segment yielded %d records, original had %d", len(got), len(recs))
			}
			for i, r := range got {
				if r.Seq != recs[i].Seq || r.TaskID != recs[i].TaskID {
					t.Fatalf("truncated segment record %d is not a prefix of the original", i)
				}
			}
			if len(got) < len(recs) && !torn {
				t.Fatal("lost records without torn=true")
			}
		}
	})
}
