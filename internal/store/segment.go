package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/afrinet/observatory/internal/topology"
)

// The on-disk segment format mirrors the journal's framing so the same
// torn-tail reasoning applies:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// Frame 0 of a segment is the JSON encoding of SegmentMeta — the
// segment's sparse index. Every following frame is the JSON encoding of
// one Record, in strictly increasing Seq order. Segments are written
// whole (tmp + fsync + rename + dir-fsync) and never modified after the
// rename, so a well-formed segment can only be damaged by external
// corruption; readers stop at the first bad frame and serve the valid
// prefix rather than failing.

// MaxFrameBytes bounds a single frame payload. A length prefix larger
// than this is treated as corruption rather than honored with a giant
// allocation.
const MaxFrameBytes = 1 << 26 // 64 MiB

const frameHeader = 8 // 4-byte length + 4-byte CRC

// SegmentMeta is the per-segment sparse index: the seq and tick ranges
// the segment spans plus the distinct experiments, countries, and ASNs
// it contains. Queries prune whole segments on it before reading any
// record frame.
type SegmentMeta struct {
	MinSeq      uint64         `json:"min_seq"`
	MaxSeq      uint64         `json:"max_seq"`
	MinTick     int64          `json:"min_tick"`
	MaxTick     int64          `json:"max_tick"`
	Frames      int            `json:"frames"`
	Experiments []string       `json:"experiments,omitempty"`
	Countries   []string       `json:"countries,omitempty"`
	ASNs        []topology.ASN `json:"asns,omitempty"`
}

// buildMeta derives a segment's sparse index from its records.
func buildMeta(recs []Record) SegmentMeta {
	m := SegmentMeta{Frames: len(recs)}
	exps := make(map[string]bool)
	ccs := make(map[string]bool)
	asns := make(map[topology.ASN]bool)
	for i, r := range recs {
		if i == 0 {
			m.MinSeq, m.MaxSeq = r.Seq, r.Seq
			m.MinTick, m.MaxTick = r.Tick, r.Tick
		}
		if r.Seq < m.MinSeq {
			m.MinSeq = r.Seq
		}
		if r.Seq > m.MaxSeq {
			m.MaxSeq = r.Seq
		}
		if r.Tick < m.MinTick {
			m.MinTick = r.Tick
		}
		if r.Tick > m.MaxTick {
			m.MaxTick = r.Tick
		}
		exps[r.Experiment] = true
		ccs[r.Country] = true
		asns[r.ASN] = true
	}
	for e := range exps {
		m.Experiments = append(m.Experiments, e)
	}
	sort.Strings(m.Experiments)
	for c := range ccs {
		m.Countries = append(m.Countries, c)
	}
	sort.Strings(m.Countries)
	for a := range asns {
		m.ASNs = append(m.ASNs, a)
	}
	sort.Slice(m.ASNs, func(i, j int) bool { return m.ASNs[i] < m.ASNs[j] })
	return m
}

// mayMatch reports whether a segment with this index can hold records
// matching the filter. False prunes the segment without reading it.
func (m SegmentMeta) mayMatch(f Filter) bool {
	if f.FromTick > 0 && m.MaxTick < f.FromTick {
		return false
	}
	if f.ToTick > 0 && m.MinTick > f.ToTick {
		return false
	}
	if f.Experiment != "" && !containsString(m.Experiments, f.Experiment) {
		return false
	}
	if f.Country != "" && !containsString(m.Countries, f.Country) {
		return false
	}
	if f.ASN != 0 {
		i := sort.Search(len(m.ASNs), func(i int) bool { return m.ASNs[i] >= f.ASN })
		if i >= len(m.ASNs) || m.ASNs[i] != f.ASN {
			return false
		}
	}
	return true
}

func containsString(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}

// appendFrame renders one JSON payload as a wire frame onto buf.
func appendFrame(buf []byte, payload []byte) ([]byte, error) {
	if len(payload) == 0 || len(payload) > MaxFrameBytes {
		return nil, fmt.Errorf("store: frame payload of %d bytes out of range", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// EncodeSegment renders a whole segment (meta frame followed by one
// frame per record) as the bytes written to disk.
func EncodeSegment(meta SegmentMeta, recs []Record) ([]byte, error) {
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	buf, err := appendFrame(nil, metaRaw)
	if err != nil {
		return nil, err
	}
	for i := range recs {
		raw, err := json.Marshal(&recs[i])
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if buf, err = appendFrame(buf, raw); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// nextFrame decodes one frame from data, returning the payload and the
// remaining bytes. ok is false at a clean end (no bytes left) and on any
// bad frame; bad distinguishes the two.
func nextFrame(data []byte) (payload, rest []byte, ok, bad bool) {
	if len(data) == 0 {
		return nil, nil, false, false
	}
	if len(data) < frameHeader {
		return nil, nil, false, true
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if length == 0 || length > MaxFrameBytes || uint64(len(data)-frameHeader) < uint64(length) {
		return nil, nil, false, true
	}
	payload = data[frameHeader : frameHeader+int(length)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, false, true
	}
	return payload, data[frameHeader+int(length):], true, false
}

// ParseSegment decodes a segment byte stream tolerantly: it stops at the
// first short, corrupt, undecodable, or out-of-order frame and returns
// whatever decoded cleanly before it — the segment-level equivalent of
// the journal's torn-tail truncation. It never panics and never fails: a
// stream whose meta frame is already bad yields (zero meta, no records,
// torn=true). torn reports whether any records were lost: the stream
// ended at a bad frame, or it ended cleanly but short of the count the
// meta frame promised (a truncation that happens to land on a frame
// boundary).
func ParseSegment(data []byte) (meta SegmentMeta, recs []Record, torn bool) {
	payload, rest, ok, _ := nextFrame(data)
	if !ok {
		return SegmentMeta{}, nil, true // a segment without a meta frame is corrupt
	}
	if err := json.Unmarshal(payload, &meta); err != nil {
		return SegmentMeta{}, nil, true
	}
	data = rest
	var prevSeq uint64
	for {
		var bad bool
		payload, rest, ok, bad = nextFrame(data)
		if !ok {
			return meta, recs, bad || len(recs) < meta.Frames
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return meta, recs, true
		}
		if len(recs) > 0 && rec.Seq <= prevSeq {
			return meta, recs, true
		}
		prevSeq = rec.Seq
		recs = append(recs, rec)
		data = rest
	}
}

// segment is one immutable sealed run of records. Disk segments hold
// only their sparse index in memory and are re-read on scan; memory
// segments (dir-less stores) keep their records.
type segment struct {
	id   uint64
	meta SegmentMeta
	path string   // "" for memory segments
	recs []Record // nil for disk segments
}

// load returns the segment's records. Disk reads are tolerant: a
// segment damaged after it was sealed yields its valid prefix.
func (sg *segment) load() ([]Record, bool, error) {
	if sg.path == "" {
		return sg.recs, false, nil
	}
	raw, err := os.ReadFile(sg.path)
	if err != nil {
		return nil, false, fmt.Errorf("store: reading %s: %w", sg.path, err)
	}
	_, recs, torn := ParseSegment(raw)
	return recs, torn, nil
}

// segName renders a segment file name from its id.
func segName(id uint64) string { return fmt.Sprintf("seg-%016x.seg", id) }

// writeSegmentFile durably writes a sealed segment: encode, write to a
// temp file, fsync, rename into place, fsync the directory. A crash
// before the rename leaves only a *.tmp stray that Open deletes.
func writeSegmentFile(dir string, id uint64, meta SegmentMeta, recs []Record) (string, error) {
	buf, err := EncodeSegment(meta, recs)
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, segName(id))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return "", fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	syncDir(dir)
	return final, nil
}

// readSegmentMeta reads just the sparse index of a sealed segment file.
// A file whose meta frame does not decode is reported unreadable rather
// than failing Open.
func readSegmentMeta(path string) (SegmentMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentMeta{}, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var hdr [frameHeader]byte
	if _, err := readFull(f, hdr[:]); err != nil {
		return SegmentMeta{}, fmt.Errorf("store: %s: short meta frame", path)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > MaxFrameBytes {
		return SegmentMeta{}, fmt.Errorf("store: %s: bad meta frame length", path)
	}
	payload := make([]byte, length)
	if _, err := readFull(f, payload); err != nil {
		return SegmentMeta{}, fmt.Errorf("store: %s: short meta frame", path)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return SegmentMeta{}, fmt.Errorf("store: %s: meta frame failed checksum", path)
	}
	var meta SegmentMeta
	if err := json.Unmarshal(payload, &meta); err != nil {
		return SegmentMeta{}, fmt.Errorf("store: %s: %w", path, err)
	}
	return meta, nil
}

func readFull(f *os.File, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := f.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// syncDir fsyncs a directory so a rename survives power loss. Errors
// are ignored: not every filesystem supports directory fsync, and the
// rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
