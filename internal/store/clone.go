package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Clone copies every sealed segment file from srcDir into dstDir,
// fsyncing each copy and the destination directory — the results-store
// half of a federation shard failover's snapshot ship. Compaction temp
// files are skipped (Open would discard them anyway), and the memtable
// is not part of a clone by construction: anything that only lived in
// the dead shard's memtable is rebuilt by journal replay + the
// controller's store reconciliation, exactly like a crash restart.
func Clone(srcDir, dstDir string) error {
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return fmt.Errorf("store: clone: %w", err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // no store dir yet: nothing flushed, nothing to ship
		}
		return fmt.Errorf("store: clone: %w", err)
	}
	for _, e := range entries {
		var id uint64
		if n, err := fmt.Sscanf(e.Name(), "seg-%016x.seg", &id); n != 1 || err != nil {
			continue
		}
		if err := cloneFileSync(filepath.Join(srcDir, e.Name()), filepath.Join(dstDir, e.Name())); err != nil {
			return fmt.Errorf("store: clone %s: %w", e.Name(), err)
		}
	}
	syncDir(dstDir)
	return nil
}

// cloneFileSync copies src to dst and fsyncs dst.
func cloneFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
