// Package store is the observatory's results store: a log-structured,
// append-only home for measurement results, decoupled from the
// control-plane journal so result volume never bloats snapshots or
// replay.
//
// # Shape
//
// Appends land in an in-memory memtable. When the memtable reaches
// Options.FlushEvery records it is sealed into an immutable segment —
// written whole to a temp file, fsynced, renamed, directory-fsynced,
// exactly like the journal's snapshots — carrying a sparse index
// (SegmentMeta: seq range, tick range, distinct experiments, countries,
// ASNs) as its first frame. Queries prune segments on that index and
// scan the survivors in parallel (internal/par), then merge serially in
// sequence order so a parallel scan is byte-identical to a serial one.
//
// Compaction merges runs of small adjacent segments into larger ones
// and applies the retention policy (records older than Options.Retention
// ticks are dropped); it only ever writes a new segment and then deletes
// the inputs, so a crash at any point leaves a readable store — Open
// prunes input segments whose sequence range a later segment subsumes,
// completing the interrupted compaction.
//
// # Durability contract
//
// Sealed segments are durable; the memtable is not. A crash loses at
// most the memtable — the controller reconciles its write-ahead
// bookkeeping against the store at recovery and requeues any task whose
// result payload died with the memtable (see internal/core). Duplicate
// records for the same (experiment, task) — possible when a crash lands
// between the store append and the journal append — are collapsed at
// read time: every scan and aggregation keeps the lowest-seq record per
// key.
//
// A store directory has a single writer at a time, like the journal;
// readers of sealed segments need no coordination.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/obs"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

// Record is one stored measurement result plus the index keys queries
// filter and group on. Seq is assigned by Append: a strictly increasing
// store-wide sequence that survives flushes, compactions, and restarts,
// giving scans a stable total order (and cursors a stable meaning).
type Record struct {
	Seq        uint64        `json:"seq"`
	Experiment string        `json:"experiment"`
	TaskID     string        `json:"task_id"`
	ProbeID    string        `json:"probe_id"`
	Tick       int64         `json:"tick"`
	Country    string        `json:"country,omitempty"`
	ASN        topology.ASN  `json:"asn,omitempty"`
	Result     probes.Result `json:"result"`
}

// Key is the record's dedup identity: one result per (experiment, task).
func (r Record) Key() string { return r.Experiment + "/" + r.TaskID }

// Options parameterizes a Store.
type Options struct {
	// FlushEvery seals the memtable into a segment once it holds this
	// many records (default 1024). 1 makes every append durable
	// immediately.
	FlushEvery int
	// Retention is how many ticks of results to keep; records whose
	// Tick is older than now-Retention are dropped at compaction.
	// 0 keeps everything forever.
	Retention int64
	// TargetFrames caps how large (in records) a compacted segment may
	// grow (default 4 * FlushEvery). Adjacent segments are merged while
	// their combined size stays within it.
	TargetFrames int
	// Obs is the metric registry the store records its operation
	// latencies into (obs_store_seconds, op=ingest|flush|compact|scan|
	// aggregate). Nil gets a private registry, so standalone stores pay
	// the same instrumentation cost without needing a wiring step.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FlushEvery <= 0 {
		o.FlushEvery = 1024
	}
	if o.TargetFrames <= 0 {
		o.TargetFrames = 4 * o.FlushEvery
	}
	return o
}

// Store is the log-structured results store. Safe for concurrent use:
// appends, flushes, and compaction serialize on a write lock; queries
// share a read lock (parallel segment scans happen under it, so sealed
// segments cannot vanish mid-scan).
type Store struct {
	mu        sync.RWMutex
	dir       string // "" = memory-only (segments kept in RAM)
	opts      Options
	segs      []*segment // sorted by meta.MinSeq; seq ranges are disjoint
	mem       []Record
	nextSeq   uint64
	nextSegID uint64
	ctr       *metrics.CounterSet
	closed    bool

	// Cached latency series from Options.Obs; observing is lock-free.
	hIngest    *obs.Histogram
	hFlush     *obs.Histogram
	hCompact   *obs.Histogram
	hScan      *obs.Histogram
	hAggregate *obs.Histogram
}

// initObs caches the store's latency series from the registry (a
// private one when the options carry none).
func (s *Store) initObs(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.hIngest = reg.Hist("obs_store_seconds", "op", "ingest")
	s.hFlush = reg.Hist("obs_store_seconds", "op", "flush")
	s.hCompact = reg.Hist("obs_store_seconds", "op", "compact")
	s.hScan = reg.Hist("obs_store_seconds", "op", "scan")
	s.hAggregate = reg.Hist("obs_store_seconds", "op", "aggregate")
}

// NewMemory creates a store with no backing directory: segments live in
// memory. Used by in-memory controllers and tests; the query and
// compaction paths are identical to a disk store's.
func NewMemory(opts Options) *Store {
	s := &Store{opts: opts.withDefaults(), ctr: metrics.NewCounterSet(), nextSeq: 1, nextSegID: 1}
	s.initObs(opts.Obs)
	return s
}

// Open opens (creating if needed) a store directory, loads every sealed
// segment's sparse index, deletes stray temp files from interrupted
// flushes, and prunes segments subsumed by an interrupted compaction's
// output. An empty dir yields a memory-only store.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return NewMemory(opts), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), ctr: metrics.NewCounterSet(), nextSeq: 1, nextSegID: 1}
	s.initObs(opts.Obs)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A flush or compaction died before its rename; the record
			// frames inside were never acknowledged as sealed.
			_ = os.Remove(filepath.Join(dir, name))
			s.ctr.Inc("segments_tmp_removed")
			continue
		}
		var id uint64
		if n, err := fmt.Sscanf(name, "seg-%016x.seg", &id); n != 1 || err != nil {
			continue
		}
		meta, err := readSegmentMeta(filepath.Join(dir, name))
		if err != nil {
			// Unreadable index: leave the file for forensics, serve
			// without it.
			s.ctr.Inc("segments_unreadable")
			continue
		}
		s.segs = append(s.segs, &segment{id: id, meta: meta, path: filepath.Join(dir, name)})
		if id >= s.nextSegID {
			s.nextSegID = id + 1
		}
		if meta.MaxSeq >= s.nextSeq {
			s.nextSeq = meta.MaxSeq + 1
		}
	}
	sort.Slice(s.segs, func(i, j int) bool {
		if s.segs[i].meta.MinSeq != s.segs[j].meta.MinSeq {
			return s.segs[i].meta.MinSeq < s.segs[j].meta.MinSeq
		}
		return s.segs[i].id < s.segs[j].id
	})
	s.pruneSubsumedLocked()
	return s, nil
}

// pruneSubsumedLocked completes an interrupted compaction: a segment
// whose sequence range lies entirely within another (higher-id, i.e.
// newer) segment's range is a compaction input whose deletion never
// happened. The output is authoritative — it already applied retention —
// so the input is dropped and its file deleted.
func (s *Store) pruneSubsumedLocked() {
	keep := s.segs[:0]
	for _, sg := range s.segs {
		subsumed := false
		for _, other := range s.segs {
			if other == sg || other.id <= sg.id {
				continue
			}
			if other.meta.MinSeq <= sg.meta.MinSeq && sg.meta.MaxSeq <= other.meta.MaxSeq {
				subsumed = true
				break
			}
		}
		if subsumed {
			if sg.path != "" {
				_ = os.Remove(sg.path)
			}
			s.ctr.Inc("segments_subsumed")
			continue
		}
		keep = append(keep, sg)
	}
	s.segs = keep
}

// Append stores records, assigning each its sequence number. The
// memtable is sealed into a segment when it reaches FlushEvery records.
// Records live only in memory until sealed; callers needing the
// stronger guarantee call Flush (or set FlushEvery to 1).
func (s *Store) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	t := obs.StartTimer()
	defer func() { s.hIngest.Observe(t.Elapsed()) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	for i := range recs {
		recs[i].Seq = s.nextSeq
		s.nextSeq++
		s.mem = append(s.mem, recs[i])
	}
	s.ctr.Add("store_frames_appended", int64(len(recs)))
	if len(s.mem) >= s.opts.FlushEvery {
		return s.flushLocked()
	}
	return nil
}

// Flush seals the memtable into a segment now. No-op when empty.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	t := obs.StartTimer()
	defer func() { s.hFlush.Observe(t.Elapsed()) }()
	recs := s.mem
	meta := buildMeta(recs)
	sg := &segment{id: s.nextSegID, meta: meta}
	if s.dir == "" {
		sg.recs = recs
	} else {
		path, err := writeSegmentFile(s.dir, sg.id, meta, recs)
		if err != nil {
			s.ctr.Inc("segment_write_errors")
			return err
		}
		sg.path = path
	}
	s.nextSegID++
	s.segs = append(s.segs, sg)
	s.mem = nil
	s.ctr.Inc("segments_flushed")
	return nil
}

// Compact merges runs of small adjacent segments into larger ones and
// applies the retention policy relative to the given current tick:
// records older than Options.Retention ticks are dropped, and segments
// that are entirely expired are deleted without being read. now is the
// controller's logical clock, so compaction stays deterministic.
func (s *Store) Compact(now int64) error {
	t := obs.StartTimer()
	defer func() { s.hCompact.Observe(t.Elapsed()) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	cutoff := int64(-1) // no expiry
	if s.opts.Retention > 0 && now >= s.opts.Retention {
		cutoff = now - s.opts.Retention // ticks strictly older expire
	}

	// Drop segments that retention has expired wholesale.
	if cutoff >= 0 {
		keep := s.segs[:0]
		for _, sg := range s.segs {
			if sg.meta.MaxTick < cutoff {
				if sg.path != "" {
					if err := os.Remove(sg.path); err != nil {
						keep = append(keep, sg) // try again next sweep
						continue
					}
				}
				s.ctr.Add("frames_expired", int64(sg.meta.Frames))
				continue
			}
			keep = append(keep, sg)
		}
		s.segs = keep
	}

	// Greedily group adjacent segments whose combined size stays within
	// TargetFrames; every group of two or more is rewritten as one.
	var out []*segment
	i := 0
	for i < len(s.segs) {
		group := []*segment{s.segs[i]}
		frames := s.segs[i].meta.Frames
		j := i + 1
		for j < len(s.segs) && frames+s.segs[j].meta.Frames <= s.opts.TargetFrames {
			frames += s.segs[j].meta.Frames
			group = append(group, s.segs[j])
			j++
		}
		if len(group) < 2 {
			out = append(out, s.segs[i])
			i++
			continue
		}
		merged, err := s.mergeLocked(group, cutoff)
		if err != nil {
			return err
		}
		if merged != nil {
			out = append(out, merged)
		}
		i = j
	}
	s.segs = out
	return nil
}

// mergeLocked rewrites a run of adjacent segments as one, dropping
// expired records. The new segment is durably in place before any input
// is deleted; Open's subsumption pruning covers a crash in between.
// A fully-expired merge yields (nil, nil) and just deletes the inputs.
func (s *Store) mergeLocked(group []*segment, cutoff int64) (*segment, error) {
	var recs []Record
	for _, sg := range group {
		rs, torn, err := sg.load()
		if err != nil {
			return nil, err
		}
		if torn {
			s.ctr.Inc("segments_truncated_read")
		}
		for _, r := range rs {
			if cutoff >= 0 && r.Tick < cutoff {
				s.ctr.Inc("frames_expired")
				continue
			}
			recs = append(recs, r)
		}
	}
	var merged *segment
	if len(recs) > 0 {
		meta := buildMeta(recs)
		merged = &segment{id: s.nextSegID, meta: meta}
		if s.dir == "" {
			merged.recs = recs
		} else {
			path, err := writeSegmentFile(s.dir, merged.id, meta, recs)
			if err != nil {
				s.ctr.Inc("segment_write_errors")
				return nil, err
			}
			merged.path = path
		}
		s.nextSegID++
	}
	for _, sg := range group {
		if sg.path != "" {
			_ = os.Remove(sg.path)
		}
	}
	s.ctr.Add("segments_compacted", int64(len(group)))
	return merged, nil
}

// Close seals the memtable so everything appended so far is durable.
// Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	return err
}

// Counters snapshots the store's event counters
// (store_frames_appended, segments_flushed, segments_compacted,
// frames_expired, queries_served, ...). They are scoped to the current
// process run.
func (s *Store) Counters() map[string]int64 { return s.ctr.Snapshot() }

// SegmentCount reports how many sealed segments the store holds.
func (s *Store) SegmentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// MemtableLen reports how many records await the next flush.
func (s *Store) MemtableLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Dir returns the store directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }
