package store

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/probes"
	"github.com/afrinet/observatory/internal/topology"
)

// genRecords builds a randomized-but-seeded corpus spanning several
// experiments, countries, ASNs, kinds, and ticks.
func genRecords(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	countries := []string{"NG", "KE", "ZA", "RW"}
	kinds := []probes.TaskKind{probes.TaskPing, probes.TaskDNS}
	var out []Record
	for i := 0; i < n; i++ {
		exp := fmt.Sprintf("exp-%04d", 1+rng.Intn(4))
		ok := rng.Intn(4) != 0
		r := Record{
			Experiment: exp,
			TaskID:     fmt.Sprintf("%s-t%04d", exp, i),
			ProbeID:    fmt.Sprintf("pr-%02d", rng.Intn(6)),
			Tick:       int64(1 + rng.Intn(50)),
			Country:    countries[rng.Intn(len(countries))],
			ASN:        topology.ASN(36900 + rng.Intn(4)),
			Result: probes.Result{
				Kind: kinds[rng.Intn(len(kinds))],
				OK:   ok,
			},
		}
		r.Result.TaskID, r.Result.Experiment = r.TaskID, exp
		if ok && rng.Intn(5) != 0 {
			r.Result.RTTms = 5 + 200*rng.Float64()
		}
		out = append(out, r)
	}
	return out
}

// naiveAggregate recomputes an aggregation straight over the raw
// records with none of the store's machinery — the oracle the store's
// Aggregate must match.
func naiveAggregate(recs []Record, q AggQuery) AggReport {
	type bucket struct {
		g    AggGroup
		rtts []float64
	}
	buckets := map[string]*bucket{}
	var keys []string
	matched := int64(0)
	for _, r := range recs {
		if !q.Filter.match(r) {
			continue
		}
		matched++
		var key string
		g := AggGroup{}
		switch q.GroupBy {
		case GroupCountry:
			key, g.Country = r.Country, r.Country
		case GroupASN:
			key, g.ASN = fmt.Sprintf("%d", r.ASN), r.ASN
		case GroupCountryASN:
			key = fmt.Sprintf("%s/%d", r.Country, r.ASN)
			g.Country, g.ASN = r.Country, r.ASN
		}
		b, ok := buckets[key]
		if !ok {
			b = &bucket{g: g}
			buckets[key] = b
			keys = append(keys, key)
		}
		b.g.Count++
		if r.Result.OK {
			b.g.OK++
			if r.Result.RTTms > 0 {
				b.rtts = append(b.rtts, r.Result.RTTms)
			}
		}
	}
	sort.Strings(keys)
	rep := AggReport{Matched: matched}
	for _, k := range keys {
		b := buckets[k]
		b.g.LossRate = 1 - float64(b.g.OK)/float64(b.g.Count)
		if len(b.rtts) > 0 {
			sort.Float64s(b.rtts)
			sum := 0.0
			for _, v := range b.rtts {
				sum += v
			}
			b.g.RTTCount = int64(len(b.rtts))
			b.g.RTTMean = sum / float64(len(b.rtts))
			rank := func(p float64) float64 {
				i := int(math.Ceil(p / 100 * float64(len(b.rtts))))
				if i < 1 {
					i = 1
				}
				return b.rtts[i-1]
			}
			b.g.RTTP50, b.g.RTTP90, b.g.RTTP99 = rank(50), rank(90), rank(99)
		}
		rep.Groups = append(rep.Groups, b.g)
	}
	return rep
}

// TestQueryEquivalence checks, across seeds, that the store's
// aggregations match a naive fold over the raw records, and that
// serial (1 worker) and parallel (8 workers) scans are deep-equal.
func TestQueryEquivalence(t *testing.T) {
	queries := []AggQuery{
		{},
		{GroupBy: GroupCountry},
		{GroupBy: GroupASN},
		{GroupBy: GroupCountryASN},
		{Filter: Filter{Experiment: "exp-0002"}, GroupBy: GroupCountry},
		{Filter: Filter{Country: "KE"}, GroupBy: GroupASN},
		{Filter: Filter{ASN: 36901}, GroupBy: GroupCountry},
		{Filter: Filter{FromTick: 10, ToTick: 30}, GroupBy: GroupCountryASN},
		{Filter: Filter{Kind: string(probes.TaskDNS)}},
	}
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			raw := genRecords(seed, 500)
			s, err := Open(t.TempDir(), Options{FlushEvery: 32, TargetFrames: 128})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Append(raw...); err != nil {
				t.Fatal(err)
			}
			// Append assigned seqs in place; run part of the corpus
			// through compaction so queries cross merged segments too.
			if err := s.Compact(0); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				q := q
				want := naiveAggregate(raw, q)
				got, err := s.Aggregate(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("aggregate %+v diverged from naive oracle\nwant: %+v\ngot:  %+v", q, want, got)
				}

				prev := par.SetDefaultWorkers(1)
				serial, err := s.Aggregate(q)
				if err != nil {
					t.Fatal(err)
				}
				serialScan, _, serr := s.ScanPage(q.Filter, 0, "")
				par.SetDefaultWorkers(8)
				parallel, err := s.Aggregate(q)
				if err != nil {
					t.Fatal(err)
				}
				parScan, _, perr := s.ScanPage(q.Filter, 0, "")
				par.SetDefaultWorkers(prev)
				if serr != nil || perr != nil {
					t.Fatal(serr, perr)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("serial vs parallel aggregate diverged for %+v", q)
				}
				if !reflect.DeepEqual(serialScan, parScan) {
					t.Fatalf("serial vs parallel scan diverged for %+v", q)
				}
			}
		})
	}
}

// TestVerdictAggregation ingests websteps-style records (verdict +
// resolver class set) and checks the censorship cuts: filtering by
// verdict, and bucketing by verdict, resolver class, and
// country/resolver with per-bucket verdict counts.
func TestVerdictAggregation(t *testing.T) {
	s := NewMemory(Options{})
	mk := func(i int, ctry, resolver, verdict string) Record {
		id := fmt.Sprintf("ws-t%02d", i)
		return Record{
			Experiment: "websteps",
			TaskID:     id,
			ProbeID:    "pr-01",
			Tick:       int64(i),
			Country:    ctry,
			ASN:        36900,
			Result: probes.Result{
				TaskID: id, Experiment: "websteps",
				Kind: probes.TaskWebsteps, OK: true,
				Verdict: verdict, ResolverKind: resolver,
			},
		}
	}
	recs := []Record{
		mk(1, "RW", "same-country", "dns_blocked"),
		mk(2, "RW", "same-country", "dns_blocked"),
		mk(3, "RW", "other-country", "ok"),
		mk(4, "KE", "same-country", "throttled"),
		mk(5, "KE", "other-country", "ok"),
	}
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}

	got, err := s.Aggregate(AggQuery{Filter: Filter{Verdict: "dns_blocked"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Matched != 2 {
		t.Fatalf("verdict filter matched %d, want 2", got.Matched)
	}

	byVerdict, err := s.Aggregate(AggQuery{GroupBy: GroupVerdict})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, g := range byVerdict.Groups {
		counts[g.Verdict] = g.Count
	}
	want := map[string]int64{"dns_blocked": 2, "ok": 2, "throttled": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("verdict buckets = %v, want %v", counts, want)
	}

	byResolver, err := s.Aggregate(AggQuery{GroupBy: GroupResolver})
	if err != nil {
		t.Fatal(err)
	}
	if len(byResolver.Groups) != 2 {
		t.Fatalf("resolver buckets = %+v, want 2 groups", byResolver.Groups)
	}
	for _, g := range byResolver.Groups {
		if g.Resolver == "same-country" && g.Verdicts["dns_blocked"] != 2 {
			t.Fatalf("same-country bucket verdicts = %v", g.Verdicts)
		}
	}

	cross, err := s.Aggregate(AggQuery{GroupBy: GroupCountryResolver})
	if err != nil {
		t.Fatal(err)
	}
	if len(cross.Groups) != 4 {
		t.Fatalf("country/resolver buckets = %+v, want 4 groups", cross.Groups)
	}
	for _, g := range cross.Groups {
		if g.Country == "RW" && g.Resolver == "same-country" {
			if g.Count != 2 || g.Verdicts["dns_blocked"] != 2 {
				t.Fatalf("RW/same-country bucket = %+v", g)
			}
		}
	}
}

func TestAggregateRejectsUnknownGroupBy(t *testing.T) {
	s := NewMemory(Options{})
	if _, err := s.Aggregate(AggQuery{GroupBy: "continent"}); err == nil {
		t.Fatal("unknown group_by accepted")
	}
}
