package outage

import (
	"math"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
)

// Radar-style detection from traffic signals. Cloudflare Radar does not
// see events; it sees per-country traffic volume and flags sustained
// drops. This file generates the hourly traffic series a Radar-like
// vantage would observe for each country — diurnal cycle, weekly
// modulation, noise, and the generated outage events applied at their
// true severities — and then detects outages from the series alone.
// Comparing detected windows against ground-truth events measures the
// detector itself (missed short events, merged overlapping ones), which
// is how a real observatory must be validated.

// TrafficPoint is one hour of a country's observed traffic volume,
// normalized so the long-run average sits near 1.0.
type TrafficPoint struct {
	Hour   int
	Volume float64
}

// SeriesParams shape the synthetic signal.
type SeriesParams struct {
	// DiurnalAmp is the day/night swing (0..1).
	DiurnalAmp float64
	// WeekendDip is the weekend traffic reduction (0..1).
	WeekendDip float64
	// NoiseAmp is the per-hour multiplicative noise amplitude.
	NoiseAmp float64
}

// DefaultSeriesParams mirror eyeball-network traffic.
func DefaultSeriesParams() SeriesParams {
	return SeriesParams{DiurnalAmp: 0.45, WeekendDip: 0.12, NoiseAmp: 0.06}
}

// TrafficSeries renders a country's hourly series over the horizon with
// the events' impacts applied. Impact evaluation is pluggable so callers
// can reuse already-evaluated events ((country, drop) pairs).
func TrafficSeries(country string, days int, impacts []CountryImpact, p SeriesParams, seed uint64) []TrafficPoint {
	h := seed
	for _, c := range country {
		h = smix(h ^ uint64(c))
	}
	out := make([]TrafficPoint, days*24)
	for hour := 0; hour < len(out); hour++ {
		tod := float64(hour % 24)
		day := hour / 24
		// Diurnal: low ~04:00, high ~20:00.
		diurnal := 1 + p.DiurnalAmp*math.Sin((tod-10)/24*2*math.Pi)
		weekend := 1.0
		if day%7 >= 5 {
			weekend = 1 - p.WeekendDip
		}
		noise := 1 + p.NoiseAmp*(f01(smix(h^uint64(hour)))*2-1)
		v := diurnal * weekend * noise
		for _, imp := range impacts {
			if imp.Country != country {
				continue
			}
			start := int(imp.StartDay * 24)
			end := int((imp.StartDay + imp.Duration) * 24)
			if hour >= start && hour < end {
				v *= 1 - imp.Drop
			}
		}
		out[hour] = TrafficPoint{Hour: hour, Volume: v}
	}
	return out
}

// CountryImpact is one event's effect on one country, on the timeline.
type CountryImpact struct {
	Country  string
	StartDay float64
	Duration float64
	Drop     float64
	Cause    Cause
}

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func f01(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// DetectedWindow is one outage the series detector flags.
type DetectedWindow struct {
	Country   string
	StartHour int
	EndHour   int
	// Depth is the mean drop versus the expected baseline during the
	// window.
	Depth float64
}

// DurationDays converts the window length.
func (w DetectedWindow) DurationDays() float64 { return float64(w.EndHour-w.StartHour) / 24 }

// SeriesDetector flags sustained drops below a share of the expected
// baseline, Radar-style: compare each hour to the same hour-of-week
// baseline, require minHours consecutive hours under threshold.
type SeriesDetector struct {
	// DropThreshold is the fractional drop that counts (e.g. 0.25).
	DropThreshold float64
	// MinHours is the minimum consecutive duration.
	MinHours int
}

// NewSeriesDetector uses Radar-like defaults.
func NewSeriesDetector() SeriesDetector {
	return SeriesDetector{DropThreshold: 0.25, MinHours: 2}
}

// Detect scans a series. The baseline for each hour-of-week slot is the
// median of that slot across the horizon, which tolerates the outage
// windows themselves as long as they are a minority of samples.
func (d SeriesDetector) Detect(country string, series []TrafficPoint) []DetectedWindow {
	if len(series) == 0 {
		return nil
	}
	// Hour-of-week baselines.
	slots := make([][]float64, 24*7)
	for _, pt := range series {
		s := pt.Hour % (24 * 7)
		slots[s] = append(slots[s], pt.Volume)
	}
	base := make([]float64, 24*7)
	for s, vs := range slots {
		if len(vs) == 0 {
			base[s] = 1
			continue
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		base[s] = sorted[len(sorted)/2]
	}

	var out []DetectedWindow
	runStart := -1
	var depthSum float64
	flush := func(endHour int) {
		if runStart < 0 {
			return
		}
		length := endHour - runStart
		if length >= d.MinHours {
			out = append(out, DetectedWindow{
				Country:   country,
				StartHour: runStart,
				EndHour:   endHour,
				Depth:     depthSum / float64(length),
			})
		}
		runStart = -1
		depthSum = 0
	}
	for _, pt := range series {
		b := base[pt.Hour%(24*7)]
		drop := 0.0
		if b > 0 {
			drop = 1 - pt.Volume/b
		}
		if drop >= d.DropThreshold {
			if runStart < 0 {
				runStart = pt.Hour
			}
			depthSum += drop
		} else {
			flush(pt.Hour)
		}
	}
	flush(series[len(series)-1].Hour + 1)
	return out
}

// RadarReport is the observatory's outage-center view over a horizon:
// ground-truth impacts, the series each country exhibits, and what the
// detector recovered.
type RadarReport struct {
	Days     int
	Impacts  []CountryImpact
	Detected map[string][]DetectedWindow
	// Recall is the share of ground-truth impact windows (above the
	// detector threshold) that overlap a detected window.
	Recall float64
	// MeanDurationError is the mean |detected - true| duration in days
	// over matched windows.
	MeanDurationError float64
}

// RunRadar generates events, evaluates their impacts, renders every
// African country's traffic series, and runs detection.
func (m *Model) RunRadar(days int, seed uint64) RadarReport {
	years := float64(days) / 365
	events := m.GenerateEvents(years)

	var impacts []CountryImpact
	for _, ev := range events {
		imp := m.Evaluate(ev)
		for ctry, drop := range imp.Drop {
			impacts = append(impacts, CountryImpact{
				Country: ctry, StartDay: ev.StartDay, Duration: ev.Duration,
				Drop: drop, Cause: ev.Cause,
			})
		}
	}

	rep := RadarReport{Days: days, Impacts: impacts, Detected: map[string][]DetectedWindow{}}
	det := NewSeriesDetector()
	params := DefaultSeriesParams()
	for _, c := range geo.AfricanCountries() {
		series := TrafficSeries(c.ISO2, days, impacts, params, seed)
		if ws := det.Detect(c.ISO2, series); len(ws) > 0 {
			rep.Detected[c.ISO2] = ws
		}
	}

	// Score the detector against the ground truth it could plausibly
	// see: drops comfortably above threshold, lasting at least the
	// detector's minimum window, fully inside the horizon. (Radar-style
	// detection inherently misses brief blips; that miss rate is a
	// finding, not a bug, and the brief events stay out of the recall
	// denominator.)
	matched, eligible := 0, 0
	var durErr float64
	for _, imp := range impacts {
		if c, ok := geo.Lookup(imp.Country); !ok || !c.Region.IsAfrica() {
			continue // series are rendered for the observatory's scope
		}
		if imp.Drop < det.DropThreshold+0.10 ||
			imp.Duration*24 < float64(det.MinHours+2) ||
			imp.StartDay+imp.Duration > float64(days) {
			continue
		}
		eligible++
		start := int(imp.StartDay * 24)
		end := int((imp.StartDay + imp.Duration) * 24)
		for _, w := range rep.Detected[imp.Country] {
			if w.StartHour < end && w.EndHour > start {
				matched++
				durErr += math.Abs(w.DurationDays() - imp.Duration)
				break
			}
		}
	}
	if eligible > 0 {
		rep.Recall = float64(matched) / float64(eligible)
	}
	if matched > 0 {
		rep.MeanDurationError = durErr / float64(matched)
	}
	return rep
}
