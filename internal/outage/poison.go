package outage

import (
	"github.com/afrinet/observatory/internal/dnssim"
)

// PoisonDNS wraps a resolver chain with this policy's on-path DNS
// poisoning for one country: the PR 10 chain port of what websim used
// to hard-code inline. The wrapper resolves through the inner chain,
// then consults Interference.DNSPoisoned with the answer's resolver
// class — so a client on a cloud resolver whose country only poisons
// ISP resolvers sails through, exactly as before. A nil policy returns
// the chain unwrapped.
//
// The wrapper sits *outside* any cache link, so poisoned verdicts are
// recomputed per query and cached answers stay pristine.
func PoisonDNS(pol *Interference, country string, next dnssim.Resolver) dnssim.Resolver {
	if pol == nil {
		return next
	}
	return &poisonResolver{pol: pol, country: country, next: next}
}

type poisonResolver struct {
	pol     *Interference
	country string
	next    dnssim.Resolver
}

func (p *poisonResolver) Name() string { return "poison" }

func (p *poisonResolver) Resolve(q dnssim.Query, depth int) (dnssim.Answer, error) {
	if depth < 0 {
		return dnssim.Answer{}, dnssim.ErrLoopDetected
	}
	ans, err := p.next.Resolve(q, depth-1)
	if err != nil || !ans.OK {
		return ans, err
	}
	bogon, poisoned := p.pol.DNSPoisoned(p.country, ans.Assignment.Kind.String(), q.Domain)
	if poisoned {
		ans.Poisoned = true
		ans.PoisonBogon = bogon
		ans.Chain = "poison>" + ans.Chain
	}
	return ans, nil
}
