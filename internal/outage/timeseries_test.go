package outage

import (
	"math"
	"testing"
)

func TestTrafficSeriesShape(t *testing.T) {
	s := TrafficSeries("KE", 14, nil, DefaultSeriesParams(), 1)
	if len(s) != 14*24 {
		t.Fatalf("series length = %d", len(s))
	}
	var sum float64
	for _, p := range s {
		if p.Volume <= 0 {
			t.Fatalf("non-positive volume at hour %d", p.Hour)
		}
		sum += p.Volume
	}
	mean := sum / float64(len(s))
	if mean < 0.8 || mean > 1.2 {
		t.Fatalf("series mean = %.2f, want ~1", mean)
	}
	// Diurnal structure: evening beats pre-dawn on average.
	var evening, dawn float64
	n := 0
	for day := 0; day < 14; day++ {
		evening += s[day*24+20].Volume
		dawn += s[day*24+4].Volume
		n++
	}
	if evening/float64(n) <= dawn/float64(n) {
		t.Fatal("no diurnal cycle")
	}
}

func TestTrafficSeriesDeterministic(t *testing.T) {
	a := TrafficSeries("NG", 7, nil, DefaultSeriesParams(), 5)
	b := TrafficSeries("NG", 7, nil, DefaultSeriesParams(), 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("series not deterministic")
		}
	}
	c := TrafficSeries("GH", 7, nil, DefaultSeriesParams(), 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different countries should see different noise")
	}
}

func TestTrafficSeriesAppliesImpacts(t *testing.T) {
	imp := []CountryImpact{{Country: "SN", StartDay: 3, Duration: 2, Drop: 0.8}}
	with := TrafficSeries("SN", 10, imp, DefaultSeriesParams(), 1)
	without := TrafficSeries("SN", 10, nil, DefaultSeriesParams(), 1)
	inWindow := with[3*24+5].Volume / without[3*24+5].Volume
	if math.Abs(inWindow-0.2) > 1e-9 {
		t.Fatalf("impact not applied: ratio %.3f", inWindow)
	}
	if with[24].Volume != without[24].Volume {
		t.Fatal("impact leaked outside its window")
	}
	// Impacts for other countries must not apply.
	other := TrafficSeries("SN", 10, []CountryImpact{{Country: "ML", StartDay: 3, Duration: 2, Drop: 0.8}},
		DefaultSeriesParams(), 1)
	if other[3*24+5].Volume != without[3*24+5].Volume {
		t.Fatal("impact applied to the wrong country")
	}
}

func TestSeriesDetectorFindsOutage(t *testing.T) {
	imp := []CountryImpact{{Country: "SN", StartDay: 5, Duration: 1.5, Drop: 0.7}}
	series := TrafficSeries("SN", 21, imp, DefaultSeriesParams(), 1)
	windows := NewSeriesDetector().Detect("SN", series)
	if len(windows) == 0 {
		t.Fatal("missed a 70% 36-hour outage")
	}
	w := windows[0]
	start, end := 5*24, 5*24+36
	if w.StartHour > start+6 || w.EndHour < end-6 {
		t.Fatalf("window [%d,%d) misaligned with truth [%d,%d)", w.StartHour, w.EndHour, start, end)
	}
	if w.Depth < 0.4 {
		t.Fatalf("depth %.2f too shallow", w.Depth)
	}
}

func TestSeriesDetectorIgnoresNoise(t *testing.T) {
	series := TrafficSeries("KE", 28, nil, DefaultSeriesParams(), 1)
	if ws := NewSeriesDetector().Detect("KE", series); len(ws) != 0 {
		t.Fatalf("false positives on clean series: %+v", ws)
	}
}

func TestSeriesDetectorMissesShortBlips(t *testing.T) {
	// A one-hour blip stays under MinHours.
	imp := []CountryImpact{{Country: "KE", StartDay: 2, Duration: 1.0 / 24, Drop: 0.9}}
	series := TrafficSeries("KE", 14, imp, DefaultSeriesParams(), 1)
	for _, w := range NewSeriesDetector().Detect("KE", series) {
		if w.StartHour/24 == 2 {
			t.Fatal("detector should miss sub-threshold-duration blips")
		}
	}
}

func TestSeriesDetectorEmpty(t *testing.T) {
	if ws := NewSeriesDetector().Detect("X", nil); ws != nil {
		t.Fatal("empty series should detect nothing")
	}
}

func TestRunRadar(t *testing.T) {
	m := NewModel(testNet, 42)
	rep := m.RunRadar(120, 7)
	if len(rep.Impacts) == 0 {
		t.Fatal("no impacts over four months")
	}
	if len(rep.Detected) == 0 {
		t.Fatal("detector found nothing")
	}
	if rep.Recall < 0.5 {
		t.Fatalf("recall %.2f; the detector should catch most sustained outages", rep.Recall)
	}
	if rep.Recall > 0 && rep.MeanDurationError > 3 {
		t.Fatalf("duration error %.1f days too large", rep.MeanDurationError)
	}
}
