package outage

// interference.go models deliberate, policy-driven interference — the
// censorship layer the websteps experiment family measures, as opposed
// to the accidental outages the rest of this package generates. A
// country's rule says which mechanisms its network applies (DNS
// poisoning, SNI-triggered resets, blockpage substitution, token-bucket
// throttling), to which fraction of domains, and through which resolver
// classes poisoning is visible. Everything is a pure function of the
// seed and the arguments — splitmix hashing, no wall clock, no
// math/rand — so measurement sweeps are replayable, and activation can
// be gated per country so the chaos harness can open and close
// interference windows on its scheduled timeline.

import (
	"sort"
	"sync"
)

// InterferenceRule is one country's interference policy.
type InterferenceRule struct {
	Country string
	// DNSPoison makes in-scope resolvers answer wrongly for targeted
	// domains; PoisonBogon picks never-routed answers (connection black
	// hole) over redirection to a censor-operated host (blockpage).
	DNSPoison   bool
	PoisonBogon bool
	// SNIReset injects a TCP RST when a targeted name shows up in a TLS
	// ClientHello.
	SNIReset bool
	// Blockpage substitutes the censor's page for targeted cleartext
	// HTTP responses.
	Blockpage bool
	// ThrottleBytesPerMs caps targeted transfers to this token-bucket
	// rate after ThrottleBurstBytes; 0 means no throttling.
	ThrottleBytesPerMs float64
	ThrottleBurstBytes int64
	// DomainFraction is the share of a country's domains the policy
	// targets (deterministic per-domain hash threshold). 0 targets none.
	DomainFraction float64
	// ResolverClasses limits DNS poisoning to queries through these
	// resolver classes (dnssim kind strings). Empty means the default:
	// "same-country" and "other-country" — on-path resolvers; cloud
	// resolvers answer truthfully, as does the control.
	ResolverClasses []string
}

// Interference is a set of per-country rules plus their activation
// state. Queries are read-mostly and safe for concurrent measurement
// sweeps; activation flips are serialized writes (the chaos harness
// opens and closes windows between rounds).
type Interference struct {
	seed uint64

	mu    sync.RWMutex
	rules map[string]InterferenceRule
	// windowed: rules apply only while their country is in the active
	// set. Non-windowed (the default): every rule is always live.
	windowed bool
	active   map[string]bool
}

// NewInterference builds an empty, always-active policy set.
func NewInterference(seed int64) *Interference {
	return &Interference{
		seed:   uint64(seed),
		rules:  make(map[string]InterferenceRule),
		active: make(map[string]bool),
	}
}

// SetRule installs or replaces one country's rule.
func (p *Interference) SetRule(r InterferenceRule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[r.Country] = r
}

// Rules returns the installed rules sorted by country.
func (p *Interference) Rules() []InterferenceRule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]InterferenceRule, 0, len(p.rules))
	for _, r := range p.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// SetWindowed switches between always-active rules (measurement sweeps)
// and window-gated rules (the chaos harness, which calls SetActive as
// its schedule's interference windows open and close).
func (p *Interference) SetWindowed(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.windowed = on
}

// SetActive opens (or closes) the interference window for one country.
// Only consulted in windowed mode.
func (p *Interference) SetActive(country string, on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if on {
		p.active[country] = true
	} else {
		delete(p.active, country)
	}
}

// targeted returns the country's live rule when the policy currently
// applies to this domain.
func (p *Interference) targeted(country, domain string) (InterferenceRule, bool) {
	p.mu.RLock()
	rule, ok := p.rules[country]
	live := !p.windowed || p.active[country]
	p.mu.RUnlock()
	if !ok || !live || rule.DomainFraction <= 0 {
		return InterferenceRule{}, false
	}
	h := p.seed
	for _, ch := range country {
		h = imix(h ^ uint64(ch))
	}
	for _, ch := range domain {
		h = imix(h ^ uint64(ch))
	}
	if float64(imix(h^0x91)>>11)/float64(1<<53) >= rule.DomainFraction {
		return InterferenceRule{}, false
	}
	return rule, true
}

// DNSPoisoned reports whether a lookup for domain through a resolver of
// the given class, by a client in country, receives a poisoned answer —
// and whether that answer is a bogon (vs a redirect to the censor's
// host). The control resolver's class never matches a rule, which is
// what makes probe-vs-control deltas attributable.
func (p *Interference) DNSPoisoned(country, resolverClass, domain string) (bogon, poisoned bool) {
	rule, ok := p.targeted(country, domain)
	if !ok || !rule.DNSPoison {
		return false, false
	}
	classes := rule.ResolverClasses
	if len(classes) == 0 {
		classes = []string{"same-country", "other-country"}
	}
	for _, c := range classes {
		if c == resolverClass {
			return rule.PoisonBogon, true
		}
	}
	return false, false
}

// SNIReset reports whether a TLS handshake naming domain, from a client
// in country, gets an injected connection reset.
func (p *Interference) SNIReset(country, domain string) bool {
	rule, ok := p.targeted(country, domain)
	return ok && rule.SNIReset
}

// BlockpageInjected reports whether a cleartext HTTP fetch of domain,
// from a client in country, is answered with the censor's blockpage.
func (p *Interference) BlockpageInjected(country, domain string) bool {
	rule, ok := p.targeted(country, domain)
	return ok && rule.Blockpage
}

// ThrottleRate returns the token-bucket (rate, burst) applied to
// transfers of domain for clients in country; ok=false means the
// transfer runs at line rate.
func (p *Interference) ThrottleRate(country, domain string) (bytesPerMs float64, burst int64, ok bool) {
	rule, okT := p.targeted(country, domain)
	if !okT || rule.ThrottleBytesPerMs <= 0 {
		return 0, 0, false
	}
	burst = rule.ThrottleBurstBytes
	if burst <= 0 {
		burst = 16 * 1024
	}
	return rule.ThrottleBytesPerMs, burst, true
}

// ThrottledTransferMs is the clock-free token-bucket transfer model:
// the first burst bytes pass at line rate, the rest drain at the
// throttle rate. lineMs is what the transfer would have taken
// unthrottled.
func ThrottledTransferMs(bytes int64, lineMs, bytesPerMs float64, burst int64) float64 {
	if bytes <= burst || bytesPerMs <= 0 {
		return lineMs
	}
	return lineMs + float64(bytes-burst)/bytesPerMs
}

// GenerateInterference draws a seeded default policy over the given
// countries: roughly a third of them interfere at all, and those that
// do get a deterministic mechanism mix (poisoning flavor, SNI resets,
// blockpages, throttling) over a quarter-to-half slice of their
// domains. Same seed and country list, same policy — the interference
// analogue of GenerateSchedule.
func GenerateInterference(seed int64, countries []string) *Interference {
	p := NewInterference(seed)
	for _, ctry := range countries {
		h := uint64(seed)
		for _, ch := range ctry {
			h = imix(h ^ uint64(ch))
		}
		if float64(imix(h^0xA1)>>11)/float64(1<<53) >= 0.35 {
			continue
		}
		rule := InterferenceRule{
			Country:        ctry,
			DomainFraction: 0.25 + float64(imix(h^0xA6)%26)/100.0,
		}
		if imix(h^0xA9)%4 == 0 {
			// A quarter of interfering countries are covert throttlers:
			// rate-shaping with no overt mechanism, so the slowdown is the
			// only probe-vs-control delta — the case the throttled verdict
			// exists for. (Overt mechanisms sit higher in the detector's
			// attribution order and would mask it.)
			rule.ThrottleBytesPerMs = 8 + float64(imix(h^0xA8)%33)
			rule.ThrottleBurstBytes = 16 * 1024
			p.SetRule(rule)
			continue
		}
		rule.DNSPoison = imix(h^0xA2)%100 < 70
		rule.PoisonBogon = imix(h^0xA3)%2 == 0
		rule.SNIReset = imix(h^0xA4)%100 < 55
		rule.Blockpage = imix(h^0xA5)%100 < 45
		if imix(h^0xA7)%100 < 40 {
			// ~64-320 kbit/s: the "slow enough to be useless" band.
			rule.ThrottleBytesPerMs = 8 + float64(imix(h^0xA8)%33)
			rule.ThrottleBurstBytes = 16 * 1024
		}
		if !rule.DNSPoison && !rule.SNIReset && !rule.Blockpage && rule.ThrottleBytesPerMs == 0 {
			rule.DNSPoison = true
		}
		p.SetRule(rule)
	}
	return p
}

// imix is the shared splitmix64 mixer (same constants as the dnssim /
// content substrate) so interference draws stay in their own stream.
func imix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
