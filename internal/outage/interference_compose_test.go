// Composition tests: interference policies must attribute correctly
// even while the accidental-failure machinery is active. The crucial
// case is poisoned DNS during a connectivity partition — the verdict
// must say dns_blocked (the tampering the probe observed), never a
// spurious tcp_blocked from the failing dials the poisoning caused the
// probe to skip. The file lives in the external test package because it
// drives the policies through websim, which imports outage.
package outage_test

import (
	"fmt"
	"testing"

	"github.com/afrinet/observatory/internal/archival"
	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/topology"
	"github.com/afrinet/observatory/internal/websim"
)

// africanCorridors are the cable corridors whose loss cuts the
// continent's international reach while leaving the Europe-side control
// paths (north-atlantic and intra-European) untouched.
var africanCorridors = []string{
	"west-africa-coastal", "east-africa-coastal", "red-sea",
	"south-indian", "mediterranean", "south-atlantic",
}

func cutAfrica(n *netsim.Net, topo *topology.Topology) []topology.CableID {
	var cut []topology.CableID
	corr := topo.Corridors()
	for _, c := range africanCorridors {
		cut = append(cut, corr[c]...)
	}
	n.SetCablesCut(cut, true)
	return cut
}

// composeCountries are the probe countries the partition sweep covers:
// enough of them that every seed surfaces each composition case
// somewhere, without depending on any one country's placement draws.
var composeCountries = []string{"KE", "TZ", "ET", "RW", "UG", "NG", "GH", "ZA"}

func TestInterferenceComposesWithLinkFailure(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			topo := topology.Generate(topology.Params{Seed: seed, Year: 2025})
			n := netsim.New(topo, bgp.New(topo), seed)
			dns := dnssim.New(n, seed)
			web := content.New(n, seed)

			cutAfrica(n, topo)
			defer n.SetCablesCut(n.CutCables(), false)

			// Clean partition: no policy installed. No measurement may
			// claim DNS tampering when the probe's lookup succeeded with
			// the truthful answer, and at least one site somewhere must
			// surface the partition as tcp_blocked (the sites whose
			// authority sits on a partition-spanning cloud but whose
			// content paths died with the cables).
			clean := websim.New(n, dns, web, nil, seed)
			sawTCP := false
			for _, ctry := range composeCountries {
				client := web.ResidentialClient(ctry)
				if client == 0 {
					continue
				}
				for _, site := range web.Catalog().SitesFor(ctry) {
					m := clean.Measure(client, site)
					v := websim.Classify(m)
					if v == websim.VerdictTCPBlocked {
						sawTCP = true
					}
					if v == websim.VerdictDNSBlocked && probeDNSOK(m) {
						t.Fatalf("%s: clean partition mislabeled dns_blocked with a truthful lookup", site.Domain)
					}
				}
			}
			if !sawTCP {
				t.Fatal("partition produced no tcp_blocked verdict")
			}

			// Poisoned partition: bogon poisoning on every domain in every
			// country. A poisoned lookup must classify dns_blocked whenever
			// the control baseline held up, and must NEVER surface as
			// tcp_blocked — the dials its bogus answers doomed are the
			// poisoning's fault, not the network's. (Measurements whose
			// control view the partition also killed are unclassifiable
			// and report ok; blocking claims need a working baseline.)
			pol := outage.NewInterference(seed)
			for _, ctry := range composeCountries {
				pol.SetRule(outage.InterferenceRule{
					Country: ctry, DNSPoison: true, PoisonBogon: true,
					DomainFraction:  1.0,
					ResolverClasses: []string{"same-country", "other-country", "cloud"},
				})
			}
			poisoned := websim.New(n, dns, web, pol, seed)
			sawDNS := false
			for _, ctry := range composeCountries {
				client := web.ResidentialClient(ctry)
				if client == 0 {
					continue
				}
				for _, site := range web.Catalog().SitesFor(ctry) {
					m := poisoned.Measure(client, site)
					v := websim.Classify(m)
					if !bogonLookup(m) {
						continue
					}
					if v == websim.VerdictTCPBlocked || v == websim.VerdictTLSBlocked {
						t.Fatalf("%s: poisoned lookup during partition classified %q, want dns_blocked", site.Domain, v)
					}
					if controlDNSHealthy(m) {
						sawDNS = true
						if v != websim.VerdictDNSBlocked {
							t.Fatalf("%s: poisoned lookup with healthy control classified %q, want dns_blocked", site.Domain, v)
						}
					}
				}
			}
			if !sawDNS {
				t.Fatal("poisoning never produced a classifiable dns_blocked")
			}
		})
	}
}

func probeDNSOK(m *archival.Measurement) bool {
	for _, d := range m.DNS {
		if d.Origin == archival.OriginProbe {
			return d.Failure == "" && !d.Bogon
		}
	}
	return false
}

func bogonLookup(m *archival.Measurement) bool {
	for _, d := range m.DNS {
		if d.Origin == archival.OriginProbe && d.Bogon {
			return true
		}
	}
	return false
}

func controlDNSHealthy(m *archival.Measurement) bool {
	for _, d := range m.DNS {
		if d.Origin == archival.OriginControl {
			return d.Failure == ""
		}
	}
	return false
}

func TestGenerateInterferenceDeterministic(t *testing.T) {
	countries := []string{"KE", "NG", "ZA", "RW", "ET", "SN", "GH", "TZ", "EG", "MA"}
	a := outage.GenerateInterference(42, countries)
	b := outage.GenerateInterference(42, countries)
	ra, rb := a.Rules(), b.Rules()
	if len(ra) == 0 {
		t.Fatal("no rules generated")
	}
	if fmt.Sprint(ra) != fmt.Sprint(rb) {
		t.Fatalf("same seed, different policies:\n%v\n%v", ra, rb)
	}
	c := outage.GenerateInterference(43, countries)
	if fmt.Sprint(ra) == fmt.Sprint(c.Rules()) {
		t.Fatal("different seeds produced identical policies")
	}
	for _, r := range ra {
		if !r.DNSPoison && !r.SNIReset && !r.Blockpage && r.ThrottleBytesPerMs == 0 {
			t.Fatalf("rule with no mechanism: %+v", r)
		}
		if r.DomainFraction < 0.25 || r.DomainFraction > 0.51 {
			t.Fatalf("domain fraction out of band: %+v", r)
		}
	}
}
