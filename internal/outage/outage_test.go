package outage

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
	"github.com/afrinet/observatory/internal/whatif"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
)

func TestGenerateEventsDeterministic(t *testing.T) {
	a := NewModel(testNet, 7).GenerateEvents(2)
	b := NewModel(testNet, 7).GenerateEvents(2)
	if len(a) != len(b) {
		t.Fatal("event counts differ")
	}
	for i := range a {
		if a[i].Cause != b[i].Cause || a[i].Region != b[i].Region || a[i].StartDay != b[i].StartDay {
			t.Fatalf("events diverge at %d", i)
		}
	}
}

func TestEventRates(t *testing.T) {
	events := NewModel(testNet, 42).GenerateEvents(2)
	byRegion := map[geo.Region]int{}
	for _, ev := range events {
		byRegion[ev.Region]++
	}
	africa := 0
	for _, r := range geo.AfricanRegions() {
		africa += byRegion[r]
	}
	if africa == 0 || byRegion[geo.Europe] == 0 {
		t.Fatal("regions missing events")
	}
	// Rates follow the table within rounding.
	for r, rate := range rates {
		want := int(rate.perYear*2 + 0.5)
		if got := byRegion[r]; got != want {
			t.Errorf("%s events = %d, want %d", r, got, want)
		}
	}
}

func TestDurationsByCause(t *testing.T) {
	events := NewModel(testNet, 42).GenerateEvents(4)
	byCause := map[Cause][]float64{}
	for _, ev := range events {
		byCause[ev.Cause] = append(byCause[ev.Cause], ev.Duration)
	}
	cable := metrics.Mean(byCause[CauseCableCut])
	power := metrics.Mean(byCause[CausePower])
	shutdown := metrics.Mean(byCause[CauseShutdown])
	if !(cable > shutdown && shutdown > power) {
		t.Fatalf("duration ordering broken: cable=%.2f shutdown=%.2f power=%.2f", cable, power, shutdown)
	}
}

func TestCorrelatedCutsHitSeveralCables(t *testing.T) {
	m := NewModel(testNet, 42)
	events := m.GenerateEvents(6)
	multi := 0
	cableEvents := 0
	for _, ev := range events {
		if ev.Cause != CauseCableCut {
			continue
		}
		cableEvents++
		if len(ev.Cables) == 0 {
			t.Fatal("cable cut with no cables")
		}
		if len(ev.Cables) > 1 {
			multi++
		}
		// All cut cables share the event's corridor.
		for _, c := range ev.Cables {
			if testTopo.Cables[c].Corridor != ev.Corridor {
				t.Fatalf("cable %d outside corridor %s", c, ev.Corridor)
			}
		}
	}
	if cableEvents == 0 || multi == 0 {
		t.Fatalf("no correlated cuts in %d cable events", cableEvents)
	}
}

func TestIndependentModeSingleCable(t *testing.T) {
	m := NewModel(testNet, 42)
	m.CorrelatedCuts = false
	for _, ev := range m.GenerateEvents(4) {
		if ev.Cause == CauseCableCut && len(ev.Cables) != 1 {
			t.Fatalf("independent mode cut %d cables", len(ev.Cables))
		}
	}
}

func TestEvaluateRestoresNetwork(t *testing.T) {
	m := NewModel(testNet, 42)
	ev := Event{
		Cause:  CauseCableCut,
		Cables: whatif.FindCables(testTopo, "WACS", "SAT-3"),
	}
	imp := m.Evaluate(ev)
	if len(testNet.CutCables()) != 0 {
		t.Fatal("Evaluate left cables cut")
	}
	if len(imp.CountriesAffected) == 0 {
		t.Fatal("a two-cable west-corridor cut should affect someone")
	}
	for _, ctry := range imp.CountriesAffected {
		if imp.Drop[ctry] < DetectThreshold {
			t.Fatalf("%s flagged below threshold (%.2f)", ctry, imp.Drop[ctry])
		}
	}
}

func TestDirectEventImpact(t *testing.T) {
	m := NewModel(testNet, 42)
	ev := Event{Cause: CauseShutdown, Countries: []string{"ET"}, Severity: 0.95}
	imp := m.Evaluate(ev)
	if len(imp.CountriesAffected) != 1 || imp.CountriesAffected[0] != "ET" {
		t.Fatalf("shutdown impact = %+v", imp.CountriesAffected)
	}
	if imp.Drop["ET"] != 0.95 {
		t.Fatalf("severity not propagated: %v", imp.Drop["ET"])
	}
}

func TestBelowThresholdNotDetected(t *testing.T) {
	m := NewModel(testNet, 42)
	ev := Event{Cause: CausePower, Countries: []string{"KE"}, Severity: 0.10}
	imp := m.Evaluate(ev)
	if len(imp.CountriesAffected) != 0 {
		t.Fatal("a 10% dip should stay under Radar's threshold")
	}
}

func TestDetectAll(t *testing.T) {
	m := NewModel(testNet, 42)
	events := []Event{
		{Cause: CauseShutdown, Countries: []string{"TD"}, Severity: 0.9, Duration: 2},
		{Cause: CausePower, Countries: []string{"DE"}, Severity: 0.5, Duration: 0.2},
	}
	det := m.DetectAll(events)
	if len(det) != 2 {
		t.Fatalf("detected %d, want 2", len(det))
	}
	if det[0].Country != "TD" || det[0].Region != geo.AfricaCentral {
		t.Fatalf("first detection wrong: %+v", det[0])
	}
	if det[1].Duration != 0.2 {
		t.Fatalf("duration not carried: %+v", det[1])
	}
}

func TestCauseStrings(t *testing.T) {
	for _, c := range Causes() {
		if c.String() == "" {
			t.Fatal("empty cause string")
		}
	}
}
