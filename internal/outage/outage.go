// Package outage generates and analyzes Internet outages — the substrate
// behind the paper's Figure 4 and Section 5. Events follow per-region
// rates calibrated to Cloudflare Radar's observation that Africa sees
// roughly four times as many outages as Europe or North America; subsea
// cable cuts hit whole corridors at once (correlated failures) and take
// days to repair, while power events last hours.
package outage

import (
	"math/rand"
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/topology"
)

// Cause classifies an outage event.
type Cause int

const (
	CausePower Cause = iota
	CauseCableCut
	CauseShutdown // government-ordered
	CauseDisaster // natural disaster
)

func (c Cause) String() string {
	switch c {
	case CausePower:
		return "power"
	case CauseCableCut:
		return "cable-cut"
	case CauseShutdown:
		return "shutdown"
	default:
		return "disaster"
	}
}

// Causes lists all causes in display order.
func Causes() []Cause { return []Cause{CauseCableCut, CauseShutdown, CauseDisaster, CausePower} }

// Event is one outage occurrence.
type Event struct {
	ID        int
	Cause     Cause
	Region    geo.Region
	StartDay  float64
	Duration  float64  // days
	Countries []string // directly affected (for cable cuts: filled by Impact)
	Corridor  string
	Cables    []topology.CableID
	// Severity is the direct traffic-drop fraction for non-cable causes.
	Severity float64
}

// regionRate is events/year and the cause mix for one region.
type regionRate struct {
	perYear float64
	// cause weights (power, cable, shutdown, disaster) — normalized.
	power, cable, shutdown, disaster float64
}

var rates = map[geo.Region]regionRate{
	geo.AfricaNorthern: {perYear: 8, power: 0.44, cable: 0.12, shutdown: 0.27, disaster: 0.17},
	geo.AfricaWestern:  {perYear: 14, power: 0.48, cable: 0.11, shutdown: 0.20, disaster: 0.21},
	geo.AfricaCentral:  {perYear: 9, power: 0.53, cable: 0.11, shutdown: 0.22, disaster: 0.14},
	geo.AfricaEastern:  {perYear: 12, power: 0.47, cable: 0.11, shutdown: 0.20, disaster: 0.22},
	geo.AfricaSouthern: {perYear: 6, power: 0.57, cable: 0.11, shutdown: 0.05, disaster: 0.27},
	geo.Europe:         {perYear: 26, power: 0.55, cable: 0.08, shutdown: 0.02, disaster: 0.35},
	geo.NorthAmerica:   {perYear: 24, power: 0.55, cable: 0.07, shutdown: 0.0, disaster: 0.38},
	geo.SouthAmerica:   {perYear: 20, power: 0.50, cable: 0.12, shutdown: 0.08, disaster: 0.30},
	geo.AsiaPacific:    {perYear: 26, power: 0.45, cable: 0.18, shutdown: 0.12, disaster: 0.25},
}

// corridorsByRegion lists which cable corridors each region's cuts hit.
var corridorsByRegion = map[geo.Region][]string{
	geo.AfricaNorthern: {"mediterranean", "red-sea"},
	geo.AfricaWestern:  {"west-africa-coastal"},
	geo.AfricaCentral:  {"west-africa-coastal", "south-atlantic"},
	geo.AfricaEastern:  {"red-sea", "east-africa-coastal"},
	geo.AfricaSouthern: {"west-africa-coastal", "east-africa-coastal", "south-indian"},
	geo.Europe:         {"north-atlantic", "mediterranean"},
	geo.NorthAmerica:   {"north-atlantic", "americas"},
	geo.SouthAmerica:   {"americas", "south-atlantic"},
	geo.AsiaPacific:    {"asia-pacific"},
}

// durationDays draws an event duration; cable cuts dominate the tail
// (repair ships take days to weeks), matching the paper's "subsea cable
// outages take the longest to resolve".
func durationDays(c Cause, rng *rand.Rand) float64 {
	switch c {
	case CauseCableCut:
		return 2.0 + rng.Float64()*6.0 // 2-8 days
	case CauseShutdown:
		return 0.5 + rng.Float64()*3.0 // 0.5-3.5 days
	case CauseDisaster:
		return 0.3 + rng.Float64()*1.5
	default: // power
		return 0.05 + rng.Float64()*0.4 // ~1-11 hours
	}
}

// Model generates events over a topology and evaluates their impact on
// the data plane.
type Model struct {
	net  *netsim.Net
	topo *topology.Topology
	rng  *rand.Rand

	// CorrelatedCuts toggles the corridor model: when false, a cable-cut
	// event cuts exactly one cable (the ablation in DESIGN.md).
	CorrelatedCuts bool

	// baseline caches the intact-network reachability scores. Every
	// cable-cut evaluation needs the same "before" snapshot; the stamps
	// detect any state change that would stale it.
	baseline      map[string]float64
	baselineGen   uint64
	baselineEpoch uint64
}

// NewModel builds an outage model with correlated (corridor) cuts on.
func NewModel(n *netsim.Net, seed int64) *Model {
	return &Model{net: n, topo: n.Topology(), rng: rand.New(rand.NewSource(seed)), CorrelatedCuts: true}
}

// GenerateEvents draws the event sequence for the given horizon.
func (m *Model) GenerateEvents(years float64) []Event {
	var out []Event
	id := 0
	for _, region := range geo.AllRegions() {
		rate, ok := rates[region]
		if !ok {
			continue
		}
		n := int(rate.perYear*years + 0.5)
		for i := 0; i < n; i++ {
			ev := Event{ID: id, Region: region, StartDay: m.rng.Float64() * 365 * years}
			draw := m.rng.Float64() * (rate.power + rate.cable + rate.shutdown + rate.disaster)
			switch {
			case draw < rate.power:
				ev.Cause = CausePower
				ev.Severity = 0.3 + m.rng.Float64()*0.4
			case draw < rate.power+rate.cable:
				ev.Cause = CauseCableCut
				m.pickCables(&ev)
			case draw < rate.power+rate.cable+rate.shutdown:
				ev.Cause = CauseShutdown
				ev.Severity = 0.85 + m.rng.Float64()*0.15
			default:
				ev.Cause = CauseDisaster
				ev.Severity = 0.3 + m.rng.Float64()*0.3
			}
			ev.Duration = durationDays(ev.Cause, m.rng)
			if ev.Cause != CauseCableCut {
				ev.Countries = []string{m.randomCountry(region)}
			}
			out = append(out, ev)
			id++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartDay < out[j].StartDay })
	for i := range out {
		out[i].ID = i
	}
	return out
}

// pickCables selects the corridor and the member cables a cut hits.
// Cables sharing a corridor share seabed, so one event usually severs
// several systems — the March 2024 pattern (WACS, MainOne, SAT-3, ACE).
func (m *Model) pickCables(ev *Event) {
	corridors := corridorsByRegion[ev.Region]
	ev.Corridor = corridors[m.rng.Intn(len(corridors))]
	members := m.topo.Corridors()[ev.Corridor]
	if len(members) == 0 {
		return
	}
	if !m.CorrelatedCuts {
		ev.Cables = []topology.CableID{members[m.rng.Intn(len(members))]}
		return
	}
	for _, c := range members {
		if m.rng.Float64() < 0.5 {
			ev.Cables = append(ev.Cables, c)
		}
	}
	if len(ev.Cables) == 0 {
		ev.Cables = []topology.CableID{members[m.rng.Intn(len(members))]}
	}
}

func (m *Model) randomCountry(r geo.Region) string {
	cs := geo.CountriesIn(r)
	return cs[m.rng.Intn(len(cs))].ISO2
}

// Impact quantifies one event's effect.
type Impact struct {
	Event Event
	// Drop maps each country to its traffic-drop fraction (0 = none).
	Drop map[string]float64
	// CountriesAffected lists countries with a drop above the Radar
	// detection threshold.
	CountriesAffected []string
}

// DetectThreshold is the traffic-drop fraction Radar-style detection
// needs to flag a country outage.
const DetectThreshold = 0.35

// Evaluate measures the event's impact. For cable cuts it applies the
// cuts to the data plane, measures per-country reachability degradation
// against a fixed target set, and restores the network. For direct
// events the severity applies to the named countries.
func (m *Model) Evaluate(ev Event) Impact {
	imp := Impact{Event: ev, Drop: make(map[string]float64)}
	switch ev.Cause {
	case CauseCableCut:
		before := m.baselineReachability()
		m.net.SetCablesCut(ev.Cables, true)
		after := m.reachability(nil)
		for ctry, b := range before {
			a := after[ctry]
			if b > 0 {
				drop := 1 - a/b
				if drop > 0.01 {
					imp.Drop[ctry] = drop
				}
			}
		}
		m.net.SetCablesCut(ev.Cables, false)
	default:
		for _, ctry := range ev.Countries {
			imp.Drop[ctry] = ev.Severity
		}
	}
	for ctry, d := range imp.Drop {
		if d >= DetectThreshold {
			imp.CountriesAffected = append(imp.CountriesAffected, ctry)
		}
	}
	sort.Strings(imp.CountriesAffected)
	return imp
}

// baselineReachability returns the intact-network reachability snapshot,
// computing it at most once per (routing generation, failure epoch). The
// cut/restore cycle of every evaluated event returns the network to the
// exact baseline state (the router's whole-set invalidation is a no-op
// then), so a whole event sequence shares one "before" computation.
func (m *Model) baselineReachability() map[string]float64 {
	gen, epoch := m.net.Router().Gen(), m.net.Epoch()
	if m.baseline != nil && m.baselineGen == gen && m.baselineEpoch == epoch {
		return m.baseline
	}
	m.baseline = m.reachability(nil)
	m.baselineGen, m.baselineEpoch = gen, epoch
	return m.baseline
}

// reachability scores each country: the mean transport quality (path up,
// weighted by compound loss) over (eyeball, target) pairs. Congestion on
// over-subscribed backups counts as degradation even when paths exist.
// Targets are the global content
// and cloud networks plus the European transit hubs — what end users
// actually talk to. Countries are scored concurrently (each writes its
// own result slot, so the map is identical to a serial sweep).
func (m *Model) reachability(only map[string]bool) map[string]float64 {
	targets := m.targets()
	countries := geo.Countries()
	type score struct {
		iso string
		val float64
		ok  bool
	}
	scores := par.Map(0, len(countries), func(i int) score {
		c := countries[i]
		if only != nil && !only[c.ISO2] {
			return score{}
		}
		eyeballs := m.eyeballs(c.ISO2, 3)
		if len(eyeballs) == 0 {
			return score{}
		}
		var sum float64
		total := 0
		for _, e := range eyeballs {
			for _, tg := range targets {
				total++
				if _, loss, ok := m.net.PathQuality(e, tg); ok {
					sum += 1 - loss
				}
			}
		}
		if total == 0 {
			return score{}
		}
		return score{iso: c.ISO2, val: sum / float64(total), ok: true}
	})
	out := make(map[string]float64)
	for _, s := range scores {
		if s.ok {
			out[s.iso] = s.val
		}
	}
	return out
}

func (m *Model) targets() []topology.ASN {
	var out []topology.ASN
	for _, a := range m.topo.ASNs() {
		as := m.topo.ASes[a]
		if as.Type == topology.ASContent || as.Type == topology.ASCloud && as.Tier == topology.TierStub {
			out = append(out, a)
		}
	}
	// Cap for cost; the biggest content networks suffice.
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

func (m *Model) eyeballs(ctry string, limit int) []topology.ASN {
	var out []topology.ASN
	for _, a := range m.topo.ASesIn(ctry) {
		as := m.topo.ASes[a]
		if as.Type == topology.ASFixedISP || as.Type == topology.ASMobileCarrier {
			out = append(out, a)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

// Detected is one Radar-style detected country-outage.
type Detected struct {
	Country  string
	Region   geo.Region
	Cause    Cause
	Duration float64
	Drop     float64
}

// DetectAll runs detection over an event sequence: every (event,
// country) pair whose drop crosses the threshold becomes one detected
// outage, as the Radar outage center lists them.
func (m *Model) DetectAll(events []Event) []Detected {
	var out []Detected
	for _, ev := range events {
		imp := m.Evaluate(ev)
		for _, ctry := range imp.CountriesAffected {
			out = append(out, Detected{
				Country:  ctry,
				Region:   geo.MustLookup(ctry).Region,
				Cause:    ev.Cause,
				Duration: ev.Duration,
				Drop:     imp.Drop[ctry],
			})
		}
	}
	return out
}
