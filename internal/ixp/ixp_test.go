package ixp

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testDir  = registry.IXPDirectory(testTopo)
)

func TestDetectStrongRule(t *testing.T) {
	d := NewDetector(testDir)
	// Synthetic traceroute with a hop inside a known LAN.
	rec := testDir[0]
	tr := netsim.Traceroute{Hops: []netsim.TraceHop{
		{TTL: 1, Addr: netx.MustParseAddr("80.0.0.1")},
		{TTL: 2, Addr: rec.LAN.Nth(5)},
		{TTL: 3, Addr: netx.MustParseAddr("80.0.1.1")},
	}}
	crossings := d.Detect(tr, nil)
	if len(crossings) != 1 || crossings[0].IXP != rec.ID || !crossings[0].Strong {
		t.Fatalf("crossings = %+v", crossings)
	}
	if crossings[0].Name != rec.Name || crossings[0].HopTTL != 2 {
		t.Fatalf("metadata wrong: %+v", crossings[0])
	}
}

func TestDetectMembershipHeuristic(t *testing.T) {
	// Two members of exactly one shared fabric appear adjacently with no
	// LAN hop: the weak rule should fire.
	var rec registry.IXPRecord
	var a, b topology.ASN
	for _, r := range testDir {
		d := NewDetector(testDir)
	members:
		for i, m1 := range r.Members {
			for _, m2 := range r.Members[i+1:] {
				if len(sharedOf(d, m1, m2)) == 1 {
					rec, a, b = r, m1, m2
					break members
				}
			}
		}
		if a != 0 {
			break
		}
	}
	if a == 0 {
		t.Skip("no pair sharing exactly one fabric")
	}
	d := NewDetector(testDir)
	addrA := testTopo.ASes[a].Prefixes[0].Nth(1)
	addrB := testTopo.ASes[b].Prefixes[0].Nth(1)
	origin := func(x netx.Addr) (topology.ASN, bool) {
		switch x {
		case addrA:
			return a, true
		case addrB:
			return b, true
		}
		return 0, false
	}
	tr := netsim.Traceroute{Hops: []netsim.TraceHop{
		{TTL: 1, Addr: addrA},
		{TTL: 2, Addr: addrB},
	}}
	crossings := d.Detect(tr, origin)
	if len(crossings) != 1 || crossings[0].IXP != rec.ID || crossings[0].Strong {
		t.Fatalf("weak rule crossings = %+v", crossings)
	}
}

func sharedOf(d *Detector, a, b topology.ASN) []topology.IXPID {
	return d.sharedIXPs(a, b)
}

func TestDetectSilentTrace(t *testing.T) {
	d := NewDetector(testDir)
	tr := netsim.Traceroute{Hops: []netsim.TraceHop{{TTL: 1}, {TTL: 2}}}
	if got := d.Detect(tr, nil); len(got) != 0 {
		t.Fatalf("silent trace produced crossings: %+v", got)
	}
}

func TestMembershipsOf(t *testing.T) {
	d := NewDetector(testDir)
	rec := testDir[0]
	if len(rec.Members) == 0 {
		t.Fatal("fixture fabric empty")
	}
	m := rec.Members[0]
	found := false
	for _, id := range d.MembershipsOf(m) {
		if id == rec.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("AS%d membership of %s not reported", m, rec.Name)
	}
}

func TestGreedySetCoverComplete(t *testing.T) {
	dir := registry.AfricanIXPs(testTopo)
	res := GreedySetCover(dir)
	if res.Universe != 77 {
		t.Fatalf("universe = %d", res.Universe)
	}
	if len(res.Uncovered) != 0 {
		t.Fatalf("uncovered fabrics: %v", res.Uncovered)
	}
	// Every fabric's covering ASN must actually be a member.
	members := map[topology.IXPID]map[topology.ASN]bool{}
	for _, rec := range dir {
		m := map[topology.ASN]bool{}
		for _, a := range rec.Members {
			m[a] = true
		}
		members[rec.ID] = m
	}
	for id, by := range res.CoveredBy {
		if !members[id][by] {
			t.Fatalf("fabric %d covered by non-member AS%d", id, by)
		}
	}
	// CoverageOf agrees.
	if got := CoverageOf(dir, res.Chosen); got != 77 {
		t.Fatalf("CoverageOf(chosen) = %d", got)
	}
	// Paper band: tens of ASNs, not a handful, not hundreds.
	if len(res.Chosen) < 15 || len(res.Chosen) > 50 {
		t.Fatalf("cover size %d outside the plausible band (paper: 34)", len(res.Chosen))
	}
}

func TestGreedySetCoverDeterministic(t *testing.T) {
	dir := registry.AfricanIXPs(testTopo)
	a := GreedySetCover(dir)
	b := GreedySetCover(dir)
	if len(a.Chosen) != len(b.Chosen) {
		t.Fatal("cover size not deterministic")
	}
	for i := range a.Chosen {
		if a.Chosen[i] != b.Chosen[i] {
			t.Fatal("cover order not deterministic")
		}
	}
}

func TestGreedySetCoverGreedyProperty(t *testing.T) {
	dir := registry.AfricanIXPs(testTopo)
	res := GreedySetCover(dir)
	// The first pick covers at least as many fabrics as any single ASN.
	memberships := map[topology.ASN]int{}
	for _, rec := range dir {
		for _, a := range rec.Members {
			memberships[a]++
		}
	}
	best := 0
	for _, n := range memberships {
		if n > best {
			best = n
		}
	}
	firstGain := 0
	for _, by := range res.CoveredBy {
		if by == res.Chosen[0] {
			firstGain++
		}
	}
	if firstGain != best {
		t.Fatalf("first greedy pick covers %d, best possible %d", firstGain, best)
	}
}

func TestCoverageOfEmpty(t *testing.T) {
	dir := registry.AfricanIXPs(testTopo)
	if CoverageOf(dir, nil) != 0 {
		t.Fatal("empty vantage set should cover nothing")
	}
}

func TestDetectOnRealTraceroute(t *testing.T) {
	// End-to-end: cross a known fabric and detect it from the wire data.
	d := NewDetector(testDir)
	for i := range testTopo.Links {
		l := &testTopo.Links[i]
		if l.Via == 0 {
			continue
		}
		tr := testNet.Traceroute(l.A, testNet.RouterAddr(l.B, 0))
		for _, cr := range d.Detect(tr, nil) {
			if cr.Strong && cr.IXP == l.Via {
				return // success
			}
		}
	}
	t.Fatal("no strong detection on any fabric link")
}
