package ixp

import (
	"sort"

	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// CoverResult is the outcome of the greedy set-cover placement analysis.
type CoverResult struct {
	// Chosen lists the selected vantage ASNs in pick order.
	Chosen []topology.ASN
	// CoveredBy maps each exchange to the chosen ASN that covers it.
	CoveredBy map[topology.IXPID]topology.ASN
	// Uncovered lists exchanges no candidate ASN is a member of.
	Uncovered []topology.IXPID
	// Universe is the number of exchanges in scope.
	Universe int
}

// GreedySetCover selects a minimal-ish set of member ASNs such that
// every exchange in the directory slice has at least one selected member
// — the paper's method for choosing observatory vantage networks
// ("a minimal set of 34 ASNs that jointly cover all 77 African IXPs").
// Ties break toward the lower ASN so results are deterministic.
func GreedySetCover(dir []registry.IXPRecord) CoverResult {
	res := CoverResult{
		CoveredBy: make(map[topology.IXPID]topology.ASN),
		Universe:  len(dir),
	}

	memberships := make(map[topology.ASN]map[topology.IXPID]bool)
	uncovered := make(map[topology.IXPID]bool, len(dir))
	for _, rec := range dir {
		uncovered[rec.ID] = true
		for _, a := range rec.Members {
			m := memberships[a]
			if m == nil {
				m = make(map[topology.IXPID]bool)
				memberships[a] = m
			}
			m[rec.ID] = true
		}
	}

	candidates := make([]topology.ASN, 0, len(memberships))
	for a := range memberships {
		candidates = append(candidates, a)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	for len(uncovered) > 0 {
		var best topology.ASN
		bestGain := 0
		for _, a := range candidates {
			gain := 0
			for id := range memberships[a] {
				if uncovered[id] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, best = gain, a
			}
		}
		if bestGain == 0 {
			break // remaining exchanges have no candidate members
		}
		res.Chosen = append(res.Chosen, best)
		for id := range memberships[best] {
			if uncovered[id] {
				delete(uncovered, id)
				res.CoveredBy[id] = best
			}
		}
	}

	for id := range uncovered {
		res.Uncovered = append(res.Uncovered, id)
	}
	sort.Slice(res.Uncovered, func(i, j int) bool { return res.Uncovered[i] < res.Uncovered[j] })
	return res
}

// CoverageOf reports how many exchanges of the directory a given vantage
// set covers through membership.
func CoverageOf(dir []registry.IXPRecord, vantages []topology.ASN) int {
	vs := make(map[topology.ASN]bool, len(vantages))
	for _, v := range vantages {
		vs[v] = true
	}
	n := 0
	for _, rec := range dir {
		for _, m := range rec.Members {
			if vs[m] {
				n++
				break
			}
		}
	}
	return n
}
