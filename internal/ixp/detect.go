// Package ixp implements IXP-related measurement methods: traIXroute-
// style detection of exchange crossings in traceroutes (matching hop
// addresses against directory peering LANs, with a membership heuristic
// as fallback) and the greedy set-cover vantage selection the paper's
// footnote 1 uses to cover all African exchanges with a minimal ASN set.
package ixp

import (
	"sort"

	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// Detector finds IXP crossings in traceroutes using directory data only
// (no simulator ground truth).
type Detector struct {
	lans    netx.Trie[topology.IXPID]
	members map[topology.IXPID]map[topology.ASN]bool
	names   map[topology.IXPID]string
}

// NewDetector indexes the exchange directory.
func NewDetector(dir []registry.IXPRecord) *Detector {
	d := &Detector{
		members: make(map[topology.IXPID]map[topology.ASN]bool),
		names:   make(map[topology.IXPID]string),
	}
	for _, rec := range dir {
		d.lans.Insert(rec.LAN, rec.ID)
		d.names[rec.ID] = rec.Name
		m := make(map[topology.ASN]bool, len(rec.Members))
		for _, a := range rec.Members {
			m[a] = true
		}
		d.members[rec.ID] = m
	}
	return d
}

// Crossing is one detected exchange crossing.
type Crossing struct {
	IXP    topology.IXPID
	Name   string
	HopTTL int
	// Strong is true for a LAN-address match (traIXroute's highest-
	// confidence rule); false for the membership-only inference.
	Strong bool
}

// Detect returns the crossings found in one traceroute, using (1) hop
// addresses inside a known peering LAN, then (2) consecutive responding
// hops whose origin ASes share exactly one exchange.
func (d *Detector) Detect(tr netsim.Traceroute, origin func(netx.Addr) (topology.ASN, bool)) []Crossing {
	var out []Crossing
	seen := map[topology.IXPID]bool{}

	// Rule 1: peering-LAN address on path.
	for _, h := range tr.Hops {
		if h.Addr == 0 {
			continue
		}
		if id, ok := d.lans.Lookup(h.Addr); ok && !seen[id] {
			seen[id] = true
			out = append(out, Crossing{IXP: id, Name: d.names[id], HopTTL: h.TTL, Strong: true})
		}
	}

	// Rule 2: adjacent hops in two ASes that share exactly one fabric.
	if origin != nil {
		var prevASN topology.ASN
		var prevTTL int
		for _, h := range tr.Hops {
			if h.Addr == 0 {
				continue
			}
			asn, ok := origin(h.Addr)
			if !ok {
				continue
			}
			if prevASN != 0 && asn != prevASN {
				if shared := d.sharedIXPs(prevASN, asn); len(shared) == 1 && !seen[shared[0]] {
					seen[shared[0]] = true
					out = append(out, Crossing{IXP: shared[0], Name: d.names[shared[0]], HopTTL: prevTTL, Strong: false})
				}
			}
			prevASN, prevTTL = asn, h.TTL
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HopTTL < out[j].HopTTL })
	return out
}

func (d *Detector) sharedIXPs(a, b topology.ASN) []topology.IXPID {
	var out []topology.IXPID
	for id, m := range d.members {
		if m[a] && m[b] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MembershipsOf returns the exchanges an ASN belongs to, per directory.
func (d *Detector) MembershipsOf(a topology.ASN) []topology.IXPID {
	var out []topology.IXPID
	for id, m := range d.members {
		if m[a] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
