package anycast

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/core"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
)

// anycastFixture announces a three-instance service (US cloud, German
// transit, South African transit) on a reserved prefix and returns a
// service address.
func anycastFixture(t *testing.T) netx.Addr {
	t.Helper()
	origins := []topology.ASN{16509} // CloudOne home
	for _, ctry := range []string{"DE", "ZA"} {
		for _, a := range testTopo.ASesIn(ctry) {
			if testTopo.ASes[a].Type == topology.ASTransit {
				origins = append(origins, a)
				break
			}
		}
	}
	if len(origins) != 3 {
		t.Fatal("fixture origins missing")
	}
	p := netx.MustParsePrefix("198.18.0.0/24") // benchmark space: unused
	testNet.AnnounceAnycast(p, origins)
	return p.Nth(53)
}

func TestAnycastInstanceSelection(t *testing.T) {
	addr := anycastFixture(t)
	if !testNet.IsAnycast(addr) {
		t.Fatal("announced address not recognized")
	}
	// A South African eyeball lands on an instance with local latency.
	var za topology.ASN
	for _, a := range testTopo.ASesIn("ZA") {
		if testTopo.ASes[a].Type == topology.ASFixedISP {
			za = a
			break
		}
	}
	inst, ok := testNet.AnycastInstanceFor(za, addr)
	if !ok {
		t.Fatal("no instance for ZA client")
	}
	rtt, reached := testNet.Ping(za, addr)
	if !reached {
		t.Fatal("anycast address did not answer")
	}
	if rtt > 60 {
		t.Fatalf("ZA client served at %.1f ms; an in-continent instance exists (got AS%d)", rtt, inst)
	}
	// Different vantages reach different instances.
	var de topology.ASN
	for _, a := range testTopo.ASesIn("DE") {
		if testTopo.ASes[a].Type == topology.ASEnterprise {
			de = a
			break
		}
	}
	instDE, _ := testNet.AnycastInstanceFor(de, addr)
	if instDE == inst {
		t.Log("warning: DE and ZA clients share an instance (possible but unexpected)")
	}
}

func TestCensusDetectsAnycast(t *testing.T) {
	addr := anycastFixture(t)
	vantages := core.AtlasPlacement(testTopo, 40)
	// Add some non-African vantages for geographic spread.
	for _, ctry := range []string{"DE", "US", "BR", "JP"} {
		for _, a := range testTopo.ASesIn(ctry) {
			if testTopo.ASes[a].Type == topology.ASEducation || testTopo.ASes[a].Type == topology.ASEnterprise {
				vantages = append(vantages, a)
				break
			}
		}
	}
	c := New(testNet)
	v := c.Measure(vantages, addr)
	if len(v.Probes) < 10 {
		t.Fatalf("only %d probes answered", len(v.Probes))
	}
	if !v.Anycast {
		t.Fatal("three-instance service not classified as anycast")
	}
	if v.Instances < 2 {
		t.Fatalf("instance lower bound %d; at least 2 sites are visible", v.Instances)
	}
}

func TestCensusUnicastNegative(t *testing.T) {
	// A plain unicast router address must not be classified anycast.
	var de topology.ASN
	for _, a := range testTopo.ASesIn("DE") {
		if testTopo.ASes[a].Type == topology.ASTransit {
			de = a
			break
		}
	}
	vantages := core.AtlasPlacement(testTopo, 30)
	c := New(testNet)
	v := c.Measure(vantages, testNet.RouterAddr(de, 0))
	if v.Anycast {
		t.Fatalf("unicast target classified anycast (%d violations)", v.Violations)
	}
	if len(v.Probes) > 0 && v.Instances != 1 {
		t.Fatalf("unicast instances = %d", v.Instances)
	}
}

func TestSweep(t *testing.T) {
	addr := anycastFixture(t)
	var de topology.ASN
	for _, a := range testTopo.ASesIn("DE") {
		if testTopo.ASes[a].Type == topology.ASTransit {
			de = a
			break
		}
	}
	vantages := core.AtlasPlacement(testTopo, 30)
	c := New(testNet)
	got := c.Sweep(vantages, []netx.Addr{addr, testNet.RouterAddr(de, 0)})
	if len(got) != 1 || got[0].Target != addr {
		t.Fatalf("sweep found %d anycast targets", len(got))
	}
}
