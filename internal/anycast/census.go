// Package anycast implements a MAnycast-style census (the anycast
// research Section 7.2 lists among the observatory's workloads):
// classify a target address as anycast or unicast by probing it from
// many vantages and looking for great-circle-policy violations — two
// distant vantages both measuring an RTT that no single physical site
// could serve — then estimate the instance count by clustering the
// low-latency vantages (an iGreedy-style lower bound).
package anycast

import (
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

// Probe is one vantage's measurement of the target.
type Probe struct {
	Vantage topology.ASN
	Country string
	RTTms   float64
}

// Verdict is the census outcome for one target.
type Verdict struct {
	Target  netx.Addr
	Probes  []Probe
	Anycast bool
	// Violations counts vantage pairs whose joint RTTs are physically
	// impossible from one site.
	Violations int
	// Instances is the iGreedy-style lower bound on instance count
	// (clusters of sub-threshold vantages too far apart to share a site).
	Instances int
}

// Census runs the method against a data plane.
type Census struct {
	net  *netsim.Net
	topo *topology.Topology

	// LocalRTTms is the RTT under which a vantage is considered to sit
	// next to an instance (used for instance clustering).
	LocalRTTms float64
	// SlackMs absorbs processing/jitter before declaring a violation.
	SlackMs float64
}

// New builds a census with MAnycast-like defaults.
func New(n *netsim.Net) *Census {
	return &Census{net: n, topo: n.Topology(), LocalRTTms: 25, SlackMs: 8}
}

// Measure probes the target from every vantage and classifies it.
func (c *Census) Measure(vantages []topology.ASN, target netx.Addr) Verdict {
	v := Verdict{Target: target}
	for _, src := range vantages {
		rtt, ok := c.net.Ping(src, target)
		if !ok {
			continue
		}
		as := c.topo.ASes[src]
		if as == nil {
			continue
		}
		v.Probes = append(v.Probes, Probe{Vantage: src, Country: as.Country, RTTms: rtt})
	}
	sort.Slice(v.Probes, func(i, j int) bool { return v.Probes[i].Vantage < v.Probes[j].Vantage })

	// Great-circle-policy check: if the target were one site at ANY
	// location, then for every vantage pair the site-to-vantage paths
	// must cover at least the inter-vantage distance (triangle
	// inequality): rtt_a/2 + rtt_b/2 >= propagation(d(a,b)).
	for i := 0; i < len(v.Probes); i++ {
		for j := i + 1; j < len(v.Probes); j++ {
			ca, okA := geo.Lookup(v.Probes[i].Country)
			cb, okB := geo.Lookup(v.Probes[j].Country)
			if !okA || !okB {
				continue
			}
			need := geo.PropagationDelayMs(geo.DistanceKm(ca.Hub, cb.Hub))
			have := v.Probes[i].RTTms/2 + v.Probes[j].RTTms/2
			if have+c.SlackMs < need {
				v.Violations++
			}
		}
	}
	v.Anycast = v.Violations > 0
	if v.Anycast {
		v.Instances = c.clusterInstances(v.Probes)
	} else if len(v.Probes) > 0 {
		v.Instances = 1
	}
	return v
}

// clusterInstances greedily groups sub-threshold vantages: two local
// vantages can share an instance only if they are close enough that one
// site could serve both within the threshold.
func (c *Census) clusterInstances(probes []Probe) int {
	var local []geo.Coord
	for _, p := range probes {
		if p.RTTms > c.LocalRTTms {
			continue
		}
		if ctry, ok := geo.Lookup(p.Country); ok {
			local = append(local, ctry.Hub)
		}
	}
	if len(local) == 0 {
		return 1 // anycast but no vantage near any instance
	}
	// A site serving a vantage within LocalRTTms sits within this radius.
	radiusKM := c.LocalRTTms / 2 * 200
	var centers []geo.Coord
	for _, p := range local {
		placed := false
		for _, ctr := range centers {
			if geo.DistanceKm(p, ctr) <= 2*radiusKM {
				placed = true
				break
			}
		}
		if !placed {
			centers = append(centers, p)
		}
	}
	return len(centers)
}

// Sweep measures many targets and returns the anycast ones.
func (c *Census) Sweep(vantages []topology.ASN, targets []netx.Addr) []Verdict {
	var out []Verdict
	for _, t := range targets {
		v := c.Measure(vantages, t)
		if v.Anycast {
			out = append(out, v)
		}
	}
	return out
}
