// Package scan implements the three Internet-scanning methodologies the
// paper's Table 1 evaluates against Africa's infrastructure:
//
//   - ANT-style hitlists: one historically-responsive representative per
//     routed /24 (built from longitudinal probing history), plus the
//     LAN addresses of exchanges that past traceroutes happened to cross;
//   - CAIDA Routed /24 Topology: traceroute to one random address per
//     routed /24 from a globally distributed (Africa-sparse) vantage set;
//   - YARRP: randomized high-speed traceroute to a sample of the routed
//     space from a single vantage.
//
// Coverage is then computed per the paper's methodology: map what each
// tool saw to ASNs, classify ASNs Mobile / Non-mobile / IXP, and divide
// by the AfriNIC-delegated expectations.
package scan

import (
	"sort"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

// Tool identifies a scanning methodology.
type Tool int

const (
	ToolANT Tool = iota
	ToolCAIDA
	ToolYARRP
)

func (t Tool) String() string {
	switch t {
	case ToolANT:
		return "ANT Hitlist"
	case ToolCAIDA:
		return "CAIDA Hitlist"
	default:
		return "YARRP"
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pick maps a hash onto [0,n) without the sign pitfalls of int casts.
func pick(h uint64, n int) int { return int(h % uint64(n)) }

func f01(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// Hitlist is one tool's target list.
type Hitlist struct {
	Tool    Tool
	Targets []netx.Addr
}

// Builder constructs hitlists over a data plane's address space.
type Builder struct {
	net  *netsim.Net
	rt   *bgp.RoutedTable
	topo *topology.Topology
	seed uint64
}

// NewBuilder binds a builder to the data plane and routed table.
func NewBuilder(n *netsim.Net, rt *bgp.RoutedTable, seed int64) *Builder {
	return &Builder{net: n, rt: rt, topo: n.Topology(), seed: uint64(seed)}
}

// BuildANT assembles the ANT-style hitlist: for each routed /24, probe
// history (modeled by the responsiveness oracle over a sample of
// addresses) yields a responsive representative when one exists; the
// list also carries IXP LAN addresses learned from historical
// traceroutes, with the modest hit rate the paper measures.
func (b *Builder) BuildANT() Hitlist {
	h := Hitlist{Tool: ToolANT}
	const historySamples = 48
	// Each /24's probing history is independent; fan out and flatten the
	// per-block target lists in index order, matching the serial append.
	p24s := b.rt.Slash24s()
	perBlock := par.Map(0, len(p24s), func(i int) []netx.Addr {
		p24 := p24s[i]
		var targets []netx.Addr
		for k := 0; k < historySamples; k++ {
			a := p24.Nth(uint64(1 + pick(splitmix(b.seed^uint64(p24.Base())^uint64(k)), 254)))
			if b.net.AddrResponds(a) {
				targets = append(targets, a)
				// Historical lists retain a second candidate per block.
				second := p24.Nth(uint64(1 + pick(splitmix(b.seed^uint64(p24.Base())^0x99), 254)))
				targets = append(targets, second)
				break
			}
		}
		return targets
	})
	for _, ts := range perBlock {
		h.Targets = append(h.Targets, ts...)
	}
	// Exchange LANs reached by old traceroute campaigns.
	for _, id := range b.topo.IXPIDs() {
		x := b.topo.IXPs[id]
		if f01(splitmix(b.seed^uint64(id)^0xAB)) < ixpHistoricalHitProb(b.topo, x) {
			h.Targets = append(h.Targets, x.LAN.Nth(2))
		}
	}
	return h
}

// ixpHistoricalHitProb is the chance an exchange's LAN ever appeared in
// the historical traceroutes feeding the hitlist: large fabrics with
// many members are crossed often; small African fabrics almost never.
func ixpHistoricalHitProb(t *topology.Topology, x *topology.IXP) float64 {
	p := 0.04 * float64(len(x.Members))
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// BuildCAIDA assembles the routed-/24 target list: one random address
// per routed /24 (fresh randomness per cycle, one cycle here).
func (b *Builder) BuildCAIDA() Hitlist {
	h := Hitlist{Tool: ToolCAIDA}
	for _, p24 := range b.rt.Slash24s() {
		a := p24.Nth(uint64(1 + pick(splitmix(b.seed^uint64(p24.Base())^0xC1), 254)))
		h.Targets = append(h.Targets, a)
	}
	return h
}

// BuildYARRP assembles the randomized sample: a share of the routed /24
// space in randomized order (YARRP's stateless sweep probed far fewer
// addresses than the hitlists in the paper's run).
func (b *Builder) BuildYARRP(share float64) Hitlist {
	h := Hitlist{Tool: ToolYARRP}
	for _, p24 := range b.rt.Slash24s() {
		if f01(splitmix(b.seed^uint64(p24.Base())^0xD2)) >= share {
			continue
		}
		a := p24.Nth(uint64(1 + pick(splitmix(b.seed^uint64(p24.Base())^0xD3), 254)))
		h.Targets = append(h.Targets, a)
	}
	return h
}

// Observation is the outcome of running (or statically analyzing) a tool.
type Observation struct {
	Tool Tool
	// Entries is the hitlist size.
	Entries int
	// ASNs maps every observed ASN to true.
	ASNs map[topology.ASN]bool
	// IXPs seen via their LAN prefixes.
	IXPs map[topology.IXPID]bool
}

// AnalyzeStatic maps hitlist addresses to ASNs without probing — the
// paper's static coverage analysis for ANT and CAIDA-style lists. IXP
// LAN addresses map to the exchange's route-server ASN.
func (b *Builder) AnalyzeStatic(h Hitlist) Observation {
	obs := Observation{Tool: h.Tool, Entries: len(h.Targets),
		ASNs: make(map[topology.ASN]bool), IXPs: make(map[topology.IXPID]bool)}
	for _, a := range h.Targets {
		if asn, ok := b.rt.Origin(a); ok {
			obs.ASNs[asn] = true
			continue
		}
		if x, ok := b.net.IXPOf(a); ok {
			obs.IXPs[x] = true
			obs.ASNs[registry.RouteServerASN(x)] = true
		}
	}
	return obs
}

// Run executes the tool's probing from the given vantage ASNs,
// traceroute-style: an ASN counts as observed when any of its addresses
// answers or any of its routers appears on a path; exchanges count when
// their LAN addresses show up as hops.
//
// lastHopLoss models YARRP's stateless operation, which loses a share of
// final hops (it cannot adapt TTLs); pass 0 for stateful tools.
// lanHopLoss models probe-type filtering at exchange LANs: whether a
// fabric-facing interface answers a given tool's probe style (UDP
// high-port vs ICMP-paris, rate-limit class) is per-interface policy, so
// the draw is deterministic per (vantage, exchange). Stateless UDP
// sweeps get filtered almost everywhere (the paper's 2.9% YARRP IXP
// coverage); ICMP topology probing less so.
func (b *Builder) Run(h Hitlist, vantages []topology.ASN, lastHopLoss, lanHopLoss float64) Observation {
	obs := Observation{Tool: h.Tool, Entries: len(h.Targets),
		ASNs: make(map[topology.ASN]bool), IXPs: make(map[topology.IXPID]bool)}
	if len(vantages) == 0 {
		return obs
	}
	// Each target's traceroute only adds members to the observed sets —
	// an order-independent union — so traceroutes fan out and the partial
	// sightings merge into the same maps a serial run would build.
	type sighting struct {
		asns []topology.ASN
		ixps []topology.IXPID
	}
	partials := par.Map(0, len(h.Targets), func(i int) sighting {
		target := h.Targets[i]
		v := vantages[i%len(vantages)]
		tr := b.net.Traceroute(v, target)
		dropLast := lastHopLoss > 0 &&
			f01(splitmix(b.seed^uint64(target)^0xE4)) < lastHopLoss
		var sg sighting
		for j, hop := range tr.Hops {
			if hop.Addr == 0 {
				continue
			}
			if dropLast && j >= len(tr.Hops)-2 {
				continue
			}
			if x, ok := b.net.IXPOf(hop.Addr); ok {
				if lanHopLoss > 0 &&
					f01(splitmix(b.seed^uint64(x)<<20^uint64(v)^0xF7)) < lanHopLoss {
					continue
				}
				sg.ixps = append(sg.ixps, x)
				sg.asns = append(sg.asns, registry.RouteServerASN(x))
				continue
			}
			if asn, ok := b.rt.Origin(hop.Addr); ok {
				sg.asns = append(sg.asns, asn)
			}
		}
		return sg
	})
	for _, sg := range partials {
		for _, asn := range sg.asns {
			obs.ASNs[asn] = true
		}
		for _, x := range sg.ixps {
			obs.IXPs[x] = true
		}
	}
	return obs
}

// CoverageRow is one line of Table 1.
type CoverageRow struct {
	Tool      Tool
	Entries   int
	Mobile    float64
	NonMobile float64
	IXP       float64
}

// RegionalCoverage is per-region coverage for one tool.
type RegionalCoverage struct {
	Region    geo.Region
	Mobile    float64
	NonMobile float64
	IXP       float64
}

// Coverage computes the paper's coverage metric over African ASNs:
// |observed| / |expected| per class, with expectations from the AfriNIC
// delegated file.
func Coverage(t *topology.Topology, obs Observation) CoverageRow {
	exp := expectedByClass(t, geo.RegionUnknown)
	got := observedByClass(t, obs, geo.RegionUnknown)
	return CoverageRow{
		Tool:      obs.Tool,
		Entries:   obs.Entries,
		Mobile:    share(got[registry.ClassMobile], exp[registry.ClassMobile]),
		NonMobile: share(got[registry.ClassNonMobile], exp[registry.ClassNonMobile]),
		IXP:       share(got[registry.ClassIXP], exp[registry.ClassIXP]),
	}
}

// CoverageByRegion computes the same metric per African subregion.
func CoverageByRegion(t *topology.Topology, obs Observation) []RegionalCoverage {
	var out []RegionalCoverage
	for _, r := range geo.AfricanRegions() {
		exp := expectedByClass(t, r)
		got := observedByClass(t, obs, r)
		out = append(out, RegionalCoverage{
			Region:    r,
			Mobile:    share(got[registry.ClassMobile], exp[registry.ClassMobile]),
			NonMobile: share(got[registry.ClassNonMobile], exp[registry.ClassNonMobile]),
			IXP:       share(got[registry.ClassIXP], exp[registry.ClassIXP]),
		})
	}
	return out
}

func share(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// expectedByClass counts delegated African ASNs per class (region filter
// optional via geo.RegionUnknown).
func expectedByClass(t *topology.Topology, region geo.Region) map[registry.Classify]int {
	out := map[registry.Classify]int{}
	for _, asn := range t.ASNs() {
		as := t.ASes[asn]
		if !as.Region.IsAfrica() {
			continue
		}
		if region != geo.RegionUnknown && as.Region != region {
			continue
		}
		out[registry.ClassifyASN(t, asn)]++
	}
	return out
}

func observedByClass(t *topology.Topology, obs Observation, region geo.Region) map[registry.Classify]int {
	out := map[registry.Classify]int{}
	for asn := range obs.ASNs {
		as := t.ASes[asn]
		if as == nil || !as.Region.IsAfrica() {
			continue
		}
		if region != geo.RegionUnknown && as.Region != region {
			continue
		}
		out[registry.ClassifyASN(t, asn)]++
	}
	return out
}

// ArkVantages returns a CAIDA-Ark-like vantage set: heavily concentrated
// in Europe and North America, with a token African presence — the
// geographic bias Section 6.2 calls out.
func ArkVantages(t *topology.Topology, n int) []topology.ASN {
	weights := map[geo.Region]int{
		geo.Europe: 5, geo.NorthAmerica: 4, geo.AsiaPacific: 2,
		geo.SouthAmerica: 1,
		// Ark's thin African presence: a ZA node and an East African one.
		geo.AfricaSouthern: 1,
		geo.AfricaEastern:  1,
	}
	var out []topology.ASN
	for _, r := range geo.AllRegions() {
		w := weights[r]
		if w == 0 {
			continue
		}
		count := 0
		for _, asn := range t.ASNs() {
			as := t.ASes[asn]
			if as.Region != r {
				continue
			}
			if as.Type != topology.ASEducation && as.Type != topology.ASFixedISP {
				continue
			}
			out = append(out, asn)
			count++
			if count >= w {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > n && n > 0 {
		out = out[:n]
	}
	return out
}
