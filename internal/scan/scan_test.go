package scan

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/registry"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo    = topology.Generate(topology.DefaultParams())
	testNet     = netsim.New(testTopo, bgp.New(testTopo), 42)
	testTable   = bgp.BuildRoutedTable(testTopo)
	testBuilder = NewBuilder(testNet, testTable, 42)
)

func TestBuildCAIDAOnePerSlash24(t *testing.T) {
	h := testBuilder.BuildCAIDA()
	s24s := testTable.Slash24s()
	if len(h.Targets) != len(s24s) {
		t.Fatalf("CAIDA targets = %d, /24s = %d", len(h.Targets), len(s24s))
	}
	// Each target sits inside its /24 with a nonzero host part.
	for i, a := range h.Targets[:200] {
		if !s24s[i].Contains(a) {
			t.Fatalf("target %d outside its /24", i)
		}
		if a == s24s[i].Base() {
			t.Fatalf("target %d is the network address", i)
		}
	}
}

func TestBuildYARRPShare(t *testing.T) {
	full := len(testBuilder.BuildCAIDA().Targets)
	half := len(testBuilder.BuildYARRP(0.5).Targets)
	ratio := float64(half) / float64(full)
	if ratio < 0.42 || ratio > 0.58 {
		t.Fatalf("YARRP 0.5 sample ratio = %.2f", ratio)
	}
	if n := len(testBuilder.BuildYARRP(0).Targets); n != 0 {
		t.Fatalf("zero share produced %d targets", n)
	}
}

func TestBuildANTResponsiveBias(t *testing.T) {
	h := testBuilder.BuildANT()
	if len(h.Targets) == 0 {
		t.Fatal("empty ANT hitlist")
	}
	// The first entry of each responsive pair must actually respond —
	// that is the list's defining property.
	responsive := 0
	checked := 0
	for i := 0; i < len(h.Targets) && checked < 300; i += 2 {
		if _, isIXP := testNet.IXPOf(h.Targets[i]); isIXP {
			continue
		}
		checked++
		if testNet.AddrResponds(h.Targets[i]) {
			responsive++
		}
	}
	if float64(responsive)/float64(checked) < 0.9 {
		t.Fatalf("ANT primary entries responsive %d/%d", responsive, checked)
	}
}

func TestHitlistsDeterministic(t *testing.T) {
	other := NewBuilder(testNet, testTable, 42)
	a := testBuilder.BuildANT().Targets
	b := other.BuildANT().Targets
	if len(a) != len(b) {
		t.Fatal("ANT lists differ in size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ANT lists differ at %d", i)
		}
	}
}

func TestAnalyzeStatic(t *testing.T) {
	obs := testBuilder.AnalyzeStatic(testBuilder.BuildANT())
	if obs.Entries == 0 || len(obs.ASNs) == 0 {
		t.Fatal("static analysis found nothing")
	}
	// Observed ASNs must exist (be topology ASNs or route servers).
	for asn := range obs.ASNs {
		if testTopo.ASes[asn] == nil {
			t.Fatalf("observed unknown AS%d", asn)
		}
	}
}

func TestRunObservesVantageUpstream(t *testing.T) {
	// A tiny run from one vantage must at least observe transit ASes.
	h := Hitlist{Tool: ToolCAIDA, Targets: testBuilder.BuildCAIDA().Targets[:300]}
	vantage := ArkVantages(testTopo, 14)[:1]
	obs := testBuilder.Run(h, vantage, 0, 0)
	sawTransit := false
	for asn := range obs.ASNs {
		if as := testTopo.ASes[asn]; as != nil && as.Type == topology.ASTransit {
			sawTransit = true
		}
	}
	if !sawTransit {
		t.Fatal("no transit AS observed on any path")
	}
}

func TestRunEmptyVantages(t *testing.T) {
	h := testBuilder.BuildCAIDA()
	obs := testBuilder.Run(h, nil, 0, 0)
	if len(obs.ASNs) != 0 {
		t.Fatal("no vantages should observe nothing")
	}
}

func TestCoverageOrdering(t *testing.T) {
	// The paper's headline: ANT > CAIDA on mobile coverage, and every
	// tool is poor on IXPs relative to its AS coverage.
	ant := Coverage(testTopo, testBuilder.AnalyzeStatic(testBuilder.BuildANT()))
	caida := Coverage(testTopo, testBuilder.Run(testBuilder.BuildCAIDA(), ArkVantages(testTopo, 14), 0, 0.7))
	if ant.Mobile <= caida.Mobile {
		t.Fatalf("ANT mobile (%.2f) should beat CAIDA (%.2f)", ant.Mobile, caida.Mobile)
	}
	if ant.Mobile < 0.85 {
		t.Fatalf("ANT mobile coverage %.2f, paper says ~96%%", ant.Mobile)
	}
	if caida.IXP > 0.25 {
		t.Fatalf("CAIDA IXP coverage %.2f too high, paper says 7.8%%", caida.IXP)
	}
	if ant.IXP <= caida.IXP {
		t.Fatalf("ANT IXP (%.2f) should beat CAIDA (%.2f)", ant.IXP, caida.IXP)
	}
}

func TestCoverageByRegionShape(t *testing.T) {
	obs := testBuilder.AnalyzeStatic(testBuilder.BuildANT())
	rows := CoverageByRegion(testTopo, obs)
	if len(rows) != 5 {
		t.Fatalf("regional rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Mobile < 0 || r.Mobile > 1 || r.NonMobile < 0 || r.NonMobile > 1 || r.IXP < 0 || r.IXP > 1 {
			t.Fatalf("coverage out of [0,1]: %+v", r)
		}
	}
}

func TestArkVantagesBias(t *testing.T) {
	vs := ArkVantages(testTopo, 13)
	if len(vs) == 0 {
		t.Fatal("no vantages")
	}
	african := 0
	for _, v := range vs {
		if testTopo.RegionOf(v).IsAfrica() {
			african++
		}
		if as := testTopo.ASes[v]; as.Type == topology.ASMobileCarrier {
			t.Fatal("Ark does not sit in mobile networks")
		}
	}
	if african > len(vs)/3 {
		t.Fatalf("Ark vantages too African (%d/%d): the bias is the point", african, len(vs))
	}
}

func TestExpectedClassesComplete(t *testing.T) {
	exp := expectedByClass(testTopo, geo.RegionUnknown)
	if exp[registry.ClassMobile] == 0 || exp[registry.ClassNonMobile] == 0 || exp[registry.ClassIXP] != 77 {
		t.Fatalf("expected classes: %+v", exp)
	}
}

func TestToolStrings(t *testing.T) {
	if ToolANT.String() == "" || ToolCAIDA.String() == "" || ToolYARRP.String() == "" {
		t.Fatal("tool strings empty")
	}
}
