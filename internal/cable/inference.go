// Package cable reimplements Nautilus-style submarine-cable inference
// (Section 6.2's methodology): given a traceroute, identify the IP links
// that cross the sea, geolocate their endpoints with a commercial-grade
// (error-prone) database, and map each to the set of candidate cable
// systems whose landing stations are compatible with the endpoints'
// claimed locations and with the observed latency.
//
// Because several cables share each corridor and African geolocation is
// noisy, a link rarely maps to a single cable — the imprecision the
// paper argues makes cable-level compliance auditing infeasible with
// passive inference alone.
package cable

import (
	"sort"

	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/geoloc"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

// Inference is a cable-mapping engine bound to a topology snapshot and a
// geolocation database. It consumes only public knowledge: the cable
// almanac (landing stations), country land borders, and geolocation.
type Inference struct {
	topo  *topology.Topology
	geodb *geoloc.DB

	// SearchRadiusKM bounds how far from a claimed endpoint location a
	// candidate landing station may be (Nautilus uses generous radii to
	// survive geolocation error; that is also what inflates candidate
	// sets).
	SearchRadiusKM float64

	landBorders map[[2]string]bool
}

// NewInference builds the engine with the Nautilus-like default radius.
func NewInference(t *topology.Topology, db *geoloc.DB) *Inference {
	inf := &Inference{topo: t, geodb: db, SearchRadiusKM: 500, landBorders: map[[2]string]bool{}}
	// Public borders knowledge: terrestrial conduits exist exactly where
	// land crossings are plausible in this world.
	for i := range t.Conduits {
		c := &t.Conduits[i]
		if !c.IsSubsea() {
			inf.landBorders[borderKey(c.FromCountry, c.ToCountry)] = true
		}
	}
	return inf
}

func borderKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// LinkMapping is the inference result for one sea-crossing IP link.
type LinkMapping struct {
	SrcTTL, DstTTL int
	SrcCountry     string // claimed
	DstCountry     string // claimed
	Candidates     []topology.CableID
	Truth          []topology.CableID // ground truth (evaluation only)
}

// PathMapping aggregates a traceroute's submarine links.
type PathMapping struct {
	Links []LinkMapping
	// Union is the distinct candidate cables across the whole path —
	// the paper's "maps a network path to up to 40 submarine cables".
	Union []topology.CableID
}

// MapTraceroute runs inference over one traceroute. The net is used only
// to obtain ground truth for evaluation (CablesOnLink); the inference
// itself never touches it.
func (inf *Inference) MapTraceroute(tr netsim.Traceroute, n *netsim.Net) PathMapping {
	var pm PathMapping
	union := map[topology.CableID]bool{}

	var prev *netsim.TraceHop
	for i := range tr.Hops {
		h := &tr.Hops[i]
		if h.Addr == 0 {
			continue
		}
		if prev != nil {
			if m, ok := inf.mapLink(prev, h); ok {
				if n != nil && h.TrueLink != 0 {
					m.Truth = n.CablesOnLink(h.TrueLink)
				}
				pm.Links = append(pm.Links, m)
				for _, c := range m.Candidates {
					union[c] = true
				}
			}
		}
		prev = h
	}
	for c := range union {
		pm.Union = append(pm.Union, c)
	}
	sort.Slice(pm.Union, func(i, j int) bool { return pm.Union[i] < pm.Union[j] })
	return pm
}

// mapLink decides whether the hop pair is a submarine crossing and, if
// so, returns its candidate cables.
func (inf *Inference) mapLink(a, b *netsim.TraceHop) (LinkMapping, bool) {
	ga, okA := inf.geodb.Lookup(a.Addr)
	gb, okB := inf.geodb.Lookup(b.Addr)
	if !okA || !okB {
		return LinkMapping{}, false
	}
	if ga.Country == gb.Country {
		return LinkMapping{}, false
	}
	if inf.landBorders[borderKey(ga.Country, gb.Country)] {
		// Plausibly terrestrial: Nautilus discards land-adjacent pairs
		// unless latency forces a submarine detour; we keep the simple
		// rule.
		return LinkMapping{}, false
	}
	if geo.DistanceKm(ga.Coord, gb.Coord) < 200 {
		return LinkMapping{}, false
	}

	m := LinkMapping{SrcTTL: a.TTL, DstTTL: b.TTL, SrcCountry: ga.Country, DstCountry: gb.Country}

	// Latency feasibility: the RTT increase across the link bounds the
	// cable length from above (light in fiber travels ~100 km per ms of
	// RTT). Missing RTTs (silent hops never get here) and jitter get a
	// generous multiplier.
	maxKM := 40000.0
	if a.RTT > 0 && b.RTT > 0 && b.RTT > a.RTT {
		maxKM = (b.RTT - a.RTT) * 100 * 2.0
		if maxKM < 500 {
			maxKM = 500
		}
	}

	for _, id := range inf.topo.CableIDs() {
		c := inf.topo.Cables[id]
		la, okLA := nearestLanding(c, ga.Coord, ga.Country, inf.SearchRadiusKM)
		lb, okLB := nearestLanding(c, gb.Coord, gb.Country, inf.SearchRadiusKM)
		if !okLA || !okLB || la == lb {
			continue
		}
		if alongCableKM(c, la, lb) > maxKM {
			continue
		}
		m.Candidates = append(m.Candidates, id)
	}
	if len(m.Candidates) == 0 {
		// Relaxed stage: when no cable reaches both claimed endpoints
		// (typical when one endpoint is far inland or badly geolocated),
		// Nautilus falls back to one-sided matching — every cable that
		// could carry the seaward end stays a candidate. This stage is
		// the main source of the huge candidate sets Section 6.2
		// criticizes.
		for _, id := range inf.topo.CableIDs() {
			c := inf.topo.Cables[id]
			_, okLA := nearestLanding(c, ga.Coord, ga.Country, inf.SearchRadiusKM)
			_, okLB := nearestLanding(c, gb.Coord, gb.Country, inf.SearchRadiusKM)
			if okLA || okLB {
				m.Candidates = append(m.Candidates, id)
			}
		}
	}
	return m, true
}

// nearestLanding returns the index of the cable's landing closest to p.
// A landing is compatible when it is within the search radius of the
// claimed coordinates OR in the claimed country — Nautilus's country-
// level fallback, needed because African coordinates carry hundreds of
// kilometers of error (and the very mechanism that inflates candidate
// sets).
func nearestLanding(c *topology.Cable, p geo.Coord, country string, radiusKM float64) (int, bool) {
	best, bestD := -1, radiusKM
	for i, l := range c.Landings {
		d := geo.DistanceKm(l.Site, p)
		if l.Country == country && d > radiusKM {
			d = radiusKM // country match: always compatible
		}
		if d <= bestD {
			best, bestD = i, d
		}
	}
	return best, best >= 0
}

// alongCableKM measures the cable path length between two landings.
func alongCableKM(c *topology.Cable, i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	var km float64
	for k := i; k < j; k++ {
		km += geo.DistanceKm(c.Landings[k].Site, c.Landings[k+1].Site) * 1.3
	}
	return km
}

// Ambiguity summarizes inference precision over a set of path mappings —
// the Section 6.2 result.
type Ambiguity struct {
	Paths              int
	PathsWithSubmarine int
	// MultiCable is the share of submarine paths mapped to >1 cable.
	MultiCable float64
	// MaxCandidates is the largest per-path candidate-set size.
	MaxCandidates int
	// MeanCandidates is the mean per-path candidate-set size.
	MeanCandidates float64
	// ExactShare is the share of submarine links whose candidate set is
	// exactly the ground-truth set (precision of the method).
	ExactShare float64
	// ContainsTruthShare is the share of submarine links whose candidate
	// set contains the true cable(s) (recall of the method).
	ContainsTruthShare float64
}

// Summarize computes ambiguity statistics over many path mappings.
func Summarize(pms []PathMapping) Ambiguity {
	var out Ambiguity
	out.Paths = len(pms)
	multi := 0
	var candSum int
	links, exact, contains := 0, 0, 0
	for _, pm := range pms {
		if len(pm.Links) == 0 {
			continue
		}
		out.PathsWithSubmarine++
		if len(pm.Union) > 1 {
			multi++
		}
		if len(pm.Union) > out.MaxCandidates {
			out.MaxCandidates = len(pm.Union)
		}
		candSum += len(pm.Union)
		for _, l := range pm.Links {
			if len(l.Truth) == 0 {
				continue
			}
			links++
			if sameSet(l.Candidates, l.Truth) {
				exact++
			}
			if containsAll(l.Candidates, l.Truth) {
				contains++
			}
		}
	}
	if out.PathsWithSubmarine > 0 {
		out.MultiCable = float64(multi) / float64(out.PathsWithSubmarine)
		out.MeanCandidates = float64(candSum) / float64(out.PathsWithSubmarine)
	}
	if links > 0 {
		out.ExactShare = float64(exact) / float64(links)
		out.ContainsTruthShare = float64(contains) / float64(links)
	}
	return out
}

func sameSet(a, b []topology.CableID) bool {
	if len(a) != len(b) {
		return false
	}
	return containsAll(a, b) && containsAll(b, a)
}

func containsAll(set, want []topology.CableID) bool {
	m := make(map[topology.CableID]bool, len(set))
	for _, c := range set {
		m[c] = true
	}
	for _, w := range want {
		if !m[w] {
			return false
		}
	}
	return true
}
