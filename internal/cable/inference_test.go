package cable

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/geoloc"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/netx"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testDB   = geoloc.New(testTopo, 42)
	testInf  = NewInference(testTopo, testDB)
)

func TestAlongCableKM(t *testing.T) {
	var wacs *topology.Cable
	for _, id := range testTopo.CableIDs() {
		if testTopo.Cables[id].Name == "WACS" {
			wacs = testTopo.Cables[id]
		}
	}
	if wacs == nil {
		t.Fatal("WACS missing")
	}
	full := alongCableKM(wacs, 0, len(wacs.Landings)-1)
	half := alongCableKM(wacs, 0, len(wacs.Landings)/2)
	if full <= half || half <= 0 {
		t.Fatalf("segment lengths inconsistent: full=%.0f half=%.0f", full, half)
	}
	// Symmetric in index order.
	if alongCableKM(wacs, 3, 1) != alongCableKM(wacs, 1, 3) {
		t.Fatal("alongCableKM not symmetric")
	}
}

func TestNearestLandingCountryFallback(t *testing.T) {
	var sat3 *topology.Cable
	for _, id := range testTopo.CableIDs() {
		if testTopo.Cables[id].Name == "SAT-3" {
			sat3 = testTopo.Cables[id]
		}
	}
	// A coordinate 1000 km from any landing but claiming NG must still
	// match SAT-3's Lagos landing via the country rule.
	inland := geo.Coord{Lat: 10.0, Lng: 8.0} // central Nigeria
	if _, ok := nearestLanding(sat3, inland, "NG", 200); !ok {
		t.Fatal("country fallback failed")
	}
	// Claiming a country with no landing and far coordinates: no match.
	if _, ok := nearestLanding(sat3, geo.Coord{Lat: 46, Lng: 15}, "AT", 200); ok {
		t.Fatal("matched a landing with no geographic or country basis")
	}
}

func TestMapTracerouteFindsSubmarineLinks(t *testing.T) {
	// Lagos eyeball to a German transit AS: the path crosses the sea.
	var ng, de topology.ASN
	for _, a := range testTopo.ASesIn("NG") {
		if testTopo.ASes[a].Type == topology.ASFixedISP {
			ng = a
			break
		}
	}
	for _, a := range testTopo.ASesIn("DE") {
		if testTopo.ASes[a].Type == topology.ASTransit {
			de = a
			break
		}
	}
	tr := testNet.Traceroute(ng, testNet.RouterAddr(de, 0))
	pm := testInf.MapTraceroute(tr, testNet)
	if len(pm.Links) == 0 {
		t.Fatal("no submarine links inferred on an Africa-Europe path")
	}
	if len(pm.Union) == 0 {
		t.Fatal("no candidate cables at all")
	}
}

func TestSummarizeMath(t *testing.T) {
	pms := []PathMapping{
		{Links: []LinkMapping{{Candidates: []topology.CableID{1, 2}, Truth: []topology.CableID{1}}},
			Union: []topology.CableID{1, 2}},
		{Links: []LinkMapping{{Candidates: []topology.CableID{3}, Truth: []topology.CableID{3}}},
			Union: []topology.CableID{3}},
		{}, // no submarine links
	}
	s := Summarize(pms)
	if s.Paths != 3 || s.PathsWithSubmarine != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.MultiCable != 0.5 {
		t.Fatalf("multi-cable share = %v, want 0.5", s.MultiCable)
	}
	if s.MaxCandidates != 2 || s.MeanCandidates != 1.5 {
		t.Fatalf("candidate stats wrong: %+v", s)
	}
	if s.ExactShare != 0.5 { // second link is exact; first is a superset
		t.Fatalf("exact share = %v", s.ExactShare)
	}
	if s.ContainsTruthShare != 1.0 {
		t.Fatalf("recall = %v", s.ContainsTruthShare)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Paths != 0 || s.MultiCable != 0 {
		t.Fatalf("empty summarize: %+v", s)
	}
}

func TestSameSetAndContains(t *testing.T) {
	a := []topology.CableID{1, 2, 3}
	b := []topology.CableID{3, 2, 1}
	if !sameSet(a, b) {
		t.Fatal("order must not matter")
	}
	if sameSet(a, a[:2]) {
		t.Fatal("different sizes are not the same set")
	}
	if !containsAll(a, a[:2]) || containsAll(a[:2], a) {
		t.Fatal("containsAll wrong")
	}
}

func TestLandAdjacentPairsSkipped(t *testing.T) {
	// KE-UG share a land border (and a terrestrial conduit), so the
	// inference must not treat an adjacent KE/UG hop pair as submarine.
	if !testInf.landBorders[borderKey("KE", "UG")] {
		t.Skip("KE-UG not in borders")
	}
	a := &netsim.TraceHop{TTL: 1, Addr: addrIn(t, "KE"), RTT: 5}
	b := &netsim.TraceHop{TTL: 2, Addr: addrIn(t, "UG"), RTT: 9}
	if _, ok := testInf.mapLink(a, b); ok {
		// It may still map if geolocation mislocated a side; only fail
		// when the claimed countries really were KE/UG.
		ga, _ := testDB.Lookup(a.Addr)
		gb, _ := testDB.Lookup(b.Addr)
		if (ga.Country == "KE" && gb.Country == "UG") || (ga.Country == "UG" && gb.Country == "KE") {
			t.Fatal("terrestrially adjacent pair classified as submarine")
		}
	}
}

func addrIn(t *testing.T, iso string) netx.Addr {
	t.Helper()
	for _, asn := range testTopo.ASesIn(iso) {
		as := testTopo.ASes[asn]
		if as.Type != topology.ASIXPRouteServer {
			return as.Prefixes[0].Nth(7)
		}
	}
	t.Fatalf("no AS in %s", iso)
	panic("unreachable")
}
