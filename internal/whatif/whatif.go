// Package whatif is the scenario engine the paper's conclusion calls
// for: apply an intervention (a cable cut, a resolver-localization
// mandate) to the synthetic Internet, measure end-user outcomes before
// and after, and report the deltas that would inform regulators.
//
// The headline metric is page-load success: a page loads only when DNS
// resolution succeeds AND the content fetch succeeds — which is exactly
// how the hidden DNS dependency of Section 5.2 turns a cable cut into a
// nationwide outage even for locally hosted content.
package whatif

import (
	"sort"

	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/geo"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/par"
	"github.com/afrinet/observatory/internal/topology"
)

// Scenario is one counterfactual.
type Scenario struct {
	Name string
	// CutCables are severed for the scenario's duration.
	CutCables []topology.CableID
	// MandateLocalResolvers forces every client onto an in-country
	// recursive resolver (the legislative intervention).
	MandateLocalResolvers bool
	// MandateLocalAuthoritatives additionally hosts domestic domains'
	// authoritative DNS in-country — full DNS-chain localization.
	MandateLocalAuthoritatives bool
	// Countries restricts measurement to these ISO2 codes (nil = all
	// African countries).
	Countries []string
	// SitesPerCountry caps fetches per country (default 10).
	SitesPerCountry int
}

// CountryOutcome is one country's before/after measurement.
type CountryOutcome struct {
	Country string
	Region  geo.Region
	// PageLoadBefore/After is the share of (client, site) page loads
	// succeeding.
	PageLoadBefore float64
	PageLoadAfter  float64
	// DNSFailShare is the share of after-failures attributable to DNS
	// alone (content reachable, resolution dead).
	DNSFailShare float64
	// MedianRTTBefore/After for successful loads (ms).
	MedianRTTBefore float64
	MedianRTTAfter  float64
	// LocalBefore/After is page-load success restricted to locally
	// hosted sites — the Section 5.2 lens: with resolvers abroad, even
	// in-country content dies during a cut; a local-resolver mandate
	// recovers exactly these loads.
	LocalBefore float64
	LocalAfter  float64
}

// Outcome is the scenario's full result.
type Outcome struct {
	Scenario  Scenario
	Countries []CountryOutcome
	// Disconnected lists countries whose page-load success dropped to 0.
	Disconnected []string
}

// Engine runs scenarios over the simulated stack.
type Engine struct {
	net *netsim.Net
	dns *dnssim.System
	web *content.System
}

// NewEngine binds the engine.
func NewEngine(n *netsim.Net, d *dnssim.System, w *content.System) *Engine {
	return &Engine{net: n, dns: d, web: w}
}

// pageLoad attempts one full page load: DNS then fetch.
func (e *Engine) pageLoad(client topology.ASN, site content.Site, forceLocalResolver, forceLocalAuth bool) (ok bool, dnsOK bool, rtt float64) {
	res := e.dns.ResolveWithPolicy(client, site.Domain, site.Country, forceLocalResolver, forceLocalAuth)
	if !res.OK {
		// Even with DNS dead, check whether content itself would have
		// been reachable (to attribute the failure).
		return false, false, 0
	}
	f := e.web.Fetch(client, site)
	if !f.OK {
		return false, true, 0
	}
	return true, true, res.LatencyMs + f.RTTms
}

// Run executes the scenario and restores the network afterwards.
func (e *Engine) Run(s Scenario) Outcome {
	if s.SitesPerCountry <= 0 {
		s.SitesPerCountry = 10
	}
	countries := s.Countries
	if countries == nil {
		for _, c := range geo.AfricanCountries() {
			countries = append(countries, c.ISO2)
		}
	}

	topo := e.net.Topology()
	clients := make(map[string][]topology.ASN)
	for _, iso := range countries {
		var cs []topology.ASN
		for _, a := range topo.ASesIn(iso) {
			as := topo.ASes[a]
			if as.Type == topology.ASMobileCarrier || as.Type == topology.ASFixedISP {
				cs = append(cs, a)
				if len(cs) == 3 {
					break
				}
			}
		}
		clients[iso] = cs
	}

	type sample struct {
		okShare    float64
		localShare float64
		rtts       []float64
		dnsFails   int
		fails      int
	}
	measure := func(iso string) sample {
		var sm sample
		total, okCnt := 0, 0
		localTotal, localOK := 0, 0
		for _, cl := range clients[iso] {
			sites := e.web.Catalog().SitesFor(iso)
			n := s.SitesPerCountry
			if n > len(sites) {
				n = len(sites)
			}
			for i := 0; i < n; i++ {
				site := sites[i]
				ok, dnsOK, rtt := e.pageLoad(cl, site, s.MandateLocalResolvers, s.MandateLocalAuthoritatives)
				total++
				if site.Kind == content.HostLocal {
					localTotal++
					if ok {
						localOK++
					}
				}
				if ok {
					okCnt++
					sm.rtts = append(sm.rtts, rtt)
				} else {
					sm.fails++
					if !dnsOK {
						sm.dnsFails++
					}
				}
			}
		}
		if total > 0 {
			sm.okShare = float64(okCnt) / float64(total)
		}
		if localTotal > 0 {
			sm.localShare = float64(localOK) / float64(localTotal)
		} else {
			sm.localShare = -1 // no local sites in sample
		}
		return sm
	}

	// Countries measure independently (page loads only read the stack),
	// so both sweeps fan out; each country writes its own slot and the
	// assembled maps match the serial sweep exactly.
	measureAll := func() map[string]sample {
		samples := par.Map(0, len(countries), func(i int) sample {
			return measure(countries[i])
		})
		out := make(map[string]sample, len(countries))
		for i, iso := range countries {
			out[iso] = samples[i]
		}
		return out
	}

	before := measureAll()
	e.net.SetCablesCut(s.CutCables, true)
	after := measureAll()
	e.net.SetCablesCut(s.CutCables, false)

	out := Outcome{Scenario: s}
	for _, iso := range countries {
		b, a := before[iso], after[iso]
		co := CountryOutcome{
			Country:         iso,
			Region:          geo.MustLookup(iso).Region,
			PageLoadBefore:  b.okShare,
			PageLoadAfter:   a.okShare,
			MedianRTTBefore: median(b.rtts),
			MedianRTTAfter:  median(a.rtts),
			LocalBefore:     b.localShare,
			LocalAfter:      a.localShare,
		}
		if a.fails > 0 {
			co.DNSFailShare = float64(a.dnsFails) / float64(a.fails)
		}
		out.Countries = append(out.Countries, co)
		if b.okShare > 0 && a.okShare == 0 {
			out.Disconnected = append(out.Disconnected, iso)
		}
	}
	sort.Slice(out.Countries, func(i, j int) bool { return out.Countries[i].Country < out.Countries[j].Country })
	sort.Strings(out.Disconnected)
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// RegionSummary aggregates an outcome by region.
type RegionSummary struct {
	Region         geo.Region
	PageLoadBefore float64
	PageLoadAfter  float64
	DNSFailShare   float64
	Countries      int
}

// ByRegion summarizes an outcome per African region.
func ByRegion(o Outcome) []RegionSummary {
	agg := map[geo.Region]*RegionSummary{}
	for _, c := range o.Countries {
		rs := agg[c.Region]
		if rs == nil {
			rs = &RegionSummary{Region: c.Region}
			agg[c.Region] = rs
		}
		rs.PageLoadBefore += c.PageLoadBefore
		rs.PageLoadAfter += c.PageLoadAfter
		rs.DNSFailShare += c.DNSFailShare
		rs.Countries++
	}
	var out []RegionSummary
	for _, r := range geo.AfricanRegions() {
		if rs, ok := agg[r]; ok {
			n := float64(rs.Countries)
			out = append(out, RegionSummary{
				Region:         r,
				PageLoadBefore: rs.PageLoadBefore / n,
				PageLoadAfter:  rs.PageLoadAfter / n,
				DNSFailShare:   rs.DNSFailShare / n,
				Countries:      rs.Countries,
			})
		}
	}
	return out
}

// FindCables resolves cable names to ids (helper for scenario builders).
func FindCables(t *topology.Topology, names ...string) []topology.CableID {
	var out []topology.CableID
	for _, name := range names {
		for _, id := range t.CableIDs() {
			if t.Cables[id].Name == name {
				out = append(out, id)
				break
			}
		}
	}
	return out
}
