package whatif

import (
	"testing"

	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/topology"
)

var (
	testTopo = topology.Generate(topology.DefaultParams())
	testNet  = netsim.New(testTopo, bgp.New(testTopo), 42)
	testEng  = NewEngine(testNet, dnssim.New(testNet, 42), content.New(testNet, 42))
)

func TestFindCables(t *testing.T) {
	ids := FindCables(testTopo, "WACS", "SAT-3")
	if len(ids) != 2 {
		t.Fatalf("found %d cables", len(ids))
	}
	if got := FindCables(testTopo, "NotACable"); len(got) != 0 {
		t.Fatal("found a ghost cable")
	}
}

func TestScenarioRestoresNetwork(t *testing.T) {
	cut := FindCables(testTopo, "WACS", "MainOne", "SAT-3", "ACE")
	testEng.Run(Scenario{Name: "t", CutCables: cut, Countries: []string{"NG", "GH"}, SitesPerCountry: 4})
	if len(testNet.CutCables()) != 0 {
		t.Fatal("scenario left cables cut")
	}
}

func TestBaselineHealthy(t *testing.T) {
	out := testEng.Run(Scenario{Name: "noop", Countries: []string{"KE", "ZA"}, SitesPerCountry: 6})
	for _, c := range out.Countries {
		if c.PageLoadBefore < 0.9 {
			t.Fatalf("%s baseline page loads %.2f; should be healthy", c.Country, c.PageLoadBefore)
		}
		if c.PageLoadAfter != c.PageLoadBefore {
			t.Fatalf("%s changed without any cut", c.Country)
		}
	}
}

func TestCorridorCutDegradesWest(t *testing.T) {
	cut := FindCables(testTopo, "WACS", "MainOne", "SAT-3", "ACE")
	out := testEng.Run(Scenario{
		Name: "march-2024", CutCables: cut,
		Countries: []string{"NG", "GH", "SL", "LR", "GM"}, SitesPerCountry: 8,
	})
	worst := 1.0
	for _, c := range out.Countries {
		if c.PageLoadAfter < worst {
			worst = c.PageLoadAfter
		}
	}
	if worst > 0.5 {
		t.Fatalf("worst-hit country still at %.2f after a 4-cable corridor cut", worst)
	}
}

func TestMandateHelpsLocalContent(t *testing.T) {
	// Section 5.2's claim as an executable assertion: with the whole
	// corridor gone, the full local-DNS-chain mandate must protect
	// locally hosted content. (Under partial cuts the anycast resolvers
	// already survive, so the mandate has nothing to rescue there.)
	cut := testTopo.Corridors()["west-africa-coastal"]
	countries := []string{"NG", "GH", "CI", "SN", "BJ", "TG"}
	base := testEng.Run(Scenario{Name: "b", CutCables: cut, Countries: countries, SitesPerCountry: 20})
	mand := testEng.Run(Scenario{Name: "m", CutCables: cut, Countries: countries,
		SitesPerCountry: 20, MandateLocalResolvers: true, MandateLocalAuthoritatives: true})

	var baseLocal, mandLocal float64
	n := 0
	for i := range base.Countries {
		if base.Countries[i].LocalAfter < 0 || mand.Countries[i].LocalAfter < 0 {
			continue
		}
		baseLocal += base.Countries[i].LocalAfter
		mandLocal += mand.Countries[i].LocalAfter
		n++
	}
	if n == 0 {
		t.Skip("no local content sampled")
	}
	if mandLocal < baseLocal {
		t.Fatalf("mandate hurt local content: %.2f -> %.2f", baseLocal/float64(n), mandLocal/float64(n))
	}
}

func TestByRegion(t *testing.T) {
	out := testEng.Run(Scenario{Name: "r", Countries: []string{"NG", "GH", "KE"}, SitesPerCountry: 3})
	rs := ByRegion(out)
	if len(rs) != 2 { // Western + Eastern
		t.Fatalf("regions = %d", len(rs))
	}
	for _, r := range rs {
		if r.Countries == 0 || r.PageLoadBefore <= 0 {
			t.Fatalf("bad region summary %+v", r)
		}
	}
}

func TestOutcomeSorted(t *testing.T) {
	out := testEng.Run(Scenario{Name: "s", Countries: []string{"ZA", "KE", "NG"}, SitesPerCountry: 2})
	for i := 1; i < len(out.Countries); i++ {
		if out.Countries[i].Country < out.Countries[i-1].Country {
			t.Fatal("countries not sorted")
		}
	}
}
