// Package spool is the probe-side durability layer: a disk-backed
// outbox that persists completed measurement results *before* an upload
// is attempted, so a power cut between task completion and delivery
// cannot strand the measurement. The paper's Section 7 deployment
// reality — probes on intermittent grid power behind flaky, metered
// cellular uplinks — makes this the difference between re-spending a
// probe's data budget on re-work and delivering what was already paid
// for.
//
// # On-disk layout
//
// A spool directory holds one live file, spool.log, in the same frame
// format as the controller's write-ahead journal (internal/journal):
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// where the payload is a JSON journal.Record. Two record kinds appear:
//
//	result  one executed probes.Result awaiting delivery
//	ack     {"upto": seq} — every result frame with Seq <= upto has
//	        been delivered (or evicted) and is no longer pending
//
// Append syncs before returning, so an acknowledged Append survives a
// power cut; a crash mid-append leaves a torn tail that Open truncates
// back to the last good frame, exactly like the journal. Acks are also
// synced: an acked result must never be re-delivered after a restart
// only because the ack evaporated (re-delivery is harmless — the
// controller dedups — but it burns the cellular budget).
//
// # Bounds
//
// The pending backlog is bounded (Options.MaxPending): when a probe is
// cut off long enough to fill the spool, the oldest undelivered results
// are evicted first (newest data is worth the most to a measurement
// platform) and counted in spool_evicted. The log file itself is
// compacted — pending frames rewritten via tmp+fsync+rename — once
// enough delivered frames accumulate, so disk use tracks the backlog,
// not the probe's lifetime upload volume.
package spool

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/afrinet/observatory/internal/journal"
	"github.com/afrinet/observatory/internal/metrics"
	"github.com/afrinet/observatory/internal/probes"
)

const (
	logName     = "spool.log"
	logTempName = "spool.log.tmp"

	kindResult = "result"
	kindAck    = "ack"
)

// DefaultMaxPending bounds the undelivered backlog when Options leaves
// MaxPending zero.
const DefaultMaxPending = 4096

// DefaultCompactAfter is how many delivered (acked) frames may sit in
// the log before a compaction rewrites it down to the pending set.
const DefaultCompactAfter = 1024

// Options configures a spool.
type Options struct {
	// MaxPending bounds the undelivered backlog; beyond it the oldest
	// pending results are evicted (and counted). 0 means
	// DefaultMaxPending; negative means unbounded.
	MaxPending int
	// CompactAfter is how many consumed (acked or evicted) frames may
	// accumulate in the log before it is rewritten to only the pending
	// set. 0 means DefaultCompactAfter.
	CompactAfter int
}

// ackBody is the payload of an ack frame.
type ackBody struct {
	UpTo uint64 `json:"upto"`
}

// entry is one pending result and the frame sequence that persisted it.
type entry struct {
	seq uint64
	res probes.Result
}

// Spool is an open outbox directory. Safe for concurrent use, though a
// probe normally drives it from one goroutine.
type Spool struct {
	mu   sync.Mutex
	dir  string
	f    *os.File
	opts Options

	seq      uint64  // last frame sequence assigned
	pending  []entry // oldest-first undelivered results
	consumed int     // acked/evicted frames still occupying the log
	ctr      *metrics.CounterSet
}

// Open opens (creating if needed) a spool directory, replays the log to
// rebuild the pending backlog, truncates any torn tail, and positions
// the file for appending. A probe killed mid-run reopens its spool and
// finds every result it persisted but never delivered.
func Open(dir string, opts Options) (*Spool, error) {
	if opts.MaxPending == 0 {
		opts.MaxPending = DefaultMaxPending
	}
	if opts.CompactAfter <= 0 {
		opts.CompactAfter = DefaultCompactAfter
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	s := &Spool{dir: dir, opts: opts, ctr: metrics.NewCounterSet()}

	// A crash between writing the compaction temp file and the rename
	// leaves spool.log.tmp behind; the live log is still authoritative
	// (the rename never landed), so the stale temp is deleted rather
	// than trusted.
	if err := os.Remove(filepath.Join(dir, logTempName)); err == nil {
		s.ctr.Inc("spool_tmp_removed")
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("spool: %w", err)
	}

	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("spool: %w", err)
	}
	recs, good, torn := journal.ReadAll(bytes.NewReader(raw))
	for _, rec := range recs {
		s.seq = rec.Seq
		switch rec.Kind {
		case kindResult:
			var r probes.Result
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				// An undecodable result frame passed its CRC, so this is
				// a format skew, not corruption; skip it rather than
				// refusing the whole backlog.
				s.consumed++
				continue
			}
			s.pending = append(s.pending, entry{seq: rec.Seq, res: r})
		case kindAck:
			var ab ackBody
			if err := json.Unmarshal(rec.Data, &ab); err != nil {
				s.consumed++
				continue
			}
			s.dropThroughLocked(ab.UpTo)
			s.consumed++ // the ack frame itself is dead weight post-replay
		default:
			s.consumed++
		}
	}
	s.ctr.Add("spool_replayed", int64(len(recs)))
	if torn {
		s.ctr.Inc("spool_truncated_tail")
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("spool: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("spool: %w", err)
	}
	s.f = f
	return s, nil
}

// dropThroughLocked removes every pending entry with seq <= upTo,
// moving them to the consumed count.
func (s *Spool) dropThroughLocked(upTo uint64) int {
	i := 0
	for i < len(s.pending) && s.pending[i].seq <= upTo {
		i++
	}
	if i == 0 {
		return 0
	}
	s.pending = append(s.pending[:0], s.pending[i:]...)
	s.consumed += i
	return i
}

// writeFrameLocked encodes and writes one frame; the caller syncs.
func (s *Spool) writeFrameLocked(kind string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	frame, err := journal.EncodeFrame(journal.Record{Seq: s.seq + 1, Kind: kind, Data: raw})
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	s.seq++
	return nil
}

// Append persists one executed result, syncing to stable storage before
// returning — only after Append returns may the caller attempt (or
// defer) the upload. When the backlog bound is exceeded the oldest
// pending results are evicted in the same durable write.
func (s *Spool) Append(r probes.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("spool: closed")
	}
	if err := s.writeFrameLocked(kindResult, r); err != nil {
		return err
	}
	s.pending = append(s.pending, entry{seq: s.seq, res: r})
	s.ctr.Inc("spool_frames_appended")
	for s.opts.MaxPending > 0 && len(s.pending) > s.opts.MaxPending {
		oldest := s.pending[0].seq
		if err := s.writeFrameLocked(kindAck, ackBody{UpTo: oldest}); err != nil {
			return err
		}
		s.dropThroughLocked(oldest)
		s.consumed++ // the eviction ack frame
		s.ctr.Inc("spool_evicted")
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	return s.maybeCompactLocked()
}

// DrainBatch returns up to max of the oldest undelivered results (all
// of them when max <= 0) as one delivery frame, plus the sequence to
// pass to AckBatch once the whole frame is delivered. Results are
// copied, not removed: until the matching AckBatch lands they remain
// pending and survive a restart, so a failed upload re-offers the same
// frame. An empty backlog returns (nil, 0). This is the producer half
// of the batched sync path — a probe drains a frame, ships it in one
// POST /api/v1/probes/sync, and acks the frame in bulk.
func (s *Spool) DrainBatch(max int) ([]probes.Result, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil, 0
	}
	n := len(s.pending)
	if max > 0 && max < n {
		n = max
	}
	out := make([]probes.Result, n)
	for i := 0; i < n; i++ {
		out[i] = s.pending[i].res
	}
	return out, s.pending[n-1].seq
}

// Peek is DrainBatch under its original name, kept for callers of the
// per-batch upload path (FlushSpool).
func (s *Spool) Peek(max int) ([]probes.Result, uint64) {
	return s.DrainBatch(max)
}

// AckBatch durably retires every result up to and including upTo in
// one ack frame and one fsync — the whole delivered batch costs a
// single durable write, mirroring the controller's one-append-per-sync
// journaling. The fsync lands before the pending set is trimmed
// (fsync-before-ack): a power cut during AckBatch re-offers the batch
// on reopen, never drops it. Retired results are not offered again,
// even across a restart.
func (s *Spool) AckBatch(upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("spool: closed")
	}
	dropped := 0
	for _, e := range s.pending {
		if e.seq <= upTo {
			dropped++
		}
	}
	if dropped == 0 {
		return nil
	}
	if err := s.writeFrameLocked(kindAck, ackBody{UpTo: upTo}); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	s.dropThroughLocked(upTo)
	s.consumed++ // the ack frame
	s.ctr.Add("spool_frames_acked", int64(dropped))
	return s.maybeCompactLocked()
}

// Ack is AckBatch under its original name.
func (s *Spool) Ack(upTo uint64) error {
	return s.AckBatch(upTo)
}

// maybeCompactLocked rewrites the log down to the pending set once
// enough consumed frames have accumulated. The rewrite is crash-safe:
// tmp + fsync + rename + dir fsync, with the old log valid until the
// rename lands.
func (s *Spool) maybeCompactLocked() error {
	if s.consumed < s.opts.CompactAfter {
		return nil
	}
	tmp := filepath.Join(s.dir, logTempName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("spool: compacting: %w", err)
	}
	for _, e := range s.pending {
		raw, err := json.Marshal(e.res)
		if err != nil {
			f.Close()
			return fmt.Errorf("spool: compacting: %w", err)
		}
		frame, err := journal.EncodeFrame(journal.Record{Seq: e.seq, Kind: kindResult, Data: raw})
		if err != nil {
			f.Close()
			return fmt.Errorf("spool: compacting: %w", err)
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			return fmt.Errorf("spool: compacting: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("spool: compacting: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spool: compacting: %w", err)
	}
	path := filepath.Join(s.dir, logName)
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("spool: compacting: %w", err)
	}
	syncDir(s.dir)
	old := s.f
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("spool: reopening after compaction: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("spool: %w", err)
	}
	old.Close()
	s.f = nf
	s.consumed = 0
	s.ctr.Inc("spool_compactions")
	return nil
}

// Len reports the undelivered backlog size.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// Counters snapshots the spool's event counters plus the current
// backlog depth as spool_frames_pending, ready for an obs.Registry
// counter source.
func (s *Spool) Counters() map[string]int64 {
	out := s.ctr.Snapshot()
	s.mu.Lock()
	out["spool_frames_pending"] = int64(len(s.pending))
	s.mu.Unlock()
	return out
}

// Close closes the spool file. Pending results stay on disk for the
// next Open — Close is how a clean shutdown (or a simulated power cut
// in tests) parks the backlog.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// syncDir fsyncs a directory so a rename survives power loss; errors
// are ignored like the journal's equivalent.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
