package spool

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/afrinet/observatory/internal/probes"
)

func testResult(i int) probes.Result {
	return probes.Result{
		TaskID:     fmt.Sprintf("t%d", i+1),
		Experiment: "exp-1",
		ProbeID:    "kigali-1",
		Kind:       probes.TaskPing,
		OK:         true,
		RTTms:      float64(10 + i),
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Spool {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestAppendPeekAck(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()

	for i := 0; i < 5; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}

	batch, upTo := s.Peek(3)
	if len(batch) != 3 {
		t.Fatalf("Peek(3) returned %d results", len(batch))
	}
	for i, r := range batch {
		if want := fmt.Sprintf("t%d", i+1); r.TaskID != want {
			t.Fatalf("batch[%d].TaskID = %s, want %s (oldest-first order)", i, r.TaskID, want)
		}
	}
	if err := s.Ack(upTo); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len after Ack = %d, want 2", got)
	}

	rest, upTo := s.Peek(0)
	if len(rest) != 2 || rest[0].TaskID != "t4" || rest[1].TaskID != "t5" {
		t.Fatalf("remaining batch wrong: %+v", rest)
	}
	if err := s.Ack(upTo); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after draining = %d, want 0", got)
	}
	if batch, _ := s.Peek(0); batch != nil {
		t.Fatalf("Peek on empty spool returned %+v", batch)
	}
}

func TestBacklogSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Deliver the first two; the ack must be durable too.
	_, upTo := s.Peek(2)
	if err := s.Ack(upTo); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	// Simulated power cut: no graceful drain, just Close.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := s2.Len(); got != 2 {
		t.Fatalf("backlog after reopen = %d, want 2", got)
	}
	batch, _ := s2.Peek(0)
	if batch[0].TaskID != "t3" || batch[1].TaskID != "t4" {
		t.Fatalf("reopened backlog wrong: %+v", batch)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Append(testResult(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append(testResult(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()

	// A crash mid-append leaves a torn frame at the tail.
	path := filepath.Join(dir, "spool.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	if _, err := f.Write([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatalf("write torn bytes: %v", err)
	}
	f.Close()
	tornSize := fileSize(t, path)

	s2 := mustOpen(t, dir, Options{})
	if got := s2.Len(); got != 2 {
		t.Fatalf("backlog after torn reopen = %d, want 2", got)
	}
	if s2.Counters()["spool_truncated_tail"] != 1 {
		t.Fatalf("spool_truncated_tail not counted: %v", s2.Counters())
	}
	if got := fileSize(t, path); got >= tornSize {
		t.Fatalf("torn tail not truncated: size %d >= %d", got, tornSize)
	}
	// Appends after truncation extend a valid stream.
	if err := s2.Append(testResult(2)); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	s2.Close()

	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if got := s3.Len(); got != 3 {
		t.Fatalf("backlog after third open = %d, want 3", got)
	}
}

func TestEvictionOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxPending: 3})
	for i := 0; i < 5; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want bound of 3", got)
	}
	batch, _ := s.Peek(0)
	if batch[0].TaskID != "t3" || batch[1].TaskID != "t4" || batch[2].TaskID != "t5" {
		t.Fatalf("eviction did not drop oldest first: %+v", batch)
	}
	if got := s.Counters()["spool_evicted"]; got != 2 {
		t.Fatalf("spool_evicted = %d, want 2", got)
	}
	s.Close()

	// Evictions are durable: the evicted results stay gone after reopen.
	s2 := mustOpen(t, dir, Options{MaxPending: 3})
	defer s2.Close()
	batch, _ = s2.Peek(0)
	if len(batch) != 3 || batch[0].TaskID != "t3" {
		t.Fatalf("eviction not durable: %+v", batch)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CompactAfter: 4})
	for i := 0; i < 8; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	sizeBefore := fileSize(t, filepath.Join(dir, "spool.log"))
	// Ack 6 of 8: consumed crosses CompactAfter, triggering a rewrite
	// down to the two pending frames.
	_, upTo := s.Peek(6)
	if err := s.Ack(upTo); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if got := s.Counters()["spool_compactions"]; got != 1 {
		t.Fatalf("spool_compactions = %d, want 1", got)
	}
	if got := fileSize(t, filepath.Join(dir, "spool.log")); got >= sizeBefore {
		t.Fatalf("compaction did not shrink log: %d >= %d", got, sizeBefore)
	}
	// The compacted log still appends and replays correctly.
	if err := s.Append(testResult(8)); err != nil {
		t.Fatalf("Append after compaction: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	batch, _ := s2.Peek(0)
	if len(batch) != 3 || batch[0].TaskID != "t7" || batch[2].TaskID != "t9" {
		t.Fatalf("post-compaction replay wrong: %+v", batch)
	}
}

func TestCrashDuringCompactionRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Deliver the first two so the pending set after the "crash" is a
	// strict subset of the log.
	_, upTo := s.Peek(2)
	if err := s.Ack(upTo); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	s.Close()

	// Simulate a crash after the compaction rewrote the temp file but
	// before the rename: a stale (possibly garbage) spool.log.tmp sits
	// next to the still-authoritative log.
	tmp := filepath.Join(dir, "spool.log.tmp")
	if err := os.WriteFile(tmp, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatalf("write stale tmp: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp survived Open: stat err = %v", err)
	}
	if got := s2.Counters()["spool_tmp_removed"]; got != 1 {
		t.Fatalf("spool_tmp_removed = %d, want 1", got)
	}
	// The pending set replayed from the live log is intact.
	batch, _ := s2.Peek(0)
	if len(batch) != 2 || batch[0].TaskID != "t3" || batch[1].TaskID != "t4" {
		t.Fatalf("pending set damaged by tmp cleanup: %+v", batch)
	}
	// A compaction after the cleanup reuses the temp path without issue.
	_, upTo = s2.Peek(1)
	if err := s2.Ack(upTo); err != nil {
		t.Fatalf("Ack: %v", err)
	}
}

func TestCountersPendingDepth(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	c := s.Counters()
	if c["spool_frames_pending"] != 3 {
		t.Fatalf("spool_frames_pending = %d, want 3", c["spool_frames_pending"])
	}
	if c["spool_frames_appended"] != 3 {
		t.Fatalf("spool_frames_appended = %d, want 3", c["spool_frames_appended"])
	}
}

func TestClosedSpoolRejectsWrites(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Append(testResult(0)); err == nil {
		t.Fatal("Append on closed spool succeeded")
	}
	if err := s.Ack(1); err == nil {
		t.Fatal("Ack with pending on closed spool succeeded")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	return fi.Size()
}

// TestDrainBatchFrameSemantics: DrainBatch is a non-destructive read —
// the frame stays pending (and re-offers identically) until the
// matching AckBatch lands, and one AckBatch retires the whole frame in
// one durable write.
func TestDrainBatchFrameSemantics(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	frame, upTo := s.DrainBatch(4)
	if len(frame) != 4 || frame[0].TaskID != "t1" || frame[3].TaskID != "t4" {
		t.Fatalf("first frame wrong: %+v", frame)
	}
	if s.Len() != 6 {
		t.Fatalf("Len after drain = %d, want 6 (drain must not remove)", s.Len())
	}
	// A failed upload drains again: the identical frame re-offers.
	again, upTo2 := s.DrainBatch(4)
	if upTo2 != upTo || len(again) != 4 || again[0].TaskID != "t1" {
		t.Fatalf("re-offered frame diverged: %+v (seq %d vs %d)", again, upTo2, upTo)
	}
	if err := s.AckBatch(upTo); err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after ack = %d, want 2", s.Len())
	}
	rest, upTo := s.DrainBatch(0) // max <= 0 drains everything left
	if len(rest) != 2 || rest[0].TaskID != "t5" || rest[1].TaskID != "t6" {
		t.Fatalf("remaining frame wrong: %+v", rest)
	}
	if err := s.AckBatch(upTo); err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	if got, seq := s.DrainBatch(0); got != nil || seq != 0 {
		t.Fatalf("empty spool drained %+v (seq %d), want nil/0", got, seq)
	}
	// Acking an already-retired frame is a no-op, not an error.
	if err := s.AckBatch(upTo); err != nil {
		t.Fatalf("duplicate AckBatch: %v", err)
	}
}

// TestAckBatchDurableAcrossReopen: the batch ack survives an abrupt
// restart — retired results never re-offer, unacked ones always do.
func TestAckBatchDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Append(testResult(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	_, upTo := s.DrainBatch(3)
	if err := s.AckBatch(upTo); err != nil {
		t.Fatalf("AckBatch: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	frame, _ := s2.DrainBatch(0)
	if len(frame) != 2 || frame[0].TaskID != "t4" || frame[1].TaskID != "t5" {
		t.Fatalf("reopened frame wrong: %+v", frame)
	}
}
