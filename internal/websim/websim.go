// Package websim is the step-following web measurement engine — the
// websteps measurement shape ported onto the synthetic substrate. One
// URL is followed through DNS → TCP → TLS → HTTP redirect steps from
// two vantages at once (the probe under test and an out-of-country
// control), and every sub-measurement lands in one flat, ID-linked
// archival.Measurement. Interference comes from an injectable
// outage.Interference policy: poisoned DNS, SNI resets, blockpage
// substitution, and token-bucket throttling all show up as
// probe-vs-control deltas the detector (detector.go) classifies.
//
// Everything is a pure function of (seed, data-plane state, policy
// state): no wall clock, no global randomness, so sweeps replay
// byte-identically and compose with the chaos schedule.
package websim

import (
	"fmt"
	"sync"

	"github.com/afrinet/observatory/internal/archival"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/topology"
)

// lineRateBytesPerMs is the unthrottled transfer rate of the access
// path (~10 Mbit/s), the baseline throttling is measured against.
const lineRateBytesPerMs = 1250.0

// controlResolverClass tags the control vantage's lookups; it never
// matches an interference rule's resolver classes, which is what makes
// the control view truthful by construction.
const controlResolverClass = "control"

// Engine measures URLs over the simulated substrate.
type Engine struct {
	net  *netsim.Net
	dns  *dnssim.System
	web  *content.System
	pol  *outage.Interference // nil: no interference
	topo *topology.Topology
	seed uint64

	control topology.ASN // control (test-helper) vantage

	mu      sync.RWMutex
	censors map[string]topology.ASN // per-country censor host AS
}

// New binds an engine to the substrate. pol may be nil (interference-
// free runs). The control vantage is the first European transit AS —
// the out-of-country test helper every probe view is compared against.
func New(n *netsim.Net, dns *dnssim.System, web *content.System, pol *outage.Interference, seed int64) *Engine {
	e := &Engine{
		net:     n,
		dns:     dns,
		web:     web,
		pol:     pol,
		topo:    n.Topology(),
		seed:    uint64(seed),
		censors: make(map[string]topology.ASN),
	}
	for _, ctry := range []string{"DE", "FR", "NL", "GB"} {
		for _, a := range e.topo.ASesIn(ctry) {
			if e.topo.ASes[a].Type == topology.ASTransit {
				e.control = a
				break
			}
		}
		if e.control != 0 {
			break
		}
	}
	if e.control == 0 && len(e.topo.ASNs()) > 0 {
		e.control = e.topo.ASNs()[0]
	}
	return e
}

// Control returns the control vantage AS.
func (e *Engine) Control() topology.ASN { return e.control }

func wmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := uint64(0)
	for _, ch := range s {
		h = wmix(h ^ uint64(ch))
	}
	return h
}

// truthAddr is the domain's genuine serving address. It is anchored to
// the site's provider AS, not the vantage, so both resolvers agree on
// the untampered answer and any disjoint probe answer is attributable
// to tampering rather than CDN mapping.
func (e *Engine) truthAddr(site content.Site) string {
	h := hashString(site.Domain)
	return e.net.HostAddr(site.Provider, int(h%4)).String()
}

// bogonAddr is the never-routed answer a bogon-poisoning resolver
// hands out for the domain.
func bogonAddr(domain string) string {
	h := hashString(domain)
	return fmt.Sprintf("10.66.%d.%d", (h>>8)&0xff, h&0xff)
}

// censorFor picks the country's censor-operated host network: the
// government AS when the country has one, else its first network.
func (e *Engine) censorFor(country string) topology.ASN {
	e.mu.RLock()
	asn, ok := e.censors[country]
	e.mu.RUnlock()
	if ok {
		return asn
	}
	for _, a := range e.topo.ASesIn(country) {
		if e.topo.ASes[a].Type == topology.ASGovernment {
			asn = a
			break
		}
	}
	if asn == 0 {
		if all := e.topo.ASesIn(country); len(all) > 0 {
			asn = all[0]
		}
	}
	e.mu.Lock()
	e.censors[country] = asn
	e.mu.Unlock()
	return asn
}

// vantage is the per-origin working state of one measurement.
type vantage struct {
	origin  archival.Origin
	asn     topology.ASN
	answers []string
	dnsOK   bool
	rttMs   float64 // RTT to the genuine serving location
	fetchOK bool
}

// Measure follows the site's URL through its redirect chain from the
// probe and control vantages and returns the flat archival record. The
// chain is the common shape: a cleartext step that redirects to HTTPS,
// then the TLS step that transfers the body. Interference hooks at
// each layer: the probe's resolver may be poisoned, its ClientHello
// may be reset, its cleartext response may be a blockpage, and its
// transfer may be throttled; the control sees none of that.
func (e *Engine) Measure(client topology.ASN, site content.Site) *archival.Measurement {
	domain := site.Domain
	country := ""
	if as := e.topo.ASes[client]; as != nil {
		country = as.Country
	}
	probeRes := e.dns.AssignmentFor(client)
	m := &archival.Measurement{
		MeasurementID: fmt.Sprintf("ws:%s:%d", domain, client),
		URL:           "http://" + domain + "/",
		Domain:        domain,
		ProbeCountry:  country,
		ProbeASN:      uint32(client),
		ResolverClass: probeRes.Kind.String(),
		Steps: []archival.Step{
			{StepID: 1, URL: "http://" + domain + "/"},
			{StepID: 2, URL: "https://" + domain + "/"},
		},
	}
	var g archival.IDGen
	truth := e.truthAddr(site)

	// --- Step 1: DNS from both vantages -------------------------------
	probe := &vantage{origin: archival.OriginProbe, asn: client}
	ctrl := &vantage{origin: archival.OriginControl, asn: e.control}

	// The probe's lookup runs through its canonical resolver chain with
	// the country's on-path poisoning stacked outside it (PR 10: the
	// interference that used to be inlined here is now a wrapper link).
	chain := outage.PoisonDNS(e.pol, country, e.dns.ChainFor(client))
	ans, errRes := chain.Resolve(dnssim.Query{
		Client: client, Domain: domain, OriginCountry: site.Country,
	}, dnssim.DefaultDepth)
	pd := archival.DNSLookup{
		ID: g.Next(), StepID: 1, Origin: archival.OriginProbe, Domain: domain,
		ResolverClass:   probeRes.Kind.String(),
		ResolverCountry: ans.Assignment.Country,
		LatencyMs:       ans.LatencyMs,
	}
	switch {
	case errRes != nil:
		pd.Failure = errRes.Error()
	case !ans.OK:
		pd.Failure = ans.FailReason
	default:
		probe.dnsOK = true
		switch {
		case ans.Poisoned && ans.PoisonBogon:
			pd.Answers, pd.Bogon = []string{bogonAddr(domain)}, true
		case ans.Poisoned:
			pd.Answers = []string{e.net.HostAddr(e.censorFor(country), 7).String()}
		default:
			pd.Answers = []string{truth}
		}
		probe.answers = pd.Answers
	}
	m.DNS = append(m.DNS, pd)

	cd := archival.DNSLookup{
		ID: g.Next(), StepID: 1, Origin: archival.OriginControl, Domain: domain,
		ResolverClass: controlResolverClass,
	}
	auth := e.dns.Authority(domain, site.Country)
	if rtt, ok := e.net.RTTBetween(e.control, auth.ASN); auth.ASN != 0 && ok {
		cd.Answers = []string{truth}
		cd.LatencyMs = rtt
		ctrl.dnsOK = true
		ctrl.answers = cd.Answers
	} else {
		cd.Failure = "authoritative unreachable"
	}
	m.DNS = append(m.DNS, cd)

	// The genuine serving path for each vantage (CDN mapping included):
	// dial reachability and RTT come from here.
	pf := e.web.Fetch(client, site)
	probe.fetchOK, probe.rttMs = pf.OK, pf.RTTms
	cf := e.web.Fetch(e.control, site)
	ctrl.fetchOK, ctrl.rttMs = cf.OK, cf.RTTms

	// --- Step 1: dial + cleartext HTTP --------------------------------
	// The probe dials the union of its own answers and the control's
	// (websteps endpoint sharing: even a probe whose resolver lies can
	// test the genuine endpoints the control discovered).
	probeRedirected := e.stepOne(m, &g, probe, ctrl, site, domain, country, truth)

	// --- Step 2: TLS + body transfer ----------------------------------
	if probeRedirected {
		e.stepTwo(m, &g, probe, site, domain, country, truth)
	}
	if ctrl.dnsOK && ctrl.fetchOK {
		e.stepTwo(m, &g, ctrl, site, domain, country, truth)
	}
	return m
}

// dialOne records one TCP connect attempt and reports success.
func (e *Engine) dialOne(m *archival.Measurement, g *archival.IDGen, v *vantage, step int64, addr string, port int, country string) (int64, bool) {
	d := archival.EndpointDial{
		ID: g.Next(), StepID: step, EndpointID: g.Next(), Origin: v.origin,
		Address: addr, Port: port,
	}
	ok := false
	switch {
	case isBogon(addr):
		d.Failure = "timed_out"
	case addr != "" && country != "" && addr == e.net.HostAddr(e.censorFor(country), 7).String():
		// The censor's blockpage host: reachable in-country.
		if rtt, okR := e.net.RTTBetween(v.asn, e.censorFor(country)); okR {
			d.LatencyMs, ok = rtt, true
		} else {
			d.Failure = "unreachable"
		}
	default:
		if v.fetchOK {
			d.LatencyMs, ok = v.rttMs, true
		} else {
			d.Failure = "unreachable"
		}
	}
	m.Dials = append(m.Dials, d)
	return d.EndpointID, ok
}

// stepOne runs the cleartext step for both vantages and reports
// whether the probe saw a redirect to follow.
func (e *Engine) stepOne(m *archival.Measurement, g *archival.IDGen, probe, ctrl *vantage, site content.Site, domain, country, truth string) bool {
	probeRedirected := false
	if probe.dnsOK {
		dialed := map[string]bool{}
		for _, addr := range append(append([]string{}, probe.answers...), ctrl.answers...) {
			if addr == "" || dialed[addr] {
				continue
			}
			dialed[addr] = true
			ep, ok := e.dialOne(m, g, probe, 1, addr, 80, country)
			if !ok {
				continue
			}
			h := archival.HTTPRoundTrip{
				ID: g.Next(), StepID: 1, EndpointID: ep, Origin: probe.origin,
				URL: "http://" + domain + "/",
			}
			blockpage := addr != truth // censor endpoint serves its page
			if e.pol != nil && e.pol.BlockpageInjected(country, domain) {
				blockpage = true // on-path substitution even on the genuine endpoint
			}
			if blockpage {
				h.StatusCode = 200
				h.BodyBytes = content.BlockpageBytes
				h.BodyHash = content.BlockpageHash(country)
				h.TransferMs = m.Dials[len(m.Dials)-1].LatencyMs
			} else {
				h.StatusCode = 301
				h.RedirectTo = "https://" + domain + "/"
				if addr == truth {
					probeRedirected = true
				}
			}
			m.HTTP = append(m.HTTP, h)
		}
	}
	if ctrl.dnsOK {
		for _, addr := range ctrl.answers {
			ep, ok := e.dialOne(m, g, ctrl, 1, addr, 80, country)
			if !ok {
				continue
			}
			m.HTTP = append(m.HTTP, archival.HTTPRoundTrip{
				ID: g.Next(), StepID: 1, EndpointID: ep, Origin: ctrl.origin,
				URL: "http://" + domain + "/", StatusCode: 301,
				RedirectTo: "https://" + domain + "/",
			})
		}
	}
	return probeRedirected
}

// stepTwo runs the HTTPS step for one vantage: dial :443, handshake
// with the domain in the SNI, then transfer the body.
func (e *Engine) stepTwo(m *archival.Measurement, g *archival.IDGen, v *vantage, site content.Site, domain, country, truth string) {
	ep, ok := e.dialOne(m, g, v, 2, truth, 443, country)
	if !ok {
		return
	}
	hs := archival.TLSHandshake{
		ID: g.Next(), StepID: 2, EndpointID: ep, Origin: v.origin, SNI: domain,
	}
	if v.origin == archival.OriginProbe && e.pol != nil && e.pol.SNIReset(country, domain) {
		hs.Failure = "connection_reset"
		m.TLS = append(m.TLS, hs)
		return
	}
	hs.LatencyMs = 2 * v.rttMs
	m.TLS = append(m.TLS, hs)

	bytes := e.web.BodyBytes(site)
	lineMs := v.rttMs + float64(bytes)/lineRateBytesPerMs
	transferMs := lineMs
	if v.origin == archival.OriginProbe && e.pol != nil {
		if rate, burst, okT := e.pol.ThrottleRate(country, domain); okT {
			transferMs = outage.ThrottledTransferMs(bytes, lineMs, rate, burst)
		}
	}
	m.HTTP = append(m.HTTP, archival.HTTPRoundTrip{
		ID: g.Next(), StepID: 2, EndpointID: ep, Origin: v.origin,
		URL: "https://" + domain + "/", StatusCode: 200,
		BodyBytes: bytes, BodyHash: e.web.BodyHash(site),
		TransferMs: transferMs,
	})
}

// isBogon reports whether the address sits in the model's never-routed
// poison range.
func isBogon(addr string) bool {
	return len(addr) > 6 && addr[:6] == "10.66."
}
