package websim

// detector.go classifies one archival measurement from its
// probe-vs-control deltas alone — it sees only what the flat record
// holds, never the interference policy, so a verdict is something an
// analyst could re-derive from the archived data. Rules apply in
// root-cause order: a poisoned lookup is dns_blocked even when the
// bogus answers also fail to connect, and a probe cut off by a
// partition mid-poisoning reports the DNS tampering, not a spurious
// tcp_blocked.

import "github.com/afrinet/observatory/internal/archival"

// The verdict taxonomy, in severity/attribution order.
const (
	VerdictOK          = "ok"
	VerdictDNSBlocked  = "dns_blocked"
	VerdictTCPBlocked  = "tcp_blocked"
	VerdictTLSBlocked  = "tls_blocked"
	VerdictHTTPBlocked = "http_blocked"
	VerdictThrottled   = "throttled"
)

// Verdicts lists every verdict in display order.
func Verdicts() []string {
	return []string{VerdictOK, VerdictDNSBlocked, VerdictTCPBlocked, VerdictTLSBlocked, VerdictHTTPBlocked, VerdictThrottled}
}

// ValidVerdict reports whether v is one of the taxonomy's verdicts.
func ValidVerdict(v string) bool {
	for _, k := range Verdicts() {
		if v == k {
			return true
		}
	}
	return false
}

// throttleFactor and throttleFloorMs gate the throttling verdict: the
// probe's transfer must be this many times slower than the control's
// AND slower by this absolute margin. The factor absorbs the honest
// RTT gap between an African access line and the European control; the
// floor keeps tiny transfers from tripping on ratio noise.
const (
	throttleFactor  = 4.0
	throttleFloorMs = 1500.0
)

// Classify derives the blocking verdict for one measurement. A
// measurement whose control view itself failed is unclassifiable and
// returns ok — blocking claims need a working baseline.
func Classify(m *archival.Measurement) string {
	if m == nil {
		return VerdictOK
	}
	probeDNS, ctrlDNS := firstDNS(m, archival.OriginProbe), firstDNS(m, archival.OriginControl)
	if ctrlDNS == nil || ctrlDNS.Failure != "" {
		return VerdictOK
	}

	// DNS layer: failure, bogon answers, or answers disjoint from the
	// control's. Answer sets are origin-anchored in this model, so
	// disjointness is tampering, not CDN mapping diversity.
	if probeDNS != nil {
		if probeDNS.Failure != "" || probeDNS.Bogon {
			return VerdictDNSBlocked
		}
		if len(probeDNS.Answers) > 0 && disjoint(probeDNS.Answers, ctrlDNS.Answers) {
			return VerdictDNSBlocked
		}
	}

	// TCP layer: a dial the control completed, failed for the probe.
	for _, pd := range m.Dials {
		if pd.Origin != archival.OriginProbe || pd.Failure == "" {
			continue
		}
		for _, cd := range m.Dials {
			if cd.Origin == archival.OriginControl && cd.Failure == "" &&
				cd.Address == pd.Address && cd.Port == pd.Port {
				return VerdictTCPBlocked
			}
		}
	}

	// TLS layer: the probe's handshake failed where the control's, for
	// the same SNI, succeeded.
	for _, ph := range m.TLS {
		if ph.Origin != archival.OriginProbe || ph.Failure == "" {
			continue
		}
		for _, ch := range m.TLS {
			if ch.Origin == archival.OriginControl && ch.Failure == "" && ch.SNI == ph.SNI {
				return VerdictTLSBlocked
			}
		}
	}

	// HTTP layer, per step: the control was redirected but the probe
	// was served a final page (blockpage substitution), or both
	// transferred bodies whose hashes differ.
	for _, ch := range m.HTTP {
		if ch.Origin != archival.OriginControl || ch.Failure != "" {
			continue
		}
		for _, ph := range m.HTTP {
			if ph.Origin != archival.OriginProbe || ph.StepID != ch.StepID || ph.Failure != "" {
				continue
			}
			if ch.RedirectTo != "" && ph.RedirectTo == "" && ph.StatusCode != 0 {
				return VerdictHTTPBlocked
			}
			if ch.BodyHash != "" && ph.BodyHash != "" && ch.BodyHash != ph.BodyHash {
				return VerdictHTTPBlocked
			}
		}
	}

	// Throttling: same content, inflated transfer time.
	for _, ch := range m.HTTP {
		if ch.Origin != archival.OriginControl || ch.BodyHash == "" || ch.TransferMs <= 0 {
			continue
		}
		for _, ph := range m.HTTP {
			if ph.Origin != archival.OriginProbe || ph.StepID != ch.StepID || ph.BodyHash != ch.BodyHash {
				continue
			}
			if ph.TransferMs > throttleFactor*ch.TransferMs && ph.TransferMs-ch.TransferMs > throttleFloorMs {
				return VerdictThrottled
			}
		}
	}
	return VerdictOK
}

func firstDNS(m *archival.Measurement, o archival.Origin) *archival.DNSLookup {
	for i := range m.DNS {
		if m.DNS[i].Origin == o {
			return &m.DNS[i]
		}
	}
	return nil
}

func disjoint(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}
