package websim_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/afrinet/observatory/internal/archival"
	"github.com/afrinet/observatory/internal/bgp"
	"github.com/afrinet/observatory/internal/content"
	"github.com/afrinet/observatory/internal/dnssim"
	"github.com/afrinet/observatory/internal/netsim"
	"github.com/afrinet/observatory/internal/outage"
	"github.com/afrinet/observatory/internal/topology"
	"github.com/afrinet/observatory/internal/websim"
)

// allResolverClasses opts every resolver class into poisoning so the
// tests do not depend on which resolver the substrate assigns a client.
var allResolverClasses = []string{"same-country", "other-country", "cloud"}

type rig struct {
	net *netsim.Net
	dns *dnssim.System
	web *content.System
}

func newRig(seed int64) *rig {
	topo := topology.Generate(topology.Params{Seed: seed, Year: 2025})
	n := netsim.New(topo, bgp.New(topo), seed)
	return &rig{net: n, dns: dnssim.New(n, seed), web: content.New(n, seed)}
}

// pick returns a (client, site) pair in ctry whose clean measurement is
// classified ok — the baseline the interference tests tamper with. The
// substrate occasionally makes a site honestly unreachable from one
// client; skipping those keeps the tests about interference, not
// weather.
func (r *rig) pick(t *testing.T, ctry string) (topology.ASN, content.Site) {
	t.Helper()
	client := r.web.ResidentialClient(ctry)
	if client == 0 {
		t.Fatalf("no residential client in %s", ctry)
	}
	clean := websim.New(r.net, r.dns, r.web, nil, 1)
	for _, site := range r.web.Catalog().SitesFor(ctry) {
		m := clean.Measure(client, site)
		if websim.Classify(m) == websim.VerdictOK && r.web.BodyBytes(site) > 64*1024 {
			return client, site
		}
	}
	t.Fatalf("no clean-ok site with a throttle-sized body in %s", ctry)
	return 0, content.Site{}
}

// fullRule targets every domain through every resolver class with the
// given mechanisms.
func fullRule(ctry string, mod func(*outage.InterferenceRule)) *outage.Interference {
	pol := outage.NewInterference(7)
	rule := outage.InterferenceRule{
		Country:         ctry,
		DomainFraction:  1.0,
		ResolverClasses: allResolverClasses,
	}
	mod(&rule)
	pol.SetRule(rule)
	return pol
}

func mustValidate(t *testing.T, m *archival.Measurement) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("measurement fails link-integrity: %v", err)
	}
}

func TestCleanMeasurementOK(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	e := websim.New(r.net, r.dns, r.web, nil, 1)
	m := e.Measure(client, site)
	mustValidate(t, m)
	if v := websim.Classify(m); v != websim.VerdictOK {
		t.Fatalf("clean measurement classified %q", v)
	}
	// Both vantages resolved, and the probe followed the redirect into
	// the HTTPS step.
	if len(m.DNS) != 2 || len(m.Steps) != 2 {
		t.Fatalf("unexpected shape: %d dns, %d steps", len(m.DNS), len(m.Steps))
	}
	var probeHTTPS bool
	for _, h := range m.HTTP {
		if h.Origin == archival.OriginProbe && h.StepID == 2 && h.StatusCode == 200 {
			probeHTTPS = true
		}
	}
	if !probeHTTPS {
		t.Fatal("probe never completed the HTTPS step")
	}
}

func TestBogonPoisoningDNSBlocked(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	pol := fullRule("KE", func(ru *outage.InterferenceRule) {
		ru.DNSPoison, ru.PoisonBogon = true, true
	})
	m := websim.New(r.net, r.dns, r.web, pol, 1).Measure(client, site)
	mustValidate(t, m)
	if v := websim.Classify(m); v != websim.VerdictDNSBlocked {
		t.Fatalf("bogon poisoning classified %q, want dns_blocked", v)
	}
	// The probe's lookup carries the bogon flag an analyst would check.
	var sawBogon bool
	for _, d := range m.DNS {
		if d.Origin == archival.OriginProbe && d.Bogon {
			sawBogon = true
		}
	}
	if !sawBogon {
		t.Fatal("probe lookup not marked bogon")
	}
}

func TestCensorRedirectDNSBlocked(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	pol := fullRule("KE", func(ru *outage.InterferenceRule) {
		ru.DNSPoison = true // PoisonBogon false: redirect to the censor host
	})
	m := websim.New(r.net, r.dns, r.web, pol, 1).Measure(client, site)
	mustValidate(t, m)
	if v := websim.Classify(m); v != websim.VerdictDNSBlocked {
		t.Fatalf("censor redirect classified %q, want dns_blocked", v)
	}
}

func TestSNIResetTLSBlocked(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	pol := fullRule("KE", func(ru *outage.InterferenceRule) {
		ru.SNIReset = true
	})
	m := websim.New(r.net, r.dns, r.web, pol, 1).Measure(client, site)
	mustValidate(t, m)
	if v := websim.Classify(m); v != websim.VerdictTLSBlocked {
		t.Fatalf("SNI reset classified %q, want tls_blocked", v)
	}
	var reset bool
	for _, h := range m.TLS {
		if h.Origin == archival.OriginProbe && h.Failure == "connection_reset" {
			reset = true
		}
	}
	if !reset {
		t.Fatal("probe handshake not recorded as reset")
	}
}

func TestBlockpageHTTPBlocked(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	pol := fullRule("KE", func(ru *outage.InterferenceRule) {
		ru.Blockpage = true
	})
	m := websim.New(r.net, r.dns, r.web, pol, 1).Measure(client, site)
	mustValidate(t, m)
	if v := websim.Classify(m); v != websim.VerdictHTTPBlocked {
		t.Fatalf("blockpage classified %q, want http_blocked", v)
	}
	var blockpage bool
	for _, h := range m.HTTP {
		if h.Origin == archival.OriginProbe && h.BodyHash == content.BlockpageHash("KE") {
			blockpage = true
		}
	}
	if !blockpage {
		t.Fatal("probe never served the censor's blockpage")
	}
}

func TestThrottlingThrottled(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	pol := fullRule("KE", func(ru *outage.InterferenceRule) {
		ru.ThrottleBytesPerMs = 8 // ~64 kbit/s
	})
	m := websim.New(r.net, r.dns, r.web, pol, 1).Measure(client, site)
	mustValidate(t, m)
	if v := websim.Classify(m); v != websim.VerdictThrottled {
		t.Fatalf("throttling classified %q, want throttled", v)
	}
}

func TestWindowedActivationGatesInterference(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	pol := fullRule("KE", func(ru *outage.InterferenceRule) {
		ru.DNSPoison, ru.PoisonBogon = true, true
	})
	pol.SetWindowed(true)
	e := websim.New(r.net, r.dns, r.web, pol, 1)

	if v := websim.Classify(e.Measure(client, site)); v != websim.VerdictOK {
		t.Fatalf("closed window classified %q, want ok", v)
	}
	pol.SetActive("KE", true)
	if v := websim.Classify(e.Measure(client, site)); v != websim.VerdictDNSBlocked {
		t.Fatalf("open window classified %q, want dns_blocked", v)
	}
	pol.SetActive("KE", false)
	if v := websim.Classify(e.Measure(client, site)); v != websim.VerdictOK {
		t.Fatalf("reclosed window classified %q, want ok", v)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	mk := func() []byte {
		r := newRig(1)
		pol := outage.GenerateInterference(42, []string{"KE", "NG", "ZA"})
		e := websim.New(r.net, r.dns, r.web, pol, 1)
		client := r.web.ResidentialClient("KE")
		var buf bytes.Buffer
		for _, site := range r.web.Catalog().SitesFor("KE") {
			m := e.Measure(client, site)
			enc, err := archival.Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(enc)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different measurement bytes")
	}
}

func TestMeasurementFlattensCanonically(t *testing.T) {
	r := newRig(1)
	client, site := r.pick(t, "KE")
	m := websim.New(r.net, r.dns, r.web, nil, 1).Measure(client, site)
	obs := m.Flatten()
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	again := m.Flatten()
	if !reflect.DeepEqual(obs, again) {
		t.Fatal("Flatten not stable")
	}
}
